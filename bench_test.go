// Package repro holds the benchmark harness regenerating the paper's
// evaluation section: one benchmark per table and figure, plus ablations of
// the design choices called out in DESIGN.md §6.
//
// Run everything with
//
//	go test -bench=. -benchmem
//
// Benchmark sizes are reduced from the paper's (see EXPERIMENTS.md for the
// mapping and for full-scale instructions via cmd/pdbbench -scale paper);
// the comparisons preserve the paper's qualitative shapes.
package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/inference"
	"repro/internal/pl"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/treewidth"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// benchStrategies are the two systems Section 6 compares.
var benchStrategies = []core.Strategy{core.PartialLineage, core.DNFLineage}

// runSpec evaluates one generated instance once; used inside b.N loops.
func runSpec(b *testing.B, spec workload.Spec, db *relation.Database, strat core.Strategy) *engine.Result {
	b.Helper()
	plan, err := spec.Plan()
	if err != nil {
		b.Fatal(err)
	}
	res, err := engine.Evaluate(db, spec.Query(), plan, engine.Options{
		Strategy:  strat,
		Samples:   10000,
		Inference: inference.Options{MaxFactorVars: 18},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1 measures plan construction and safety classification for
// every Table 1 query (the catalog itself).
func BenchmarkTable1(b *testing.B) {
	for _, spec := range workload.Table1() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := spec.Query()
				if q.IsHierarchical() {
					b.Fatal("Table 1 queries are unsafe")
				}
				if _, err := spec.Plan(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5 is the scalability experiment (Section 6.3): 1% offending
// tuples, every tuple uncertain, partial lineage vs the MayBMS-style DNF
// baseline, per Table 1 query.
func BenchmarkFig5(b *testing.B) {
	params := workload.Params{N: 4, M: 250, Fanout: 4, RF: 0.01, RD: 1, Seed: 1}
	for _, spec := range workload.Table1() {
		db, err := workload.GenerateFor(spec, params)
		if err != nil {
			b.Fatal(err)
		}
		for _, strat := range benchStrategies {
			b.Run(fmt.Sprintf("%s/%v", spec.Name, strat), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runSpec(b, spec, db, strat)
				}
			})
		}
	}
}

// BenchmarkFig6 varies the fraction of offending tuples r_f (Section 6.4)
// on query P1.
func BenchmarkFig6(b *testing.B) {
	spec, err := workload.SpecByName("P1")
	if err != nil {
		b.Fatal(err)
	}
	for _, rf := range []float64{0, 0.1, 0.3, 0.6, 1} {
		params := workload.Params{N: 3, M: 60, Fanout: 3, RF: rf, RD: 1, Seed: 2}
		db, err := workload.GenerateFor(spec, params)
		if err != nil {
			b.Fatal(err)
		}
		for _, strat := range benchStrategies {
			b.Run(fmt.Sprintf("rf=%g/%v", rf, strat), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runSpec(b, spec, db, strat)
				}
			})
		}
	}
}

// BenchmarkFig7 varies the fraction of deterministic tuples r_d with
// r_f = 1 (Section 6.5) on query P1.
func BenchmarkFig7(b *testing.B) {
	spec, err := workload.SpecByName("P1")
	if err != nil {
		b.Fatal(err)
	}
	for _, rd := range []float64{0, 0.1, 0.2, 0.3} {
		params := workload.Params{N: 3, M: 60, Fanout: 3, RF: 1, RD: rd, Seed: 3}
		db, err := workload.GenerateFor(spec, params)
		if err != nil {
			b.Fatal(err)
		}
		for _, strat := range benchStrategies {
			b.Run(fmt.Sprintf("rd=%g/%v", rd, strat), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runSpec(b, spec, db, strat)
				}
			})
		}
	}
}

// BenchmarkFig1NetworkConstruction measures full intensional network
// construction for the two plans of Figure 1 (Example 3.6's query) at a
// larger domain.
func BenchmarkFig1NetworkConstruction(b *testing.B) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	s := relation.New("S", "a", "b")
	rng := rand.New(rand.NewSource(4))
	for i := 1; i <= 12; i++ {
		for j := 1; j <= 5; j++ {
			r.MustAdd(tuple.Ints(int64(i), int64(j)), rng.Float64())
			s.MustAdd(tuple.Ints(int64(i), int64(j)), rng.Float64())
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	for _, order := range [][]string{{"R", "S"}, {"S", "R"}} {
		b.Run(fmt.Sprintf("plan=%s-first", order[0]), func(b *testing.B) {
			b.ReportAllocs()
			q := query.MustParse("q :- R(x, y), S(y, z)")
			plan, err := query.LeftDeepPlan(q, order)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := engine.Evaluate(db, q, plan, engine.Options{
					Strategy:  core.FullNetwork,
					Samples:   5000,
					Inference: inference.Options{MaxFactorVars: 16},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2Decomposition contrasts inference with and without the D(G)
// gate decomposition of Figure 2 on wide gates.
func BenchmarkFig2Decomposition(b *testing.B) {
	net := aonet.New()
	rng := rand.New(rand.NewSource(5))
	var edges []aonet.Edge
	for i := 0; i < 14; i++ {
		edges = append(edges, aonet.Edge{From: net.AddLeaf(rng.Float64()), P: rng.Float64()})
	}
	top := net.AddGate(aonet.Or, edges)
	for name, opts := range map[string]inference.Options{
		"decomposed": {},
		"raw":        {NoDecompose: true},
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := inference.Exact(net, top, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTheorem42LineageTreewidth measures the treewidth computation on
// lineages of a strictly hierarchical vs a non-strict query as instances
// grow (Theorem 4.2's separation).
func BenchmarkTheorem42LineageTreewidth(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("K%dx%d", n, n), func(b *testing.B) {
			g := treewidth.NewGraph(2 * n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					g.AddEdge(i, n+j)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ub := treewidth.UpperBound(g); ub < n {
					b.Fatalf("K_{%d,%d} treewidth bound %d", n, n, ub)
				}
			}
		})
	}
}

// BenchmarkAblationHashConsing reproduces the Section 5.4 example: with S
// deterministic and complete bipartite, hash-consing collapses every dedup
// Or gate into one shared node and keeps inference linear; without it the
// network's moralized width grows with n.
func BenchmarkAblationHashConsing(b *testing.B) {
	build := func(n int, consing bool) (final pl.Tuple, net *aonet.Network) {
		b.Helper()
		net = aonet.New()
		net.SetHashConsing(consing)
		rng := rand.New(rand.NewSource(6))
		r := &pl.Relation{Attrs: tuple.Schema{"x"}}
		s := &pl.Relation{Attrs: tuple.Schema{"x", "y"}}
		t := &pl.Relation{Attrs: tuple.Schema{"y"}}
		for i := 1; i <= n; i++ {
			r.Tuples = append(r.Tuples, pl.Tuple{Vals: tuple.Ints(int64(i)), P: rng.Float64(), Lin: aonet.Epsilon})
			t.Tuples = append(t.Tuples, pl.Tuple{Vals: tuple.Ints(int64(i)), P: rng.Float64(), Lin: aonet.Epsilon})
			for j := 1; j <= n; j++ {
				s.Tuples = append(s.Tuples, pl.Tuple{Vals: tuple.Ints(int64(i), int64(j)), P: 1, Lin: aonet.Epsilon})
			}
		}
		rs, _, err := pl.SafeJoin(r, s, net)
		if err != nil {
			b.Fatal(err)
		}
		proj, err := pl.Project(rs, []string{"y"}, net)
		if err != nil {
			b.Fatal(err)
		}
		rst, _, err := pl.SafeJoin(proj, t, net)
		if err != nil {
			b.Fatal(err)
		}
		out, err := pl.Project(rst, nil, net)
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() != 1 {
			b.Fatalf("expected one Boolean answer, got %d", out.Len())
		}
		return out.Tuples[0], net
	}
	const n = 12
	var probs [2]float64
	for i, consing := range []bool{true, false} {
		name := "consing"
		if !consing {
			name = "no-consing"
		}
		idx := i
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for it := 0; it < b.N; it++ {
				final, net := build(n, consing)
				res, err := inference.Exact(net, final.Lin, inference.Options{MaxFactorVars: 26})
				if err != nil {
					b.Fatal(err)
				}
				probs[idx] = final.P * res.P
			}
		})
	}
	if probs[0] != 0 && probs[1] != 0 && math.Abs(probs[0]-probs[1]) > 1e-9 {
		b.Fatalf("consing changed the answer: %g vs %g", probs[0], probs[1])
	}
}

// BenchmarkAblationConditionAll contrasts partial lineage (condition only
// offending tuples) with the full intensional network (condition all), the
// FullNetwork strategy — the paper's central claim in microcosm.
func BenchmarkAblationConditionAll(b *testing.B) {
	spec, err := workload.SpecByName("P1")
	if err != nil {
		b.Fatal(err)
	}
	params := workload.Params{N: 3, M: 120, Fanout: 3, RF: 0.05, RD: 1, Seed: 7}
	db, err := workload.GenerateFor(spec, params)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []core.Strategy{core.PartialLineage, core.FullNetwork} {
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runSpec(b, spec, db, strat)
			}
		})
	}
}

// BenchmarkAblationInferenceBackend compares the three exact inference
// backends on the same partial-lineage network: partial-lineage expansion +
// Shannon solver (the engine default), variable elimination with cutset
// conditioning, and junction-tree message passing (the Theorem 5.17 shape).
func BenchmarkAblationInferenceBackend(b *testing.B) {
	spec, err := workload.SpecByName("P1")
	if err != nil {
		b.Fatal(err)
	}
	params := workload.Params{N: 1, M: 150, Fanout: 3, RF: 0.15, RD: 1, Seed: 10}
	db, err := workload.GenerateFor(spec, params)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := spec.Plan()
	if err != nil {
		b.Fatal(err)
	}
	res, err := engine.Evaluate(db, spec.Query(), plan, engine.Options{
		Strategy:      core.PartialLineage,
		SkipInference: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Recover the answer's lineage node: rebuild with inference enabled once
	// to locate it, then benchmark the backends directly on the network.
	full, err := engine.Evaluate(db, spec.Query(), plan, engine.Options{Strategy: core.PartialLineage})
	if err != nil {
		b.Fatal(err)
	}
	if full.Stats.Approximate {
		b.Fatal("instance unexpectedly intractable")
	}
	net := res.Net
	// The final dedup node is the last Or gate added to the network.
	var target aonet.NodeID = -1
	for v := net.Len() - 1; v >= 0; v-- {
		if net.Label(aonet.NodeID(v)) == aonet.Or {
			target = aonet.NodeID(v)
			break
		}
	}
	if target < 0 {
		b.Fatal("no Or node in network")
	}
	var ref float64
	b.Run("expansion", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := inference.ExactViaExpansion(net, target, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			ref = p
		}
	})
	b.Run("ve-conditioning", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := inference.Exact(net, target, inference.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if ref != 0 && math.Abs(r.P-ref) > 1e-9 {
				b.Fatalf("backends disagree: %g vs %g", r.P, ref)
			}
		}
	})
	b.Run("junction-tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := inference.ExactJT(net, target, inference.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if ref != 0 && math.Abs(r.P-ref) > 1e-9 {
				b.Fatalf("backends disagree: %g vs %g", r.P, ref)
			}
		}
	})
}

// BenchmarkAblationPlanChoice quantifies data-aware plan selection: on an
// instance where one join direction follows a satisfied functional
// dependency and the other violates it, the optimizer's order evaluates
// with zero symbolic work while the bad order conditions hundreds of
// tuples.
func BenchmarkAblationPlanChoice(b *testing.B) {
	db := relation.NewDatabase()
	ra := relation.New("A", "x")
	rb := relation.New("B", "x", "y")
	rc := relation.New("C", "y")
	rng := rand.New(rand.NewSource(11))
	for x := int64(1); x <= 300; x++ {
		ra.MustAdd(tuple.Ints(x), rng.Float64())
		rb.MustAdd(tuple.Ints(x, x%20), rng.Float64()) // x→y holds, y→x violated
	}
	for y := int64(0); y < 20; y++ {
		rc.MustAdd(tuple.Ints(y), rng.Float64())
	}
	db.AddRelation(ra)
	db.AddRelation(rb)
	db.AddRelation(rc)
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	best, _, err := planner.Choose(db, q, planner.Options{})
	if err != nil {
		b.Fatal(err)
	}
	bad, err := query.LeftDeepPlan(q, []string{"C", "B", "A"})
	if err != nil {
		b.Fatal(err)
	}
	for name, plan := range map[string]*query.Plan{"optimized": best.Plan, "pessimal": bad} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Evaluate(db, q, plan, engine.Options{
					Strategy: core.PartialLineage,
					Samples:  10000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrdering compares the min-fill and min-degree
// elimination heuristics inside exact inference.
func BenchmarkAblationOrdering(b *testing.B) {
	net := aonet.New()
	rng := rand.New(rand.NewSource(8))
	var layer []aonet.NodeID
	for i := 0; i < 30; i++ {
		layer = append(layer, net.AddLeaf(rng.Float64()))
	}
	for l := 0; l < 3; l++ {
		var next []aonet.NodeID
		for i := 0; i+1 < len(layer); i += 2 {
			lab := aonet.Or
			if rng.Intn(2) == 0 {
				lab = aonet.And
			}
			next = append(next, net.AddGate(lab, []aonet.Edge{
				{From: layer[i], P: rng.Float64()},
				{From: layer[i+1], P: rng.Float64()},
				{From: layer[rng.Intn(len(layer))], P: rng.Float64()},
			}))
		}
		layer = next
	}
	target := layer[0]
	for _, h := range []treewidth.Heuristic{treewidth.MinFill, treewidth.MinDegree} {
		b.Run(h.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := inference.Exact(net, target, inference.Options{Heuristic: h}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAncestorPrune measures the effect of restricting
// inference to the queried node's ancestors.
func BenchmarkAblationAncestorPrune(b *testing.B) {
	net := aonet.New()
	rng := rand.New(rand.NewSource(9))
	target := net.AddGate(aonet.Or, []aonet.Edge{
		{From: net.AddLeaf(0.4), P: 0.7},
		{From: net.AddLeaf(0.6), P: 0.9},
	})
	// A large unrelated region that pruning skips.
	for i := 0; i < 200; i++ {
		net.AddGate(aonet.Or, []aonet.Edge{{From: net.AddLeaf(rng.Float64()), P: rng.Float64()}})
	}
	for name, opts := range map[string]inference.Options{
		"pruned":   {},
		"unpruned": {NoAncestorPrune: true},
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := inference.Exact(net, target, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
