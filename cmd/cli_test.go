// Package cmd_test smoke-tests the command-line tools end to end: generate
// a workload with pdbgen, evaluate it with pdbrun under several strategies,
// and regenerate Table 1 with pdbbench.
package cmd_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// run builds-and-runs a command in this module via `go run`.
func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test rebuilds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "p1")

	out := run(t, "./cmd/pdbgen", "-query", "P1", "-n", "3", "-m", "30",
		"-fanout", "3", "-rf", "0.2", "-rd", "1", "-seed", "5", "-out", data)
	if !strings.Contains(out, "generated P1 tables") {
		t.Fatalf("pdbgen output: %s", out)
	}
	for _, f := range []string{"R1.csv", "S1.csv", "R2.csv"} {
		if _, err := os.Stat(filepath.Join(data, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	queryText := "q(h) :- R1(h, x), S1(h, x, y), R2(h, y)"
	probRe := regexp.MustCompile(`(?m)^\d+  0\.\d+`)

	partial := run(t, "./cmd/pdbrun", "-data", data, "-query", queryText,
		"-order", "R1,S1,R2", "-strategy", "partial", "-plan")
	if !strings.Contains(partial, "plan:") || !probRe.MatchString(partial) {
		t.Fatalf("pdbrun partial output:\n%s", partial)
	}
	dnf := run(t, "./cmd/pdbrun", "-data", data, "-query", queryText,
		"-order", "R1,S1,R2", "-strategy", "dnf")
	if !probRe.MatchString(dnf) {
		t.Fatalf("pdbrun dnf output:\n%s", dnf)
	}
	// The two strategies print identical probability lines.
	pp := probRe.FindAllString(partial, -1)
	dd := probRe.FindAllString(dnf, -1)
	if len(pp) == 0 || len(pp) != len(dd) {
		t.Fatalf("answer line mismatch: %v vs %v", pp, dd)
	}
	for i := range pp {
		if pp[i] != dd[i] {
			t.Errorf("strategies disagree: %q vs %q", pp[i], dd[i])
		}
	}

	optimized := run(t, "./cmd/pdbrun", "-data", data, "-query", queryText, "-optimize")
	if !strings.Contains(optimized, "optimizer ranked") {
		t.Fatalf("pdbrun -optimize output:\n%s", optimized)
	}

	dot := filepath.Join(dir, "net.dot")
	run(t, "./cmd/pdbrun", "-data", data, "-query", queryText, "-dot", dot)
	b, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(b), "digraph") {
		t.Fatalf("DOT export: %v", err)
	}

	table1 := run(t, "./cmd/pdbbench", "-experiment", "table1")
	if !strings.Contains(table1, "P1/S1") || !strings.Contains(table1, "R1, S1, R2") {
		t.Fatalf("pdbbench table1 output:\n%s", table1)
	}
}

// TestPdbfuzzCLI: a clean sweep exits 0; an injected divergence exits 1 with
// a minimized, loadable reproducer that pdbrun can replay.
func TestPdbfuzzCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test rebuilds binaries; skipped in -short mode")
	}
	out := run(t, "./cmd/pdbfuzz", "-n", "40", "-seed", "1")
	if !strings.Contains(out, "40 instances ok") {
		t.Fatalf("pdbfuzz clean run output:\n%s", out)
	}

	dir := filepath.Join(t.TempDir(), "repro")
	cmd := exec.Command("go", "run", "./cmd/pdbfuzz",
		"-n", "20", "-seed", "1", "-inject", "dnf:0.3", "-dump", dir)
	cmd.Dir = ".."
	b, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("pdbfuzz with injected divergence exited 0:\n%s", b)
	}
	outInj := string(b)
	for _, want := range []string{"DIVERGED", "minimized reproducer", "query:", "pdbrun -data"} {
		if !strings.Contains(outInj, want) {
			t.Fatalf("pdbfuzz reproducer output missing %q:\n%s", want, outInj)
		}
	}
	// The dumped reproducer must load and evaluate.
	queryText, err := os.ReadFile(filepath.Join(dir, "query.txt"))
	if err != nil {
		t.Fatalf("dumped reproducer has no query.txt: %v", err)
	}
	replay := run(t, "./cmd/pdbrun", "-data", dir,
		"-query", strings.TrimSpace(string(queryText)), "-strategy", "dnf")
	if !strings.Contains(replay, "strategy=dnf") {
		t.Fatalf("replaying dumped reproducer:\n%s", replay)
	}
}

// TestPdbbenchUnknownExperiment: a bogus -experiment name must fail with an
// error that lists every valid experiment name.
func TestPdbbenchUnknownExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test rebuilds binaries; skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/pdbbench", "-experiment", "bogus")
	cmd.Dir = ".."
	b, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("pdbbench -experiment bogus exited 0:\n%s", b)
	}
	out := string(b)
	if !strings.Contains(out, `unknown experiment "bogus"`) {
		t.Fatalf("error does not name the bad experiment:\n%s", out)
	}
	for _, name := range []string{"table1", "fig5", "fig6", "fig7", "pipeline", "cache",
		"planner", "incremental", "topk", "spill", "compile"} {
		if !strings.Contains(out, name) {
			t.Errorf("error does not list valid experiment %q:\n%s", name, out)
		}
	}
}

func TestPdbbenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test rebuilds binaries; skipped in -short mode")
	}
	out := run(t, "./cmd/pdbbench", "-experiment", "fig7", "-scale", "small", "-json")
	var records []map[string]interface{}
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out[:min(len(out), 500)])
	}
	if len(records) == 0 {
		t.Fatal("no measurements")
	}
	for _, r := range records {
		if r["experiment"] != "fig7" || r["strategy"] == "" {
			t.Errorf("bad record: %v", r)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
