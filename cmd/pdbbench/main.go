// Command pdbbench regenerates the paper's evaluation: Table 1 and
// Figures 5–7 of Section 6, comparing the partial-lineage engine with the
// MayBMS-style exact-lineage baseline.
//
// Usage:
//
//	pdbbench -experiment all -scale small
//	pdbbench -experiment fig6 -scale paper
//
// The small scale finishes in seconds and preserves every qualitative shape
// of the paper's plots; the paper scale uses the published parameters
// (Figure 5: N=100, m=10000) and can take many minutes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// experimentNames lists every runnable experiment, in "all"'s execution
// order; the unknown-experiment error enumerates it for the user.
var experimentNames = []string{"table1", "fig5", "fig6", "fig7", "pipeline", "cache", "planner", "incremental", "topk", "spill", "compile"}

func main() {
	var (
		experiment  = flag.String("experiment", "all", "table1, fig5, fig6, fig7, pipeline, cache, planner, incremental, topk, spill, compile or all")
		scaleName   = flag.String("scale", "small", "small or paper")
		asJSON      = flag.Bool("json", false, "emit measurements as JSON instead of tables (fig experiments)")
		parallelism = flag.Int("parallelism", 0, "worker goroutines for operators and per-answer inference (0 or 1 = sequential; results are identical)")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget per evaluation, e.g. 30s (0 = none)")
		benchOut    = flag.String("bench-out", "BENCH_pipeline.json", "file for the pipeline benchmark artifact")
		cacheOut    = flag.String("cache-out", "BENCH_cache.json", "file for the cache benchmark artifact")
		plannerOut  = flag.String("planner-out", "BENCH_planner.json", "file for the planner benchmark artifact")
		incrOut     = flag.String("incremental-out", "BENCH_incremental.json", "file for the incremental benchmark artifact")
		topkOut     = flag.String("topk-out", "BENCH_topk.json", "file for the top-k benchmark artifact")
		spillOut    = flag.String("spill-out", "BENCH_spill.json", "file for the spill benchmark artifact")
		compileOut  = flag.String("compile-out", "BENCH_compile.json", "file for the compiled-circuit benchmark artifact")
		memBudget   = flag.Int64("mem-budget", 0, "operator scratch memory budget in bytes for the fig/pipeline experiments; join/dedup spill to disk past it, results unchanged (0 = unlimited)")
		withMemo    = flag.Bool("memo", true, "cache experiment: include the memoized-inference comparison")
		withCache   = flag.Bool("cache", true, "cache experiment: include the server result-cache comparison")
		metrics     = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the life of the process, e.g. localhost:6060")
	)
	flag.Parse()
	if *metrics != "" {
		addr, err := obs.Serve(*metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdbbench: metrics at http://%s/metrics\n", addr)
	}
	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Parallelism = *parallelism
	sc.Timeout = *timeout
	sc.MemBudget = *memBudget
	emitJSON := func(ms []experiments.Measurement) {
		type record struct {
			Experiment string  `json:"experiment"`
			Query      string  `json:"query"`
			X          float64 `json:"x"`
			Strategy   string  `json:"strategy"`
			Millis     float64 `json:"millis"`
			Offending  int     `json:"offending"`
			Answers    int     `json:"answers"`
			Approx     bool    `json:"approx"`
			Err        string  `json:"error,omitempty"`
		}
		records := make([]record, len(ms))
		for i, m := range ms {
			records[i] = record{
				Experiment: m.Experiment, Query: m.Query, X: m.X,
				Strategy: m.Strategy.String(), Millis: m.Millis,
				Offending: m.Offending, Answers: m.Answers,
				Approx: m.Approx, Err: m.Err,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fatal(err)
		}
	}
	run := func(name string) {
		switch name {
		case "table1":
			fmt.Println("== Table 1: queries and query plans ==")
			experiments.PrintTable1(os.Stdout)
			fmt.Println()
		case "fig5":
			ms, err := experiments.Fig5(sc)
			if err != nil {
				fatal(err)
			}
			if *asJSON {
				emitJSON(ms)
				return
			}
			experiments.Print(os.Stdout,
				fmt.Sprintf("Figure 5: scalability, 1%% offending tuples (scale=%s, per-group ms)", sc.Name), "m", ms)
			fmt.Println()
		case "fig6":
			ms, err := experiments.Fig6(sc)
			if err != nil {
				fatal(err)
			}
			if *asJSON {
				emitJSON(ms)
				return
			}
			experiments.Print(os.Stdout,
				fmt.Sprintf("Figure 6: varying the fraction of offending tuples r_f (scale=%s, per-group ms)", sc.Name), "r_f", ms)
			fmt.Println()
		case "fig7":
			ms, err := experiments.Fig7(sc)
			if err != nil {
				fatal(err)
			}
			if *asJSON {
				emitJSON(ms)
				return
			}
			experiments.Print(os.Stdout,
				fmt.Sprintf("Figure 7: varying the fraction of deterministic tuples, r_f=1 (scale=%s, per-group ms)", sc.Name), "r_d", ms)
			fmt.Println()
		case "pipeline":
			points, err := experiments.PipelineBench(sc, *parallelism)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*benchOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WritePipelineJSON(f, points); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("== Pipeline: serial vs parallel partial-lineage evaluation (scale=%s) ==\n", sc.Name)
			fmt.Printf("%-6s %14s %14s %8s\n", "query", "serial (ns)", "parallel (ns)", "speedup")
			for _, pt := range points {
				if pt.Err != "" {
					fmt.Printf("%-6s err: %s\n", pt.Query, pt.Err)
					continue
				}
				fmt.Printf("%-6s %14d %14d %7.2fx\n", pt.Query, pt.SerialNs, pt.ParallelNs, pt.Speedup)
			}
			fmt.Println("pipeline benchmark written to", *benchOut)
			fmt.Println()
		case "cache":
			rep, err := experiments.CacheBench(sc, experiments.CacheOptions{Memo: *withMemo, Cache: *withCache})
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*cacheOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteCacheJSON(f, rep); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("== Cache levels: memoized inference, hash-consing, server result cache (scale=%s) ==\n", sc.Name)
			for _, pt := range rep.Memo {
				if pt.Err != "" {
					fmt.Printf("memo    %-24s err: %s\n", pt.Query, pt.Err)
					continue
				}
				fmt.Printf("memo    %-24s %14d %14d %7.2fx  hits=%d\n", pt.Query, pt.OffNs, pt.OnNs, pt.Speedup, pt.MemoHits)
			}
			for _, pt := range rep.Cons {
				if pt.Err != "" {
					fmt.Printf("consing %-24s err: %s\n", pt.Query, pt.Err)
					continue
				}
				fmt.Printf("consing %-24s %8d nodes %8d nodes %6.2fx\n", pt.Query, pt.NodesOff, pt.NodesOn, pt.Reduction)
			}
			for _, pt := range rep.Serve {
				if pt.Err != "" {
					fmt.Printf("server  %-24s err: %s\n", pt.Query, pt.Err)
					continue
				}
				fmt.Printf("server  %-24s %14d %14d %7.2fx\n", pt.Query, pt.ColdNs, pt.WarmNs, pt.Speedup)
			}
			fmt.Println("cache benchmark written to", *cacheOut)
			fmt.Println()
		case "planner":
			rep, err := experiments.PlannerBench(sc)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*plannerOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WritePlannerJSON(f, rep); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("== Planner: adaptive cost-aware planning vs legacy pipeline (scale=%s) ==\n", sc.Name)
			fmt.Printf("%-22s %14s %14s %8s %18s %s\n", "workload", "legacy (ns)", "adaptive (ns)", "speedup", "offending (l/a)", "plan")
			for _, pt := range rep.Workloads {
				if pt.Err != "" {
					fmt.Printf("%-22s err: %s\n", pt.Query, pt.Err)
					continue
				}
				fmt.Printf("%-22s %14d %14d %7.2fx %10d/%-7d %s [%s]\n",
					pt.Query, pt.LegacyNs, pt.AdaptiveNs, pt.Speedup,
					pt.LegacyOffending, pt.AdaptiveOffending, pt.PlanSource, pt.PlanOrder)
			}
			for _, c := range rep.Backends {
				fmt.Printf("backend %-16s attempts=%d wins=%d fallbacks=%d mean=%dns\n",
					c.Backend, c.Attempts, c.Wins, c.Fallbacks, c.MeanNs)
			}
			fmt.Println("planner benchmark written to", *plannerOut)
			fmt.Println()
		case "topk":
			rep, err := experiments.TopkBench(sc)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*topkOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteTopkJSON(f, rep); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("== Top-k: dissociation-seeded vs cold multisimulation (scale=%s) ==\n", sc.Name)
			fmt.Printf("%-16s %3s %14s %14s %8s %16s %12s\n", "workload", "k", "cold (ns)", "seeded (ns)", "speedup", "samples (c/s)", "seed-exact")
			for _, pt := range rep.Points {
				if pt.Err != "" {
					fmt.Printf("%-16s err: %s\n", pt.Workload, pt.Err)
					continue
				}
				fmt.Printf("%-16s %3d %14d %14d %7.2fx %9d/%-6d %12d\n",
					pt.Workload, pt.K, pt.ColdNs, pt.SeededNs, pt.Speedup,
					pt.ColdSamples, pt.SeededSamples, pt.SeededExact)
			}
			fmt.Println("top-k benchmark written to", *topkOut)
			fmt.Println()
		case "spill":
			rep, err := experiments.SpillBench(sc)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*spillOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteSpillJSON(f, rep); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("== Spill: in-memory vs 25%%-of-peak budgeted execution (scale=%s) ==\n", sc.Name)
			fmt.Printf("%-14s %14s %14s %8s %12s %10s %12s\n", "workload", "in-mem (ns)", "spill (ns)", "ratio", "budget (B)", "spilled", "spill (B)")
			for _, pt := range rep.Points {
				if pt.Err != "" {
					fmt.Printf("%-14s err: %s\n", pt.Workload, pt.Err)
					continue
				}
				fmt.Printf("%-14s %14d %14d %7.2fx %12d %10d %12d\n",
					pt.Workload, pt.InMemNs, pt.SpillNs, pt.Ratio,
					pt.BudgetBytes, pt.SpilledPartitions, pt.SpillBytes)
			}
			fmt.Println("spill benchmark written to", *spillOut)
			fmt.Println()
		case "incremental":
			rep, err := experiments.IncrementalBench(sc)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*incrOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteIncrementalJSON(f, rep); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("== Incremental: cache retention under churn, patch vs recompute refresh (scale=%s) ==\n", sc.Name)
			for _, pt := range rep.Retention {
				if pt.Err != "" {
					fmt.Printf("retention %-16s err: %s\n", pt.Workload, pt.Err)
					continue
				}
				fmt.Printf("retention %-16s %4d/%-4d warm hits  ratio %.2f\n", pt.Workload, pt.WarmHits, pt.Requests, pt.HitRatio)
			}
			for _, pt := range rep.Refresh {
				if pt.Err != "" {
					fmt.Printf("refresh   %-16s err: %s\n", pt.Kind, pt.Err)
					continue
				}
				fmt.Printf("refresh   %-16s %12d ns mean over %d rounds (%d answers)\n", pt.Kind, pt.MeanNs, pt.Rounds, pt.Answers)
			}
			fmt.Printf("patch speedup %.2fx\n", rep.PatchSpeedup)
			fmt.Println("incremental benchmark written to", *incrOut)
			fmt.Println()
		case "compile":
			rep, err := experiments.CompileBench(sc)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*compileOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteCompileJSON(f, rep); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("== Compile: cached d-DNNF circuit re-evaluation vs Shannon re-solve (scale=%s) ==\n", sc.Name)
			fmt.Printf("%-14s %14s %14s %8s %22s\n", "workload", "shannon (ns)", "circuit (ns)", "speedup", "compiles/hits/evals")
			for _, pt := range rep.Points {
				if pt.Err != "" {
					fmt.Printf("%-14s err: %s\n", pt.Workload, pt.Err)
					continue
				}
				fmt.Printf("%-14s %14d %14d %7.2fx %10d/%d/%d\n",
					pt.Workload, pt.ShannonNs, pt.CircuitNs, pt.Speedup,
					pt.Compiles, pt.Hits, pt.Evals)
			}
			fmt.Println("compile benchmark written to", *compileOut)
			fmt.Println()
		default:
			fatal(fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(experimentNames, ", ")))
		}
	}
	if *experiment == "all" {
		for _, name := range experimentNames {
			run(name)
		}
		return
	}
	run(*experiment)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbbench:", err)
	os.Exit(1)
}
