// Command pdbfuzz runs the differential crosscheck harness from the command
// line: it generates seeded random databases and conjunctive queries,
// evaluates them under every requested strategy, and compares the answers
// against a brute-force possible-worlds oracle. On divergence it greedily
// shrinks the instance and prints a minimized, loadable reproducer.
//
// Usage:
//
//	pdbfuzz -n 1000 -seed 1 -strategies partial,safe,network,dnf,mc,dissociation
//
// On failure the reproducer is printed as one CSV block per relation (save
// each as <name>.csv, or pass -dump to have pdbfuzz write the directory) plus
// the query and a ready-to-run pdbrun replay command. Exit status is 1 when
// any instance diverges, 0 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/crosscheck"
	"repro/internal/obs"
)

func main() {
	var (
		n          = flag.Int("n", 200, "number of instances to check")
		seed       = flag.Int64("seed", 1, "first instance seed (instance i uses seed+i)")
		strategies = flag.String("strategies", "", "comma-separated strategies to compare (default all: partial,safe,network,dnf,mc,dissociation)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-instance evaluation timeout (0 = none)")
		samples    = flag.Int("samples", 5000, "Karp–Luby samples for the mc strategy")
		dump       = flag.String("dump", "", "write the minimized reproducer to this directory as <relation>.csv files plus query.txt")
		inject     = flag.String("inject", "", "self-test hook: inject an artificial divergence, e.g. dnf:0.25 shifts every dnf answer by 0.25")
		relations  = flag.Int("relations", 3, "generator: max relations (= query atoms)")
		arity      = flag.Int("arity", 2, "generator: max relation arity")
		tuples     = flag.Int("tuples", 4, "generator: max tuples per relation")
		domain     = flag.Int("domain", 3, "generator: constant domain size")
		uncertain  = flag.Int("uncertain", 10, "generator: max uncertain rows (oracle enumerates 2^uncertain worlds)")
		verbose    = flag.Bool("v", false, "log every instance")
		metrics    = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the life of the process, e.g. localhost:6060")
	)
	flag.Parse()
	if *metrics != "" {
		addr, err := obs.Serve(*metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdbfuzz: metrics at http://%s/metrics\n", addr)
	}

	opts := crosscheck.Options{Samples: *samples}
	if *strategies != "" {
		for _, name := range strings.Split(*strategies, ",") {
			s, err := core.ParseStrategy(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			opts.Strategies = append(opts.Strategies, s)
		}
	}
	if *inject != "" {
		name, amount, ok := strings.Cut(*inject, ":")
		s, err := core.ParseStrategy(strings.TrimSpace(name))
		if err != nil || !ok {
			fatal(fmt.Errorf("bad -inject %q (want strategy:amount, e.g. dnf:0.25)", *inject))
		}
		var eps float64
		if _, err := fmt.Sscanf(amount, "%g", &eps); err != nil {
			fatal(fmt.Errorf("bad -inject amount %q: %v", amount, err))
		}
		opts.Perturb = map[core.Strategy]float64{s: eps}
	}
	cfg := crosscheck.GenConfig{
		MaxRelations: *relations,
		MaxArity:     *arity,
		MaxTuples:    *tuples,
		Domain:       *domain,
		MaxUncertain: *uncertain,
	}

	start := time.Now()
	skips := 0
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		in := crosscheck.Generate(s, cfg)
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		rep, err := crosscheck.Check(ctx, in, opts)
		if err != nil {
			cancel()
			fmt.Fprintf(os.Stderr, "pdbfuzz: seed %d: evaluation error: %v\ninstance:\n%s", s, err, in)
			os.Exit(1)
		}
		if rep.Failed() {
			reportFailure(ctx, in, rep, opts, *dump)
			cancel()
			os.Exit(1)
		}
		if len(rep.Skipped) > 0 {
			skips++
		}
		if *verbose {
			fmt.Printf("seed %d ok: %d worlds, %d answers, %d strategies skipped\n",
				s, rep.Oracle.Worlds, len(rep.Oracle.Probs), len(rep.Skipped))
		}
		cancel()
	}
	fmt.Printf("pdbfuzz: %d instances ok in %v (%d with safe-plan skips, seeds %d..%d)\n",
		*n, time.Since(start).Round(time.Millisecond), skips, *seed, *seed+int64(*n)-1)
}

// reportFailure shrinks the failing instance and prints the minimized
// reproducer in a form that loads straight back into the tools.
func reportFailure(ctx context.Context, in *crosscheck.Instance, rep *crosscheck.Report, opts crosscheck.Options, dump string) {
	fmt.Printf("pdbfuzz: seed %d DIVERGED:\n", in.Seed)
	for _, d := range rep.Divergences {
		fmt.Printf("  %v\n", d)
	}
	min := crosscheck.Minimize(ctx, in, opts)
	fmt.Printf("minimized reproducer (%d tuples, %d atoms):\n%s", min.TupleCount(), min.AtomCount(), min)
	dir := dump
	if dir == "" {
		dir = "<dir>"
		fmt.Printf("save each CSV block above as <dir>/<relation>.csv, then replay with:\n")
	} else {
		if err := min.WriteDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "pdbfuzz: writing reproducer: %v\n", err)
		} else {
			fmt.Printf("reproducer written to %s; replay with:\n", dir)
		}
	}
	diverged := map[core.Strategy]bool{}
	for _, d := range rep.Divergences {
		diverged[d.Strategy] = true
	}
	for s := range diverged {
		fmt.Printf("  pdbrun -data %s -query '%s' -strategy %s\n", dir, min.Q.String(), s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbfuzz:", err)
	os.Exit(2)
}
