// Command pdbgen generates the paper's synthetic probabilistic databases
// (Section 6.1) as directories of CSV files.
//
// Usage:
//
//	pdbgen -query P1 -n 10 -m 1000 -fanout 4 -rf 0.01 -rd 1 -seed 1 -out data/p1
//
// generates the tables needed by Table 1 query P1 (R1, S1, R2) into
// data/p1/*.csv, loadable with pdbrun -data or pdb.LoadDatabase.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	var (
		queryName = flag.String("query", "P1", "Table 1 query whose tables to generate (P1, P2, P3, S2, S3)")
		n         = flag.Int("n", 10, "number of answer groups N (domain of H)")
		m         = flag.Int("m", 1000, "tuples per group m")
		fanout    = flag.Int("fanout", 4, "maximum FD-violation fanout (>= 2)")
		rf        = flag.Float64("rf", 0.01, "fraction of FD-violating prefixes r_f in [0,1]")
		rd        = flag.Float64("rd", 1, "fraction of non-deterministic R-table tuples r_d in [0,1]")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output directory (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "pdbgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := workload.SpecByName(*queryName)
	if err != nil {
		fatal(err)
	}
	params := workload.Params{N: *n, M: *m, Fanout: *fanout, RF: *rf, RD: *rd, Seed: *seed}
	db, err := workload.GenerateFor(spec, params)
	if err != nil {
		fatal(err)
	}
	if err := db.SaveDir(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s tables for %s (%d rows total) into %s\n",
		spec.Name, spec.QueryText, db.TotalRows(), *out)
	fmt.Printf("query: %s\njoin order: %v\n", spec.QueryText, spec.JoinOrder)
	// Report the empirical data-safety parameters (Section 6.1's FFD/FDT).
	for _, ts := range spec.Tables {
		rel, err := db.Relation(ts.Name)
		if err != nil {
			fatal(err)
		}
		uncertain := float64(rel.UncertainCount()) / float64(rel.Len())
		switch ts.Kind {
		case workload.KindHier:
			attrs := rel.Attrs
			frac, err := rel.FDViolationFraction(attrs[:2], attrs[2:])
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %s: %d rows, FD %v→%v violated in %.1f%% of groups, %.0f%% uncertain\n",
				ts.Name, rel.Len(), attrs[1:2], attrs[2:], 100*frac, 100*uncertain)
		default:
			fmt.Printf("  %s: %d rows, %.0f%% uncertain\n", ts.Name, rel.Len(), 100*uncertain)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbgen:", err)
	os.Exit(1)
}
