// Command pdbrun evaluates a conjunctive query over a probabilistic
// database stored as a directory of CSV files.
//
// Usage:
//
//	pdbrun -data data/p1 -query 'q(h) :- R1(h, x), S1(h, x, y), R2(h, y)' \
//	       -order R1,S1,R2 -strategy partial
//
// Strategies: partial (the paper's hybrid method, default), safe (purely
// extensional, fails if the instance is not data-safe), network (full
// intensional AND-OR network), dnf (MayBMS-style exact lineage), mc
// (Karp–Luby sampling).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/pdb"
)

func main() {
	var (
		dataDir   = flag.String("data", "", "directory of <relation>.csv files (required)")
		queryText = flag.String("query", "", "conjunctive query, e.g. 'q(h) :- R(h,x), S(h,x,y)' (required)")
		order     = flag.String("order", "", "comma-separated left-deep join order (default: safe plan if the query is safe, else body order)")
		strategy  = flag.String("strategy", "partial", "evaluation strategy: partial, safe, network, dnf, mc or dissociation")
		samples   = flag.Int("samples", 100000, "samples for mc and the approximate fallback")
		parallel  = flag.Int("parallel", 1, "deprecated alias for -parallelism")
		workers   = flag.Int("parallelism", 0, "worker goroutines for operators and per-answer inference (0 = use -parallel; results are identical to sequential)")
		timeout   = flag.Duration("timeout", 0, "abort the evaluation after this wall-clock duration, e.g. 30s (0 = none)")
		memBudget = flag.Int64("mem-budget", 0, "operator scratch memory budget in bytes; join/dedup partitions spill to disk past it, results unchanged (0 = unlimited)")
		width     = flag.Int("width", 0, "exact-inference width cap (0 = default)")
		seed      = flag.Int64("seed", 1, "sampler seed")
		showPlan  = flag.Bool("plan", false, "print the physical plan before running")
		dotOut    = flag.String("dot", "", "write the AND-OR network to this file (network strategies)")
		topK      = flag.Int("top", 20, "print at most this many answers (0 = all)")
		optimize  = flag.Bool("optimize", false, "data-aware plan selection: cost candidate join orders and use the best (the default evaluation path already does this; -optimize additionally prints the ranking)")
		noAdapt   = flag.Bool("no-adaptive-plan", false, "disable the cost-aware planner: safe-plan-else-body-order plans and the fixed legacy inference backend order")
		noCircuit = flag.Bool("no-circuit", false, "disable the compiled-circuit exact backend: exact inference reverts to the memoized Shannon solver (ablation; answers are bit-identical either way)")
		sqlOut    = flag.String("sql", "", "write the paper-style SQL batch implementing the plan to this file ('-' for stdout)")
		trace     = flag.Bool("trace", false, "print a per-operator execution trace (network strategies)")
		explain   = flag.Bool("explain", false, "print an EXPLAIN ANALYZE operator tree after the run (implies tracing)")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the life of the process, e.g. localhost:6060")
	)
	flag.Parse()
	if *metrics != "" {
		addr, err := obs.Serve(*metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdbrun: metrics at http://%s/metrics\n", addr)
	}
	if *dataDir == "" || *queryText == "" {
		fmt.Fprintln(os.Stderr, "pdbrun: -data and -query are required")
		flag.Usage()
		os.Exit(2)
	}
	db, err := pdb.LoadDatabase(*dataDir)
	if err != nil {
		fatal(err)
	}
	q, err := pdb.ParseQuery(*queryText)
	if err != nil {
		fatal(err)
	}
	strat, err := pdb.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	par := *workers
	if par == 0 {
		par = *parallel
	}
	opts := pdb.Options{Strategy: strat, Samples: *samples, MaxWidth: *width, Seed: *seed, Parallelism: par, Trace: *trace || *explain, NoAdaptivePlan: *noAdapt, NoCircuit: *noCircuit}
	opts.Budget.Mem = *memBudget
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sqlOut != "" {
		text, err := pdb.GenerateSQL(q, strings.Split(*order, ","))
		if err != nil {
			fatal(err)
		}
		if *sqlOut == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(*sqlOut, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	}

	var res *pdb.Result
	if *optimize {
		best, ranked, err := db.OptimizePlan(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("optimizer ranked %d join orders; best: %s (est offending=%d, est rows=%.0f)\n",
			len(ranked), strings.Join(best.Order, ","), best.EstOffending, best.EstRows)
		if *showPlan {
			fmt.Println("plan:", best.Plan)
		}
		res, err = db.EvaluateWithPlanContext(ctx, q, best.Plan, opts)
		if err != nil {
			fatal(err)
		}
	} else if *order != "" {
		plan, err := pdb.LeftDeepPlan(q, strings.Split(*order, ",")...)
		if err != nil {
			fatal(err)
		}
		if *showPlan {
			fmt.Println("plan:", plan)
		}
		res, err = db.EvaluateWithPlanContext(ctx, q, plan, opts)
		if err != nil {
			fatal(err)
		}
	} else {
		if *showPlan {
			if plan, err := pdb.SafePlan(q); err == nil {
				fmt.Println("plan (safe):", plan)
			} else {
				fmt.Println("plan: left-deep in body order (query is unsafe:", err, ")")
			}
		}
		res, err = db.EvaluateContext(ctx, q, opts)
		if err != nil {
			fatal(err)
		}
	}

	rows := append([]pdb.Row(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].P > rows[j].P })
	if len(res.Attrs) == 0 {
		fmt.Printf("Pr(q) = %.9f\n", res.BoolProb())
	} else {
		fmt.Printf("%s  probability\n", strings.Join(res.Attrs, ", "))
		for i, row := range rows {
			if *topK > 0 && i >= *topK {
				fmt.Printf("... (%d more answers)\n", len(rows)-i)
				break
			}
			vals := make([]string, len(row.Vals))
			for j, v := range row.Vals {
				vals[j] = v.String()
			}
			fmt.Printf("%s  %.9f\n", strings.Join(vals, ", "), row.P)
		}
	}
	s := res.Stats
	fmt.Printf("\nstats: strategy=%v answers=%d offending=%d network=%d nodes/%d edges width=%d approx=%v\n",
		s.Strategy, s.Answers, s.OffendingTuples, s.NetworkNodes, s.NetworkEdges, s.InferenceWidth, s.Approximate)
	fmt.Printf("       lineage=%d clauses/%d vars plan=%v inference=%v\n",
		s.LineageClauses, s.LineageVars, s.PlanTime, s.InferenceTime)
	if s.SpilledPartitions > 0 {
		fmt.Printf("       spill: %d partitions, %d bytes (mem peak %d / budget %d)\n",
			s.SpilledPartitions, s.SpillBytes, s.MemPeakBytes, *memBudget)
	}
	for _, js := range s.PerJoin {
		fmt.Printf("       join %s: conditioned %d offending tuples\n", js.Join, js.Conditioned)
	}
	if *explain {
		fmt.Println("\nexplain analyze:")
		if err := res.Explain(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *trace {
		fmt.Println("\noperator trace (post-order):")
		fmt.Printf("%10s %12s %12s  %s\n", "rows", "net growth", "own time", "operator")
		for _, op := range s.Operators {
			fmt.Printf("%10d %12d %12v  %s\n", op.Rows, op.NetworkGrowth, op.Time.Round(time.Microsecond), op.Op)
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteNetworkDOT(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("AND-OR network written to", *dotOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbrun:", err)
	os.Exit(1)
}
