// Command pdbserve is the long-lived HTTP/JSON query server: it loads a
// probabilistic database once from a directory of CSV files and serves
// POST /query with admission control, per-request deadlines and optional
// degradation to Karp–Luby sampling, plus /healthz, /metrics and
// /debug/pprof on the same address.
//
// Usage:
//
//	pdbserve -data data/p1 -addr :8080 -max-inflight 8 -max-queue 32
//
// See docs/SERVER.md for the request/response schema, status codes and
// operational envelope. The server drains in-flight queries on SIGINT or
// SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/pdb"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		dataDir     = flag.String("data", "", "directory of <relation>.csv files (required)")
		maxInFlight = flag.Int("max-inflight", 0, "concurrent evaluations (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "requests queued beyond the in-flight limit before 503 (0 = 4×in-flight)")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 5*time.Minute, "cap on requested deadlines")
		maxParallel = flag.Int("max-parallelism", 0, "cap on per-request parallelism (0 = GOMAXPROCS)")
		retryAfter  = flag.Duration("retry-after", time.Second, "backoff hint attached to 503 responses")
		noDegrade   = flag.Bool("no-degrade", false, "refuse per-request degradation to Karp–Luby sampling")
		drain       = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight queries")
		cacheSize   = flag.Int("cache-entries", 0, "result cache capacity in entries (0 = 1024)")
		noCache     = flag.Bool("no-cache", false, "disable the snapshot-versioned result cache")
		noCircuit   = flag.Bool("no-circuit", false, "disable the compiled-circuit exact backend for every request (ablation; answers are bit-identical either way)")
		memBudget   = flag.Int64("mem-budget", 0, "per-evaluation operator scratch memory budget in bytes; join/dedup spill to disk past it, answers unchanged (0 = unlimited)")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "pdbserve: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	db, err := pdb.LoadDatabase(*dataDir)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{
		DB:              db,
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxParallelism:  *maxParallel,
		RetryAfter:      *retryAfter,
		DisableDegrade:  *noDegrade,
		CacheEntries:    *cacheSize,
		DisableCache:    *noCache,
		NoCircuit:       *noCircuit,
		MemBudget:       *memBudget,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		fmt.Fprintln(os.Stderr, "pdbserve: draining in-flight queries...")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "pdbserve:", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "pdbserve:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "pdbserve: serving %s on http://%s (POST /query, /healthz, /metrics)\n",
		*dataDir, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbserve:", err)
	os.Exit(1)
}
