// Command pdbshell is an interactive shell for the probabilistic query
// engine: build or load a database, set a query, pick a strategy or plan,
// and evaluate — see 'help' inside the shell.
//
//	$ go run ./cmd/pdbshell
//	pdb shell — type 'help' for commands
//	rel R x
//	add R 0.5 1
//	query q :- R(x)
//	run
package main

import (
	"fmt"
	"os"

	"repro/internal/shell"
)

func main() {
	if err := shell.New().Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdbshell:", err)
		os.Exit(1)
	}
}
