// Command pdbshell is an interactive shell for the probabilistic query
// engine: build or load a database, set a query, pick a strategy or plan,
// and evaluate — see 'help' inside the shell.
//
//	$ go run ./cmd/pdbshell
//	pdb shell — type 'help' for commands
//	rel R x
//	add R 0.5 1
//	query q :- R(x)
//	run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/shell"
)

func main() {
	metrics := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the life of the process, e.g. localhost:6060")
	flag.Parse()
	if *metrics != "" {
		addr, err := obs.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdbshell:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pdbshell: metrics at http://%s/metrics\n", addr)
	}
	if err := shell.New().Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdbshell:", err)
		os.Exit(1)
	}
}
