// Data cleaning / integration: the Section 4.1 story on real-looking data.
//
// An integrated customer database holds deduplicated customer records
// (uncertain: the dedup classifier emits match probabilities) and addresses
// extracted from several sources. Clean customers satisfy the functional
// dependency customer → city; dirty ones carry conflicting extracted cities.
// Shipping availability per city is itself probabilistic (a partner feed).
//
// The business question "will some customer's order ship?" is the unsafe
// pattern q :- Customer(c), Address(c, city), Shipping(city). This example
// sweeps the fraction of dirty customers and shows the paper's headline
// behaviour: evaluation cost and symbolic work grow smoothly with the
// distance from data-safety (the number of offending tuples), instead of
// falling off a cliff the moment the query is unsafe.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/pdb"
)

const (
	customers = 600
	cities    = 40
)

func buildDatabase(dirtyFrac float64, rng *rand.Rand) *pdb.Database {
	db := pdb.NewDatabase()
	cust := db.CreateRelation("Customer", "c")
	addr := db.CreateRelation("Address", "c", "city")
	ship := db.CreateRelation("Shipping", "city")
	for c := 1; c <= customers; c++ {
		check(cust.AddInts(0.02+0.08*rng.Float64(), int64(c)))
		city := int64(1 + rng.Intn(cities))
		check(addr.AddInts(0.3+0.4*rng.Float64(), int64(c), city))
		if rng.Float64() < dirtyFrac {
			// A conflicting extraction: second city for the same customer.
			other := city%int64(cities) + 1
			check(addr.AddInts(0.3+0.4*rng.Float64(), int64(c), other))
		}
	}
	for city := 1; city <= cities; city++ {
		check(ship.AddInts(0.05+0.15*rng.Float64(), int64(city)))
	}
	return db
}

func main() {
	q, err := pdb.ParseQuery("ships :- Customer(c), Address(c, city), Shipping(city)")
	check(err)
	fmt.Printf("query: %s (safe: %v)\n", q, q.IsSafe())
	fmt.Printf("%d customers, %d cities; sweeping the dirty-record fraction\n\n", customers, cities)
	fmt.Printf("%8s %12s %12s %14s %12s %8s\n", "dirty", "Pr(ships)", "offending", "net nodes", "time", "approx")

	for _, dirty := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.4} {
		db := buildDatabase(dirty, rand.New(rand.NewSource(7)))
		start := time.Now()
		res, err := db.Evaluate(q, pdb.Options{Strategy: pdb.PartialLineage, Samples: 50000})
		check(err)
		elapsed := time.Since(start).Round(time.Microsecond)
		approx := ""
		if res.Stats.Approximate {
			approx = "mc"
		}
		fmt.Printf("%8.2f %12.6f %12d %14d %12v %8s\n",
			dirty, res.BoolProb(), res.Stats.OffendingTuples, res.Stats.NetworkNodes, elapsed, approx)
	}

	fmt.Println("\nWith no dirty records the FD c→city holds, the plan is data-safe and")
	fmt.Println("evaluation is purely extensional (0 offending tuples, 1-node network).")
	fmt.Println("Each dirty customer adds a handful of symbolic nodes; cost tracks the")
	fmt.Println("number of offending tuples — the paper's 'distance from the ideal setting'.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
