// Quickstart: build a tiny probabilistic database, run the canonical unsafe
// query q :- R(x), S(x,y), T(y) (Section 4.1 of the paper) under every
// evaluation strategy, and inspect the statistics that distinguish them.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/pdb"
)

func main() {
	db := pdb.NewDatabase()

	// R(x): two uncertain facts.
	r := db.CreateRelation("R", "x")
	check(r.AddInts(0.5, 1))
	check(r.AddInts(0.7, 2))

	// S(x, y): x=1 violates the functional dependency x→y (two y values),
	// which is what makes this instance unsafe for the left-deep plan.
	s := db.CreateRelation("S", "x", "y")
	check(s.AddInts(0.6, 1, 1))
	check(s.AddInts(0.4, 1, 2))
	check(s.AddInts(0.9, 2, 2))

	// T(y).
	t := db.CreateRelation("T", "y")
	check(t.AddInts(0.8, 1))
	check(t.AddInts(0.3, 2))

	q, err := pdb.ParseQuery("q :- R(x), S(x, y), T(y)")
	check(err)
	fmt.Printf("query:  %s\n", q)
	fmt.Printf("safe:   %v (the classic #P-hard pattern)\n\n", q.IsSafe())

	for _, strat := range []pdb.Strategy{pdb.PartialLineage, pdb.FullNetwork, pdb.DNFLineage, pdb.MonteCarlo} {
		res, err := db.Evaluate(q, pdb.Options{Strategy: strat, Samples: 200000, Seed: 1})
		check(err)
		fmt.Printf("%-8v Pr(q) = %.6f   offending=%d network=%d nodes lineage=%d clauses approx=%v\n",
			strat, res.BoolProb(), res.Stats.OffendingTuples, res.Stats.NetworkNodes,
			res.Stats.LineageClauses, res.Stats.Approximate)
	}

	// SafePlanOnly refuses: the single FD violation makes the instance
	// data-unsafe. Partial lineage conditions exactly that one tuple.
	if _, err := db.Evaluate(q, pdb.Options{Strategy: pdb.SafePlanOnly}); err != nil {
		fmt.Printf("\nsafe-plan-only correctly refuses: %v\n", err)
	}

	// Export the partial-lineage AND-OR network for Graphviz.
	res, err := db.Evaluate(q, pdb.Options{Strategy: pdb.PartialLineage})
	check(err)
	fmt.Println("\npartial-lineage AND-OR network (render with `dot -Tpng`):")
	check(res.WriteNetworkDOT(os.Stdout))

	// A safe query by contrast evaluates fully extensionally.
	q2, err := pdb.ParseQuery("q :- R(x), S(x, y)")
	check(err)
	plan, err := pdb.SafePlan(q2)
	check(err)
	res2, err := db.Evaluate(q2, pdb.Options{Strategy: pdb.SafePlanOnly})
	check(err)
	fmt.Printf("\nsafe query %s\n  safe plan: %s\n  Pr = %.6f, offending tuples = %d (purely extensional)\n",
		q2, plan, res2.BoolProb(), res2.Stats.OffendingTuples)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
