// Safe-query tooling: classify queries by the dichotomy (safe/unsafe) and
// the strictly-hierarchical property (bounded-treewidth lineage,
// Theorem 4.2), synthesize safe plans, and show that a safe plan evaluates
// the same query correctly where a naive plan would need conditioning.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/pdb"
)

func main() {
	fmt.Println("query classification (Sections 3 and 4.3):")
	fmt.Printf("%-40s %6s %18s\n", "query", "safe", "strictly-hier.")
	for _, text := range []string{
		"q :- R(x, y), S(x, z)",
		"q :- R(x), S(x, y)",
		"q :- R(x, y), S(x, y, z)",
		"q :- R(x), S(x, y), T(y)",
		"q :- R(x, y), S(y, z)",
	} {
		q, err := pdb.ParseQuery(text)
		check(err)
		fmt.Printf("%-40s %6v %18v\n", text, q.IsSafe(), q.IsStrictlyHierarchical())
	}

	// Build data where the naive plan for R(x,y),S(x,z) would need heavy
	// conditioning (every x joins many y and z), yet the safe plan
	// π_∅(π_x R ⋈ π_x S) stays purely extensional.
	rng := rand.New(rand.NewSource(9))
	db := pdb.NewDatabase()
	r := db.CreateRelation("R", "x", "y")
	s := db.CreateRelation("S", "x", "z")
	for x := 1; x <= 30; x++ {
		for k := 1; k <= 10; k++ {
			check(r.AddInts(0.15*rng.Float64(), int64(x), int64(k)))
			check(s.AddInts(0.15*rng.Float64(), int64(x), int64(k)))
		}
	}

	q, err := pdb.ParseQuery("q :- R(x, y), S(x, z)")
	check(err)
	safePlan, err := pdb.SafePlan(q)
	check(err)
	fmt.Printf("\nsafe plan for %s:\n  %s\n", q, safePlan)

	extensional, err := db.EvaluateWithPlan(q, safePlan, pdb.Options{Strategy: pdb.SafePlanOnly})
	check(err)
	fmt.Printf("safe plan, extensional only: Pr = %.9f (offending: %d)\n",
		extensional.BoolProb(), extensional.Stats.OffendingTuples)

	naive, err := pdb.LeftDeepPlan(q, "R", "S")
	check(err)
	hybrid, err := db.EvaluateWithPlan(q, naive, pdb.Options{Strategy: pdb.PartialLineage})
	check(err)
	fmt.Printf("naive plan %s, partial lineage: Pr = %.9f (offending: %d)\n",
		naive, hybrid.BoolProb(), hybrid.Stats.OffendingTuples)

	if math.Abs(extensional.BoolProb()-hybrid.BoolProb()) > 1e-7 {
		log.Fatalf("plans disagree: %.12f vs %.12f", extensional.BoolProb(), hybrid.BoolProb())
	}
	fmt.Println("\nboth plans agree; the safe plan avoided every symbolic operation, while")
	fmt.Println("the naive plan recovered correctness by conditioning the offending tuples.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
