// Sensor network monitoring: one of the motivating applications of
// probabilistic databases (sensor data, Section 1 of the paper).
//
// Regions fire with some probability (uncertain detections), links between
// regions and gateway nodes are uncertain (lossy radio), and gateways raise
// alarms with a confidence. The monitoring question — "what is the
// probability that some firing region reaches an alarming gateway?" — is
// exactly the #P-hard query pattern q :- Region(x), Link(x,y), Alarm(y).
//
// The network topology is nearly a matching (each region reports to one
// gateway), so the instance is nearly data-safe: partial lineage evaluates
// almost everything extensionally and conditions only the few multi-homed
// regions.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/pdb"
)

func main() {
	const (
		regions    = 400
		gateways   = 80
		multihomed = 8 // regions connected to two gateways: the offending part
	)
	rng := rand.New(rand.NewSource(42))

	db := pdb.NewDatabase()
	region := db.CreateRelation("Region", "x")
	link := db.CreateRelation("Link", "x", "y")
	alarm := db.CreateRelation("Alarm", "y")

	for x := 1; x <= regions; x++ {
		check(region.AddInts(0.01+0.05*rng.Float64(), int64(x)))
		g := int64(1 + rng.Intn(gateways))
		check(link.AddInts(0.2+0.3*rng.Float64(), int64(x), g))
		if x <= multihomed {
			g2 := g%int64(gateways) + 1
			check(link.AddInts(0.2+0.3*rng.Float64(), int64(x), g2))
		}
	}
	for y := 1; y <= gateways; y++ {
		check(alarm.AddInts(0.05+0.2*rng.Float64(), int64(y)))
	}

	q, err := pdb.ParseQuery("alert :- Region(x), Link(x, y), Alarm(y)")
	check(err)
	fmt.Printf("monitoring query: %s (safe: %v)\n", q, q.IsSafe())
	fmt.Printf("topology: %d regions, %d gateways, %d multi-homed regions\n\n", regions, gateways, multihomed)

	partial, err := db.Evaluate(q, pdb.Options{Strategy: pdb.PartialLineage})
	check(err)
	fmt.Printf("partial lineage: Pr(alert) = %.6f\n", partial.BoolProb())
	fmt.Printf("  offending tuples: %d (the multi-homed regions + gateway fan-in)\n", partial.Stats.OffendingTuples)
	fmt.Printf("  AND-OR network:   %d nodes, %d edges (vs %d input tuples)\n",
		partial.Stats.NetworkNodes, partial.Stats.NetworkEdges,
		region.Len()+link.Len()+alarm.Len())
	fmt.Printf("  inference width:  %d, time: plan=%v inference=%v\n\n",
		partial.Stats.InferenceWidth, partial.Stats.PlanTime, partial.Stats.InferenceTime)

	dnf, err := db.Evaluate(q, pdb.Options{Strategy: pdb.DNFLineage})
	check(err)
	fmt.Printf("full DNF lineage (MayBMS-style): Pr(alert) = %.6f\n", dnf.BoolProb())
	fmt.Printf("  lineage: %d clauses over %d variables, time: plan=%v inference=%v\n\n",
		dnf.Stats.LineageClauses, dnf.Stats.LineageVars, dnf.Stats.PlanTime, dnf.Stats.InferenceTime)

	if diff := partial.BoolProb() - dnf.BoolProb(); diff < 1e-7 && diff > -1e-7 {
		fmt.Println("both methods agree exactly — partial lineage just did far less symbolic work")
	} else {
		fmt.Printf("WARNING: methods disagree by %g\n", diff)
	}

	// Per-gateway alert probabilities: the grouped variant of the query,
	// ranked by the multisimulation top-k (only the contested gateways are
	// simulated precisely).
	qg, err := pdb.ParseQuery("alert(y) :- Region(x), Link(x, y), Alarm(y)")
	check(err)
	grouped, err := db.Evaluate(qg, pdb.Options{Strategy: pdb.PartialLineage})
	check(err)
	topAnswers, separated, err := db.TopK(qg, 3, 1)
	check(err)
	fmt.Printf("per-gateway analysis: %d gateways can alert; top 3 (separated: %v):\n",
		len(grouped.Rows), separated)
	for i, a := range topAnswers {
		exact := grouped.Prob(a.Vals...)
		fmt.Printf("  #%d gateway %v: Pr ∈ [%.4f, %.4f] (exact %.4f)\n",
			i+1, a.Vals[0], a.Lo, a.Hi, exact)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
