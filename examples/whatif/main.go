// What-if analysis with evidence conditioning: a root-cause-diagnosis
// scenario over uncertain infrastructure data.
//
// An ops team has probabilistic knowledge about which services run on which
// hosts (from a noisy CMDB) and which hosts sit in which racks (from an
// incomplete inventory). The query "which rack could take service s down?"
// is the familiar chain Service → Host → Rack. As observations arrive —
// an engineer confirms a placement, rules another out — the team
// re-evaluates the probabilities conditioned on the evidence
// (Koch & Olteanu's conditioning of probabilistic databases, the paper's
// reference [16]).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/pdb"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	db := pdb.NewDatabase()
	svc := db.CreateRelation("RunsOn", "service", "host")
	rack := db.CreateRelation("InRack", "host", "rack")
	fail := db.CreateRelation("RackRisk", "rack")

	const (
		services = 6
		hosts    = 10
		racks    = 4
	)
	// Each service has 1-2 candidate hosts (dedup uncertainty).
	for s := 1; s <= services; s++ {
		h := 1 + rng.Intn(hosts)
		check(svc.AddInts(0.5+0.4*rng.Float64(), int64(s), int64(h)))
		if rng.Intn(2) == 0 {
			check(svc.AddInts(0.2+0.3*rng.Float64(), int64(s), int64(h%hosts+1)))
		}
	}
	// Host-to-rack mapping mostly certain, a few unknown.
	for h := 1; h <= hosts; h++ {
		p := 1.0
		if rng.Intn(3) == 0 {
			p = 0.6 + 0.3*rng.Float64()
		}
		check(rack.AddInts(p, int64(h), int64(1+rng.Intn(racks))))
	}
	// Rack risk assessments.
	for r := 1; r <= racks; r++ {
		check(fail.AddInts(0.05+0.2*rng.Float64(), int64(r)))
	}

	q, err := pdb.ParseQuery("atRisk(service) :- RunsOn(service, h), InRack(h, r), RackRisk(r)")
	check(err)
	fmt.Printf("query: %s\n\n", q)

	prior, err := db.Evaluate(q, pdb.Options{})
	check(err)
	fmt.Println("prior risk per service:")
	printRows(prior)

	// Observation 1: an engineer confirms service 1 really does run on its
	// primary host. Observation 2: host 3's rack assignment turns out wrong.
	evidence := []pdb.Evidence{
		{Relation: "RunsOn", Vals: firstTupleOf(db, "RunsOn"), Present: true},
	}
	posterior, err := db.Evaluate(q, pdb.Options{Evidence: evidence})
	check(err)
	fmt.Println("\nafter confirming the first placement record:")
	printRows(posterior)

	// Quantify the information gained for the affected service.
	s1 := posterior.Rows[0].Vals
	delta := posterior.Prob(s1...) - prior.Prob(s1...)
	fmt.Printf("\nservice %v risk moved by %+.4f with the observation\n", s1[0], delta)

	// Contradictory evidence is rejected as a zero-probability observation.
	bad := []pdb.Evidence{{Relation: "RackRisk", Vals: []pdb.Value{pdb.Int(99)}, Present: true}}
	if _, err := db.Evaluate(q, pdb.Options{Evidence: bad}); err != nil {
		fmt.Printf("\nbogus evidence correctly rejected: %v\n", err)
	}
}

// firstTupleOf returns the first stored tuple of the relation.
func firstTupleOf(db *pdb.Database, name string) []pdb.Value {
	rel, err := db.Relation(name)
	check(err)
	ts := rel.Tuples()
	if len(ts) == 0 {
		log.Fatalf("relation %s is empty", name)
	}
	return ts[0].Vals
}

func printRows(res *pdb.Result) {
	for _, row := range res.Top(0) {
		fmt.Printf("  service %v: %.4f\n", row.Vals[0], row.P)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
