// Package aonet implements AND-OR networks (Section 5.1 of the paper).
//
// An AND-OR network is a directed acyclic graph whose nodes are Boolean
// random variables labeled And, Or or Leaf. Leaves carry a marginal
// probability P(v); edges carry probabilities P(w,v). The conditional
// probability of a node given its parents is
//
//	Or:   φ(x_v=1 | x_par) = 1 - ∏_{w∈par(v)} (1 - x_w·P(w,v))
//	And:  φ(x_v=1 | x_par) = ∏_{w∈par(v)} x_w·P(w,v)
//	Leaf: φ(x_v=1)         = P(v)
//
// AND-OR networks are a special case of Bayesian networks; the joint
// distribution is N(x) = ∏_v φ(x_v | x_par(v)).
//
// Every network contains the distinguished node Epsilon: a leaf with P = 1
// representing the trivial ("always true") lineage ε of Examples 5.3–5.5.
//
// Networks grow monotonically through the augmentation operation ∪̊ of the
// paper: AddLeaf and AddGate attach new nodes whose parents already exist,
// which keeps the graph acyclic by construction and makes node IDs a
// topological order.
//
// Deterministic gates (every edge probability exactly 1) are hash-consed:
// adding a second gate with the same label and parent set returns the
// existing node. This implements the paper's hash functions h (dedup) and g
// (join) in the sound regime — see DESIGN.md §1 for why consing is restricted
// to deterministic gates.
package aonet

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node of a network. IDs are dense, start at 0, and are
// assigned in topological order (parents before children).
type NodeID int32

// Epsilon is the distinguished trivial-lineage leaf present in every
// network: a leaf with probability 1.
const Epsilon NodeID = 0

// Label classifies a node.
type Label uint8

// Node labels.
const (
	Leaf Label = iota
	And
	Or
)

// String returns the label name.
func (l Label) String() string {
	switch l {
	case Leaf:
		return "Leaf"
	case And:
		return "And"
	case Or:
		return "Or"
	default:
		return fmt.Sprintf("Label(%d)", uint8(l))
	}
}

// Edge is a parent reference with its edge probability P(w,v).
type Edge struct {
	From NodeID
	P    float64
}

// Network is a mutable AND-OR network. The zero value is not usable; create
// networks with New.
type Network struct {
	labels  []Label
	leafP   []float64 // indexed by NodeID; meaningful for leaves only
	parents [][]Edge  // indexed by NodeID; nil for leaves
	// consing buckets deterministic gates by the structural fingerprint of
	// (label, sorted parent IDs); bucket entries are verified field by field
	// before reuse, so a 64-bit hash collision can never merge two distinct
	// gates.
	consing    map[uint64][]NodeID
	consingOff bool
	consHits   int
}

// SetHashConsing enables or disables deterministic-gate hash-consing.
// Disabling is always sound (fresh nodes are never wrong, only bigger) and
// exists for the Section 5.4 ablation: consing is what lets deduplication
// collapse identical deterministic Or gates and keep the network treewidth
// low on instances like the deterministic complete-bipartite S example.
func (n *Network) SetHashConsing(enabled bool) { n.consingOff = !enabled }

// ConsHits returns how many AddGate calls were answered from the consing
// table instead of allocating a node — the network's structure-sharing win.
func (n *Network) ConsHits() int { return n.consHits }

// New creates a network containing only the ε node.
func New() *Network {
	n := &Network{consing: make(map[uint64][]NodeID)}
	id := n.AddLeaf(1)
	if id != Epsilon {
		panic("aonet: ε allocation broken")
	}
	return n
}

// Len returns the number of nodes, including ε.
func (n *Network) Len() int { return len(n.labels) }

// EdgeCount returns the total number of edges.
func (n *Network) EdgeCount() int {
	c := 0
	for _, ps := range n.parents {
		c += len(ps)
	}
	return c
}

// Label returns the label of v.
func (n *Network) Label(v NodeID) Label { return n.labels[v] }

// LeafP returns the probability of leaf v. It panics if v is not a leaf.
func (n *Network) LeafP(v NodeID) float64 {
	if n.labels[v] != Leaf {
		panic("aonet: LeafP on " + n.labels[v].String())
	}
	return n.leafP[v]
}

// Parents returns the parent edges of v. The returned slice must not be
// modified.
func (n *Network) Parents(v NodeID) []Edge { return n.parents[v] }

// SetLeafP re-weights leaf v to probability p in place, returning the
// previous value. It panics if v is not a leaf or p is outside [0,1].
//
// Re-weighting is the network half of incremental maintenance under
// prob-updates: the network's structure (gates, edges, hash-consing
// identities) encodes only *which* tuples combine, never their
// probabilities, so changing a base tuple's probability maps to re-weighting
// its leaf and re-running inference — no rebuild, and the deterministic-gate
// intern table stays valid because leaves are never consed. Concurrent use
// requires external synchronization, like every other mutator.
func (n *Network) SetLeafP(v NodeID, p float64) float64 {
	if n.labels[v] != Leaf {
		panic("aonet: SetLeafP on " + n.labels[v].String())
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		panic(fmt.Sprintf("aonet: leaf probability %v outside [0,1]", p))
	}
	old := n.leafP[v]
	n.leafP[v] = p
	return old
}

// AddLeaf appends a new leaf with probability p and returns its ID.
// Leaves are never hash-consed: each leaf is an independent variable.
func (n *Network) AddLeaf(p float64) NodeID {
	if math.IsNaN(p) || p < 0 || p > 1 {
		panic(fmt.Sprintf("aonet: leaf probability %v outside [0,1]", p))
	}
	id := NodeID(len(n.labels))
	n.labels = append(n.labels, Leaf)
	n.leafP = append(n.leafP, p)
	n.parents = append(n.parents, nil)
	return id
}

// AddGate appends a gate node with the given label and parent edges,
// implementing the augmentation operation N ∪̊ (w, E', P', label). Parents
// must already exist and carry edge probabilities in [0,1]; at least one
// parent is required. When every edge probability is exactly 1 the gate is
// deterministic and is hash-consed: a previous identical gate is returned
// instead of allocating a new node.
func (n *Network) AddGate(label Label, parents []Edge) NodeID {
	if label != And && label != Or {
		panic("aonet: AddGate label must be And or Or")
	}
	if len(parents) == 0 {
		panic("aonet: gate with no parents")
	}
	es := make([]Edge, len(parents))
	copy(es, parents)
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].P < es[j].P
	})
	deterministic := true
	for _, e := range es {
		if e.From < 0 || int(e.From) >= len(n.labels) {
			panic(fmt.Sprintf("aonet: gate parent %d does not exist", e.From))
		}
		if math.IsNaN(e.P) || e.P < 0 || e.P > 1 {
			panic(fmt.Sprintf("aonet: edge probability %v outside [0,1]", e.P))
		}
		if e.P != 1 {
			deterministic = false
		}
	}
	deterministic = deterministic && !n.consingOff
	var key uint64
	if deterministic {
		key = consFingerprint(label, es)
		for _, cand := range n.consing[key] {
			if n.sameGate(cand, label, es) {
				n.consHits++
				return cand
			}
		}
	}
	id := NodeID(len(n.labels))
	n.labels = append(n.labels, label)
	n.leafP = append(n.leafP, 0)
	n.parents = append(n.parents, es)
	if deterministic {
		n.consing[key] = append(n.consing[key], id)
	}
	return id
}

// consFingerprint hashes (label, sorted parent IDs) with FNV-1a. Edge
// probabilities are omitted: only deterministic gates (all P == 1) reach the
// consing table.
func consFingerprint(label Label, sorted []Edge) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(label)
	h *= prime64
	for _, e := range sorted {
		v := uint32(e.From)
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	return h
}

// sameGate reports whether existing node id is a deterministic gate with
// exactly the given label and sorted parent edges.
func (n *Network) sameGate(id NodeID, label Label, sorted []Edge) bool {
	if n.labels[id] != label {
		return false
	}
	ps := n.parents[id]
	if len(ps) != len(sorted) {
		return false
	}
	for i, e := range ps {
		if e.From != sorted[i].From || e.P != sorted[i].P {
			return false
		}
	}
	return true
}

// CondProbTrue evaluates φ(x_v = 1 | x_par(v)) under the Boolean assignment
// x (indexed by NodeID; entries beyond the parents of v are ignored).
func (n *Network) CondProbTrue(v NodeID, x []bool) float64 {
	switch n.labels[v] {
	case Leaf:
		return n.leafP[v]
	case Or:
		prod := 1.0
		for _, e := range n.parents[v] {
			if x[e.From] {
				prod *= 1 - e.P
			}
		}
		return 1 - prod
	default: // And
		prod := 1.0
		for _, e := range n.parents[v] {
			if !x[e.From] {
				return 0
			}
			prod *= e.P
		}
		return prod
	}
}

// Joint evaluates N(x) = ∏_v φ(x_v | x_par(v)) for a full assignment x over
// all nodes (len(x) == Len()).
func (n *Network) Joint(x []bool) float64 {
	if len(x) != len(n.labels) {
		panic(fmt.Sprintf("aonet: assignment width %d, want %d", len(x), len(n.labels)))
	}
	p := 1.0
	for v := range n.labels {
		pt := n.CondProbTrue(NodeID(v), x)
		if x[v] {
			p *= pt
		} else {
			p *= 1 - pt
		}
		if p == 0 {
			return 0
		}
	}
	return p
}

// MaxBruteForceNodes bounds exhaustive marginal computation.
const MaxBruteForceNodes = 22

// MarginalBruteForce computes N⁰(x_v = 1) by enumerating all assignments.
// It is intended for tests and returns an error for networks larger than
// MaxBruteForceNodes.
func (n *Network) MarginalBruteForce(v NodeID) (float64, error) {
	k := len(n.labels)
	if k > MaxBruteForceNodes {
		return 0, fmt.Errorf("aonet: %d nodes exceeds brute-force limit %d", k, MaxBruteForceNodes)
	}
	x := make([]bool, k)
	total := 0.0
	for mask := 0; mask < 1<<uint(k); mask++ {
		if mask&(1<<uint(v)) == 0 {
			continue
		}
		for i := 0; i < k; i++ {
			x[i] = mask&(1<<uint(i)) != 0
		}
		total += n.Joint(x)
	}
	return total, nil
}

// Ancestors returns the set of nodes from which v is reachable, including v
// itself, as a sorted slice. The marginal of v depends only on this set.
func (n *Network) Ancestors(v NodeID) []NodeID {
	seen := make([]bool, len(n.labels))
	stack := []NodeID{v}
	count := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		count++
		for _, e := range n.parents[u] {
			if !seen[e.From] {
				stack = append(stack, e.From)
			}
		}
	}
	out := make([]NodeID, 0, count)
	for u := range seen {
		if seen[u] {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// Validate checks structural invariants: parent IDs precede child IDs
// (topological numbering, hence acyclicity), probabilities lie in [0,1],
// gates have parents, and ε is the leaf 0 with probability 1.
func (n *Network) Validate() error {
	if len(n.labels) == 0 || n.labels[Epsilon] != Leaf || n.leafP[Epsilon] != 1 {
		return fmt.Errorf("aonet: ε node missing or malformed")
	}
	for v := range n.labels {
		lab := n.labels[v]
		switch lab {
		case Leaf:
			if len(n.parents[v]) != 0 {
				return fmt.Errorf("aonet: leaf %d has parents", v)
			}
			if p := n.leafP[v]; p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("aonet: leaf %d probability %v outside [0,1]", v, p)
			}
		case And, Or:
			if len(n.parents[v]) == 0 {
				return fmt.Errorf("aonet: gate %d has no parents", v)
			}
			for _, e := range n.parents[v] {
				if int(e.From) >= v {
					return fmt.Errorf("aonet: edge %d→%d violates topological numbering", e.From, v)
				}
				if e.P < 0 || e.P > 1 || math.IsNaN(e.P) {
					return fmt.Errorf("aonet: edge %d→%d probability %v outside [0,1]", e.From, v, e.P)
				}
			}
		default:
			return fmt.Errorf("aonet: node %d has unknown label %d", v, lab)
		}
	}
	return nil
}
