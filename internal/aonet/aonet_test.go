package aonet

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildExample51 constructs the network N of Figure 3 / Example 5.1:
// leaves u (P=.3) and v (P=.8), and an Or node w with parents u, v, both
// edges with probability 0.5.
func buildExample51() (*Network, NodeID, NodeID, NodeID) {
	n := New()
	u := n.AddLeaf(0.3)
	v := n.AddLeaf(0.8)
	w := n.AddGate(Or, []Edge{{From: u, P: 0.5}, {From: v, P: 0.5}})
	return n, u, v, w
}

// TestExample51 reproduces the worked joint-probability computation of
// Example 5.1: for x = {u:0, v:1, w:0}, N(x) = (1 - 1·0.5)·(1-.3)·.8 = .28.
func TestExample51(t *testing.T) {
	n, u, v, w := buildExample51()
	x := make([]bool, n.Len())
	x[Epsilon] = true // ε is always true; assignments with ε=false have N(x)=0
	x[u], x[v], x[w] = false, true, false
	if got := n.Joint(x); math.Abs(got-0.28) > 1e-12 {
		t.Errorf("N(x) = %g, want 0.28", got)
	}
}

func TestEpsilonInvariants(t *testing.T) {
	n := New()
	if n.Label(Epsilon) != Leaf || n.LeafP(Epsilon) != 1 {
		t.Fatal("ε must be a leaf with probability 1")
	}
	p, err := n.MarginalBruteForce(Epsilon)
	if err != nil || math.Abs(p-1) > 1e-12 {
		t.Errorf("marginal of ε = %g, %v", p, err)
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJointSumsToOne(t *testing.T) {
	n, _, _, _ := buildExample51()
	k := n.Len()
	sum := 0.0
	x := make([]bool, k)
	for mask := 0; mask < 1<<uint(k); mask++ {
		for i := 0; i < k; i++ {
			x[i] = mask&(1<<uint(i)) != 0
		}
		sum += n.Joint(x)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("joint sums to %g", sum)
	}
}

func TestOrMarginal(t *testing.T) {
	// P(w=1) = Σ_{u,v} P(u)P(v)·(1-(1-u/2)(1-v/2))
	n, _, _, w := buildExample51()
	want := 0.3*0.8*(1-0.25) + 0.3*0.2*0.5 + 0.7*0.8*0.5
	got, err := n.MarginalBruteForce(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P(w=1) = %g, want %g", got, want)
	}
}

func TestAndMarginal(t *testing.T) {
	n := New()
	u := n.AddLeaf(0.3)
	v := n.AddLeaf(0.8)
	a := n.AddGate(And, []Edge{{From: u, P: 0.5}, {From: v, P: 0.25}})
	got, err := n.MarginalBruteForce(a)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3 * 0.8 * 0.5 * 0.25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P(and=1) = %g, want %g", got, want)
	}
}

// TestAugmentation reproduces Figure 3's N' = N ∪̊ (y, {u,w}, ·, ·): growing
// the network preserves the distribution of existing nodes.
func TestAugmentation(t *testing.T) {
	n, u, _, w := buildExample51()
	before, err := n.MarginalBruteForce(w)
	if err != nil {
		t.Fatal(err)
	}
	y := n.AddGate(And, []Edge{{From: u, P: 1}, {From: w, P: 1}})
	after, err := n.MarginalBruteForce(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-12 {
		t.Errorf("augmentation changed P(w): %g -> %g", before, after)
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
	// P(y) = P(u ∧ w) = P(u)·P(w|u) ... check against enumeration identity:
	py, err := n.MarginalBruteForce(y)
	if err != nil {
		t.Fatal(err)
	}
	// u ∧ (noisy-or of u,v): P = P(u)·(1-(1-.5)(1-z_v·.5)) summed over v.
	want := 0.3 * (0.8*(1-0.5*0.5) + 0.2*0.5)
	if math.Abs(py-want) > 1e-12 {
		t.Errorf("P(y) = %g, want %g", py, want)
	}
}

func TestDeterministicHashConsing(t *testing.T) {
	n := New()
	u := n.AddLeaf(0.5)
	v := n.AddLeaf(0.5)
	a := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	b := n.AddGate(And, []Edge{{From: v, P: 1}, {From: u, P: 1}}) // parent order irrelevant
	if a != b {
		t.Error("deterministic And gates not hash-consed")
	}
	o1 := n.AddGate(Or, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	if o1 == a {
		t.Error("Or consed onto And")
	}
	o2 := n.AddGate(Or, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	if o1 != o2 {
		t.Error("deterministic Or gates not hash-consed")
	}
}

func TestNondeterministicGatesNeverConsed(t *testing.T) {
	// Gates with sub-unit edge weights carry fresh anonymous coins and must
	// be distinct nodes even with identical signatures (DESIGN.md §1).
	n := New()
	u := n.AddLeaf(0.5)
	a := n.AddGate(Or, []Edge{{From: u, P: 0.7}})
	b := n.AddGate(Or, []Edge{{From: u, P: 0.7}})
	if a == b {
		t.Error("nondeterministic gates were hash-consed")
	}
}

func TestSetHashConsing(t *testing.T) {
	n := New()
	u := n.AddLeaf(0.5)
	v := n.AddLeaf(0.5)
	n.SetHashConsing(false)
	a := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	b := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	if a == b {
		t.Error("consing disabled but gates shared")
	}
	n.SetHashConsing(true)
	c := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	d := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	if c != d {
		t.Error("consing re-enabled but gates distinct")
	}
	// Disabling never changes marginals, only sharing.
	pa, err := n.MarginalBruteForce(a)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := n.MarginalBruteForce(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa-pc) > 1e-12 {
		t.Errorf("marginals differ: %g vs %g", pa, pc)
	}
}

func TestLeavesNeverConsed(t *testing.T) {
	n := New()
	if n.AddLeaf(0.5) == n.AddLeaf(0.5) {
		t.Error("leaves were hash-consed")
	}
}

func TestAncestors(t *testing.T) {
	n := New()
	u := n.AddLeaf(0.5)
	v := n.AddLeaf(0.5)
	w := n.AddLeaf(0.5) // unrelated
	a := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	o := n.AddGate(Or, []Edge{{From: a, P: 0.5}})
	anc := n.Ancestors(o)
	want := []NodeID{u, v, a, o}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("Ancestors = %v, want %v", anc, want)
		}
	}
	if len(n.Ancestors(w)) != 1 {
		t.Error("leaf ancestors should be itself only")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	n := New()
	u := n.AddLeaf(0.5)
	n.AddGate(Or, []Edge{{From: u, P: 0.5}})
	if err := n.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	// Corrupt internals to exercise each check.
	bad := New()
	bad.AddLeaf(0.5)
	bad.leafP[1] = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad leaf probability accepted")
	}
	bad2 := New()
	u2 := bad2.AddLeaf(0.5)
	g := bad2.AddGate(Or, []Edge{{From: u2, P: 0.5}})
	bad2.parents[g][0].From = g // self-loop
	if err := bad2.Validate(); err == nil {
		t.Error("topological violation accepted")
	}
}

func TestAddGatePanics(t *testing.T) {
	n := New()
	u := n.AddLeaf(0.5)
	for i, f := range []func(){
		func() { n.AddGate(Leaf, []Edge{{From: u, P: 1}}) },
		func() { n.AddGate(And, nil) },
		func() { n.AddGate(And, []Edge{{From: 99, P: 1}}) },
		func() { n.AddGate(And, []Edge{{From: u, P: 1.5}}) },
		func() { n.AddLeaf(-0.2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// randomNetwork builds a random valid AND-OR network with nLeaves leaves and
// nGates gates, for property tests.
func randomNetwork(rng *rand.Rand, nLeaves, nGates int) *Network {
	n := New()
	for i := 0; i < nLeaves; i++ {
		n.AddLeaf(rng.Float64())
	}
	for i := 0; i < nGates; i++ {
		k := 1 + rng.Intn(3)
		edges := make([]Edge, 0, k)
		for j := 0; j < k; j++ {
			from := NodeID(rng.Intn(n.Len()))
			p := 1.0
			if rng.Intn(2) == 0 {
				p = rng.Float64()
			}
			edges = append(edges, Edge{From: from, P: p})
		}
		lab := Or
		if rng.Intn(2) == 0 {
			lab = And
		}
		n.AddGate(lab, edges)
	}
	return n
}

func TestRandomNetworksJointIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := randomNetwork(rng, 3, 5)
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		k := n.Len()
		if k > 14 {
			continue
		}
		sum := 0.0
		x := make([]bool, k)
		for mask := 0; mask < 1<<uint(k); mask++ {
			for i := 0; i < k; i++ {
				x[i] = mask&(1<<uint(i)) != 0
			}
			sum += n.Joint(x)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("trial %d: joint sums to %g", trial, sum)
		}
	}
}

func TestMarginalsInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng, 3, 4)
		for v := 0; v < n.Len(); v++ {
			p, err := n.MarginalBruteForce(NodeID(v))
			if err != nil || p < -1e-12 || p > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceLimit(t *testing.T) {
	n := New()
	for i := 0; i < MaxBruteForceNodes; i++ {
		n.AddLeaf(0.5)
	}
	if _, err := n.MarginalBruteForce(1); err == nil {
		t.Error("expected error above node limit")
	}
}

func TestWriteDOT(t *testing.T) {
	n, u, _, w := buildExample51()
	var b strings.Builder
	if err := n.WriteDOT(&b, map[NodeID]string{u: "u", w: "w"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "OR w", "u\\np=0.3", "-> n3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	n, _, _, _ := buildExample51()
	s := n.Summarize()
	if s.Nodes != 4 || s.Leaves != 3 || s.Ors != 1 || s.Ands != 0 || s.Edges != 2 || s.MaxFanIn != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestUndirectedAdjacency(t *testing.T) {
	n, u, v, w := buildExample51()
	ids, adj := n.UndirectedAdjacency([]NodeID{u, v, w})
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	// w adjacent to both u and v; u-v not adjacent.
	if len(adj[2]) != 2 || len(adj[0]) != 1 || len(adj[1]) != 1 {
		t.Errorf("adjacency = %v", adj)
	}
	// nil means all nodes (including ε, which is isolated here).
	ids2, adj2 := n.UndirectedAdjacency(nil)
	if len(ids2) != 4 || len(adj2[0]) != 0 {
		t.Errorf("full adjacency = %v %v", ids2, adj2)
	}
}

// TestSetLeafP proves the re-weighting contract of incremental maintenance:
// changing a leaf's probability in place yields bit-identical marginals to
// rebuilding the whole network with the new probability, and leaves gate
// structure (including hash-consing identities) untouched.
func TestSetLeafP(t *testing.T) {
	build := func(pu float64) (*Network, NodeID) {
		n := New()
		u := n.AddLeaf(pu)
		v := n.AddLeaf(0.8)
		a := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
		b := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}}) // consed onto a
		w := n.AddGate(Or, []Edge{{From: a, P: 1}, {From: b, P: 0.5}})
		return n, w
	}
	patched, w := build(0.3)
	nodesBefore, edgesBefore := patched.Len(), patched.EdgeCount()
	if old := patched.SetLeafP(NodeID(1), 0.7); old != 0.3 {
		t.Fatalf("SetLeafP returned old=%v, want 0.3", old)
	}
	if err := patched.Validate(); err != nil {
		t.Fatalf("patched network invalid: %v", err)
	}
	if patched.Len() != nodesBefore || patched.EdgeCount() != edgesBefore {
		t.Error("SetLeafP changed network structure")
	}
	rebuilt, w2 := build(0.7)
	got, err := patched.MarginalBruteForce(w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rebuilt.MarginalBruteForce(w2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("patched marginal %v != rebuilt marginal %v", got, want)
	}

	// Consing stays live after a re-weight: the intern table keys on
	// structure, which SetLeafP never touches.
	hits := patched.ConsHits()
	u2 := NodeID(1)
	v2 := NodeID(2)
	patched.AddGate(And, []Edge{{From: u2, P: 1}, {From: v2, P: 1}})
	if patched.ConsHits() != hits+1 {
		t.Error("deterministic gate not consed after SetLeafP")
	}

	defer func() {
		if recover() == nil {
			t.Error("SetLeafP on a gate did not panic")
		}
	}()
	patched.SetLeafP(w, 0.5)
}
