package aonet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The textual codec serializes a network losslessly:
//
//	aonet v1
//	nodes <count>
//	leaf <p>
//	or <k> <from>:<p> ...
//	and <k> <from>:<p> ...
//
// one line per node in ID (topological) order. Decoding re-registers
// deterministic gates in the hash-consing index, so a decoded network
// behaves identically under further augmentation.

const codecHeader = "aonet v1"

// Encode writes the network in the textual codec.
func (n *Network) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, codecHeader)
	fmt.Fprintf(bw, "nodes %d\n", n.Len())
	for v := range n.labels {
		switch n.labels[v] {
		case Leaf:
			fmt.Fprintf(bw, "leaf %s\n", formatProb(n.leafP[v]))
		case And, Or:
			if n.labels[v] == And {
				fmt.Fprintf(bw, "and %d", len(n.parents[v]))
			} else {
				fmt.Fprintf(bw, "or %d", len(n.parents[v]))
			}
			for _, e := range n.parents[v] {
				fmt.Fprintf(bw, " %d:%s", e.From, formatProb(e.P))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

func formatProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

// Decode reads a network written by Encode.
func Decode(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	header, err := line()
	if err != nil {
		return nil, fmt.Errorf("aonet: decoding header: %w", err)
	}
	if header != codecHeader {
		return nil, fmt.Errorf("aonet: unsupported format %q", header)
	}
	countLine, err := line()
	if err != nil {
		return nil, fmt.Errorf("aonet: decoding node count: %w", err)
	}
	var count int
	if _, err := fmt.Sscanf(countLine, "nodes %d", &count); err != nil {
		return nil, fmt.Errorf("aonet: bad node count line %q", countLine)
	}
	if count < 1 {
		return nil, fmt.Errorf("aonet: node count %d (the ε node is mandatory)", count)
	}
	n := &Network{consing: make(map[uint64][]NodeID)}
	for v := 0; v < count; v++ {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("aonet: decoding node %d: %w", v, err)
		}
		fields := strings.Fields(l)
		if len(fields) < 2 {
			return nil, fmt.Errorf("aonet: malformed node line %q", l)
		}
		switch fields[0] {
		case "leaf":
			p, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("aonet: node %d: bad leaf probability %q", v, fields[1])
			}
			n.labels = append(n.labels, Leaf)
			n.leafP = append(n.leafP, p)
			n.parents = append(n.parents, nil)
		case "and", "or":
			lab := And
			if fields[0] == "or" {
				lab = Or
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil || k < 1 || len(fields) != 2+k {
				return nil, fmt.Errorf("aonet: node %d: bad gate arity in %q", v, l)
			}
			edges := make([]Edge, 0, k)
			deterministic := true
			for _, part := range fields[2:] {
				colon := strings.IndexByte(part, ':')
				if colon < 0 {
					return nil, fmt.Errorf("aonet: node %d: bad edge %q", v, part)
				}
				from, err := strconv.Atoi(part[:colon])
				if err != nil || from < 0 || from >= v {
					return nil, fmt.Errorf("aonet: node %d: bad or non-topological parent %q", v, part)
				}
				p, err := strconv.ParseFloat(part[colon+1:], 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("aonet: node %d: bad edge probability %q", v, part)
				}
				if p != 1 {
					deterministic = false
				}
				edges = append(edges, Edge{From: NodeID(from), P: p})
			}
			sort.Slice(edges, func(i, j int) bool {
				if edges[i].From != edges[j].From {
					return edges[i].From < edges[j].From
				}
				return edges[i].P < edges[j].P
			})
			n.labels = append(n.labels, lab)
			n.leafP = append(n.leafP, 0)
			n.parents = append(n.parents, edges)
			if deterministic {
				key := consFingerprint(lab, edges)
				n.consing[key] = append(n.consing[key], NodeID(v))
			}
		default:
			return nil, fmt.Errorf("aonet: node %d: unknown kind %q", v, fields[0])
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
