package aonet

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		n := randomNetwork(rng, 3, 5)
		var buf bytes.Buffer
		if err := n.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Len() != n.Len() || got.EdgeCount() != n.EdgeCount() {
			t.Fatalf("trial %d: size mismatch: %d/%d vs %d/%d",
				trial, got.Len(), got.EdgeCount(), n.Len(), n.EdgeCount())
		}
		for v := 0; v < n.Len() && v < 14; v++ {
			want, err := n.MarginalBruteForce(NodeID(v))
			if err != nil {
				break
			}
			have, err := got.MarginalBruteForce(NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(want-have) > 1e-12 {
				t.Errorf("trial %d node %d: marginal %g vs %g", trial, v, have, want)
			}
		}
	}
}

func TestCodecPreservesConsing(t *testing.T) {
	n := New()
	u := n.AddLeaf(0.5)
	v := n.AddLeaf(0.5)
	g := n.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}})
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dup := got.AddGate(And, []Edge{{From: u, P: 1}, {From: v, P: 1}}); dup != g {
		t.Errorf("decoded network lost hash-consing: new node %d, want %d", dup, g)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong header\nnodes 1\nleaf 1\n",
		"aonet v1\nnodes x\n",
		"aonet v1\nnodes 0\n",
		"aonet v1\nnodes 2\nleaf 1\n",                   // truncated
		"aonet v1\nnodes 1\nleaf 2\n",                   // bad probability
		"aonet v1\nnodes 2\nleaf 1\nxor 1 0:1\n",        // unknown kind
		"aonet v1\nnodes 2\nleaf 1\nor 2 0:1\n",         // arity mismatch
		"aonet v1\nnodes 2\nleaf 1\nor 1 5:1\n",         // dangling parent
		"aonet v1\nnodes 2\nleaf 1\nor 1 0:1.5\n",       // bad edge probability
		"aonet v1\nnodes 2\nleaf 1\nor 1 0\n",           // missing colon
		"aonet v1\nnodes 2\nleaf 0.5\nor 1 0:1\n",       // ε must have p=1
		"aonet v1\nnodes 2\nleaf 1\nor\n",               // short line
		"aonet v1\nnodes 3\nleaf 1\nleaf 0.5\nor 1 2:1", // self/forward ref
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, c)
		}
	}
}

func TestEncodeDecodeLarge(t *testing.T) {
	n := New()
	prev := n.AddLeaf(0.5)
	for i := 0; i < 500; i++ {
		prev = n.AddGate(Or, []Edge{{From: prev, P: 0.99}, {From: n.AddLeaf(0.01), P: 1}})
	}
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Len() != n.Len() {
		t.Errorf("size %d vs %d", got.Len(), n.Len())
	}
}
