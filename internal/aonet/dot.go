package aonet

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/treewidth"
)

// WriteDOT renders the network in Graphviz DOT format, used to inspect the
// networks of the paper's Figures 1–4. Names maps node IDs to display names;
// unnamed nodes render as their label and ID.
func (n *Network) WriteDOT(w io.Writer, names map[NodeID]string) error {
	var b strings.Builder
	b.WriteString("digraph aonet {\n  rankdir=BT;\n")
	for v := range n.labels {
		id := NodeID(v)
		name := names[id]
		if name == "" {
			if id == Epsilon {
				name = "eps"
			} else {
				name = fmt.Sprintf("%s%d", strings.ToLower(n.labels[v].String()), v)
			}
		}
		switch n.labels[v] {
		case Leaf:
			fmt.Fprintf(&b, "  n%d [label=\"%s\\np=%.4g\" shape=ellipse];\n", v, name, n.leafP[v])
		case And:
			fmt.Fprintf(&b, "  n%d [label=\"AND %s\" shape=box];\n", v, name)
		case Or:
			fmt.Fprintf(&b, "  n%d [label=\"OR %s\" shape=diamond];\n", v, name)
		}
	}
	for v := range n.labels {
		for _, e := range n.parents[v] {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.4g\"];\n", e.From, v, e.P)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Stats summarizes the size and composition of a network.
type Stats struct {
	Nodes, Edges, Leaves, Ands, Ors int
	MaxFanIn                        int
}

// Summarize computes Stats for the network (ε included).
func (n *Network) Summarize() Stats {
	s := Stats{Nodes: n.Len()}
	for v := range n.labels {
		switch n.labels[v] {
		case Leaf:
			s.Leaves++
		case And:
			s.Ands++
		case Or:
			s.Ors++
		}
		s.Edges += len(n.parents[v])
		if len(n.parents[v]) > s.MaxFanIn {
			s.MaxFanIn = len(n.parents[v])
		}
	}
	return s
}

// TreewidthBound returns a greedy upper bound on the treewidth of the
// undirected graph Ḡ of the sub-network induced by nodes (all nodes when
// nil) — the quantity governing exact inference cost (Theorem 5.17) and the
// subject of Corollary 4.4's comparison between partial-lineage networks
// and full factor graphs.
func (n *Network) TreewidthBound(nodes []NodeID) int {
	ids, adj := n.UndirectedAdjacency(nodes)
	g := treewidth.NewGraph(len(ids))
	for i, nb := range adj {
		for _, j := range nb {
			if i < j {
				g.AddEdge(i, j)
			}
		}
	}
	return treewidth.UpperBound(g)
}

// UndirectedAdjacency returns, for the sub-network induced by the given
// nodes (all nodes when nodes is nil), the undirected adjacency lists of the
// graph Ḡ obtained by forgetting edge directions. Node order in the result
// follows the input order (or ID order when nodes is nil). The treewidth of
// this graph governs the cost of exact inference (Theorem 5.17).
func (n *Network) UndirectedAdjacency(nodes []NodeID) (ids []NodeID, adj [][]int) {
	if nodes == nil {
		nodes = make([]NodeID, n.Len())
		for i := range nodes {
			nodes[i] = NodeID(i)
		}
	}
	pos := make(map[NodeID]int, len(nodes))
	for i, v := range nodes {
		pos[v] = i
	}
	edge := make(map[[2]int]bool)
	for _, v := range nodes {
		i := pos[v]
		for _, e := range n.parents[v] {
			j, ok := pos[e.From]
			if !ok {
				continue
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			edge[[2]int{a, b}] = true
		}
	}
	adj = make([][]int, len(nodes))
	for e := range edge {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return nodes, adj
}
