package aonet

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode exercises the network codec on arbitrary input: it must never
// panic, and anything it accepts must validate and round-trip.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	n := New()
	u := n.AddLeaf(0.5)
	n.AddGate(Or, []Edge{{From: u, P: 0.25}, {From: Epsilon, P: 1}})
	if err := n.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("aonet v1\nnodes 1\nleaf 1\n")
	f.Add("aonet v1\nnodes 2\nleaf 1\nor 1 0:0.5\n")
	f.Add("aonet v1\nnodes 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		net, err := Decode(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := net.Encode(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != net.Len() || again.EdgeCount() != net.EdgeCount() {
			t.Fatal("round trip changed the network size")
		}
	})
}
