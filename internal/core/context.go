package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file defines ExecContext, the execution context threaded through the
// whole evaluation stack (pl operators, engine executor, inference, lineage
// solvers). It bundles four concerns that previously lived in ad-hoc fields
// scattered across layers:
//
//   - cancellation: a context.Context polled at operator boundaries and,
//     cheaply, inside inner loops (CheckInterval);
//   - budgets: caps on emitted rows, network growth and wall time, so a
//     phase-transition instance degrades with a typed error instead of
//     wedging the process;
//   - parallelism: the worker count intra-operator pipelines (partitioned
//     Join/Dedup) and per-answer inference fan-out may use;
//   - statistics: the per-operator trace sink (OpStat) with nested own-time
//     accounting, replacing the executor's childTime/childNodes fields.
//
// All methods are safe on a nil receiver and behave like an unbounded
// background context, so deep layers can accept an *ExecContext
// unconditionally and legacy entry points can pass nil.

// Budget caps the resources one evaluation may consume. Zero fields mean
// unlimited.
type Budget struct {
	// Rows bounds the total number of tuples emitted by relational
	// operators (an anti-blow-up guard for wide joins).
	Rows int64
	// Nodes bounds the number of AND-OR network nodes grown during plan
	// execution.
	Nodes int64
	// Time bounds the evaluation's wall time, measured from the
	// ExecContext's construction.
	Time time.Duration
	// Mem bounds the bytes of operator scratch state (hash-join buckets,
	// dedup group tables, pending-match buffers) resident at once, as
	// accounted by the ChargeMem/ReleaseMem hooks. Unlike the other
	// dimensions, exceeding Mem never fails the evaluation: the pl
	// operators switch to Grace-style spill-to-disk partitions and keep
	// results byte-identical to the in-memory path (see docs/SPILL.md).
	Mem int64
}

// Unlimited reports whether every budget dimension is unbounded. Mem is
// deliberately excluded: a memory budget changes where scratch state lives
// (heap vs temp files), never whether the evaluation can complete, so it is
// not a degradation trigger the way rows/nodes/time are.
func (b Budget) Unlimited() bool { return b.Rows <= 0 && b.Nodes <= 0 && b.Time <= 0 }

// ErrRowBudget is returned (wrapped) when an evaluation exceeds Budget.Rows.
var ErrRowBudget = errors.New("core: row budget exceeded")

// ErrNodeBudget is returned (wrapped) when an evaluation exceeds
// Budget.Nodes.
var ErrNodeBudget = errors.New("core: network-node budget exceeded")

// CheckInterval is the stride at which tight inner loops (join probes,
// elimination steps, Shannon expansions, Monte-Carlo samples) poll
// cancellation: cheap enough to be negligible, frequent enough that a
// cancelled evaluation returns promptly.
const CheckInterval = 1024

// ExecContext carries cancellation, budgets, the parallelism grant and the
// operator-statistics sink of one evaluation. Construct with NewExecContext;
// the zero value is not usable but a nil *ExecContext is (it behaves as an
// unbounded background context).
//
// Charge and Err are safe for concurrent use; the operator-trace methods
// (StartOp/FinishOp) are not — operators nest, they do not interleave.
type ExecContext struct {
	ctx         context.Context
	budget      Budget
	start       time.Time
	deadline    time.Time // zero when Budget.Time is unlimited
	parallelism int
	pooling     bool

	rows  atomic.Int64
	nodes atomic.Int64

	// Memory accounting (Budget.Mem): mem is the bytes of operator scratch
	// currently charged, memPeak its high-water mark, spillParts/spillBytes
	// the spill activity counters surfaced through Stats.
	mem        atomic.Int64
	memPeak    atomic.Int64
	spillParts atomic.Int64
	spillBytes atomic.Int64

	mu  sync.Mutex
	ops []OpStat
	// Trace accumulators: total own time and network growth of completed
	// operators within the currently executing subtree, so FinishOp can
	// subtract children from the enclosing operator's totals.
	childTime  time.Duration
	childNodes int
	// depth is the nesting level of the currently open span (the number of
	// StartOp calls without a matching FinishOp). Maintained by the single
	// recording goroutine; read by RecordSubOp.
	depth int

	tracing bool
}

// ExecConfig parameterizes NewExecContext.
type ExecConfig struct {
	// Budget caps rows, network nodes and wall time (zero = unlimited).
	Budget Budget
	// Parallelism is the worker count granted to parallel operator
	// pipelines and per-answer inference (<= 1 means sequential).
	Parallelism int
	// Trace enables the per-operator statistics sink.
	Trace bool
	// Pooling lets hot operators reuse scratch allocations (hash-join
	// buckets, dedup group tables) through package-level sync.Pools. Purely
	// an allocation optimization: outputs are byte-identical either way.
	Pooling bool
}

// NewExecContext wraps ctx for one evaluation. A nil ctx means
// context.Background().
func NewExecContext(ctx context.Context, cfg ExecConfig) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &ExecContext{
		ctx:         ctx,
		budget:      cfg.Budget,
		start:       time.Now(),
		parallelism: cfg.Parallelism,
		tracing:     cfg.Trace,
		pooling:     cfg.Pooling,
	}
	if cfg.Budget.Time > 0 {
		e.deadline = e.start.Add(cfg.Budget.Time)
	}
	return e
}

// Context returns the wrapped context.Context (context.Background() on a
// nil receiver).
func (e *ExecContext) Context() context.Context {
	if e == nil || e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// Parallelism returns the granted worker count, never below 1.
func (e *ExecContext) Parallelism() int {
	if e == nil || e.parallelism < 1 {
		return 1
	}
	return e.parallelism
}

// Tracing reports whether the per-operator statistics sink is enabled.
func (e *ExecContext) Tracing() bool { return e != nil && e.tracing }

// Pooling reports whether operators may reuse pooled scratch allocations.
// False on a nil receiver: legacy entry points get plain allocation.
func (e *ExecContext) Pooling() bool { return e != nil && e.pooling }

// Err reports why the evaluation should stop: the wrapped context's error,
// or context.DeadlineExceeded past the time budget. It is cheap (one atomic
// context poll, one clock read when a time budget is set) and safe to call
// from concurrent workers.
func (e *ExecContext) Err() error {
	if e == nil {
		return nil
	}
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// ChargeRows adds n emitted rows against the row budget, returning a wrapped
// ErrRowBudget once the total exceeds it. The total accumulates even when no
// row budget is set, so RowsCharged is a meaningful work measure (and a
// process metric, via internal/obs) on unbudgeted evaluations too.
func (e *ExecContext) ChargeRows(n int) error {
	if e == nil {
		return nil
	}
	total := e.rows.Add(int64(n))
	if e.budget.Rows > 0 && total > e.budget.Rows {
		return fmt.Errorf("%w (%d rows emitted, budget %d)", ErrRowBudget, total, e.budget.Rows)
	}
	return nil
}

// ChargeNodes adds n grown network nodes against the node budget, returning
// a wrapped ErrNodeBudget once the total exceeds it. Like ChargeRows, the
// total accumulates with or without a budget.
func (e *ExecContext) ChargeNodes(n int) error {
	if e == nil {
		return nil
	}
	total := e.nodes.Add(int64(n))
	if e.budget.Nodes > 0 && total > e.budget.Nodes {
		return fmt.Errorf("%w (%d nodes grown, budget %d)", ErrNodeBudget, total, e.budget.Nodes)
	}
	return nil
}

// TryChargeNodes charges n nodes only when they fit under the node budget:
// once the charge would exceed it, TryChargeNodes returns false and leaves
// the total unchanged. Opportunistic consumers — memo-table inserts, caches —
// use it to stop growing when the budget runs out instead of failing the
// evaluation the way ChargeNodes callers do.
func (e *ExecContext) TryChargeNodes(n int) bool {
	if e == nil {
		return true
	}
	for {
		cur := e.nodes.Load()
		total := cur + int64(n)
		if e.budget.Nodes > 0 && total > e.budget.Nodes {
			return false
		}
		if e.nodes.CompareAndSwap(cur, total) {
			return true
		}
	}
}

// RowsCharged returns the rows charged so far.
func (e *ExecContext) RowsCharged() int64 {
	if e == nil {
		return 0
	}
	return e.rows.Load()
}

// NodesCharged returns the network nodes charged so far.
func (e *ExecContext) NodesCharged() int64 {
	if e == nil {
		return 0
	}
	return e.nodes.Load()
}

// MemBudget returns Budget.Mem: the byte budget for operator scratch state,
// 0 when unlimited (in-memory execution, no charge accounting).
func (e *ExecContext) MemBudget() int64 {
	if e == nil {
		return 0
	}
	return e.budget.Mem
}

// ChargeMem adds n bytes of resident operator scratch and reports whether
// the resident total now exceeds Budget.Mem. Unlike ChargeRows/ChargeNodes
// this is a shed signal, not an error: the caller is expected to spill (or
// seal) the structure it is growing and release the charge. With no memory
// budget it accounts (for MemPeakBytes) and always reports false.
func (e *ExecContext) ChargeMem(n int64) bool {
	if e == nil {
		return false
	}
	total := e.mem.Add(n)
	for {
		peak := e.memPeak.Load()
		if total <= peak || e.memPeak.CompareAndSwap(peak, total) {
			break
		}
	}
	return e.budget.Mem > 0 && total > e.budget.Mem
}

// ReleaseMem returns n bytes previously charged with ChargeMem.
func (e *ExecContext) ReleaseMem(n int64) {
	if e == nil {
		return
	}
	e.mem.Add(-n)
}

// MemCharged returns the bytes of operator scratch currently charged.
func (e *ExecContext) MemCharged() int64 {
	if e == nil {
		return 0
	}
	return e.mem.Load()
}

// MemPeakBytes returns the high-water mark of charged scratch bytes.
func (e *ExecContext) MemPeakBytes() int64 {
	if e == nil {
		return 0
	}
	return e.memPeak.Load()
}

// AddSpillPartitions counts n operator partitions that overflowed the memory
// budget and moved to temp files.
func (e *ExecContext) AddSpillPartitions(n int) {
	if e == nil {
		return
	}
	e.spillParts.Add(int64(n))
}

// AddSpillBytes counts n bytes written to spill temp files.
func (e *ExecContext) AddSpillBytes(n int64) {
	if e == nil {
		return
	}
	e.spillBytes.Add(n)
}

// SpilledPartitions returns the number of partitions spilled so far.
func (e *ExecContext) SpilledPartitions() int64 {
	if e == nil {
		return 0
	}
	return e.spillParts.Load()
}

// SpillBytes returns the bytes written to spill temp files so far.
func (e *ExecContext) SpillBytes() int64 {
	if e == nil {
		return 0
	}
	return e.spillBytes.Load()
}

// RecordOp appends one operator's statistics to the trace sink, with the
// caller's OpStat taken verbatim (Depth included). It is safe for
// concurrent use.
//
// Dropped-op contract: on a nil receiver, or when the context was
// constructed without ExecConfig.Trace, the op is deliberately discarded —
// tracing is a per-evaluation decision made once at NewExecContext and
// never toggled mid-query, so a dropped op always means "this evaluation
// is untraced", never "part of the trace went missing". Callers that need
// to know can consult Tracing() first.
func (e *ExecContext) RecordOp(s OpStat) {
	if e == nil || !e.tracing {
		return
	}
	e.mu.Lock()
	e.ops = append(e.ops, s)
	e.mu.Unlock()
}

// RecordSubOp records a detail span as a child of the currently open
// StartOp span: the OpStat's Depth is set to the current nesting level (one
// below the open span's own recording depth). It must be called from the
// recording goroutine — the one that called StartOp — which is how the
// parallel pl operators keep their partition sub-spans deterministic: the
// workers measure, the coordinating goroutine records in partition order.
func (e *ExecContext) RecordSubOp(s OpStat) {
	if e == nil || !e.tracing {
		return
	}
	s.Depth = e.depth
	e.RecordOp(s)
}

// Ops returns the recorded operator trace.
//
// Ordering guarantees: ops appear in exactly the order they were recorded,
// and every producer in this repository records deterministically —
// FinishOp spans arrive in post-order (children before parents) from the
// single-goroutine plan executor; partition sub-spans of the parallel
// Join/Dedup operators are recorded by the coordinating goroutine in
// ascending partition order after the workers finish (never from the
// workers themselves); and the engine records inference spans after the
// parallel inference stage completes, in answer order. The trace is
// therefore fully deterministic for a fixed Parallelism (byte for byte once
// wall times are masked), and identical across Parallelism settings except
// for the partition sub-spans, whose count equals the worker count actually
// used. Each OpStat's Depth reconstructs the
// span tree from this flat post-order list (see internal/obs.BuildTrace).
func (e *ExecContext) Ops() []OpStat {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]OpStat(nil), e.ops...)
}

// OpSpan is the token returned by StartOp, closed by FinishOp.
type OpSpan struct {
	start       time.Time
	nodes0      int
	parentTime  time.Duration
	parentNodes int
}

// StartOp opens a trace span for one operator about to run; nodesNow is the
// network size before it. Spans nest (an operator's children open and close
// their spans inside it) and must not interleave across goroutines. On a
// nil receiver or with tracing disabled the span is inert.
func (e *ExecContext) StartOp(nodesNow int) OpSpan {
	if e == nil || !e.tracing {
		return OpSpan{}
	}
	span := OpSpan{
		start:       time.Now(),
		nodes0:      nodesNow,
		parentTime:  e.childTime,
		parentNodes: e.childNodes,
	}
	e.childTime, e.childNodes = 0, 0
	e.depth++
	return span
}

// FinishOp closes a span, recording the given OpStat with its Time,
// NetworkGrowth and Depth filled in: time and network growth exclude the
// operator's children (which reported their totals through the accumulators
// while the span was open), and Depth is the span's nesting level. The
// caller supplies the descriptive fields (Op, Kind, Rows, RowsIn,
// Conditioned, Detail). When failed is true nothing is recorded but the
// accumulators are still restored.
func (e *ExecContext) FinishOp(span OpSpan, nodesNow int, s OpStat, failed bool) {
	if e == nil || !e.tracing {
		return
	}
	total := time.Since(span.start)
	grown := nodesNow - span.nodes0
	if e.depth > 0 {
		e.depth--
	}
	if !failed {
		s.NetworkGrowth = grown - e.childNodes
		s.Time = total - e.childTime
		s.Depth = e.depth
		e.RecordOp(s)
	}
	e.childTime = span.parentTime + total
	e.childNodes = span.parentNodes + grown
}

// Check is a stride counter for tight inner loops: Tick returns a non-nil
// error at most once every CheckInterval calls (and always reports the
// first error it saw). The zero value is ready to use with the enclosing
// ExecContext:
//
//	chk := core.Check{EC: ec}
//	for ... {
//		if err := chk.Tick(); err != nil { return err }
//		...
//	}
type Check struct {
	EC *ExecContext
	n  int
	// Every overrides the polling stride (0 = CheckInterval).
	Every int
}

// Tick counts one loop iteration, polling the context every stride-th call.
func (c *Check) Tick() error {
	c.n++
	every := c.Every
	if every <= 0 {
		every = CheckInterval
	}
	if c.n%every != 0 {
		return nil
	}
	return c.EC.Err()
}
