package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilExecContextIsUnbounded(t *testing.T) {
	var ec *ExecContext
	if err := ec.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if err := ec.ChargeRows(1 << 30); err != nil {
		t.Errorf("nil ChargeRows = %v", err)
	}
	if err := ec.ChargeNodes(1 << 30); err != nil {
		t.Errorf("nil ChargeNodes = %v", err)
	}
	if got := ec.Parallelism(); got != 1 {
		t.Errorf("nil Parallelism = %d, want 1", got)
	}
	if ec.Tracing() {
		t.Error("nil Tracing = true")
	}
	if ec.Context() == nil {
		t.Error("nil Context = nil")
	}
	ec.RecordOp(OpStat{Op: "x"})
	if ops := ec.Ops(); ops != nil {
		t.Errorf("nil Ops = %v", ops)
	}
	span := ec.StartOp(0)
	ec.FinishOp(span, 0, OpStat{Op: "x"}, false)
	ec.RecordSubOp(OpStat{Op: "sub"})
	if ops := ec.Ops(); ops != nil {
		t.Errorf("nil Ops after span = %v", ops)
	}
}

func TestExecContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ec := NewExecContext(ctx, ExecConfig{})
	if err := ec.Err(); err != nil {
		t.Fatalf("Err before cancel = %v", err)
	}
	cancel()
	if err := ec.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after cancel = %v, want context.Canceled", err)
	}
}

func TestExecContextTimeBudget(t *testing.T) {
	ec := NewExecContext(context.Background(), ExecConfig{Budget: Budget{Time: time.Nanosecond}})
	time.Sleep(time.Millisecond)
	if err := ec.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err past time budget = %v, want context.DeadlineExceeded", err)
	}
}

func TestExecContextRowBudget(t *testing.T) {
	ec := NewExecContext(context.Background(), ExecConfig{Budget: Budget{Rows: 10}})
	if err := ec.ChargeRows(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := ec.ChargeRows(1)
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("over budget err = %v, want ErrRowBudget", err)
	}
	if got := ec.RowsCharged(); got != 11 {
		t.Errorf("RowsCharged = %d, want 11", got)
	}
}

func TestExecContextNodeBudget(t *testing.T) {
	ec := NewExecContext(context.Background(), ExecConfig{Budget: Budget{Nodes: 2}})
	if err := ec.ChargeNodes(2); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := ec.ChargeNodes(1); !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("over budget err = %v, want ErrNodeBudget", err)
	}
}

func TestExecContextTraceNesting(t *testing.T) {
	ec := NewExecContext(context.Background(), ExecConfig{Trace: true})
	nodes := 0
	outer := ec.StartOp(nodes)
	{
		inner := ec.StartOp(nodes)
		nodes += 3 // the child grows the network by 3
		ec.RecordSubOp(OpStat{Op: "grandchild"})
		ec.FinishOp(inner, nodes, OpStat{Op: "child", Rows: 5}, false)
	}
	nodes += 2 // the parent grows it by 2 more
	ec.FinishOp(outer, nodes, OpStat{Op: "parent", Rows: 7}, false)

	ops := ec.Ops()
	if len(ops) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(ops))
	}
	if ops[0].Op != "grandchild" || ops[0].Depth != 2 {
		t.Errorf("grandchild stat = %+v, want depth 2", ops[0])
	}
	if ops[1].Op != "child" || ops[1].Rows != 5 || ops[1].NetworkGrowth != 3 || ops[1].Depth != 1 {
		t.Errorf("child stat = %+v", ops[1])
	}
	// The parent's own growth excludes the child's.
	if ops[2].Op != "parent" || ops[2].Rows != 7 || ops[2].NetworkGrowth != 2 || ops[2].Depth != 0 {
		t.Errorf("parent stat = %+v", ops[2])
	}
}

func TestExecContextTraceFailedOp(t *testing.T) {
	ec := NewExecContext(context.Background(), ExecConfig{Trace: true})
	span := ec.StartOp(0)
	ec.FinishOp(span, 1, OpStat{Op: "boom"}, true)
	if ops := ec.Ops(); len(ops) != 0 {
		t.Errorf("failed op recorded: %v", ops)
	}
}

func TestCheckTick(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ec := NewExecContext(ctx, ExecConfig{})
	cancel()
	chk := Check{EC: ec, Every: 8}
	var err error
	calls := 0
	for err == nil && calls < 100 {
		calls++
		err = chk.Tick()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Tick err = %v", err)
	}
	if calls != 8 {
		t.Errorf("error surfaced after %d ticks, want 8 (the stride)", calls)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	if !(Budget{}).Unlimited() {
		t.Error("zero Budget not unlimited")
	}
	if (Budget{Rows: 1}).Unlimited() || (Budget{Nodes: 1}).Unlimited() || (Budget{Time: 1}).Unlimited() {
		t.Error("bounded Budget reported unlimited")
	}
}
