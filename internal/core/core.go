// Package core holds the types shared by every layer of the query engine:
// the evaluation strategies (Strategy), the per-evaluation statistics
// (Stats, OpStat, JoinStat), and the execution context (ExecContext) that
// threads cancellation, resource budgets, the parallelism grant and the
// operator-trace sink through the pl operators, the relational executor,
// the lineage solvers and the inference backends.
//
// core sits at the bottom of the dependency graph — it imports nothing from
// the rest of the repository — so that internal/pl, internal/engine,
// internal/lineage, internal/inference, internal/obs and the public pdb
// facade can all agree on one vocabulary for strategies, budgets and
// traces. See docs/ARCHITECTURE.md for the full package map.
//
// The tracing model: operators open spans with ExecContext.StartOp and
// close them with FinishOp, which appends a core.OpStat charging the span
// its own wall time and network growth (children excluded). Spans nest
// strictly, so Ops returns a post-order, depth-annotated flat list from
// which internal/obs reconstructs the operator tree for EXPLAIN ANALYZE
// rendering and JSON export.
package core

import (
	"fmt"
	"time"
)

// Strategy selects how a query is evaluated.
type Strategy int

const (
	// PartialLineage is the paper's contribution: extensional evaluation
	// with conditioning on offending tuples, producing a partial-lineage
	// AND-OR network on which exact inference runs (Section 5).
	PartialLineage Strategy = iota
	// SafePlanOnly evaluates purely extensionally and fails if the plan is
	// not data-safe on the instance (any operator needs conditioning).
	SafePlanOnly
	// FullNetwork treats every uncertain tuple as offending, materializing
	// the full intensional AND-OR network — the AND/OR-factor-graph method
	// of Sen & Deshpande [25] (Section 4.3.2).
	FullNetwork
	// DNFLineage computes the complete DNF lineage and runs exact
	// variable-elimination confidence computation on it — the MayBMS
	// method [16], the paper's experimental competitor.
	DNFLineage
	// MonteCarlo computes the complete DNF lineage and estimates each
	// answer probability with the Karp–Luby estimator.
	MonteCarlo
	// Dissociation computes the complete DNF lineage and bounds each answer
	// probability by dissociating shared variables into independent copies
	// (Gatterbauer & Suciu): read-once lineage factorizes exactly, anything
	// else gets a guaranteed [lo, hi] interval in one extensional pass — no
	// Shannon expansion, variable elimination or sampling. Results are
	// bounds, not point estimates.
	Dissociation
)

var strategyNames = map[Strategy]string{
	PartialLineage: "partial",
	SafePlanOnly:   "safe",
	FullNetwork:    "network",
	DNFLineage:     "dnf",
	MonteCarlo:     "mc",
	Dissociation:   "dissociation",
}

// String returns the short name used by the CLI tools.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy resolves a CLI strategy name.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q (want partial, safe, network, dnf, mc or dissociation)", name)
}

// Strategies lists all strategies in a stable order.
func Strategies() []Strategy {
	return []Strategy{PartialLineage, SafePlanOnly, FullNetwork, DNFLineage, MonteCarlo, Dissociation}
}

// OpStat is one operator's line in the execution trace (engine Options
// with Trace enabled): output cardinality, network growth attributable to
// the operator, and wall time with its inputs' construction excluded.
//
// The trace is flat: ExecContext.Ops returns OpStats in post-order
// (children before their parent) with Depth recording each span's nesting
// level, which is enough to reconstruct the operator tree —
// internal/obs.BuildTrace does exactly that.
type OpStat struct {
	// Op renders the operator.
	Op string
	// Kind classifies the span for tooling: "scan", "join", "project",
	// "join.partition", "join.spill", "project.spill", "ground", "infer",
	// "infer.answer".
	Kind string
	// Depth is the span's nesting level (0 = a root of the trace forest).
	Depth int
	// Rows is the operator's output cardinality.
	Rows int
	// RowsIn is the operator's input cardinality: the base-relation size for
	// scans, the summed input sizes for joins and projections. Zero for
	// spans with no meaningful input (e.g. inference aggregates).
	RowsIn int
	// Conditioned is the number of offending tuples conditioned at this
	// operator (joins only; Definition 5.14's cSets of both sides).
	Conditioned int
	// NetworkGrowth is the number of AND-OR nodes the operator added.
	NetworkGrowth int
	// Time is the operator's own wall time (children excluded).
	Time time.Duration
	// Detail is optional human-readable extra context, e.g. the inference
	// backend used by an answer span, or a fallback reason.
	Detail string
}

// JoinStat reports one join operator's conditioning work.
type JoinStat struct {
	// Join renders the operator, e.g. "R(x) ⋈ S(x, y)".
	Join string
	// Conditioned is the number of offending tuples conditioned at this
	// join (Definition 5.14's cSets of both sides).
	Conditioned int
}

// Stats reports what one evaluation did. Fields are filled as applicable to
// the strategy.
type Stats struct {
	Strategy Strategy

	// OffendingTuples is the number of tuples conditioned across all join
	// operators — the instance's distance from data-safety (Definition 3.4).
	OffendingTuples int

	// NetworkNodes/NetworkEdges size the AND-OR network built (including ε).
	NetworkNodes int
	NetworkEdges int

	// NetworkWidthBound is a greedy treewidth upper bound of the network's
	// undirected graph Ḡ (Theorem 5.17's complexity parameter), filled when
	// the engine is asked to measure it.
	NetworkWidthBound int

	// InferenceWidth is the largest variable-elimination width encountered
	// across answer tuples; InferenceVars the largest variable count.
	InferenceWidth int
	InferenceVars  int

	// Approximate is set when exact inference exceeded the width limit and
	// the engine fell back to sampling.
	Approximate bool

	// FallbackReason explains why the evaluation became approximate (or, for
	// the MonteCarlo strategy, that sampling was requested): the first
	// fallback reason encountered across answers. Empty for fully exact
	// evaluations.
	FallbackReason string

	// LineageClauses/LineageVars size the DNF lineage (intensional
	// strategies).
	LineageClauses int
	LineageVars    int

	// Answers is the number of result rows.
	Answers int

	// PerJoin breaks OffendingTuples down by join operator, in plan
	// execution order (network strategies only).
	PerJoin []JoinStat

	// Operators is the per-operator execution trace, in post-order, filled
	// when tracing is enabled (network strategies only).
	Operators []OpStat

	// PlanTime covers relational execution (and grounding); InferenceTime
	// covers probability computation.
	PlanTime      time.Duration
	InferenceTime time.Duration

	// RowsCharged/NodesCharged are the totals the evaluation charged against
	// its ExecContext — rows emitted by relational operators (or lineage
	// clauses grounded) and AND-OR network nodes grown. Accumulated whether
	// or not a budget was set; exported as process counters by internal/obs.
	RowsCharged  int64
	NodesCharged int64

	// Spill fields (bounded-memory execution, Budget.Mem / docs/SPILL.md).
	// SpilledPartitions counts operator hash partitions that overflowed the
	// memory budget onto temp files; SpillBytes totals the bytes written to
	// them; MemPeakBytes is the high-water mark of charged operator scratch.
	// Results are byte-identical whether or not anything spilled.
	SpilledPartitions int64
	SpillBytes        int64
	MemPeakBytes      int64

	// Memo counters (performance layer, PR 5): hits/misses/evictions across
	// the evaluation's shared inference memo tables (lineage Shannon
	// subproblems and VE component solves combined), InternHits the number
	// of canonical-fingerprint reuses in the lineage interner, ConsHits the
	// number of AddGate calls answered by the network's hash-consing table
	// instead of allocating a node. All zero when memoization is disabled.
	MemoHits      int64
	MemoMisses    int64
	MemoEvictions int64
	InternHits    int64
	ConsHits      int

	// Compiled-circuit counters (knowledge-compilation layer).
	// CircuitCompiles counts lineage formulas compiled to d-DNNF circuits
	// during the evaluation, CircuitHits the answers served from
	// already-compiled structure in the circuit cache, and CircuitEvals the
	// linear re-evaluation passes run. All zero when the circuit backend is
	// disabled (Options.NoCircuit or no cache attached).
	CircuitCompiles int64
	CircuitHits     int64
	CircuitEvals    int64

	// Planner fields (adaptive planning layer). PlanSource labels how the
	// physical plan was chosen ("safe", "greedy" or "body"); PlanOrder is
	// the comma-joined join order behind it (empty for safe plans);
	// PlanEstOffending and PlanCandidates are the estimator's offending
	// prediction for the chosen order and the number of orders it scored;
	// PlanSelectTime is the wall time spent choosing (PlanTime, by contrast,
	// covers executing the plan). All empty/zero when the engine was handed
	// an explicit plan.
	PlanSource       string
	PlanOrder        string
	PlanEstOffending int
	PlanCandidates   int
	PlanSelectTime   time.Duration

	// Bounds fields (Dissociation strategy only). BoundsValued marks the
	// result rows as carrying guaranteed [Lo, Hi] intervals rather than
	// point estimates; BoundsExact counts answers whose interval collapsed
	// (read-once lineage, factorized exactly); BoundsMaxWidth is the widest
	// interval across answers; DissociatedVars totals the shared variables
	// split into independent copies across all answers.
	BoundsValued    bool
	BoundsExact     int
	BoundsMaxWidth  float64
	DissociatedVars int

	// Backend-choice fields. BackendChoices counts answers by the inference
	// backend that produced them; BackendFallbacks counts ranked attempts
	// that failed deterministically (expansion budget, elimination width)
	// and fell through to the next backend; BackendPredictionMisses counts
	// answers whose first-ranked backend was not the one that succeeded —
	// the cost model's miss rate.
	BackendChoices          map[string]int
	BackendFallbacks        map[string]int
	BackendPredictionMisses int
}
