// Package core holds the evaluation-strategy and statistics types shared by
// the engine, the public API, the tools and the benchmark harness.
package core

import (
	"fmt"
	"time"
)

// Strategy selects how a query is evaluated.
type Strategy int

const (
	// PartialLineage is the paper's contribution: extensional evaluation
	// with conditioning on offending tuples, producing a partial-lineage
	// AND-OR network on which exact inference runs (Section 5).
	PartialLineage Strategy = iota
	// SafePlanOnly evaluates purely extensionally and fails if the plan is
	// not data-safe on the instance (any operator needs conditioning).
	SafePlanOnly
	// FullNetwork treats every uncertain tuple as offending, materializing
	// the full intensional AND-OR network — the AND/OR-factor-graph method
	// of Sen & Deshpande [25] (Section 4.3.2).
	FullNetwork
	// DNFLineage computes the complete DNF lineage and runs exact
	// variable-elimination confidence computation on it — the MayBMS
	// method [16], the paper's experimental competitor.
	DNFLineage
	// MonteCarlo computes the complete DNF lineage and estimates each
	// answer probability with the Karp–Luby estimator.
	MonteCarlo
)

var strategyNames = map[Strategy]string{
	PartialLineage: "partial",
	SafePlanOnly:   "safe",
	FullNetwork:    "network",
	DNFLineage:     "dnf",
	MonteCarlo:     "mc",
}

// String returns the short name used by the CLI tools.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy resolves a CLI strategy name.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q (want partial, safe, network, dnf or mc)", name)
}

// Strategies lists all strategies in a stable order.
func Strategies() []Strategy {
	return []Strategy{PartialLineage, SafePlanOnly, FullNetwork, DNFLineage, MonteCarlo}
}

// OpStat is one operator's line in the execution trace (engine Options
// with Trace enabled): output cardinality, network growth attributable to
// the operator, and wall time including its inputs' construction excluded.
type OpStat struct {
	// Op renders the operator.
	Op string
	// Rows is the operator's output cardinality.
	Rows int
	// NetworkGrowth is the number of AND-OR nodes the operator added.
	NetworkGrowth int
	// Time is the operator's own wall time (children excluded).
	Time time.Duration
}

// JoinStat reports one join operator's conditioning work.
type JoinStat struct {
	// Join renders the operator, e.g. "R(x) ⋈ S(x, y)".
	Join string
	// Conditioned is the number of offending tuples conditioned at this
	// join (Definition 5.14's cSets of both sides).
	Conditioned int
}

// Stats reports what one evaluation did. Fields are filled as applicable to
// the strategy.
type Stats struct {
	Strategy Strategy

	// OffendingTuples is the number of tuples conditioned across all join
	// operators — the instance's distance from data-safety (Definition 3.4).
	OffendingTuples int

	// NetworkNodes/NetworkEdges size the AND-OR network built (including ε).
	NetworkNodes int
	NetworkEdges int

	// NetworkWidthBound is a greedy treewidth upper bound of the network's
	// undirected graph Ḡ (Theorem 5.17's complexity parameter), filled when
	// the engine is asked to measure it.
	NetworkWidthBound int

	// InferenceWidth is the largest variable-elimination width encountered
	// across answer tuples; InferenceVars the largest variable count.
	InferenceWidth int
	InferenceVars  int

	// Approximate is set when exact inference exceeded the width limit and
	// the engine fell back to sampling.
	Approximate bool

	// LineageClauses/LineageVars size the DNF lineage (intensional
	// strategies).
	LineageClauses int
	LineageVars    int

	// Answers is the number of result rows.
	Answers int

	// PerJoin breaks OffendingTuples down by join operator, in plan
	// execution order (network strategies only).
	PerJoin []JoinStat

	// Operators is the per-operator execution trace, in post-order, filled
	// when tracing is enabled (network strategies only).
	Operators []OpStat

	// PlanTime covers relational execution (and grounding); InferenceTime
	// covers probability computation.
	PlanTime      time.Duration
	InferenceTime time.Duration
}
