package core

import (
	"strings"
	"testing"
)

func TestStrategyStringRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		name := s.String()
		if strings.Contains(name, "Strategy(") {
			t.Errorf("strategy %d has no name", int(s))
		}
		got, err := ParseStrategy(name)
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if s := Strategy(99).String(); !strings.Contains(s, "Strategy(99)") {
		t.Errorf("unknown strategy renders as %q", s)
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestStrategiesStableOrder(t *testing.T) {
	a := Strategies()
	b := Strategies()
	if len(a) != 6 {
		t.Fatalf("expected 6 strategies, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("Strategies order unstable")
		}
	}
	if a[0] != PartialLineage {
		t.Error("PartialLineage should lead the list")
	}
}
