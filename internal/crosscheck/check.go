package crosscheck

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/tuple"
	"repro/pdb"
)

// Options configures one differential check.
type Options struct {
	// Strategies to compare against the oracle; nil means all six. Point
	// strategies must agree to within Tol (plus the Hoeffding band for mc);
	// the bounds-valued dissociation strategy must bracket the oracle.
	Strategies []core.Strategy
	// Tol is the absolute agreement tolerance for the exact strategies
	// (default 1e-9 — the strategies and the oracle compute the same reals,
	// so only summation order separates them).
	Tol float64
	// Samples drives the MonteCarlo strategy (default 5000).
	Samples int
	// Delta is the per-answer failure probability of the Monte-Carlo
	// confidence band (default 1e-9). The Karp–Luby estimate is
	// M·mean(indicator) for clause-weight total M, so by Hoeffding the
	// estimate lies within M·sqrt(ln(2/Delta)/(2·Samples)) of the truth with
	// probability 1-Delta.
	Delta float64
	// Seed drives the samplers (default 1).
	Seed int64
	// Parallelism is passed through to the engine (0 = sequential).
	Parallelism int
	// Perturb injects an artificial divergence: the named strategies' answer
	// probabilities are shifted by the given amount before comparison. Used
	// to test that the harness, the shrinker and pdbfuzz actually catch and
	// minimize failures.
	Perturb map[core.Strategy]float64
}

func (o Options) withDefaults() Options {
	if len(o.Strategies) == 0 {
		o.Strategies = core.Strategies()
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Samples <= 0 {
		o.Samples = 5000
	}
	if o.Delta <= 0 {
		o.Delta = 1e-9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ExactStrategies are the paths that must agree with the oracle to within
// Options.Tol: everything except the Monte-Carlo sampler.
func ExactStrategies() []core.Strategy {
	return []core.Strategy{core.PartialLineage, core.SafePlanOnly, core.FullNetwork, core.DNFLineage}
}

// Divergence is one disagreement between a strategy and the oracle.
type Divergence struct {
	Strategy core.Strategy
	// Vals is the diverging answer tuple (empty for Boolean queries).
	Vals tuple.Tuple
	// Got is the strategy's probability, Want the oracle's, Bound the
	// tolerance that was exceeded.
	Got, Want, Bound float64
}

func (d Divergence) String() string {
	return fmt.Sprintf("strategy %v answer %v: got %.12g, oracle %.12g (|diff| %.3g > %.3g)",
		d.Strategy, d.Vals, d.Got, d.Want, math.Abs(d.Got-d.Want), d.Bound)
}

// Report is the outcome of one check.
type Report struct {
	Oracle *Oracle
	// Divergences lists every disagreement found, ordered by strategy then
	// answer.
	Divergences []Divergence
	// Skipped records strategies that declined the instance for a legitimate
	// reason — SafePlanOnly on instances that are not data-safe.
	Skipped map[core.Strategy]error
}

// Failed reports whether any strategy diverged.
func (r *Report) Failed() bool { return len(r.Divergences) > 0 }

// Check computes the instance's oracle and compares every requested strategy
// against it through the public pdb.EvaluateContext entry point. It returns
// an error only for infrastructure failures (oracle too large, unexpected
// evaluation error); divergences are data, reported in the Report.
func Check(ctx context.Context, in *Instance, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	oracle, err := ComputeOracle(in)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: oracle: %w", err)
	}
	db, err := toPDB(in)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: %w", err)
	}
	q, err := pdb.ParseQuery(in.Q.String())
	if err != nil {
		return nil, fmt.Errorf("crosscheck: re-parsing query %q: %w", in.Q.String(), err)
	}
	rep := &Report{Oracle: oracle, Skipped: make(map[core.Strategy]error)}
	for _, s := range opts.Strategies {
		popts := pdb.Options{
			Strategy:    s,
			Seed:        opts.Seed,
			Samples:     opts.Samples,
			Parallelism: opts.Parallelism,
			NoFallback:  s != core.MonteCarlo,
		}
		res, err := db.EvaluateContext(ctx, q, popts)
		if err != nil {
			if s == core.SafePlanOnly && errors.Is(err, engine.ErrNotDataSafe) {
				// The safe-plan-only path is allowed to decline instances
				// where some join needs conditioning; that is its contract,
				// not a divergence.
				rep.Skipped[s] = err
				continue
			}
			return nil, fmt.Errorf("crosscheck: strategy %v: %w", s, err)
		}
		if s == core.Dissociation {
			// Bounds-valued: the obligation is bracketing, not point
			// agreement — the oracle must lie inside every [Lo, Hi].
			rep.Divergences = append(rep.Divergences, compareBounds(s, res, oracle, opts.Tol, opts.Perturb[s])...)
			continue
		}
		bound := func(key string) float64 { return opts.Tol }
		if s == core.MonteCarlo {
			bounds, err := mcBounds(in, opts)
			if err != nil {
				return nil, fmt.Errorf("crosscheck: Monte-Carlo bounds: %w", err)
			}
			bound = func(key string) float64 {
				if b, ok := bounds[key]; ok {
					return b + opts.Tol
				}
				return opts.Tol
			}
		}
		rep.Divergences = append(rep.Divergences, compareAnswers(s, res, oracle, bound, opts.Perturb[s])...)
	}
	return rep, nil
}

// compareBounds checks a bounds-valued strategy against the oracle: the
// answer sets must match and every oracle probability must fall inside the
// answer's [Lo, Hi] interval (widened by tol for summation order). A missing
// answer is a zero-width interval at 0, so it diverges unless the oracle
// agrees it is absent.
func compareBounds(s core.Strategy, res *pdb.Result, oracle *Oracle, tol, perturb float64) []Divergence {
	type iv struct {
		lo, hi float64
		vals   tuple.Tuple
	}
	got := make(map[string]iv, len(res.Rows))
	for _, row := range res.Rows {
		got[tuple.Tuple(row.Vals).Key()] = iv{row.Lo + perturb, row.Hi + perturb, tuple.Tuple(row.Vals)}
	}
	keys := make(map[string]bool, len(got)+len(oracle.Probs))
	for k := range got {
		keys[k] = true
	}
	for k := range oracle.Probs {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	var out []Divergence
	for _, k := range ordered {
		g, w := got[k], oracle.Probs[k]
		if w < g.lo-tol || w > g.hi+tol || math.IsNaN(g.lo) || math.IsNaN(g.hi) {
			v := g.vals
			if v == nil {
				v = oracle.Vals[k]
			}
			// Report the violated endpoint so the shrinker has a scalar diff
			// to minimize against.
			end := g.lo
			if w > g.hi {
				end = g.hi
			}
			out = append(out, Divergence{Strategy: s, Vals: v, Got: end, Want: w, Bound: tol})
		}
	}
	return out
}

// compareAnswers diffs one strategy's answers against the oracle over the
// union of both answer sets (a missing answer counts as probability 0).
func compareAnswers(s core.Strategy, res *pdb.Result, oracle *Oracle, bound func(key string) float64, perturb float64) []Divergence {
	got := make(map[string]float64, len(res.Rows))
	vals := make(map[string]tuple.Tuple, len(res.Rows))
	for _, row := range res.Rows {
		k := tuple.Tuple(row.Vals).Key()
		got[k] = row.P + perturb
		vals[k] = tuple.Tuple(row.Vals)
	}
	keys := make(map[string]bool, len(got)+len(oracle.Probs))
	for k := range got {
		keys[k] = true
	}
	for k := range oracle.Probs {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	var out []Divergence
	for _, k := range ordered {
		g, w, b := got[k], oracle.Probs[k], bound(k)
		if math.Abs(g-w) > b || math.IsNaN(g) {
			v, ok := vals[k]
			if !ok {
				v = oracle.Vals[k]
			}
			out = append(out, Divergence{Strategy: s, Vals: v, Got: g, Want: w, Bound: b})
		}
	}
	return out
}

// mcBounds computes the per-answer Hoeffding band of the Karp–Luby
// estimator: the estimate is M·mean of a {0,1} indicator over
// Options.Samples draws, where M is the answer's total clause weight
// Σ_clauses Π p(var), so |estimate − truth| ≤ M·sqrt(ln(2/δ)/(2n)) with
// probability at least 1−δ. Answers whose lineage is certain (a clause of
// only-certain tuples) or empty are computed exactly by the sampler's
// shortcut paths and get a zero-width band.
func mcBounds(in *Instance, opts Options) (map[string]float64, error) {
	order := make([]string, len(in.Q.Atoms))
	for i := range in.Q.Atoms {
		order[i] = in.Q.Atoms[i].Pred
	}
	plan, err := query.LeftDeepPlan(in.Q, order)
	if err != nil {
		return nil, err
	}
	g, err := engine.Ground(in.DB, in.Q, plan)
	if err != nil {
		return nil, err
	}
	halfWidth := math.Sqrt(math.Log(2/opts.Delta) / (2 * float64(opts.Samples)))
	out := make(map[string]float64, len(g.Answers))
	for _, ans := range g.Answers {
		// Mirror the sampler's own weight total over the raw (unsimplified)
		// clauses — the estimator scales its indicator mean by exactly this M.
		f := ans.F
		if len(f.Clauses) == 0 || f.IsTrue() {
			out[ans.Vals.Key()] = 0
			continue
		}
		m := 0.0
		for _, c := range f.Clauses {
			w := 1.0
			for _, v := range c {
				w *= g.Probs[v]
			}
			m += w
		}
		out[ans.Vals.Key()] = m * halfWidth
	}
	return out, nil
}

// toPDB rebuilds the instance's database behind the public facade, so the
// check exercises the exact code path applications use.
func toPDB(in *Instance) (*pdb.Database, error) {
	db := pdb.NewDatabase()
	for _, name := range in.DB.Names() {
		src, err := in.DB.Relation(name)
		if err != nil {
			return nil, err
		}
		dst := db.CreateRelation(name, src.Attrs...)
		for _, row := range src.Rows {
			if err := dst.Add(row.P, row.Tuple...); err != nil {
				return nil, fmt.Errorf("relation %s: %w", name, err)
			}
		}
	}
	return db, nil
}

func writeQueryFile(dir, text string) error {
	return os.WriteFile(filepath.Join(dir, "query.txt"), []byte(text+"\n"), 0o644)
}
