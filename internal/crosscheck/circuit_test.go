package crosscheck

import (
	"context"
	"testing"

	"repro/pdb"
)

// TestCircuitBitIdentical sweeps seeded random instances and asserts that
// every exact strategy computes bit-identical answer probabilities with the
// compiled-circuit backend on (the default — every pdb database carries a
// shared circuit cache) and off (the NoCircuit ablation) — a comparison to
// ±0, not to a tolerance. The circuit compiler replays the Shannon solver's
// recursion, so enabling it may only change speed, never a float bit. Both
// serial and parallel evaluations are held to it, and the circuit-enabled
// pass runs twice per configuration so warm cache hits (the linear
// re-evaluation path) are pinned to the same bits as cold compiles.
func TestCircuitBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, s := range ExactStrategies() {
			for _, par := range []int{0, 4} {
				base := pdb.Options{Strategy: s, Parallelism: par, NoFallback: true}
				ablated := base
				ablated.NoCircuit = true
				ref, errRef := db.Evaluate(q, ablated)
				for pass := 0; pass < 2; pass++ {
					got, errGot := db.Evaluate(q, base)
					if (errRef == nil) != (errGot == nil) {
						t.Fatalf("seed %d strategy %v par %d pass %d: outcome changed: %v vs %v",
							seed, s, par, pass, errRef, errGot)
					}
					if errRef != nil {
						continue // e.g. safe declining a non-data-safe instance
					}
					if len(ref.Rows) != len(got.Rows) {
						t.Fatalf("seed %d strategy %v par %d pass %d: answer count %d vs %d",
							seed, s, par, pass, len(ref.Rows), len(got.Rows))
					}
					for _, row := range ref.Rows {
						if p := got.Prob(row.Vals...); p != row.P {
							t.Fatalf("seed %d strategy %v par %d pass %d: answer %v: %v vs %v (must be bit-identical)",
								seed, s, par, pass, row.Vals, row.P, p)
						}
					}
				}
			}
		}
	}
}

// TestCircuitOracleAgreement pins the circuit-enabled engine (the default
// configuration) to the possible-world oracle on seeded instances — the
// same differential harness the strategies are held to, with the circuit
// cache warm from repeated Check evaluations over the shared database.
func TestCircuitOracleAgreement(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		in := Generate(seed, GenConfig{})
		rep, err := Check(context.Background(), in, Options{Strategies: ExactStrategies()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: circuit-enabled engine diverged from the oracle: %v", seed, rep.Divergences)
		}
	}
}
