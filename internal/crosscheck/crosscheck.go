// Package crosscheck is a differential and metamorphic testing harness for
// the query engine: it generates random tuple-independent databases and
// conjunctive queries, computes a ground-truth answer distribution by
// brute-force possible-world enumeration (Definition 2.1), runs every
// evaluation strategy of core.Strategy through the public pdb API, and
// reports any divergence.
//
// The paper's central claim is that the extensional, partial-lineage and
// fully intensional paths compute the same probabilities (Sections 3–5);
// this package enforces that invariant end to end. Exact strategies must
// agree with the oracle to within Options.Tol (~1e-9, limited only by
// floating-point summation order); the Karp–Luby sampler must land inside a
// Hoeffding confidence band derived from its clause weights.
//
// When a divergence is found, Shrink greedily drops query atoms and database
// tuples while the failure persists, so the reported reproducer is minimal.
// The harness is exposed three ways: the package's own go test suite, native
// fuzz targets reusing the generator, and the cmd/pdbfuzz CLI, which prints
// minimized reproducers as loadable CSV plus query text.
package crosscheck

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
)

// Instance is one generated test case: a database plus a query over it.
type Instance struct {
	// Seed reproduces the instance via Generate (0 for hand-built or shrunk
	// instances, which are no longer a pure function of a seed).
	Seed int64
	DB   *relation.Database
	Q    *query.Query
}

// GenConfig bounds the random instance generator. The zero value selects
// defaults sized so the possible-world oracle stays cheap: the uncertain-row
// cap is the log2 of the number of worlds enumerated per instance.
type GenConfig struct {
	// MaxRelations bounds the relation count (and thus query atoms, one atom
	// per relation — self-joins are unsupported). Default 3.
	MaxRelations int
	// MaxArity bounds relation width. Default 2.
	MaxArity int
	// MaxTuples bounds rows per relation (relations may also be empty).
	// Default 4.
	MaxTuples int
	// Domain is the number of distinct constants. Small domains force joins
	// to actually match and produce duplicate tuples. Default 3.
	Domain int
	// MaxVars bounds the query's variable pool. Default 3.
	MaxVars int
	// MaxUncertain caps rows with probability strictly in (0,1) across the
	// database; the oracle enumerates 2^MaxUncertain worlds. Default 10.
	MaxUncertain int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxRelations <= 0 {
		c.MaxRelations = 3
	}
	if c.MaxArity <= 0 {
		c.MaxArity = 2
	}
	if c.MaxTuples <= 0 {
		c.MaxTuples = 4
	}
	if c.Domain <= 0 {
		c.Domain = 3
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 3
	}
	if c.MaxUncertain <= 0 {
		c.MaxUncertain = 10
	}
	return c
}

// varNames is the query variable pool; MaxVars indexes into it.
var varNames = []string{"a", "b", "c", "d", "e", "f"}

// Generate builds a pseudo-random instance. The same (seed, cfg) pair always
// yields the same instance, so failures replay from the seed alone.
//
// The generator is biased toward the regimes where strategies are most
// likely to drift apart: tiny domains (joins match, answers group, duplicate
// tuples occur), probabilities exactly 0 and 1 (rows the engine must prune
// or treat as certain), probabilities near the float boundaries, repeated
// variables inside an atom, constants (selections), and a mix of Boolean and
// group-by heads.
func Generate(seed int64, cfg GenConfig) *Instance {
	cfg = cfg.withDefaults()
	if cfg.MaxVars > len(varNames) {
		cfg.MaxVars = len(varNames)
	}
	rng := rand.New(rand.NewSource(seed))
	nrel := 1 + rng.Intn(cfg.MaxRelations)

	db := relation.NewDatabase()
	uncertain := 0
	type relSpec struct {
		name  string
		arity int
	}
	specs := make([]relSpec, nrel)
	for i := range specs {
		specs[i] = relSpec{name: fmt.Sprintf("R%d", i), arity: 1 + rng.Intn(cfg.MaxArity)}
		attrs := make([]string, specs[i].arity)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("c%d", j)
		}
		r := relation.New(specs[i].name, attrs...)
		ntup := rng.Intn(cfg.MaxTuples + 1)
		for t := 0; t < ntup; t++ {
			row := make([]int64, specs[i].arity)
			if t > 0 && rng.Float64() < 0.15 {
				// Duplicate the previous tuple verbatim (with a fresh,
				// independent probability): tuple-independent semantics treat
				// the copies as distinct events, which every path must honor.
				prev := r.Rows[len(r.Rows)-1].Tuple
				for j := range row {
					row[j] = prev[j].AsInt()
				}
			} else {
				for j := range row {
					row[j] = int64(rng.Intn(cfg.Domain))
				}
			}
			p := randProb(rng)
			if p > 0 && p < 1 {
				if uncertain >= cfg.MaxUncertain {
					p = float64(rng.Intn(2)) // cap reached: only certain rows
				} else {
					uncertain++
				}
			}
			if err := r.AddInts(p, row...); err != nil {
				panic("crosscheck: generator produced invalid row: " + err.Error())
			}
		}
		db.AddRelation(r)
	}

	// One atom per relation, arguments drawn from a small variable pool with
	// occasional constants and naturally repeated variables.
	used := make(map[string]bool)
	var atoms []string
	for _, sp := range specs {
		args := make([]string, sp.arity)
		for j := range args {
			if rng.Float64() < 0.12 {
				args[j] = fmt.Sprint(rng.Intn(cfg.Domain))
			} else {
				v := varNames[rng.Intn(cfg.MaxVars)]
				args[j] = v
				used[v] = true
			}
		}
		atoms = append(atoms, sp.name+"("+strings.Join(args, ", ")+")")
	}
	var head []string
	for _, v := range varNames[:cfg.MaxVars] {
		if used[v] && rng.Float64() < 0.3 {
			head = append(head, v)
		}
	}
	text := "q(" + strings.Join(head, ", ") + ") :- " + strings.Join(atoms, ", ")
	q, err := query.Parse(text)
	if err != nil {
		panic("crosscheck: generator produced unparsable query " + text + ": " + err.Error())
	}
	if err := q.Validate(); err != nil {
		panic("crosscheck: generator produced invalid query " + text + ": " + err.Error())
	}
	return &Instance{Seed: seed, DB: db, Q: q}
}

// randProb draws a presence probability from a palette weighted toward the
// adversarial edges of [0,1]: exact 0 and 1, one half (offending tuples at
// the conditioning phase transition), and near-boundary magnitudes that
// stress summation accuracy.
func randProb(rng *rand.Rand) float64 {
	switch x := rng.Float64(); {
	case x < 0.10:
		return 0
	case x < 0.22:
		return 1
	case x < 0.34:
		return 0.5
	case x < 0.40:
		return 1e-3
	case x < 0.46:
		return 0.999
	default:
		return rng.Float64()
	}
}

// Clone deep-copies the instance (rows copied; immutable tuples shared) so a
// shrink candidate can be mutated without touching the original.
func (in *Instance) Clone() *Instance {
	db := relation.NewDatabase()
	for _, name := range in.DB.Names() {
		r, err := in.DB.Relation(name)
		if err != nil {
			panic("crosscheck: " + err.Error())
		}
		db.AddRelation(r.Clone())
	}
	q := &query.Query{
		Name:  in.Q.Name,
		Head:  append([]string(nil), in.Q.Head...),
		Atoms: append([]query.Atom(nil), in.Q.Atoms...),
	}
	return &Instance{Seed: in.Seed, DB: db, Q: q}
}

// String renders the instance as a replayable reproducer: the query in parse
// syntax followed by one CSV block per relation in WriteCSV format. Saving
// each block as <name>.csv yields a directory loadable by pdbrun -data.
func (in *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", in.Q.String())
	for _, name := range in.DB.Names() {
		r, err := in.DB.Relation(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "-- %s.csv\n", name)
		if err := r.WriteCSV(&b); err != nil {
			fmt.Fprintf(&b, "(write error: %v)\n", err)
		}
	}
	return b.String()
}

// WriteDir saves the instance as a pdbrun-loadable directory: one <name>.csv
// per relation plus query.txt.
func (in *Instance) WriteDir(dir string) error {
	if err := in.DB.SaveDir(dir); err != nil {
		return err
	}
	return writeQueryFile(dir, in.Q.String())
}
