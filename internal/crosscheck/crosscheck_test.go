package crosscheck

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// numInstances is the seeded-sweep size; CI and the acceptance criteria
// require at least 200.
const numInstances = 200

// TestOracleHandComputed pins the oracle to hand-computed probabilities on
// the paper's running two-relation join.
func TestOracleHandComputed(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(2), 0.9)
	s := relation.New("S", "x", "y")
	s.MustAdd(tuple.Ints(1, 1), 0.8)
	s.MustAdd(tuple.Ints(2, 1), 0.4)
	db.AddRelation(r)
	db.AddRelation(s)
	q := query.MustParse("q :- R(a), S(a, b)")
	in := &Instance{DB: db, Q: q}
	o, err := ComputeOracle(in)
	if err != nil {
		t.Fatal(err)
	}
	// P(∃a,b) = 1 - (1 - 0.5·0.8)(1 - 0.9·0.4) = 1 - 0.6·0.64.
	want := 1 - 0.6*0.64
	got := o.Probs[tuple.Tuple{}.Key()]
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("oracle Boolean prob = %.12f, want %.12f", got, want)
	}
	if o.Worlds != 16 {
		t.Fatalf("oracle enumerated %d worlds, want 16", o.Worlds)
	}

	// Group-by head: P(a=1) = 0.5·0.8, P(a=2) = 0.9·0.4.
	in.Q = query.MustParse("q(a) :- R(a), S(a, b)")
	o, err = ComputeOracle(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Probs[tuple.Ints(1).Key()]; math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("P(a=1) = %.12f, want 0.4", got)
	}
	if got := o.Probs[tuple.Ints(2).Key()]; math.Abs(got-0.36) > 1e-12 {
		t.Fatalf("P(a=2) = %.12f, want 0.36", got)
	}
}

// TestGeneratorDeterministic: the same seed must reproduce the same
// instance, byte for byte — seeds are the replay handle pdbfuzz prints.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if a.String() != b.String() {
			t.Fatalf("seed %d not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestRandomInstancesAgree is the harness's main sweep: numInstances seeded
// random instances, all five strategies against the possible-worlds oracle.
// Exact paths must agree to 1e-9; the Karp–Luby sampler must land inside its
// Hoeffding band. Any divergence fails with a minimized reproducer.
func TestRandomInstancesAgree(t *testing.T) {
	ctx := context.Background()
	opts := Options{}
	skips, worlds := 0, 0
	for seed := int64(1); seed <= numInstances; seed++ {
		in := Generate(seed, GenConfig{})
		rep, err := Check(ctx, in, opts)
		if err != nil {
			t.Fatalf("seed %d: %v\ninstance:\n%s", seed, err, in)
		}
		if rep.Failed() {
			min := Minimize(ctx, in, opts)
			t.Fatalf("seed %d diverged: %v\nminimized reproducer (%d tuples, %d atoms):\n%s",
				seed, rep.Divergences[0], min.TupleCount(), min.AtomCount(), min)
		}
		if _, ok := rep.Skipped[core.SafePlanOnly]; ok {
			skips++
		}
		worlds += rep.Oracle.Worlds
	}
	t.Logf("%d instances, %d worlds enumerated, %d safe-plan skips", int64(numInstances), worlds, skips)
}

// TestInjectedDivergenceCaughtAndShrunk validates the harness itself: a
// deliberately perturbed strategy must be caught, and the shrinker must
// return a smaller (or equal) instance that still fails.
func TestInjectedDivergenceCaughtAndShrunk(t *testing.T) {
	ctx := context.Background()
	opts := Options{
		Strategies: ExactStrategies(),
		Perturb:    map[core.Strategy]float64{core.DNFLineage: 0.25},
	}
	found := false
	for seed := int64(1); seed <= 50; seed++ {
		in := Generate(seed, GenConfig{})
		rep, err := Check(ctx, in, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Failed() {
			// Instances with no answers at all cannot show the perturbation.
			continue
		}
		found = true
		min := Minimize(ctx, in, opts)
		if min.TupleCount() > in.TupleCount() || min.AtomCount() > in.AtomCount() {
			t.Fatalf("seed %d: shrinker grew the instance: %d/%d tuples, %d/%d atoms",
				seed, min.TupleCount(), in.TupleCount(), min.AtomCount(), in.AtomCount())
		}
		repMin, err := Check(ctx, min, opts)
		if err != nil {
			t.Fatalf("seed %d: minimized instance errors: %v\n%s", seed, err, min)
		}
		if !repMin.Failed() {
			t.Fatalf("seed %d: minimized instance no longer fails:\n%s", seed, min)
		}
		if min.String() == "" {
			t.Fatal("empty reproducer rendering")
		}
		break
	}
	if !found {
		t.Fatal("no instance exercised the injected divergence")
	}
}

// TestShrinkIsMinimal: on a hand-built failing instance, the shrinker must
// remove every tuple and atom that is not needed to reproduce the failure.
func TestShrinkIsMinimal(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(2), 0.5) // irrelevant to the failure below
	s := relation.New("S", "x")
	s.MustAdd(tuple.Ints(1), 0.5)
	u := relation.New("U", "x")
	u.MustAdd(tuple.Ints(1), 1)
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(u)
	in := &Instance{DB: db, Q: query.MustParse("q :- R(a), S(b), U(c)")}

	// Synthetic failure: "fails" whenever R still contains tuple (1).
	failing := func(c *Instance) bool {
		rel, err := c.DB.Relation("R")
		if err != nil {
			return false
		}
		for _, row := range rel.Rows {
			if row.Tuple.Key() == tuple.Ints(1).Key() {
				return true
			}
		}
		return false
	}
	min := Shrink(in, failing)
	if min.AtomCount() != 1 {
		t.Fatalf("shrunk query has %d atoms, want 1: %s", min.AtomCount(), min.Q)
	}
	if min.TupleCount() != 1 {
		t.Fatalf("shrunk database has %d tuples, want 1:\n%s", min.TupleCount(), min)
	}
	if !failing(min) {
		t.Fatal("shrunk instance no longer fails")
	}
}

// TestCheckPerAnswerBounds: the Monte-Carlo band must be per answer — a
// certain answer (lineage true) gets a zero-width band.
func TestMCCertainAnswerExact(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	r.MustAdd(tuple.Ints(1), 1)
	db.AddRelation(r)
	in := &Instance{DB: db, Q: query.MustParse("q :- R(a)")}
	rep, err := Check(context.Background(), in, Options{Strategies: []core.Strategy{core.MonteCarlo}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("certain answer diverged under MC: %v", rep.Divergences)
	}
}
