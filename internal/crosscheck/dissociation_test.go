package crosscheck

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
	"repro/pdb"
)

// boundsTol absorbs float summation order between the oracle and the
// dissociation evaluator; the bounds themselves are guaranteed, so anything
// beyond a few ulps of slack is a real bug.
const boundsTol = 1e-9

// adversarialGen biases the generator toward non-read-once lineage: a tiny
// domain over several wider relations makes join variables shared across
// many clauses, which is exactly where dissociation has to produce a
// genuine (non-collapsed) interval.
var adversarialGen = GenConfig{
	MaxRelations: 3,
	MaxArity:     3,
	MaxTuples:    8,
	Domain:       2,
	MaxVars:      4,
	MaxUncertain: 12,
}

// hardInstance builds a seeded dense instance of the canonical unsafe
// pattern q :- R(x), S(x, y), T(y): with every S pair present the lineage
// ∨ r_x s_xy t_y shares each r_x across a row of clauses and each t_y
// across a column, so it is provably not read-once and dissociation must
// produce a genuine interval. Probabilities come from the same adversarial
// palette as the generator.
func hardInstance(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	const dom = 3
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	s := relation.New("S", "x", "y")
	tt := relation.New("T", "y")
	for x := int64(0); x < dom; x++ {
		r.MustAdd(tuple.Ints(x), 0.1+0.8*rng.Float64())
		tt.MustAdd(tuple.Ints(x), 0.1+0.8*rng.Float64())
		for y := int64(0); y < dom; y++ {
			s.MustAdd(tuple.Ints(x, y), 0.1+0.8*rng.Float64())
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	return &Instance{DB: db, Q: query.MustParse("q :- R(x), S(x, y), T(y)")}
}

// TestDissociationBoundsBracketOracle is the tentpole's crosscheck
// obligation: on every seeded adversarial instance, the dissociation
// strategy's [lo, hi] interval must contain the possible-worlds marginal of
// every answer, the answer sets must match exactly, and collapsed intervals
// (lo == hi) must equal the oracle outright.
func TestDissociationBoundsBracketOracle(t *testing.T) {
	ctx := context.Background()
	collapsed, total := 0, 0
	// Each instance is checked twice: with the engine free to solve small
	// lineage exactly (intervals collapse — the common serving path), and
	// with the exact pass starved (ExactBudget 1) so non-read-once answers
	// get genuine dissociation intervals. The bracket obligation holds for
	// both; the starved pass is what makes it non-vacuous.
	passes := []pdb.Options{
		{Strategy: pdb.StrategyDissociation},
		{Strategy: pdb.StrategyDissociation, ExactBudget: 1},
	}
	for seed := int64(1); seed <= numInstances; seed++ {
		// Even seeds draw from the random generator (answer-set equality
		// and collapse coverage); odd seeds use the constructed dense
		// unsafe family (genuine-interval coverage).
		in := Generate(seed, adversarialGen)
		if seed%2 == 1 {
			in = hardInstance(seed)
		}
		oracle, err := ComputeOracle(in)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, opts := range passes {
			res, err := db.EvaluateContext(ctx, q, opts)
			if err != nil {
				t.Fatalf("seed %d: dissociation: %v\ninstance:\n%s", seed, err, in)
			}
			if !res.Stats.BoundsValued {
				t.Fatalf("seed %d: dissociation result not marked bounds-valued", seed)
			}
			got := make(map[string]pdb.Row, len(res.Rows))
			for _, row := range res.Rows {
				got[tuple.Tuple(row.Vals).Key()] = row
			}
			if len(got) != len(oracle.Probs) {
				t.Fatalf("seed %d: %d answers, oracle has %d\ninstance:\n%s",
					seed, len(got), len(oracle.Probs), in)
			}
			for key, want := range oracle.Probs {
				row, ok := got[key]
				if !ok {
					t.Fatalf("seed %d: answer %v missing\ninstance:\n%s", seed, oracle.Vals[key], in)
				}
				total++
				if want < row.Lo-boundsTol || want > row.Hi+boundsTol {
					t.Errorf("seed %d: answer %v: oracle %.12g outside [%.12g, %.12g]\ninstance:\n%s",
						seed, oracle.Vals[key], want, row.Lo, row.Hi, in)
				}
				if row.Lo == row.Hi {
					collapsed++
					if math.Abs(row.Lo-want) > boundsTol {
						t.Errorf("seed %d: answer %v: collapsed interval %.12g ≠ oracle %.12g",
							seed, oracle.Vals[key], row.Lo, want)
					}
				}
			}
		}
	}
	if collapsed == 0 {
		t.Error("no interval collapsed to exact across the sweep — read-once detection inert")
	}
	if collapsed == total {
		t.Error("every interval collapsed — the sweep never exercised a genuine bound")
	}
	t.Logf("%d answer checks, %d exact collapses", total, collapsed)
}

// TestDissociationExactOnSafeInstances: on instances whose query is safe,
// the lineage is read-once and every dissociation interval must collapse to
// the oracle's exact probability.
func TestDissociationExactOnSafeInstances(t *testing.T) {
	ctx := context.Background()
	safe := 0
	for seed := int64(1); seed <= numInstances; seed++ {
		in := Generate(seed, GenConfig{})
		if !in.Q.IsSafe() {
			continue
		}
		safe++
		oracle, err := ComputeOracle(in)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := db.EvaluateContext(ctx, q, pdb.Options{Strategy: pdb.StrategyDissociation})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, row := range res.Rows {
			want := oracle.Probs[tuple.Tuple(row.Vals).Key()]
			if row.Lo != row.Hi {
				t.Errorf("seed %d: safe query, answer %v did not collapse: [%.12g, %.12g]\ninstance:\n%s",
					seed, row.Vals, row.Lo, row.Hi, in)
			}
			if math.Abs(row.P-want) > boundsTol {
				t.Errorf("seed %d: safe answer %v: %.12g, oracle %.12g", seed, row.Vals, row.P, want)
			}
		}
	}
	if safe == 0 {
		t.Fatal("sweep contained no safe instances")
	}
	t.Logf("%d safe instances checked", safe)
}

// TestTopKMatchesOracleRanking: the anytime top-k set must equal the exact
// top-k by oracle probability on every seeded instance. Ties are handled by
// comparing probability multisets: any answer set whose oracle
// probabilities match the exact top-k's is a correct ranking.
func TestTopKMatchesOracleRanking(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= numInstances; seed++ {
		in := Generate(seed, adversarialGen)
		oracle, err := ComputeOracle(in)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		if len(oracle.Probs) < 2 {
			continue
		}
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		k := 1 + int(seed)%3
		if k > len(oracle.Probs) {
			k = len(oracle.Probs)
		}
		res, err := db.TopKQuery(q, pdb.TopKOptions{K: k, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: top-k: %v\ninstance:\n%s", seed, err, in)
		}
		if len(res.Answers) != k {
			t.Fatalf("seed %d: got %d answers, want %d", seed, len(res.Answers), k)
		}
		exact := make([]float64, 0, len(oracle.Probs))
		for _, p := range oracle.Probs {
			exact = append(exact, p)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(exact)))
		chosen := make([]float64, 0, k)
		for _, a := range res.Answers {
			key := tuple.Tuple(a.Vals).Key()
			p, ok := oracle.Probs[key]
			if !ok {
				t.Fatalf("seed %d: top-k returned non-answer %v", seed, a.Vals)
			}
			if p < a.Lo-boundsTol || p > a.Hi+boundsTol {
				t.Errorf("seed %d: answer %v: oracle %.12g outside [%.12g, %.12g]",
					seed, a.Vals, p, a.Lo, a.Hi)
			}
			chosen = append(chosen, p)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(chosen)))
		for i := range chosen {
			if math.Abs(chosen[i]-exact[i]) > boundsTol {
				t.Errorf("seed %d: rank %d has oracle prob %.12g, exact ranking has %.12g\ninstance:\n%s",
					seed, i, chosen[i], exact[i], in)
				break
			}
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d instances had ≥ 2 answers — sweep too thin", checked)
	}
	t.Logf("%d top-k rankings checked against the oracle", checked)
}

// Keep the core enum and the crosscheck harness in sync: dissociation is
// deliberately NOT in ExactStrategies (its contract is bracketing, not
// agreement), so this test documents the partition of all six strategies.
func TestStrategyPartitionCoversDissociation(t *testing.T) {
	exact := make(map[core.Strategy]bool)
	for _, s := range ExactStrategies() {
		exact[s] = true
	}
	for _, s := range core.Strategies() {
		switch {
		case exact[s]:
		case s == core.MonteCarlo, s == core.Dissociation:
			// Checked by their own harnesses: Hoeffding bands for mc,
			// bracket + collapse obligations (this file) for dissociation.
		default:
			t.Errorf("strategy %v is in no crosscheck bucket", s)
		}
	}
}
