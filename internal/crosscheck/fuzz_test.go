package crosscheck

import (
	"context"
	"testing"

	"repro/internal/core"
)

// FuzzCheckExact drives the differential harness from a fuzzed seed: every
// generated instance must evaluate without error under the exact strategies
// and agree with the possible-worlds oracle to 1e-9. The generator maps any
// int64 to a valid instance, so the whole seed space is searchable.
func FuzzCheckExact(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Add(int64(0))
	f.Add(int64(-1))
	f.Add(int64(1) << 62)
	opts := Options{Strategies: ExactStrategies()}
	f.Fuzz(func(t *testing.T, seed int64) {
		in := Generate(seed, GenConfig{})
		rep, err := Check(context.Background(), in, opts)
		if err != nil {
			t.Fatalf("seed %d: %v\ninstance:\n%s", seed, err, in)
		}
		if rep.Failed() {
			min := Minimize(context.Background(), in, opts)
			t.Fatalf("seed %d diverged: %v\nminimized reproducer:\n%s", seed, rep.Divergences[0], min)
		}
	})
}

// FuzzCheckMonteCarlo additionally runs the Karp–Luby sampler with a small
// sample budget against its Hoeffding band. Kept separate from the exact
// target so the cheap invariant gets most of the fuzzing throughput.
func FuzzCheckMonteCarlo(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	opts := Options{Strategies: []core.Strategy{core.MonteCarlo}, Samples: 1000}
	f.Fuzz(func(t *testing.T, seed int64) {
		in := Generate(seed, GenConfig{MaxUncertain: 8})
		rep, err := Check(context.Background(), in, opts)
		if err != nil {
			t.Fatalf("seed %d: %v\ninstance:\n%s", seed, err, in)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: sampler left its confidence band: %v\ninstance:\n%s",
				seed, rep.Divergences[0], in)
		}
	})
}
