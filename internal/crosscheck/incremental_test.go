package crosscheck

// Differential testing for incremental view maintenance: seeded random
// mutation sequences (inserts, deletes, prob-updates) are applied in
// lockstep to a raw relation.Database (for the possible-world oracle) and
// to the public pdb facade holding a materialized view. After every batch
// of mutations the view is refreshed — patched in place when the write
// path allows it, recomputed otherwise — and compared bit-for-bit against
// a from-scratch Materialize of the mutated database. At the end of each
// sequence the view is also checked against the oracle: exact strategies
// within the harness tolerance, the Karp–Luby sampler within its Hoeffding
// band. A patched refresh that drifts from a fresh evaluation by even one
// ulp fails the sweep with the owning seed.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tuple"
	"repro/pdb"
)

// numMutationSeqs is the number of seeded mutation sequences per strategy;
// the acceptance criteria require at least 50.
const numMutationSeqs = 60

// maxSweepUncertain caps uncertain rows during a sequence so the final
// oracle enumeration stays well under relation.MaxWorldRows.
const maxSweepUncertain = 14

// mutator applies one random mutation to the instance and the facade
// database in lockstep. Both sides resolve value-addressed SetProb/Delete
// to the first matching row, so duplicate tuples stay synchronized.
type mutator struct {
	rng *rand.Rand
	in  *Instance
	db  *pdb.Database
	aux *pdb.Relation // relation outside the view's read set
}

func (m *mutator) uncertain() int {
	n := 0
	for _, name := range m.in.DB.Names() {
		if r, err := m.in.DB.Relation(name); err == nil {
			n += r.UncertainCount()
		}
	}
	return n
}

// step performs one mutation. Prob-updates dominate the mix because they
// are the only patchable write; endpoint probabilities (0 and 1) are drawn
// deliberately to force structural recomputes through the same refresh
// call.
func (m *mutator) step(t *testing.T) {
	t.Helper()
	names := m.in.DB.Names()
	name := names[m.rng.Intn(len(names))]
	src, err := m.in.DB.Relation(name)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := m.db.Relation(name)
	if err != nil {
		t.Fatal(err)
	}

	// An occasional write to the auxiliary relation the query never reads:
	// the subsequent refresh must be a no-op that changes nothing.
	if m.rng.Float64() < 0.10 {
		if err := m.aux.AddInts(m.randProb(false), int64(m.rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
		return
	}

	op := m.rng.Float64()
	switch {
	case op < 0.5 && src.Len() > 0: // prob-update
		row := src.Rows[m.rng.Intn(src.Len())]
		interiorOK := (row.P > 0 && row.P < 1) || m.uncertain() < maxSweepUncertain
		p := m.randProb(interiorOK)
		if _, _, err := src.SetProb(row.Tuple, p); err != nil {
			t.Fatal(err)
		}
		if err := dst.SetProb(p, pdbVals(row.Tuple)...); err != nil {
			t.Fatal(err)
		}
	case op < 0.7 && src.Len() > 0: // delete
		row := src.Rows[m.rng.Intn(src.Len())]
		if _, _, err := src.Delete(row.Tuple); err != nil {
			t.Fatal(err)
		}
		if err := dst.Delete(pdbVals(row.Tuple)...); err != nil {
			t.Fatal(err)
		}
	default: // insert
		vals := make([]int64, len(src.Attrs))
		for i := range vals {
			vals[i] = int64(m.rng.Intn(3))
		}
		p := m.randProb(m.uncertain() < maxSweepUncertain)
		if err := src.AddInts(p, vals...); err != nil {
			t.Fatal(err)
		}
		if err := dst.AddInts(p, vals...); err != nil {
			t.Fatal(err)
		}
	}
}

// randProb draws a new probability: mostly strictly interior (the patchable
// regime) with deliberate mass on the structural endpoints. When interior
// values are disallowed (the uncertainty budget is spent), only endpoints
// are produced.
func (m *mutator) randProb(interiorOK bool) float64 {
	if !interiorOK || m.rng.Float64() < 0.25 {
		return float64(m.rng.Intn(2))
	}
	return 0.05 + 0.9*m.rng.Float64()
}

func pdbVals(t tuple.Tuple) []pdb.Value {
	out := make([]pdb.Value, len(t))
	for i, v := range t {
		out[i] = v
	}
	return out
}

// requireBitEqual compares a refreshed view against a from-scratch
// materialization of the same query at the current database state. Exact
// strategies and the seeded sampler are both deterministic, so equality is
// on raw float64 bits, not within a tolerance.
func requireBitEqual(t *testing.T, label string, view, fresh *pdb.Result) {
	t.Helper()
	if len(view.Rows) != len(fresh.Rows) {
		t.Fatalf("%s: refreshed view has %d answers, from-scratch has %d", label, len(view.Rows), len(fresh.Rows))
	}
	for i := range view.Rows {
		g, w := view.Rows[i], fresh.Rows[i]
		if tuple.Tuple(g.Vals).Key() != tuple.Tuple(w.Vals).Key() {
			t.Fatalf("%s: answer %d is %v refreshed vs %v from scratch", label, i, g.Vals, w.Vals)
		}
		if g.P != w.P {
			t.Fatalf("%s: answer %v: refreshed %.17g != from-scratch %.17g (diff %g)",
				label, g.Vals, g.P, w.P, math.Abs(g.P-w.P))
		}
	}
}

// runMutationSweep drives numMutationSeqs seeded sequences for one strategy
// and returns refresh-kind counts for the log line.
func runMutationSweep(t *testing.T, strategy core.Strategy, seqs, steps int, opts pdb.Options) map[pdb.RefreshKind]int {
	t.Helper()
	kinds := make(map[pdb.RefreshKind]int)
	for seed := int64(1); seed <= int64(seqs); seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		view, err := db.Materialize(q, opts)
		if err != nil {
			t.Fatalf("seed %d: materialize: %v", seed, err)
		}
		m := &mutator{
			rng: rand.New(rand.NewSource(seed * 7919)),
			in:  in,
			db:  db,
			aux: db.CreateRelation("Aux", "a"),
		}
		for step := 0; step < steps; step++ {
			// Batches of 1–3 mutations between refreshes exercise the
			// delta log and multi-patch sequencing, not just single deltas.
			for n := 1 + m.rng.Intn(3); n > 0; n-- {
				m.step(t)
			}
			kind, err := view.Refresh()
			if err != nil {
				t.Fatalf("seed %d step %d: refresh: %v", seed, step, err)
			}
			kinds[kind]++
			fresh, err := db.Materialize(q, opts)
			if err != nil {
				t.Fatalf("seed %d step %d: fresh materialize: %v", seed, step, err)
			}
			label := fmt.Sprintf("seed %d step %d (%v, refresh %v)", seed, step, strategy, kind)
			requireBitEqual(t, label, view.Result(), fresh.Result())
		}
		checkViewAgainstOracle(t, strategy, in, view, opts, seed)
	}
	return kinds
}

// checkViewAgainstOracle compares the sequence's final view state against
// possible-world enumeration of the mutated instance. Sequences whose
// mutations pushed past the enumeration limit are skipped (bit-equality
// already covered them); exact strategies must agree to 1e-9, the sampler
// within its Hoeffding band.
func checkViewAgainstOracle(t *testing.T, strategy core.Strategy, in *Instance, view *pdb.Materialized, opts pdb.Options, seed int64) {
	t.Helper()
	uncertain := 0
	for _, name := range in.DB.Names() {
		if r, err := in.DB.Relation(name); err == nil {
			uncertain += r.UncertainCount()
		}
	}
	if uncertain > relation.MaxWorldRows {
		return
	}
	oracle, err := ComputeOracle(in)
	if err != nil {
		t.Fatalf("seed %d: oracle: %v", seed, err)
	}
	bound := func(key string) float64 { return 1e-9 }
	if strategy == core.MonteCarlo {
		bounds, err := mcBounds(in, Options{Samples: opts.Samples, Delta: 1e-9})
		if err != nil {
			t.Fatalf("seed %d: Monte-Carlo bounds: %v", seed, err)
		}
		bound = func(key string) float64 { return bounds[key] + 1e-9 }
	}
	got := make(map[string]float64)
	for _, row := range view.Result().Rows {
		got[tuple.Tuple(row.Vals).Key()] = row.P
	}
	keys := make(map[string]bool, len(got)+len(oracle.Probs))
	for k := range got {
		keys[k] = true
	}
	for k := range oracle.Probs {
		keys[k] = true
	}
	for k := range keys {
		g, w := got[k], oracle.Probs[k]
		if math.Abs(g-w) > bound(k) || math.IsNaN(g) {
			t.Errorf("seed %d (%v): final answer %q: view %.12g, oracle %.12g (bound %.3g)",
				seed, strategy, k, g, w, bound(k))
		}
	}
}

// TestIncrementalMatchesScratch is the write path's correctness spine:
// refreshed views must be bit-identical to from-scratch evaluation across
// seeded random mutation sequences, for the exact Shannon path and for the
// seeded Karp–Luby sampler.
func TestIncrementalMatchesScratch(t *testing.T) {
	kinds := runMutationSweep(t, core.DNFLineage, numMutationSeqs, 8,
		pdb.Options{Strategy: core.DNFLineage})
	t.Logf("exact sweep: %d sequences, refreshes: noop=%d patched=%d recomputed=%d",
		numMutationSeqs, kinds[pdb.RefreshNoop], kinds[pdb.RefreshPatched], kinds[pdb.RefreshRecomputed])
	// The sweep is only meaningful if it actually drove every refresh path.
	for _, k := range []pdb.RefreshKind{pdb.RefreshNoop, pdb.RefreshPatched, pdb.RefreshRecomputed} {
		if kinds[k] == 0 {
			t.Errorf("mutation sweep never produced a %v refresh", k)
		}
	}
}

// TestIncrementalMatchesScratchMC runs a smaller sweep through the sampling
// path: patched re-sampling reuses the engine's per-answer seeds, so it too
// is bit-identical to a fresh materialization, and the final state must sit
// inside the estimator's confidence band around the oracle.
func TestIncrementalMatchesScratchMC(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling sweep is slow; skipped in -short")
	}
	kinds := runMutationSweep(t, core.MonteCarlo, 12, 5,
		pdb.Options{Strategy: core.MonteCarlo, Samples: 3000, Seed: 7})
	t.Logf("sampling sweep refreshes: noop=%d patched=%d recomputed=%d",
		kinds[pdb.RefreshNoop], kinds[pdb.RefreshPatched], kinds[pdb.RefreshRecomputed])
}
