package crosscheck

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/pdb"
)

// memoAblations are the option sets whose answers must be bit-identical to
// the default configuration: memoization, key interning and scratch pooling
// are pure work-avoidance and may not shift a single float bit. (NoCons is
// deliberately absent — disabling hash-consing changes the network *shape*,
// which is a benchmark dimension, not an equivalence.)
var memoAblations = []struct {
	name string
	set  func(*pdb.Options)
}{
	{"no-memo", func(o *pdb.Options) { o.NoMemo = true }},
	{"no-intern", func(o *pdb.Options) { o.NoIntern = true }},
	{"no-pool", func(o *pdb.Options) { o.NoPool = true }},
	{"all-off", func(o *pdb.Options) { o.NoMemo, o.NoIntern, o.NoPool = true, true, true }},
}

// TestMemoBitIdentical sweeps seeded random instances and asserts that every
// exact strategy computes bit-identical answer probabilities with the
// memo/interning/pooling levels on and off — a comparison to ±0, not to a
// tolerance. Both serial and parallel evaluations are held to it.
func TestMemoBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, s := range ExactStrategies() {
			for _, par := range []int{0, 4} {
				base := pdb.Options{Strategy: s, Parallelism: par, NoFallback: true}
				ref, errRef := db.Evaluate(q, base)
				for _, ab := range memoAblations {
					opts := base
					ab.set(&opts)
					got, errGot := db.Evaluate(q, opts)
					if (errRef == nil) != (errGot == nil) {
						t.Fatalf("seed %d strategy %v par %d %s: outcome changed: %v vs %v",
							seed, s, par, ab.name, errRef, errGot)
					}
					if errRef != nil {
						continue // e.g. safe declining a non-data-safe instance
					}
					if len(ref.Rows) != len(got.Rows) {
						t.Fatalf("seed %d strategy %v par %d %s: answer count %d vs %d",
							seed, s, par, ab.name, len(ref.Rows), len(got.Rows))
					}
					for _, row := range ref.Rows {
						if p := got.Prob(row.Vals...); p != row.P {
							t.Fatalf("seed %d strategy %v par %d %s: answer %v: %v vs %v (must be bit-identical)",
								seed, s, par, ab.name, row.Vals, row.P, p)
						}
					}
				}
			}
		}
	}
}

// TestKarpLubySeedReproducibleWithMemo: the sampler's answer is a function
// of the seed alone — repeated runs, memo-ablated runs and parallel runs all
// reproduce it bit for bit.
func TestKarpLubySeedReproducibleWithMemo(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := pdb.Options{Strategy: core.MonteCarlo, Seed: seed, Samples: 500}
		ref, err := db.Evaluate(q, base)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		variants := []pdb.Options{
			base, // plain repeat
			{Strategy: core.MonteCarlo, Seed: seed, Samples: 500, NoMemo: true, NoIntern: true, NoPool: true},
			{Strategy: core.MonteCarlo, Seed: seed, Samples: 500, Parallelism: 4},
		}
		for i, opts := range variants {
			got, err := db.Evaluate(q, opts)
			if err != nil {
				t.Fatalf("seed %d variant %d: %v", seed, i, err)
			}
			for _, row := range ref.Rows {
				if p := got.Prob(row.Vals...); p != row.P {
					t.Fatalf("seed %d variant %d: answer %v: %v vs %v (same seed must be bit-identical)",
						seed, i, row.Vals, row.P, p)
				}
			}
		}
	}
}

// TestServedCacheHitMatchesCold extends the served-vs-direct oracle to the
// result cache: the same sweep posted twice against one server — the second
// pass served from cache — must match direct evaluation both times.
func TestServedCacheHitMatchesCold(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 20; seed++ {
		in := Generate(seed, GenConfig{})
		ts := serveFor(t, in)
		for pass := 0; pass < 2; pass++ {
			rep, err := CheckServed(ctx, in, ts.URL, Options{Samples: 2000, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d pass %d: %v\ninstance:\n%s", seed, pass, err, in)
			}
			if rep.Failed() {
				t.Fatalf("seed %d pass %d: served diverged: %v\ninstance:\n%s",
					seed, pass, rep.Divergences[0], in)
			}
		}
		ts.Close()
	}
}

// zeroTimes strips wall-clock measurements from a trace so that two runs of
// the same evaluation can be compared byte for byte.
func zeroTimes(tr *obs.Trace) {
	tr.PlanTime, tr.InferenceTime = 0, 0
	var walk func([]*obs.Span)
	walk = func(spans []*obs.Span) {
		for _, sp := range spans {
			sp.Time = 0
			walk(sp.Children)
		}
	}
	walk(tr.Roots)
}

// TestTraceDeterministicWithMemo is the map-iteration-order regression
// check: two same-seed evaluations with memoization on must produce
// byte-identical execution traces (wall times masked) — any nondeterministic
// iteration over a memo table or pooled map would scramble span order,
// network growth attribution or answer ordering.
func TestTraceDeterministicWithMemo(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, s := range []core.Strategy{core.PartialLineage, core.FullNetwork, core.DNFLineage} {
			for _, par := range []int{0, 4} {
				render := func() []byte {
					res, err := db.Evaluate(q, pdb.Options{Strategy: s, Parallelism: par, Trace: true, NoFallback: true})
					if err != nil {
						t.Fatalf("seed %d strategy %v par %d: %v", seed, s, par, err)
					}
					tr := res.Trace()
					zeroTimes(tr)
					data, err := json.Marshal(tr)
					if err != nil {
						t.Fatal(err)
					}
					return data
				}
				first := render()
				if second := render(); string(first) != string(second) {
					t.Fatalf("seed %d strategy %v par %d: trace not deterministic:\n%s\nvs\n%s",
						seed, s, par, first, second)
				}
			}
		}
	}
}
