package crosscheck

import (
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Oracle is the ground-truth answer distribution of an instance, computed by
// exhaustive possible-world enumeration: for every world (Eq. 1's product
// space, via relation.Database.Worlds) the query is evaluated as an ordinary
// deterministic conjunctive query, and each answer tuple accumulates the
// world's probability. This path shares no evaluation code with the engine —
// no plans, no lineage, no networks — so agreement with it is meaningful.
type Oracle struct {
	// Probs maps each answer's tuple key to its marginal probability; Vals
	// recovers the tuple behind a key. A Boolean query uses the empty tuple.
	Probs map[string]float64
	Vals  map[string]tuple.Tuple
	// Worlds is the number of possible worlds enumerated.
	Worlds int
}

// ComputeOracle enumerates the instance's possible worlds and sums each
// answer's probability with Kahan compensation. Per-answer sums range over
// up to 2^MaxWorldRows terms of wildly mixed magnitudes (world probabilities
// multiply up to 22 factors, so terms span many orders of magnitude); naive
// summation could lose enough precision to eat into the harness's 1e-9
// agreement tolerance, while compensated summation keeps the oracle's own
// error at a few ulps.
func ComputeOracle(in *Instance) (*Oracle, error) {
	worlds, err := in.DB.Worlds()
	if err != nil {
		return nil, err
	}
	ev, err := newWorldEvaluator(in.DB, in.Q)
	if err != nil {
		return nil, err
	}
	sums := make(map[string]*kahanSum)
	vals := make(map[string]tuple.Tuple)
	answers := make(map[string]tuple.Tuple)
	for i := range worlds {
		w := &worlds[i]
		if w.P == 0 {
			continue
		}
		clear(answers)
		ev.answers(w, answers)
		for k, v := range answers {
			s, ok := sums[k]
			if !ok {
				s = &kahanSum{}
				sums[k] = s
				vals[k] = v
			}
			s.Add(w.P)
		}
	}
	out := &Oracle{Probs: make(map[string]float64, len(sums)), Vals: vals, Worlds: len(worlds)}
	for k, s := range sums {
		out.Probs[k] = s.Sum()
	}
	return out, nil
}

// kahanSum is a compensated accumulator: Add folds in one term, tracking the
// low-order bits lost by each floating-point addition.
type kahanSum struct{ sum, c float64 }

func (k *kahanSum) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

func (k *kahanSum) Sum() float64 { return k.sum }

// worldEvaluator evaluates the query on single deterministic worlds by plain
// backtracking over the atoms in body order.
type worldEvaluator struct {
	q     *query.Query
	rels  []*relation.Relation
	atoms []*query.Atom
}

func newWorldEvaluator(db *relation.Database, q *query.Query) (*worldEvaluator, error) {
	ev := &worldEvaluator{q: q}
	for i := range q.Atoms {
		a := &q.Atoms[i]
		r, err := db.Relation(a.Pred)
		if err != nil {
			return nil, err
		}
		ev.rels = append(ev.rels, r)
		ev.atoms = append(ev.atoms, a)
	}
	return ev, nil
}

// answers collects the query's answer tuples in world w, keyed by tuple key.
func (ev *worldEvaluator) answers(w *relation.World, out map[string]tuple.Tuple) {
	binding := make(map[string]tuple.Value)
	ev.recurse(0, w, binding, out)
}

func (ev *worldEvaluator) recurse(depth int, w *relation.World, binding map[string]tuple.Value, out map[string]tuple.Tuple) {
	if depth == len(ev.atoms) {
		vals := make(tuple.Tuple, len(ev.q.Head))
		for i, h := range ev.q.Head {
			vals[i] = binding[h]
		}
		out[vals.Key()] = vals
		return
	}
	a := ev.atoms[depth]
	rel := ev.rels[depth]
	for _, ri := range w.Present[a.Pred] {
		row := rel.Rows[ri]
		var bound []string
		ok := true
		for pos, arg := range a.Args {
			v := row.Tuple[pos]
			if !arg.IsVar() {
				if v != arg.Const {
					ok = false
					break
				}
				continue
			}
			if old, exists := binding[arg.Var]; exists {
				if old != v {
					ok = false
					break
				}
				continue
			}
			binding[arg.Var] = v
			bound = append(bound, arg.Var)
		}
		if ok {
			ev.recurse(depth+1, w, binding, out)
		}
		for _, v := range bound {
			delete(binding, v)
		}
	}
}
