package crosscheck

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/tuple"
	"repro/pdb"
)

// This file pins the adaptive-planning layer's correctness contract: for
// every strategy, evaluating with the cost-aware planner on and off yields
// the same answer set, with exact answers agreeing to within the float
// tolerance in general and bit-identically on dyadic instances; and the
// backend-stats sink never influences any result byte.

// evalMode evaluates one instance under one strategy with the adaptive
// planner on or off, returning the answers keyed by head tuple.
func evalMode(t *testing.T, in *Instance, s core.Strategy, noAdaptive bool) (map[string]float64, error) {
	t.Helper()
	db, err := toPDB(in)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pdb.ParseQuery(in.Q.String())
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.EvaluateContext(context.Background(), q, pdb.Options{
		Strategy:       s,
		Seed:           1,
		NoFallback:     s != core.MonteCarlo,
		NoAdaptivePlan: noAdaptive,
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(res.Rows))
	for _, row := range res.Rows {
		out[tuple.Tuple(row.Vals).Key()] = row.P
	}
	return out, nil
}

// notDataSafe reports the one legitimate mode-dependent outcome: the
// SafePlanOnly strategy declines instances whose chosen plan needs
// conditioning, and the two modes choose different plans.
func notDataSafe(s core.Strategy, err error) bool {
	return s == core.SafePlanOnly && errors.Is(err, engine.ErrNotDataSafe)
}

// TestAdaptivePlanMatchesLegacy compares every exact strategy with the
// planner on and off across random instances: identical answer sets, every
// probability within tolerance of the other mode and of the possible-world
// oracle.
func TestAdaptivePlanMatchesLegacy(t *testing.T) {
	const tol = 1e-9
	for seed := int64(0); seed < 60; seed++ {
		in := Generate(seed, GenConfig{})
		oracle, err := ComputeOracle(in)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		for _, s := range ExactStrategies() {
			on, errOn := evalMode(t, in, s, false)
			off, errOff := evalMode(t, in, s, true)
			// SafePlanOnly may decline under one plan and succeed under the
			// other; whichever mode answered is still checked against the
			// oracle below.
			if errOn != nil && !notDataSafe(s, errOn) {
				t.Fatalf("seed %d strategy %v adaptive: %v", seed, s, errOn)
			}
			if errOff != nil && !notDataSafe(s, errOff) {
				t.Fatalf("seed %d strategy %v legacy: %v", seed, s, errOff)
			}
			if errOn == nil && errOff == nil {
				if len(on) != len(off) {
					t.Errorf("seed %d strategy %v: answer sets differ (%d adaptive vs %d legacy)", seed, s, len(on), len(off))
				}
				for k, p := range on {
					q, ok := off[k]
					if !ok {
						t.Errorf("seed %d strategy %v: answer %q only in adaptive mode", seed, s, k)
						continue
					}
					if math.Abs(p-q) > tol {
						t.Errorf("seed %d strategy %v answer %q: adaptive %.12g vs legacy %.12g", seed, s, k, p, q)
					}
				}
			}
			for mode, got := range map[string]map[string]float64{"adaptive": on, "legacy": off} {
				if got == nil {
					continue
				}
				for k, want := range oracle.Probs {
					if math.Abs(got[k]-want) > tol {
						t.Errorf("seed %d strategy %v %s answer %q: got %.12g, oracle %.12g", seed, s, mode, k, got[k], want)
					}
				}
			}
		}
	}
}

// dyadic rewrites every uncertain probability to one half. With all base
// probabilities in {0, 1/2, 1} and few uncertain tuples, every intermediate
// of every exact backend is a dyadic rational representable exactly in
// float64, so any two exact evaluations must agree bit for bit — not merely
// within tolerance.
func dyadic(in *Instance) *Instance {
	out := in.Clone()
	for _, name := range out.DB.Names() {
		r, err := out.DB.Relation(name)
		if err != nil {
			panic(err)
		}
		for i := range r.Rows {
			if p := r.Rows[i].P; p > 0 && p < 1 {
				r.Rows[i].P = 0.5
			}
		}
	}
	return out
}

// TestAdaptivePlanBitIdenticalDyadic proves the strong form of plan
// independence on dyadic instances: for every exact strategy, planner on and
// off produce bitwise-identical probabilities, and all exact strategies
// agree bitwise with each other.
func TestAdaptivePlanBitIdenticalDyadic(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		in := dyadic(Generate(seed, GenConfig{}))
		var ref map[string]float64
		var refStrategy core.Strategy
		for _, s := range ExactStrategies() {
			on, errOn := evalMode(t, in, s, false)
			off, errOff := evalMode(t, in, s, true)
			if errOn != nil || errOff != nil {
				if notDataSafe(s, errOn) || notDataSafe(s, errOff) {
					continue
				}
				t.Fatalf("seed %d strategy %v: adaptive err %v, legacy err %v", seed, s, errOn, errOff)
			}
			if len(on) != len(off) {
				t.Fatalf("seed %d strategy %v: answer sets differ", seed, s)
			}
			for k, p := range on {
				if q, ok := off[k]; !ok || math.Float64bits(p) != math.Float64bits(q) {
					t.Errorf("seed %d strategy %v answer %q: adaptive %x vs legacy %x bits", seed, s, k, math.Float64bits(p), math.Float64bits(off[k]))
				}
			}
			if ref == nil {
				ref, refStrategy = on, s
				continue
			}
			if len(on) != len(ref) {
				t.Errorf("seed %d: %v and %v disagree on answer count", seed, s, refStrategy)
			}
			for k, p := range on {
				if math.Float64bits(p) != math.Float64bits(ref[k]) {
					t.Errorf("seed %d answer %q: %v gives %x, %v gives %x bits", seed, k, s, math.Float64bits(p), refStrategy, math.Float64bits(ref[k]))
				}
			}
		}
	}
}

// TestPlannerSinkDoesNotChangeResults pins the sink-purity regression: the
// backend-stats sink is observability-only, so repeated evaluations — cold
// sink, warm sink, or a sink stuffed with adversarial history — return
// bit-identical answers. Backend ranking being a pure function of the
// profile makes this hold by construction; this test keeps it that way.
func TestPlannerSinkDoesNotChangeResults(t *testing.T) {
	defer planner.DefaultSink.Reset()
	for seed := int64(0); seed < 20; seed++ {
		in := Generate(seed, GenConfig{})
		for _, s := range ExactStrategies() {
			planner.DefaultSink.Reset()
			cold, errCold := evalMode(t, in, s, false)
			if errCold != nil {
				if notDataSafe(s, errCold) {
					continue
				}
				t.Fatalf("seed %d strategy %v: %v", seed, s, errCold)
			}
			// Poison the history: if ranking ever consulted the sink, a
			// record claiming VE always fails and sampling always wins would
			// redirect the dispatch.
			for i := 0; i < 1000; i++ {
				planner.DefaultSink.Record("ve", false, time.Second)
				planner.DefaultSink.Record("jtree", false, time.Second)
				planner.DefaultSink.Record("forward-sampling", true, time.Nanosecond)
			}
			for run := 0; run < 3; run++ {
				warm, err := evalMode(t, in, s, false)
				if err != nil {
					t.Fatalf("seed %d strategy %v warm run %d: %v", seed, s, run, err)
				}
				if len(warm) != len(cold) {
					t.Fatalf("seed %d strategy %v: warm answer set differs", seed, s)
				}
				for k, p := range warm {
					if math.Float64bits(p) != math.Float64bits(cold[k]) {
						t.Errorf("seed %d strategy %v answer %q: warm %x vs cold %x bits", seed, s, k, math.Float64bits(p), math.Float64bits(cold[k]))
					}
				}
			}
		}
	}
}
