package crosscheck

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/pdb"
)

// ServeDivergence is one disagreement between a served answer and the same
// evaluation run directly through pdb.EvaluateContext.
type ServeDivergence struct {
	Strategy core.Strategy
	// Key names the diverging answer: its head values joined with '/',
	// "<bool>" for Boolean queries, or a description for structural
	// mismatches (differing error classification, row count).
	Key string
	// Served is the probability that came back over HTTP, Direct the one the
	// in-process evaluation produced, Bound the tolerance exceeded.
	Served, Direct, Bound float64
	// Detail carries structural mismatches that have no number to compare.
	Detail string
}

func (d ServeDivergence) String() string {
	if d.Detail != "" {
		return fmt.Sprintf("strategy %v answer %s: %s", d.Strategy, d.Key, d.Detail)
	}
	return fmt.Sprintf("strategy %v answer %s: served %.12g, direct %.12g (|diff| %.3g > %.3g)",
		d.Strategy, d.Key, d.Served, d.Direct, math.Abs(d.Served-d.Direct), d.Bound)
}

// ServeReport is the outcome of one served-vs-direct check.
type ServeReport struct {
	Divergences []ServeDivergence
	// Skipped records strategies both sides declined for the same legitimate
	// reason (SafePlanOnly on instances that are not data-safe).
	Skipped map[core.Strategy]error
}

// Failed reports whether any strategy diverged.
func (r *ServeReport) Failed() bool { return len(r.Divergences) > 0 }

// CheckServed compares the HTTP query service against direct
// pdb.EvaluateContext evaluation of the same instance: for every requested
// strategy it posts the query to url (a Server's base URL serving the same
// database) and evaluates in process with the options the server derives
// from that request, then diffs the answer sets. JSON round-trips float64
// exactly, so with a shared seed the exact strategies — and the Karp–Luby
// sampler — must agree bit for bit; the bound still allows Options.Tol for
// the exact paths and the Hoeffding band (as in Check) for Monte Carlo, so
// the oracle also catches a server that silently re-derives options.
//
// Both sides declining an instance the same way (SafePlanOnly on a
// non-data-safe instance: HTTP 422 not_data_safe vs engine.ErrNotDataSafe)
// counts as agreement and is recorded in Skipped.
func CheckServed(ctx context.Context, in *Instance, url string, opts Options) (*ServeReport, error) {
	opts = opts.withDefaults()
	db, err := toPDB(in)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: %w", err)
	}
	q, err := pdb.ParseQuery(in.Q.String())
	if err != nil {
		return nil, fmt.Errorf("crosscheck: re-parsing query %q: %w", in.Q.String(), err)
	}
	rep := &ServeReport{Skipped: make(map[core.Strategy]error)}
	for _, s := range opts.Strategies {
		// Mirror exactly what server.evaluate builds from the request: no
		// NoFallback, no budgets — the served path must be the public path.
		popts := pdb.Options{
			Strategy:    s,
			Seed:        opts.Seed,
			Samples:     opts.Samples,
			Parallelism: opts.Parallelism,
		}
		res, directErr := db.EvaluateContext(ctx, q, popts)

		served, code, servedErr := postServed(ctx, url, server.QueryRequest{
			Query:       in.Q.String(),
			Strategy:    s.String(),
			Seed:        opts.Seed,
			Samples:     opts.Samples,
			Parallelism: opts.Parallelism,
		})
		if servedErr != nil {
			return nil, fmt.Errorf("crosscheck: serving strategy %v: %w", s, servedErr)
		}

		switch {
		case directErr != nil && code != http.StatusOK:
			// Both sides declined: a divergence only if they disagree on why.
			if s == core.SafePlanOnly && errors.Is(directErr, engine.ErrNotDataSafe) && served.errCode == "not_data_safe" {
				rep.Skipped[s] = directErr
				continue
			}
			return nil, fmt.Errorf("crosscheck: strategy %v failed on both sides: direct %v, served %d %s",
				s, directErr, code, served.errCode)
		case directErr != nil:
			rep.Divergences = append(rep.Divergences, ServeDivergence{
				Strategy: s, Key: "<whole answer>",
				Detail: fmt.Sprintf("direct evaluation failed (%v) but the server answered %d", directErr, code),
			})
			continue
		case code != http.StatusOK:
			rep.Divergences = append(rep.Divergences, ServeDivergence{
				Strategy: s, Key: "<whole answer>",
				Detail: fmt.Sprintf("server answered %d (%s) but direct evaluation succeeded", code, served.errCode),
			})
			continue
		}

		bound := func(key string) float64 { return opts.Tol }
		if s == core.MonteCarlo {
			bounds, err := mcBounds(in, opts)
			if err != nil {
				return nil, fmt.Errorf("crosscheck: Monte-Carlo bounds: %w", err)
			}
			// mcBounds keys by tuple key; re-key by the served string form.
			byServed := make(map[string]float64, len(bounds))
			for _, row := range res.Rows {
				byServed[servedKeyOfRow(row)] = bounds[tuple.Tuple(row.Vals).Key()]
			}
			if len(res.Attrs) == 0 {
				byServed["<bool>"] = bounds[""]
			}
			bound = func(key string) float64 {
				// Twice the band: served and direct each sit within one band
				// of the truth with overwhelming probability.
				return 2*byServed[key] + opts.Tol
			}
		}
		rep.Divergences = append(rep.Divergences, compareServed(s, served, res, len(res.Attrs) == 0, bound)...)
	}
	return rep, nil
}

// servedAnswer is the decoded POST /query outcome, normalized for diffing.
type servedAnswer struct {
	rows    map[string]float64
	boolP   *float64
	errCode string
}

func servedKey(vals []string) string { return strings.Join(vals, "/") }

func servedKeyOfRow(row pdb.Row) string {
	vals := make([]string, len(row.Vals))
	for i, v := range row.Vals {
		vals[i] = v.String()
	}
	return servedKey(vals)
}

// postServed posts one query request and decodes either response shape.
func postServed(ctx context.Context, url string, qr server.QueryRequest) (*servedAnswer, int, error) {
	body, err := json.Marshal(qr)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			return nil, resp.StatusCode, fmt.Errorf("undecodable %d error body %q: %w", resp.StatusCode, data, err)
		}
		return &servedAnswer{errCode: er.Code}, resp.StatusCode, nil
	}
	var ok server.QueryResponse
	if err := json.Unmarshal(data, &ok); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("undecodable response body %q: %w", data, err)
	}
	ans := &servedAnswer{rows: make(map[string]float64, len(ok.Rows)), boolP: ok.BoolP}
	for _, row := range ok.Rows {
		ans.rows[servedKey(row.Vals)] = row.P
	}
	return ans, resp.StatusCode, nil
}

// compareServed diffs a served answer set against the direct result over the
// union of both (an answer present on one side only counts as probability 0
// on the other and is reported with a structural detail).
func compareServed(s core.Strategy, served *servedAnswer, direct *pdb.Result, boolean bool, bound func(key string) float64) []ServeDivergence {
	var out []ServeDivergence
	if boolean {
		d := direct.BoolProb()
		switch {
		case served.boolP == nil:
			out = append(out, ServeDivergence{Strategy: s, Key: "<bool>", Detail: "served response has no bool_p"})
		case math.Abs(*served.boolP-d) > bound("<bool>") || math.IsNaN(*served.boolP):
			out = append(out, ServeDivergence{Strategy: s, Key: "<bool>", Served: *served.boolP, Direct: d, Bound: bound("<bool>")})
		}
		return out
	}
	directRows := make(map[string]float64, len(direct.Rows))
	for _, row := range direct.Rows {
		directRows[servedKeyOfRow(row)] = row.P
	}
	keys := make(map[string]bool, len(directRows)+len(served.rows))
	for k := range directRows {
		keys[k] = true
	}
	for k := range served.rows {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		sv, inServed := served.rows[k]
		dv, inDirect := directRows[k]
		switch {
		case !inServed:
			out = append(out, ServeDivergence{Strategy: s, Key: k, Direct: dv, Detail: "answer missing from the served response"})
		case !inDirect:
			out = append(out, ServeDivergence{Strategy: s, Key: k, Served: sv, Detail: "answer absent from the direct result"})
		case math.Abs(sv-dv) > bound(k) || math.IsNaN(sv):
			out = append(out, ServeDivergence{Strategy: s, Key: k, Served: sv, Direct: dv, Bound: bound(k)})
		}
	}
	return out
}
