package crosscheck

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/tuple"
)

// serveFor stands up the HTTP query service over the instance's database.
func serveFor(t *testing.T, in *Instance) *httptest.Server {
	t.Helper()
	db, err := toPDB(in)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, MaxInFlight: 4, Metrics: &obs.Registry{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestServedMatchesDirect is the served-vs-direct oracle: over a sweep of
// seeded random instances, every strategy's HTTP answer must match the same
// evaluation run in process through pdb.EvaluateContext — within 1e-9 for
// the exact paths, within the doubled Hoeffding band for Karp–Luby (in
// practice both are bit-identical: the seed is shared and JSON round-trips
// float64 exactly).
func TestServedMatchesDirect(t *testing.T) {
	ctx := context.Background()
	skips := 0
	for seed := int64(1); seed <= 60; seed++ {
		in := Generate(seed, GenConfig{})
		ts := serveFor(t, in)
		rep, err := CheckServed(ctx, in, ts.URL, Options{Samples: 4000, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v\ninstance:\n%s", seed, err, in)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: served diverged: %v\ninstance:\n%s", seed, rep.Divergences[0], in)
		}
		if _, ok := rep.Skipped[core.SafePlanOnly]; ok {
			skips++
		}
		ts.Close()
	}
	t.Logf("60 instances served and matched, %d safe-plan skips", skips)
}

// TestServedDivergenceCaught validates the serve oracle itself: a server
// holding a perturbed copy of the database must be reported as diverging.
func TestServedDivergenceCaught(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "c0")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(2), 0.9)
	s := relation.New("S", "c0", "c1")
	s.MustAdd(tuple.Ints(1, 1), 0.8)
	s.MustAdd(tuple.Ints(2, 1), 0.4)
	db.AddRelation(r)
	db.AddRelation(s)
	in := &Instance{DB: db, Q: query.MustParse("q :- R(a), S(a, b)")}

	skewed := in.Clone()
	sr, err := skewed.DB.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	sr.Rows[0].P = 0.25 // the served copy disagrees with the checked instance

	ts := serveFor(t, skewed)
	rep, err := CheckServed(context.Background(), in, ts.URL, Options{Strategies: ExactStrategies()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("perturbed served database not reported as divergence")
	}
	for _, d := range rep.Divergences {
		if d.Strategy == core.SafePlanOnly {
			continue
		}
		if d.Served == d.Direct {
			t.Errorf("divergence with equal values: %v", d)
		}
	}
}
