package crosscheck

import (
	"context"

	"repro/internal/relation"
)

// Shrink greedily minimizes a failing instance: it repeatedly tries to drop
// a query atom (with its now-unreferenced relation and any head variables it
// alone bound) or a single database tuple, keeping each candidate only if
// failing still reports it as failing, until no single removal preserves the
// failure. The result is 1-minimal — every remaining atom and tuple is
// necessary — which is what a human wants to stare at in a bug report.
//
// failing must be deterministic for the minimization to make sense; Check
// with a fixed Options.Seed is.
func Shrink(in *Instance, failing func(*Instance) bool) *Instance {
	cur := in
	for changed := true; changed; {
		changed = false
		// Atoms first: dropping one removes a whole relation's worth of
		// tuples at once.
		for i := 0; i < len(cur.Q.Atoms); i++ {
			cand := dropAtom(cur, i)
			if cand != nil && failing(cand) {
				cur = cand
				changed = true
				i--
			}
		}
		for _, name := range cur.DB.Names() {
			r, err := cur.DB.Relation(name)
			if err != nil {
				continue
			}
			for i := 0; i < r.Len(); i++ {
				cand := dropTuple(cur, name, i)
				if failing(cand) {
					cur = cand
					r, _ = cur.DB.Relation(name)
					changed = true
					i--
				}
			}
		}
	}
	return cur
}

// Minimize shrinks in under the failure predicate "Check(opts) reports a
// divergence". If the instance does not fail to begin with it is returned
// unchanged. Candidates whose evaluation errors (rather than diverges) are
// rejected, so shrinking never trades a divergence for a crash.
func Minimize(ctx context.Context, in *Instance, opts Options) *Instance {
	failing := func(c *Instance) bool {
		rep, err := Check(ctx, c, opts)
		return err == nil && rep.Failed()
	}
	if !failing(in) {
		return in
	}
	return Shrink(in, failing)
}

// dropAtom removes atom i from the query, prunes head variables that no
// longer occur in the body, and drops relations the query no longer
// references. It returns nil when the query would become empty.
func dropAtom(in *Instance, i int) *Instance {
	if len(in.Q.Atoms) <= 1 {
		return nil
	}
	out := in.Clone()
	out.Seed = 0
	out.Q.Atoms = append(out.Q.Atoms[:i], out.Q.Atoms[i+1:]...)
	remaining := make(map[string]bool)
	for j := range out.Q.Atoms {
		for _, v := range out.Q.Atoms[j].Vars() {
			remaining[v] = true
		}
	}
	head := out.Q.Head[:0]
	for _, h := range out.Q.Head {
		if remaining[h] {
			head = append(head, h)
		}
	}
	out.Q.Head = head
	used := make(map[string]bool, len(out.Q.Atoms))
	for j := range out.Q.Atoms {
		used[out.Q.Atoms[j].Pred] = true
	}
	db := relation.NewDatabase()
	for _, name := range out.DB.Names() {
		if !used[name] {
			continue
		}
		r, err := out.DB.Relation(name)
		if err != nil {
			continue
		}
		db.AddRelation(r)
	}
	out.DB = db
	if err := out.Q.Validate(); err != nil {
		return nil
	}
	return out
}

// dropTuple removes row i of the named relation.
func dropTuple(in *Instance, name string, i int) *Instance {
	out := in.Clone()
	out.Seed = 0
	r, err := out.DB.Relation(name)
	if err != nil || i >= r.Len() {
		return in
	}
	r.Rows = append(r.Rows[:i], r.Rows[i+1:]...)
	return out
}

// TupleCount is the total number of database rows — the shrinker's size
// metric, reported by pdbfuzz.
func (in *Instance) TupleCount() int { return in.DB.TotalRows() }

// AtomCount is the number of query atoms.
func (in *Instance) AtomCount() int { return len(in.Q.Atoms) }
