package crosscheck

import (
	"errors"
	"testing"

	"repro/internal/pl"
	"repro/pdb"
)

// spillSeeds is the oracle sweep width for the spill dimension: every seed
// that the main crosscheck sweep trusts must also be bit-identical between
// unbounded and floor-budget execution.
const spillSeeds = 60

// TestSpillMatchesUnlimited is the crosscheck spill dimension: for 60 seeded
// oracle instances and every exact strategy, an evaluation under the floor
// memory budget (1 byte — everything that can spill, spills) must reproduce
// the unbounded evaluation bit for bit: same outcome, same answer set, same
// probability down to the last float bit. The sweep also asserts that the
// constrained runs actually spilled at least one partition in aggregate —
// a spill test whose spill path never fires proves nothing.
func TestSpillMatchesUnlimited(t *testing.T) {
	var spilled int64
	for seed := int64(1); seed <= spillSeeds; seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, s := range ExactStrategies() {
			base := pdb.Options{Strategy: s, NoFallback: true}
			ref, errRef := db.Evaluate(q, base)

			floor := base
			floor.Budget.Mem = 1
			got, errGot := db.Evaluate(q, floor)
			if (errRef == nil) != (errGot == nil) {
				t.Fatalf("seed %d strategy %v: outcome changed under floor budget: %v vs %v",
					seed, s, errRef, errGot)
			}
			if errRef != nil {
				continue // e.g. safe declining a non-data-safe instance
			}
			if len(ref.Rows) != len(got.Rows) {
				t.Fatalf("seed %d strategy %v: answer count %d vs %d under floor budget",
					seed, s, len(ref.Rows), len(got.Rows))
			}
			for _, row := range ref.Rows {
				if p := got.Prob(row.Vals...); p != row.P {
					t.Fatalf("seed %d strategy %v: answer %v: %v vs %v under floor budget (must be bit-identical)",
						seed, s, row.Vals, row.P, p)
				}
			}
			spilled += got.Stats.SpilledPartitions
			if ref.Stats.SpilledPartitions != 0 {
				t.Fatalf("seed %d strategy %v: unbounded run reported %d spilled partitions",
					seed, s, ref.Stats.SpilledPartitions)
			}
		}
	}
	if spilled == 0 {
		t.Fatalf("floor-budget sweep over %d seeds spilled no partitions: the spill path was never exercised", spillSeeds)
	}
}

// TestSpillFaultInjection proves the failure semantics: when a spill write
// fails mid-evaluation, the error surfaces as a typed pl.ErrSpill — never a
// silently wrong result — and once the fault clears, the same database
// evaluates cleanly and matches the unbounded answers again.
func TestSpillFaultInjection(t *testing.T) {
	defer pl.FailSpillAfter(0)

	// Find a seeded instance whose floor-budget evaluation actually spills;
	// without a spill write there is nothing to inject into.
	for seed := int64(1); seed <= spillSeeds; seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := pdb.Options{Strategy: pdb.PartialLineage, NoFallback: true}
		ref, err := db.Evaluate(q, base)
		if err != nil {
			continue
		}
		floor := base
		floor.Budget.Mem = 1
		probe, err := db.Evaluate(q, floor)
		if err != nil {
			t.Fatalf("seed %d: floor-budget evaluation failed: %v", seed, err)
		}
		if probe.Stats.SpilledPartitions == 0 {
			continue
		}

		pl.FailSpillAfter(1) // fail the very first spill write
		_, err = db.Evaluate(q, floor)
		pl.FailSpillAfter(0)
		if err == nil {
			t.Fatalf("seed %d: injected spill fault produced no error", seed)
		}
		if !errors.Is(err, pl.ErrSpill) {
			t.Fatalf("seed %d: injected spill fault surfaced as %v, want pl.ErrSpill", seed, err)
		}

		// With the fault cleared the same evaluation recovers completely.
		got, err := db.Evaluate(q, floor)
		if err != nil {
			t.Fatalf("seed %d: evaluation after clearing fault: %v", seed, err)
		}
		for _, row := range ref.Rows {
			if p := got.Prob(row.Vals...); p != row.P {
				t.Fatalf("seed %d: answer %v after fault recovery: %v vs %v", seed, row.Vals, row.P, p)
			}
		}
		return
	}
	t.Fatal("no seeded instance spilled under the floor budget; fault injection never exercised")
}
