package crosscheck

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/pdb"
)

// TestTracingIsObservationOnly runs every strategy over generated instances
// with tracing on and off and asserts (1) tracing never changes an answer
// probability — not even in the last bit, since the trace sink is outside
// the numeric path — and (2) a traced evaluation records a non-empty,
// tree-consistent operator trace for all five strategies.
func TestTracingIsObservationOnly(t *testing.T) {
	traced := make(map[core.Strategy]bool)
	for seed := int64(1); seed <= 40; seed++ {
		in := Generate(seed, GenConfig{})
		db, err := toPDB(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, err := pdb.ParseQuery(in.Q.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, s := range core.Strategies() {
			opts := pdb.Options{Strategy: s, Seed: 1, Samples: 200}
			plain, errPlain := db.Evaluate(q, opts)
			opts.Trace = true
			withTrace, errTrace := db.Evaluate(q, opts)
			if (errPlain == nil) != (errTrace == nil) {
				t.Fatalf("seed %d strategy %v: tracing changed the outcome: %v vs %v",
					seed, s, errPlain, errTrace)
			}
			if errPlain != nil {
				continue // e.g. safe declining a non-data-safe instance
			}
			if len(plain.Rows) != len(withTrace.Rows) {
				t.Fatalf("seed %d strategy %v: tracing changed the answer count: %d vs %d",
					seed, s, len(plain.Rows), len(withTrace.Rows))
			}
			for _, row := range plain.Rows {
				if p := withTrace.Prob(row.Vals...); p != row.P && !(math.IsNaN(p) && math.IsNaN(row.P)) {
					t.Fatalf("seed %d strategy %v: tracing changed answer %v: %v vs %v",
						seed, s, row.Vals, row.P, p)
				}
			}
			if len(plain.Stats.Operators) != 0 {
				t.Fatalf("seed %d strategy %v: untraced evaluation recorded %d operators",
					seed, s, len(plain.Stats.Operators))
			}
			if len(withTrace.Stats.Operators) == 0 {
				t.Fatalf("seed %d strategy %v: traced evaluation recorded no operators", seed, s)
			}
			tr := withTrace.Trace()
			if len(tr.Roots) == 0 {
				t.Fatalf("seed %d strategy %v: trace reconstructed no roots", seed, s)
			}
			for _, root := range tr.Roots {
				if root == nil {
					t.Fatalf("seed %d strategy %v: nil trace root", seed, s)
				}
			}
			if tr.Strategy != s.String() {
				t.Fatalf("seed %d strategy %v: trace header says %q", seed, s, tr.Strategy)
			}
			traced[s] = true
		}
	}
	for _, s := range core.Strategies() {
		if !traced[s] {
			t.Errorf("no generated instance exercised tracing under strategy %v", s)
		}
	}
}
