// Package docscheck keeps the repository's documentation honest: it is a
// test-only package whose checks run in CI (the docs job) alongside go vet.
//
// Two invariants are enforced:
//
//   - every relative markdown link in the top-level docs (README.md,
//     DESIGN.md, EXPERIMENTS.md, ROADMAP.md, docs/*.md) resolves to a file
//     that exists in the repository;
//   - every metric family exported by internal/obs.MetricNames is
//     documented by name in docs/OBSERVABILITY.md, so the metric inventory
//     there can be trusted as complete.
package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

// repoRoot locates the repository root relative to this test file.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// docFiles lists the markdown files under the link checker.
func docFiles(t *testing.T, root string) []string {
	t.Helper()
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"}
	matches, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		rel, err := filepath.Rel(root, m)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, rel)
	}
	return files
}

// mdLink matches [text](target) and [text](target "title"), capturing the
// target. Inline images (![alt](target)) match too, which is intended.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func TestMarkdownLinksResolve(t *testing.T) {
	root := repoRoot(t)
	checked := 0
	for _, rel := range docFiles(t, root) {
		path := filepath.Join(root, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			// Skip fenced code blocks: shell snippets legitimately contain
			// (URL) shapes that are not document links.
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				switch {
				case strings.HasPrefix(target, "http://"),
					strings.HasPrefix(target, "https://"),
					strings.HasPrefix(target, "mailto:"):
					continue // external; never fetched from CI
				case strings.HasPrefix(target, "#"):
					continue // intra-document anchor
				}
				target, _, _ = strings.Cut(target, "#")
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q (resolved %s)", rel, m[1], resolved)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("link checker matched no links — regexp or file set broken?")
	}
}

func TestEveryMetricDocumented(t *testing.T) {
	root := repoRoot(t)
	data, err := os.ReadFile(filepath.Join(root, "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("docs/OBSERVABILITY.md must exist — it is the metric reference: %v", err)
	}
	doc := string(data)
	names := obs.MetricNames()
	if len(names) == 0 {
		t.Fatal("obs.MetricNames returned nothing")
	}
	for _, name := range names {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %s exported by internal/obs is not documented in docs/OBSERVABILITY.md", name)
		}
	}
}

// TestMemBudgetFlagInventory keeps docs/SPILL.md's flag table honest from
// the other direction: every CLI it names as carrying the bounded-memory
// knob must actually define -mem-budget (TestDocumentedFlagsExist already
// checks that documented flags exist; this check pins that the flag is
// present on all three entry points even if the doc table is edited).
func TestMemBudgetFlagInventory(t *testing.T) {
	root := repoRoot(t)
	flags := binaryFlags(t, root)
	for _, cmd := range []string{"pdbrun", "pdbbench", "pdbserve"} {
		if !flags[cmd]["mem-budget"] {
			t.Errorf("cmd/%s does not define -mem-budget, but docs/SPILL.md documents it", cmd)
		}
	}
	data, err := os.ReadFile(filepath.Join(root, "docs", "SPILL.md"))
	if err != nil {
		t.Fatalf("docs/SPILL.md must exist — it is the bounded-memory reference: %v", err)
	}
	if !strings.Contains(string(data), "`-mem-budget`") {
		t.Error("docs/SPILL.md does not document the -mem-budget flag")
	}
}
