package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The documentation demonstrates the CLI tools constantly; a renamed or
// removed flag silently strands every example that mentions it. This check
// keeps the docs honest: any `-flag` token appearing on a command line that
// invokes one of this repository's binaries (pdbrun, pdbserve, ...) must be
// a flag that binary actually defines, and every inline-code flag in
// docs/SERVER.md must exist on pdbserve (its flag table names no binary).

// flagDef matches the standard flag-package definition forms.
var flagDef = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Float64|Duration)\("([^"]+)"`)

// binaryFlags scans every .go file of each cmd/* binary for flag
// definitions. All binaries also get -metrics-addr-style flags only if they
// define them — nothing is assumed.
func binaryFlags(t *testing.T, root string) map[string]map[string]bool {
	t.Helper()
	out := make(map[string]map[string]bool)
	dirs, err := filepath.Glob(filepath.Join(root, "cmd", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		name := filepath.Base(dir)
		flags := make(map[string]bool)
		srcs, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range srcs {
			data, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range flagDef.FindAllStringSubmatch(string(data), -1) {
				flags[m[1]] = true
			}
		}
		out[name] = flags
	}
	if len(out) == 0 {
		t.Fatal("no cmd/* binaries found")
	}
	return out
}

var (
	// binaryInvocation finds "pdbrun" or "go run ./cmd/pdbrun" on a line.
	binaryInvocation = regexp.MustCompile(`\b(pdbrun|pdbserve|pdbbench|pdbshell|pdbfuzz|pdbgen)\b`)
	// flagToken is a candidate CLI flag.
	flagToken = regexp.MustCompile(`^-([a-z][a-z0-9-]*)$`)
	// quoted strips single-quoted argument payloads (query text contains
	// ":-" and spaces that would confuse tokenization).
	quoted = regexp.MustCompile(`'[^']*'`)
	// inlineFlag is a `-flag` mention in inline code (for the SERVER.md
	// flag table, which names no binary).
	inlineFlag = regexp.MustCompile("`-([a-z][a-z0-9-]*)`")
)

func TestDocumentedFlagsExist(t *testing.T) {
	root := repoRoot(t)
	flags := binaryFlags(t, root)
	checked := 0
	for _, rel := range docFiles(t, root) {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			t.Fatal(err)
		}
		// Join shell continuation lines so a wrapped command stays one
		// logical invocation.
		text := strings.ReplaceAll(string(data), "\\\n", " ")
		for n, line := range strings.Split(text, "\n") {
			bins := binaryInvocation.FindAllStringSubmatch(line, -1)
			if len(bins) == 0 {
				continue
			}
			// A line mentioning exactly one binary attributes every flag
			// token on it to that binary; multi-binary lines are prose,
			// skipped (each binary's own example lines cover them).
			if len(bins) > 1 {
				continue
			}
			bin := bins[0][1]
			for _, tok := range strings.Fields(quoted.ReplaceAllString(line, "''")) {
				tok = strings.Trim(tok, "`\"().,;:")
				m := flagToken.FindStringSubmatch(tok)
				if m == nil {
					continue
				}
				checked++
				if !flags[bin][m[1]] {
					t.Errorf("%s:%d: flag -%s is not defined by cmd/%s (line: %s)",
						rel, n+1, m[1], bin, strings.TrimSpace(line))
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no documented flag invocations found — doc set or matcher broken")
	}

	// SERVER.md's flag table documents pdbserve without naming it per row.
	data, err := os.ReadFile(filepath.Join(root, "docs", "SERVER.md"))
	if err != nil {
		t.Fatal(err)
	}
	inFence := false
	for n, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue // fenced commands are covered by the invocation check
		}
		for _, m := range inlineFlag.FindAllStringSubmatch(line, -1) {
			if !flags["pdbserve"][m[1]] {
				t.Errorf("docs/SERVER.md:%d: flag -%s is not defined by cmd/pdbserve", n+1, m[1])
			}
		}
	}
}
