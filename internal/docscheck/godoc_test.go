package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// The inference, top-k, lineage and AND-OR-network packages are the ones the
// strategy and architecture guides send readers into; every exported symbol
// there must carry a doc comment so `go doc` answers the questions
// STRATEGIES.md raises. Struct fields are exempt — the struct's own comment
// documents the group.

var godocPackages = []string{"internal/inference", "internal/topk", "internal/lineage", "internal/aonet"}

func TestExportedSymbolsDocumented(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range godocPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, filepath.FromSlash(pkg)), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		seen := 0
		for _, p := range pkgs {
			if strings.HasSuffix(p.Name, "_test") {
				continue
			}
			for name, file := range p.Files {
				if strings.HasSuffix(name, "_test.go") {
					continue
				}
				for _, decl := range file.Decls {
					seen += checkDecl(t, fset, pkg, decl)
				}
			}
		}
		if seen == 0 {
			t.Fatalf("%s: no exported symbols found — wrong directory?", pkg)
		}
	}
}

// checkDecl reports undocumented exported symbols in one top-level
// declaration and returns how many exported symbols it examined.
func checkDecl(t *testing.T, fset *token.FileSet, pkg string, decl ast.Decl) int {
	seen := 0
	missing := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		t.Errorf("%s: exported %s %s has no doc comment (%s:%d)",
			pkg, kind, name, filepath.Base(p.Filename), p.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return 0
		}
		// Methods on unexported types are not reachable via go doc.
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return 0
		}
		seen++
		if d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			missing(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				seen++
				if d.Doc == nil && s.Doc == nil {
					missing(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, id := range s.Names {
					if !id.IsExported() {
						continue
					}
					seen++
					// A const/var block comment or a grouped decl's doc
					// covers all its members.
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						missing(id.Pos(), "const/var", id.Name)
					}
				}
			}
		}
	}
	return seen
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
