package docscheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/pdb"
)

// The tutorial's serving walkthrough (docs/TUTORIAL.md section 10) promises
// its curl transcripts are replayed verbatim by CI. This test is that
// promise: it extracts the CSV dataset and every request/response pair from
// the document, serves the dataset through internal/server, replays the
// requests in order, and checks the actual responses against the documented
// ones. Documented responses are subset-matched (the doc elides volatile
// fields like elapsed_ns); numbers compare within 1e-9.

// fencedBlock is one ``` block with its info string.
type fencedBlock struct {
	info string
	body string
}

func fencedBlocks(doc string) []fencedBlock {
	var out []fencedBlock
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		trimmed := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(trimmed, "```") || trimmed == "```" {
			continue
		}
		info := strings.TrimPrefix(trimmed, "```")
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		out = append(out, fencedBlock{info: info, body: strings.Join(body, "\n")})
	}
	return out
}

// curlRe pulls the route and the JSON payload out of a transcript command.
var curlRe = regexp.MustCompile(`(?s)curl -s localhost:8080(/\S+) -d '(.*)'`)

func TestTutorialTranscripts(t *testing.T) {
	root := repoRoot(t)
	data, err := os.ReadFile(filepath.Join(root, "docs", "TUTORIAL.md"))
	if err != nil {
		t.Fatal(err)
	}
	blocks := fencedBlocks(string(data))

	// 1. Materialize the documented dataset (```csv <File>.csv blocks).
	dir := t.TempDir()
	csvs := 0
	for _, b := range blocks {
		fields := strings.Fields(b.info)
		if len(fields) == 2 && fields[0] == "csv" {
			name := filepath.Base(fields[1])
			if err := os.WriteFile(filepath.Join(dir, name), []byte(b.body+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			csvs++
		}
	}
	if csvs == 0 {
		t.Fatal("tutorial contains no ```csv dataset blocks — walkthrough or parser broken")
	}
	db, err := pdb.LoadDatabase(dir)
	if err != nil {
		t.Fatalf("loading the tutorial dataset: %v", err)
	}

	// 2. Serve it exactly as pdbserve would.
	srv, err := server.New(server.Config{DB: db, Metrics: &obs.Registry{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 3. Replay every curl transcript in document order against the server
	// and hold the actual response to the documented one.
	replayed := 0
	for i, b := range blocks {
		if !strings.HasPrefix(b.info, "bash") {
			continue
		}
		m := curlRe.FindStringSubmatch(b.body)
		if m == nil {
			continue // e.g. the pdbserve launch command
		}
		route, payload := m[1], m[2]
		var reqBody any
		if err := json.Unmarshal([]byte(payload), &reqBody); err != nil {
			t.Fatalf("transcript %d: documented request payload is not valid JSON: %v\n%s", replayed, err, payload)
		}
		if i+1 >= len(blocks) || blocks[i+1].info != "json" {
			t.Fatalf("transcript %d (%s): curl block not followed by a ```json response block", replayed, route)
		}
		var want any
		if err := json.Unmarshal([]byte(blocks[i+1].body), &want); err != nil {
			t.Fatalf("transcript %d: documented response is not valid JSON: %v", replayed, err)
		}
		resp, err := http.Post(ts.URL+route, "application/json", bytes.NewReader([]byte(payload)))
		if err != nil {
			t.Fatal(err)
		}
		var got any
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("transcript %d (%s): decoding response: %v", replayed, route, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("transcript %d (%s): status %d: %v", replayed, route, resp.StatusCode, got)
		}
		if err := subsetMatch(want, got); err != nil {
			actual, _ := json.MarshalIndent(got, "", "  ")
			t.Errorf("transcript %d (%s): documented response does not match served response: %v\nserved:\n%s",
				replayed, route, err, actual)
		}
		replayed++
	}
	if replayed < 4 {
		t.Fatalf("only %d transcripts replayed — the walkthrough should have at least 4", replayed)
	}
}

// subsetMatch requires everything stated in want to hold in got: every map
// key present with a matching value, arrays of equal length matching
// element-wise, numbers within 1e-9. Keys present only in got are fine —
// the doc elides volatile fields.
func subsetMatch(want, got any) error {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("want object, got %T", got)
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Errorf("documented key %q missing from response", k)
			}
			if err := subsetMatch(wv, gv); err != nil {
				return fmt.Errorf("%q: %w", k, err)
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("want array, got %T", got)
		}
		if len(w) != len(g) {
			return fmt.Errorf("documented array has %d elements, response has %d", len(w), len(g))
		}
		for i := range w {
			if err := subsetMatch(w[i], g[i]); err != nil {
				return fmt.Errorf("[%d]: %w", i, err)
			}
		}
	case float64:
		g, ok := got.(float64)
		if !ok || math.Abs(w-g) > 1e-9 {
			return fmt.Errorf("documented %v, response %v", want, got)
		}
	default:
		if want != got {
			return fmt.Errorf("documented %v, response %v", want, got)
		}
	}
	return nil
}
