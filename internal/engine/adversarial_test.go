// Adversarial differential tests: hand-built and generated instances in the
// regimes where the five strategies are most likely to drift apart, each
// checked against the crosscheck possible-world oracle.
package engine_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crosscheck"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// h0DB builds the classic unsafe query q :- R(a), S(a,b), T(b) over a 2×2
// instance with k uncertain R rows. The R rows are exactly the offending
// tuples of the left-deep plan, so k is the instance's distance from
// data-safety: k = 0 is extensionally exact, k = 1 is one conditioning step
// past the phase transition.
func h0DB(t *testing.T, k int) *crosscheck.Instance {
	t.Helper()
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "b")
	for x := int64(1); x <= 2; x++ {
		p := 1.0
		if int(x) <= k {
			p = 0.5
		}
		r.MustAdd(tuple.Ints(x), p)
		tt.MustAdd(tuple.Ints(x), 0.5)
		for y := int64(1); y <= 2; y++ {
			s.MustAdd(tuple.Ints(x, y), 0.5)
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	return &crosscheck.Instance{DB: db, Q: query.MustParse("q :- R(a), S(a, b), T(b)")}
}

// TestOffendingTupleBoundary walks the data-safety phase transition: with no
// uncertain R rows the extensional plan is exact and SafePlanOnly must
// succeed; the first uncertain R row makes it decline with ErrNotDataSafe
// while the conditioning strategies stay correct, conditioning exactly the
// k offending tuples.
func TestOffendingTupleBoundary(t *testing.T) {
	for k := 0; k <= 2; k++ {
		in := h0DB(t, k)
		rep, err := crosscheck.Check(context.Background(), in, crosscheck.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if rep.Failed() {
			t.Errorf("k=%d diverged:\n%v", k, rep.Divergences)
		}
		skip, skipped := rep.Skipped[core.SafePlanOnly]
		if k == 0 && skipped {
			t.Errorf("k=0: data-safe instance skipped by SafePlanOnly: %v", skip)
		}
		if k > 0 {
			if !skipped {
				t.Errorf("k=%d: SafePlanOnly accepted a non-data-safe instance", k)
			} else if !errors.Is(skip, engine.ErrNotDataSafe) {
				t.Errorf("k=%d: skip reason = %v, want ErrNotDataSafe", k, skip)
			}
		}
		res, err := engine.EvaluateQuery(in.DB, in.Q, engine.Options{Strategy: core.PartialLineage})
		if err != nil {
			t.Fatalf("k=%d partial: %v", k, err)
		}
		if res.Stats.OffendingTuples != k {
			t.Errorf("k=%d: conditioned %d offending tuples", k, res.Stats.OffendingTuples)
		}
	}
}

// TestZeroOneProbabilityTuples pins the degenerate edges of [0,1]: rows with
// probability 0 must be unable to contribute an answer, rows with
// probability 1 must make answers certain, and on a fully deterministic
// database even the Monte-Carlo sampler has a zero-width confidence band, so
// all five strategies must agree exactly.
func TestZeroOneProbabilityTuples(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.MustAdd(tuple.Ints(1), 0)
	r.MustAdd(tuple.Ints(2), 1)
	s := relation.New("S", "a")
	s.MustAdd(tuple.Ints(1), 1)
	s.MustAdd(tuple.Ints(2), 1)
	db.AddRelation(r)
	db.AddRelation(s)
	in := &crosscheck.Instance{DB: db, Q: query.MustParse("q(a) :- R(a), S(a)")}
	rep, err := crosscheck.Check(context.Background(), in, crosscheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("0/1-probability instance diverged:\n%v", rep.Divergences)
	}
	if got := len(rep.Oracle.Probs); got != 1 {
		t.Fatalf("oracle found %d answers, want 1 (the p=0 row must not answer)", got)
	}
	for key, p := range rep.Oracle.Probs {
		if p != 1 {
			t.Errorf("answer %s has probability %v, want exactly 1", key, p)
		}
	}

	// Generated sweep: MaxUncertain 1 forces almost every row to exactly 0
	// or 1, so the engine's pruning of impossible rows and shortcutting of
	// certain ones is exercised across many shapes.
	for seed := int64(1); seed <= 40; seed++ {
		in := crosscheck.Generate(seed, crosscheck.GenConfig{MaxUncertain: 1})
		rep, err := crosscheck.Check(context.Background(), in, crosscheck.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d diverged:\n%v\n%s", seed, rep.Divergences, in)
		}
	}
}

// TestDuplicateTuplesAgreement covers repeated tuple values: duplicate rows
// inside one relation are distinct independent events that every path must
// combine identically, and a one-constant domain makes every join match and
// every projection group collide.
func TestDuplicateTuplesAgreement(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.3)
	r.MustAdd(tuple.Ints(1), 0.6) // same tuple, independent second event
	s := relation.New("S", "a")
	s.MustAdd(tuple.Ints(1), 0.5)
	db.AddRelation(r)
	db.AddRelation(s)
	in := &crosscheck.Instance{DB: db, Q: query.MustParse("q :- R(a), S(a)")}
	rep, err := crosscheck.Check(context.Background(), in, crosscheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("duplicate-row instance diverged:\n%v", rep.Divergences)
	}
	// P(q) = P(S(1)) · P(R(1) present at least once) = 0.5 · (1 − 0.7·0.4).
	want := 0.5 * (1 - 0.7*0.4)
	if got := rep.Oracle.Probs[tuple.Tuple(nil).Key()]; math.Abs(got-want) > 1e-12 {
		t.Errorf("oracle = %v, want %v", got, want)
	}

	for seed := int64(1); seed <= 40; seed++ {
		in := crosscheck.Generate(seed, crosscheck.GenConfig{Domain: 1, MaxTuples: 5})
		rep, err := crosscheck.Check(context.Background(), in, crosscheck.Options{
			Strategies: crosscheck.ExactStrategies(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d diverged:\n%v\n%s", seed, rep.Divergences, in)
		}
	}
}

// Regression (found by the crosscheck harness): a head whose variable order
// differs from the plan's output order — q(a, b) :- R0(b, a) — used to be
// answered in plan-output order by the network strategies, so the same
// answer carried different tuples under different strategies and
// Result.Prob(headVals) silently returned 0.
func TestHeadOrderMatchesQueryHead(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R0", "c0", "c1")
	r.MustAdd(tuple.Ints(0, 1), 0.7)
	db.AddRelation(r)
	q := query.MustParse("q(a, b) :- R0(b, a)")
	for _, s := range core.Strategies() {
		res, err := engine.EvaluateQuery(db, q, engine.Options{Strategy: s, Seed: 1, Samples: 20000})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Attrs) != 2 || res.Attrs[0] != "a" || res.Attrs[1] != "b" {
			t.Errorf("%v: attrs = %v, want [a b]", s, res.Attrs)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%v: %d rows, want 1", s, len(res.Rows))
		}
		// R0(b, a) binds b=0, a=1, so the head tuple is (1, 0).
		p := res.Prob(tuple.Ints(1, 0))
		tol := 1e-12
		if s == core.MonteCarlo {
			tol = 0.05
		}
		if math.Abs(p-0.7) > tol {
			t.Errorf("%v: Prob(1,0) = %v, want 0.7 (row %v)", s, p, res.Rows[0].Vals)
		}
	}
}

// Regression: probabilities outside [0,1] written directly into Rows
// (bypassing Relation.Add) used to crash deep inside the solvers; the
// evaluation boundary must reject them with the relation, tuple and value.
func TestBadProbabilityIsDescriptiveError(t *testing.T) {
	for _, bad := range []float64{1.5, -0.1, math.NaN()} {
		db := relation.NewDatabase()
		r := relation.New("R0", "c0")
		r.MustAdd(tuple.Ints(7), 0.5)
		r.Rows[0].P = bad
		db.AddRelation(r)
		q := query.MustParse("q :- R0(a)")
		for _, s := range core.Strategies() {
			_, err := engine.EvaluateQuery(db, q, engine.Options{Strategy: s})
			if err == nil {
				t.Fatalf("strategy %v accepted probability %v", s, bad)
			}
			for _, want := range []string{"R0", "(7)", "probability"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("strategy %v, p=%v: error %q does not mention %q", s, bad, err, want)
				}
			}
		}
	}
}
