package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Tests for the ExecContext plumbing: cancellation mid-plan, mid-VE and
// mid-sampling, budget enforcement, and parallel-vs-serial determinism.

// heavyDatabase builds R(x), S(x,y), T(y) with every tuple uncertain at
// p = 0.5 — for dom around 14 this is the Fig. 6 phase-transition regime
// where exact inference runs essentially forever, which is exactly what a
// cancellation test needs.
func heavyDatabase(dom int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	tt := relation.New("T", "b")
	s := relation.New("S", "a", "b")
	for x := 1; x <= dom; x++ {
		r.MustAdd(tuple.Ints(int64(x)), 0.5)
		tt.MustAdd(tuple.Ints(int64(x)), 0.5)
		for y := 1; y <= dom; y++ {
			s.MustAdd(tuple.Ints(int64(x), int64(y)), 0.5)
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	return db
}

func unsafePlan(t *testing.T) (*query.Query, *query.Plan) {
	t.Helper()
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	return q, plan
}

// TestEvaluateContextCancelledBeforeStart: a context cancelled before the
// call surfaces context.Canceled from every strategy.
func TestEvaluateContextCancelledBeforeStart(t *testing.T) {
	db := heavyDatabase(4)
	q, plan := unsafePlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []core.Strategy{
		core.PartialLineage, core.SafePlanOnly, core.FullNetwork,
		core.DNFLineage, core.MonteCarlo,
	} {
		_, err := EvaluateContext(ctx, db, q, plan, Options{Strategy: strat})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", strat, err)
		}
	}
}

// TestEvaluateContextCancelMidInference: on a phase-transition instance,
// exact inference would run essentially forever; cancelling shortly after
// the start must return context.Canceled within one check interval, not
// after the inference completes.
func TestEvaluateContextCancelMidInference(t *testing.T) {
	db := heavyDatabase(14)
	q, plan := unsafePlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := EvaluateContext(ctx, db, q, plan, Options{
		Strategy: core.PartialLineage,
		Samples:  1 << 30, // the sampling fallback alone would take minutes
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestEvaluateContextCancelMidSampling: the MonteCarlo strategy's Karp–Luby
// loop polls cancellation every core.CheckInterval samples.
func TestEvaluateContextCancelMidSampling(t *testing.T) {
	db := heavyDatabase(6)
	q, plan := unsafePlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := EvaluateContext(ctx, db, q, plan, Options{
		Strategy: core.MonteCarlo,
		Samples:  1 << 30,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestEvaluateContextTimeBudget: Options.Budget.Time bounds the evaluation's
// wall clock, surfacing context.DeadlineExceeded.
func TestEvaluateContextTimeBudget(t *testing.T) {
	db := heavyDatabase(14)
	q, plan := unsafePlan(t)
	start := time.Now()
	_, err := Evaluate(db, q, plan, Options{
		Strategy: core.PartialLineage,
		Samples:  1 << 30,
		Budget:   core.Budget{Time: 50 * time.Millisecond},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("time budget enforced after %v, want prompt return", elapsed)
	}
}

// TestEvaluateContextRowBudget: a join blow-up is stopped by Budget.Rows
// instead of materializing.
func TestEvaluateContextRowBudget(t *testing.T) {
	db := heavyDatabase(10)
	q, plan := unsafePlan(t)
	_, err := Evaluate(db, q, plan, Options{
		Strategy: core.PartialLineage,
		Budget:   core.Budget{Rows: 20},
	})
	if !errors.Is(err, core.ErrRowBudget) {
		t.Fatalf("err = %v, want core.ErrRowBudget", err)
	}
}

// TestEvaluateContextNodeBudget: network growth is stopped by Budget.Nodes.
func TestEvaluateContextNodeBudget(t *testing.T) {
	db := heavyDatabase(10)
	q, plan := unsafePlan(t)
	_, err := Evaluate(db, q, plan, Options{
		Strategy: core.FullNetwork,
		Budget:   core.Budget{Nodes: 10},
	})
	if !errors.Is(err, core.ErrNodeBudget) {
		t.Fatalf("err = %v, want core.ErrNodeBudget", err)
	}
}

// TestEvaluateParallelMatchesSerial: Parallelism changes neither answers nor
// the network — probabilities are bit-identical (exact paths) and the
// deterministic per-answer seeding keeps approximate paths identical too.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	q, plan := unsafePlan(t)
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 5; trial++ {
		db := randomDatabase(rng, 3)
		for _, strat := range []core.Strategy{core.PartialLineage, core.FullNetwork, core.DNFLineage, core.MonteCarlo} {
			serial, err := Evaluate(db, q, plan, Options{Strategy: strat, Samples: 2000})
			if err != nil {
				t.Fatalf("trial %d (%v) serial: %v", trial, strat, err)
			}
			par, err := Evaluate(db, q, plan, Options{Strategy: strat, Samples: 2000, Parallelism: 4})
			if err != nil {
				t.Fatalf("trial %d (%v) parallel: %v", trial, strat, err)
			}
			if len(serial.Rows) != len(par.Rows) {
				t.Fatalf("trial %d (%v): %d rows serial, %d parallel", trial, strat, len(serial.Rows), len(par.Rows))
			}
			for i := range serial.Rows {
				if !serial.Rows[i].Vals.Equal(par.Rows[i].Vals) || serial.Rows[i].P != par.Rows[i].P {
					t.Errorf("trial %d (%v): row %d serial %v=%v, parallel %v=%v",
						trial, strat, i, serial.Rows[i].Vals, serial.Rows[i].P, par.Rows[i].Vals, par.Rows[i].P)
				}
			}
			if serial.Net != nil && par.Net != nil && serial.Net.Len() != par.Net.Len() {
				t.Errorf("trial %d (%v): network %d nodes serial, %d parallel", trial, strat, serial.Net.Len(), par.Net.Len())
			}
		}
	}
}

// TestTraceThroughExecContext: Options.Trace still yields the per-operator
// trace, now recorded through the ExecContext's sink.
func TestTraceThroughExecContext(t *testing.T) {
	db := heavyDatabase(3)
	q, plan := unsafePlan(t)
	res, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Operators) == 0 {
		t.Fatal("no operator trace recorded")
	}
	// The plan has 3 scans, 2 joins and (for a Boolean query) projections:
	// at least 5 operators, in post-order, with non-negative own stats.
	if len(res.Stats.Operators) < 5 {
		t.Errorf("trace has %d operators, want >= 5", len(res.Stats.Operators))
	}
	for _, op := range res.Stats.Operators {
		if op.Time < 0 || op.NetworkGrowth < 0 {
			t.Errorf("operator %q has negative own stats: %+v", op.Op, op)
		}
	}
}
