package engine

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/lineage"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/relation"
)

// evalDissociation implements the Dissociation strategy through the shared
// pipeline driver: build = full grounding (exactly like the other lineage
// strategies), then one bounds job per answer. Each answer is routed by the
// planner cost model with Profile.WantBounds set: small expanded lineage is
// cheaper to solve exactly with the memoized Shannon recursion (the
// interval collapses to a point), while larger lineage gets the one-pass
// dissociation bounds — guaranteed [lo, hi], no Shannon expansion, variable
// elimination or sampling. Attempt outcomes are recorded into
// opts.PlannerSink like the exact strategies' ranked dispatch; the sink
// remains observability-only (see planner.Sink and docs/PLANNER.md).
//
// Result rows carry [Lo, Hi] with P set to the interval midpoint; the
// Stats are flagged BoundsValued so callers treat rows as intervals, not
// point estimates.
func evalDissociation(ec *core.ExecContext, db *relation.Database, q *query.Query, plan *query.Plan, opts Options) (*Result, error) {
	res := &Result{Attrs: append([]string(nil), q.Head...)}
	res.Stats.Strategy = opts.Strategy
	res.Stats.BoundsValued = true
	model := planner.DefaultCostModel()
	var g *Grounding
	build := func() (int, error) {
		span := ec.StartOp(0)
		var err error
		g, err = GroundCtx(ec, db, q, plan)
		if err != nil {
			ec.FinishOp(span, 0, core.OpStat{}, true)
			return 0, err
		}
		res.Stats.LineageClauses = g.ClauseCount()
		res.Stats.LineageVars = g.VarCount()
		ec.FinishOp(span, 0, core.OpStat{
			Op:   "ground " + plan.String(),
			Kind: "ground",
			Rows: len(g.Answers),
		}, false)
		return len(g.Answers), nil
	}
	infer := func(i int) confidence {
		probOf := func(v lineage.Var) float64 { return g.Probs[v] }
		f := g.Answers[i].F
		prof := planner.Profile{
			Expanded:   true,
			Clauses:    len(f.Clauses),
			Vars:       len(f.Vars()),
			WantBounds: true,
		}
		if !model.BoundsFirst(prof) {
			// Small lineage: the exact Shannon pass is cheaper than the
			// bounds gap is worth. A budget overrun falls through to the
			// dissociation evaluator, which cannot fail.
			start := time.Now()
			p, err := lineage.ProbBudgetCtx(ec, f, probOf, opts.exactBudget())
			if err == nil {
				opts.PlannerSink.Record(planner.BackendShannon.String(), true, time.Since(start))
				return confidence{p: p, lo: p, hi: p, backend: "shannon"}
			}
			if !errors.Is(err, lineage.ErrBudget) {
				return confidence{err: err}
			}
			opts.PlannerSink.Record(planner.BackendShannon.String(), false, time.Since(start))
			start = time.Now()
			b, derr := inference.DissociateCtx(ec, f, probOf)
			if derr != nil {
				return confidence{err: derr}
			}
			opts.PlannerSink.Record(planner.BackendDissociation.String(), true, time.Since(start))
			return confidence{
				p: (b.Lo + b.Hi) / 2, lo: b.Lo, hi: b.Hi,
				dissociated: b.Dissociated,
				backend:     "dissociation",
				fallbacks:   []string{planner.BackendShannon.String()},
				predictMiss: true,
				reason:      "exact Shannon-expansion budget exhausted on the DNF lineage; dissociation bounds",
			}
		}
		start := time.Now()
		b, err := inference.DissociateCtx(ec, f, probOf)
		if err != nil {
			return confidence{err: err}
		}
		opts.PlannerSink.Record(planner.BackendDissociation.String(), true, time.Since(start))
		return confidence{
			p: (b.Lo + b.Hi) / 2, lo: b.Lo, hi: b.Hi,
			dissociated: b.Dissociated,
			backend:     "dissociation",
		}
	}
	assemble := func(conf []confidence) error {
		recordInference(ec, res.Stats.InferenceTime, conf, func(i int) string {
			if len(g.Answers[i].Vals) == 0 {
				return "answer q()"
			}
			return "answer " + g.Answers[i].Vals.String()
		})
		for i, ans := range g.Answers {
			c := conf[i]
			if c.lo == c.hi {
				res.Stats.BoundsExact++
			}
			if w := c.hi - c.lo; w > res.Stats.BoundsMaxWidth {
				res.Stats.BoundsMaxWidth = w
			}
			res.Stats.DissociatedVars += c.dissociated
			res.Rows = append(res.Rows, Row{Vals: ans.Vals, P: c.p, Lo: c.lo, Hi: c.hi})
		}
		res.Stats.Answers = len(res.Rows)
		return nil
	}
	if err := runPipeline(ec, res, build, infer, assemble); err != nil {
		return nil, err
	}
	res.Stats.Operators = ec.Ops()
	return res, nil
}
