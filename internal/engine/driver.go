package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// This file is the strategy-independent pipeline driver. All five strategies
// evaluate in the same shape — a build stage that executes the plan (over
// pL-relations or by full grounding) and yields n independent answer jobs,
// an inference stage that computes each job's confidence on the execution
// context's worker pool, and an assemble stage that folds the confidences
// into result rows. runPipeline owns the timing and error discipline of that
// shape; evalNetwork and evalLineage supply only the strategy-specific
// stages instead of each carrying its own worker-pool and bookkeeping loops.

// confidence is the outcome of one answer job: a probability plus the
// inference-cost metadata the statistics and the trace track.
type confidence struct {
	p           float64
	width, vars int
	approx      bool
	err         error
	// backend names the inference path that produced p ("shannon", "ve",
	// "karp-luby", ...); reason explains a sampling fallback (empty when the
	// computation stayed exact); dur is the job's wall time, stamped by
	// runPipeline for the trace's per-answer spans.
	backend string
	reason  string
	dur     time.Duration
	// fallbacks names the ranked backends that failed deterministically
	// before backend succeeded (adaptive dispatch only); predictMiss marks
	// an answer whose first-ranked backend was not the one that produced p.
	fallbacks   []string
	predictMiss bool
	// Bounds fields (dissociation strategy): lo/hi bracket the answer
	// probability, dissociated counts the shared variables split. p carries
	// the interval midpoint so ordering and BoolProb stay meaningful.
	lo, hi      float64
	dissociated int
}

// runPipeline drives one evaluation: build (timed into Stats.PlanTime)
// returns the number of independent inference jobs; infer computes job i
// (timed into Stats.InferenceTime, fanned out on ec's workers); assemble
// folds the job outcomes into res. A build returning 0 jobs skips straight
// to assemble with an empty slice (e.g. SkipInference, or every answer
// extensional).
func runPipeline(ec *core.ExecContext, res *Result,
	build func() (int, error),
	infer func(i int) confidence,
	assemble func(conf []confidence) error) error {
	var n int
	if err := timed(&res.Stats.PlanTime, func() error {
		var err error
		n, err = build()
		return err
	}); err != nil {
		return err
	}
	conf := make([]confidence, n)
	if n > 0 {
		if err := timed(&res.Stats.InferenceTime, func() error {
			return forEach(ec, n, func(i int) {
				start := time.Now()
				conf[i] = infer(i)
				conf[i].dur = time.Since(start)
			})
		}); err != nil {
			return err
		}
	}
	for i := range conf {
		if conf[i].err != nil {
			return conf[i].err
		}
	}
	for i := range conf {
		if conf[i].reason != "" {
			res.Stats.FallbackReason = conf[i].reason
			break
		}
	}
	// Fold the backend-choice bookkeeping here, after the fan-out, so the
	// maps are built single-threaded and in job order.
	for i := range conf {
		c := &conf[i]
		if c.backend != "" {
			if res.Stats.BackendChoices == nil {
				res.Stats.BackendChoices = make(map[string]int)
			}
			res.Stats.BackendChoices[c.backend]++
		}
		for _, f := range c.fallbacks {
			if res.Stats.BackendFallbacks == nil {
				res.Stats.BackendFallbacks = make(map[string]int)
			}
			res.Stats.BackendFallbacks[f]++
		}
		if c.predictMiss {
			res.Stats.BackendPredictionMisses++
		}
	}
	return assemble(conf)
}

// recordInference appends the inference stage's spans to the trace: one
// "infer.answer" span per job in job order (backend and fallback reason in
// Detail), then a closing "infer" aggregate span carrying the stage's wall
// time. Everything is recorded here, after the parallel fan-out has
// completed, never from the workers — so the trace is identical for any
// Parallelism setting. Per-answer times are the jobs' own durations and may
// sum to more than the aggregate's wall time when workers overlap.
func recordInference(ec *core.ExecContext, wall time.Duration, conf []confidence, label func(i int) string) {
	if !ec.Tracing() || len(conf) == 0 {
		return
	}
	for i := range conf {
		detail := conf[i].backend
		if conf[i].reason != "" {
			detail += "; fallback: " + conf[i].reason
		}
		ec.RecordOp(core.OpStat{
			Op:     label(i),
			Kind:   "infer.answer",
			Depth:  1,
			Rows:   1,
			Time:   conf[i].dur,
			Detail: detail,
		})
	}
	ec.RecordOp(core.OpStat{
		Op:   fmt.Sprintf("inference (%d jobs)", len(conf)),
		Kind: "infer",
		Rows: len(conf),
		Time: wall,
	})
}

// forEach runs f(0..n-1) on min(ec.Parallelism(), n) workers, polling
// cancellation between jobs so a cancelled evaluation stops feeding work.
// f must handle its own errors (confidence.err); forEach only reports the
// context's.
func forEach(ec *core.ExecContext, n int, f func(i int)) error {
	workers := ec.Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ec.Err(); err != nil {
				return err
			}
			f(i)
		}
		return nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	var err error
	for i := 0; i < n; i++ {
		if err = ec.Err(); err != nil {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return err
}

// timed runs f and adds its duration to *d.
func timed(d *time.Duration, f func() error) error {
	start := time.Now()
	err := f()
	*d += time.Since(start)
	return err
}
