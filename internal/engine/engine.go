// Package engine evaluates conjunctive queries over tuple-independent
// probabilistic databases under the five strategies of core.Strategy,
// bridging extensional and intensional evaluation exactly as the paper
// prescribes: plans run over pL-relations, conditioning only the offending
// tuples, and a final inference pass over the resulting partial-lineage
// AND-OR network produces the answer probabilities.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/lineage"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Options configures an evaluation.
type Options struct {
	Strategy core.Strategy
	// Inference configures exact inference over AND-OR networks.
	Inference inference.Options
	// Samples is the sample count for the MonteCarlo strategy and for the
	// sampling fallback when exact inference exceeds its width limit.
	// Zero means the default of 100000.
	Samples int
	// Epsilon and Delta request an (ε, δ) accuracy guarantee from the
	// Karp–Luby sampler instead of a fixed sample count: when both are set
	// (each in (0,1)), every sampled answer uses the zero-one estimator
	// theorem's count n = ⌈4·m·ln(2/δ)/ε²⌉ for its m-clause DNF, which
	// bounds the relative error by ε with probability at least 1−δ (see
	// lineage.KarpLubyGuarantee). Samples is ignored on the Karp–Luby paths
	// while both are set. Setting exactly one of the two is an error.
	Epsilon, Delta float64
	// Seed seeds the sampler (approximate paths only). Approximate answers
	// derive a per-answer RNG from Seed and the answer identity, so a fixed
	// Seed makes Karp–Luby and the sampling fallbacks fully reproducible,
	// at any Parallelism.
	Seed int64
	// NoFallback makes the engine return inference.ErrTooWide (network
	// strategies) or lineage.ErrBudget (DNFLineage) instead of falling back
	// to sampling when exact computation is intractable.
	NoFallback bool
	// ExactBudget caps the DNFLineage solver's Shannon expansions per
	// answer before the sampling fallback engages. Zero means the default
	// of 500000; negative means unlimited.
	ExactBudget int
	// Parallelism is the number of goroutines granted to the evaluation:
	// per-answer probability computations (inference or lineage confidence)
	// fan out across it, and the pL Join/Dedup operators partition their
	// hash tables over it. Answers are independent, so inference scales
	// near-linearly; the parallel operators are byte-identical to serial.
	// 0 or 1 means sequential; results are deterministic either way
	// (approximate paths derive their seed from Seed and the answer
	// identity).
	Parallelism int
	// Budget caps the rows emitted, network nodes grown and wall time of
	// one evaluation (zero fields = unlimited); exceeding it surfaces
	// core.ErrRowBudget, core.ErrNodeBudget or context.DeadlineExceeded.
	// Budget.Mem instead degrades gracefully: join/dedup switch to
	// partitioned spill-to-disk execution and stay byte-identical to the
	// unbounded result at any positive budget (docs/SPILL.md).
	Budget core.Budget
	// SkipInference stops the network strategies after plan execution: the
	// result carries statistics (offending tuples, network size) but no
	// rows. Used by the data-aware plan optimizer to cost candidate plans.
	SkipInference bool
	// Trace records a per-operator execution trace (output cardinality,
	// network growth, own wall time) into Stats.Operators (network
	// strategies only).
	Trace bool
	// Evidence conditions the database on observations about specific base
	// tuples before evaluation: each answer probability becomes
	// P(answer | evidence) — the conditioning of probabilistic databases of
	// Koch & Olteanu [16]. Network strategies only; evidence of probability
	// zero (e.g. asserting a certain tuple absent) is an error.
	Evidence []Evidence
	// MeasureWidth computes a greedy treewidth upper bound of the final
	// AND-OR network into Stats.NetworkWidthBound (network strategies).
	// Opt-in: the bound costs a quadratic pass over the network.
	MeasureWidth bool
	// Validate makes the executor check structural invariants (schema
	// integrity, probability ranges, lineage references, network
	// well-formedness) after every operator. Intended for tests and
	// debugging; adds a linear pass per operator.
	Validate bool
	// NoExpansion disables the default partial-lineage inference path
	// (expand the answer's network into a DNF over offending tuples and
	// anonymous coins, then run the Shannon solver — Section 4.2's "run any
	// general-purpose inference algorithm" on the partial lineage), forcing
	// variable elimination with cutset conditioning instead. For the
	// inference-backend ablation benchmark.
	NoExpansion bool
	// NoMemo disables the per-evaluation shared inference memo tables
	// (Shannon subproblems keyed on canonical clause fingerprints, VE
	// component solves keyed on factor fingerprints). Exact results are
	// bit-identical with and without them; the flag exists for the
	// performance ablation and the crosscheck equivalence tests.
	NoMemo bool
	// NoIntern disables canonical-fingerprint interning inside the shared
	// lineage memo (keys stay per-call strings). Observable only through
	// Stats.InternHits and memory footprint.
	NoIntern bool
	// NoCons disables AND-OR network hash-consing of deterministic gates.
	// Always sound (fresh nodes are never wrong, only more numerous); for
	// the node-count benchmark and the Section 5.4 ablation.
	NoCons bool
	// NoPool disables sync.Pool reuse of the hash-join/dedup partition
	// tables in internal/pl. Outputs are byte-identical either way; the
	// flag exists for the allocation benchmark.
	NoPool bool
	// NoAdaptivePlan disables the cost-aware planner: EvaluateQuery falls
	// back to the legacy safe-plan-else-body-order plan choice, and the
	// per-answer inference dispatch uses the fixed legacy try-order
	// (Shannon on the expanded lineage, then variable elimination, then
	// sampling) instead of the planner cost model's ranking. The ablation
	// knob for the adaptive-planning layer; results are equivalent either
	// way — see docs/PLANNER.md.
	NoAdaptivePlan bool
	// PlannerSink, when set, accumulates per-backend attempt outcomes from
	// the ranked inference dispatch (adaptive mode only). The sink feeds
	// observability exclusively — metrics, EXPLAIN, calibration reports —
	// and never influences backend ranking; see planner.Sink.
	PlannerSink *planner.Sink
	// Circuits, when set, enables the compiled-circuit inference backend:
	// expanded DNF lineage is compiled once to a d-DNNF circuit cached in
	// this table on its canonical fingerprint, and confidence becomes one
	// linear bottom-up pass — repeated answers, cross-query shared cores and
	// prob-update refreshes all reuse the compiled structure. The evaluator
	// replays the Shannon solver's recursion exactly, so results are
	// bit-identical with the backend on or off; as with the shared memo,
	// only the number of Shannon expansions charged against ExactBudget can
	// shrink on cache hits. The pdb layer attaches one cache per database;
	// materialized views carry their own.
	Circuits *lineage.CircuitCache
	// NoCircuit disables the compiled-circuit backend even when a cache is
	// attached — the ablation knob mirrored by pdb.Options.NoCircuit and the
	// CLIs' -no-circuit flags.
	NoCircuit bool
	// circuitStats accumulates the evaluation's circuit compile/hit/eval
	// counts for Stats; set internally at the evaluation boundary so
	// concurrent queries sharing one cache never mix counters.
	circuitStats *lineage.CircuitStats
}

// circuitCache returns the circuit cache the evaluation may use: nil when
// none is attached or the ablation knob is set.
func (o Options) circuitCache() *lineage.CircuitCache {
	if o.NoCircuit {
		return nil
	}
	return o.Circuits
}

func (o Options) samples() int {
	if o.Samples <= 0 {
		return 100000
	}
	return o.Samples
}

// klSamples returns the Karp–Luby sample count for an answer whose DNF has
// the given clause count: the (ε, δ)-derived count when Epsilon/Delta are
// set, Options.Samples otherwise.
func (o Options) klSamples(clauses int) int {
	if o.Epsilon > 0 && o.Delta > 0 && clauses > 0 {
		return int(math.Ceil(4 * float64(clauses) * math.Log(2/o.Delta) / (o.Epsilon * o.Epsilon)))
	}
	return o.samples()
}

// validateEpsDelta rejects half-set or out-of-range (ε, δ) pairs.
func (o Options) validateEpsDelta() error {
	if o.Epsilon == 0 && o.Delta == 0 {
		return nil
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 || o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("engine: Epsilon and Delta must both be in (0,1), got ε=%v δ=%v", o.Epsilon, o.Delta)
	}
	return nil
}

func (o Options) exactBudget() int {
	switch {
	case o.ExactBudget == 0:
		return 500000
	case o.ExactBudget < 0:
		return -1
	default:
		return o.ExactBudget
	}
}

// Evidence is one observation: the named base tuple is known present or
// absent. Vals must match the stored tuple exactly (full relation arity).
type Evidence struct {
	Rel     string
	Vals    tuple.Tuple
	Present bool
}

// Row is one answer: the head-variable values and the answer probability.
// Under the Dissociation strategy the row is bounds-valued: Lo and Hi
// bracket the true probability (Lo == Hi when the answer's lineage was
// read-once or solved exactly) and P is the interval midpoint; all other
// strategies leave Lo == Hi == P.
type Row struct {
	Vals   tuple.Tuple
	P      float64
	Lo, Hi float64
}

// Result is the outcome of one evaluation.
type Result struct {
	Attrs []string
	Rows  []Row
	Stats core.Stats
	// Net is the AND-OR network built by the network strategies (nil for
	// the lineage strategies); exposed for inspection and DOT export.
	Net *aonet.Network
}

// BoolProb returns the probability of a Boolean query: the single row's
// probability, or 0 when the query has no satisfying grounding.
func (r *Result) BoolProb() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[0].P
}

// Prob returns the probability of the answer with the given head values,
// or 0 if absent.
func (r *Result) Prob(vals tuple.Tuple) float64 {
	k := vals.Key()
	for _, row := range r.Rows {
		if row.Vals.Key() == k {
			return row.P
		}
	}
	return 0
}

// Evaluate runs the plan (which must be a plan for q) against db under the
// chosen strategy. The plan's scans identify relations by predicate name.
// It is EvaluateContext with a background context.
func Evaluate(db *relation.Database, q *query.Query, plan *query.Plan, opts Options) (*Result, error) {
	return EvaluateContext(context.Background(), db, q, plan, opts)
}

// EvaluateContext is Evaluate under a context: cancelling ctx (or exceeding
// Options.Budget) aborts the evaluation promptly — operators, exact
// inference and sampling all poll it at least every core.CheckInterval
// steps.
func EvaluateContext(ctx context.Context, db *relation.Database, q *query.Query, plan *query.Plan, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := validateBaseProbs(db, q); err != nil {
		return nil, err
	}
	if err := opts.validateEpsDelta(); err != nil {
		return nil, err
	}
	ec := core.NewExecContext(ctx, core.ExecConfig{
		Budget:      opts.Budget,
		Parallelism: opts.Parallelism,
		Trace:       opts.Trace,
		Pooling:     !opts.NoPool,
	})
	var res *Result
	var err error
	switch opts.Strategy {
	case core.PartialLineage, core.SafePlanOnly, core.FullNetwork:
		res, err = evalNetwork(ec, db, q, plan, opts)
	case core.DNFLineage, core.MonteCarlo:
		if len(opts.Evidence) > 0 {
			return nil, fmt.Errorf("engine: evidence conditioning requires a network strategy")
		}
		res, err = evalLineage(ec, db, q, plan, opts)
	case core.Dissociation:
		if len(opts.Evidence) > 0 {
			return nil, fmt.Errorf("engine: evidence conditioning requires a network strategy")
		}
		res, err = evalDissociation(ec, db, q, plan, opts)
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", opts.Strategy)
	}
	if err != nil {
		// Aborted evaluations (cancellation, deadline, budget exhaustion)
		// still return a Result carrying the work done so far — the partial
		// operator trace and the charged totals — alongside the error, so
		// callers like the query server can report where the time went. The
		// partial Result has no rows; only its Stats are meaningful.
		partial := &Result{}
		partial.Stats.Strategy = opts.Strategy
		partial.Stats.Operators = ec.Ops()
		partial.Stats.RowsCharged = ec.RowsCharged()
		partial.Stats.NodesCharged = ec.NodesCharged()
		partial.Stats.SpilledPartitions = ec.SpilledPartitions()
		partial.Stats.SpillBytes = ec.SpillBytes()
		partial.Stats.MemPeakBytes = ec.MemPeakBytes()
		return partial, err
	}
	res.Stats.RowsCharged = ec.RowsCharged()
	res.Stats.NodesCharged = ec.NodesCharged()
	res.Stats.SpilledPartitions = ec.SpilledPartitions()
	res.Stats.SpillBytes = ec.SpillBytes()
	res.Stats.MemPeakBytes = ec.MemPeakBytes()
	return res, nil
}

// EvaluateQuery is Evaluate with a plan chosen for the query: the safe plan
// when one exists, otherwise the join order the cost-aware planner estimates
// to condition the fewest offending tuples (planner.Plan). With
// Options.NoAdaptivePlan the legacy choice applies instead — safe plan else
// the left-deep plan in body order.
func EvaluateQuery(db *relation.Database, q *query.Query, opts Options) (*Result, error) {
	return EvaluateQueryContext(context.Background(), db, q, opts)
}

// EvaluateQueryContext is EvaluateQuery under a context.
func EvaluateQueryContext(ctx context.Context, db *relation.Database, q *query.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ir, err := planQuery(db, q, opts)
	if err != nil {
		return nil, err
	}
	res, err := EvaluateContext(ctx, db, q, ir.Physical, opts)
	if res != nil {
		res.Stats.PlanSource = ir.Source
		res.Stats.PlanOrder = strings.Join(ir.Order, ",")
		res.Stats.PlanEstOffending = ir.EstOffending
		res.Stats.PlanCandidates = ir.Candidates
		res.Stats.PlanSelectTime = ir.SelectTime
	}
	return res, err
}

// planQuery picks the physical plan for a query-level evaluation.
func planQuery(db *relation.Database, q *query.Query, opts Options) (*planner.IR, error) {
	if opts.NoAdaptivePlan {
		if plan, err := query.SafePlan(q); err == nil {
			return &planner.IR{Source: planner.SourceSafe, Physical: plan}, nil
		}
		return planner.BodyIR(q)
	}
	return planner.Plan(db, q, planner.Options{})
}

// validateBaseProbs checks, once at the evaluation boundary, that every
// relation the query touches carries only probabilities in [0,1]. Relations
// built through the validated entry points (Relation.Add, the CSV loader,
// the pdb facade) always pass; the check exists for callers that fill
// relation.Rows directly, whose bad values would otherwise surface as
// panics deep inside the exact solvers. Relations missing from the database
// are skipped here — the executor reports them with better context.
func validateBaseProbs(db *relation.Database, q *query.Query) error {
	for i := range q.Atoms {
		rel, err := db.Relation(q.Atoms[i].Pred)
		if err != nil {
			continue
		}
		if err := rel.ValidateProbs(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	return nil
}

// expansion is one answer's pre-expanded partial lineage: the DNF over the
// evaluation's shared variable space, or the error expansion hit. The
// engine expands all answers serially (in answer order) before the parallel
// inference stage, so variable numbering is deterministic and identical at
// every Parallelism and memo setting.
type expansion struct {
	f     *lineage.DNF
	probs []float64
	err   error
}

// answerMarginal computes one lineage node's marginal. With evidence it goes
// through the conditional network backends; otherwise it dispatches across
// the exact backends — in adaptive mode in the order the planner cost model
// ranks for this answer's profile, in legacy mode (NoAdaptivePlan) in the
// fixed historical order — and past every exact budget it approximates, by
// Karp–Luby on the expanded formula when the expansion succeeded, otherwise
// by forward sampling on the network, unless NoFallback is set, in which
// case the tractability error surfaces. It only reads the network (pre
// carries this answer's expansion; lm and opts.Inference.Memo are internally
// synchronized), so it is safe to run concurrently; the approximate paths
// seed deterministically from Options.Seed and the node. Cancellation and
// budget errors from ec surface through confidence.err.
func answerMarginal(ec *core.ExecContext, net *aonet.Network, lin aonet.NodeID, opts Options, evidence map[aonet.NodeID]bool, pre *expansion, lm *lineage.Memo) confidence {
	if len(evidence) > 0 {
		// Conditional marginals go through the network backends: variable
		// elimination with the evidence pinned, then rejection sampling.
		r, err := inference.ExactGivenCtx(ec, net, lin, evidence, opts.Inference)
		if err == nil {
			return confidence{p: r.P, width: r.Width, vars: r.Vars, backend: "ve+evidence"}
		}
		if !errors.Is(err, inference.ErrTooWide) || opts.NoFallback {
			return confidence{err: err}
		}
		rng := answerRNG(opts, lin)
		p, err := inference.MonteCarloGivenCtx(ec, net, lin, evidence, opts.samples(), rng)
		if err != nil {
			return confidence{err: err}
		}
		return confidence{p: p, approx: true, backend: "rejection-sampling",
			reason: "conditional exact inference exceeded the width cap; rejection sampling"}
	}
	if opts.NoAdaptivePlan {
		return answerMarginalFixed(ec, net, lin, opts, pre, lm)
	}
	return answerMarginalRanked(ec, net, lin, opts, pre, lm)
}

// answerRNG derives the per-answer sampling RNG from the evaluation seed and
// the answer's lineage node, so approximate paths are reproducible at any
// Parallelism.
func answerRNG(opts Options, lin aonet.NodeID) *rand.Rand {
	return rand.New(rand.NewSource(opts.Seed ^ (int64(lin)+1)*0x7f4a7c15))
}

// answerMarginalFixed is the legacy dispatch, preserved verbatim for the
// NoAdaptivePlan ablation: (1) the Shannon solver on the pre-expanded
// partial-lineage DNF (Section 4.2's "run any general-purpose inference
// algorithm" on the partial lineage); (2) variable elimination with cutset
// conditioning; (3) sampling.
func answerMarginalFixed(ec *core.ExecContext, net *aonet.Network, lin aonet.NodeID, opts Options, pre *expansion, lm *lineage.Memo) confidence {
	var expanded *lineage.DNF
	var expandedProbs []float64
	if pre != nil {
		f, probs, err := pre.f, pre.probs, pre.err
		switch {
		case err == nil:
			p, err := lineage.ProbMemoCtx(ec, f, func(v lineage.Var) float64 { return probs[v] }, opts.exactBudget(), lm)
			if err == nil {
				return confidence{p: p, backend: "expand+shannon"}
			}
			if !errors.Is(err, lineage.ErrBudget) {
				return confidence{err: err}
			}
			expanded, expandedProbs = f, probs
		case !errors.Is(err, inference.ErrExpansion):
			return confidence{err: err}
		}
	}
	r, err := inference.ExactCtx(ec, net, lin, opts.Inference)
	if err == nil {
		return confidence{p: r.P, width: r.Width, vars: r.Vars, backend: "ve"}
	}
	if !errors.Is(err, inference.ErrTooWide) || opts.NoFallback {
		return confidence{err: err}
	}
	rng := answerRNG(opts, lin)
	if expanded != nil {
		p, err := lineage.KarpLubyCtx(ec, expanded, func(v lineage.Var) float64 { return expandedProbs[v] }, opts.klSamples(len(expanded.Clauses)), rng)
		if err != nil {
			return confidence{err: err}
		}
		return confidence{p: p, approx: true, backend: "karp-luby",
			reason: "Shannon budget exhausted and variable elimination exceeded the width cap; Karp–Luby sampling on the expanded lineage"}
	}
	p, err := inference.MonteCarloCtx(ec, net, lin, opts.samples(), rng)
	if err != nil {
		return confidence{err: err}
	}
	return confidence{p: p, approx: true, backend: "forward-sampling",
		reason: "exact inference exceeded the width cap on an unexpandable network; forward sampling"}
}

// answerMarginalRanked is the adaptive dispatch: it builds the answer's cost
// profile (expanded-lineage size; a treewidth estimate computed lazily, only
// when the profile is not trivially Shannon-first), asks the planner cost
// model for the backend attempt order, and walks it. Deterministic
// tractability failures — lineage.ErrBudget from the Shannon solver,
// inference.ErrTooWide from the elimination backends — fall through to the
// next attempt; every other error surfaces immediately. The ranking always
// ends in sampling; with NoFallback the last deterministic failure surfaces
// instead. Attempt outcomes are recorded into opts.PlannerSink
// (observability only) and into the confidence for the per-query stats.
func answerMarginalRanked(ec *core.ExecContext, net *aonet.Network, lin aonet.NodeID, opts Options, pre *expansion, lm *lineage.Memo) confidence {
	model := planner.DefaultCostModel()
	if opts.Inference.MaxFactorVars > 0 {
		model.MaxFactorVars = opts.Inference.MaxFactorVars
	}
	prof := planner.Profile{SharedMemo: opts.Inference.Memo != nil, Circuits: opts.circuitCache() != nil}
	var expanded *lineage.DNF
	var expandedProbs []float64
	if pre != nil {
		switch {
		case pre.err == nil:
			expanded, expandedProbs = pre.f, pre.probs
			prof.Expanded = true
			prof.Clauses = len(expanded.Clauses)
			prof.Vars = len(expandedProbs)
		case !errors.Is(pre.err, inference.ErrExpansion):
			return confidence{err: pre.err}
		}
	}
	if model.NeedsWidth(prof) {
		// The estimate costs one greedy elimination ordering over the
		// answer's ancestor factors — cheap next to the elimination it
		// predicts, and skipped entirely for small expanded lineages.
		if w, nv, err := inference.WidthEstimate(net, lin, opts.Inference); err == nil {
			prof.HasWidth, prof.Width, prof.NetVars = true, w, nv
		}
	}
	var fallbacks []string
	var lastErr error
	fail := func(b planner.Backend, start time.Time, err error) {
		opts.PlannerSink.Record(b.String(), false, time.Since(start))
		fallbacks = append(fallbacks, b.String())
		lastErr = err
	}
	win := func(b planner.Backend, start time.Time, c confidence) confidence {
		opts.PlannerSink.Record(b.String(), true, time.Since(start))
		c.fallbacks = fallbacks
		c.predictMiss = len(fallbacks) > 0
		return c
	}
	for _, b := range model.Rank(prof) {
		start := time.Now()
		switch b {
		case planner.BackendShannon:
			p, err := lineage.ProbMemoCtx(ec, expanded, func(v lineage.Var) float64 { return expandedProbs[v] }, opts.exactBudget(), lm)
			if err == nil {
				return win(b, start, confidence{p: p, backend: b.String()})
			}
			if !errors.Is(err, lineage.ErrBudget) {
				return confidence{err: err}
			}
			fail(b, start, err)
		case planner.BackendCircuit:
			// The compiled-circuit evaluator in Shannon's ranking slot:
			// same budget, same floats (the compiler replays the Shannon
			// recursion), ErrBudget falls through identically.
			p, err := lineage.CircuitProbCtx(ec, expanded, func(v lineage.Var) float64 { return expandedProbs[v] }, opts.exactBudget(), opts.circuitCache(), opts.circuitStats)
			if err == nil {
				return win(b, start, confidence{p: p, backend: b.String()})
			}
			if !errors.Is(err, lineage.ErrBudget) {
				return confidence{err: err}
			}
			fail(b, start, err)
		case planner.BackendJTree:
			r, err := inference.ExactJTCtx(ec, net, lin, opts.Inference)
			if err == nil {
				return win(b, start, confidence{p: r.P, width: r.Width, vars: r.Vars, backend: b.String()})
			}
			if !errors.Is(err, inference.ErrTooWide) {
				return confidence{err: err}
			}
			fail(b, start, err)
		case planner.BackendVE:
			r, err := inference.ExactCtx(ec, net, lin, opts.Inference)
			if err == nil {
				return win(b, start, confidence{p: r.P, width: r.Width, vars: r.Vars, backend: b.String()})
			}
			if !errors.Is(err, inference.ErrTooWide) {
				return confidence{err: err}
			}
			fail(b, start, err)
		case planner.BackendSample:
			// Every ranking puts at least one exact backend first, so
			// reaching the sampling slot means lastErr is a tractability
			// error — the one NoFallback surfaces.
			if opts.NoFallback {
				return confidence{err: lastErr}
			}
			rng := answerRNG(opts, lin)
			if expanded != nil {
				p, err := lineage.KarpLubyCtx(ec, expanded, func(v lineage.Var) float64 { return expandedProbs[v] }, opts.klSamples(len(expanded.Clauses)), rng)
				if err != nil {
					return confidence{err: err}
				}
				opts.PlannerSink.Record("karp-luby", true, time.Since(start))
				return confidence{p: p, approx: true, backend: "karp-luby", fallbacks: fallbacks, predictMiss: true,
					reason: fmt.Sprintf("exact backends exhausted (%s); Karp–Luby sampling on the expanded lineage", strings.Join(fallbacks, ", "))}
			}
			p, err := inference.MonteCarloCtx(ec, net, lin, opts.samples(), rng)
			if err != nil {
				return confidence{err: err}
			}
			opts.PlannerSink.Record("forward-sampling", true, time.Since(start))
			return confidence{p: p, approx: true, backend: "forward-sampling", fallbacks: fallbacks, predictMiss: true,
				reason: fmt.Sprintf("exact backends exhausted (%s); forward sampling on the network", strings.Join(fallbacks, ", "))}
		}
	}
	return confidence{err: lastErr}
}

type finalTuple struct {
	vals tuple.Tuple
	p    float64
	lin  aonet.NodeID
}
