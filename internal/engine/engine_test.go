package engine

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// bruteForceAnswers computes every answer's probability by enumerating the
// possible worlds of the database and matching the query naively in each —
// an implementation independent from both engine paths.
func bruteForceAnswers(t *testing.T, db *relation.Database, q *query.Query) map[string]float64 {
	t.Helper()
	worlds, err := db.Worlds()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, w := range worlds {
		for _, key := range matchWorld(t, db, q, &w) {
			out[key] += w.P
		}
	}
	return out
}

// matchWorld returns the distinct head-binding keys satisfied in the world.
func matchWorld(t *testing.T, db *relation.Database, q *query.Query, w *relation.World) []string {
	t.Helper()
	found := make(map[string]bool)
	var rec func(depth int, binding map[string]tuple.Value)
	rec = func(depth int, binding map[string]tuple.Value) {
		if depth == len(q.Atoms) {
			vals := make(tuple.Tuple, len(q.Head))
			for i, h := range q.Head {
				vals[i] = binding[h]
			}
			found[vals.Key()] = true
			return
		}
		a := &q.Atoms[depth]
		rel, err := db.Relation(a.Pred)
		if err != nil {
			t.Fatal(err)
		}
		for _, ri := range w.Present[a.Pred] {
			row := rel.Rows[ri]
			ok := true
			newly := make([]string, 0, len(a.Args))
			for i, arg := range a.Args {
				switch {
				case !arg.IsVar():
					if row.Tuple[i] != arg.Const {
						ok = false
					}
				default:
					if v, bound := binding[arg.Var]; bound {
						if v != row.Tuple[i] {
							ok = false
						}
					} else {
						binding[arg.Var] = row.Tuple[i]
						newly = append(newly, arg.Var)
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				rec(depth+1, binding)
			}
			for _, v := range newly {
				delete(binding, v)
			}
		}
	}
	rec(0, make(map[string]tuple.Value))
	keys := make([]string, 0, len(found))
	for k := range found {
		keys = append(keys, k)
	}
	return keys
}

// randomDatabase builds a small random database with relations R(x), S(x,y),
// T(y) over a tiny domain, mixing certain, uncertain and impossible tuples.
func randomDatabase(rng *rand.Rand, dom int) *relation.Database {
	db := relation.NewDatabase()
	randP := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return 1
		case 1:
			return 0
		default:
			return rng.Float64()
		}
	}
	r := relation.New("R", "a")
	for x := 1; x <= dom; x++ {
		if rng.Intn(3) > 0 {
			r.MustAdd(tuple.Ints(int64(x)), randP())
		}
	}
	s := relation.New("S", "a", "b")
	for x := 1; x <= dom; x++ {
		for y := 1; y <= dom; y++ {
			if rng.Intn(2) == 0 {
				s.MustAdd(tuple.Ints(int64(x), int64(y)), randP())
			}
		}
	}
	tt := relation.New("T", "b")
	for y := 1; y <= dom; y++ {
		if rng.Intn(3) > 0 {
			tt.MustAdd(tuple.Ints(int64(y)), randP())
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	return db
}

func checkAgainstBruteForce(t *testing.T, db *relation.Database, q *query.Query, plan *query.Plan, trial int) {
	t.Helper()
	want := bruteForceAnswers(t, db, q)
	for _, strat := range []core.Strategy{core.PartialLineage, core.FullNetwork, core.DNFLineage} {
		res, err := Evaluate(db, q, plan, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, strat, err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("trial %d (%v): %d answers, want %d", trial, strat, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			w := want[row.Vals.Key()]
			if math.Abs(row.P-w) > 1e-9 {
				t.Errorf("trial %d (%v): answer %v = %.12f, want %.12f", trial, strat, row.Vals, row.P, w)
			}
		}
	}
}

// TestUnsafeQueryAgainstBruteForce is the central integration property test:
// on random instances, the unsafe query q :- R(x),S(x,y),T(y) (Section 4.1)
// gets the same answer from PartialLineage, FullNetwork, DNFLineage and
// exhaustive world enumeration.
func TestUnsafeQueryAgainstBruteForce(t *testing.T) {
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		db := randomDatabase(rng, 2+rng.Intn(2))
		if db.UncertainRows() > relation.MaxWorldRows {
			continue
		}
		checkAgainstBruteForce(t, db, q, plan, trial)
	}
}

func TestHeadVariableQueryAgainstBruteForce(t *testing.T) {
	// Non-Boolean variant: answers grouped by a.
	q := query.MustParse("q(a) :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		db := randomDatabase(rng, 2+rng.Intn(2))
		if db.UncertainRows() > relation.MaxWorldRows {
			continue
		}
		checkAgainstBruteForce(t, db, q, plan, trial)
	}
}

func TestSafeQueryAllStrategies(t *testing.T) {
	// R(a),S(a,b) is hierarchical; its safe plan must evaluate purely
	// extensionally (zero offending tuples) and agree with everything else.
	q := query.MustParse("q :- R(a), S(a, b)")
	plan, err := query.SafePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		db := randomDatabase(rng, 2+rng.Intn(2))
		if db.UncertainRows() > relation.MaxWorldRows {
			continue
		}
		want := bruteForceAnswers(t, db, q)
		res, err := Evaluate(db, q, plan, Options{Strategy: core.SafePlanOnly})
		if err != nil {
			t.Fatalf("trial %d: safe plan rejected: %v", trial, err)
		}
		if res.Stats.OffendingTuples != 0 {
			t.Errorf("trial %d: safe plan conditioned %d tuples", trial, res.Stats.OffendingTuples)
		}
		if math.Abs(res.BoolProb()-want[""]) > 1e-9 {
			t.Errorf("trial %d: safe plan = %.12f, want %.12f", trial, res.BoolProb(), want[""])
		}
		checkAgainstBruteForce(t, db, q, plan, trial)
	}
}

// TestDataSafetyFromInstance reproduces Section 4.1: the unsafe query
// becomes data-safe when the functional dependency x→y holds in S, and the
// unsafe plan evaluates purely extensionally.
func TestDataSafetyFromInstance(t *testing.T) {
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "b")
	for x := 1; x <= 3; x++ {
		r.MustAdd(tuple.Ints(int64(x)), 0.5)
		s.MustAdd(tuple.Ints(int64(x), int64(x%2)), 0.5) // FD a→b holds
	}
	tt.MustAdd(tuple.Ints(0), 0.5)
	tt.MustAdd(tuple.Ints(1), 0.5)
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	res, err := Evaluate(db, q, plan, Options{Strategy: core.SafePlanOnly})
	if err != nil {
		t.Fatalf("data-safe instance rejected by SafePlanOnly: %v", err)
	}
	want := bruteForceAnswers(t, db, q)
	if math.Abs(res.BoolProb()-want[""]) > 1e-9 {
		t.Errorf("extensional result %.12f, want %.12f", res.BoolProb(), want[""])
	}

	// Breaking the FD on one a-value makes the instance unsafe: SafePlanOnly
	// must refuse, PartialLineage must condition exactly one tuple.
	s.MustAdd(tuple.Ints(1, 0), 0.5) // a=1 now has two b-values
	if _, err := Evaluate(db, q, plan, Options{Strategy: core.SafePlanOnly}); err == nil {
		t.Fatal("SafePlanOnly accepted an unsafe instance")
	}
	res2, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.OffendingTuples != 1 {
		t.Errorf("offending tuples = %d, want 1 (only R(1))", res2.Stats.OffendingTuples)
	}
	want2 := bruteForceAnswers(t, db, q)
	if math.Abs(res2.BoolProb()-want2[""]) > 1e-9 {
		t.Errorf("partial lineage = %.12f, want %.12f", res2.BoolProb(), want2[""])
	}
}

func TestPerJoinStats(t *testing.T) {
	// Section 4.1 / Figure 4 shape: the first join conditions the FD
	// violators; the second join is 1-1 and conditions nothing.
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "b")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(2), 0.5)
	s.MustAdd(tuple.Ints(1, 1), 0.5)
	s.MustAdd(tuple.Ints(1, 2), 0.5) // a=1 violates a→b
	s.MustAdd(tuple.Ints(2, 1), 0.5)
	tt.MustAdd(tuple.Ints(1), 0.5)
	tt.MustAdd(tuple.Ints(2), 0.5)
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	res, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.PerJoin) != 2 {
		t.Fatalf("PerJoin = %+v", res.Stats.PerJoin)
	}
	if res.Stats.PerJoin[0].Conditioned != 1 || res.Stats.PerJoin[1].Conditioned != 0 {
		t.Errorf("per-join conditioning = %+v, want [1, 0]", res.Stats.PerJoin)
	}
	total := 0
	for _, js := range res.Stats.PerJoin {
		total += js.Conditioned
		if js.Join == "" {
			t.Error("empty join description")
		}
	}
	if total != res.Stats.OffendingTuples {
		t.Errorf("per-join sum %d != total %d", total, res.Stats.OffendingTuples)
	}
}

func TestPartialNetworkSmallerThanFullNetwork(t *testing.T) {
	// With few offending tuples, the partial-lineage network must be a
	// strictly smaller object than the full intensional network
	// (Proposition 4.3: it is a minor of the factor graph).
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "b")
	for x := 1; x <= 6; x++ {
		r.MustAdd(tuple.Ints(int64(x)), 0.5)
		s.MustAdd(tuple.Ints(int64(x), int64(x)), 0.9)
	}
	s.MustAdd(tuple.Ints(1, 2), 0.9) // single FD violation
	for y := 1; y <= 6; y++ {
		tt.MustAdd(tuple.Ints(int64(y)), 0.5)
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	partial, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Evaluate(db, q, plan, Options{Strategy: core.FullNetwork})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(partial.BoolProb()-full.BoolProb()) > 1e-9 {
		t.Fatalf("strategies disagree: %g vs %g", partial.BoolProb(), full.BoolProb())
	}
	if partial.Stats.NetworkNodes >= full.Stats.NetworkNodes {
		t.Errorf("partial network (%d nodes) not smaller than full network (%d nodes)",
			partial.Stats.NetworkNodes, full.Stats.NetworkNodes)
	}
	if partial.Stats.OffendingTuples != 1 {
		t.Errorf("offending = %d, want 1", partial.Stats.OffendingTuples)
	}
	// Corollary 4.4 in measurable form: the partial-lineage network's
	// treewidth bound is no larger than the full factor graph's.
	pw, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage, MeasureWidth: true})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := Evaluate(db, q, plan, Options{Strategy: core.FullNetwork, MeasureWidth: true})
	if err != nil {
		t.Fatal(err)
	}
	if pw.Stats.NetworkWidthBound > fw.Stats.NetworkWidthBound {
		t.Errorf("partial width bound %d exceeds full network's %d",
			pw.Stats.NetworkWidthBound, fw.Stats.NetworkWidthBound)
	}
	if fw.Stats.NetworkWidthBound == 0 {
		t.Error("full network width bound not measured")
	}
}

func TestMonteCarloStrategyConverges(t *testing.T) {
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	db := randomDatabase(rng, 3)
	exact, err := Evaluate(db, q, plan, Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Evaluate(db, q, plan, Options{Strategy: core.MonteCarlo, Samples: 60000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !approx.Stats.Approximate {
		t.Error("MonteCarlo result not flagged approximate")
	}
	if math.Abs(exact.BoolProb()-approx.BoolProb()) > 0.02 {
		t.Errorf("MC %.4f vs exact %.4f", approx.BoolProb(), exact.BoolProb())
	}
}

func TestEvaluateQueryPicksSafePlan(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.MustAdd(tuple.Ints(1, 1), 0.5)
	r.MustAdd(tuple.Ints(1, 2), 0.5)
	s := relation.New("S", "a", "c")
	s.MustAdd(tuple.Ints(1, 1), 0.5)
	s.MustAdd(tuple.Ints(1, 2), 0.5)
	db.AddRelation(r)
	db.AddRelation(s)
	q := query.MustParse("q :- R(x, y), S(x, z)")
	res, err := EvaluateQuery(db, q, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OffendingTuples != 0 {
		t.Errorf("safe query conditioned %d tuples via its safe plan", res.Stats.OffendingTuples)
	}
	want := bruteForceAnswers(t, db, q)
	if math.Abs(res.BoolProb()-want[""]) > 1e-9 {
		t.Errorf("got %.12f, want %.12f", res.BoolProb(), want[""])
	}
	// Unsafe query: falls back to the left-deep plan in body order.
	q2 := query.MustParse("q :- R(x, y), S(y, z)")
	res2, err := EvaluateQuery(db, q2, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	want2 := bruteForceAnswers(t, db, q2)
	if math.Abs(res2.BoolProb()-want2[""]) > 1e-9 {
		t.Errorf("got %.12f, want %.12f", res2.BoolProb(), want2[""])
	}
}

func TestScanSelections(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b", "c")
	r.MustAdd(tuple.Ints(1, 1, 5), 0.5)
	r.MustAdd(tuple.Ints(1, 2, 5), 0.5)
	r.MustAdd(tuple.Ints(2, 2, 5), 0.25)
	r.MustAdd(tuple.Ints(3, 3, 7), 0.5)
	db.AddRelation(r)
	// Repeated variable + constant: R(x, x, 5).
	q := query.MustParse("q(x) :- R(x, x, 5)")
	res, err := EvaluateQuery(db, q, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if p := res.Prob(tuple.Ints(2)); math.Abs(p-0.25) > 1e-12 {
		t.Errorf("P(x=2) = %g", p)
	}
	if p := res.Prob(tuple.Ints(3)); p != 0 {
		t.Errorf("P(x=3) = %g, want 0 (c=7)", p)
	}
}

func TestBoolProbEmptyResult(t *testing.T) {
	db := relation.NewDatabase()
	db.AddRelation(relation.New("R", "a"))
	q := query.MustParse("q :- R(x)")
	res, err := EvaluateQuery(db, q, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoolProb() != 0 || len(res.Rows) != 0 {
		t.Errorf("empty relation: %v", res.Rows)
	}
	resDNF, err := EvaluateQuery(db, q, Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	if resDNF.BoolProb() != 0 {
		t.Errorf("DNF on empty relation = %g", resDNF.BoolProb())
	}
}

// TestTraceMode checks the per-operator execution trace: post-order, one
// entry per operator, with sane cardinalities and network growth that sums
// to the final network size.
func TestTraceMode(t *testing.T) {
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(87))
	db := randomDatabase(rng, 3)
	res, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	ops := res.Stats.Operators
	// Plan: scan R, scan S, join, project, scan T, join, project = 7 ops.
	if len(ops) != 7 {
		t.Fatalf("trace has %d operators: %+v", len(ops), ops)
	}
	growth := 0
	for _, op := range ops {
		if op.Op == "" || op.Rows < 0 || op.NetworkGrowth < 0 || op.Time < 0 {
			t.Errorf("bad trace entry: %+v", op)
		}
		growth += op.NetworkGrowth
	}
	if growth != res.Stats.NetworkNodes-1 { // ε predates the plan
		t.Errorf("trace growth %d, network has %d non-ε nodes", growth, res.Stats.NetworkNodes-1)
	}
	// The last entry is the final projection.
	if !strings.Contains(ops[len(ops)-1].Op, "π{}") {
		t.Errorf("last traced operator = %q", ops[len(ops)-1].Op)
	}
	// Without tracing the slice stays empty.
	plain, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Stats.Operators) != 0 {
		t.Error("trace recorded without Trace option")
	}
}

// TestValidateMode runs the randomized cross-check with invariant
// validation after every operator enabled.
func TestValidateMode(t *testing.T) {
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		db := randomDatabase(rng, 3)
		res, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage, Validate: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		plain, err := Evaluate(db, q, plan, Options{Strategy: core.PartialLineage})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.BoolProb()-plain.BoolProb()) > 1e-12 {
			t.Errorf("trial %d: validation changed the result", trial)
		}
	}
}

// TestParallelismDeterministic checks that parallel evaluation returns
// exactly the sequential result for every strategy, including approximate
// paths (per-answer seeding).
func TestParallelismDeterministic(t *testing.T) {
	q := query.MustParse("q(a) :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	db := randomDatabase(rng, 3)
	for _, strat := range []core.Strategy{core.PartialLineage, core.FullNetwork, core.DNFLineage, core.MonteCarlo} {
		seq, err := Evaluate(db, q, plan, Options{Strategy: strat, Samples: 5000, Seed: 9})
		if err != nil {
			t.Fatalf("%v sequential: %v", strat, err)
		}
		par, err := Evaluate(db, q, plan, Options{Strategy: strat, Samples: 5000, Seed: 9, Parallelism: 4})
		if err != nil {
			t.Fatalf("%v parallel: %v", strat, err)
		}
		if len(seq.Rows) != len(par.Rows) {
			t.Fatalf("%v: row counts differ", strat)
		}
		for i := range seq.Rows {
			if !seq.Rows[i].Vals.Equal(par.Rows[i].Vals) || seq.Rows[i].P != par.Rows[i].P {
				t.Errorf("%v: row %d differs: %v=%.12f vs %v=%.12f", strat, i,
					seq.Rows[i].Vals, seq.Rows[i].P, par.Rows[i].Vals, par.Rows[i].P)
			}
		}
	}
}

func TestGroundingExample36(t *testing.T) {
	// Example 3.6: R = S = {1,2}² gives 8 clauses for R(x,y),S(y,z).
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	s := relation.New("S", "a", "b")
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			r.MustAdd(tuple.Ints(int64(i), int64(j)), 0.5)
			s.MustAdd(tuple.Ints(int64(i), int64(j)), 0.5)
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	q := query.MustParse("q :- R(x, y), S(y, z)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Ground(db, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Answers) != 1 || g.ClauseCount() != 8 || g.VarCount() != 8 {
		t.Errorf("grounding: %d answers, %d clauses, %d vars; want 1, 8, 8",
			len(g.Answers), g.ClauseCount(), g.VarCount())
	}
}

// TestFigure1 builds the AND/OR networks of Figure 1: the query of
// Example 3.6 under two different plans yields two different graphs, both
// computing the same probability.
func TestFigure1(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	s := relation.New("S", "a", "b")
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			r.MustAdd(tuple.Ints(int64(i), int64(j)), 0.5)
			s.MustAdd(tuple.Ints(int64(i), int64(j)), 0.6)
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	q := query.MustParse("q :- R(x, y), S(y, z)")
	planA, err := query.LeftDeepPlan(q, []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	planB, err := query.LeftDeepPlan(q, []string{"S", "R"})
	if err != nil {
		t.Fatal(err)
	}
	var probs []float64
	var nodes []int
	for _, plan := range []*query.Plan{planA, planB} {
		res, err := Evaluate(db, q, plan, Options{Strategy: core.FullNetwork})
		if err != nil {
			t.Fatal(err)
		}
		probs = append(probs, res.BoolProb())
		nodes = append(nodes, res.Stats.NetworkNodes)
		var sb strings.Builder
		if err := res.Net.WriteDOT(&sb, nil); err != nil || !strings.Contains(sb.String(), "digraph") {
			t.Errorf("DOT export failed: %v", err)
		}
	}
	if math.Abs(probs[0]-probs[1]) > 1e-9 {
		t.Errorf("the two plans disagree: %g vs %g", probs[0], probs[1])
	}
	want := bruteForceAnswers(t, db, q)
	if math.Abs(probs[0]-want[""]) > 1e-9 {
		t.Errorf("network result %.12f, want %.12f", probs[0], want[""])
	}
	if nodes[0] == 0 || nodes[1] == 0 {
		t.Error("expected non-trivial networks for both plans")
	}
}
