package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// bruteForceGivenAnswers computes P(answer | evidence) by world enumeration.
func bruteForceGivenAnswers(t *testing.T, db *relation.Database, q *query.Query, evidence []Evidence) map[string]float64 {
	t.Helper()
	worlds, err := db.Worlds()
	if err != nil {
		t.Fatal(err)
	}
	consistent := func(w *relation.World) bool {
		for _, ev := range evidence {
			rel, err := db.Relation(ev.Rel)
			if err != nil {
				t.Fatal(err)
			}
			idx := -1
			for i, row := range rel.Rows {
				if row.Tuple.Equal(ev.Vals) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatalf("evidence tuple %v not in %s", ev.Vals, ev.Rel)
			}
			if w.Has(ev.Rel, idx) != ev.Present {
				return false
			}
		}
		return true
	}
	num := make(map[string]float64)
	den := 0.0
	for i := range worlds {
		w := &worlds[i]
		if !consistent(w) {
			continue
		}
		den += w.P
		for _, key := range matchWorld(t, db, q, w) {
			num[key] += w.P
		}
	}
	if den == 0 {
		t.Fatal("evidence has probability zero")
	}
	for k := range num {
		num[k] /= den
	}
	return num
}

func evidenceFixture(t *testing.T, rng *rand.Rand) *relation.Database {
	t.Helper()
	return randomDatabase(rng, 2)
}

func TestEvidenceMatchesBruteForce(t *testing.T) {
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(113))
	trials := 0
	for trials < 20 {
		db := evidenceFixture(t, rng)
		s, err := db.Relation("S")
		if err != nil || s.Len() == 0 {
			continue
		}
		// Observe a random uncertain S tuple.
		var pick tuple.Tuple
		for _, row := range s.Rows {
			if row.P > 0 && row.P < 1 {
				pick = row.Tuple
				break
			}
		}
		if pick == nil {
			continue
		}
		trials++
		for _, present := range []bool{true, false} {
			evidence := []Evidence{{Rel: "S", Vals: pick, Present: present}}
			want := bruteForceGivenAnswers(t, db, q, evidence)
			for _, strat := range []core.Strategy{core.PartialLineage, core.FullNetwork} {
				res, err := Evaluate(db, q, plan, Options{Strategy: strat, Evidence: evidence})
				if err != nil {
					t.Fatalf("trial %d (%v present=%v): %v", trials, strat, present, err)
				}
				if math.Abs(res.BoolProb()-want[""]) > 1e-9 {
					t.Errorf("trial %d (%v, present=%v): %.12f, want %.12f",
						trials, strat, present, res.BoolProb(), want[""])
				}
			}
		}
	}
}

func TestEvidenceRaisesAndLowers(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "b")
	r.MustAdd(tuple.Ints(1), 0.5)
	s.MustAdd(tuple.Ints(1, 1), 0.5)
	tt.MustAdd(tuple.Ints(1), 0.5)
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := Evaluate(db, q, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	up, err := Evaluate(db, q, plan, Options{Evidence: []Evidence{{Rel: "R", Vals: tuple.Ints(1), Present: true}}})
	if err != nil {
		t.Fatal(err)
	}
	down, err := Evaluate(db, q, plan, Options{Evidence: []Evidence{{Rel: "R", Vals: tuple.Ints(1), Present: false}}})
	if err != nil {
		t.Fatal(err)
	}
	if !(up.BoolProb() > prior.BoolProb()) || down.BoolProb() != 0 {
		t.Errorf("prior %g, given present %g, given absent %g",
			prior.BoolProb(), up.BoolProb(), down.BoolProb())
	}
	if math.Abs(up.BoolProb()-0.25) > 1e-9 { // S∧T = 0.25 once R is certain
		t.Errorf("P(q | R present) = %g, want 0.25", up.BoolProb())
	}
}

func TestEvidenceErrors(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.MustAdd(tuple.Ints(1), 1)
	r.MustAdd(tuple.Ints(2), 0.5)
	db.AddRelation(r)
	q := query.MustParse("q :- R(a)")
	plan, err := query.LeftDeepPlan(q, []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	// Contradicting a certain tuple.
	if _, err := Evaluate(db, q, plan, Options{Evidence: []Evidence{{Rel: "R", Vals: tuple.Ints(1), Present: false}}}); err == nil {
		t.Error("zero-probability evidence accepted")
	}
	// Unknown tuple.
	if _, err := Evaluate(db, q, plan, Options{Evidence: []Evidence{{Rel: "R", Vals: tuple.Ints(9), Present: true}}}); err == nil {
		t.Error("missing evidence tuple accepted")
	}
	// Unknown relation (never scanned).
	if _, err := Evaluate(db, q, plan, Options{Evidence: []Evidence{{Rel: "Z", Vals: tuple.Ints(1), Present: true}}}); err == nil {
		t.Error("evidence on unscanned relation accepted")
	}
	// Lineage strategies reject evidence.
	if _, err := Evaluate(db, q, plan, Options{Strategy: core.DNFLineage, Evidence: []Evidence{{Rel: "R", Vals: tuple.Ints(2), Present: true}}}); err == nil {
		t.Error("DNF strategy accepted evidence")
	}
	// Vacuous evidence on a certain tuple is fine.
	res, err := Evaluate(db, q, plan, Options{Evidence: []Evidence{{Rel: "R", Vals: tuple.Ints(1), Present: true}}})
	if err != nil || res.BoolProb() != 1 {
		t.Errorf("vacuous evidence: %v, %v", res.BoolProb(), err)
	}
}

func TestEvidenceOnFilteredTupleIsIndependent(t *testing.T) {
	// The evidence tuple is selected away by the atom's constant: it cannot
	// influence the answer, and the conditional equals the prior.
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.MustAdd(tuple.Ints(1, 7), 0.5)
	r.MustAdd(tuple.Ints(2, 8), 0.5)
	db.AddRelation(r)
	q := query.MustParse("q :- R(a, 7)")
	plan, err := query.LeftDeepPlan(q, []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := Evaluate(db, q, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	given, err := Evaluate(db, q, plan, Options{Evidence: []Evidence{{Rel: "R", Vals: tuple.Ints(2, 8), Present: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prior.BoolProb()-given.BoolProb()) > 1e-12 {
		t.Errorf("independent evidence changed the answer: %g vs %g", prior.BoolProb(), given.BoolProb())
	}
}
