package engine

import (
	"errors"
	"fmt"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/lineage"
	"repro/internal/pl"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// ErrNotDataSafe reports that a SafePlanOnly evaluation hit a join requiring
// conditioning: the plan is not data-safe on this instance (Definition 3.4).
// Matchable with errors.Is; callers like the crosscheck harness use it to
// distinguish the strategy legitimately declining an instance from a bug.
var ErrNotDataSafe = errors.New("engine: plan is not data-safe on this instance")

// evalNetwork executes the plan over pL-relations (the SafePlanOnly,
// PartialLineage and FullNetwork strategies) and runs inference on the
// resulting partial-lineage network, through the shared pipeline driver:
// build = plan execution, one inference job per distinct lineage node,
// assemble = row materialization. Answer tuples are emitted in head-variable
// order — the plan's output column order can differ (e.g. q(a, b) :- R(b, a)),
// and every strategy must present answers identically for results to be
// comparable.
func evalNetwork(ec *core.ExecContext, db *relation.Database, q *query.Query, plan *query.Plan, opts Options) (*Result, error) {
	perm, err := headPermutation(q, plan)
	if err != nil {
		return nil, err
	}
	res := &Result{Attrs: append([]string(nil), q.Head...), Net: aonet.New()}
	res.Stats.Strategy = opts.Strategy
	if opts.NoCons {
		res.Net.SetHashConsing(false)
	}
	// Per-evaluation shared memo tables (disabled by NoMemo): exact results
	// are bit-identical either way, only the work repeats.
	var lm *lineage.Memo
	if !opts.NoMemo {
		lm = lineage.NewMemo(lineage.MemoConfig{NoIntern: opts.NoIntern})
		opts.Inference.Memo = inference.NewMemo()
	}
	// Per-evaluation circuit accumulator: the cache itself is shared across
	// queries, so counters for this evaluation's stats live here.
	if opts.circuitCache() != nil {
		opts.circuitStats = &lineage.CircuitStats{}
	}
	ex := &executor{db: db, net: res.Net, opts: opts, stats: &res.Stats, ec: ec}
	if len(opts.Evidence) > 0 {
		ex.evidenceByRel = make(map[string][]int)
		ex.evidenceMatched = make([]bool, len(opts.Evidence))
		ex.evidenceNodes = make(map[aonet.NodeID]bool)
		for i, ev := range opts.Evidence {
			ex.evidenceByRel[ev.Rel] = append(ex.evidenceByRel[ev.Rel], i)
		}
	}

	var final []finalTuple
	var distinct []aonet.NodeID
	var expansions []expansion
	build := func() (int, error) {
		out, err := ex.exec(plan)
		if err != nil {
			return 0, err
		}
		for i, matched := range ex.evidenceMatched {
			if !matched {
				ev := opts.Evidence[i]
				return 0, fmt.Errorf("engine: evidence tuple %v not found in relation %s (or the relation is not scanned by the plan)", ev.Vals, ev.Rel)
			}
		}
		res.Stats.NetworkNodes = res.Net.Len()
		res.Stats.NetworkEdges = res.Net.EdgeCount()
		if opts.MeasureWidth {
			res.Stats.NetworkWidthBound = res.Net.TreewidthBound(nil)
		}
		if opts.SkipInference {
			res.Stats.Answers = out.Len()
			return 0, nil
		}
		final = make([]finalTuple, 0, out.Len())
		seen := make(map[aonet.NodeID]bool)
		for _, t := range out.Tuples {
			vals := t.Vals
			if perm != nil {
				vals = vals.Project(perm)
			}
			final = append(final, finalTuple{vals: vals, p: t.P, lin: t.Lin})
			if t.Lin != aonet.Epsilon && !seen[t.Lin] {
				seen[t.Lin] = true
				distinct = append(distinct, t.Lin)
			}
		}
		// Pre-expand every answer's partial lineage serially, sharing one
		// expander: gate nodes common to several answers expand once and
		// keep the same variables, and the serial answer-order pass makes
		// the variable numbering deterministic — identical at every
		// Parallelism and memo setting, which is what keeps memo-on and
		// memo-off results bit-identical.
		if len(ex.evidenceNodes) == 0 && !opts.NoExpansion {
			xp := inference.NewExpander(res.Net, 0)
			expansions = make([]expansion, len(distinct))
			for i, lin := range distinct {
				f, probs, err := xp.Expand(lin)
				expansions[i] = expansion{f: f, probs: probs, err: err}
			}
		}
		// The shared tables only pay for themselves across answers: with a
		// single inference job the solver's per-call memo already catches
		// every repeat, so drop them and skip their synchronization cost.
		if len(distinct) <= 1 {
			lm = nil
			opts.Inference.Memo = nil
		}
		return len(distinct), nil
	}
	infer := func(i int) confidence {
		var pre *expansion
		if expansions != nil {
			pre = &expansions[i]
		}
		return answerMarginal(ec, res.Net, distinct[i], opts, ex.evidenceNodes, pre, lm)
	}
	assemble := func(conf []confidence) error {
		if opts.SkipInference {
			return nil
		}
		recordInference(ec, res.Stats.InferenceTime, conf, func(i int) string {
			return fmt.Sprintf("lineage node %d", distinct[i])
		})
		byNode := make(map[aonet.NodeID]confidence, len(conf))
		for i, lin := range distinct {
			byNode[lin] = conf[i]
			if conf[i].width > res.Stats.InferenceWidth {
				res.Stats.InferenceWidth = conf[i].width
			}
			if conf[i].vars > res.Stats.InferenceVars {
				res.Stats.InferenceVars = conf[i].vars
			}
			if conf[i].approx {
				res.Stats.Approximate = true
			}
		}
		for _, ft := range final {
			p := ft.p
			if ft.lin != aonet.Epsilon {
				p *= byNode[ft.lin].p
			}
			res.Rows = append(res.Rows, Row{Vals: ft.vals, P: p, Lo: p, Hi: p})
		}
		res.Stats.Answers = len(res.Rows)
		return nil
	}
	if err := runPipeline(ec, res, build, infer, assemble); err != nil {
		return nil, err
	}
	res.Stats.Operators = ec.Ops()
	res.Stats.ConsHits = res.Net.ConsHits()
	ms := lm.Stats()
	veHits, veMisses, veEvictions, _, _ := opts.Inference.Memo.Stats()
	res.Stats.MemoHits = ms.Hits + veHits
	res.Stats.MemoMisses = ms.Misses + veMisses
	res.Stats.MemoEvictions = ms.Evictions + veEvictions
	res.Stats.InternHits = ms.InternHits
	res.Stats.CircuitCompiles, res.Stats.CircuitHits, res.Stats.CircuitEvals = opts.circuitStats.Snapshot()
	return res, nil
}

// headPermutation maps head positions to plan output columns: nil when the
// plan already emits exactly the head order (the common case — no copy
// needed), otherwise an index slice for tuple.Project. A head variable
// missing from the plan output is an internal plan-construction error.
func headPermutation(q *query.Query, plan *query.Plan) ([]int, error) {
	attrs := tuple.Schema(plan.Attrs())
	if len(attrs) == len(q.Head) {
		same := true
		for i, h := range q.Head {
			if attrs[i] != h {
				same = false
				break
			}
		}
		if same {
			return nil, nil
		}
	}
	perm := make([]int, len(q.Head))
	for i, h := range q.Head {
		j := attrs.Index(h)
		if j < 0 {
			return nil, fmt.Errorf("engine: plan output %v is missing head variable %s", plan.Attrs(), h)
		}
		perm[i] = j
	}
	return perm, nil
}

// executor runs one plan over a shared network.
type executor struct {
	db    *relation.Database
	net   *aonet.Network
	opts  Options
	stats *core.Stats
	ec    *core.ExecContext

	// evidence bookkeeping (Options.Evidence).
	evidenceByRel   map[string][]int
	evidenceMatched []bool
	evidenceNodes   map[aonet.NodeID]bool
}

// opMeta carries the descriptive trace fields only the operator itself
// knows: its span kind, input cardinality and conditioning work.
type opMeta struct {
	kind        string
	rowsIn      int
	conditioned int
}

func (ex *executor) exec(p *query.Plan) (*pl.Relation, error) {
	if err := ex.ec.Err(); err != nil {
		return nil, err
	}
	if !ex.ec.Tracing() {
		out, _, err := ex.execChecked(p)
		return out, err
	}
	span := ex.ec.StartOp(ex.net.Len())
	out, meta, err := ex.execChecked(p)
	rows := 0
	if out != nil {
		rows = out.Len()
	}
	ex.ec.FinishOp(span, ex.net.Len(), core.OpStat{
		Op:          p.String(),
		Kind:        meta.kind,
		Rows:        rows,
		RowsIn:      meta.rowsIn,
		Conditioned: meta.conditioned,
	}, err != nil)
	return out, err
}

// execChecked runs the operator and, when requested, validates the output
// invariants.
func (ex *executor) execChecked(p *query.Plan) (*pl.Relation, opMeta, error) {
	out, meta, err := ex.execOp(p)
	if err != nil {
		return nil, meta, err
	}
	if ex.opts.Validate {
		if err := out.Validate(ex.net); err != nil {
			return nil, meta, fmt.Errorf("engine: invariant violation after %s: %w", p.String(), err)
		}
		if err := ex.net.Validate(); err != nil {
			return nil, meta, fmt.Errorf("engine: network invariant violation after %s: %w", p.String(), err)
		}
	}
	return out, meta, nil
}

func (ex *executor) execOp(p *query.Plan) (*pl.Relation, opMeta, error) {
	switch p.Op {
	case query.OpScan:
		out, base, err := ex.scan(p.Atom)
		return out, opMeta{kind: "scan", rowsIn: base}, err
	case query.OpProject:
		if p.Left.Op == query.OpScan && ex.canStreamScan(p.Left.Atom) {
			// Bounded-memory grounding: the scan drives the project as an
			// iterator instead of materializing its output relation first.
			// The project sees the same tuples in the same order, so the
			// result is byte-identical to the materialized path.
			attrs, it, rowsIn, err := ex.scanIter(p.Left.Atom)
			if err != nil {
				return nil, opMeta{kind: "project"}, err
			}
			out, err := pl.ProjectStreamCtx(ex.ec, attrs, it, p.Cols, ex.net)
			return out, opMeta{kind: "project", rowsIn: *rowsIn}, err
		}
		in, err := ex.exec(p.Left)
		if err != nil {
			return nil, opMeta{kind: "project"}, err
		}
		out, err := pl.ProjectCtx(ex.ec, in, p.Cols, ex.net)
		return out, opMeta{kind: "project", rowsIn: in.Len()}, err
	case query.OpJoin:
		meta := opMeta{kind: "join"}
		left, err := ex.exec(p.Left)
		if err != nil {
			return nil, meta, err
		}
		right, err := ex.exec(p.Right)
		if err != nil {
			return nil, meta, err
		}
		meta.rowsIn = left.Len() + right.Len()
		joined, conditioned, err := pl.SafeJoinCtx(ex.ec, left, right, ex.net)
		if err != nil {
			return nil, meta, err
		}
		meta.conditioned = conditioned
		ex.stats.OffendingTuples += conditioned
		ex.stats.PerJoin = append(ex.stats.PerJoin, core.JoinStat{
			Join:        fmt.Sprintf("%s ⋈ %s", p.Left.String(), p.Right.String()),
			Conditioned: conditioned,
		})
		if conditioned > 0 && ex.opts.Strategy == core.SafePlanOnly {
			return nil, meta, fmt.Errorf("%w: join %s ⋈ %s required conditioning %d offending tuples",
				ErrNotDataSafe, p.Left.String(), p.Right.String(), conditioned)
		}
		return joined, meta, nil
	default:
		return nil, opMeta{}, fmt.Errorf("engine: unknown plan operator %d", p.Op)
	}
}

// scanPattern is an atom's compiled binding pattern: the selections implied
// by constant arguments and repeated variables, and the projection onto the
// atom's distinct variables.
type scanPattern struct {
	eqs    []struct{ pos, with int }
	consts []struct {
		pos int
		val tuple.Value
	}
	outCols tuple.Schema
	outPos  []int
}

func compileScanPattern(a *query.Atom) scanPattern {
	var sp scanPattern
	firstPos := make(map[string]int)
	for i, arg := range a.Args {
		if !arg.IsVar() {
			sp.consts = append(sp.consts, struct {
				pos int
				val tuple.Value
			}{pos: i, val: arg.Const})
			continue
		}
		if j, seen := firstPos[arg.Var]; seen {
			sp.eqs = append(sp.eqs, struct{ pos, with int }{pos: i, with: j})
			continue
		}
		firstPos[arg.Var] = i
		sp.outCols = append(sp.outCols, arg.Var)
		sp.outPos = append(sp.outPos, i)
	}
	return sp
}

// matches reports whether a base row passes the pattern's selections.
func (sp *scanPattern) matches(row relation.Row) bool {
	if row.P == 0 {
		return false
	}
	for _, c := range sp.consts {
		if row.Tuple[c.pos] != c.val {
			return false
		}
	}
	for _, e := range sp.eqs {
		if row.Tuple[e.pos] != row.Tuple[e.with] {
			return false
		}
	}
	return true
}

// scan reads the atom's relation, applies the selections implied by constant
// arguments and repeated variables, and projects onto the atom's distinct
// variables. Under FullNetwork every uncertain tuple is conditioned
// immediately, making the whole evaluation intensional. The int result is
// the base relation's cardinality (the scan's rows-in).
func (ex *executor) scan(a *query.Atom) (*pl.Relation, int, error) {
	rel, err := ex.db.Relation(a.Pred)
	if err != nil {
		return nil, 0, err
	}
	if len(rel.Attrs) != len(a.Args) {
		return nil, 0, fmt.Errorf("engine: atom %s has %d arguments, relation has %d attributes", a.String(), len(a.Args), len(rel.Attrs))
	}
	sp := compileScanPattern(a)
	out := &pl.Relation{Attrs: sp.outCols}
	outRow := make([]int, len(rel.Rows))
	chk := core.Check{EC: ex.ec}
	for ri, row := range rel.Rows {
		if err := chk.Tick(); err != nil {
			return nil, len(rel.Rows), err
		}
		outRow[ri] = -1
		if !sp.matches(row) {
			continue
		}
		outRow[ri] = len(out.Tuples)
		out.Tuples = append(out.Tuples, pl.Tuple{
			Vals: row.Tuple.Project(sp.outPos),
			P:    row.P,
			Lin:  aonet.Epsilon,
		})
	}
	if err := ex.ec.ChargeRows(out.Len()); err != nil {
		return nil, len(rel.Rows), err
	}
	if ex.opts.Strategy == core.FullNetwork {
		for i := range out.Tuples {
			if out.Tuples[i].P < 1 {
				if err := pl.CondCtx(ex.ec, out, i, ex.net); err != nil {
					return nil, len(rel.Rows), err
				}
			}
		}
	}
	if err := ex.applyEvidence(a.Pred, rel, outRow, out); err != nil {
		return nil, len(rel.Rows), err
	}
	return out, len(rel.Rows), nil
}

// canStreamScan reports whether the scan of atom a may drive its consumer as
// an iterator instead of a materialized relation: bounded-memory execution
// only, and only when nothing needs to mutate the scanned tuples in place —
// FullNetwork conditions every uncertain tuple at the scan, and evidence
// pins lineage nodes onto specific scan rows.
func (ex *executor) canStreamScan(a *query.Atom) bool {
	return ex.ec.MemBudget() > 0 &&
		ex.opts.Strategy != core.FullNetwork &&
		len(ex.evidenceByRel[a.Pred]) == 0
}

// scanIter is scan as a stream: it yields the same tuples in the same base
// row order without building the output relation. The returned counter
// tracks rows emitted so far (the consumer's rows-in after the stream is
// drained); rows are charged against the budget as they are emitted, so the
// charged total matches the materialized scan's.
func (ex *executor) scanIter(a *query.Atom) (tuple.Schema, pl.Iterator, *int, error) {
	rel, err := ex.db.Relation(a.Pred)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(rel.Attrs) != len(a.Args) {
		return nil, nil, nil, fmt.Errorf("engine: atom %s has %d arguments, relation has %d attributes", a.String(), len(a.Args), len(rel.Attrs))
	}
	sp := compileScanPattern(a)
	rows := new(int)
	ri := 0
	chk := core.Check{EC: ex.ec}
	it := pl.IterFunc(func() (pl.Tuple, bool, error) {
		for ; ri < len(rel.Rows); ri++ {
			if err := chk.Tick(); err != nil {
				return pl.Tuple{}, false, err
			}
			row := rel.Rows[ri]
			if !sp.matches(row) {
				continue
			}
			if err := ex.ec.ChargeRows(1); err != nil {
				return pl.Tuple{}, false, err
			}
			*rows++
			ri++
			return pl.Tuple{Vals: row.Tuple.Project(sp.outPos), P: row.P, Lin: aonet.Epsilon}, true, nil
		}
		return pl.Tuple{}, false, nil
	})
	return sp.outCols, it, rows, nil
}

// applyEvidence conditions the scanned relation on the observations for
// this predicate: observed tuples get a lineage node pinned to the observed
// value during inference. outRow maps base-relation row indexes to scan
// output indexes (-1 when filtered out by the atom's selections — such
// tuples are independent of the answers, so only the zero-probability check
// applies).
func (ex *executor) applyEvidence(pred string, rel *relation.Relation, outRow []int, out *pl.Relation) error {
	items := ex.evidenceByRel[pred]
	if len(items) == 0 {
		return nil
	}
	for _, idx := range items {
		ev := ex.opts.Evidence[idx]
		found := -1
		for ri, row := range rel.Rows {
			if row.Tuple.Equal(ev.Vals) {
				found = ri
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("engine: evidence tuple %v not in relation %s", ev.Vals, pred)
		}
		ex.evidenceMatched[idx] = true
		p := rel.Rows[found].P
		if p >= 1 && !ev.Present {
			return fmt.Errorf("engine: evidence asserts certain tuple %v of %s absent (probability zero)", ev.Vals, pred)
		}
		if p <= 0 && ev.Present {
			return fmt.Errorf("engine: evidence asserts impossible tuple %v of %s present (probability zero)", ev.Vals, pred)
		}
		if p >= 1 || p <= 0 {
			continue // the observation is already certain
		}
		oi := outRow[found]
		if oi < 0 {
			continue // filtered out by the atom's selections: independent of the answers
		}
		if err := pl.CondCtx(ex.ec, out, oi, ex.net); err != nil {
			return err
		}
		ex.evidenceNodes[out.Tuples[oi].Lin] = ev.Present
	}
	return nil
}
