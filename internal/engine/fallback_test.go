// External test package so these tests can use internal/crosscheck, which
// itself imports engine (adversarial tests below build on its generator and
// possible-world oracle).
package engine_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/inference"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// hardDB builds an instance whose partial-lineage network is dense: every
// R tuple joins every S tuple group, defeating both the expansion budget and
// narrow elimination limits when they are set low.
func hardDB(t *testing.T, n int) (*relation.Database, *query.Query, *query.Plan) {
	t.Helper()
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	s := relation.New("S", "a", "b")
	tt := relation.New("T", "b")
	for x := 1; x <= n; x++ {
		r.MustAdd(tuple.Ints(int64(x)), 0.5)
		tt.MustAdd(tuple.Ints(int64(x)), 0.5)
		for y := 1; y <= n; y++ {
			s.MustAdd(tuple.Ints(int64(x), int64(y)), 0.5)
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	q := query.MustParse("q :- R(a), S(a, b), T(b)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		t.Fatal(err)
	}
	return db, q, plan
}

func TestNoFallbackSurfacesTooWide(t *testing.T) {
	db, q, plan := hardDB(t, 10)
	opts := engine.Options{
		Strategy:    core.PartialLineage,
		NoFallback:  true,
		NoExpansion: true,
		Inference:   inference.Options{MaxFactorVars: 4, NoConditioning: true},
	}
	_, err := engine.Evaluate(db, q, plan, opts)
	if !errors.Is(err, inference.ErrTooWide) {
		t.Errorf("expected ErrTooWide, got %v", err)
	}
}

func TestSamplingFallbackApproximates(t *testing.T) {
	db, q, plan := hardDB(t, 9)
	exact, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	// Forward-sampling fallback: expansion disabled, VE too narrow.
	approx, err := engine.Evaluate(db, q, plan, engine.Options{
		Strategy:    core.PartialLineage,
		NoExpansion: true,
		Inference:   inference.Options{MaxFactorVars: 4, NoConditioning: true},
		Samples:     200000,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx.Stats.Approximate {
		t.Fatal("fallback not flagged approximate")
	}
	if math.Abs(approx.BoolProb()-exact.BoolProb()) > 0.02 {
		t.Errorf("forward-sampling fallback %g vs exact %g", approx.BoolProb(), exact.BoolProb())
	}
	// Karp–Luby-on-expansion fallback: expansion succeeds, solver budget
	// trips, VE too narrow.
	kl, err := engine.Evaluate(db, q, plan, engine.Options{
		Strategy:    core.PartialLineage,
		ExactBudget: 1,
		Inference:   inference.Options{MaxFactorVars: 4, NoConditioning: true},
		Samples:     200000,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !kl.Stats.Approximate {
		t.Fatal("KL fallback not flagged approximate")
	}
	if math.Abs(kl.BoolProb()-exact.BoolProb()) > 0.02 {
		t.Errorf("Karp–Luby fallback %g vs exact %g", kl.BoolProb(), exact.BoolProb())
	}
}

func TestDNFBudgetFallback(t *testing.T) {
	db, q, plan := hardDB(t, 9)
	exact, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := engine.Evaluate(db, q, plan, engine.Options{
		Strategy:    core.DNFLineage,
		ExactBudget: 1,
		Samples:     200000,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !limited.Stats.Approximate {
		t.Fatal("budget fallback not flagged approximate")
	}
	if math.Abs(limited.BoolProb()-exact.BoolProb()) > 0.02 {
		t.Errorf("budgeted %g vs exact %g", limited.BoolProb(), exact.BoolProb())
	}
	// With NoFallback the budget error surfaces instead.
	_, err = engine.Evaluate(db, q, plan, engine.Options{Strategy: core.DNFLineage, ExactBudget: 1, NoFallback: true})
	if err == nil {
		t.Error("expected budget error with NoFallback")
	}
}

func TestSkipInference(t *testing.T) {
	db, q, plan := hardDB(t, 6)
	res, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.PartialLineage, SkipInference: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("SkipInference produced %d rows", len(res.Rows))
	}
	if res.Stats.OffendingTuples == 0 || res.Stats.NetworkNodes <= 1 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

func TestEvaluateErrors(t *testing.T) {
	db := relation.NewDatabase()
	q := query.MustParse("q :- R(a)")
	plan, err := query.LeftDeepPlan(q, []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	// Missing relation.
	if _, err := engine.Evaluate(db, q, plan, engine.Options{}); err == nil {
		t.Error("missing relation accepted")
	}
	if _, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.DNFLineage}); err == nil {
		t.Error("missing relation accepted by grounding")
	}
	// Arity mismatch.
	r := relation.New("R", "a", "b")
	r.MustAdd(tuple.Ints(1, 2), 0.5)
	db.AddRelation(r)
	if _, err := engine.Evaluate(db, q, plan, engine.Options{}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.DNFLineage}); err == nil {
		t.Error("arity mismatch accepted by grounding")
	}
	// Unknown strategy value.
	if _, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}
