package engine

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Grounding is the complete DNF lineage of a query (Definition 3.5), split
// per answer (head binding). Variables are assigned to input tuples lazily;
// tuples with probability 1 never receive a variable (their literal is
// constantly true) and tuples with probability 0 never ground.
type Grounding struct {
	Attrs   []string
	Answers []GroundedAnswer
	Probs   []float64 // probability of each lineage variable
	// Sources maps each lineage variable back to the base tuple it stands
	// for: Sources[v] is the relation name and row index whose presence
	// event variable v encodes. Incremental maintenance uses it to translate
	// a (relation, row) prob-update into a variable re-weight.
	Sources []VarSource
}

// VarSource identifies the base tuple behind one lineage variable.
type VarSource struct {
	Rel string
	Row int
}

// GroundedAnswer pairs one head binding with its lineage.
type GroundedAnswer struct {
	Vals tuple.Tuple
	F    *lineage.DNF
}

// VarCount returns the number of lineage variables allocated.
func (g *Grounding) VarCount() int { return len(g.Probs) }

// ClauseCount returns the total number of clauses across answers.
func (g *Grounding) ClauseCount() int {
	n := 0
	for i := range g.Answers {
		n += len(g.Answers[i].F.Clauses)
	}
	return n
}

// Ground computes the full lineage of q over db, matching atoms in the
// order the plan scans them (left-deep join order). GroundCtx is the
// cancellable variant.
func Ground(db *relation.Database, q *query.Query, plan *query.Plan) (*Grounding, error) {
	return GroundCtx(nil, db, q, plan)
}

// GroundCtx is Ground under an ExecContext: the grounding recursion polls
// cancellation every core.CheckInterval extensions and charges each clause
// against the row budget, so a combinatorial grounding aborts cleanly.
func GroundCtx(ec *core.ExecContext, db *relation.Database, q *query.Query, plan *query.Plan) (*Grounding, error) {
	var atoms []*query.Atom
	plan.Walk(func(p *query.Plan) {
		if p.Op == query.OpScan {
			atoms = append(atoms, p.Atom)
		}
	})
	if len(atoms) != len(q.Atoms) {
		return nil, fmt.Errorf("engine: plan scans %d atoms, query has %d", len(atoms), len(q.Atoms))
	}
	g := &grounder{
		db:     db,
		q:      q,
		atoms:  atoms,
		varID:  make(map[varKey]lineage.Var),
		byHead: make(map[string]int),
		chk:    core.Check{EC: ec},
		ec:     ec,
	}
	if err := g.prepare(); err != nil {
		return nil, err
	}
	if err := g.recurse(0, make(map[string]tuple.Value), make([]lineage.Var, 0, len(atoms))); err != nil {
		return nil, err
	}
	sources := make([]VarSource, len(g.probs))
	for k, v := range g.varID {
		sources[v] = VarSource{Rel: k.pred, Row: k.row}
	}
	out := &Grounding{Attrs: q.Head, Answers: g.answers, Probs: g.probs, Sources: sources}
	return out, nil
}

type varKey struct {
	pred string
	row  int
}

type atomPlan struct {
	rel       *relation.Relation
	args      []query.Term
	boundVars []string // variables bound by earlier atoms, in arg order
	boundPos  []int    // their positions in this atom
	index     map[string][]int
	newVarPos map[string]int // first position of each newly bound variable
}

type grounder struct {
	db      *relation.Database
	q       *query.Query
	atoms   []*query.Atom
	plans   []atomPlan
	varID   map[varKey]lineage.Var
	probs   []float64
	answers []GroundedAnswer
	byHead  map[string]int
	chk     core.Check
	ec      *core.ExecContext
}

// prepare compiles the binding pattern of each atom and builds a hash index
// keyed on the positions bound by earlier atoms plus constants and repeated
// variables.
func (g *grounder) prepare() error {
	bound := make(map[string]bool)
	for _, a := range g.atoms {
		rel, err := g.db.Relation(a.Pred)
		if err != nil {
			return err
		}
		if len(rel.Attrs) != len(a.Args) {
			return fmt.Errorf("engine: atom %s has %d arguments, relation has %d attributes", a.String(), len(a.Args), len(rel.Attrs))
		}
		ap := atomPlan{rel: rel, args: a.Args, newVarPos: make(map[string]int)}
		seenHere := make(map[string]int)
		type fixed struct {
			pos int
			val tuple.Value
		}
		var fixedChecks []fixed
		type eq struct{ pos, with int }
		var eqChecks []eq
		for i, arg := range a.Args {
			switch {
			case !arg.IsVar():
				fixedChecks = append(fixedChecks, fixed{pos: i, val: arg.Const})
			case bound[arg.Var]:
				ap.boundVars = append(ap.boundVars, arg.Var)
				ap.boundPos = append(ap.boundPos, i)
			default:
				if j, ok := seenHere[arg.Var]; ok {
					eqChecks = append(eqChecks, eq{pos: i, with: j})
				} else {
					seenHere[arg.Var] = i
					ap.newVarPos[arg.Var] = i
				}
			}
		}
		ap.index = make(map[string][]int)
		for ri, row := range rel.Rows {
			if row.P == 0 {
				continue
			}
			ok := true
			for _, f := range fixedChecks {
				if row.Tuple[f.pos] != f.val {
					ok = false
					break
				}
			}
			if ok {
				for _, e := range eqChecks {
					if row.Tuple[e.pos] != row.Tuple[e.with] {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			ap.index[row.Tuple.KeyAt(ap.boundPos)] = append(ap.index[row.Tuple.KeyAt(ap.boundPos)], ri)
		}
		for v := range ap.newVarPos {
			bound[v] = true
		}
		g.plans = append(g.plans, ap)
	}
	return nil
}

// recurse extends the partial grounding at atom depth with every matching
// row. clause carries the lineage variables of uncertain matched rows.
func (g *grounder) recurse(depth int, binding map[string]tuple.Value, clause []lineage.Var) error {
	if depth == len(g.plans) {
		if err := g.ec.ChargeRows(1); err != nil {
			return err
		}
		vals := make(tuple.Tuple, len(g.q.Head))
		for i, h := range g.q.Head {
			vals[i] = binding[h]
		}
		k := vals.Key()
		ai, ok := g.byHead[k]
		if !ok {
			ai = len(g.answers)
			g.byHead[k] = ai
			g.answers = append(g.answers, GroundedAnswer{Vals: vals, F: &lineage.DNF{}})
		}
		g.answers[ai].F.Add(lineage.NewClause(clause...))
		return nil
	}
	ap := &g.plans[depth]
	key := make(tuple.Tuple, len(ap.boundPos))
	for i, v := range ap.boundVars {
		key[i] = binding[v]
	}
	for _, ri := range ap.index[key.Key()] {
		if err := g.chk.Tick(); err != nil {
			return err
		}
		row := ap.rel.Rows[ri]
		for v, pos := range ap.newVarPos {
			binding[v] = row.Tuple[pos]
		}
		next := clause
		if row.P < 1 {
			next = append(clause, g.varFor(ap.rel.Name, ri, row.P))
		}
		if err := g.recurse(depth+1, binding, next); err != nil {
			return err
		}
	}
	for v := range ap.newVarPos {
		delete(binding, v)
	}
	return nil
}

func (g *grounder) varFor(pred string, row int, p float64) lineage.Var {
	k := varKey{pred: pred, row: row}
	if v, ok := g.varID[k]; ok {
		return v
	}
	v := lineage.Var(len(g.probs))
	g.varID[k] = v
	g.probs = append(g.probs, p)
	return v
}

// evalLineage implements the DNFLineage and MonteCarlo strategies through
// the shared pipeline driver: build = full grounding, one inference job per
// answer, assemble = row materialization in answer order. Approximate paths
// seed deterministically per answer, so parallel and sequential runs agree.
func evalLineage(ec *core.ExecContext, db *relation.Database, q *query.Query, plan *query.Plan, opts Options) (*Result, error) {
	// Grounded answers are built in head-variable order; Attrs must say so
	// (plan.Attrs() can be a permutation of the head, e.g. q(a,b) :- R(b,a)).
	res := &Result{Attrs: append([]string(nil), q.Head...)}
	res.Stats.Strategy = opts.Strategy
	if opts.Strategy == core.MonteCarlo {
		res.Stats.Approximate = true
	}
	// All answers share one variable space (Grounding.Probs), so the exact
	// solver can share Shannon subproblems across answers through one memo
	// table; results are bit-identical with and without it. With a circuit
	// cache attached the compiled-circuit evaluator replaces the memoized
	// solver outright (also bit-identical — the compiler replays the same
	// recursion), so the memo table would only duplicate work.
	var lm *lineage.Memo
	if !opts.NoMemo && opts.Strategy == core.DNFLineage && opts.circuitCache() == nil {
		lm = lineage.NewMemo(lineage.MemoConfig{NoIntern: opts.NoIntern})
	}
	if opts.circuitCache() != nil && opts.Strategy == core.DNFLineage {
		opts.circuitStats = &lineage.CircuitStats{}
	}
	var g *Grounding
	build := func() (int, error) {
		span := ec.StartOp(0)
		var err error
		g, err = GroundCtx(ec, db, q, plan)
		if err != nil {
			ec.FinishOp(span, 0, core.OpStat{}, true)
			return 0, err
		}
		res.Stats.LineageClauses = g.ClauseCount()
		res.Stats.LineageVars = g.VarCount()
		ec.FinishOp(span, 0, core.OpStat{
			Op:     "ground " + plan.String(),
			Kind:   "ground",
			Rows:   len(g.Answers),
			Detail: fmt.Sprintf("%d clauses over %d variables", g.ClauseCount(), g.VarCount()),
		}, false)
		// A single answer cannot share subproblems across answers; the
		// solver's per-call memo already covers repeats within it.
		if len(g.Answers) <= 1 {
			lm = nil
		}
		return len(g.Answers), nil
	}
	infer := func(i int) confidence {
		probOf := func(v lineage.Var) float64 { return g.Probs[v] }
		f := g.Answers[i].F
		sample := func(reason string) confidence {
			rng := rand.New(rand.NewSource(opts.Seed ^ (int64(i)+1)*0x7f4a7c15))
			p, err := lineage.KarpLubyCtx(ec, f, probOf, opts.klSamples(len(f.Clauses)), rng)
			if err != nil {
				return confidence{err: err}
			}
			return confidence{p: p, approx: true, backend: "karp-luby", reason: reason}
		}
		if opts.Strategy == core.MonteCarlo {
			return sample("Karp–Luby sampling requested (mc strategy)")
		}
		var (
			p       float64
			err     error
			backend = "shannon"
		)
		if cache := opts.circuitCache(); cache != nil {
			p, err = lineage.CircuitProbCtx(ec, f, probOf, opts.exactBudget(), cache, opts.circuitStats)
			backend = "circuit"
		} else {
			p, err = lineage.ProbMemoCtx(ec, f, probOf, opts.exactBudget(), lm)
		}
		if errors.Is(err, lineage.ErrBudget) && !opts.NoFallback {
			return sample("exact Shannon-expansion budget exhausted on the DNF lineage; Karp–Luby sampling")
		}
		if err != nil {
			return confidence{err: err}
		}
		return confidence{p: p, backend: backend}
	}
	assemble := func(conf []confidence) error {
		recordInference(ec, res.Stats.InferenceTime, conf, func(i int) string {
			if len(g.Answers[i].Vals) == 0 {
				return "answer q()"
			}
			return "answer " + g.Answers[i].Vals.String()
		})
		for i, ans := range g.Answers {
			if conf[i].approx {
				res.Stats.Approximate = true
			}
			res.Rows = append(res.Rows, Row{Vals: ans.Vals, P: conf[i].p, Lo: conf[i].p, Hi: conf[i].p})
		}
		res.Stats.Answers = len(res.Rows)
		return nil
	}
	if err := runPipeline(ec, res, build, infer, assemble); err != nil {
		return nil, err
	}
	res.Stats.Operators = ec.Ops()
	ms := lm.Stats()
	res.Stats.MemoHits = ms.Hits
	res.Stats.MemoMisses = ms.Misses
	res.Stats.MemoEvictions = ms.Evictions
	res.Stats.InternHits = ms.InternHits
	res.Stats.CircuitCompiles, res.Stats.CircuitHits, res.Stats.CircuitEvals = opts.circuitStats.Snapshot()
	return res, nil
}
