package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Grounding is the complete DNF lineage of a query (Definition 3.5), split
// per answer (head binding). Variables are assigned to input tuples lazily;
// tuples with probability 1 never receive a variable (their literal is
// constantly true) and tuples with probability 0 never ground.
type Grounding struct {
	Attrs   []string
	Answers []GroundedAnswer
	Probs   []float64 // probability of each lineage variable
}

// GroundedAnswer pairs one head binding with its lineage.
type GroundedAnswer struct {
	Vals tuple.Tuple
	F    *lineage.DNF
}

// VarCount returns the number of lineage variables allocated.
func (g *Grounding) VarCount() int { return len(g.Probs) }

// ClauseCount returns the total number of clauses across answers.
func (g *Grounding) ClauseCount() int {
	n := 0
	for i := range g.Answers {
		n += len(g.Answers[i].F.Clauses)
	}
	return n
}

// Ground computes the full lineage of q over db, matching atoms in the
// order the plan scans them (left-deep join order).
func Ground(db *relation.Database, q *query.Query, plan *query.Plan) (*Grounding, error) {
	var atoms []*query.Atom
	plan.Walk(func(p *query.Plan) {
		if p.Op == query.OpScan {
			atoms = append(atoms, p.Atom)
		}
	})
	if len(atoms) != len(q.Atoms) {
		return nil, fmt.Errorf("engine: plan scans %d atoms, query has %d", len(atoms), len(q.Atoms))
	}
	g := &grounder{
		db:     db,
		q:      q,
		atoms:  atoms,
		varID:  make(map[varKey]lineage.Var),
		byHead: make(map[string]int),
	}
	if err := g.prepare(); err != nil {
		return nil, err
	}
	g.recurse(0, make(map[string]tuple.Value), make([]lineage.Var, 0, len(atoms)))
	out := &Grounding{Attrs: q.Head, Answers: g.answers, Probs: g.probs}
	return out, nil
}

type varKey struct {
	pred string
	row  int
}

type atomPlan struct {
	rel       *relation.Relation
	args      []query.Term
	boundVars []string // variables bound by earlier atoms, in arg order
	boundPos  []int    // their positions in this atom
	index     map[string][]int
	newVarPos map[string]int // first position of each newly bound variable
}

type grounder struct {
	db      *relation.Database
	q       *query.Query
	atoms   []*query.Atom
	plans   []atomPlan
	varID   map[varKey]lineage.Var
	probs   []float64
	answers []GroundedAnswer
	byHead  map[string]int
}

// prepare compiles the binding pattern of each atom and builds a hash index
// keyed on the positions bound by earlier atoms plus constants and repeated
// variables.
func (g *grounder) prepare() error {
	bound := make(map[string]bool)
	for _, a := range g.atoms {
		rel, err := g.db.Relation(a.Pred)
		if err != nil {
			return err
		}
		if len(rel.Attrs) != len(a.Args) {
			return fmt.Errorf("engine: atom %s has %d arguments, relation has %d attributes", a.String(), len(a.Args), len(rel.Attrs))
		}
		ap := atomPlan{rel: rel, args: a.Args, newVarPos: make(map[string]int)}
		seenHere := make(map[string]int)
		type fixed struct {
			pos int
			val tuple.Value
		}
		var fixedChecks []fixed
		type eq struct{ pos, with int }
		var eqChecks []eq
		for i, arg := range a.Args {
			switch {
			case !arg.IsVar():
				fixedChecks = append(fixedChecks, fixed{pos: i, val: arg.Const})
			case bound[arg.Var]:
				ap.boundVars = append(ap.boundVars, arg.Var)
				ap.boundPos = append(ap.boundPos, i)
			default:
				if j, ok := seenHere[arg.Var]; ok {
					eqChecks = append(eqChecks, eq{pos: i, with: j})
				} else {
					seenHere[arg.Var] = i
					ap.newVarPos[arg.Var] = i
				}
			}
		}
		ap.index = make(map[string][]int)
		for ri, row := range rel.Rows {
			if row.P == 0 {
				continue
			}
			ok := true
			for _, f := range fixedChecks {
				if row.Tuple[f.pos] != f.val {
					ok = false
					break
				}
			}
			if ok {
				for _, e := range eqChecks {
					if row.Tuple[e.pos] != row.Tuple[e.with] {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			ap.index[row.Tuple.KeyAt(ap.boundPos)] = append(ap.index[row.Tuple.KeyAt(ap.boundPos)], ri)
		}
		for v := range ap.newVarPos {
			bound[v] = true
		}
		g.plans = append(g.plans, ap)
	}
	return nil
}

// recurse extends the partial grounding at atom depth with every matching
// row. clause carries the lineage variables of uncertain matched rows.
func (g *grounder) recurse(depth int, binding map[string]tuple.Value, clause []lineage.Var) {
	if depth == len(g.plans) {
		vals := make(tuple.Tuple, len(g.q.Head))
		for i, h := range g.q.Head {
			vals[i] = binding[h]
		}
		k := vals.Key()
		ai, ok := g.byHead[k]
		if !ok {
			ai = len(g.answers)
			g.byHead[k] = ai
			g.answers = append(g.answers, GroundedAnswer{Vals: vals, F: &lineage.DNF{}})
		}
		g.answers[ai].F.Add(lineage.NewClause(clause...))
		return
	}
	ap := &g.plans[depth]
	key := make(tuple.Tuple, len(ap.boundPos))
	for i, v := range ap.boundVars {
		key[i] = binding[v]
	}
	for _, ri := range ap.index[key.Key()] {
		row := ap.rel.Rows[ri]
		for v, pos := range ap.newVarPos {
			binding[v] = row.Tuple[pos]
		}
		next := clause
		if row.P < 1 {
			next = append(clause, g.varFor(ap.rel.Name, ri, row.P))
		}
		g.recurse(depth+1, binding, next)
	}
	for v := range ap.newVarPos {
		delete(binding, v)
	}
}

func (g *grounder) varFor(pred string, row int, p float64) lineage.Var {
	k := varKey{pred: pred, row: row}
	if v, ok := g.varID[k]; ok {
		return v
	}
	v := lineage.Var(len(g.probs))
	g.varID[k] = v
	g.probs = append(g.probs, p)
	return v
}

// evalLineage implements the DNFLineage and MonteCarlo strategies: ground
// the full lineage, then compute each answer's confidence.
func evalLineage(db *relation.Database, q *query.Query, plan *query.Plan, opts Options) (*Result, error) {
	res := &Result{Attrs: plan.Attrs()}
	res.Stats.Strategy = opts.Strategy
	var g *Grounding
	err := timed(&res.Stats.PlanTime, func() error {
		var err error
		g, err = Ground(db, q, plan)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Stats.LineageClauses = g.ClauseCount()
	res.Stats.LineageVars = g.VarCount()
	probOf := func(v lineage.Var) float64 { return g.Probs[v] }
	if opts.Strategy == core.MonteCarlo {
		res.Stats.Approximate = true
	}
	err = timed(&res.Stats.InferenceTime, func() error {
		type confidence struct {
			p      float64
			approx bool
			err    error
		}
		// confidenceOf computes one answer's probability; approximate paths
		// seed deterministically per answer so parallel and sequential runs
		// agree.
		confidenceOf := func(i int) confidence {
			f := g.Answers[i].F
			sample := func() float64 {
				rng := rand.New(rand.NewSource(opts.Seed ^ (int64(i)+1)*0x7f4a7c15))
				return lineage.KarpLuby(f, probOf, opts.samples(), rng)
			}
			if opts.Strategy == core.MonteCarlo {
				return confidence{p: sample(), approx: true}
			}
			p, err := lineage.ProbBudget(f, probOf, opts.exactBudget())
			if errors.Is(err, lineage.ErrBudget) && !opts.NoFallback {
				return confidence{p: sample(), approx: true}
			}
			if err != nil {
				return confidence{err: err}
			}
			return confidence{p: p}
		}
		out := make([]confidence, len(g.Answers))
		if opts.Parallelism > 1 && len(g.Answers) > 1 {
			jobs := make(chan int)
			var wg sync.WaitGroup
			workers := opts.Parallelism
			if workers > len(g.Answers) {
				workers = len(g.Answers)
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range jobs {
						out[i] = confidenceOf(i)
					}
				}()
			}
			for i := range g.Answers {
				jobs <- i
			}
			close(jobs)
			wg.Wait()
		} else {
			for i := range g.Answers {
				out[i] = confidenceOf(i)
			}
		}
		for i, ans := range g.Answers {
			if out[i].err != nil {
				return out[i].err
			}
			if out[i].approx {
				res.Stats.Approximate = true
			}
			res.Rows = append(res.Rows, Row{Vals: ans.Vals, P: out[i].p})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Answers = len(res.Rows)
	return res, nil
}
