package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/query"
	"repro/internal/relation"
)

// Materialized is a query result kept patchable under database mutations:
// the full DNF lineage of the query (one grounding over a shared variable
// space), the probability of every lineage variable, and the solved
// confidence of every answer.
//
// The representation is the grounded lineage regardless of the strategy the
// caller evaluates with elsewhere: exact strategies solve each answer with
// the Shannon solver (bit-identical to Strategy=DNFLineage), MonteCarlo with
// Karp–Luby under the engine's per-answer seeding (bit-identical to
// Strategy=MonteCarlo at the same Seed). Probability changes never alter the
// lineage's *structure* — which rows join, which clauses exist, which rows
// carry variables — as long as they stay inside the open interval (0,1):
// rows with P=0 are skipped when the grounder indexes a relation, and rows
// with P=1 ground without a variable. PatchProbs exploits exactly that
// invariant; everything else (insert, delete, a probability crossing 0 or 1)
// is structural and must go through Recompute.
//
// A Materialized is not safe for concurrent use; callers serialize
// PatchProbs/Recompute/Result externally (the pdb facade does).
type Materialized struct {
	q    *query.Query
	plan *query.Plan
	opts Options

	g        *Grounding
	varOf    map[VarSource]lineage.Var
	deps     map[lineage.Var][]int // variable -> answer indexes mentioning it
	conf     []float64             // solved probability per answer
	memo     *lineage.Memo         // retained across refreshes; Reset on patch
	circuits *lineage.CircuitCache // compiled answer circuits; Reset on rebuild only

	// PatchedAnswers and RecomputedAll count what refreshes did, for the
	// caller's metrics.
	PatchedAnswers int
	RecomputedAll  int
}

// ProbPatch is one prob-update delta addressed by base tuple position.
// OldP is the probability the caller believes the row had; PatchProbs
// rejects the patch as structural if it disagrees with the materialized
// state, so a missed delta can never silently desynchronize the view.
type ProbPatch struct {
	Rel        string
	Row        int
	OldP, NewP float64
}

// patchable reports whether the patch preserves grounding structure: both
// endpoints strictly inside (0,1).
func (p ProbPatch) patchable() bool {
	return p.OldP > 0 && p.OldP < 1 && p.NewP > 0 && p.NewP < 1
}

// Materialize grounds and solves q over db with the given plan, returning a
// handle that can be patched under prob-updates and recomputed under
// structural change. Unsupported options (evidence conditioning) are
// rejected; budget, samples, (ε,δ), seed, memo and intern knobs all apply.
func Materialize(db *relation.Database, q *query.Query, plan *query.Plan, opts Options) (*Materialized, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Evidence) > 0 {
		return nil, fmt.Errorf("engine: materialized views do not support evidence conditioning")
	}
	if err := opts.validateEpsDelta(); err != nil {
		return nil, err
	}
	m := &Materialized{q: q, plan: plan, opts: opts}
	if !opts.NoMemo {
		m.memo = lineage.NewMemo(lineage.MemoConfig{NoIntern: opts.NoIntern})
	}
	// A view always owns a private circuit cache (never the database-shared
	// one from opts.Circuits): rebuild() must be free to drop compiled
	// structure on structural change without evicting other queries' entries.
	// Prob-update refreshes deliberately do NOT reset it — circuit structure
	// depends only on the clause set, so a patched refresh re-evaluates the
	// compiled circuits in linear time instead of re-running Shannon.
	if !opts.NoCircuit {
		m.circuits = lineage.NewCircuitCache(lineage.CircuitCacheConfig{})
	}
	if err := m.rebuild(db); err != nil {
		return nil, err
	}
	return m, nil
}

// rebuild grounds from scratch and solves every answer.
func (m *Materialized) rebuild(db *relation.Database) error {
	if err := validateBaseProbs(db, m.q); err != nil {
		return err
	}
	ec := m.execContext()
	g, err := GroundCtx(ec, db, m.q, m.plan)
	if err != nil {
		return err
	}
	m.g = g
	m.varOf = make(map[VarSource]lineage.Var, len(g.Sources))
	for v, src := range g.Sources {
		m.varOf[src] = lineage.Var(v)
	}
	m.deps = make(map[lineage.Var][]int)
	for i := range g.Answers {
		seen := make(map[lineage.Var]bool)
		for _, c := range g.Answers[i].F.Clauses {
			for _, v := range c {
				if !seen[v] {
					seen[v] = true
					m.deps[v] = append(m.deps[v], i)
				}
			}
		}
	}
	m.memo.Reset()
	// Structural change: the clause sets (and hence the circuit-cache keys)
	// may have changed, so compiled structure is dropped wholesale. Contrast
	// PatchProbs, which keeps it — values are re-derived by Eval.
	m.circuits.Reset()
	m.conf = make([]float64, len(g.Answers))
	for i := range g.Answers {
		p, err := m.solve(ec, i)
		if err != nil {
			return err
		}
		m.conf[i] = p
	}
	return nil
}

// execContext builds a fresh ExecContext for one refresh, honouring the
// materialization's budget and parallelism options.
func (m *Materialized) execContext() *core.ExecContext {
	return core.NewExecContext(nil, core.ExecConfig{
		Budget:      m.opts.Budget,
		Parallelism: m.opts.Parallelism,
		Pooling:     !m.opts.NoPool,
	})
}

// solve computes answer i's confidence from the current probability table,
// replicating evalLineage's per-answer dispatch exactly: Karp–Luby with the
// engine's per-answer seed derivation for MonteCarlo, the memoized Shannon
// solver otherwise. NoFallback semantics apply: a Shannon budget exhaustion
// falls back to sampling with the same seed an evalLineage run would use.
func (m *Materialized) solve(ec *core.ExecContext, i int) (float64, error) {
	f := m.g.Answers[i].F
	probOf := func(v lineage.Var) float64 { return m.g.Probs[v] }
	sample := func() (float64, error) {
		rng := rand.New(rand.NewSource(m.opts.Seed ^ (int64(i)+1)*0x7f4a7c15))
		return lineage.KarpLubyCtx(ec, f, probOf, m.opts.klSamples(len(f.Clauses)), rng)
	}
	if m.opts.Strategy == core.MonteCarlo {
		return sample()
	}
	// Single-answer groundings skip the shared memo in evalLineage; values
	// are bit-identical either way, so the memo is threaded unconditionally
	// here — sharing across refreshes is the point. With the circuit cache
	// enabled the compiled-circuit evaluator takes the solver's place
	// (bit-identical floats), turning every refresh re-solve after the first
	// into a linear evaluation pass.
	var (
		p   float64
		err error
	)
	if m.circuits != nil {
		p, err = lineage.CircuitProbCtx(ec, f, probOf, m.opts.exactBudget(), m.circuits, nil)
	} else {
		p, err = lineage.ProbMemoCtx(ec, f, probOf, m.opts.exactBudget(), m.memo)
	}
	if err == nil {
		return p, nil
	}
	if errors.Is(err, lineage.ErrBudget) && !m.opts.NoFallback {
		return sample()
	}
	return 0, err
}

// PatchProbs applies a batch of prob-update deltas in place. It returns
// (true, nil) when every patch was structure-preserving and the affected
// answers were re-solved; (false, nil) when at least one patch is structural
// (an endpoint at 0 or 1, or OldP disagreeing with the materialized state) —
// the view is then left completely untouched and the caller must Recompute.
//
// A patched refresh is bit-identical to Materialize from scratch on the
// mutated database: the grounding is structurally unchanged, untouched
// answers keep values that from-scratch solving would reproduce bit-for-bit
// (exact solving is deterministic; sampling reuses the per-answer seed), and
// dirty answers are re-solved through the same code path.
func (m *Materialized) PatchProbs(patches []ProbPatch) (bool, error) {
	type apply struct {
		v lineage.Var
		p float64
	}
	var applies []apply
	dirty := make(map[int]bool)
	// overlay tracks the value each variable would hold after the patches
	// seen so far, so a batch carrying two consecutive updates to the same
	// row validates each OldP against its predecessor, not the base state.
	overlay := make(map[lineage.Var]float64)
	for _, p := range patches {
		if !p.patchable() {
			return false, nil
		}
		v, ok := m.varOf[VarSource{Rel: p.Rel, Row: p.Row}]
		if !ok {
			// The row never joined into any grounding; with both endpoints in
			// (0,1) it still doesn't. Nothing depends on it.
			continue
		}
		cur, seen := overlay[v]
		if !seen {
			cur = m.g.Probs[v]
		}
		if cur != p.OldP {
			return false, nil
		}
		overlay[v] = p.NewP
		applies = append(applies, apply{v: v, p: p.NewP})
		for _, ai := range m.deps[v] {
			dirty[ai] = true
		}
	}
	for _, a := range applies {
		m.g.Probs[a.v] = a.p
	}
	if len(dirty) == 0 {
		return true, nil
	}
	// Memoized Shannon values are functions of (clause fingerprint,
	// probability table); the table changed, so drop the values but keep the
	// interned fingerprints and replay the solves through them.
	m.memo.Reset()
	order := make([]int, 0, len(dirty))
	for ai := range dirty {
		order = append(order, ai)
	}
	sort.Ints(order)
	ec := m.execContext()
	for _, ai := range order {
		p, err := m.solve(ec, ai)
		if err != nil {
			return false, err
		}
		m.conf[ai] = p
		m.PatchedAnswers++
	}
	return true, nil
}

// Recompute rebuilds the view from scratch against the database's current
// contents — the fallback for structural deltas (insert, delete, probability
// endpoints at 0 or 1, or a truncated delta log).
func (m *Materialized) Recompute(db *relation.Database) error {
	if err := m.rebuild(db); err != nil {
		return err
	}
	m.RecomputedAll++
	return nil
}

// Result assembles the current answers as an engine Result (fresh copy;
// later refreshes do not mutate it).
func (m *Materialized) Result() *Result {
	res := &Result{Attrs: append([]string(nil), m.g.Attrs...)}
	res.Stats.Strategy = m.opts.Strategy
	res.Stats.Approximate = m.opts.Strategy == core.MonteCarlo
	res.Stats.LineageClauses = m.g.ClauseCount()
	res.Stats.LineageVars = m.g.VarCount()
	res.Stats.Answers = len(m.g.Answers)
	for i := range m.g.Answers {
		res.Rows = append(res.Rows, Row{Vals: m.g.Answers[i].Vals, P: m.conf[i], Lo: m.conf[i], Hi: m.conf[i]})
	}
	return res
}

// CircuitStats reports the view's circuit-cache counters: compiles and
// evictions grow on structural rebuilds, hits and evals on patched refreshes
// that re-evaluated compiled structure. The zero value is returned when the
// view was materialized with NoCircuit.
func (m *Materialized) CircuitStats() lineage.CircuitCacheStats {
	return m.circuits.Stats()
}

// Relations returns the distinct relation names the materialized query
// reads, sorted — its cache-invalidation dependency set.
func (m *Materialized) Relations() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range m.q.Atoms {
		if p := m.q.Atoms[i].Pred; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
