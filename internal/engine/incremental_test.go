package engine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// incrTestDB builds a two-relation instance whose join query is unsafe, so
// the grounded lineage has shared variables across answers.
func incrTestDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "x", "y")
	r.MustAdd(tuple.Ints(1, 1), 0.5)
	r.MustAdd(tuple.Ints(1, 2), 0.7)
	r.MustAdd(tuple.Ints(2, 2), 0.9)
	s := relation.New("S", "y")
	s.MustAdd(tuple.Ints(1), 0.4)
	s.MustAdd(tuple.Ints(2), 0.6)
	db.AddRelation(r)
	db.AddRelation(s)
	return db
}

func incrPlan(t *testing.T, q *query.Query) *query.Plan {
	t.Helper()
	order := make([]string, len(q.Atoms))
	for i := range q.Atoms {
		order[i] = q.Atoms[i].Pred
	}
	plan, err := query.LeftDeepPlan(q, order)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func mustParse(t *testing.T, text string) *query.Query {
	t.Helper()
	q, err := query.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestMaterializePatchBitIdentical: a (0,1)->(0,1) prob-update patched into
// a materialized view gives bit-identical answers to materializing from
// scratch on the mutated database — for the exact path and for the seeded
// Karp–Luby path.
func TestMaterializePatchBitIdentical(t *testing.T) {
	for _, strategy := range []core.Strategy{core.DNFLineage, core.MonteCarlo} {
		db := incrTestDB()
		q := mustParse(t, "q(x) :- R(x, y), S(y)")
		plan := incrPlan(t, q)
		opts := Options{Strategy: strategy, Samples: 2000, Seed: 42}
		m, err := Materialize(db, q, plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := db.Relation("R")
		row, old, err := rel.SetProb(tuple.Ints(1, 2), 0.25)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := m.PatchProbs([]ProbPatch{{Rel: "R", Row: row, OldP: old, NewP: 0.25}})
		if err != nil || !ok {
			t.Fatalf("PatchProbs: ok=%v err=%v", ok, err)
		}
		fresh, err := Materialize(db, q, plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, want := m.Result(), fresh.Result()
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%v: %d vs %d answers", strategy, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			if got.Rows[i].P != want.Rows[i].P {
				t.Errorf("%v answer %v: patched %v != fresh %v (diff %g)",
					strategy, got.Rows[i].Vals, got.Rows[i].P, want.Rows[i].P,
					math.Abs(got.Rows[i].P-want.Rows[i].P))
			}
		}
	}
}

// TestMaterializePatchRejectsStructural: endpoint-at-boundary updates and
// stale OldP values are refused without touching the view.
func TestMaterializePatchRejectsStructural(t *testing.T) {
	db := incrTestDB()
	q := mustParse(t, "q(x) :- R(x, y), S(y)")
	m, err := Materialize(db, q, incrPlan(t, q), Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Result()
	cases := []ProbPatch{
		{Rel: "R", Row: 0, OldP: 0.5, NewP: 1},   // crosses to certain
		{Rel: "R", Row: 0, OldP: 0.5, NewP: 0},   // crosses to impossible
		{Rel: "R", Row: 0, OldP: 0.9, NewP: 0.4}, // OldP disagrees with view
	}
	for _, p := range cases {
		ok, err := m.PatchProbs([]ProbPatch{p})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("patch %+v accepted, want structural rejection", p)
		}
	}
	after := m.Result()
	for i := range before.Rows {
		if before.Rows[i].P != after.Rows[i].P {
			t.Error("rejected patches mutated the view")
		}
	}
}

// TestMaterializeRecomputeAfterInsert: structural changes flow through
// Recompute and match a fresh materialization bit-for-bit.
func TestMaterializeRecomputeAfterInsert(t *testing.T) {
	db := incrTestDB()
	q := mustParse(t, "q(x) :- R(x, y), S(y)")
	plan := incrPlan(t, q)
	opts := Options{Strategy: core.DNFLineage}
	m, err := Materialize(db, q, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Relation("R")
	rel.MustAdd(tuple.Ints(3, 1), 0.2)
	if err := m.Recompute(db); err != nil {
		t.Fatal(err)
	}
	fresh, err := Materialize(db, q, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, want := m.Result(), fresh.Result()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%d vs %d answers", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i].P != want.Rows[i].P {
			t.Errorf("answer %v: recomputed %v != fresh %v", got.Rows[i].Vals, got.Rows[i].P, want.Rows[i].P)
		}
	}
	if m.RecomputedAll != 1 {
		t.Errorf("RecomputedAll = %d, want 1", m.RecomputedAll)
	}
}

// TestMaterializeCircuitRetention pins the circuit cache's lifecycle against
// the memo's: a value-only reset (PatchProbs re-weights probabilities and
// Resets the Shannon memo) must NOT evict compiled circuit structure — the
// dirty answers are served by hits against retained circuits — while a
// structural rebuild (Recompute) must drop it and recompile.
func TestMaterializeCircuitRetention(t *testing.T) {
	db := incrTestDB()
	q := mustParse(t, "q(x) :- R(x, y), S(y)")
	plan := incrPlan(t, q)
	m, err := Materialize(db, q, plan, Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	st := m.CircuitStats()
	if st.Compiles == 0 || st.Entries == 0 {
		t.Fatalf("materialize compiled nothing: %+v", st)
	}
	if st.Hits != 0 {
		t.Fatalf("cold materialize recorded hits: %+v", st)
	}
	base := st

	// Value-only reset: the prob-update path Resets the memo but keeps the
	// circuit cache, so re-solving the dirty answer is a hit, not a compile.
	rel, _ := db.Relation("R")
	row, old, err := rel.SetProb(tuple.Ints(1, 2), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := m.PatchProbs([]ProbPatch{{Rel: "R", Row: row, OldP: old, NewP: 0.25}})
	if err != nil || !ok {
		t.Fatalf("PatchProbs: ok=%v err=%v", ok, err)
	}
	st = m.CircuitStats()
	if st.Compiles != base.Compiles {
		t.Errorf("patched refresh recompiled: %d compiles, want %d (structure must be retained)", st.Compiles, base.Compiles)
	}
	if st.Hits == 0 {
		t.Errorf("patched refresh recorded no circuit hits: %+v", st)
	}
	if st.Entries != base.Entries {
		t.Errorf("patched refresh changed resident entries: %d, want %d", st.Entries, base.Entries)
	}

	// Structural write: Recompute rebuilds the grounding, so the cache is
	// dropped and every answer recompiles.
	rel.MustAdd(tuple.Ints(3, 1), 0.2)
	if err := m.Recompute(db); err != nil {
		t.Fatal(err)
	}
	st = m.CircuitStats()
	if st.Compiles <= base.Compiles {
		t.Errorf("structural recompute did not recompile: %d compiles, want > %d", st.Compiles, base.Compiles)
	}

	// The ablation view carries no cache at all.
	off, err := Materialize(db, q, plan, Options{Strategy: core.DNFLineage, NoCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := off.CircuitStats(); st != (lineage.CircuitCacheStats{}) {
		t.Errorf("NoCircuit view reports circuit activity: %+v", st)
	}
}

// TestMaterializeMatchesEvaluate: the materialized exact result agrees with
// the engine's DNFLineage evaluation of the same plan.
func TestMaterializeMatchesEvaluate(t *testing.T) {
	db := incrTestDB()
	q := mustParse(t, "q(x) :- R(x, y), S(y)")
	plan := incrPlan(t, q)
	m, err := Materialize(db, q, plan, Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(db, q, plan, Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Result()
	if len(got.Rows) != len(res.Rows) {
		t.Fatalf("%d vs %d answers", len(got.Rows), len(res.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i].P != res.Rows[i].P {
			t.Errorf("answer %v: materialized %v != evaluated %v", got.Rows[i].Vals, got.Rows[i].P, res.Rows[i].P)
		}
	}
}
