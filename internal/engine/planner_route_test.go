package engine_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/planner"
)

// These tests pin the adaptive backend dispatch itself: which backend the
// cost model routes an answer to, and how fallthrough attempts surface in
// the per-query stats and the observability sink.

// TestAdaptiveRoutesJTree drives an answer down the junction-tree route: with
// expansion disabled the profile has no DNF, the evaluation is Boolean (a
// single answer, so no cross-answer memo), and the ancestor network is
// narrow — exactly the profile for which the model ranks the one-sweep
// junction tree ahead of conditioned variable elimination.
func TestAdaptiveRoutesJTree(t *testing.T) {
	db, q, plan := hardDB(t, 3)
	exact, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Evaluate(db, q, plan, engine.Options{
		Strategy:    core.PartialLineage,
		NoExpansion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.BackendChoices["jtree"]; got != 1 {
		t.Errorf("BackendChoices[jtree] = %d, want 1 (choices: %v)", got, res.Stats.BackendChoices)
	}
	if res.Stats.BackendPredictionMisses != 0 {
		t.Errorf("prediction misses = %d on a first-choice win", res.Stats.BackendPredictionMisses)
	}
	if math.Abs(res.BoolProb()-exact.BoolProb()) > 1e-9 {
		t.Errorf("jtree route: %g vs exact %g", res.BoolProb(), exact.BoolProb())
	}
}

// TestAdaptiveFallbackStats exhausts the first-ranked backend and checks the
// fallthrough bookkeeping: a small expanded DNF ranks Shannon first, an
// ExactBudget of 1 makes it fail deterministically, and conditioned VE picks
// the answer up. The miss must be visible in the result stats and in the
// planner sink, and must not change the answer.
func TestAdaptiveFallbackStats(t *testing.T) {
	db, q, plan := hardDB(t, 4)
	exact, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.DNFLineage})
	if err != nil {
		t.Fatal(err)
	}
	sink := planner.NewSink()
	res, err := engine.Evaluate(db, q, plan, engine.Options{
		Strategy:    core.PartialLineage,
		ExactBudget: 1,
		PlannerSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.BackendChoices["ve"]; got != 1 {
		t.Errorf("BackendChoices[ve] = %d, want 1 (choices: %v)", got, res.Stats.BackendChoices)
	}
	if got := res.Stats.BackendFallbacks["expand+shannon"]; got != 1 {
		t.Errorf("BackendFallbacks[expand+shannon] = %d, want 1 (fallbacks: %v)", got, res.Stats.BackendFallbacks)
	}
	if res.Stats.BackendPredictionMisses != 1 {
		t.Errorf("prediction misses = %d, want 1", res.Stats.BackendPredictionMisses)
	}
	snap := sink.Snapshot()
	if st := snap["expand+shannon"]; st.Fallbacks != 1 || st.Wins != 0 {
		t.Errorf("sink[expand+shannon] = %+v, want 1 fallback, 0 wins", st)
	}
	if st := snap["ve"]; st.Wins != 1 {
		t.Errorf("sink[ve] = %+v, want 1 win", st)
	}
	if res.Stats.Approximate {
		t.Error("VE rescue flagged approximate")
	}
	if math.Abs(res.BoolProb()-exact.BoolProb()) > 1e-9 {
		t.Errorf("fallback route: %g vs exact %g", res.BoolProb(), exact.BoolProb())
	}
}
