package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// traceDB builds an instance large enough (≥ parallelMinRows per join
// input) that the partitioned Join and Dedup paths actually engage, with
// fanout so some tuples are offending and the network is non-trivial.
func traceDB(t *testing.T) (*relation.Database, *query.Query, *query.Plan) {
	t.Helper()
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	s := relation.New("S", "x", "y")
	for i := 0; i < 200; i++ {
		if err := r.AddInts(0.5, int64(i)); err != nil {
			t.Fatal(err)
		}
		// Fanout 2 per x: uncertain R tuples become offending at the join.
		if err := s.AddInts(0.7, int64(i), int64(i%7)); err != nil {
			t.Fatal(err)
		}
		if err := s.AddInts(0.6, int64(i), int64((i+1)%7)); err != nil {
			t.Fatal(err)
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	q, err := query.Parse("q(y) :- R(x), S(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := query.LeftDeepPlan(q, []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	return db, q, plan
}

func tracedEval(t *testing.T, parallelism int) *Result {
	t.Helper()
	db, q, plan := traceDB(t)
	res, err := Evaluate(db, q, plan, Options{
		Strategy:    core.PartialLineage,
		Trace:       true,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// maskTimes zeroes wall times so traces compare structurally.
func maskTimes(ops []core.OpStat) []core.OpStat {
	out := append([]core.OpStat(nil), ops...)
	for i := range out {
		out[i].Time = 0
	}
	return out
}

func dropPartitions(ops []core.OpStat) []core.OpStat {
	var out []core.OpStat
	for _, op := range ops {
		if strings.HasSuffix(op.Kind, ".partition") {
			continue
		}
		out = append(out, op)
	}
	return out
}

// TestParallelJoinSpansDeterministic asserts the Ops ordering contract: for
// a fixed Parallelism the recorded trace is identical run to run (the
// workers measure, the coordinator records in partition order), and
// stripping the partition sub-spans yields exactly the serial trace.
func TestParallelJoinSpansDeterministic(t *testing.T) {
	serial := maskTimes(tracedEval(t, 1).Stats.Operators)
	if len(serial) == 0 {
		t.Fatal("serial evaluation recorded no operators")
	}
	for _, op := range serial {
		if strings.HasSuffix(op.Kind, ".partition") {
			t.Fatalf("serial trace contains partition sub-span %+v", op)
		}
	}

	first := maskTimes(tracedEval(t, 4).Stats.Operators)
	for run := 0; run < 3; run++ {
		again := maskTimes(tracedEval(t, 4).Stats.Operators)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d ops vs %d", run, len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d: op %d differs:\n%+v\nvs\n%+v", run, i, first[i], again[i])
			}
		}
	}

	// Partition sub-spans must exist, sit under their operator (depth one
	// below is recorded as Depth = parent depth + 1), and appear in
	// ascending partition order.
	var partitions int
	lastIdx := -1
	for i, op := range first {
		if !strings.HasSuffix(op.Kind, ".partition") {
			continue
		}
		partitions++
		if i > 0 && lastIdx == i-1 {
			prev := first[i-1]
			if strings.HasSuffix(prev.Kind, ".partition") && prev.Kind == op.Kind && prev.Op >= op.Op {
				t.Errorf("partition sub-spans out of order: %q then %q", prev.Op, op.Op)
			}
		}
		lastIdx = i
	}
	if partitions == 0 {
		t.Fatal("parallel evaluation recorded no partition sub-spans — did the parallel path engage?")
	}

	stripped := dropPartitions(first)
	if len(stripped) != len(serial) {
		t.Fatalf("parallel trace minus partitions has %d ops, serial has %d", len(stripped), len(serial))
	}
	for i := range serial {
		if serial[i] != stripped[i] {
			t.Errorf("op %d: serial %+v vs parallel %+v", i, serial[i], stripped[i])
		}
	}
}

// TestTraceChargesRecorded asserts the always-on work counters surface in
// Stats regardless of budgets.
func TestTraceChargesRecorded(t *testing.T) {
	res := tracedEval(t, 1)
	if res.Stats.RowsCharged == 0 {
		t.Error("RowsCharged not accumulated")
	}
	if res.Stats.NodesCharged == 0 {
		t.Error("NodesCharged not accumulated")
	}
}
