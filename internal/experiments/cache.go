package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/tuple"
	"repro/internal/workload"
	"repro/pdb"
)

// CacheOptions selects which cache levels the benchmark exercises
// (pdbbench's -memo and -cache flags).
type CacheOptions struct {
	// Memo runs the memo/interning/pooling on-vs-off wall-clock comparison.
	Memo bool
	// Cache runs the server cold-vs-warm result-cache comparison.
	Cache bool
}

// MemoPoint compares one strategy on the shared-core workload with the
// cross-answer memo on (the default) against NoMemo. Answers are
// bit-identical either way; only the wall clock and the hit counters move.
type MemoPoint struct {
	Query    string  `json:"query"`
	OffNs    int64   `json:"memo_off_ns"`
	OnNs     int64   `json:"memo_on_ns"`
	Speedup  float64 `json:"speedup"`
	MemoHits int64   `json:"memo_hits"`
	ConsHits int64   `json:"cons_hits"`
	Err      string  `json:"error,omitempty"`
}

// ConsPoint measures the AND-OR network size of one unsafe-query evaluation
// with hash-consing on vs off: the reduction is the structural sharing the
// consing table recovered.
type ConsPoint struct {
	Query     string  `json:"query"`
	NodesOff  int     `json:"nodes_consing_off"`
	NodesOn   int     `json:"nodes_consing_on"`
	Reduction float64 `json:"node_reduction"`
	Err       string  `json:"error,omitempty"`
}

// ServePoint compares the HTTP service's cold (first-request) latency
// against its warm (cache-hit) p50 on a repeated-query workload.
type ServePoint struct {
	Query   string  `json:"query"`
	ColdNs  int64   `json:"cold_ns"`
	WarmNs  int64   `json:"warm_p50_ns"`
	Speedup float64 `json:"speedup"`
	Err     string  `json:"error,omitempty"`
}

// CacheReport is the BENCH_cache.json artifact: one section per cache level.
type CacheReport struct {
	Memo  []MemoPoint  `json:"memo,omitempty"`
	Cons  []ConsPoint  `json:"consing"`
	Serve []ServePoint `json:"server,omitempty"`
}

// CacheBench measures the three cache levels: memoized inference (wall
// clock on the shared-core workload, whose answers meet one expensive
// common subproblem), hash-consing (network node counts on a
// half-deterministic triangle instance) and the server result cache (cold
// vs warm latency over HTTP, Table 1 queries on the Fig5 instance).
func CacheBench(sc Scale, opts CacheOptions) (*CacheReport, error) {
	rep := &CacheReport{}
	if opts.Memo {
		pts, err := memoBench(sc)
		if err != nil {
			return nil, err
		}
		rep.Memo = pts
	}
	pts, err := consBench(sc)
	if err != nil {
		return nil, err
	}
	rep.Cons = pts
	if opts.Cache {
		pts, err := serveBench(sc)
		if err != nil {
			return nil, err
		}
		rep.Serve = pts
	}
	return rep, nil
}

// sharedCoreDB builds the cross-answer-sharing instance for memoBench:
// q(h) :- G(h), R(x), S(x, y), T(y). Each answer h's lineage is its guard
// tuple g_h conjoined with the one hard triangle core over R, S, T, so after
// the solver conditions the guard away every answer meets the identical
// (expensive, non-read-once) core subproblem — exactly what the shared memo
// exists to catch. The shape mirrors a real pattern: per-user guard tuples
// joined onto one correlated subquery.
func sharedCoreDB(dom, heads int) *relation.Database {
	db := relation.NewDatabase()
	g := relation.New("G", "h")
	r := relation.New("R", "x")
	s := relation.New("S", "x", "y")
	t := relation.New("T", "y")
	for h := 1; h <= heads; h++ {
		g.MustAdd(tuple.Ints(int64(h)), 0.5)
	}
	for x := 1; x <= dom; x++ {
		r.MustAdd(tuple.Ints(int64(x)), 0.5)
		t.MustAdd(tuple.Ints(int64(x)), 0.5)
		for y := 1; y <= dom; y++ {
			s.MustAdd(tuple.Ints(int64(x), int64(y)), 0.5)
		}
	}
	db.AddRelation(g)
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(t)
	return db
}

// sharedCoreDom/sharedCoreHeads size the memo benchmark instance. The
// triangle core's cost is exponential in its domain, so the size is fixed
// rather than scaled: dom 9 keeps the unmemoized side around a second.
const (
	sharedCoreDom   = 9
	sharedCoreHeads = 6
)

// memoBench times the shared-core workload per exact unsafe strategy with
// the cross-answer memo off and on (best of three runs each, interleaved so
// background noise hits both sides equally).
func memoBench(sc Scale) ([]MemoPoint, error) {
	db := sharedCoreDB(sharedCoreDom, sharedCoreHeads)
	q := query.MustParse("q(h) :- G(h), R(x), S(x, y), T(y)")
	plan, err := query.LeftDeepPlan(q, []string{"G", "R", "S", "T"})
	if err != nil {
		return nil, err
	}
	var out []MemoPoint
	for _, strat := range []core.Strategy{core.DNFLineage, core.FullNetwork} {
		pt := MemoPoint{Query: "shared-core/" + strat.String()}
		run := func(ablate bool) (time.Duration, *engine.Result, error) {
			opts := engine.Options{
				Strategy:    strat,
				Parallelism: sc.Parallelism,
				NoMemo:      ablate,
			}
			opts.Inference.MaxFactorVars = sc.MaxWidth
			opts.Budget.Time = sc.Timeout
			start := time.Now()
			res, err := engine.Evaluate(db, q, plan, opts)
			return time.Since(start), res, err
		}
		var offBest, onBest time.Duration
		var onRes *engine.Result
		for i := 0; i < 3; i++ {
			off, _, errOff := run(true)
			on, res, errOn := run(false)
			if errOff != nil || errOn != nil {
				err := errOff
				if err == nil {
					err = errOn
				}
				pt.Err = err.Error()
				break
			}
			if i == 0 || off < offBest {
				offBest = off
			}
			if i == 0 || on < onBest {
				onBest, onRes = on, res
			}
		}
		if pt.Err == "" {
			pt.OffNs, pt.OnNs = offBest.Nanoseconds(), onBest.Nanoseconds()
			if onBest > 0 {
				pt.Speedup = float64(offBest) / float64(onBest)
			}
			pt.MemoHits = onRes.Stats.MemoHits
			pt.ConsHits = int64(onRes.Stats.ConsHits)
		}
		out = append(out, pt)
	}
	return out, nil
}

// detTriangleDB builds the consing instance: the triangle query's relations
// with the even-y half of S deterministic (p = 1). Every x-group then joins
// the same deterministic S columns, so structurally identical gate subtrees
// recur across groups — which is what the hash-consing table folds together
// (the paper's Section 5.4 regime).
func detTriangleDB(dom int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	s := relation.New("S", "x", "y")
	t := relation.New("T", "y")
	for x := 1; x <= dom; x++ {
		r.MustAdd(tuple.Ints(int64(x)), 0.5)
		t.MustAdd(tuple.Ints(int64(x)), 0.5)
		for y := 1; y <= dom; y++ {
			p := 0.5
			if y%2 == 0 {
				p = 1
			}
			s.MustAdd(tuple.Ints(int64(x), int64(y)), p)
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(t)
	return db
}

// consBench evaluates the unsafe triangle query on a half-deterministic
// instance and reports the AND-OR network node count with hash-consing on vs
// off, for the strategies that materialize lineage networks.
func consBench(sc Scale) ([]ConsPoint, error) {
	db := detTriangleDB(10)
	q := query.MustParse("q :- R(x), S(x, y), T(y)")
	plan, err := query.LeftDeepPlan(q, []string{"R", "S", "T"})
	if err != nil {
		return nil, err
	}
	var out []ConsPoint
	for _, strat := range []core.Strategy{core.PartialLineage, core.FullNetwork} {
		pt := ConsPoint{Query: "det-triangle/" + strat.String()}
		run := func(noCons bool) (int, error) {
			opts := engine.Options{
				Strategy:    strat,
				Parallelism: sc.Parallelism,
				NoCons:      noCons,
			}
			opts.Inference.MaxFactorVars = sc.MaxWidth
			opts.Budget.Time = sc.Timeout
			res, err := engine.Evaluate(db, q, plan, opts)
			if err != nil {
				return 0, err
			}
			return res.Stats.NetworkNodes, nil
		}
		off, err := run(true)
		if err != nil {
			pt.Err = err.Error()
			out = append(out, pt)
			continue
		}
		on, err := run(false)
		if err != nil {
			pt.Err = err.Error()
			out = append(out, pt)
			continue
		}
		pt.NodesOff, pt.NodesOn = off, on
		if on > 0 {
			pt.Reduction = float64(off) / float64(on)
		}
		out = append(out, pt)
	}
	return out, nil
}

// serveBench stands a query server over each Table 1 query's Fig5 instance
// and measures the first (cold, evaluated) request against the p50 of a
// closed-loop warm run served from the result cache.
func serveBench(sc Scale) ([]ServePoint, error) {
	var out []ServePoint
	for _, qname := range sc.Queries {
		spec, err := workload.SpecByName(qname)
		if err != nil {
			return nil, err
		}
		pt := ServePoint{Query: spec.Name}
		wdb, err := workload.GenerateFor(spec, sc.Fig5)
		if err != nil {
			pt.Err = err.Error()
			out = append(out, pt)
			continue
		}
		db, err := toPDB(wdb)
		if err != nil {
			pt.Err = err.Error()
			out = append(out, pt)
			continue
		}
		cold, warm, err := serveColdWarm(db, spec.QueryText, sc)
		if err != nil {
			pt.Err = err.Error()
			out = append(out, pt)
			continue
		}
		pt.ColdNs, pt.WarmNs = cold.Nanoseconds(), warm
		if warm > 0 {
			pt.Speedup = float64(pt.ColdNs) / float64(warm)
		}
		out = append(out, pt)
	}
	return out, nil
}

func serveColdWarm(db *pdb.Database, queryText string, sc Scale) (time.Duration, int64, error) {
	srv, err := server.New(server.Config{DB: db, MaxInFlight: 4, Metrics: &obs.Registry{}})
	if err != nil {
		return 0, 0, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, err := json.Marshal(server.QueryRequest{Query: queryText, Parallelism: sc.Parallelism})
	if err != nil {
		return 0, 0, err
	}
	// The cold request evaluates and populates the cache.
	start := time.Now()
	coldRep, err := server.RunLoad(ts.URL+"/query", body, 1, 1)
	if err != nil {
		return 0, 0, err
	}
	cold := time.Since(start)
	if coldRep.Errors > 0 {
		return 0, 0, fmt.Errorf("experiments: cold request failed for %q", queryText)
	}
	// Warm requests are all cache hits.
	warmRep, err := server.RunLoad(ts.URL+"/query", body, 1, 50)
	if err != nil {
		return 0, 0, err
	}
	if warmRep.Errors > 0 {
		return 0, 0, fmt.Errorf("experiments: %d warm requests failed for %q", warmRep.Errors, queryText)
	}
	return cold, warmRep.P50NS, nil
}

// toPDB rebuilds a workload database behind the public pdb facade, so the
// served benchmark exercises the same path applications use.
func toPDB(src *relation.Database) (*pdb.Database, error) {
	db := pdb.NewDatabase()
	for _, name := range src.Names() {
		rel, err := src.Relation(name)
		if err != nil {
			return nil, err
		}
		dst := db.CreateRelation(name, rel.Attrs...)
		for _, row := range rel.Rows {
			if err := dst.Add(row.P, row.Tuple...); err != nil {
				return nil, fmt.Errorf("relation %s: %w", name, err)
			}
		}
	}
	return db, nil
}

// WriteCacheJSON renders the benchmark report as indented JSON.
func WriteCacheJSON(w io.Writer, rep *CacheReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
