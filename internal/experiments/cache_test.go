package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestCachePerfSmoke guards the committed BENCH_cache.json against silent
// regressions: it re-runs the cache benchmark at the small scale and fails
// when a measured ratio drops below half of the committed improvement.
// Ratios near 1 in the committed artifact are not gated (nothing to lose),
// and the server ratio is gated against a capped floor because its absolute
// value (hundreds of x) varies with the host's network stack, while "warm
// hits are at least an order of magnitude cheaper than evaluation" must
// always hold. Skips when the artifact is absent (e.g. fresh checkout
// pruned of benchmark outputs).
func TestCachePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not a -short test")
	}
	data, err := os.ReadFile("../../BENCH_cache.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_cache.json not committed")
	}
	if err != nil {
		t.Fatal(err)
	}
	var committed CacheReport
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("parsing committed BENCH_cache.json: %v", err)
	}

	got, err := CacheBench(Small(), CacheOptions{Memo: true, Cache: true})
	if err != nil {
		t.Fatal(err)
	}

	memoBy := map[string]MemoPoint{}
	for _, pt := range got.Memo {
		memoBy[pt.Query] = pt
	}
	for _, want := range committed.Memo {
		if want.Err != "" || want.Speedup < 1.5 {
			continue
		}
		pt, ok := memoBy[want.Query]
		if !ok || pt.Err != "" {
			t.Errorf("memo %s: missing or failed in rerun (%+v)", want.Query, pt)
			continue
		}
		if floor := want.Speedup / 2; pt.Speedup < floor {
			t.Errorf("memo %s: speedup %.2fx regressed below %.2fx (committed %.2fx)",
				want.Query, pt.Speedup, floor, want.Speedup)
		}
		if pt.MemoHits == 0 {
			t.Errorf("memo %s: no shared-memo hits; the cross-answer table is not engaging", want.Query)
		}
	}

	consBy := map[string]ConsPoint{}
	for _, pt := range got.Cons {
		consBy[pt.Query] = pt
	}
	for _, want := range committed.Cons {
		if want.Err != "" || want.Reduction < 1.1 {
			continue
		}
		pt, ok := consBy[want.Query]
		if !ok || pt.Err != "" {
			t.Errorf("consing %s: missing or failed in rerun (%+v)", want.Query, pt)
			continue
		}
		// Node counts are deterministic; allow only the committed sharing to
		// shrink by half (e.g. a consing-table change), not to vanish.
		if floor := 1 + (want.Reduction-1)/2; pt.Reduction < floor {
			t.Errorf("consing %s: node reduction %.3fx regressed below %.3fx (committed %.3fx)",
				want.Query, pt.Reduction, floor, want.Reduction)
		}
	}

	serveBy := map[string]ServePoint{}
	for _, pt := range got.Serve {
		serveBy[pt.Query] = pt
	}
	for _, want := range committed.Serve {
		if want.Err != "" || want.Speedup < 1.5 {
			continue
		}
		pt, ok := serveBy[want.Query]
		if !ok || pt.Err != "" {
			t.Errorf("server %s: missing or failed in rerun (%+v)", want.Query, pt)
			continue
		}
		floor := want.Speedup / 2
		if floor > 25 {
			floor = 25
		}
		if pt.Speedup < floor {
			t.Errorf("server %s: warm speedup %.1fx regressed below %.1fx (committed %.1fx)",
				want.Query, pt.Speedup, floor, want.Speedup)
		}
	}
}
