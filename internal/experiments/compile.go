package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/pdb"
)

// The compile benchmark measures the compiled-circuit backend
// (docs/PERFORMANCE.md): the engine compiles each answer's DNF lineage to a
// d-DNNF circuit cached on its canonical fingerprint, after which confidence
// computation is one linear bottom-up pass instead of a Shannon re-solve.
// Two workloads exercise the two amortization paths:
//
//   - refresh: a materialized view over non-read-once lineage under
//     prob-update churn. A structure-preserving write leaves circuit keys
//     unchanged, so every patched refresh re-evaluates retained compiled
//     structure; the -no-circuit ablation re-runs the Shannon solver on each
//     dirty answer instead.
//   - shared-core: the same multi-answer query evaluated repeatedly against
//     an unchanged database. With circuits, the second and later evaluations
//     serve every answer from the database-shared cache; without, each
//     evaluation pays the full memoized Shannon pass again.
//
// Both comparisons are bit-identical by construction — the circuit compiler
// replays the Shannon recursion — and the benchmark verifies it on every
// round, so the reported speedups are pure re-evaluation wins.

// CompilePoint is one workload's timing comparison.
type CompilePoint struct {
	// Workload is "refresh" or "shared-core".
	Workload string `json:"workload"`
	// Rounds is the number of timed repetitions behind the means.
	Rounds int `json:"rounds"`
	// Answers is the number of result rows per evaluation/refresh.
	Answers int `json:"answers"`
	// ShannonNs and CircuitNs are mean per-round wall times for the
	// -no-circuit ablation and the circuit-enabled run.
	ShannonNs int64 `json:"shannon_ns"`
	CircuitNs int64 `json:"circuit_ns"`
	// Speedup is ShannonNs over CircuitNs.
	Speedup float64 `json:"speedup"`
	// Compiles, Hits and Evals are the circuit-side cache counters after the
	// run: compiles should stay flat across rounds while hits and evals grow.
	Compiles int64 `json:"compiles"`
	Hits     int64 `json:"hits"`
	Evals    int64 `json:"evals"`
	Err      string `json:"error,omitempty"`
}

// CompileReport is the BENCH_compile.json artifact.
type CompileReport struct {
	Points []CompilePoint `json:"points"`
}

// Compile-benchmark shape: compileGroups answer groups, each a triangle join
// over compileFanout x- and y-values. The per-answer lineage R(g,x) ∧ T(x,y)
// ∧ S(g,y) has a complete variable co-occurrence structure, so it is not
// read-once and the Shannon solver does real expansion work on every solve.
const (
	compileRounds        = 20
	compileRefreshGroups = 4
	compileRefreshFanout = 6
	compileSharedGroups  = 12
	compileSharedFanout  = 4
)

// CompileBench runs both workloads and assembles the report.
func CompileBench(sc Scale) (*CompileReport, error) {
	rep := &CompileReport{}
	refresh, err := compileRefreshBench()
	if err != nil {
		return nil, err
	}
	shared, err := compileSharedBench(sc)
	if err != nil {
		return nil, err
	}
	rep.Points = []CompilePoint{refresh, shared}
	return rep, nil
}

// compileDB builds the triangle-join instance: per answer group g,
// R(g,x) for x in 1..fanout, S(g,y) for y in 1..fanout, and a shared
// T(x,y) grid joining them.
func compileDB(groups, fanout int) (*pdb.Database, error) {
	db := pdb.NewDatabase()
	r := db.CreateRelation("R", "g", "x")
	s := db.CreateRelation("S", "g", "y")
	tr := db.CreateRelation("T", "x", "y")
	for x := int64(1); x <= int64(fanout); x++ {
		for y := int64(1); y <= int64(fanout); y++ {
			if err := tr.AddInts(0.5, x, y); err != nil {
				return nil, err
			}
		}
	}
	for g := int64(1); g <= int64(groups); g++ {
		for i := int64(1); i <= int64(fanout); i++ {
			if err := r.AddInts(0.5, g, i); err != nil {
				return nil, err
			}
			if err := s.AddInts(0.5, g, i); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

const compileQuery = "q(g) :- R(g, x), T(x, y), S(g, y)"

// compareRows checks that two results carry bitwise-equal probabilities —
// the circuit backend's correctness contract, asserted on every timed round.
func compareRows(circuit, shannon *pdb.Result) error {
	if len(circuit.Rows) != len(shannon.Rows) {
		return fmt.Errorf("experiments: %d vs %d answers", len(circuit.Rows), len(shannon.Rows))
	}
	for i := range circuit.Rows {
		if circuit.Rows[i].P != shannon.Rows[i].P {
			return fmt.Errorf("experiments: answer %v: circuit %v != shannon %v",
				circuit.Rows[i].Vals, circuit.Rows[i].P, shannon.Rows[i].P)
		}
	}
	return nil
}

// compileRefreshBench times patched view refreshes after prob-updates, with
// the circuit cache retained across the patch vs the -no-circuit ablation
// re-solving every dirty answer with the Shannon solver.
func compileRefreshBench() (CompilePoint, error) {
	pt := CompilePoint{Workload: "refresh", Rounds: compileRounds, Answers: compileRefreshGroups}
	db, err := compileDB(compileRefreshGroups, compileRefreshFanout)
	if err != nil {
		return pt, err
	}
	q, err := pdb.ParseQuery(compileQuery)
	if err != nil {
		return pt, err
	}
	circuitView, err := db.Materialize(q, pdb.Options{Strategy: core.DNFLineage})
	if err != nil {
		return pt, err
	}
	shannonView, err := db.Materialize(q, pdb.Options{Strategy: core.DNFLineage, NoCircuit: true})
	if err != nil {
		return pt, err
	}
	rel, err := db.Relation("T")
	if err != nil {
		return pt, err
	}
	refresh := func(v *pdb.Materialized) (time.Duration, error) {
		start := time.Now()
		kind, err := v.Refresh()
		if err != nil {
			return 0, err
		}
		if kind != pdb.RefreshPatched {
			return 0, fmt.Errorf("experiments: refresh kind %v, want %v", kind, pdb.RefreshPatched)
		}
		return time.Since(start), nil
	}
	var circuitTotal, shannonTotal time.Duration
	probs := []float64{0.3, 0.7, 0.4, 0.6}
	for i := 0; i < compileRounds; i++ {
		// A T prob-update dirties every answer group: T is the shared core,
		// so each refresh re-derives all answers from retained structure.
		x := int64(i%compileRefreshFanout) + 1
		if err := rel.SetProb(probs[i%len(probs)], pdb.Int(x), pdb.Int(1)); err != nil {
			return pt, err
		}
		d, err := refresh(circuitView)
		if err != nil {
			return pt, err
		}
		circuitTotal += d
		d, err = refresh(shannonView)
		if err != nil {
			return pt, err
		}
		shannonTotal += d
		if err := compareRows(circuitView.Result(), shannonView.Result()); err != nil {
			return pt, err
		}
	}
	pt.CircuitNs = circuitTotal.Nanoseconds() / compileRounds
	pt.ShannonNs = shannonTotal.Nanoseconds() / compileRounds
	if pt.CircuitNs > 0 {
		pt.Speedup = float64(pt.ShannonNs) / float64(pt.CircuitNs)
	}
	st := circuitView.CircuitStats()
	pt.Compiles, pt.Hits, pt.Evals = st.Compiles, st.Hits, st.Evals
	return pt, nil
}

// compileSharedBench times repeated evaluation of the multi-answer triangle
// query: circuit-enabled evaluations after a warm-up serve every answer from
// the database-shared cache, the ablation re-runs memoized Shannon per round.
func compileSharedBench(sc Scale) (CompilePoint, error) {
	pt := CompilePoint{Workload: "shared-core", Rounds: compileRounds}
	db, err := compileDB(compileSharedGroups, compileSharedFanout)
	if err != nil {
		return pt, err
	}
	q, err := pdb.ParseQuery(compileQuery)
	if err != nil {
		return pt, err
	}
	opts := pdb.Options{Strategy: core.DNFLineage, Parallelism: sc.Parallelism}
	ablation := opts
	ablation.NoCircuit = true
	// Warm the circuit cache; the compile pass is not part of the measurement
	// (it is paid once per lineage structure, not per evaluation).
	warm, err := db.Evaluate(q, opts)
	if err != nil {
		return pt, err
	}
	pt.Answers = len(warm.Rows)
	var circuitTotal, shannonTotal time.Duration
	for i := 0; i < compileRounds; i++ {
		start := time.Now()
		circuitRes, err := db.Evaluate(q, opts)
		if err != nil {
			return pt, err
		}
		circuitTotal += time.Since(start)
		pt.Compiles += circuitRes.Stats.CircuitCompiles
		pt.Hits += circuitRes.Stats.CircuitHits
		pt.Evals += circuitRes.Stats.CircuitEvals
		start = time.Now()
		shannonRes, err := db.Evaluate(q, ablation)
		if err != nil {
			return pt, err
		}
		shannonTotal += time.Since(start)
		if err := compareRows(circuitRes, shannonRes); err != nil {
			return pt, err
		}
	}
	pt.CircuitNs = circuitTotal.Nanoseconds() / compileRounds
	pt.ShannonNs = shannonTotal.Nanoseconds() / compileRounds
	if pt.CircuitNs > 0 {
		pt.Speedup = float64(pt.ShannonNs) / float64(pt.CircuitNs)
	}
	return pt, nil
}

// WriteCompileJSON renders the benchmark report as indented JSON.
func WriteCompileJSON(w io.Writer, rep *CompileReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
