package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestCompilePerfSmoke re-runs the compile benchmark and gates each workload
// at half the committed BENCH_compile.json speedup — loose enough for CI
// noise, tight enough to catch the circuit path silently degrading into a
// per-round Shannon re-solve. The issue's acceptance floors (2x on the
// prob-update refresh workload, 1.5x on the shared-core workload) are far
// below the committed ratios, so halving cannot mask a real regression past
// them.
func TestCompilePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not a -short test")
	}
	data, err := os.ReadFile("../../BENCH_compile.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_compile.json not committed")
	}
	if err != nil {
		t.Fatal(err)
	}
	var committed CompileReport
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("parsing committed BENCH_compile.json: %v", err)
	}

	got, err := CompileBench(Small())
	if err != nil {
		t.Fatal(err)
	}
	gotBy := map[string]CompilePoint{}
	for _, pt := range got.Points {
		gotBy[pt.Workload] = pt
	}
	floors := map[string]float64{"refresh": 2, "shared-core": 1.5}
	for _, want := range committed.Points {
		min := floors[want.Workload]
		if want.Err != "" || want.Speedup < min {
			continue
		}
		pt, ok := gotBy[want.Workload]
		if !ok || pt.Err != "" {
			t.Errorf("%s: missing or failed in rerun (%+v)", want.Workload, pt)
			continue
		}
		if floor := want.Speedup / 2; pt.Speedup < floor {
			t.Errorf("%s: speedup %.2fx regressed below %.2fx (committed %.2fx)",
				want.Workload, pt.Speedup, floor, want.Speedup)
		}
		if pt.Hits == 0 {
			t.Errorf("%s: no circuit-cache hits; compiled structure is not being reused", want.Workload)
		}
	}
}
