// Package experiments regenerates the paper's evaluation (Section 6):
// Figure 5 (scalability with 1% offending tuples), Figure 6 (varying the
// fraction of offending tuples r_f) and Figure 7 (varying the fraction of
// deterministic tuples r_d), over the Table 1 queries, comparing the
// partial-lineage engine with the MayBMS-style DNF baseline.
//
// Scales: Small() keeps every run in milliseconds-to-seconds for benchmarks
// and CI; Paper() uses the paper's parameters (N=100, m=10000 for Figure 5 —
// expect minutes). Absolute times differ from the paper's 2010 hardware and
// SQL Server substrate; the reproduced claim is the shape: who wins, how
// slopes compare, and where the phase transition sits.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Scale bundles the experiment parameters.
type Scale struct {
	Name string

	// Fig5 parameters (r_f and r_d fixed by the paper: 0.01 and 1).
	Fig5    workload.Params
	Fig5Ms  []int // m values swept for the scalability series
	Queries []string

	// Fig6: r_d = 1, r_f swept.
	Fig6    workload.Params
	Fig6RFs []float64

	// Fig7: r_f = 1, r_d swept.
	Fig7    workload.Params
	Fig7RDs []float64

	// PlannerXs sizes the planner benchmark's FD-direction instance (the
	// x-domain of the asymmetric B relation; the y-domain is fixed at 12).
	PlannerXs int

	// TopkGroups and TopkFanout size the top-k benchmark's graded-group
	// instances: TopkGroups answers, each joining TopkFanout R tuples
	// against two S tuples apiece.
	TopkGroups, TopkFanout int

	// Samples for the approximate fallback beyond the exact-inference
	// phase transition.
	Samples int
	// MaxWidth caps exact inference before the fallback engages.
	MaxWidth int
	// Parallelism is the worker count for the operator pipeline and
	// per-answer inference (0 or 1 = sequential; results are identical).
	Parallelism int
	// Timeout bounds each individual evaluation's wall clock (0 = none);
	// a timed-out point reports its error instead of a measurement.
	Timeout time.Duration
	// MemBudget bounds operator scratch memory per evaluation in bytes
	// (0 = unlimited): join/dedup spill partitions to disk past it and the
	// measurements stay byte-identical, only slower (docs/SPILL.md).
	MemBudget int64
}

// Small returns a laptop-scale configuration preserving the experiments'
// shape.
func Small() Scale {
	return Scale{
		Name:       "small",
		Fig5:       workload.Params{N: 10, M: 400, Fanout: 4, RF: 0.01, RD: 1, Seed: 1},
		Fig5Ms:     []int{50, 100, 200, 400},
		Queries:    []string{"P1", "P2", "P3", "S2", "S3"},
		Fig6:       workload.Params{N: 3, M: 50, Fanout: 3, RD: 1, Seed: 2},
		Fig6RFs:    []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1},
		Fig7:       workload.Params{N: 3, M: 50, Fanout: 3, RF: 1, Seed: 3},
		Fig7RDs:    []float64{0, 0.05, 0.1, 0.2, 0.3},
		PlannerXs:  1200,
		TopkGroups: 24,
		TopkFanout: 12,
		Samples:    10000,
		MaxWidth:   18,
	}
}

// Paper returns the paper's parameters (Section 6.3–6.5).
func Paper() Scale {
	return Scale{
		Name:       "paper",
		Fig5:       workload.Params{N: 100, M: 10000, Fanout: 4, RF: 0.01, RD: 1, Seed: 1},
		Fig5Ms:     []int{1250, 2500, 5000, 10000},
		Queries:    []string{"P1", "P2", "P3", "S2", "S3"},
		Fig6:       workload.Params{N: 10, M: 1000, Fanout: 3, RD: 1, Seed: 2},
		Fig6RFs:    []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1},
		Fig7:       workload.Params{N: 10, M: 1000, Fanout: 3, RF: 1, Seed: 3},
		Fig7RDs:    []float64{0, 0.05, 0.1, 0.2, 0.3},
		PlannerXs:  4000,
		TopkGroups: 48,
		TopkFanout: 20,
		Samples:    50000,
		MaxWidth:   20,
	}
}

// ScaleByName resolves "small" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small(), nil
	case "paper":
		return Paper(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want small or paper)", name)
}

// Measurement is one data point of an experiment series.
type Measurement struct {
	Experiment string  // fig5, fig6, fig7
	Query      string  // Table 1 name
	X          float64 // the swept parameter (m, r_f or r_d)
	Strategy   core.Strategy
	Millis     float64
	Offending  int
	Answers    int
	Approx     bool
	Err        string // non-empty when the run failed (e.g. NoFallback)
}

// strategies compared throughout Section 6: the paper's system vs MayBMS.
var compared = []core.Strategy{core.PartialLineage, core.DNFLineage}

// runOne evaluates one (query, params, strategy) point, reporting the
// average per-answer-group wall time as the paper does ("we report the
// average execution time per query" over the N instances).
func runOne(spec workload.Spec, p workload.Params, strat core.Strategy, sc Scale) Measurement {
	m := Measurement{Query: spec.Name, Strategy: strat}
	db, err := workload.GenerateFor(spec, p)
	if err != nil {
		m.Err = err.Error()
		return m
	}
	plan, err := spec.Plan()
	if err != nil {
		m.Err = err.Error()
		return m
	}
	opts := engine.Options{Strategy: strat, Samples: sc.Samples, Seed: p.Seed, Parallelism: sc.Parallelism}
	opts.Inference.MaxFactorVars = sc.MaxWidth
	opts.Budget.Time = sc.Timeout
	opts.Budget.Mem = sc.MemBudget
	start := time.Now()
	res, err := engine.Evaluate(db, spec.Query(), plan, opts)
	elapsed := time.Since(start)
	if err != nil {
		m.Err = err.Error()
		return m
	}
	m.Millis = float64(elapsed.Microseconds()) / 1000 / float64(p.N)
	m.Offending = res.Stats.OffendingTuples
	m.Answers = res.Stats.Answers
	m.Approx = res.Stats.Approximate
	return m
}

// Fig5 runs the scalability experiment: m swept with 1% offending tuples.
func Fig5(sc Scale) ([]Measurement, error) {
	var out []Measurement
	for _, qname := range sc.Queries {
		spec, err := workload.SpecByName(qname)
		if err != nil {
			return nil, err
		}
		for _, mval := range sc.Fig5Ms {
			p := sc.Fig5
			p.M = mval
			for _, strat := range compared {
				meas := runOne(spec, p, strat, sc)
				meas.Experiment = "fig5"
				meas.X = float64(mval)
				out = append(out, meas)
			}
		}
	}
	return out, nil
}

// Fig6 runs the offending-tuples sweep: r_f from 0 to 1, r_d = 1.
func Fig6(sc Scale) ([]Measurement, error) {
	var out []Measurement
	for _, qname := range sc.Queries {
		spec, err := workload.SpecByName(qname)
		if err != nil {
			return nil, err
		}
		for _, rf := range sc.Fig6RFs {
			p := sc.Fig6
			p.RF = rf
			for _, strat := range compared {
				meas := runOne(spec, p, strat, sc)
				meas.Experiment = "fig6"
				meas.X = rf
				out = append(out, meas)
			}
		}
	}
	return out, nil
}

// Fig7 runs the deterministic-tuples sweep: r_d small, r_f = 1.
func Fig7(sc Scale) ([]Measurement, error) {
	var out []Measurement
	for _, qname := range sc.Queries {
		spec, err := workload.SpecByName(qname)
		if err != nil {
			return nil, err
		}
		for _, rd := range sc.Fig7RDs {
			p := sc.Fig7
			p.RD = rd
			for _, strat := range compared {
				meas := runOne(spec, p, strat, sc)
				meas.Experiment = "fig7"
				meas.X = rd
				out = append(out, meas)
			}
		}
	}
	return out, nil
}

// PrintTable1 prints the query catalog as the paper's Table 1.
func PrintTable1(w io.Writer) {
	fmt.Fprintf(w, "%-5s %-70s %s\n", "Name", "Query", "Join Order (left-deep plans)")
	for _, s := range workload.Table1() {
		name := s.Name
		if name == "P1" {
			name = "P1/S1"
		}
		order := ""
		for i, o := range s.JoinOrder {
			if i > 0 {
				order += ", "
			}
			order += o
		}
		fmt.Fprintf(w, "%-5s %-70s %s\n", name, s.QueryText, order)
	}
}

// Print renders measurements as a series table grouped by query: one line
// per swept value with the compared strategies side by side.
func Print(w io.Writer, title, xLabel string, ms []Measurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	byQuery := make(map[string][]Measurement)
	var queries []string
	for _, m := range ms {
		if _, ok := byQuery[m.Query]; !ok {
			queries = append(queries, m.Query)
		}
		byQuery[m.Query] = append(byQuery[m.Query], m)
	}
	for _, q := range queries {
		fmt.Fprintf(w, "-- query %s --\n", q)
		fmt.Fprintf(w, "%10s %16s %16s %10s %8s\n", xLabel, "partial (ms)", "maybms-dnf (ms)", "offending", "approx")
		points := byQuery[q]
		for i := 0; i < len(points); i += 2 {
			partial, dnf := points[i], points[i+1]
			if partial.Strategy != core.PartialLineage {
				partial, dnf = dnf, partial
			}
			approx := ""
			if partial.Approx {
				approx = "mc"
			}
			pm := fmt.Sprintf("%.2f", partial.Millis)
			if partial.Err != "" {
				pm = "err"
			}
			dm := fmt.Sprintf("%.2f", dnf.Millis)
			if dnf.Err != "" {
				dm = "err"
			}
			fmt.Fprintf(w, "%10.3g %16s %16s %10d %8s\n", partial.X, pm, dm, partial.Offending, approx)
		}
	}
}
