package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Scale {
	return Scale{
		Name:     "tiny",
		Fig5:     workload.Params{N: 2, M: 24, Fanout: 3, RF: 0.05, RD: 1, Seed: 1},
		Fig5Ms:   []int{12, 24},
		Queries:  []string{"P1", "S2"},
		Fig6:     workload.Params{N: 2, M: 12, Fanout: 3, RD: 1, Seed: 2},
		Fig6RFs:  []float64{0, 0.5, 1},
		Fig7:     workload.Params{N: 2, M: 12, Fanout: 3, RF: 1, Seed: 3},
		Fig7RDs:  []float64{0, 0.2},
		Samples:  2000,
		MaxWidth: 14,
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("%s: %v %v", name, sc.Name, err)
		}
	}
	if _, err := ScaleByName("x"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestFig5ProducesSeries(t *testing.T) {
	sc := tiny()
	ms, err := Fig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	// queries × m-values × 2 strategies.
	want := len(sc.Queries) * len(sc.Fig5Ms) * 2
	if len(ms) != want {
		t.Fatalf("got %d measurements, want %d", len(ms), want)
	}
	for _, m := range ms {
		if m.Err != "" {
			t.Errorf("%s x=%g %v failed: %s", m.Query, m.X, m.Strategy, m.Err)
		}
		if m.Experiment != "fig5" {
			t.Errorf("experiment = %q", m.Experiment)
		}
		if m.Answers == 0 {
			t.Errorf("%s x=%g: no answers", m.Query, m.X)
		}
	}
	var sb strings.Builder
	Print(&sb, "Figure 5", "m", ms)
	out := sb.String()
	for _, want := range []string{"Figure 5", "query P1", "query S2", "partial (ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
}

func TestFig6OffendingGrowsWithRF(t *testing.T) {
	sc := tiny()
	sc.Queries = []string{"P1"}
	ms, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	var offending []int
	for _, m := range ms {
		if m.Err != "" {
			t.Fatalf("%+v", m)
		}
		if m.Strategy == core.PartialLineage {
			offending = append(offending, m.Offending)
		}
	}
	if len(offending) != 3 {
		t.Fatalf("offending series = %v", offending)
	}
	if offending[0] != 0 {
		t.Errorf("r_f=0 has %d offending tuples", offending[0])
	}
	if offending[2] <= offending[0] || offending[2] < offending[1] {
		t.Errorf("offending tuples do not grow with r_f: %v", offending)
	}
}

func TestFig7Runs(t *testing.T) {
	sc := tiny()
	sc.Queries = []string{"P1"}
	ms, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Err != "" {
			t.Errorf("%+v", m)
		}
	}
	// r_d = 0 means fully deterministic R tables: zero offending tuples.
	for _, m := range ms {
		if m.X == 0 && m.Strategy == core.PartialLineage && m.Offending != 0 {
			t.Errorf("r_d=0 produced %d offending tuples", m.Offending)
		}
	}
}

func TestPrintTable1(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb)
	out := sb.String()
	for _, want := range []string{"P1/S1", "P2", "P3", "S2", "S3", "R1, S1, R2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 printout missing %q", want)
		}
	}
}
