package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/pdb"
)

// The incremental benchmark measures the two halves of the write path fix:
//
//   - retention: with per-relation cache versioning, a workload that churns
//     one relation must keep serving warm hits for queries reading only the
//     others. The full-purge baseline is reproduced by churning the queried
//     relation itself — under whole-database versioning every write purged
//     every entry, so the self-churn hit ratio is exactly what all queries
//     used to get.
//   - refresh: patching a materialized view in place after a
//     structure-preserving prob-update, versus the full recompute a
//     structural write forces, on an instance with many answers of which a
//     single-tuple write dirties one.

// RetentionPoint is one serving workload: interleaved writes and queries,
// counting how many query responses were still served from the cache.
type RetentionPoint struct {
	// Workload is "unrelated-churn" (writes hit a relation the measured
	// query does not read) or "self-churn" (writes hit the queried relation;
	// the full-purge baseline).
	Workload string  `json:"workload"`
	Requests int     `json:"requests"`
	WarmHits int     `json:"warm_hits"`
	HitRatio float64 `json:"hit_ratio"`
	Err      string  `json:"error,omitempty"`
}

// RefreshPoint times materialized-view refresh for one kind of write.
type RefreshPoint struct {
	// Kind is "patched" (prob-update inside (0,1)) or "recomputed"
	// (structural delete+insert pair).
	Kind    string `json:"kind"`
	Rounds  int    `json:"rounds"`
	MeanNs  int64  `json:"mean_ns"`
	Answers int    `json:"answers"`
	Err     string `json:"error,omitempty"`
}

// IncrementalReport is the BENCH_incremental.json artifact.
type IncrementalReport struct {
	Retention []RetentionPoint `json:"retention"`
	Refresh   []RefreshPoint   `json:"refresh"`
	// PatchSpeedup is recomputed mean over patched mean: how much cheaper a
	// structure-preserving refresh is than the recompute every write used to
	// pay.
	PatchSpeedup float64 `json:"patch_speedup"`
}

// retentionRounds is the number of write+query rounds per workload;
// refreshRounds the number of timed refreshes per kind.
const (
	retentionRounds = 60
	refreshRounds   = 30
)

// IncrementalBench runs both measurements and assembles the report.
func IncrementalBench(sc Scale) (*IncrementalReport, error) {
	rep := &IncrementalReport{}
	for _, self := range []bool{false, true} {
		pt, err := retentionBench(sc, self)
		if err != nil {
			return nil, err
		}
		rep.Retention = append(rep.Retention, pt)
	}
	patched, recomputed, err := refreshBench()
	if err != nil {
		return nil, err
	}
	rep.Refresh = []RefreshPoint{patched, recomputed}
	if patched.MeanNs > 0 && patched.Err == "" && recomputed.Err == "" {
		rep.PatchSpeedup = float64(recomputed.MeanNs) / float64(patched.MeanNs)
	}
	return rep, nil
}

// retentionDB builds two independent join pairs: the measured query reads
// B/B2 only, the churned relation is A (or B itself for the baseline).
func retentionDB() (*pdb.Database, error) {
	db := pdb.NewDatabase()
	for _, pair := range []struct{ one, two string }{{"A", "A2"}, {"B", "B2"}} {
		r := db.CreateRelation(pair.one, "x")
		r2 := db.CreateRelation(pair.two, "x", "y")
		for x := int64(1); x <= 12; x++ {
			if err := r.AddInts(0.5, x); err != nil {
				return nil, err
			}
			for y := int64(1); y <= 4; y++ {
				if err := r2.AddInts(0.5, x, y); err != nil {
					return nil, err
				}
			}
		}
	}
	return db, nil
}

// retentionBench interleaves one write and one query per round and counts
// cache-served responses. The measured query always reads B/B2; self
// selects whether the writes churn B (baseline) or A (unrelated).
func retentionBench(sc Scale, self bool) (RetentionPoint, error) {
	pt := RetentionPoint{Workload: "unrelated-churn"}
	churn := "A"
	if self {
		pt.Workload, churn = "self-churn", "B"
	}
	db, err := retentionDB()
	if err != nil {
		return pt, err
	}
	srv, err := server.New(server.Config{DB: db, MaxInFlight: 4, Metrics: &obs.Registry{}})
	if err != nil {
		return pt, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(server.QueryRequest{
		Query:       "q(x) :- B(x), B2(x, y)",
		Strategy:    core.DNFLineage.String(),
		Parallelism: sc.Parallelism,
	})
	if err != nil {
		return pt, err
	}
	ask := func() (bool, error) {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return false, fmt.Errorf("experiments: query status %d: %s", resp.StatusCode, b)
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return false, err
		}
		return qr.Cached, nil
	}
	// Warm the entry; the first evaluation is not part of the measurement.
	if _, err := ask(); err != nil {
		return pt, err
	}
	rel, err := db.Relation(churn)
	if err != nil {
		return pt, err
	}
	probs := []float64{0.3, 0.7, 0.4, 0.6}
	for round := 0; round < retentionRounds; round++ {
		p := probs[round%len(probs)]
		if err := rel.SetProb(p, pdb.Int(int64(round%12)+1)); err != nil {
			return pt, err
		}
		hit, err := ask()
		if err != nil {
			return pt, err
		}
		pt.Requests++
		if hit {
			pt.WarmHits++
		}
	}
	if pt.Requests > 0 {
		pt.HitRatio = float64(pt.WarmHits) / float64(pt.Requests)
	}
	return pt, nil
}

// refreshDB builds the many-answer instance for the refresh timing: a safe
// join q(x) :- R(x, y), S(y) with refreshAnswers answer groups, so a
// single-tuple prob-update dirties exactly one of them.
const refreshAnswers = 300

func refreshDB() (*pdb.Database, error) {
	db := pdb.NewDatabase()
	r := db.CreateRelation("R", "x", "y")
	s := db.CreateRelation("S", "y")
	for y := int64(1); y <= 4; y++ {
		if err := s.AddInts(0.5, y); err != nil {
			return nil, err
		}
	}
	for x := int64(1); x <= refreshAnswers; x++ {
		for y := int64(1); y <= 4; y++ {
			if err := r.AddInts(0.5, x, y); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// refreshBench times patched refreshes (prob-update on one R tuple) against
// recomputed refreshes (delete+reinsert of the same tuple) on one view.
func refreshBench() (RefreshPoint, RefreshPoint, error) {
	patched := RefreshPoint{Kind: "patched", Rounds: refreshRounds, Answers: refreshAnswers}
	recomputed := RefreshPoint{Kind: "recomputed", Rounds: refreshRounds, Answers: refreshAnswers}
	db, err := refreshDB()
	if err != nil {
		return patched, recomputed, err
	}
	q, err := pdb.ParseQuery("q(x) :- R(x, y), S(y)")
	if err != nil {
		return patched, recomputed, err
	}
	view, err := db.Materialize(q, pdb.Options{Strategy: core.DNFLineage})
	if err != nil {
		return patched, recomputed, err
	}
	rel, err := db.Relation("R")
	if err != nil {
		return patched, recomputed, err
	}
	refresh := func(want pdb.RefreshKind) (time.Duration, error) {
		start := time.Now()
		kind, err := view.Refresh()
		if err != nil {
			return 0, err
		}
		if kind != want {
			return 0, fmt.Errorf("experiments: refresh kind %v, want %v", kind, want)
		}
		return time.Since(start), nil
	}
	var patchTotal, recompTotal time.Duration
	probs := []float64{0.3, 0.7, 0.4, 0.6}
	for i := 0; i < refreshRounds; i++ {
		x := int64(i%refreshAnswers) + 1
		// Structure-preserving write: patch in place.
		if err := rel.SetProb(probs[i%len(probs)], pdb.Int(x), pdb.Int(1)); err != nil {
			return patched, recomputed, err
		}
		d, err := refresh(pdb.RefreshPatched)
		if err != nil {
			return patched, recomputed, err
		}
		patchTotal += d
		// Structural write: delete and reinsert the same tuple.
		if err := rel.Delete(pdb.Int(x), pdb.Int(2)); err != nil {
			return patched, recomputed, err
		}
		if err := rel.AddInts(0.5, x, 2); err != nil {
			return patched, recomputed, err
		}
		d, err = refresh(pdb.RefreshRecomputed)
		if err != nil {
			return patched, recomputed, err
		}
		recompTotal += d
	}
	patched.MeanNs = patchTotal.Nanoseconds() / refreshRounds
	recomputed.MeanNs = recompTotal.Nanoseconds() / refreshRounds
	return patched, recomputed, nil
}

// WriteIncrementalJSON renders the benchmark report as indented JSON.
func WriteIncrementalJSON(w io.Writer, rep *IncrementalReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
