package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestIncrementalPerfSmoke guards the committed BENCH_incremental.json
// against silent regressions in the write path: the warm-hit retention of
// the versioned cache under unrelated churn, and the patch-vs-recompute
// refresh advantage, must each stay within half of the committed figures.
// The retention ratio is the tentpole's acceptance signal — a workload
// mutating relation A must retain warm hits for queries reading only B.
// Skips when the artifact is absent (fresh checkout pruned of benchmark
// outputs).
func TestIncrementalPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not a -short test")
	}
	data, err := os.ReadFile("../../BENCH_incremental.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_incremental.json not committed")
	}
	if err != nil {
		t.Fatal(err)
	}
	var committed IncrementalReport
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("parsing committed BENCH_incremental.json: %v", err)
	}

	got, err := IncrementalBench(Small())
	if err != nil {
		t.Fatal(err)
	}

	retBy := map[string]RetentionPoint{}
	for _, pt := range got.Retention {
		retBy[pt.Workload] = pt
	}
	for _, want := range committed.Retention {
		if want.Err != "" || want.Workload != "unrelated-churn" || want.HitRatio < 0.5 {
			continue
		}
		pt, ok := retBy[want.Workload]
		if !ok || pt.Err != "" {
			t.Errorf("retention %s: missing or failed in rerun (%+v)", want.Workload, pt)
			continue
		}
		if floor := want.HitRatio / 2; pt.HitRatio < floor {
			t.Errorf("retention %s: hit ratio %.2f regressed below %.2f (committed %.2f)",
				want.Workload, pt.HitRatio, floor, want.HitRatio)
		}
	}
	// The fine-grained cache must beat the full-purge baseline outright:
	// self-churn reproduces the old whole-database invalidation, and
	// unrelated churn has to retain strictly more warmth.
	if a, b := retBy["unrelated-churn"], retBy["self-churn"]; a.Err == "" && b.Err == "" {
		if a.HitRatio <= b.HitRatio {
			t.Errorf("unrelated-churn hit ratio %.2f does not beat full-purge baseline %.2f",
				a.HitRatio, b.HitRatio)
		}
	}

	// Patch speedup is wall-clock and varies with the host, so the floor is
	// capped: "a patched refresh is at least an order of magnitude cheaper
	// than a recompute" must always hold once the committed artifact shows a
	// real advantage.
	if committed.PatchSpeedup >= 2 {
		floor := committed.PatchSpeedup / 2
		if floor > 20 {
			floor = 20
		}
		if got.PatchSpeedup < floor {
			t.Errorf("patch speedup %.1fx regressed below %.1fx (committed %.1fx)",
				got.PatchSpeedup, floor, committed.PatchSpeedup)
		}
	}
}
