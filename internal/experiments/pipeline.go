package experiments

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// PipelinePoint times one Table 1 query through the partial-lineage pipeline
// serially and with a parallel ExecContext, for the BENCH_pipeline.json
// artifact. Parallelism changes wall clock only — answers and the AND-OR
// network are identical by construction.
type PipelinePoint struct {
	Experiment  string  `json:"experiment"`
	Query       string  `json:"query"`
	Parallelism int     `json:"parallelism"`
	SerialNs    int64   `json:"serial_ns_per_op"`
	ParallelNs  int64   `json:"parallel_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	Err         string  `json:"error,omitempty"`
}

// PipelineBench evaluates every Table 1 query on the scale's Fig5 instance
// twice — Parallelism 0 and the given worker count — and reports both times.
// The scale's Samples/MaxWidth/Timeout settings apply to both runs.
func PipelineBench(sc Scale, workers int) ([]PipelinePoint, error) {
	if workers <= 1 {
		workers = 4
	}
	var out []PipelinePoint
	for _, qname := range sc.Queries {
		spec, err := workload.SpecByName(qname)
		if err != nil {
			return nil, err
		}
		pt := PipelinePoint{Experiment: "pipeline", Query: spec.Name, Parallelism: workers}
		serial, err := timeOne(spec, sc, 0)
		if err != nil {
			pt.Err = err.Error()
			out = append(out, pt)
			continue
		}
		parallel, err := timeOne(spec, sc, workers)
		if err != nil {
			pt.Err = err.Error()
			out = append(out, pt)
			continue
		}
		pt.SerialNs = serial.Nanoseconds()
		pt.ParallelNs = parallel.Nanoseconds()
		if parallel > 0 {
			pt.Speedup = float64(serial) / float64(parallel)
		}
		out = append(out, pt)
	}
	return out, nil
}

// timeOne runs one partial-lineage evaluation at the given parallelism and
// returns its wall time.
func timeOne(spec workload.Spec, sc Scale, workers int) (time.Duration, error) {
	db, err := workload.GenerateFor(spec, sc.Fig5)
	if err != nil {
		return 0, err
	}
	plan, err := spec.Plan()
	if err != nil {
		return 0, err
	}
	opts := engine.Options{
		Strategy:    core.PartialLineage,
		Samples:     sc.Samples,
		Seed:        sc.Fig5.Seed,
		Parallelism: workers,
	}
	opts.Inference.MaxFactorVars = sc.MaxWidth
	opts.Budget.Time = sc.Timeout
	start := time.Now()
	_, err = engine.Evaluate(db, spec.Query(), plan, opts)
	return time.Since(start), err
}

// WritePipelineJSON renders the benchmark points as indented JSON.
func WritePipelineJSON(w io.Writer, points []PipelinePoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
