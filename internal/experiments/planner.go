package experiments

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// PlannerPoint compares one workload evaluated with the cost-aware planner
// (the default) against -no-adaptive-plan (safe plan else body order, fixed
// backend try-order). Both modes compute the same answers; the planner's
// lever is the offending-tuple count — a join order that avoids conditioning
// turns an exponential Shannon expansion into an extensional evaluation.
type PlannerPoint struct {
	Query             string  `json:"query"`
	LegacyNs          int64   `json:"legacy_ns"`
	AdaptiveNs        int64   `json:"adaptive_ns"`
	Speedup           float64 `json:"speedup"`
	LegacyOffending   int     `json:"legacy_offending"`
	AdaptiveOffending int     `json:"adaptive_offending"`
	PlanSource        string  `json:"plan_source"`
	PlanOrder         string  `json:"plan_order,omitempty"`
	Err               string  `json:"error,omitempty"`
}

// BackendCalibration is one inference backend's attempt history over the
// adaptive runs, from the planner's stats sink: how often the ranking
// reached it, how often it won, and its mean attempt wall time. The sink is
// observability-only (it never feeds back into ranking); this section is the
// data one would eyeball to retune the cost model's constants.
type BackendCalibration struct {
	Backend   string `json:"backend"`
	Attempts  int64  `json:"attempts"`
	Wins      int64  `json:"wins"`
	Fallbacks int64  `json:"fallbacks"`
	MeanNs    int64  `json:"mean_attempt_ns"`
}

// PlannerReport is the BENCH_planner.json artifact.
type PlannerReport struct {
	Workloads []PlannerPoint       `json:"workloads"`
	Backends  []BackendCalibration `json:"backend_calibration,omitempty"`
}

// plannerWorkload is one benchmark instance: a database and a query whose
// written body order may or may not be the order the planner would pick.
type plannerWorkload struct {
	name string
	db   *relation.Database
	q    *query.Query
}

// fdDirectionDB scales the planner tests' asymmetric instance: in
// B(x, y) the functional dependency x→y holds (y = x mod ys) but y→x does
// not, so joining A⋈B first is data-safe while joining C⋈B first conditions
// one tuple per violated y-group member.
func fdDirectionDB(xs, ys int) *relation.Database {
	db := relation.NewDatabase()
	a := relation.New("A", "x")
	b := relation.New("B", "x", "y")
	c := relation.New("C", "y")
	for x := 1; x <= xs; x++ {
		a.MustAdd(tuple.Ints(int64(x)), 0.5)
		b.MustAdd(tuple.Ints(int64(x), int64(x%ys)), 0.5)
	}
	for y := 0; y < ys; y++ {
		c.MustAdd(tuple.Ints(int64(y)), 0.5)
	}
	db.AddRelation(a)
	db.AddRelation(b)
	db.AddRelation(c)
	return db
}

// plannerWorkloads builds the mixed workload: one instance where the written
// body order conditions heavily and the planner must reorder (the headline
// point), the same instance with the body already in the safe direction (the
// planner must not regress a well-written query), and the shared-core
// instance whose per-answer lineages exercise the backend ranking without
// any join-order freedom.
func plannerWorkloads(sc Scale) []plannerWorkload {
	fd := fdDirectionDB(sc.PlannerXs, 12)
	return []plannerWorkload{
		// Body order C, B, A: C⋈B joins against the violated FD direction,
		// so the legacy body-order plan conditions one tuple per x sharing
		// the joined y — Shannon expansion exponential in that count. The
		// planner's estimator sees the violation and flips to A-first.
		{"fd-adversarial-order", fd, query.MustParse("q :- C(y), B(x, y), A(x)")},
		// Same instance, body already safe: both modes evaluate the same
		// physical plan, so this point isolates the planner's own overhead
		// (the one-pass selectivity profiling) — expect a ratio below 1 on a
		// sub-millisecond query, converging to 1 as evaluation grows.
		{"fd-good-order", fd, query.MustParse("q :- A(x), B(x, y), C(y)")},
		// Shared-core: every answer's lineage meets one hard triangle core.
		// No join order avoids the correlation; the point exercises the
		// backend-ranking half of the planner (Shannon-first with the
		// cross-answer memo) rather than join ordering.
		{"shared-core", sharedCoreDB(7, 4), query.MustParse("q(h) :- G(h), R(x), S(x, y), T(y)")},
	}
}

// PlannerBench measures the adaptive planner against the legacy pipeline on
// the mixed workload: best-of-three interleaved wall clocks per mode, the
// measured offending-tuple counts both ways, and the backend calibration
// accumulated by the adaptive runs' sink.
func PlannerBench(sc Scale) (*PlannerReport, error) {
	sink := planner.NewSink()
	rep := &PlannerReport{}
	for _, wl := range plannerWorkloads(sc) {
		pt := PlannerPoint{Query: wl.name}
		run := func(noAdaptive bool) (time.Duration, *engine.Result, error) {
			opts := engine.Options{
				Strategy:       core.PartialLineage,
				Parallelism:    sc.Parallelism,
				Seed:           1,
				NoAdaptivePlan: noAdaptive,
			}
			if !noAdaptive {
				opts.PlannerSink = sink
			}
			opts.Inference.MaxFactorVars = sc.MaxWidth
			opts.Budget.Time = sc.Timeout
			start := time.Now()
			res, err := engine.EvaluateQuery(wl.db, wl.q, opts)
			return time.Since(start), res, err
		}
		var legacyBest, adaptiveBest time.Duration
		var legacyRes, adaptiveRes *engine.Result
		for i := 0; i < 3; i++ {
			legacy, lres, err := run(true)
			if err != nil {
				pt.Err = err.Error()
				break
			}
			adaptive, ares, err := run(false)
			if err != nil {
				pt.Err = err.Error()
				break
			}
			if i == 0 || legacy < legacyBest {
				legacyBest, legacyRes = legacy, lres
			}
			if i == 0 || adaptive < adaptiveBest {
				adaptiveBest, adaptiveRes = adaptive, ares
			}
		}
		if pt.Err == "" {
			pt.LegacyNs, pt.AdaptiveNs = legacyBest.Nanoseconds(), adaptiveBest.Nanoseconds()
			if adaptiveBest > 0 {
				pt.Speedup = float64(legacyBest) / float64(adaptiveBest)
			}
			pt.LegacyOffending = legacyRes.Stats.OffendingTuples
			pt.AdaptiveOffending = adaptiveRes.Stats.OffendingTuples
			pt.PlanSource = adaptiveRes.Stats.PlanSource
			pt.PlanOrder = adaptiveRes.Stats.PlanOrder
		}
		rep.Workloads = append(rep.Workloads, pt)
	}
	rep.Backends = calibration(sink)
	return rep, nil
}

// calibration flattens a sink snapshot into a sorted, JSON-stable slice.
func calibration(s *planner.Sink) []BackendCalibration {
	snap := s.Snapshot()
	out := make([]BackendCalibration, 0, len(snap))
	for name, st := range snap {
		c := BackendCalibration{
			Backend:   name,
			Attempts:  st.Attempts,
			Wins:      st.Wins,
			Fallbacks: st.Fallbacks,
		}
		if st.Attempts > 0 {
			c.MeanNs = st.Nanos / st.Attempts
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// WritePlannerJSON writes the report as indented, HTML-unescaped JSON.
func WritePlannerJSON(w io.Writer, rep *PlannerReport) error {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rep); err != nil {
		return err
	}
	_, err := io.WriteString(w, b.String())
	return err
}
