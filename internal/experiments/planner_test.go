package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestPlannerPerfSmoke guards the committed BENCH_planner.json: it re-runs
// the planner benchmark at the small scale and fails when a measured speedup
// drops below half of the committed improvement. Points committed below 1.5x
// are not gated (the fd-good-order point deliberately measures planning
// overhead and sits below 1), but the planner's qualitative win — fewer
// offending tuples than the legacy plan on every workload — is always
// checked. Skips when the artifact is absent.
func TestPlannerPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not a -short test")
	}
	data, err := os.ReadFile("../../BENCH_planner.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_planner.json not committed")
	}
	if err != nil {
		t.Fatal(err)
	}
	var committed PlannerReport
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("parsing committed BENCH_planner.json: %v", err)
	}

	got, err := PlannerBench(Small())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PlannerPoint{}
	for _, pt := range got.Workloads {
		byName[pt.Query] = pt
	}

	for _, want := range committed.Workloads {
		if want.Err != "" {
			continue
		}
		pt, ok := byName[want.Query]
		if !ok || pt.Err != "" {
			t.Errorf("planner %s: missing or failed in rerun (%+v)", want.Query, pt)
			continue
		}
		// Offending counts are deterministic properties of the chosen plans;
		// the adaptive plan must never condition more than the legacy one.
		if pt.AdaptiveOffending > pt.LegacyOffending {
			t.Errorf("planner %s: adaptive plan conditions %d tuples, legacy %d — the planner made the query worse",
				want.Query, pt.AdaptiveOffending, pt.LegacyOffending)
		}
		if want.Speedup < 1.5 {
			continue
		}
		if floor := want.Speedup / 2; pt.Speedup < floor {
			t.Errorf("planner %s: speedup %.2fx regressed below %.2fx (committed %.2fx)",
				want.Query, pt.Speedup, floor, want.Speedup)
		}
	}
}
