package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/relation"
)

// SpillPoint compares one grounding-heavy workload executed in memory
// (no budget) against the same evaluation under a memory budget of a
// quarter of its measured scratch peak, forcing join/dedup partitions to
// spill to disk. Outputs are byte-identical either way (docs/SPILL.md);
// the point records how much throughput the spilling costs.
type SpillPoint struct {
	Workload string `json:"workload"`
	InMemNs  int64  `json:"in_memory_ns"`
	SpillNs  int64  `json:"spill_ns"`
	// Ratio is spill throughput relative to in-memory (in_memory_ns /
	// spill_ns); 1.0 means spilling was free, 0.5 means it halved
	// throughput.
	Ratio             float64 `json:"throughput_ratio"`
	BudgetBytes       int64   `json:"budget_bytes"`
	PeakBytes         int64   `json:"mem_peak_bytes"`
	SpilledPartitions int64   `json:"spilled_partitions"`
	SpillBytes        int64   `json:"spill_bytes"`
	Err               string  `json:"error,omitempty"`
}

// SpillReport is the BENCH_spill.json artifact.
type SpillReport struct {
	Points []SpillPoint `json:"spill"`
}

// Spill benchmark instance sizes. Fixed rather than scaled: the workloads
// exist to push tens of thousands of rows through the join/dedup pipeline
// (so partition scratch is worth bounding), while inference is skipped —
// the benchmark isolates the operator pipeline the memory budget governs.
const (
	spillSharedDom   = 20
	spillSharedHeads = 100
	spillGridGroups  = 200
	spillGridFanout  = 30
)

// SpillBench measures the in-memory pipeline against 25%-of-peak budgeted
// execution on the shared-core and grid workloads: best-of-three
// interleaved wall clocks per side, with an inline equivalence check on the
// grounding statistics (the byte-level identity of spilled execution is
// pinned separately by internal/pl's property suite and the crosscheck
// spill dimension). A budgeted run that spills nothing is reported as an
// error — the benchmark must exercise the spill path to mean anything.
func SpillBench(sc Scale) (*SpillReport, error) {
	type spillWorkload struct {
		name  string
		db    *relation.Database
		query string
		order []string
	}
	workloads := []spillWorkload{
		{
			name:  "shared-core",
			db:    sharedCoreDB(spillSharedDom, spillSharedHeads),
			query: "q(h) :- G(h), R(x), S(x, y), T(y)",
			order: []string{"G", "R", "S", "T"},
		},
		{
			name:  "grid-groups",
			db:    gridGroupsDB(spillGridGroups, spillGridFanout),
			query: "q(h) :- R(h, a), S(h, a, b), T(h, b)",
			order: []string{"R", "S", "T"},
		},
	}

	rep := &SpillReport{}
	for _, w := range workloads {
		pt := SpillPoint{Workload: w.name}
		q := query.MustParse(w.query)
		plan, err := query.LeftDeepPlan(q, w.order)
		if err != nil {
			return nil, err
		}
		opts := engine.Options{Strategy: core.PartialLineage, SkipInference: true}
		opts.Budget.Time = sc.Timeout

		run := func(mem int64) (time.Duration, *engine.Result, error) {
			o := opts
			o.Budget.Mem = mem
			start := time.Now()
			res, err := engine.Evaluate(w.db, q, plan, o)
			return time.Since(start), res, err
		}

		// Probe with a budget too large to overflow: the spill executor
		// runs, charges its scratch, and never spills — its recorded peak is
		// the reference the 25% budget divides.
		_, probe, err := run(1 << 30)
		if err != nil {
			pt.Err = err.Error()
			rep.Points = append(rep.Points, pt)
			continue
		}
		pt.PeakBytes = probe.Stats.MemPeakBytes
		budget := pt.PeakBytes / 4
		if budget < 1 {
			budget = 1
		}
		pt.BudgetBytes = budget

		var memBest, spillBest time.Duration
		var memRes, spillRes *engine.Result
		for i := 0; i < 3; i++ {
			memDur, mr, errMem := run(0)
			spillDur, sr, errSpill := run(budget)
			if errMem != nil || errSpill != nil {
				err := errMem
				if err == nil {
					err = errSpill
				}
				pt.Err = err.Error()
				break
			}
			if i == 0 || memDur < memBest {
				memBest, memRes = memDur, mr
			}
			if i == 0 || spillDur < spillBest {
				spillBest, spillRes = spillDur, sr
			}
		}
		if pt.Err == "" {
			if err := sameGrounding(memRes, spillRes); err != nil {
				pt.Err = err.Error()
			} else if spillRes.Stats.SpilledPartitions == 0 {
				pt.Err = fmt.Sprintf("budget %d spilled no partitions (peak %d): the benchmark did not exercise the spill path", budget, pt.PeakBytes)
			}
		}
		if pt.Err == "" {
			pt.InMemNs, pt.SpillNs = memBest.Nanoseconds(), spillBest.Nanoseconds()
			if spillBest > 0 {
				pt.Ratio = float64(memBest) / float64(spillBest)
			}
			pt.SpilledPartitions = spillRes.Stats.SpilledPartitions
			pt.SpillBytes = spillRes.Stats.SpillBytes
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// sameGrounding checks that the budgeted run ground the identical result:
// same answers, same AND-OR network shape, same conditioning work. The
// byte-level row/network identity is pinned by internal/pl's property suite
// and internal/crosscheck's spill dimension; this inline check catches a
// divergence the benchmark itself would otherwise time as if it were valid.
func sameGrounding(a, b *engine.Result) error {
	as, bs := a.Stats, b.Stats
	if as.Answers != bs.Answers || as.NetworkNodes != bs.NetworkNodes ||
		as.NetworkEdges != bs.NetworkEdges || as.OffendingTuples != bs.OffendingTuples {
		return fmt.Errorf("spill run diverged: answers %d/%d nodes %d/%d edges %d/%d offending %d/%d",
			as.Answers, bs.Answers, as.NetworkNodes, bs.NetworkNodes,
			as.NetworkEdges, bs.NetworkEdges, as.OffendingTuples, bs.OffendingTuples)
	}
	return nil
}

// WriteSpillJSON renders the benchmark report as indented JSON.
func WriteSpillJSON(w io.Writer, rep *SpillReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
