package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestSpillPerfSmoke guards the committed BENCH_spill.json: it re-runs the
// spill benchmark and fails when a measured throughput ratio drops below
// half of the committed one — i.e. when spilled execution got at least
// twice as expensive relative to in-memory as when the artifact was
// recorded. It also requires the budgeted runs to actually spill: a spill
// benchmark that stays resident is not measuring anything. Skips when the
// artifact is absent (fresh checkout pruned of benchmark outputs).
func TestSpillPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not a -short test")
	}
	data, err := os.ReadFile("../../BENCH_spill.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_spill.json not committed")
	}
	if err != nil {
		t.Fatal(err)
	}
	var committed SpillReport
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("parsing committed BENCH_spill.json: %v", err)
	}

	got, err := SpillBench(Small())
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]SpillPoint{}
	for _, pt := range got.Points {
		by[pt.Workload] = pt
	}
	for _, want := range committed.Points {
		if want.Err != "" {
			continue
		}
		pt, ok := by[want.Workload]
		if !ok || pt.Err != "" {
			t.Errorf("spill %s: missing or failed in rerun (%+v)", want.Workload, pt)
			continue
		}
		if pt.SpilledPartitions == 0 {
			t.Errorf("spill %s: budgeted run spilled no partitions", want.Workload)
		}
		if floor := want.Ratio / 2; pt.Ratio < floor {
			t.Errorf("spill %s: throughput ratio %.3f regressed below %.3f (committed %.3f)",
				want.Workload, pt.Ratio, floor, want.Ratio)
		}
	}
}
