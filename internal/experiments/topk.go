package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/topk"
	"repro/internal/tuple"
)

// TopkPoint compares one top-k workload ranked with dissociation-seeded
// intervals (the default) against cold multisimulation (-no-seed-bounds):
// identical top-k sets, but the seeded run starts every answer with a
// guaranteed interval, so Karp–Luby samples are spent only on answers whose
// intervals straddle the k-th boundary.
type TopkPoint struct {
	Workload      string  `json:"workload"`
	K             int     `json:"k"`
	Answers       int     `json:"answers"`
	ColdNs        int64   `json:"cold_ns"`
	SeededNs      int64   `json:"seeded_ns"`
	Speedup       float64 `json:"speedup"`
	ColdSamples   int     `json:"cold_samples"`
	SeededSamples int     `json:"seeded_samples"`
	ColdRounds    int     `json:"cold_rounds"`
	SeededRounds  int     `json:"seeded_rounds"`
	SeededExact   int     `json:"seeded_exact"`
	Err           string  `json:"error,omitempty"`
}

// TopkReport is the BENCH_topk.json artifact.
type TopkReport struct {
	Points []TopkPoint `json:"points"`
}

// topkWorkload is one benchmark instance: a grounding whose per-answer
// lineages are large enough that the exact-clause shortcut does not apply.
type topkWorkload struct {
	name string
	db   *relation.Database
	q    *query.Query
	k    int
}

// readOnceGroupsDB builds the read-once instance: answer h's lineage is
// ∨_a r_ha ∧ (s_ha0 ∨ s_ha1), which factorizes exactly — dissociation
// seeding collapses every interval to a point and the seeded run ranks with
// zero samples, while the cold run has to simulate every answer down to
// separation. Probabilities are graded (≈ h-proportional) and kept small
// enough that the answers spread across (0, 1) instead of saturating.
func readOnceGroupsDB(groups, fanout int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "h", "a")
	s := relation.New("S", "h", "a", "b")
	for h := 1; h <= groups; h++ {
		base := float64(h) / float64(2*groups+1)
		for a := 1; a <= fanout; a++ {
			r.MustAdd(tuple.Ints(int64(h), int64(a)), base)
			for b := 0; b < 2; b++ {
				s.MustAdd(tuple.Ints(int64(h), int64(a), int64(b)), 0.2)
			}
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	return db
}

// gridGroupsDB is the entangled variant: answer h's lineage is the grid
// ∨_{a,b} r_ha · s_hab · t_hb, where every r is shared across the b's and
// every t across the a's — provably not read-once, so dissociation yields a
// genuine [lo, hi] interval. Probabilities come in bands of four (every
// band shares one R base probability), so the k-th boundary falls in a real
// gap while answers inside a band are near-tied.
func gridGroupsDB(groups, fanout int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "h", "a")
	s := relation.New("S", "h", "a", "b")
	tt := relation.New("T", "h", "b")
	for h := 1; h <= groups; h++ {
		band := 1 + (h-1)/4
		base := float64(band) / float64(groups/4+2)
		for b := 0; b < 2; b++ {
			tt.MustAdd(tuple.Ints(int64(h), int64(b)), 0.7)
		}
		for a := 1; a <= fanout; a++ {
			r.MustAdd(tuple.Ints(int64(h), int64(a)), base)
			for b := 0; b < 2; b++ {
				s.MustAdd(tuple.Ints(int64(h), int64(a), int64(b)), 0.15)
			}
		}
	}
	db.AddRelation(r)
	db.AddRelation(s)
	db.AddRelation(tt)
	return db
}

func topkWorkloads(sc Scale) []topkWorkload {
	groups, fanout := sc.TopkGroups, sc.TopkFanout
	return []topkWorkload{
		{"readonce-groups", readOnceGroupsDB(groups, fanout),
			query.MustParse("q(h) :- R(h, a), S(h, a, b)"), 5},
		// k = 4 aligns the boundary with the gap below the top band.
		{"grid-groups", gridGroupsDB(groups, fanout),
			query.MustParse("q(h) :- R(h, a), S(h, a, b), T(h, b)"), 4},
	}
}

// TopkBench measures dissociation-seeded top-k against cold multisimulation:
// best-of-three interleaved wall clocks per mode on each workload, plus the
// sampling effort both modes spent. The correctness cross-check (identical
// top-k sets) runs inline — a benchmark whose two modes disagree reports an
// error instead of a timing.
func TopkBench(sc Scale) (*TopkReport, error) {
	rep := &TopkReport{}
	for _, wl := range topkWorkloads(sc) {
		pt := TopkPoint{Workload: wl.name, K: wl.k}
		order := make([]string, len(wl.q.Atoms))
		for i := range wl.q.Atoms {
			order[i] = wl.q.Atoms[i].Pred
		}
		plan, err := query.LeftDeepPlan(wl.q, order)
		if err != nil {
			return nil, fmt.Errorf("experiments: topk %s: %w", wl.name, err)
		}
		g, err := engine.Ground(wl.db, wl.q, plan)
		if err != nil {
			return nil, fmt.Errorf("experiments: topk %s: %w", wl.name, err)
		}
		pt.Answers = len(g.Answers)
		run := func(cold bool) (time.Duration, *topk.Result, error) {
			opts := topk.Options{
				K:                wl.k,
				Seed:             1,
				ExactClauseLimit: 1, // force the anytime machinery: no exact shortcut
				NoSeedBounds:     cold,
			}
			start := time.Now()
			res, err := topk.FromGrounding(g, opts)
			return time.Since(start), res, err
		}
		var seeded, cold *topk.Result
		for i := 0; i < 3; i++ {
			dc, rc, err := run(true)
			if err != nil {
				pt.Err = err.Error()
				break
			}
			ds, rs, err := run(false)
			if err != nil {
				pt.Err = err.Error()
				break
			}
			if i == 0 || dc.Nanoseconds() < pt.ColdNs {
				pt.ColdNs, cold = dc.Nanoseconds(), rc
			}
			if i == 0 || ds.Nanoseconds() < pt.SeededNs {
				pt.SeededNs, seeded = ds.Nanoseconds(), rs
			}
		}
		if pt.Err == "" {
			if err := sameTopSet(seeded, cold); err != nil {
				pt.Err = err.Error()
			} else {
				pt.Speedup = float64(pt.ColdNs) / float64(pt.SeededNs)
				pt.ColdSamples, pt.ColdRounds = totalSamples(cold), cold.Rounds
				pt.SeededSamples, pt.SeededRounds = totalSamples(seeded), seeded.Rounds
				pt.SeededExact = seeded.SeededExact
			}
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// sameTopSet checks the two modes chose the same answer set (order-free:
// near-ties may legitimately swap ranks inside the set).
func sameTopSet(a, b *topk.Result) error {
	if len(a.Top) != len(b.Top) {
		return fmt.Errorf("seeded returned %d answers, cold %d", len(a.Top), len(b.Top))
	}
	seen := make(map[string]bool, len(a.Top))
	for _, ans := range a.Top {
		seen[ans.Vals.Key()] = true
	}
	for _, ans := range b.Top {
		if !seen[ans.Vals.Key()] {
			return fmt.Errorf("cold answer %v not in seeded top-k", ans.Vals)
		}
	}
	return nil
}

func totalSamples(res *topk.Result) int {
	n := 0
	for _, a := range res.All {
		n += a.Samples
	}
	return n
}

// WriteTopkJSON writes the report as indented, HTML-unescaped JSON.
func WriteTopkJSON(w io.Writer, rep *TopkReport) error {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rep); err != nil {
		return err
	}
	_, err := io.WriteString(w, b.String())
	return err
}
