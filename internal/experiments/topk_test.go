package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestTopkPerfSmoke guards the committed BENCH_topk.json: it re-runs the
// top-k benchmark at the small scale and fails when a measured seeded-vs-cold
// speedup drops below half of the committed one. Points committed below 1.5x
// are not gated (the grid-groups point deliberately measures a workload whose
// dissociation intervals are too wide to beat the cold union-bound start),
// but the qualitative wins are always checked: both modes agree on the
// top-k set (TopkBench fails the point otherwise) and the seeded run never
// samples more than the cold one. Skips when the artifact is absent.
func TestTopkPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not a -short test")
	}
	data, err := os.ReadFile("../../BENCH_topk.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_topk.json not committed")
	}
	if err != nil {
		t.Fatal(err)
	}
	var committed TopkReport
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("parsing committed BENCH_topk.json: %v", err)
	}
	for _, pt := range committed.Points {
		if pt.Err != "" {
			t.Errorf("committed point %s carries an error: %s", pt.Workload, pt.Err)
		}
	}

	got, err := TopkBench(Small())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TopkPoint{}
	for _, pt := range got.Points {
		byName[pt.Workload] = pt
	}

	for _, want := range committed.Points {
		if want.Err != "" {
			continue
		}
		pt, ok := byName[want.Workload]
		if !ok {
			t.Errorf("topk %s: missing from rerun", want.Workload)
			continue
		}
		if pt.Err != "" {
			t.Errorf("topk %s: rerun failed: %s", want.Workload, pt.Err)
			continue
		}
		// Seeding must never add sampling work: every interval starts no
		// wider than cold's, so the critical set is a subset round by round.
		if pt.SeededSamples > pt.ColdSamples {
			t.Errorf("topk %s: seeded run drew %d samples, cold %d — seeding added work",
				want.Workload, pt.SeededSamples, pt.ColdSamples)
		}
		if want.Speedup < 1.5 {
			continue
		}
		if floor := want.Speedup / 2; pt.Speedup < floor {
			t.Errorf("topk %s: speedup %.2fx regressed below %.2fx (committed %.2fx)",
				want.Workload, pt.Speedup, floor, want.Speedup)
		}
	}
}
