package inference

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/aonet"
	"repro/internal/core"
)

// ErrSamples reports a non-positive sample count passed to a sampler. The
// error-returning variants return it (wrapped with the offending value)
// instead of dividing by zero into a NaN estimate; matchable with errors.Is.
var ErrSamples = errors.New("inference: sample count must be positive")

// MonteCarlo estimates N⁰(x_target = 1) by forward sampling: leaves are
// drawn from their priors, gate nodes are computed from their sampled
// parents with each edge firing independently with its edge probability.
// Sampling is restricted to the ancestors of target. The estimator is
// unbiased with standard error at most 1/(2·sqrt(samples)). A non-positive
// sample count is clamped to one draw; MonteCarloCtx is the cancellable
// variant and rejects it instead.
func MonteCarlo(n *aonet.Network, target aonet.NodeID, samples int, rng *rand.Rand) float64 {
	if samples < 1 {
		samples = 1
	}
	p, err := MonteCarloCtx(nil, n, target, samples, rng)
	if err != nil {
		panic("inference: MonteCarloCtx failed without a context: " + err.Error())
	}
	return p
}

// MonteCarloCtx is MonteCarlo under an ExecContext, polling cancellation
// every core.CheckInterval samples. samples must be positive (ErrSamples
// otherwise — hits/samples would be NaN).
func MonteCarloCtx(ec *core.ExecContext, n *aonet.Network, target aonet.NodeID, samples int, rng *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("%w: got %d", ErrSamples, samples)
	}
	nodes := n.Ancestors(target) // sorted ascending = topological order
	x := make(map[aonet.NodeID]bool, len(nodes))
	chk := core.Check{EC: ec}
	hits := 0
	for s := 0; s < samples; s++ {
		if err := chk.Tick(); err != nil {
			return 0, err
		}
		for _, v := range nodes {
			switch n.Label(v) {
			case aonet.Leaf:
				x[v] = rng.Float64() < n.LeafP(v)
			case aonet.Or:
				val := false
				for _, e := range n.Parents(v) {
					if x[e.From] && rng.Float64() < e.P {
						val = true
						break
					}
				}
				x[v] = val
			case aonet.And:
				val := true
				for _, e := range n.Parents(v) {
					if !x[e.From] || rng.Float64() >= e.P {
						val = false
						break
					}
				}
				x[v] = val
			}
		}
		if x[target] {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}

// BruteForce computes N⁰(x_target = 1) by enumerating assignments over the
// ancestors of target (a parent-closed set, so all other nodes marginalize
// to one). It is exact but exponential; used to validate Exact and
// MonteCarlo on small networks.
func BruteForce(n *aonet.Network, target aonet.NodeID) (float64, error) {
	nodes := n.Ancestors(target)
	k := len(nodes)
	if k > aonet.MaxBruteForceNodes {
		return 0, fmt.Errorf("inference: %d ancestor nodes exceeds brute-force limit %d", k, aonet.MaxBruteForceNodes)
	}
	pos := make(map[aonet.NodeID]int, k)
	for i, v := range nodes {
		pos[v] = i
	}
	// Assignment over the full network width so CondProbTrue can index it;
	// non-ancestor entries are never read by ancestor CPDs.
	x := make([]bool, n.Len())
	total := 0.0
	ti := pos[target]
	for mask := 0; mask < 1<<uint(k); mask++ {
		if mask&(1<<uint(ti)) == 0 {
			continue
		}
		for i, v := range nodes {
			x[v] = mask&(1<<uint(i)) != 0
		}
		p := 1.0
		for _, v := range nodes {
			pt := n.CondProbTrue(v, x)
			if x[v] {
				p *= pt
			} else {
				p *= 1 - pt
			}
			if p == 0 {
				break
			}
		}
		total += p
	}
	return total, nil
}

// MonteCarloGiven estimates the conditional marginal
// P(x_target = 1 | evidence) by rejection sampling: forward samples over the
// ancestors of the target and the evidence nodes, discarding samples
// inconsistent with the evidence. It errors when no sample is accepted
// (evidence too unlikely for the sample budget). MonteCarloGivenCtx is the
// cancellable variant.
func MonteCarloGiven(n *aonet.Network, target aonet.NodeID, evidence map[aonet.NodeID]bool, samples int, rng *rand.Rand) (float64, error) {
	return MonteCarloGivenCtx(nil, n, target, evidence, samples, rng)
}

// MonteCarloGivenCtx is MonteCarloGiven under an ExecContext, polling
// cancellation every core.CheckInterval samples. samples must be positive
// (ErrSamples otherwise).
func MonteCarloGivenCtx(ec *core.ExecContext, n *aonet.Network, target aonet.NodeID, evidence map[aonet.NodeID]bool, samples int, rng *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("%w: got %d", ErrSamples, samples)
	}
	roots := []aonet.NodeID{target}
	for v := range evidence {
		roots = append(roots, v)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	seen := make(map[aonet.NodeID]bool)
	var nodes []aonet.NodeID
	for _, r := range roots {
		for _, v := range n.Ancestors(r) {
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	x := make(map[aonet.NodeID]bool, len(nodes))
	chk := core.Check{EC: ec}
	accepted, hits := 0, 0
	for s := 0; s < samples; s++ {
		if err := chk.Tick(); err != nil {
			return 0, err
		}
		for _, v := range nodes {
			switch n.Label(v) {
			case aonet.Leaf:
				x[v] = rng.Float64() < n.LeafP(v)
			case aonet.Or:
				val := false
				for _, e := range n.Parents(v) {
					if x[e.From] && rng.Float64() < e.P {
						val = true
						break
					}
				}
				x[v] = val
			case aonet.And:
				val := true
				for _, e := range n.Parents(v) {
					if !x[e.From] || rng.Float64() >= e.P {
						val = false
						break
					}
				}
				x[v] = val
			}
		}
		ok := true
		for v, want := range evidence {
			if x[v] != want {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		accepted++
		if x[target] {
			hits++
		}
	}
	if accepted == 0 {
		return 0, fmt.Errorf("inference: rejection sampling accepted no sample in %d draws (evidence too unlikely)", samples)
	}
	return float64(hits) / float64(accepted), nil
}
