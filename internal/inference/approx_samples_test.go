package inference

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/aonet"
)

// Regression: samples <= 0 used to flow into hits/samples and return NaN.
// The error-returning variants must reject it with ErrSamples; the legacy
// MonteCarlo wrapper clamps to one draw.
func TestForwardSamplersRejectNonPositiveSamples(t *testing.T) {
	n := aonet.New()
	leaf := n.AddLeaf(0.5)
	rng := rand.New(rand.NewSource(1))
	for _, samples := range []int{0, -3} {
		if _, err := MonteCarloCtx(nil, n, leaf, samples, rng); !errors.Is(err, ErrSamples) {
			t.Errorf("MonteCarloCtx(samples=%d) err = %v, want ErrSamples", samples, err)
		}
		ev := map[aonet.NodeID]bool{leaf: true}
		if _, err := MonteCarloGivenCtx(nil, n, leaf, ev, samples, rng); !errors.Is(err, ErrSamples) {
			t.Errorf("MonteCarloGivenCtx(samples=%d) err = %v, want ErrSamples", samples, err)
		}
		if p := MonteCarlo(n, leaf, samples, rng); p != 0 && p != 1 {
			t.Errorf("MonteCarlo(samples=%d) = %v, want a single-draw estimate", samples, p)
		}
	}
}
