package inference

import (
	"sort"

	"repro/internal/core"
	"repro/internal/treewidth"
)

// This file implements the recursive-conditioning layer over variable
// elimination (cutset conditioning, Pearl 1988; the same principle as the
// confidence computation by conditioning of Koch & Olteanu [16] that the
// paper builds on). When the interaction graph of a factor component is too
// wide for direct elimination, the solver cases on a high-degree variable:
// restricting the factors to v=0 and v=1 simplifies scopes and typically
// splits the component, and the two branch measures add. Components not
// containing the query variable reduce to scalars and multiply.
//
// The result is an unnormalized measure over the query variable; the caller
// normalizes. A split budget bounds the exponential worst case, returning
// ErrTooWide when exhausted so the engine can fall back to sampling.

// restrict returns f with variable v fixed to val (v dropped from scope).
// If v is not in scope, f itself is returned.
func restrict(f *factor, v int, val bool) *factor {
	p := f.pos(v)
	if p < 0 {
		return f
	}
	rest := make([]int, 0, len(f.vars)-1)
	for _, u := range f.vars {
		if u != v {
			rest = append(rest, u)
		}
	}
	out := newFactor(rest)
	low := (1 << uint(p)) - 1
	hi := 0
	if val {
		hi = 1 << uint(p)
	}
	for idx := range out.data {
		out.data[idx] = f.data[(idx&low)|((idx&^low)<<1)|hi]
	}
	return out
}

// recSolver carries the options and remaining split budget of one query.
type recSolver struct {
	opts     Options
	splits   int
	maxWidth int               // largest elimination width performed (for stats)
	ec       *core.ExecContext // polled at every component and elimination step
	memo     *Memo             // optional shared component-solve memo
	// sawExhausted records that a decision point in the current component
	// solve observed an exhausted split budget and its control flow depended
	// on it; such solves are not memoized (replaying them from the memo
	// under a different budget could diverge).
	sawExhausted bool
}

// splitBudget bounds the total number of conditioning branches explored.
const splitBudget = 1 << 10

// condWidth is the elimination width above which the solver prefers to
// condition rather than eliminate directly.
const condWidth = 14

// measure is an unnormalized measure over the query variable: m[x] is the
// mass with target = x. Components without the target use a scalar measure
// (m[1] unused, scalar flag set).
type measure struct {
	m      [2]float64
	scalar bool
}

func (a measure) mul(b measure) measure {
	switch {
	case a.scalar && b.scalar:
		return measure{m: [2]float64{a.m[0] * b.m[0]}, scalar: true}
	case a.scalar:
		return measure{m: [2]float64{b.m[0] * a.m[0], b.m[1] * a.m[0]}}
	case b.scalar:
		return measure{m: [2]float64{a.m[0] * b.m[0], a.m[1] * b.m[0]}}
	default:
		panic("inference: product of two target measures")
	}
}

func (a measure) add(b measure) measure {
	if a.scalar != b.scalar {
		panic("inference: sum of mismatched measures")
	}
	return measure{m: [2]float64{a.m[0] + b.m[0], a.m[1] + b.m[1]}, scalar: a.scalar}
}

// solve computes the unnormalized measure of the factor set over target
// (target < 0 for a scalar component).
func (s *recSolver) solve(factors []*factor, target int) (measure, error) {
	comps, targetComp := splitComponents(factors, target)
	result := measure{m: [2]float64{1}, scalar: true}
	if target >= 0 && targetComp < 0 {
		// The target's factor set is empty here (all its factors were
		// restricted away — cannot happen for well-formed inputs, but keep
		// the measure well-defined: target unconstrained means weight 1 for
		// both values).
		result = measure{m: [2]float64{1, 1}}
	}
	for ci, comp := range comps {
		t := -1
		if ci == targetComp {
			t = target
		}
		m, err := s.solveComponent(comp, t)
		if err != nil {
			return measure{}, err
		}
		result = resultMul(result, m)
	}
	return result, nil
}

func resultMul(a, b measure) measure {
	if a.scalar || b.scalar {
		return a.mul(b)
	}
	// Both carry the target: impossible by construction (one component).
	panic("inference: two components claim the target")
}

// solveComponent solves one connected component: by elimination when narrow
// enough, otherwise by conditioning on a max-degree variable. It is the memo
// boundary: the factor list is canonically sorted once, then both the
// fingerprint and the solve run over the sorted list, so the memoized
// measure is a pure function of the fingerprint and a hit is bit-identical
// to recomputation.
func (s *recSolver) solveComponent(factors []*factor, target int) (measure, error) {
	if err := s.ec.Err(); err != nil {
		return measure{}, err
	}
	factors = sortFactors(factors)
	if s.memo == nil {
		return s.solveComponentBody(factors, target)
	}
	key, keyable := veMemoKey(factors, target)
	if !keyable {
		return s.solveComponentBody(factors, target)
	}
	if e, ok := s.memo.lookup(key, s.splits); ok {
		// Replay the recorded solve's side effects exactly: charge the
		// split budget it consumed and fold in the width it reached.
		s.splits -= e.splitsUsed
		if e.width > s.maxWidth {
			s.maxWidth = e.width
		}
		return e.m, nil
	}
	prevWidth, prevExhausted := s.maxWidth, s.sawExhausted
	splitsBefore := s.splits
	s.maxWidth, s.sawExhausted = 0, false
	m, err := s.solveComponentBody(factors, target)
	compWidth, compExhausted := s.maxWidth, s.sawExhausted
	if prevWidth > s.maxWidth {
		s.maxWidth = prevWidth
	}
	s.sawExhausted = prevExhausted || compExhausted
	if err == nil && !compExhausted {
		s.memo.store(s.ec, key, m, compWidth, splitsBefore-s.splits)
	}
	return m, err
}

// solveComponentBody is the uncached component solve.
func (s *recSolver) solveComponentBody(factors []*factor, target int) (measure, error) {
	// Constant factors (empty scope) multiply directly.
	constant := 1.0
	live := factors[:0]
	for _, f := range factors {
		if len(f.vars) == 0 {
			constant *= f.data[0]
			continue
		}
		live = append(live, f)
	}
	if len(live) == 0 {
		if target >= 0 {
			return measure{m: [2]float64{constant, constant}}, nil
		}
		return measure{m: [2]float64{constant}, scalar: true}, nil
	}
	g, vars := interactionGraph(live)
	order, width := treewidth.Order(g, s.opts.elimHeuristic(len(vars)))
	limit := s.opts.maxFactorVars()
	threshold := condWidth
	if threshold > limit {
		threshold = limit
	}
	// The branch taken below depends on the sign of the split budget only
	// when the component is past the conditioning threshold; mark the solve
	// unmemoizable when that dependency is live.
	if s.splits <= 0 && !s.opts.NoConditioning && width+1 > threshold {
		s.sawExhausted = true
	}
	if width+1 <= threshold || (s.splits <= 0 && width+1 <= limit) || s.opts.NoConditioning {
		if width > s.maxWidth {
			s.maxWidth = width
		}
		vec, err := eliminateMeasure(s.ec, live, vars, order, target, limit)
		if err != nil {
			return measure{}, err
		}
		vec.m[0] *= constant
		vec.m[1] *= constant
		return vec, nil
	}
	if s.splits <= 0 {
		return measure{}, errTooWidef(width+1, limit)
	}
	// Condition on the max-degree variable (never the target).
	cut := -1
	bestDeg := -1
	for i, v := range vars {
		if v == target {
			continue
		}
		if d := g.Degree(i); d > bestDeg {
			bestDeg, cut = d, v
		}
	}
	if cut < 0 {
		// Only the target remains; eliminate directly.
		vec, err := eliminateMeasure(s.ec, live, vars, order, target, limit)
		if err != nil {
			return measure{}, err
		}
		vec.m[0] *= constant
		vec.m[1] *= constant
		return vec, nil
	}
	var total measure
	for bi, val := range []bool{false, true} {
		s.splits--
		branch := make([]*factor, len(live))
		for i, f := range live {
			branch[i] = restrict(f, cut, val)
		}
		m, err := s.solve(branch, target)
		if err != nil {
			return measure{}, err
		}
		if target >= 0 && m.scalar {
			// The target decoupled from every factor in this branch.
			m = measure{m: [2]float64{m.m[0], m.m[0]}}
		}
		if bi == 0 {
			total = m
		} else {
			total = total.add(m)
		}
	}
	total.m[0] *= constant
	total.m[1] *= constant
	return total, nil
}

// splitComponents partitions factors into variable-connected components and
// returns the index of the component containing target (-1 if none).
func splitComponents(factors []*factor, target int) ([][]*factor, int) {
	parent := make(map[int]int)
	var find func(int) int
	find = func(v int) int {
		r, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if r == v {
			return v
		}
		root := find(r)
		parent[v] = root
		return root
	}
	for _, f := range factors {
		for i := 1; i < len(f.vars); i++ {
			parent[find(f.vars[0])] = find(f.vars[i])
		}
	}
	groups := make(map[int][]*factor)
	var roots []int
	var constants []*factor
	for _, f := range factors {
		if len(f.vars) == 0 {
			constants = append(constants, f)
			continue
		}
		r := find(f.vars[0])
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], f)
	}
	sort.Ints(roots)
	out := make([][]*factor, 0, len(groups)+1)
	if len(constants) > 0 {
		out = append(out, constants)
	}
	targetComp := -1
	for _, r := range roots {
		if target >= 0 {
			if rr, ok := parent[target]; ok && find(rr) == r {
				targetComp = len(out)
			}
		}
		out = append(out, groups[r])
	}
	return out, targetComp
}

// interactionGraph builds the moral interaction graph of the factors,
// returning the graph and the variable list.
func interactionGraph(factors []*factor) (*treewidth.Graph, []int) {
	idx := make(map[int]int)
	var vars []int
	for _, f := range factors {
		for _, v := range f.vars {
			if _, ok := idx[v]; !ok {
				idx[v] = len(vars)
				vars = append(vars, v)
			}
		}
	}
	g := treewidth.NewGraph(len(vars))
	for _, f := range factors {
		for i := 0; i < len(f.vars); i++ {
			for j := i + 1; j < len(f.vars); j++ {
				g.AddEdge(idx[f.vars[i]], idx[f.vars[j]])
			}
		}
	}
	return g, vars
}
