package inference

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/core"
)

func cancelledEC() *core.ExecContext {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return core.NewExecContext(ctx, core.ExecConfig{})
}

// TestExactCtxCancelled: a cancelled context aborts variable elimination at
// the first component/elimination-step poll — deterministically, without any
// timing dependence.
func TestExactCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := randomNetwork(rng, 8, 10, 4)
	target := aonet.NodeID(n.Len() - 1)
	_, err := ExactCtx(cancelledEC(), n, target, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExactCtx = %v, want context.Canceled", err)
	}
	_, err = ExactGivenCtx(cancelledEC(), n, target, map[aonet.NodeID]bool{0: true}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExactGivenCtx = %v, want context.Canceled", err)
	}
}

// TestExactCtxNilUnbounded: a nil ExecContext behaves like Exact.
func TestExactCtxNilUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := randomNetwork(rng, 6, 8, 3)
	target := aonet.NodeID(n.Len() - 1)
	want, err := Exact(n, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactCtx(nil, n, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.P != want.P {
		t.Errorf("ExactCtx(nil) = %v, Exact = %v", got.P, want.P)
	}
}

// TestMonteCarloCtxCancelled: the sampling loop polls every
// core.CheckInterval samples, so a cancelled context aborts a huge sample
// budget almost immediately.
func TestMonteCarloCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := randomNetwork(rng, 8, 10, 4)
	target := aonet.NodeID(n.Len() - 1)
	_, err := MonteCarloCtx(cancelledEC(), n, target, 1<<30, rng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MonteCarloCtx = %v, want context.Canceled", err)
	}
	_, err = MonteCarloGivenCtx(cancelledEC(), n, target, map[aonet.NodeID]bool{0: true}, 1<<30, rng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MonteCarloGivenCtx = %v, want context.Canceled", err)
	}
}
