package inference

import (
	"math"

	"repro/internal/core"
	"repro/internal/lineage"
)

// This file implements dissociation-based probability bounds (Gatterbauer &
// Suciu, "Oblivious bounds on the probability of Boolean functions" /
// "Approximate lifted inference with guarantees", PAPERS.md arXiv
// 1412.1069, 1310.6257). A variable shared across clauses of a monotone
// DNF is *dissociated*: each occurrence becomes a fresh independent copy,
// after which every clause is variable-disjoint and the OR evaluates in one
// extensional pass — no Shannon expansion, variable elimination or
// sampling. The copy probabilities determine the direction of the bound:
//
//   - Upper bound: every copy keeps the original probability p. For a
//     formula positive in x, P[f'] ≥ P[f] (the oblivious upper bound).
//   - Lower bound: the k copies of a variable occurring in k clauses each
//     get q = 1 − (1−p)^(1/k), so the copies jointly are as likely to all
//     be false as the original; then P[f'] ≤ P[f] (the oblivious lower
//     bound for disjunctive dissociation).
//
// Dissociating variables one at a time composes — each step moves the
// probability further in the same direction — so the fully dissociated
// formula brackets the true probability from both sides.
//
// Before dissociating anything the evaluator splits the clause set into
// variable-disjoint components (exact OR-decomposition) and attempts a
// read-once factorization of each component (lineage.ReadOnce): safe,
// offending-free lineage is read-once and evaluates exactly, so the
// interval collapses to a point and only genuinely shared structure pays
// the bounds gap.

// Bounds is a guaranteed probability interval: Lo ≤ P[f] ≤ Hi. Lo == Hi
// exactly when the formula factorized without dissociating anything
// (read-once components only).
type Bounds struct {
	// Lo and Hi bracket the true probability.
	Lo, Hi float64
	// Dissociated counts the shared variables that were split into
	// independent copies (0 for read-once formulas).
	Dissociated int
}

// Exact reports whether the interval collapsed to the exact probability.
func (b Bounds) Exact() bool { return b.Lo == b.Hi }

// Width returns the interval width Hi − Lo.
func (b Bounds) Width() float64 { return b.Hi - b.Lo }

// Dissociate bounds the probability of a monotone DNF over independent
// variables in one pass. It never fails: read-once components evaluate
// exactly, everything else is bracketed by oblivious dissociation bounds.
func Dissociate(f *lineage.DNF, p func(lineage.Var) float64) Bounds {
	b, err := DissociateCtx(nil, f, p)
	if err != nil {
		panic("inference: DissociateCtx failed without a context: " + err.Error())
	}
	return b
}

// DissociateCtx is Dissociate under an ExecContext, polling cancellation
// between components and charging one node per clause processed.
func DissociateCtx(ec *core.ExecContext, f *lineage.DNF, p func(lineage.Var) float64) (Bounds, error) {
	s := f.Simplify()
	if len(s.Clauses) == 0 {
		return Bounds{Lo: 0, Hi: 0}, nil
	}
	if s.IsTrue() {
		return Bounds{Lo: 1, Hi: 1}, nil
	}
	check := core.Check{EC: ec}
	// notLo/notHi accumulate Π(1 − bound) across variable-disjoint
	// components, which combine as an independent OR exactly.
	notLo, notHi := 1.0, 1.0
	out := Bounds{}
	for _, comp := range varDisjointComponents(s.Clauses) {
		if err := ec.ChargeNodes(len(comp)); err != nil {
			return Bounds{}, err
		}
		if err := check.Tick(); err != nil {
			return Bounds{}, err
		}
		lo, hi, dis := componentBounds(comp, p)
		out.Dissociated += dis
		notLo *= 1 - lo
		notHi *= 1 - hi
	}
	out.Lo, out.Hi = 1-notLo, 1-notHi
	if out.Hi < out.Lo {
		// Float rounding only: mathematically Lo ≤ Hi by construction.
		out.Hi = out.Lo
	}
	return out, nil
}

// componentBounds bounds one variable-connected clause group: exactly via
// read-once factorization when possible, otherwise by dissociating every
// shared variable.
func componentBounds(clauses []lineage.Clause, p func(lineage.Var) float64) (lo, hi float64, dissociated int) {
	comp := &lineage.DNF{Clauses: clauses}
	if fact, ok := lineage.ReadOnce(comp); ok {
		exact := fact.Prob(p)
		return exact, exact, 0
	}
	// Occurrence counts: clauses are deduped sets (lineage.NewClause), so a
	// variable's count is the number of clauses it appears in.
	occ := make(map[lineage.Var]int)
	for _, c := range clauses {
		for _, v := range c {
			occ[v]++
		}
	}
	for _, n := range occ {
		if n > 1 {
			dissociated++
		}
	}
	notLo, notHi := 1.0, 1.0
	for _, c := range clauses {
		wLo, wHi := 1.0, 1.0
		for _, v := range c {
			pv := p(v)
			wHi *= pv
			if k := occ[v]; k > 1 {
				wLo *= 1 - math.Pow(1-pv, 1/float64(k))
			} else {
				wLo *= pv
			}
		}
		notLo *= 1 - wLo
		notHi *= 1 - wHi
	}
	return 1 - notLo, 1 - notHi, dissociated
}

// varDisjointComponents groups clauses into variable-connected components
// (union-find over shared variables). Components are returned in order of
// their first clause, preserving determinism.
func varDisjointComponents(clauses []lineage.Clause) [][]lineage.Clause {
	parent := make([]int, len(clauses))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	owner := make(map[lineage.Var]int)
	for i, c := range clauses {
		for _, v := range c {
			if j, ok := owner[v]; ok {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			} else {
				owner[v] = i
			}
		}
	}
	groups := make(map[int][]lineage.Clause)
	var roots []int
	for i, c := range clauses {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], c)
	}
	out := make([][]lineage.Clause, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}
