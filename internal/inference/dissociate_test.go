package inference

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/lineage"
)

// randDNF builds a random monotone DNF small enough for ProbBruteForce,
// together with a probability assignment drawn from the adversarial palette
// (certain, impossible, fair and near-boundary values included).
func randDNF(rng *rand.Rand) (*lineage.DNF, []float64) {
	nVars := 2 + rng.Intn(8)
	probs := make([]float64, nVars)
	palette := []float64{0, 1, 0.5, 1e-3, 0.999}
	for i := range probs {
		if rng.Intn(3) == 0 {
			probs[i] = palette[rng.Intn(len(palette))]
		} else {
			probs[i] = rng.Float64()
		}
	}
	f := &lineage.DNF{}
	nClauses := 1 + rng.Intn(7)
	for c := 0; c < nClauses; c++ {
		width := 1 + rng.Intn(3)
		vars := make([]lineage.Var, 0, width)
		for w := 0; w < width; w++ {
			vars = append(vars, lineage.Var(rng.Intn(nVars)))
		}
		f.Add(lineage.NewClause(vars...))
	}
	return f, probs
}

func TestDissociateBracketsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 1000; trial++ {
		f, probs := randDNF(rng)
		probOf := func(v lineage.Var) float64 { return probs[v] }
		exact, err := lineage.ProbBruteForce(f, probOf)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		b := Dissociate(f, probOf)
		if b.Lo > b.Hi {
			t.Fatalf("trial %d: inverted interval [%g, %g] on %v", trial, b.Lo, b.Hi, f)
		}
		const tol = 1e-9
		if b.Lo > exact+tol || b.Hi < exact-tol {
			t.Fatalf("trial %d: [%g, %g] does not bracket exact %g on %v (probs %v)",
				trial, b.Lo, b.Hi, exact, f, probs)
		}
		if b.Lo < -tol || b.Hi > 1+tol {
			t.Fatalf("trial %d: interval [%g, %g] outside [0, 1]", trial, b.Lo, b.Hi)
		}
	}
}

// Read-once lineage — the shape safe (offending-free) answers ground to —
// must factorize exactly: the interval collapses to the true probability
// and nothing is dissociated.
func TestDissociateExactOnReadOnce(t *testing.T) {
	cases := []*lineage.DNF{
		// x0 ∧ (x1 ∨ x2) in DNF.
		{Clauses: []lineage.Clause{lineage.NewClause(0, 1), lineage.NewClause(0, 2)}},
		// Variable-disjoint clauses (independent OR).
		{Clauses: []lineage.Clause{lineage.NewClause(0, 1), lineage.NewClause(2, 3), lineage.NewClause(4)}},
		// (x0 ∨ x1) ∧ (x2 ∨ x3) in DNF — and-decomposable, normal.
		{Clauses: []lineage.Clause{
			lineage.NewClause(0, 2), lineage.NewClause(0, 3),
			lineage.NewClause(1, 2), lineage.NewClause(1, 3),
		}},
		// Single clause.
		{Clauses: []lineage.Clause{lineage.NewClause(0, 1, 2)}},
	}
	rng := rand.New(rand.NewSource(9))
	for ci, f := range cases {
		probs := make([]float64, 8)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		probOf := func(v lineage.Var) float64 { return probs[v] }
		b := Dissociate(f, probOf)
		if !b.Exact() || b.Dissociated != 0 {
			t.Fatalf("case %d: read-once formula got non-exact bounds [%g, %g] (%d dissociated)",
				ci, b.Lo, b.Hi, b.Dissociated)
		}
		exact, err := lineage.ProbBruteForce(f, probOf)
		if err != nil {
			t.Fatal(err)
		}
		if diff := b.Lo - exact; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("case %d: exact-collapsed bound %g != brute force %g", ci, b.Lo, exact)
		}
	}
	// And on random formulas: whenever the recognizer factorizes, the
	// interval must have collapsed.
	for trial := 0; trial < 500; trial++ {
		f, probs := randDNF(rng)
		if _, ok := lineage.ReadOnce(f); !ok {
			continue
		}
		b := Dissociate(f, func(v lineage.Var) float64 { return probs[v] })
		if !b.Exact() {
			t.Fatalf("trial %d: read-once formula %v got width %g", trial, f, b.Width())
		}
	}
}

// Both bound directions are monotone in every variable probability: raising
// p(v) can only raise Lo and Hi.
func TestDissociateMonotoneUnderProbIncrease(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		f, probs := randDNF(rng)
		probOf := func(v lineage.Var) float64 { return probs[v] }
		base := Dissociate(f, probOf)
		v := rng.Intn(len(probs))
		bumped := append([]float64(nil), probs...)
		bumped[v] = bumped[v] + (1-bumped[v])*rng.Float64()
		next := Dissociate(f, func(x lineage.Var) float64 { return bumped[x] })
		const slack = 1e-12
		if next.Lo < base.Lo-slack || next.Hi < base.Hi-slack {
			t.Fatalf("trial %d: raising p(x%d) %g→%g moved bounds [%g, %g] → [%g, %g] downward on %v",
				trial, v, probs[v], bumped[v], base.Lo, base.Hi, next.Lo, next.Hi, f)
		}
	}
}

func TestDissociateTrivialFormulas(t *testing.T) {
	probOf := func(lineage.Var) float64 { return 0.5 }
	if b := Dissociate(&lineage.DNF{}, probOf); b.Lo != 0 || b.Hi != 0 {
		t.Fatalf("empty DNF: got [%g, %g], want [0, 0]", b.Lo, b.Hi)
	}
	taut := &lineage.DNF{Clauses: []lineage.Clause{{}}}
	if b := Dissociate(taut, probOf); b.Lo != 1 || b.Hi != 1 {
		t.Fatalf("tautology: got [%g, %g], want [1, 1]", b.Lo, b.Hi)
	}
}

// A shared variable across clauses produces a genuine gap that brackets the
// exact value strictly: the triangle xy ∨ yz ∨ zx at p = 1/2 has
// probability 1/2 with hi = 1 − (3/4)³ and a strictly smaller lo.
func TestDissociateTriangleGap(t *testing.T) {
	f := &lineage.DNF{Clauses: []lineage.Clause{
		lineage.NewClause(0, 1), lineage.NewClause(1, 2), lineage.NewClause(2, 0),
	}}
	b := Dissociate(f, func(lineage.Var) float64 { return 0.5 })
	if b.Dissociated != 3 {
		t.Fatalf("triangle: dissociated %d vars, want 3", b.Dissociated)
	}
	if !(b.Lo < 0.5 && 0.5 < b.Hi) {
		t.Fatalf("triangle: [%g, %g] should strictly bracket 0.5", b.Lo, b.Hi)
	}
	wantHi := 1 - 0.75*0.75*0.75
	if diff := b.Hi - wantHi; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("triangle: hi = %g, want %g", b.Hi, wantHi)
	}
}

func TestDissociateCtxHonorsBudget(t *testing.T) {
	f := &lineage.DNF{Clauses: []lineage.Clause{
		lineage.NewClause(0, 1), lineage.NewClause(1, 2), lineage.NewClause(2, 0),
	}}
	ec := core.NewExecContext(context.Background(), core.ExecConfig{Budget: core.Budget{Nodes: 1}})
	_, err := DissociateCtx(ec, f, func(lineage.Var) float64 { return 0.5 })
	if !errors.Is(err, core.ErrNodeBudget) {
		t.Fatalf("node budget 1: got %v, want ErrNodeBudget", err)
	}
}
