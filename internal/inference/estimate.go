package inference

import (
	"repro/internal/aonet"
	"repro/internal/treewidth"
)

// WidthEstimate predicts the elimination width of an exact query on target
// without performing any elimination: it builds the same ancestor-pruned,
// decomposed factor set as Exact/ExactJT, forms the interaction graph, and
// runs the greedy ordering heuristic. The returned width is the ordering's
// induced width (an upper bound on the treewidth of the moralized decomposed
// ancestor graph); vars is the number of variables the elimination would run
// over. The cost is one greedy ordering — no factor tables are materialized —
// so the planner can afford it per answer before committing to a backend.
//
// The estimate is exactly the width Exact would start from, but recursive
// conditioning can finish below it (cutset splits shrink scopes) and the
// elimination itself can exceed it only transiently; treat it as a ranking
// signal, not a guarantee.
func WidthEstimate(n *aonet.Network, target aonet.NodeID, opts Options) (width, vars int, err error) {
	b := builder{net: n, opts: opts}
	factors, _, err := b.build(target)
	if err != nil {
		return 0, 0, err
	}
	g, gvars := interactionGraph(factors)
	_, w := treewidth.Order(g, opts.elimHeuristic(len(gvars)))
	return w, b.nextVar, nil
}
