package inference

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aonet"
)

// bruteForceGiven computes P(target=1 | evidence) by enumeration.
func bruteForceGiven(t *testing.T, n *aonet.Network, target aonet.NodeID, evidence map[aonet.NodeID]bool) float64 {
	t.Helper()
	k := n.Len()
	if k > aonet.MaxBruteForceNodes {
		t.Fatal("network too large for brute force")
	}
	x := make([]bool, k)
	num, den := 0.0, 0.0
	for mask := 0; mask < 1<<uint(k); mask++ {
		for i := 0; i < k; i++ {
			x[i] = mask&(1<<uint(i)) != 0
		}
		consistent := true
		for v, val := range evidence {
			if x[v] != val {
				consistent = false
				break
			}
		}
		if !consistent {
			continue
		}
		p := n.Joint(x)
		den += p
		if x[target] {
			num += p
		}
	}
	if den == 0 {
		t.Fatal("evidence has probability zero")
	}
	return num / den
}

func TestExactGivenMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		n := randomNetwork(rng, 3, 4, 3)
		target := aonet.NodeID(n.Len() - 1)
		// Evidence on a leaf (always positive probability for both values
		// when 0 < p < 1).
		evNode := aonet.NodeID(1 + rng.Intn(2))
		if n.Label(evNode) != aonet.Leaf || n.LeafP(evNode) <= 0 || n.LeafP(evNode) >= 1 {
			continue
		}
		evidence := map[aonet.NodeID]bool{evNode: rng.Intn(2) == 0}
		want := bruteForceGiven(t, n, target, evidence)
		got, err := ExactGiven(n, target, evidence, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got.P-want) > 1e-9 {
			t.Errorf("trial %d: conditional %.12f, want %.12f", trial, got.P, want)
		}
	}
}

func TestExactGivenExplainingAway(t *testing.T) {
	// Classic explaining-away: or = u ∨ v. Observing or=1 raises P(u);
	// additionally observing v=1 lowers it back toward the prior.
	n := aonet.New()
	u := n.AddLeaf(0.1)
	v := n.AddLeaf(0.1)
	or := n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 1}, {From: v, P: 1}})
	prior, err := Exact(n, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	given, err := ExactGiven(n, u, map[aonet.NodeID]bool{or: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	both, err := ExactGiven(n, u, map[aonet.NodeID]bool{or: true, v: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(given.P > prior.P) {
		t.Errorf("observing the Or should raise P(u): %g vs prior %g", given.P, prior.P)
	}
	if !(both.P < given.P) {
		t.Errorf("explaining away failed: %g should drop below %g", both.P, given.P)
	}
	// P(u | or=1, v=1) = P(u) since or is certain given v: equals prior.
	if math.Abs(both.P-prior.P) > 1e-9 {
		t.Errorf("P(u | or, v) = %g, want the prior %g", both.P, prior.P)
	}
}

func TestExactGivenZeroProbabilityEvidence(t *testing.T) {
	n := aonet.New()
	u := n.AddLeaf(0) // never true
	v := n.AddLeaf(0.5)
	if _, err := ExactGiven(n, v, map[aonet.NodeID]bool{u: true}, Options{}); err == nil {
		t.Error("zero-probability evidence accepted")
	}
}

func TestExactGivenEvidenceOutsideAncestors(t *testing.T) {
	// Evidence on a DESCENDANT of the target must influence the result
	// (the scope extension pulls it in).
	n := aonet.New()
	u := n.AddLeaf(0.2)
	or := n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 1}, {From: n.AddLeaf(0.5), P: 1}})
	want := bruteForceGiven(t, n, u, map[aonet.NodeID]bool{or: false})
	got, err := ExactGiven(n, u, map[aonet.NodeID]bool{or: false}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P-want) > 1e-9 {
		t.Errorf("conditional on descendant = %g, want %g", got.P, want)
	}
	if got.P != 0 {
		t.Errorf("P(u | or=0) should be 0, got %g", got.P)
	}
}
