package inference

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/treewidth"
)

// ErrTooWide is returned by Exact when variable elimination would build a
// factor larger than Options.MaxFactorVars variables — the network's
// (heuristic) treewidth is past the tractable region, and the caller should
// fall back to approximate inference.
var ErrTooWide = errors.New("inference: elimination width exceeds limit; use approximate inference")

// DefaultMaxFactorVars is the default cap on the scope of any intermediate
// elimination factor. A factor over k variables stores 2^k float64s, so 22
// bounds a single factor at 32 MiB. Exported so the planner's cost model can
// reason about the same tractability frontier the solvers enforce.
const DefaultMaxFactorVars = 22

// MinFillVarCutoff is the interaction-graph size above which the min-fill
// elimination heuristic is downgraded to min-degree. Min-fill is O(n·d²) per
// eliminated vertex and dominates solve time on very large sparse components,
// while min-degree stays near-linear and gives comparable widths there. The
// same cutoff governs recursive conditioning, the junction-tree backend, and
// the planner's width estimator, so all three predict and pay the same
// ordering cost. Override per call with Options.MinFillCutoff.
const MinFillVarCutoff = 400

// Options configures exact inference.
type Options struct {
	// MaxFactorVars caps the scope of any intermediate factor. A factor over
	// k variables stores 2^k float64s; the default 22 bounds a single factor
	// at 32 MiB. Zero means the default.
	MaxFactorVars int
	// Heuristic selects the elimination ordering heuristic
	// (default min-fill).
	Heuristic treewidth.Heuristic
	// MinFillCutoff is the interaction-graph size above which a requested
	// min-fill ordering is downgraded to min-degree (see MinFillVarCutoff,
	// the default when zero). Negative disables the downgrade.
	MinFillCutoff int
	// NoAncestorPrune disables restricting inference to the ancestors of the
	// queried node. Pruning is always sound (descendants and unrelated nodes
	// marginalize to 1); the flag exists for the ablation benchmark.
	NoAncestorPrune bool
	// NoDecompose disables the D(G) gate decomposition, building one factor
	// per gate over all of its parents instead. Without decomposition a gate
	// with fan-in k yields a 2^(k+1)-entry factor; the flag exists for the
	// ablation benchmark (Figure 2 contrasts M(G) with M(D(G))).
	NoDecompose bool
	// NoConditioning disables the recursive-conditioning layer, forcing
	// plain variable elimination up to the width limit; it exists for the
	// cutset-conditioning ablation benchmark.
	NoConditioning bool
	// Memo, when non-nil, shares component-solve results across queries of
	// one evaluation (see Memo). Results are bit-identical with and without
	// it.
	Memo *Memo
}

func (o Options) maxFactorVars() int {
	if o.MaxFactorVars <= 0 {
		return DefaultMaxFactorVars
	}
	return o.MaxFactorVars
}

// elimHeuristic resolves the elimination heuristic for a component of nvars
// variables, applying the min-fill size cutoff.
func (o Options) elimHeuristic(nvars int) treewidth.Heuristic {
	cutoff := o.MinFillCutoff
	if cutoff == 0 {
		cutoff = MinFillVarCutoff
	}
	if cutoff > 0 && nvars > cutoff && o.Heuristic == treewidth.MinFill {
		return treewidth.MinDegree
	}
	return o.Heuristic
}

// Result carries the marginal and the work statistics of one exact query.
type Result struct {
	P float64
	// Width is the maximum intermediate factor scope encountered minus one,
	// i.e. the width of the elimination actually performed.
	Width int
	// Vars is the number of variables (network nodes plus decomposition
	// auxiliaries) the elimination ran over.
	Vars int
}

// Exact computes N⁰(x_target = 1) by recursive conditioning over variable
// elimination: components narrow enough are eliminated directly; wide
// components are case-split on high-degree variables (cutset conditioning),
// which shrinks factor scopes and decouples sub-components, until the split
// budget runs out (then ErrTooWide). ExactCtx is the cancellable variant.
func Exact(n *aonet.Network, target aonet.NodeID, opts Options) (Result, error) {
	return ExactGivenCtx(nil, n, target, nil, opts)
}

// ExactCtx is Exact under an ExecContext: the solver polls cancellation at
// every conditioning branch and every core.CheckInterval elimination steps,
// so a width blow-up cancels promptly instead of running to completion.
func ExactCtx(ec *core.ExecContext, n *aonet.Network, target aonet.NodeID, opts Options) (Result, error) {
	return ExactGivenCtx(ec, n, target, nil, opts)
}

// ExactGiven computes the conditional marginal P(x_target = 1 | evidence),
// where evidence fixes the values of other network nodes: indicator factors
// zero out inconsistent assignments and the normalized result is the
// conditional. The variable scope is extended with the evidence nodes'
// ancestors. Evidence of probability zero is an error. With nil evidence it
// equals Exact. ExactGivenCtx is the cancellable variant.
func ExactGiven(n *aonet.Network, target aonet.NodeID, evidence map[aonet.NodeID]bool, opts Options) (Result, error) {
	return ExactGivenCtx(nil, n, target, evidence, opts)
}

// ExactGivenCtx is ExactGiven under an ExecContext (see ExactCtx).
func ExactGivenCtx(ec *core.ExecContext, n *aonet.Network, target aonet.NodeID, evidence map[aonet.NodeID]bool, opts Options) (Result, error) {
	b := builder{net: n, opts: opts}
	extra := make([]aonet.NodeID, 0, len(evidence))
	for v := range evidence {
		extra = append(extra, v)
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	factors, targetVar, err := b.build(target, extra...)
	if err != nil {
		return Result{}, err
	}
	for _, v := range extra {
		ev := b.nodeVar[v]
		if ev < 0 {
			return Result{}, fmt.Errorf("inference: evidence node %d outside variable scope", v)
		}
		f := newFactor([]int{int(ev)})
		if evidence[v] {
			f.data[1] = 1
		} else {
			f.data[0] = 1
		}
		factors = append(factors, f)
	}
	s := &recSolver{opts: opts, splits: splitBudget, ec: ec, memo: opts.Memo}
	m, err := s.solve(factors, targetVar)
	if err != nil {
		return Result{}, err
	}
	total := m.m[0] + m.m[1]
	if m.scalar || total <= 0 {
		return Result{}, fmt.Errorf("inference: degenerate result measure %v (evidence of probability zero?)", m.m)
	}
	return Result{P: m.m[1] / total, Width: s.maxWidth, Vars: b.nextVar}, nil
}

// errTooWidef wraps ErrTooWide with the offending width.
func errTooWidef(needed, limit int) error {
	return fmt.Errorf("%w (needed %d variables, limit %d)", ErrTooWide, needed, limit)
}

// builder converts (the relevant part of) a network into factors.
type builder struct {
	net     *aonet.Network
	opts    Options
	nextVar int
	nodeVar []int32 // indexed by NodeID; -1 when outside the variable scope
}

// build returns the factor list for the ancestors of target (and of any
// extra nodes, e.g. evidence) and the variable index assigned to target.
func (b *builder) build(target aonet.NodeID, extra ...aonet.NodeID) ([]*factor, int, error) {
	var nodes []aonet.NodeID
	if b.opts.NoAncestorPrune {
		nodes = make([]aonet.NodeID, b.net.Len())
		for i := range nodes {
			nodes[i] = aonet.NodeID(i)
		}
	} else {
		seen := make(map[aonet.NodeID]bool)
		for _, root := range append([]aonet.NodeID{target}, extra...) {
			for _, v := range b.net.Ancestors(root) {
				if !seen[v] {
					seen[v] = true
					nodes = append(nodes, v)
				}
			}
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	}
	b.nodeVar = make([]int32, b.net.Len())
	for i := range b.nodeVar {
		b.nodeVar[i] = -1
	}
	for _, v := range nodes {
		b.nodeVar[v] = int32(b.nextVar)
		b.nextVar++
	}
	var factors []*factor
	for _, v := range nodes {
		fs, err := b.nodeFactors(v)
		if err != nil {
			return nil, 0, err
		}
		factors = append(factors, fs...)
	}
	return factors, int(b.nodeVar[target]), nil
}

// leafFactor builds the prior factor for a leaf.
func leafFactor(v int, p float64) *factor {
	f := newFactor([]int{v})
	f.data[0], f.data[1] = 1-p, p
	return f
}

// binaryGateFactor builds the CPD factor for out = gate(in1 with weight q1,
// in2 with weight q2) for label And/Or.
func binaryGateFactor(label aonet.Label, out, in1 int, q1 float64, in2 int, q2 float64) *factor {
	f := newFactor([]int{out, in1, in2})
	outBit := 1 << uint(f.pos(out))
	in1Bit := 1 << uint(f.pos(in1))
	in2Bit := 1 << uint(f.pos(in2))
	for mask := 0; mask < 4; mask++ {
		x1 := mask&1 != 0
		x2 := mask&2 != 0
		var pt float64
		if label == aonet.And {
			if x1 && x2 {
				pt = q1 * q2
			}
		} else {
			prod := 1.0
			if x1 {
				prod *= 1 - q1
			}
			if x2 {
				prod *= 1 - q2
			}
			pt = 1 - prod
		}
		base := 0
		if x1 {
			base |= in1Bit
		}
		if x2 {
			base |= in2Bit
		}
		f.data[base] = 1 - pt
		f.data[base|outBit] = pt
	}
	return f
}

// unaryGateFactor builds the CPD factor for out = gate(in with weight q);
// And and Or coincide on a single input: P(out=1|in) = x_in·q.
func unaryGateFactor(out, in int, q float64) *factor {
	f := newFactor([]int{out, in})
	outBit := 1 << uint(f.pos(out))
	inBit := 1 << uint(f.pos(in))
	f.data[0] = 1
	f.data[outBit] = 0
	f.data[inBit] = 1 - q
	f.data[inBit|outBit] = q
	return f
}

// gateProb evaluates φ(out=1 | inputs) for the given label.
func gateProb(label aonet.Label, x []bool, q []float64) float64 {
	if label == aonet.And {
		p := 1.0
		for i := range x {
			if !x[i] {
				return 0
			}
			p *= q[i]
		}
		return p
	}
	prod := 1.0
	for i := range x {
		if x[i] {
			prod *= 1 - q[i]
		}
	}
	return 1 - prod
}

// nodeFactors emits the factor(s) encoding node v's CPD, decomposing high
// fan-in gates into a chain of binary gates through fresh auxiliary
// variables (the D(G) construction) unless disabled.
func (b *builder) nodeFactors(v aonet.NodeID) ([]*factor, error) {
	out := int(b.nodeVar[v])
	switch b.net.Label(v) {
	case aonet.Leaf:
		return []*factor{leafFactor(out, b.net.LeafP(v))}, nil
	}
	label := b.net.Label(v)
	// Merge duplicate parent edges into a single effective weight so every
	// factor variable is distinct: an And sees x_w·q1·x_w·q2 = x_w·(q1·q2),
	// an Or sees 1-(1-x_w·q1)(1-x_w·q2) = x_w·(1-(1-q1)(1-q2)).
	var ins []int
	var qs []float64
	seen := make(map[int]int)
	for _, e := range b.net.Parents(v) {
		pv32 := b.nodeVar[e.From]
		if pv32 < 0 {
			return nil, fmt.Errorf("inference: parent %d of node %d outside variable scope", e.From, v)
		}
		pv := int(pv32)
		if j, dup := seen[pv]; dup {
			if label == aonet.And {
				qs[j] *= e.P
			} else {
				qs[j] = 1 - (1-qs[j])*(1-e.P)
			}
			continue
		}
		seen[pv] = len(ins)
		ins = append(ins, pv)
		qs = append(qs, e.P)
	}
	if len(ins) == 1 {
		return []*factor{unaryGateFactor(out, ins[0], qs[0])}, nil
	}
	if b.opts.NoDecompose {
		return []*factor{b.wideGateFactor(label, out, ins, qs)}, nil
	}
	// Chain: a_2 = g(w1,w2), a_j = g(a_{j-1}, w_j), last output is v itself.
	var fs []*factor
	cur, curQ := ins[0], qs[0]
	for i := 1; i < len(ins); i++ {
		outVar := out
		if i < len(ins)-1 {
			outVar = b.nextVar
			b.nextVar++
		}
		fs = append(fs, binaryGateFactor(label, outVar, cur, curQ, ins[i], qs[i]))
		cur, curQ = outVar, 1
	}
	return fs, nil
}

// wideGateFactor builds a single factor over the gate output and all its
// parents (used only when decomposition is disabled).
func (b *builder) wideGateFactor(label aonet.Label, out int, ins []int, qs []float64) *factor {
	vars := append([]int{out}, ins...)
	f := newFactor(vars)
	k := len(ins)
	x := make([]bool, k)
	assign := make(map[int]bool, k+1)
	for mask := 0; mask < 1<<uint(k); mask++ {
		for i := 0; i < k; i++ {
			x[i] = mask&(1<<uint(i)) != 0
			assign[ins[i]] = x[i]
		}
		pt := gateProb(label, x, qs)
		assign[out] = true
		f.set(assign, pt)
		assign[out] = false
		f.set(assign, 1-pt)
	}
	return f
}

// eliminateMeasure runs bucketed variable elimination over the factors,
// summing out every variable except target (all variables when target < 0),
// following the supplied elimination order (indexes into vars). It returns
// the unnormalized measure over the target. Any elimination step whose
// union scope exceeds limit variables aborts with ErrTooWide; cancellation
// of ec aborts between elimination steps.
func eliminateMeasure(ec *core.ExecContext, factors []*factor, vars []int, order []int, target, limit int) (measure, error) {
	maxVar := 0
	for _, v := range vars {
		if v > maxVar {
			maxVar = v
		}
	}
	live := append([]*factor(nil), factors...)
	buckets := make([][]int32, maxVar+1)
	addToBuckets := func(fi int) {
		for _, u := range live[fi].vars {
			buckets[u] = append(buckets[u], int32(fi))
		}
	}
	for fi := range live {
		addToBuckets(fi)
	}
	inScope := make([]bool, maxVar+1)
	for _, gi := range order {
		// One elimination step can multiply factors of up to 2^limit entries,
		// so a per-step poll is negligible next to the work it gates.
		if err := ec.Err(); err != nil {
			return measure{}, err
		}
		v := vars[gi]
		if v == target {
			continue
		}
		var group []*factor
		var scope []int
		for _, fi := range buckets[v] {
			f := live[fi]
			if f == nil || f.pos(v) < 0 {
				continue
			}
			group = append(group, f)
			live[fi] = nil // consumed
			for _, u := range f.vars {
				if !inScope[u] {
					inScope[u] = true
					scope = append(scope, u)
				}
			}
		}
		buckets[v] = nil
		for _, u := range scope {
			inScope[u] = false
		}
		if len(group) == 0 {
			continue
		}
		if len(scope) > limit {
			return measure{}, errTooWidef(len(scope), limit)
		}
		reduced := sumOut(multiplyAll(group), v)
		live = append(live, reduced)
		addToBuckets(len(live) - 1)
	}
	// Multiply the remaining factors (all over target or empty scope).
	var remaining []*factor
	if target >= 0 {
		remaining = append(remaining, leafUniform(target))
	}
	for _, f := range live {
		if f != nil {
			remaining = append(remaining, f)
		}
	}
	if len(remaining) == 0 {
		return measure{m: [2]float64{1}, scalar: true}, nil
	}
	result := multiplyAll(remaining)
	for _, v := range result.vars {
		if v != target {
			result = sumOut(result, v)
		}
	}
	if target < 0 {
		return measure{m: [2]float64{result.data[0]}, scalar: true}, nil
	}
	return measure{m: [2]float64{result.data[0], result.data[1]}}, nil
}

// leafUniform returns the constant-1 factor over a single variable, seeding
// the final product so the result always carries the target in scope.
func leafUniform(v int) *factor {
	f := newFactor([]int{v})
	f.data[0], f.data[1] = 1, 1
	return f
}
