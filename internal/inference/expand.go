package inference

import (
	"errors"
	"fmt"

	"repro/internal/aonet"
	"repro/internal/lineage"
)

// ErrExpansion is returned by ExpandDNF when the expanded formula exceeds
// the size budget.
var ErrExpansion = errors.New("inference: partial-lineage expansion exceeds the size budget")

// ExpandDNF converts the ancestors of target into an equivalent monotone
// DNF over independent variables: one variable per uncertain leaf and one
// anonymous variable per sub-unit edge probability ("every number stands for
// a separate Boolean variable", Section 4.2). The expansion distributes And
// gates over Or gates exactly as lineage grounding would, so its size is
// bounded by the size of the full DNF lineage and is typically far smaller —
// it only mentions offending tuples and their coins.
//
// The returned probability slice is indexed by lineage.Var. maxClauses
// bounds the total clause count across all memoized nodes (0 means 100000);
// past it ExpandDNF returns ErrExpansion and the caller should fall back to
// variable elimination or sampling.
//
// Shared gate nodes are expanded once and their clause sets reused, so
// shared sub-events keep shared variables (correct correlation), while each
// edge coin stays private to its edge.
func ExpandDNF(n *aonet.Network, target aonet.NodeID, maxClauses int) (*lineage.DNF, []float64, error) {
	if maxClauses <= 0 {
		maxClauses = 100000
	}
	e := &expander{
		net:        n,
		maxClauses: maxClauses,
		memo:       make(map[aonet.NodeID][]lineage.Clause),
	}
	clauses, err := e.expand(target)
	if err != nil {
		return nil, nil, err
	}
	out := make([]lineage.Clause, len(clauses))
	copy(out, clauses)
	return &lineage.DNF{Clauses: out}, e.probs, nil
}

// Expander expands several targets of one network into DNFs over a single
// shared variable space, reusing node expansions across targets: gate nodes
// shared between answers are expanded once, keep the same clause sets and
// the same variables everywhere. Expansion is stateful and NOT safe for
// concurrent use — expand all targets serially (in a deterministic order),
// then read the results from anywhere.
//
// The clause budget applies per target: each Expand call charges from zero,
// but memoized nodes are returned without re-charging, so a target sharing
// structure with earlier ones may succeed where a cold expansion would not.
type Expander struct {
	e *expander
}

// NewExpander prepares a shared expansion over n. maxClauses bounds each
// target's expansion (0 means 100000).
func NewExpander(n *aonet.Network, maxClauses int) *Expander {
	if maxClauses <= 0 {
		maxClauses = 100000
	}
	return &Expander{e: &expander{
		net:        n,
		maxClauses: maxClauses,
		memo:       make(map[aonet.NodeID][]lineage.Clause),
	}}
}

// Expand returns target's DNF over the shared variable space together with
// the current probability table (indexed by lineage.Var; it may grow on
// later Expand calls, but the entries a returned formula mentions never
// change).
func (x *Expander) Expand(target aonet.NodeID) (*lineage.DNF, []float64, error) {
	x.e.total = 0
	clauses, err := x.e.expand(target)
	if err != nil {
		return nil, nil, err
	}
	out := make([]lineage.Clause, len(clauses))
	copy(out, clauses)
	return &lineage.DNF{Clauses: out}, x.e.probs, nil
}

type expander struct {
	net        *aonet.Network
	maxClauses int
	total      int
	probs      []float64
	leafVar    map[aonet.NodeID]lineage.Var
	memo       map[aonet.NodeID][]lineage.Clause
}

// newVar allocates a variable with the given probability.
func (e *expander) newVar(p float64) lineage.Var {
	v := lineage.Var(len(e.probs))
	e.probs = append(e.probs, p)
	return v
}

// charge counts newly produced clauses against the budget.
func (e *expander) charge(n int) error {
	e.total += n
	if e.total > e.maxClauses {
		return fmt.Errorf("%w (%d clauses, budget %d)", ErrExpansion, e.total, e.maxClauses)
	}
	return nil
}

// expand returns the clause set of the event "node = 1". An empty clause
// set means the event is impossible; a set containing the empty clause
// means it is certain.
func (e *expander) expand(v aonet.NodeID) ([]lineage.Clause, error) {
	if cs, ok := e.memo[v]; ok {
		return cs, nil
	}
	var out []lineage.Clause
	switch e.net.Label(v) {
	case aonet.Leaf:
		switch p := e.net.LeafP(v); {
		case p >= 1:
			out = []lineage.Clause{{}}
		case p <= 0:
			out = nil
		default:
			if e.leafVar == nil {
				e.leafVar = make(map[aonet.NodeID]lineage.Var)
			}
			lv, ok := e.leafVar[v]
			if !ok {
				lv = e.newVar(p)
				e.leafVar[v] = lv
			}
			out = []lineage.Clause{{lv}}
		}
	case aonet.Or:
		for _, edge := range e.net.Parents(v) {
			if edge.P <= 0 {
				continue
			}
			sub, err := e.expand(edge.From)
			if err != nil {
				return nil, err
			}
			if err := e.charge(len(sub)); err != nil {
				return nil, err
			}
			if edge.P >= 1 {
				out = append(out, sub...)
				continue
			}
			coin := e.newVar(edge.P)
			for _, c := range sub {
				nc := make(lineage.Clause, 0, len(c)+1)
				nc = append(nc, c...)
				nc = append(nc, coin)
				out = append(out, lineage.NewClause(nc...))
			}
		}
	case aonet.And:
		out = []lineage.Clause{{}}
		for _, edge := range e.net.Parents(v) {
			if edge.P <= 0 {
				out = nil
				break
			}
			sub, err := e.expand(edge.From)
			if err != nil {
				return nil, err
			}
			var coin lineage.Var = -1
			if edge.P < 1 {
				coin = e.newVar(edge.P)
			}
			if err := e.charge(len(out) * len(sub)); err != nil {
				return nil, err
			}
			next := make([]lineage.Clause, 0, len(out)*len(sub))
			for _, a := range out {
				for _, b := range sub {
					nc := make(lineage.Clause, 0, len(a)+len(b)+1)
					nc = append(nc, a...)
					nc = append(nc, b...)
					if coin >= 0 {
						nc = append(nc, coin)
					}
					next = append(next, lineage.NewClause(nc...))
				}
			}
			out = next
			if len(out) == 0 {
				break
			}
		}
	}
	e.memo[v] = out
	return out, nil
}

// ExactViaExpansion computes N⁰(x_target = 1) by expanding the partial
// lineage to a DNF and running the exact confidence solver (Shannon
// expansion with independence decomposition) on it. maxClauses and budget
// bound expansion size and solver work respectively (0 = defaults).
func ExactViaExpansion(n *aonet.Network, target aonet.NodeID, maxClauses, budget int) (float64, error) {
	f, probs, err := ExpandDNF(n, target, maxClauses)
	if err != nil {
		return 0, err
	}
	return lineage.ProbBudget(f, func(v lineage.Var) float64 { return probs[v] }, budget)
}

// ExactViaCircuit computes N⁰(x_target = 1) like ExactViaExpansion but
// through the compiled-circuit evaluator: the expanded DNF is compiled to a
// d-DNNF circuit (cached on its canonical fingerprint when cache is non-nil)
// and confidence is one linear bottom-up pass. The result is bit-identical
// to ExactViaExpansion — the compiler replays the Shannon solver's recursion
// — so the circuit path changes speed, never answer bytes. On a warm cache
// only the lookup and the linear evaluation run; no Shannon expansions are
// charged against budget.
func ExactViaCircuit(n *aonet.Network, target aonet.NodeID, maxClauses, budget int, cache *lineage.CircuitCache) (float64, error) {
	f, probs, err := ExpandDNF(n, target, maxClauses)
	if err != nil {
		return 0, err
	}
	return lineage.CircuitProbCtx(nil, f, func(v lineage.Var) float64 { return probs[v] }, budget, cache, nil)
}
