package inference

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/lineage"
)

func TestExpandMatchesBruteForceOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 60; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(4), 1+rng.Intn(6), 4)
		target := aonet.NodeID(rng.Intn(n.Len()))
		want, err := BruteForce(n, target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactViaExpansion(n, target, 0, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: expansion = %.12f, brute force = %.12f", trial, got, want)
		}
	}
}

func TestExactViaCircuitBitIdenticalToExpansion(t *testing.T) {
	// The circuit evaluator must reproduce the Shannon solver's floats
	// exactly (not just within tolerance), cold and warm: a second pass over
	// the same networks is served from the cache and must agree bit for bit.
	rng := rand.New(rand.NewSource(83))
	cache := lineage.NewCircuitCache(lineage.CircuitCacheConfig{})
	type cse struct {
		n      *aonet.Network
		target aonet.NodeID
		want   float64
	}
	var cases []cse
	for trial := 0; trial < 40; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(4), 1+rng.Intn(6), 4)
		target := aonet.NodeID(rng.Intn(n.Len()))
		want, err := ExactViaExpansion(n, target, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, cse{n, target, want})
	}
	for pass := 0; pass < 2; pass++ {
		for i, c := range cases {
			got, err := ExactViaCircuit(c.n, c.target, 0, 0, cache)
			if err != nil {
				t.Fatalf("pass %d trial %d: %v", pass, i, err)
			}
			if got != c.want {
				t.Errorf("pass %d trial %d: circuit = %v, expansion = %v", pass, i, got, c.want)
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("warm pass recorded no cache hits: %+v", st)
	}
}

func TestExpandAgreesWithConditionedVE(t *testing.T) {
	// Larger networks than brute force can handle: cross-check the two
	// exact backends against each other.
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 10; trial++ {
		n := randomNetwork(rng, 8, 25, 3)
		target := aonet.NodeID(n.Len() - 1)
		viaExp, err := ExactViaExpansion(n, target, 0, 0)
		if err != nil {
			t.Fatalf("trial %d: expansion: %v", trial, err)
		}
		viaVE, err := Exact(n, target, Options{})
		if err != nil {
			t.Fatalf("trial %d: VE: %v", trial, err)
		}
		if math.Abs(viaExp-viaVE.P) > 1e-9 {
			t.Errorf("trial %d: expansion %.12f vs VE %.12f", trial, viaExp, viaVE.P)
		}
	}
}

func TestExpandEpsilonAndLeaves(t *testing.T) {
	n := aonet.New()
	if p, err := ExactViaExpansion(n, aonet.Epsilon, 0, 0); err != nil || math.Abs(p-1) > 1e-12 {
		t.Errorf("ε: %g, %v", p, err)
	}
	u := n.AddLeaf(0.37)
	if p, err := ExactViaExpansion(n, u, 0, 0); err != nil || math.Abs(p-0.37) > 1e-12 {
		t.Errorf("leaf: %g, %v", p, err)
	}
	z := n.AddLeaf(0)
	f, _, err := ExpandDNF(n, z, 0)
	if err != nil || len(f.Clauses) != 0 {
		t.Errorf("zero leaf: %v, %v", f, err)
	}
}

func TestExpandSharedSubeventKeepsCorrelation(t *testing.T) {
	// v = Or(u); w = Or(u); top = And(v, w). Since v and w are the same
	// event u, P(top) = P(u), not P(u)².
	n := aonet.New()
	u := n.AddLeaf(0.5)
	v := n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 1}})
	w := n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 1}})
	if v != w {
		// Deterministic gates are consed; force distinct via an extra
		// parent with weight 1 from ε.
		w = n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 1}, {From: u, P: 1}})
	}
	top := n.AddGate(aonet.And, []aonet.Edge{{From: v, P: 1}, {From: w, P: 1}})
	got, err := ExactViaExpansion(n, top, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(n, top)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("shared sub-event: expansion %g, brute force %g, want 0.5", got, want)
	}
}

func TestExpandCoinsAreIndependentPerEdge(t *testing.T) {
	// top = Or(u with 0.5, u with 0.5): P = p_u·(1-(1-.5)(1-.5)) = p_u·0.75.
	n := aonet.New()
	u := n.AddLeaf(0.8)
	top := n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 0.5}, {From: u, P: 0.5}})
	got, err := ExactViaExpansion(n, top, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.8 * 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("per-edge coins: %g, want %g", got, want)
	}
}

// buildAndOrTower builds a balanced tower of And-of-Or gates over nLeaves
// leaves; its DNF expansion squares in size per level.
func buildAndOrTower(nLeaves int) (*aonet.Network, aonet.NodeID) {
	n := aonet.New()
	layer := []aonet.NodeID{}
	for i := 0; i < nLeaves; i++ {
		layer = append(layer, n.AddLeaf(0.5))
	}
	for len(layer) > 1 {
		var next []aonet.NodeID
		for i := 0; i+1 < len(layer); i += 2 {
			or1 := n.AddGate(aonet.Or, []aonet.Edge{{From: layer[i], P: 0.9}, {From: layer[i+1], P: 0.9}})
			or2 := n.AddGate(aonet.Or, []aonet.Edge{{From: layer[i], P: 0.8}, {From: layer[i+1], P: 0.8}})
			next = append(next, n.AddGate(aonet.And, []aonet.Edge{{From: or1, P: 1}, {From: or2, P: 1}}))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	return n, layer[0]
}

func TestExpandBudget(t *testing.T) {
	// A deep tower's DNF expansion is exponential: the clause budget must
	// trip rather than hang or exhaust memory.
	n, top := buildAndOrTower(24)
	if _, _, err := ExpandDNF(n, top, 50); !errors.Is(err, ErrExpansion) {
		t.Errorf("expected ErrExpansion, got %v", err)
	}
	// A shallow tower expands within budget and matches the VE backend.
	n2, top2 := buildAndOrTower(6)
	p1, err := ExactViaExpansion(n2, top2, 1000000, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Exact(n2, top2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p2.P) > 1e-9 {
		t.Errorf("expansion %g vs VE %g", p1, p2.P)
	}
}

func TestExpandSolverBudgetPropagates(t *testing.T) {
	// A dense formula that expands fine but exceeds a tiny solver budget.
	n := aonet.New()
	var leaves []aonet.NodeID
	for i := 0; i < 12; i++ {
		leaves = append(leaves, n.AddLeaf(0.5))
	}
	var ors []aonet.Edge
	for i := 0; i < 12; i++ {
		ors = append(ors, aonet.Edge{
			From: n.AddGate(aonet.And, []aonet.Edge{
				{From: leaves[i], P: 1},
				{From: leaves[(i+5)%12], P: 1},
				{From: leaves[(i+7)%12], P: 1},
			}),
			P: 1,
		})
	}
	top := n.AddGate(aonet.Or, ors)
	if _, err := ExactViaExpansion(n, top, 0, 2); !errors.Is(err, lineage.ErrBudget) {
		t.Errorf("expected solver budget error, got %v", err)
	}
}
