// Package inference computes marginal probabilities over AND-OR networks.
//
// The exact engine follows the construction the paper analyzes in
// Section 4.3.2: gates with many parents are decomposed into chains of
// binary gates D(G) (each conditional probability table then spans at most
// three variables, Figure 2), the resulting factors are moralized implicitly,
// and a variable-elimination pass with a greedy treewidth ordering sums out
// everything but the queried node. Its cost is exponential in the width of
// the elimination ordering found for M(D(G)) restricted to the ancestors of
// the queried node, which is the complexity class the paper establishes for
// partial-lineage inference (Theorem 5.17, Corollary 4.4).
//
// The package also offers forward Monte-Carlo sampling for networks beyond
// the exact-inference phase transition (Section 6.4 observes that past a
// certain treewidth "one must resort to approximate computations"), and a
// brute-force enumerator used to validate both.
package inference

import (
	"fmt"
	"sort"
)

// factor is a table over a sorted set of Boolean variables. data has
// 2^len(vars) entries; the value of vars[i] selects bit i of the index.
type factor struct {
	vars []int
	data []float64
}

func newFactor(vars []int) *factor {
	sorted := append([]int(nil), vars...)
	sort.Ints(sorted)
	return &factor{vars: sorted, data: make([]float64, 1<<uint(len(sorted)))}
}

// pos returns the position of v in f.vars, or -1.
func (f *factor) pos(v int) int {
	for i, u := range f.vars {
		if u == v {
			return i
		}
	}
	return -1
}

// set assigns the table entry for the given assignment, expressed as a map
// from variable to value. Used by the builders, where scopes are tiny.
func (f *factor) set(assign map[int]bool, val float64) {
	idx := 0
	for i, v := range f.vars {
		if assign[v] {
			idx |= 1 << uint(i)
		}
	}
	f.data[idx] = val
}

// multiply returns the product factor of f and g over the union scope.
func multiply(f, g *factor) *factor {
	return multiplyAll([]*factor{f, g})
}

// indexTable maps every index over the output scope to the corresponding
// index of a factor whose per-output-bit index masks are given. Built by
// dynamic programming in O(2^k): an index in [2^b, 2^(b+1)) extends the
// already-computed index with bit b cleared.
func indexTable(size int, masks []int32) []int32 {
	t := make([]int32, size)
	for b := 0; 1<<uint(b) < size; b++ {
		lo := 1 << uint(b)
		m := masks[b]
		for idx := lo; idx < lo<<1 && idx < size; idx++ {
			t[idx] = t[idx-lo] | m
		}
	}
	return t
}

// multiplyAll returns the product of all factors over their union scope in
// a single pass, avoiding the intermediate tables a pairwise chain would
// materialize.
func multiplyAll(fs []*factor) *factor {
	var union []int
	seen := make(map[int]bool)
	for _, f := range fs {
		for _, v := range f.vars {
			if !seen[v] {
				seen[v] = true
				union = append(union, v)
			}
		}
	}
	out := newFactor(union)
	size := len(out.data)
	tables := make([][]int32, len(fs))
	for fi, f := range fs {
		masks := make([]int32, len(out.vars))
		for i, v := range out.vars {
			if j := f.pos(v); j >= 0 {
				masks[i] = 1 << uint(j)
			}
		}
		tables[fi] = indexTable(size, masks)
	}
	for idx := 0; idx < size; idx++ {
		p := 1.0
		for fi := range fs {
			p *= fs[fi].data[tables[fi][idx]]
			if p == 0 {
				break
			}
		}
		out.data[idx] = p
	}
	return out
}

// sumOut returns the factor with variable v marginalized away.
func sumOut(f *factor, v int) *factor {
	p := f.pos(v)
	if p < 0 {
		return f
	}
	rest := make([]int, 0, len(f.vars)-1)
	for _, u := range f.vars {
		if u != v {
			rest = append(rest, u)
		}
	}
	out := newFactor(rest)
	low := (1 << uint(p)) - 1
	for idx := range out.data {
		base := (idx & low) | ((idx &^ low) << 1)
		out.data[idx] = f.data[base] + f.data[base|1<<uint(p)]
	}
	return out
}

// normalizeCheck verifies a one-variable result factor is (numerically) a
// distribution and returns P(var = 1).
func normalizeCheck(f *factor) (float64, error) {
	if len(f.vars) != 1 {
		return 0, fmt.Errorf("inference: result factor has scope %v, want a single variable", f.vars)
	}
	total := f.data[0] + f.data[1]
	if total <= 0 {
		return 0, fmt.Errorf("inference: result factor sums to %g", total)
	}
	return f.data[1] / total, nil
}
