package inference

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/treewidth"
)

// randomNetwork builds a random valid AND-OR network for cross-checking.
func randomNetwork(rng *rand.Rand, nLeaves, nGates, maxFanIn int) *aonet.Network {
	n := aonet.New()
	for i := 0; i < nLeaves; i++ {
		n.AddLeaf(rng.Float64())
	}
	for i := 0; i < nGates; i++ {
		k := 1 + rng.Intn(maxFanIn)
		edges := make([]aonet.Edge, 0, k)
		for j := 0; j < k; j++ {
			p := 1.0
			if rng.Intn(2) == 0 {
				p = rng.Float64()
			}
			edges = append(edges, aonet.Edge{From: aonet.NodeID(rng.Intn(n.Len())), P: p})
		}
		lab := aonet.Or
		if rng.Intn(2) == 0 {
			lab = aonet.And
		}
		n.AddGate(lab, edges)
	}
	return n
}

func TestExactMatchesBruteForceOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(4), 1+rng.Intn(6), 4)
		target := aonet.NodeID(rng.Intn(n.Len()))
		want, err := BruteForce(n, target)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, opts := range []Options{
			{},
			{Heuristic: treewidth.MinDegree},
			{NoAncestorPrune: true},
			{NoDecompose: true},
		} {
			got, err := Exact(n, target, opts)
			if err != nil {
				t.Fatalf("trial %d (%+v): %v", trial, opts, err)
			}
			if math.Abs(got.P-want) > 1e-9 {
				t.Errorf("trial %d (%+v): Exact = %.12f, brute force = %.12f", trial, opts, got.P, want)
			}
		}
	}
}

func TestExactOnExample51(t *testing.T) {
	n := aonet.New()
	u := n.AddLeaf(0.3)
	v := n.AddLeaf(0.8)
	w := n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 0.5}, {From: v, P: 0.5}})
	want := 0.3*0.8*0.75 + 0.3*0.2*0.5 + 0.7*0.8*0.5
	got, err := Exact(n, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P-want) > 1e-12 {
		t.Errorf("P(w) = %g, want %g", got.P, want)
	}
	if got.Vars < 3 {
		t.Errorf("Vars = %d", got.Vars)
	}
}

func TestExactLeafIsPrior(t *testing.T) {
	n := aonet.New()
	u := n.AddLeaf(0.37)
	got, err := Exact(n, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P-0.37) > 1e-12 {
		t.Errorf("P(u) = %g", got.P)
	}
	if got.Width != 0 {
		t.Errorf("Width = %d for a lone leaf", got.Width)
	}
}

func TestExactEpsilonIsOne(t *testing.T) {
	n := aonet.New()
	got, err := Exact(n, aonet.Epsilon, Options{})
	if err != nil || math.Abs(got.P-1) > 1e-12 {
		t.Errorf("P(ε) = %g, %v", got.P, err)
	}
}

func TestExactHighFanInGate(t *testing.T) {
	// A 12-input noisy Or: decomposition must keep factors small while the
	// no-decompose ablation still gets the same answer.
	n := aonet.New()
	edges := make([]aonet.Edge, 0, 12)
	expectFalse := 1.0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		p := rng.Float64()
		q := rng.Float64()
		leaf := n.AddLeaf(p)
		edges = append(edges, aonet.Edge{From: leaf, P: q})
		expectFalse *= 1 - p*q // independent noisy inputs
	}
	or := n.AddGate(aonet.Or, edges)
	want := 1 - expectFalse
	got, err := Exact(n, or, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P-want) > 1e-9 {
		t.Errorf("P(or) = %g, want %g", got.P, want)
	}
	if got.Width > 3 {
		t.Errorf("decomposed elimination width = %d, want <= 3 for a tree", got.Width)
	}
	got2, err := Exact(n, or, Options{NoDecompose: true, MaxFactorVars: 14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2.P-want) > 1e-9 {
		t.Errorf("no-decompose P = %g, want %g", got2.P, want)
	}
	if got2.Width <= got.Width {
		t.Errorf("expected wider elimination without decomposition: %d vs %d", got2.Width, got.Width)
	}
}

func TestExactWidthGuard(t *testing.T) {
	// A K_{n,n}-style network: n And gates sharing n leaves forces width ~n.
	n := aonet.New()
	var leaves []aonet.NodeID
	for i := 0; i < 8; i++ {
		leaves = append(leaves, n.AddLeaf(0.5))
	}
	var ands []aonet.Edge
	for i := 0; i < 8; i++ {
		var es []aonet.Edge
		for _, l := range leaves {
			es = append(es, aonet.Edge{From: l, P: 0.9})
		}
		ands = append(ands, aonet.Edge{From: n.AddGate(aonet.And, es), P: 1})
	}
	top := n.AddGate(aonet.Or, ands)
	_, err := Exact(n, top, Options{MaxFactorVars: 3, NoConditioning: true})
	if !errors.Is(err, ErrTooWide) {
		t.Errorf("expected ErrTooWide, got %v", err)
	}
	// Cutset conditioning solves the same network exactly despite the limit.
	res, err := Exact(n, top, Options{MaxFactorVars: 3})
	if err != nil {
		t.Fatalf("conditioning failed: %v", err)
	}
	resWide, err := Exact(n, top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-resWide.P) > 1e-9 {
		t.Errorf("conditioned %g vs direct %g", res.P, resWide.P)
	}
	// The exact result also matches Monte Carlo closely.
	mc := MonteCarlo(n, top, 200000, rand.New(rand.NewSource(1)))
	if math.Abs(res.P-mc) > 0.01 {
		t.Errorf("Exact %g vs MC %g", res.P, mc)
	}
}

func TestMonteCarloConvergesToBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := randomNetwork(rng, 3, 4, 3)
		target := aonet.NodeID(n.Len() - 1)
		want, err := BruteForce(n, target)
		if err != nil {
			t.Fatal(err)
		}
		got := MonteCarlo(n, target, 100000, rng)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("trial %d: MC = %g, want %g", trial, got, want)
		}
	}
}

func TestAncestorPruneMatters(t *testing.T) {
	// Target is a leaf inside a big network: with pruning the elimination
	// touches one variable; without it, all of them.
	n := aonet.New()
	u := n.AddLeaf(0.4)
	for i := 0; i < 6; i++ {
		n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 0.5}, {From: n.AddLeaf(0.5), P: 1}})
	}
	pruned, err := Exact(n, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Exact(n, u, Options{NoAncestorPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pruned.P-0.4) > 1e-12 || math.Abs(full.P-0.4) > 1e-9 {
		t.Errorf("P(u): pruned %g, full %g, want 0.4", pruned.P, full.P)
	}
	if pruned.Vars >= full.Vars {
		t.Errorf("pruning did not shrink the variable set: %d vs %d", pruned.Vars, full.Vars)
	}
}

func TestBruteForceLimit(t *testing.T) {
	n := aonet.New()
	var es []aonet.Edge
	for i := 0; i < aonet.MaxBruteForceNodes+1; i++ {
		es = append(es, aonet.Edge{From: n.AddLeaf(0.5), P: 1})
	}
	top := n.AddGate(aonet.Or, es)
	if _, err := BruteForce(n, top); err == nil {
		t.Error("expected brute-force limit error")
	}
}

func TestFactorOps(t *testing.T) {
	// f(a,b) = P(a)·P(b|a) for a tiny chain; check multiply and sumOut
	// against hand computation.
	fa := leafFactor(0, 0.3)
	fba := unaryGateFactor(1, 0, 0.5)
	joint := multiply(fa, fba)
	if len(joint.vars) != 2 {
		t.Fatalf("joint scope %v", joint.vars)
	}
	marg := sumOut(joint, 0)
	p, err := normalizeCheck(marg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.15) > 1e-12 {
		t.Errorf("P(b) = %g, want 0.15", p)
	}
	// sumOut of an absent variable is the identity.
	if sumOut(fa, 99) != fa {
		t.Error("sumOut of absent variable should return the factor unchanged")
	}
	if _, err := normalizeCheck(joint); err == nil {
		t.Error("normalizeCheck accepted a two-variable factor")
	}
}

// TestFigure2 reproduces the Figure 2 story: decomposing a 3-parent gate
// into binary gates D(G) preserves the distribution while shrinking the
// largest CPD factor from 4 variables to 3.
func TestFigure2(t *testing.T) {
	n := aonet.New()
	a := n.AddLeaf(0.2)
	b := n.AddLeaf(0.5)
	c := n.AddLeaf(0.7)
	g := n.AddGate(aonet.Or, []aonet.Edge{{From: a, P: 0.9}, {From: b, P: 0.8}, {From: c, P: 0.6}})
	want, err := BruteForce(n, g)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Exact(n, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Exact(n, g, Options{NoDecompose: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.P-want) > 1e-9 || math.Abs(raw.P-want) > 1e-9 {
		t.Errorf("decomposed %g, raw %g, want %g", dec.P, raw.P, want)
	}
	if dec.Vars <= raw.Vars {
		t.Errorf("decomposition should add auxiliary variables: %d vs %d", dec.Vars, raw.Vars)
	}
}
