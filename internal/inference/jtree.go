package inference

import (
	"fmt"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/treewidth"
)

// ExactJT computes N⁰(x_target = 1) by message passing over a tree
// decomposition of the moralized decomposed network — the algorithmic shape
// of the paper's Theorem 5.17: given a tree decomposition of the (ancestor
// subgraph of the) network, the marginal is computed in one upward pass with
// per-bag tables, so the cost is |G|·2^O(tw). It returns ErrTooWide when the
// decomposition found by the greedy ordering exceeds Options.MaxFactorVars.
//
// ExactJT and Exact compute the same marginals; ExactJT exists as the
// paper-faithful backend and for the inference-backend ablation. Exact's
// recursive conditioning usually wins beyond small treewidths.
func ExactJT(n *aonet.Network, target aonet.NodeID, opts Options) (Result, error) {
	return ExactJTCtx(nil, n, target, opts)
}

// ExactJTCtx is ExactJT under an ExecContext: cancellation is polled at every
// bag of the upward pass, so a deadline or budget abort cuts the sweep short
// instead of running it to completion. A nil ExecContext never cancels.
func ExactJTCtx(ec *core.ExecContext, n *aonet.Network, target aonet.NodeID, opts Options) (Result, error) {
	b := builder{net: n, opts: opts}
	factors, targetVar, err := b.build(target)
	if err != nil {
		return Result{}, err
	}
	p, width, err := junctionTree(ec, factors, targetVar, opts)
	if err != nil {
		return Result{}, err
	}
	return Result{P: p, Width: width, Vars: b.nextVar}, nil
}

// junctionTree runs one upward message-passing sweep.
func junctionTree(ec *core.ExecContext, factors []*factor, target int, opts Options) (float64, int, error) {
	g, vars := interactionGraph(factors)
	idx := make(map[int]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	ti, ok := idx[target]
	if !ok {
		return 0, 0, fmt.Errorf("inference: target variable %d not in any factor", target)
	}
	order, _ := treewidth.Order(g, opts.elimHeuristic(len(vars)))
	// Move the target to the end of the elimination order so its bag is a
	// root of the decomposition tree and one upward pass suffices.
	reordered := make([]int, 0, len(order))
	for _, v := range order {
		if v != ti {
			reordered = append(reordered, v)
		}
	}
	reordered = append(reordered, ti)
	dec := treewidth.Decompose(g, reordered)
	limit := opts.maxFactorVars()
	if w := dec.Width(); w+1 > limit {
		return 0, 0, errTooWidef(w+1, limit)
	}

	// Assign each factor to the bag of its earliest-eliminated variable;
	// that bag contains the factor's whole scope (the scope is a clique of
	// the interaction graph).
	pos := make([]int, len(vars)) // graph vertex -> elimination position
	for i, v := range reordered {
		pos[v] = i
	}
	assigned := make([][]*factor, len(dec.Bags))
	for _, f := range factors {
		first := -1
		for _, v := range f.vars {
			if p := pos[idx[v]]; first < 0 || p < first {
				first = p
			}
		}
		assigned[first] = append(assigned[first], f)
	}

	// Upward pass in elimination order: each bag multiplies its assigned
	// factors and child messages, sums out its eliminated variable, and
	// sends the rest to its parent. Root bags (Parent < 0) keep their
	// tables; the final product over roots, marginalized to the target,
	// is the answer measure.
	messages := make([][]*factor, len(dec.Bags))
	var rootTables []*factor
	width := dec.Width()
	for i := range dec.Bags {
		// One bag can multiply tables of up to 2^limit entries, so a per-bag
		// poll is negligible next to the work it gates.
		if err := ec.Err(); err != nil {
			return 0, 0, err
		}
		group := append(append([]*factor(nil), assigned[i]...), messages[i]...)
		elim := vars[reordered[i]]
		if len(group) == 0 {
			continue
		}
		prod := multiplyAll(group)
		if len(prod.vars) > limit {
			return 0, 0, errTooWidef(len(prod.vars), limit)
		}
		if len(prod.vars)-1 > width {
			width = len(prod.vars) - 1
		}
		if elim != target {
			prod = sumOut(prod, elim)
		}
		if dec.Parent[i] < 0 {
			rootTables = append(rootTables, prod)
			continue
		}
		messages[dec.Parent[i]] = append(messages[dec.Parent[i]], prod)
	}
	final := append([]*factor{leafUniform(target)}, rootTables...)
	result := multiplyAll(final)
	for _, v := range result.vars {
		if v != target {
			result = sumOut(result, v)
		}
	}
	p, err := normalizeCheck(result)
	if err != nil {
		return 0, 0, err
	}
	return p, width, nil
}
