package inference

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/aonet"
)

func TestJunctionTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 60; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(4), 1+rng.Intn(6), 4)
		target := aonet.NodeID(rng.Intn(n.Len()))
		want, err := BruteForce(n, target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactJT(n, target, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got.P-want) > 1e-9 {
			t.Errorf("trial %d: junction tree = %.12f, brute force = %.12f", trial, got.P, want)
		}
	}
}

func TestJunctionTreeAgreesWithOtherBackendsAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		n := randomNetwork(rng, 8, 30, 3)
		target := aonet.NodeID(n.Len() - 1)
		jt, err := ExactJT(n, target, Options{})
		if err != nil {
			t.Fatalf("trial %d: jt: %v", trial, err)
		}
		ve, err := Exact(n, target, Options{})
		if err != nil {
			t.Fatalf("trial %d: ve: %v", trial, err)
		}
		exp, err := ExactViaExpansion(n, target, 0, 0)
		if err != nil {
			t.Fatalf("trial %d: expansion: %v", trial, err)
		}
		if math.Abs(jt.P-ve.P) > 1e-9 || math.Abs(jt.P-exp) > 1e-9 {
			t.Errorf("trial %d: jt %.12f, ve %.12f, expansion %.12f", trial, jt.P, ve.P, exp)
		}
	}
}

func TestJunctionTreeWidthGuard(t *testing.T) {
	// A dense network forces a wide decomposition: the guard must fire.
	n := aonet.New()
	var leaves []aonet.Edge
	for i := 0; i < 10; i++ {
		leaves = append(leaves, aonet.Edge{From: n.AddLeaf(0.5), P: 0.9})
	}
	var ors []aonet.Edge
	for i := 0; i < 10; i++ {
		rot := append(append([]aonet.Edge(nil), leaves[i:]...), leaves[:i]...)
		ors = append(ors, aonet.Edge{From: n.AddGate(aonet.Or, rot), P: 1})
	}
	top := n.AddGate(aonet.And, ors)
	if _, err := ExactJT(n, top, Options{MaxFactorVars: 4}); !errors.Is(err, ErrTooWide) {
		t.Errorf("expected ErrTooWide, got %v", err)
	}
	res, err := ExactJT(n, top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ve, err := Exact(n, top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-ve.P) > 1e-9 {
		t.Errorf("jt %.12f vs ve %.12f", res.P, ve.P)
	}
}

func TestJunctionTreeLeafAndEpsilon(t *testing.T) {
	n := aonet.New()
	u := n.AddLeaf(0.42)
	res, err := ExactJT(n, u, Options{})
	if err != nil || math.Abs(res.P-0.42) > 1e-12 {
		t.Errorf("leaf: %v %v", res.P, err)
	}
	res2, err := ExactJT(n, aonet.Epsilon, Options{})
	if err != nil || math.Abs(res2.P-1) > 1e-12 {
		t.Errorf("ε: %v %v", res2.P, err)
	}
}

func TestJunctionTreeDisconnectedAncestors(t *testing.T) {
	// Target with an ancestor graph containing the ε component plus its own:
	// unrelated roots contribute scalar 1.
	n := aonet.New()
	u := n.AddLeaf(0.3)
	v := n.AddLeaf(0.9)
	or := n.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 0.5}, {From: v, P: 0.5}})
	want, err := BruteForce(n, or)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactJT(n, or, Options{NoAncestorPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P-want) > 1e-9 {
		t.Errorf("jt without pruning = %.12f, want %.12f", got.P, want)
	}
}
