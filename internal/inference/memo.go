package inference

import (
	"encoding/binary"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
)

// Memo is a bounded, thread-safe memo table for variable-elimination
// subproblems, shared across the per-answer marginal computations of one
// evaluation. Keys are canonical fingerprints of a component's factor set
// (sorted factors, exact float bits) plus the target variable, so answers
// whose ancestor networks build identical factor components reuse one
// solve.
//
// Exactness contract: solveComponent canonically sorts its factor list
// before both fingerprinting and solving, so a stored measure is a pure
// function of its key and a hit returns bit-identical floats to
// recomputation. Conditioning side effects are replayed exactly: an entry
// records the split budget its solve consumed and the elimination width it
// reached; a hit is taken only when enough budget remains for the recorded
// solve to have run identically (see solveComponent), then charges that
// budget and folds the width into the solver's high-water mark. Entries are
// only written for "clean" solves whose control flow never depended on an
// exhausted split budget.
//
// Like lineage.Memo, capacity is bounded by an entry cap, a byte cap (LRU
// eviction) and the evaluation's node budget (one node per insert via
// TryChargeNodes; exhaustion stops growth, never fails the query). All
// methods are nil-receiver safe.
type Memo struct {
	mu         sync.Mutex
	table      map[string]*veEntry
	head, tail *veEntry
	bytes      int64
	maxEntries int
	maxBytes   int64

	hits, misses, evictions int64
}

// veEntry is one memoized component solve.
type veEntry struct {
	key string
	m   measure
	// width is the maximum elimination width the solve performed;
	// splitsUsed the number of conditioning branches it consumed.
	width, splitsUsed int
	prev, next        *veEntry
}

const veEntryOverhead = 96

// veMemoEntryLimit and veMemoByteLimit bound the table (defaults).
const (
	veMemoEntryLimit = 1 << 14
	veMemoByteLimit  = 32 << 20
)

// NewMemo builds an empty VE memo table with default bounds.
func NewMemo() *Memo {
	return &Memo{
		table:      make(map[string]*veEntry),
		maxEntries: veMemoEntryLimit,
		maxBytes:   veMemoByteLimit,
	}
}

// lookup returns the entry for key when present AND usable under the given
// remaining split budget: replaying the recorded solve is only guaranteed
// bit-identical when strictly more budget remains than it consumed. An
// unusable entry counts as a miss.
func (m *Memo) lookup(key string, splitsAvail int) (veEntry, bool) {
	if m == nil {
		return veEntry{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.table[key]
	if !ok || splitsAvail <= e.splitsUsed {
		m.misses++
		return veEntry{}, false
	}
	m.hits++
	m.moveToFront(e)
	return *e, true
}

// store memoizes one clean component solve, charging a node against ec.
func (m *Memo) store(ec *core.ExecContext, key string, val measure, width, splitsUsed int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.table[key]; ok {
		return
	}
	if !ec.TryChargeNodes(1) {
		return
	}
	e := &veEntry{key: key, m: val, width: width, splitsUsed: splitsUsed}
	m.table[key] = e
	m.pushFront(e)
	m.bytes += int64(len(key)) + veEntryOverhead
	for len(m.table) > m.maxEntries || m.bytes > m.maxBytes {
		m.evictOldest()
	}
}

// Stats snapshots the hit/miss/eviction counters and current footprint.
func (m *Memo) Stats() (hits, misses, evictions int64, entries int, bytes int64) {
	if m == nil {
		return 0, 0, 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.evictions, len(m.table), m.bytes
}

func (m *Memo) pushFront(e *veEntry) {
	e.prev, e.next = nil, m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

func (m *Memo) moveToFront(e *veEntry) {
	if m.head == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}

func (m *Memo) unlink(e *veEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *Memo) evictOldest() {
	e := m.tail
	if e == nil {
		return
	}
	m.unlink(e)
	delete(m.table, e.key)
	m.bytes -= int64(len(e.key)) + veEntryOverhead
	m.evictions++
}

// veKeyFactorLimit and veKeyDataLimit cap the subproblem size worth
// fingerprinting: serializing a huge factor set costs more than the solve
// it would save, and oversized keys would blow the byte cap anyway.
// veKeyMinFactors gates the other end: components of a handful of factors
// solve faster than the table's mutex-plus-fingerprint round trip.
const (
	veKeyMinFactors  = 6
	veKeyFactorLimit = 64
	veKeyDataLimit   = 4096
)

// veMemoKey fingerprints a canonically sorted factor list and target
// variable: variable ids in decimal, table entries as exact little-endian
// float64 bits. It reports false for subproblems outside the size window.
func veMemoKey(factors []*factor, target int) (string, bool) {
	if len(factors) < veKeyMinFactors || len(factors) > veKeyFactorLimit {
		return "", false
	}
	total := 0
	for _, f := range factors {
		total += len(f.data)
	}
	if total > veKeyDataLimit {
		return "", false
	}
	b := make([]byte, 0, 16+16*len(factors)+8*total)
	b = strconv.AppendInt(b, int64(target), 10)
	b = append(b, '|')
	var tmp [8]byte
	for _, f := range factors {
		for _, v := range f.vars {
			b = strconv.AppendInt(b, int64(v), 10)
			b = append(b, ',')
		}
		b = append(b, ':')
		for _, d := range f.data {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(d))
			b = append(b, tmp[:]...)
		}
		b = append(b, ';')
	}
	return string(b), true
}

// sortFactors returns the factor list in canonical order: by scope, then by
// exact table bits. solveComponent solves the sorted list, making every
// component solve a pure function of its fingerprint.
func sortFactors(factors []*factor) []*factor {
	sorted := append([]*factor(nil), factors...)
	sort.SliceStable(sorted, func(i, j int) bool { return factorLess(sorted[i], sorted[j]) })
	return sorted
}

func factorLess(a, b *factor) bool {
	if len(a.vars) != len(b.vars) {
		return len(a.vars) < len(b.vars)
	}
	for i := range a.vars {
		if a.vars[i] != b.vars[i] {
			return a.vars[i] < b.vars[i]
		}
	}
	for i := range a.data {
		ab, bb := math.Float64bits(a.data[i]), math.Float64bits(b.data[i])
		if ab != bb {
			return ab < bb
		}
	}
	return false
}
