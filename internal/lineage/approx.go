package lineage

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// ErrSamples reports a non-positive sample count passed to a sampler. The
// Ctx variants return it (wrapped with the offending value) instead of
// dividing by zero into a NaN estimate; matchable with errors.Is.
var ErrSamples = errors.New("lineage: sample count must be positive")

// clampSamples is the legacy-wrapper policy: the non-error sampling entry
// points round a non-positive count up to one draw rather than return NaN.
func clampSamples(samples int) int {
	if samples < 1 {
		return 1
	}
	return samples
}

// MonteCarlo estimates the probability of f by naive sampling: draw worlds
// from the product distribution and count satisfying ones. Its relative
// error is poor for small probabilities; prefer KarpLuby. A non-positive
// sample count is clamped to one draw; MonteCarloCtx is the cancellable
// variant and rejects it instead.
func MonteCarlo(f *DNF, p func(Var) float64, samples int, rng *rand.Rand) float64 {
	est, err := MonteCarloCtx(nil, f, p, clampSamples(samples), rng)
	if err != nil {
		panic("lineage: MonteCarloCtx failed without a context: " + err.Error())
	}
	return est
}

// MonteCarloCtx is MonteCarlo under an ExecContext, polling cancellation
// every core.CheckInterval samples. samples must be positive (ErrSamples
// otherwise — hits/samples would be NaN).
func MonteCarloCtx(ec *core.ExecContext, f *DNF, p func(Var) float64, samples int, rng *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("%w: got %d", ErrSamples, samples)
	}
	vars := f.Vars()
	assign := make(map[Var]bool, len(vars))
	chk := core.Check{EC: ec}
	hits := 0
	for s := 0; s < samples; s++ {
		if err := chk.Tick(); err != nil {
			return 0, err
		}
		for _, v := range vars {
			assign[v] = rng.Float64() < validateProb(p(v), v)
		}
		if f.Eval(func(v Var) bool { return assign[v] }) {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}

// KarpLuby estimates the probability of the monotone DNF f with the
// Karp–Luby unbiased union estimator:
//
//	M = Σ_i P(clause_i);  sample clause i with probability P(clause_i)/M,
//	then a world conditioned on clause_i being true; the indicator that i is
//	the first satisfied clause has expectation P(F)/M.
//
// The estimator's relative error depends on the number of clauses rather
// than on P(F), which makes it the standard choice for small query
// probabilities [21, 13]. A non-positive sample count is clamped to one
// draw; KarpLubyCtx is the cancellable variant and rejects it instead.
func KarpLuby(f *DNF, p func(Var) float64, samples int, rng *rand.Rand) float64 {
	est, err := KarpLubyCtx(nil, f, p, clampSamples(samples), rng)
	if err != nil {
		panic("lineage: KarpLubyCtx failed without a context: " + err.Error())
	}
	return est
}

// KarpLubyCtx is KarpLuby under an ExecContext, polling cancellation every
// core.CheckInterval samples. samples must be positive (ErrSamples
// otherwise — hits/samples would be NaN).
func KarpLubyCtx(ec *core.ExecContext, f *DNF, p func(Var) float64, samples int, rng *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("%w: got %d", ErrSamples, samples)
	}
	if len(f.Clauses) == 0 {
		return 0, nil
	}
	if f.IsTrue() {
		return 1, nil
	}
	// Clause weights and the cumulative distribution for sampling.
	weights := make([]float64, len(f.Clauses))
	total := 0.0
	for i, c := range f.Clauses {
		w := 1.0
		for _, v := range c {
			w *= validateProb(p(v), v)
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return 0, nil
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	vars := f.Vars()
	assign := make(map[Var]bool, len(vars))
	chk := core.Check{EC: ec}
	hits := 0
	for s := 0; s < samples; s++ {
		if err := chk.Tick(); err != nil {
			return 0, err
		}
		// Sample a clause proportional to its weight.
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i == len(cum) {
			i = len(cum) - 1
		}
		// Sample a world conditioned on clause i true.
		forced := f.Clauses[i]
		fi := 0
		for _, v := range vars {
			if fi < len(forced) && forced[fi] == v {
				assign[v] = true
				fi++
				continue
			}
			assign[v] = rng.Float64() < p(v)
		}
		// Count the sample iff i is the first satisfied clause.
		first := -1
		for j, c := range f.Clauses {
			sat := true
			for _, v := range c {
				if !assign[v] {
					sat = false
					break
				}
			}
			if sat {
				first = j
				break
			}
		}
		if first == i {
			hits++
		}
	}
	est := total * float64(hits) / float64(samples)
	if est > 1 {
		est = 1
	}
	return est, nil
}

// KarpLubyGuarantee estimates the probability of the monotone DNF f with a
// multiplicative (ε, δ) guarantee: with probability at least 1-δ the
// estimate is within relative error ε of the true probability. It runs the
// Karp–Luby estimator with the sample count of the zero-one estimator
// theorem — the coverage indicator has mean at least 1/m for a formula of m
// clauses, so n = ⌈4·m·ln(2/δ)/ε²⌉ samples suffice. It returns the estimate
// and the sample count used. This is the guarantee style of approximate
// confidence computation in probabilistic databases [19, 21].
func KarpLubyGuarantee(f *DNF, p func(Var) float64, eps, delta float64, rng *rand.Rand) (float64, int) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("lineage: KarpLubyGuarantee needs eps, delta in (0,1)")
	}
	s := f.Simplify()
	m := len(s.Clauses)
	if m == 0 {
		return 0, 0
	}
	if s.IsTrue() {
		return 1, 0
	}
	n := int(math.Ceil(4 * float64(m) * math.Log(2/delta) / (eps * eps)))
	return KarpLuby(s, p, n, rng), n
}
