package lineage

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Regression: samples <= 0 used to flow into hits/samples and return NaN
// (found by the crosscheck hardening pass). The Ctx variants must reject it
// with ErrSamples; the legacy wrappers clamp to one draw.
func TestSamplersRejectNonPositiveSamples(t *testing.T) {
	f := &DNF{Clauses: []Clause{NewClause(0)}}
	p := func(Var) float64 { return 0.5 }
	for _, samples := range []int{0, -7} {
		rng := rand.New(rand.NewSource(1))
		if _, err := KarpLubyCtx(nil, f, p, samples, rng); !errors.Is(err, ErrSamples) {
			t.Errorf("KarpLubyCtx(samples=%d) err = %v, want ErrSamples", samples, err)
		}
		if _, err := MonteCarloCtx(nil, f, p, samples, rng); !errors.Is(err, ErrSamples) {
			t.Errorf("MonteCarloCtx(samples=%d) err = %v, want ErrSamples", samples, err)
		}
		if est := KarpLuby(f, p, samples, rng); math.IsNaN(est) || est < 0 || est > 1 {
			t.Errorf("KarpLuby(samples=%d) = %v, want a probability", samples, est)
		}
		if est := MonteCarlo(f, p, samples, rng); math.IsNaN(est) || est < 0 || est > 1 {
			t.Errorf("MonteCarlo(samples=%d) = %v, want a probability", samples, est)
		}
	}
}

// The validation must precede the trivial-formula shortcuts so a bad sample
// count is never masked by an empty or tautological formula.
func TestSamplersRejectBeforeShortcuts(t *testing.T) {
	p := func(Var) float64 { return 0.5 }
	rng := rand.New(rand.NewSource(1))
	for _, f := range []*DNF{{}, {Clauses: []Clause{NewClause()}}} {
		if _, err := KarpLubyCtx(nil, f, p, 0, rng); !errors.Is(err, ErrSamples) {
			t.Errorf("KarpLubyCtx(trivial %q, samples=0) err = %v, want ErrSamples", f, err)
		}
	}
}
