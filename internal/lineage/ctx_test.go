package lineage

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func cancelledEC() *core.ExecContext {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return core.NewExecContext(ctx, core.ExecConfig{})
}

// chainDNF builds x_0x_1 ∨ x_1x_2 ∨ … with m clauses: not read-once (the
// co-occurrence graph is a long induced path), over 512 variables it also
// skips the read-once recognition limit, and its Shannon recursion performs
// on the order of m expansions — plenty for the strided cancellation poll.
func chainDNF(m int) *DNF {
	f := &DNF{}
	for i := 0; i < m; i++ {
		f.Add(NewClause(Var(i), Var(i+1)))
	}
	return f
}

// TestProbBudgetCtxCancelled: a cancelled context unwinds the Shannon
// recursion promptly via the panic sentinel instead of running an
// exponential expansion (or exhausting the budget first).
func TestProbBudgetCtxCancelled(t *testing.T) {
	f := chainDNF(1200)
	p := func(Var) float64 { return 0.5 }
	start := time.Now()
	_, err := ProbBudgetCtx(cancelledEC(), f, p, 1<<30)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ProbBudgetCtx = %v, want context.Canceled", err)
	}
	// One strided check interval of Shannon expansions; the full solve has
	// millions of them. Generous bound for the race detector's overhead.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestProbBudgetCtxNilMatchesProbBudget: a nil ExecContext preserves the
// original semantics, including ErrBudget.
func TestProbBudgetCtxNilMatchesProbBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := randomDNF(rng, 8, 8, 3)
	p := func(Var) float64 { return 0.4 }
	want, errWant := ProbBudget(f, p, 100000)
	got, errGot := ProbBudgetCtx(nil, f, p, 100000)
	if want != got || !errors.Is(errGot, errWant) {
		t.Errorf("ProbBudgetCtx(nil) = (%v, %v), ProbBudget = (%v, %v)", got, errGot, want, errWant)
	}
	if _, err := ProbBudgetCtx(nil, chainDNF(2000), p, 10); !errors.Is(err, ErrBudget) {
		t.Errorf("tiny budget: err = %v, want ErrBudget", err)
	}
}

// TestKarpLubyCtxCancelled: the sampling loop polls every core.CheckInterval
// samples.
func TestKarpLubyCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := randomDNF(rng, 10, 8, 3)
	p := func(Var) float64 { return 0.3 }
	_, err := KarpLubyCtx(cancelledEC(), f, p, 1<<30, rng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("KarpLubyCtx = %v, want context.Canceled", err)
	}
}
