// Package lineage implements DNF lineage formulas and intensional
// confidence computation.
//
// The lineage of a Boolean conjunctive query is a monotone DNF formula over
// Boolean variables associated with input tuples (Definition 3.5): one
// clause per satisfying grounding of the query. The package provides
//
//   - exact confidence computation by variable elimination / Shannon
//     expansion with independent-subformula decomposition, the algorithm
//     class of Koch & Olteanu [16] used by MayBMS — our stand-in for the
//     paper's competitor system;
//   - approximate confidence computation: naive Monte-Carlo and the
//     Karp–Luby unbiased DNF estimator;
//   - the lineage primal graph and its treewidth (Section 4.3.1,
//     Theorem 4.2).
package lineage

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/treewidth"
)

// Var is a propositional variable. Variables are dense indexes into a
// probability table.
type Var int32

// Clause is a conjunction of (positive) variables, stored sorted and
// deduplicated.
type Clause []Var

// NewClause builds a canonical clause from the given variables.
func NewClause(vars ...Var) Clause {
	c := append(Clause(nil), vars...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	for i, v := range c {
		if i == 0 || v != c[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// DNF is a monotone formula in disjunctive normal form: the disjunction of
// its clauses. The empty DNF is false; a DNF containing an empty clause is
// true.
type DNF struct {
	Clauses []Clause
}

// Add appends a clause.
func (f *DNF) Add(c Clause) { f.Clauses = append(f.Clauses, c) }

// Vars returns the sorted set of variables occurring in f.
func (f *DNF) Vars() []Var {
	seen := make(map[Var]bool)
	for _, c := range f.Clauses {
		for _, v := range c {
			seen[v] = true
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Eval evaluates the formula under the given assignment.
func (f *DNF) Eval(assign func(Var) bool) bool {
	for _, c := range f.Clauses {
		sat := true
		for _, v := range c {
			if !assign(v) {
				sat = false
				break
			}
		}
		if sat {
			return true
		}
	}
	return false
}

// String renders the formula as x1x2 ∨ x3 ... for debugging.
func (f *DNF) String() string {
	if len(f.Clauses) == 0 {
		return "false"
	}
	s := ""
	for i, c := range f.Clauses {
		if i > 0 {
			s += " v "
		}
		if len(c) == 0 {
			s += "true"
			continue
		}
		for j, v := range c {
			if j > 0 {
				s += "."
			}
			s += fmt.Sprintf("x%d", v)
		}
	}
	return s
}

// PrimalGraph returns the primal graph of the formula's hypergraph
// (Section 4.3.1): vertices are the formula's variables, with an edge
// between every pair co-occurring in a clause. It also returns the variable
// corresponding to each graph vertex.
func (f *DNF) PrimalGraph() (*treewidth.Graph, []Var) {
	vars := f.Vars()
	idx := make(map[Var]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	g := treewidth.NewGraph(len(vars))
	for _, c := range f.Clauses {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				g.AddEdge(idx[c[i]], idx[c[j]])
			}
		}
	}
	return g, vars
}

// TreewidthUpperBound returns a greedy upper bound on the treewidth of the
// formula's primal graph.
func (f *DNF) TreewidthUpperBound() int {
	g, _ := f.PrimalGraph()
	return treewidth.UpperBound(g)
}

// ProbBruteForce computes the exact probability of f by enumerating all
// assignments of its variables; for validating Prob on small formulas. The
// variable limit of 22 caps the enumeration at 2^22 ≈ 4M assignments — a few
// hundred milliseconds of work — past which the oracle is slower than the
// solvers it is meant to validate. Assignment weights are accumulated with
// Kahan compensated summation: the 2^n tiny products would otherwise lose
// enough low-order bits for the oracle itself to drift beyond the 1e-9
// agreement tolerance the crosscheck harness holds the solvers to.
func ProbBruteForce(f *DNF, p func(Var) float64) (float64, error) {
	vars := f.Vars()
	if len(vars) > 22 {
		return 0, fmt.Errorf("lineage: %d variables exceeds brute-force limit", len(vars))
	}
	assign := make(map[Var]bool, len(vars))
	total, comp := 0.0, 0.0
	for mask := 0; mask < 1<<uint(len(vars)); mask++ {
		w := 1.0
		for i, v := range vars {
			on := mask&(1<<uint(i)) != 0
			assign[v] = on
			if on {
				w *= p(v)
			} else {
				w *= 1 - p(v)
			}
		}
		if w == 0 {
			continue
		}
		if f.Eval(func(v Var) bool { return assign[v] }) {
			y := w - comp
			t := total + y
			comp = (t - total) - y
			total = t
		}
	}
	return total, nil
}

// Simplify removes clauses that are supersets of other clauses (absorption)
// and duplicate clauses, returning a logically equivalent formula. It is a
// preprocessing step for the exact solver.
func (f *DNF) Simplify() *DNF {
	cs := make([]Clause, len(f.Clauses))
	copy(cs, f.Clauses)
	sort.Slice(cs, func(i, j int) bool { return len(cs[i]) < len(cs[j]) })
	var kept []Clause
	for _, c := range cs {
		absorbed := false
		for _, k := range kept {
			if subset(k, c) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, c)
		}
	}
	return &DNF{Clauses: kept}
}

// subset reports whether sorted clause a ⊆ sorted clause b.
func subset(a, b Clause) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

// IsTrue reports whether the formula contains an empty clause (tautology
// for monotone DNF).
func (f *DNF) IsTrue() bool {
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return true
		}
	}
	return false
}

// validateProb panics on probabilities outside [0,1]; exact and approximate
// solvers share it.
func validateProb(p float64, v Var) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		panic(fmt.Sprintf("lineage: probability %v of x%d outside [0,1]", p, v))
	}
	return p
}
