package lineage

import (
	"repro/internal/core"
)

// This file implements knowledge compilation of monotone DNF lineage into
// d-DNNF circuits (deterministic decomposable negation normal form), the
// compiled representation of Monet & Olteanu's work on lineage circuits:
// compile the Shannon-expansion trace once, then confidence under any
// probability assignment is a single linear bottom-up pass over the nodes.
//
// The compiler replays exactly the recursion of ProbMemoCtx — the same
// read-once fast path, the same canonical sorting, the same independent-
// component split and the same most-frequent-variable Shannon expansion —
// but instead of folding probabilities it records the decomposition as
// circuit nodes. Because every structural choice the solver makes (variable
// order, component split, memoization keys) is a pure function of the clause
// set and never of the probability table, Eval reproduces ProbMemoCtx's
// result bit for bit under any probability assignment: the floating-point
// operations happen in the same order on the same values. That is what lets
// a circuit compiled once be re-evaluated after prob-updates (the
// incremental write path) or shared across queries with identical lineage
// cores.

// CircuitNodeKind labels a node of a compiled d-DNNF circuit.
type CircuitNodeKind uint8

// Circuit node kinds. Children always precede parents in Circuit.Nodes.
const (
	// CFalse is the constant-false node (probability 0).
	CFalse CircuitNodeKind = iota
	// CTrue is the constant-true node (probability 1).
	CTrue
	// CLeaf is a variable leaf (probability p(Var)).
	CLeaf
	// CDecision is a Shannon decision on Var:
	// p(Var)·value(Hi) + (1−p(Var))·value(Lo).
	CDecision
	// CAnd is a decomposable conjunction: the product of its children's
	// values (the children share no variables).
	CAnd
	// CIOr is an independent disjunction: 1 − ∏(1 − value(child)) over
	// variable-disjoint children.
	CIOr
)

// String names the node kind for diagnostics.
func (k CircuitNodeKind) String() string {
	switch k {
	case CFalse:
		return "false"
	case CTrue:
		return "true"
	case CLeaf:
		return "leaf"
	case CDecision:
		return "decision"
	case CAnd:
		return "and"
	case CIOr:
		return "ior"
	}
	return "invalid"
}

// CircuitNode is one node of a compiled circuit. Which fields are meaningful
// depends on Kind: Var for CLeaf and CDecision, Hi/Lo for CDecision,
// Children for CAnd and CIOr.
type CircuitNode struct {
	Kind     CircuitNodeKind
	Var      Var
	Hi, Lo   int32
	Children []int32
}

// Circuit is a compiled d-DNNF circuit: a flat node array in which every
// child index is smaller than its parent's index, so Eval is one in-order
// pass. Circuits are immutable after compilation and safe for concurrent
// Eval calls.
type Circuit struct {
	// Nodes holds the circuit in bottom-up order (children before parents).
	Nodes []CircuitNode
	// Root indexes the output node in Nodes.
	Root int32
	// Decisions counts the Shannon decision nodes — the quantity the exact
	// solver charges against its expansion budget, preserved here for
	// observability.
	Decisions int
}

// Eval computes the probability of the compiled formula when each variable v
// is independently true with probability p(v): one linear bottom-up pass,
// with the floating-point operations of each node mirroring the exact
// solver's arithmetic exactly (see the compiler notes above).
func (c *Circuit) Eval(p func(Var) float64) float64 {
	vals := make([]float64, len(c.Nodes))
	for i, n := range c.Nodes {
		switch n.Kind {
		case CFalse:
			vals[i] = 0
		case CTrue:
			vals[i] = 1
		case CLeaf:
			vals[i] = validateProb(p(n.Var), n.Var)
		case CDecision:
			px := validateProb(p(n.Var), n.Var)
			vals[i] = px*vals[n.Hi] + (1-px)*vals[n.Lo]
		case CAnd:
			w := 1.0
			for _, ch := range n.Children {
				w *= vals[ch]
			}
			vals[i] = w
		default: // CIOr
			notAny := 1.0
			for _, ch := range n.Children {
				notAny *= 1 - vals[ch]
			}
			vals[i] = 1 - notAny
		}
	}
	return vals[c.Root]
}

// MemoryBytes estimates the heap footprint of the circuit for cache
// accounting.
func (c *Circuit) MemoryBytes() int64 {
	const nodeOverhead = 40 // struct fields + slice header
	total := int64(len(c.Nodes)) * nodeOverhead
	for _, n := range c.Nodes {
		total += int64(len(n.Children)) * 4
	}
	return total
}

// Compile compiles the monotone DNF f into a d-DNNF circuit with an
// unlimited expansion budget. Like Prob, it is exponential in the worst case
// but polynomial on read-once and low-treewidth lineage.
func Compile(f *DNF) *Circuit {
	c, err := CompileCtx(nil, f, 0)
	if err != nil {
		panic("lineage: unbounded compiler returned " + err.Error())
	}
	return c
}

// CompileCtx compiles f under an ExecContext and a Shannon-expansion budget
// (budget <= 0 means unlimited; each decision node charges one expansion,
// exactly as the exact solver does). It returns ErrBudget when the bound is
// exhausted and the context's error when cancelled. The resulting circuit's
// Eval is bit-identical to ProbMemoCtx on the same formula for every
// probability assignment.
func CompileCtx(ec *core.ExecContext, f *DNF, budget int) (*Circuit, error) {
	return compileSimplified(ec, f.Simplify(), budget)
}

// compileSimplified is CompileCtx on an already absorption-simplified
// formula; CircuitProbCtx uses it to avoid simplifying twice.
func compileSimplified(ec *core.ExecContext, simplified *DNF, budget int) (*Circuit, error) {
	if budget <= 0 {
		budget = -1
	}
	b := &circuitCompiler{
		memo:   make(map[string]int32),
		leaves: make(map[Var]int32),
		budget: budget,
		chk:    core.Check{EC: ec},
	}
	// Same fast-path gate as ProbMemoCtx: read-once lineage compiles to its
	// factorization tree, whose one-pass Prob the circuit mirrors node for
	// node.
	if vars := simplified.Vars(); len(vars) > 0 && len(vars) <= readOnceLimit && !simplified.IsTrue() {
		if fact, ok := readOnce(simplified.Clauses); ok {
			root := b.factor(fact)
			return &Circuit{Nodes: b.nodes, Root: root, Decisions: b.decisions}, nil
		}
	}
	root, err := b.compileChecked(simplified.Clauses)
	if err != nil {
		return nil, err
	}
	return &Circuit{Nodes: b.nodes, Root: root, Decisions: b.decisions}, nil
}

// circuitCompiler replays the exact solver's recursion, emitting circuit
// nodes instead of folding probabilities. The memo table plays the role of
// the solver's per-call memo: a recurring canonical subproblem reuses its
// node, turning the expansion tree into a DAG.
type circuitCompiler struct {
	nodes     []CircuitNode
	memo      map[string]int32
	leaves    map[Var]int32
	constants [2]int32 // 1+index of the CFalse/CTrue node, 0 = not yet built
	budget    int      // remaining Shannon expansions; -1 = unlimited
	chk       core.Check
	decisions int
}

// add appends a node and returns its index.
func (b *circuitCompiler) add(n CircuitNode) int32 {
	b.nodes = append(b.nodes, n)
	return int32(len(b.nodes) - 1)
}

// constant returns the shared CFalse or CTrue node, creating it on first use.
func (b *circuitCompiler) constant(kind CircuitNodeKind) int32 {
	slot := 0
	if kind == CTrue {
		slot = 1
	}
	if b.constants[slot] == 0 {
		b.constants[slot] = b.add(CircuitNode{Kind: kind}) + 1
	}
	return b.constants[slot] - 1
}

// leaf returns the shared leaf node for v, creating it on first use.
func (b *circuitCompiler) leaf(v Var) int32 {
	if idx, ok := b.leaves[v]; ok {
		return idx
	}
	idx := b.add(CircuitNode{Kind: CLeaf, Var: v})
	b.leaves[v] = idx
	return idx
}

// factor compiles a read-once factorization tree; the node kinds map one to
// one onto Factorization.Prob's arithmetic.
func (b *circuitCompiler) factor(f *Factorization) int32 {
	switch f.Kind {
	case FVar:
		return b.leaf(f.Var)
	case FAnd:
		children := make([]int32, len(f.Children))
		for i, c := range f.Children {
			children[i] = b.factor(c)
		}
		return b.add(CircuitNode{Kind: CAnd, Children: children})
	default: // FOr
		children := make([]int32, len(f.Children))
		for i, c := range f.Children {
			children[i] = b.factor(c)
		}
		return b.add(CircuitNode{Kind: CIOr, Children: children})
	}
}

// compileChecked wraps compile, converting the budget panic into ErrBudget
// and the cancellation panic into its context error — the same unwinding
// protocol as solver.probChecked.
func (b *circuitCompiler) compileChecked(clauses []Clause) (idx int32, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == errBudgetSentinel {
				err = ErrBudget
				return
			}
			if c, ok := r.(ctxSentinel); ok {
				err = c.err
				return
			}
			panic(r)
		}
	}()
	return b.compile(clauses), nil
}

// compile mirrors solver.prob: base cases, canonicalization at the memo
// boundary, then the component split.
func (b *circuitCompiler) compile(clauses []Clause) int32 {
	switch len(clauses) {
	case 0:
		return b.constant(CFalse)
	case 1:
		return b.clause(clauses[0])
	}
	for _, c := range clauses {
		if len(c) == 0 {
			return b.constant(CTrue)
		}
	}
	sorted := sortClauses(clauses)
	key := serializeClauses(sorted)
	if idx, ok := b.memo[key]; ok {
		return idx
	}
	idx := b.compileComponents(sorted)
	if len(b.memo) < memoLimit {
		b.memo[key] = idx
	}
	return idx
}

// clause compiles a single conjunction: the product of its variable
// probabilities, in clause order, exactly as the solver's single-clause
// case multiplies them. A one-variable clause is the bare leaf (1·x ≡ x in
// IEEE arithmetic), and the empty clause is true.
func (b *circuitCompiler) clause(c Clause) int32 {
	switch len(c) {
	case 0:
		return b.constant(CTrue)
	case 1:
		return b.leaf(c[0])
	}
	key := serializeClauses([]Clause{c})
	if idx, ok := b.memo[key]; ok {
		return idx
	}
	children := make([]int32, len(c))
	for i, v := range c {
		children[i] = b.leaf(v)
	}
	idx := b.add(CircuitNode{Kind: CAnd, Children: children})
	if len(b.memo) < memoLimit {
		b.memo[key] = idx
	}
	return idx
}

// compileComponents mirrors solver.probComponents: variable-disjoint clause
// groups combine under an independent-or node. The solver's early break at a
// zero partial product is a pure shortcut — 0·x stays 0 for the validated
// probabilities Eval multiplies — so omitting it never changes the value.
func (b *circuitCompiler) compileComponents(clauses []Clause) int32 {
	comps := components(clauses)
	if len(comps) == 1 {
		return b.shannon(clauses)
	}
	children := make([]int32, len(comps))
	for i, comp := range comps {
		children[i] = b.compile(comp)
	}
	return b.add(CircuitNode{Kind: CIOr, Children: children})
}

// shannon mirrors solver.shannon: charge the budget, poll cancellation,
// expand on the most frequent variable (ties to the smallest), and emit a
// decision node over the cofactor circuits. A nil positive cofactor is the
// tautology case: the hi child is constant true.
func (b *circuitCompiler) shannon(clauses []Clause) int32 {
	if b.budget == 0 {
		panic(errBudgetSentinel)
	}
	if b.budget > 0 {
		b.budget--
	}
	if err := b.chk.Tick(); err != nil {
		panic(ctxSentinel{err: err})
	}
	counts := make(map[Var]int)
	for _, c := range clauses {
		for _, v := range c {
			counts[v]++
		}
	}
	var x Var
	best := -1
	for v, n := range counts {
		if n > best || (n == best && v < x) {
			x, best = v, n
		}
	}
	pos, neg := cofactors(clauses, x)
	var hi int32
	if pos == nil {
		hi = b.constant(CTrue) // some clause reduced to empty: F|x=1 is true
	} else {
		hi = b.compile(pos)
	}
	lo := b.compile(neg)
	b.decisions++
	return b.add(CircuitNode{Kind: CDecision, Var: x, Hi: hi, Lo: lo})
}
