package lineage

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// CircuitCache is a bounded, thread-safe LRU table of compiled d-DNNF
// circuits keyed on the canonical fingerprint of their simplified clause
// sets — the same serialization the exact solver memoizes on. Because a
// circuit is a pure function of its key (probabilities are supplied at Eval
// time, never baked in), entries need no invalidation on prob-updates: a
// refresh re-evaluates the cached structure under the new probability
// table. Structural writes change the fingerprints themselves, so stale
// entries merely age out of the LRU.
//
// All methods are safe on a nil receiver, acting as an always-miss cache,
// so callers thread an optional *CircuitCache without nil checks.
type CircuitCache struct {
	mu         sync.Mutex
	table      map[string]*circuitEntry
	head, tail *circuitEntry // LRU list, head most recently used
	bytes      int64
	maxEntries int
	maxBytes   int64

	compiles, hits, misses, evals, evictions int64
}

type circuitEntry struct {
	key        string
	circuit    *Circuit
	bytes      int64
	prev, next *circuitEntry
}

// circuitEntryOverhead approximates per-entry bookkeeping bytes (entry
// struct, map slot) added to the key and circuit sizes for the byte cap.
const circuitEntryOverhead = 96

// CircuitCacheConfig bounds a CircuitCache. Zero fields take defaults.
type CircuitCacheConfig struct {
	// MaxEntries caps the number of cached circuits (default 1<<12).
	MaxEntries int
	// MaxBytes caps the approximate memory footprint (default 32 MiB).
	MaxBytes int64
}

// NewCircuitCache builds an empty circuit cache with the given bounds.
func NewCircuitCache(cfg CircuitCacheConfig) *CircuitCache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1 << 12
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 32 << 20
	}
	return &CircuitCache{
		table:      make(map[string]*circuitEntry),
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
	}
}

// Lookup returns the cached circuit for key and whether it was present,
// promoting a hit to most-recently-used. On a nil receiver it reports a miss
// without counting.
func (c *CircuitCache) Lookup(key string) (*Circuit, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.table[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.circuit, true
}

// Store caches key -> circuit, counting one compile. An already-present key
// leaves the cache unchanged; past the entry or byte cap the least recently
// used circuits are evicted.
func (c *CircuitCache) Store(key string, circuit *Circuit) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compiles++
	if _, ok := c.table[key]; ok {
		return
	}
	e := &circuitEntry{key: key, circuit: circuit, bytes: int64(len(key)) + circuit.MemoryBytes() + circuitEntryOverhead}
	c.table[key] = e
	c.pushFront(e)
	c.bytes += e.bytes
	for len(c.table) > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldest()
	}
}

// countEval counts one re-evaluation of a cached or freshly compiled
// circuit.
func (c *CircuitCache) countEval() {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.evals, 1)
}

// Reset drops every cached circuit: the structural analog of Memo.Reset for
// rebuilds that change lineage structure. Counters keep accumulating across
// resets.
func (c *CircuitCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.table = make(map[string]*circuitEntry)
	c.head, c.tail = nil, nil
	c.bytes = 0
}

// CircuitCacheStats is a point-in-time snapshot of a CircuitCache's
// counters.
type CircuitCacheStats struct {
	Compiles, Hits, Misses, Evals, Evictions int64
	Entries                                  int
	Bytes                                    int64
}

// Stats snapshots the counters (zero on a nil receiver).
func (c *CircuitCache) Stats() CircuitCacheStats {
	if c == nil {
		return CircuitCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CircuitCacheStats{
		Compiles:  c.compiles,
		Hits:      c.hits,
		Misses:    c.misses,
		Evals:     atomic.LoadInt64(&c.evals),
		Evictions: c.evictions,
		Entries:   len(c.table),
		Bytes:     c.bytes,
	}
}

// pushFront links e as the most recently used entry. Callers hold mu.
func (c *CircuitCache) pushFront(e *circuitEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// moveToFront promotes an existing entry. Callers hold mu.
func (c *CircuitCache) moveToFront(e *circuitEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// unlink removes e from the list without touching the table. Callers hold mu.
func (c *CircuitCache) unlink(e *circuitEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictOldest drops the least recently used entry. Callers hold mu.
func (c *CircuitCache) evictOldest() {
	e := c.tail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.table, e.key)
	c.bytes -= e.bytes
	c.evictions++
}

// CircuitStats accumulates compiled-circuit activity for one evaluation.
// Per-answer inference updates it from worker goroutines, so the fields are
// incremented atomically; read them after the evaluation completes. All
// methods are safe on a nil receiver.
type CircuitStats struct {
	// Compiles counts lineage formulas compiled to circuits, Hits counts
	// cache hits on already-compiled structure, and Evals counts linear
	// re-evaluation passes.
	Compiles, Hits, Evals int64
}

func (s *CircuitStats) compile() {
	if s != nil {
		atomic.AddInt64(&s.Compiles, 1)
	}
}

func (s *CircuitStats) hit() {
	if s != nil {
		atomic.AddInt64(&s.Hits, 1)
	}
}

func (s *CircuitStats) eval() {
	if s != nil {
		atomic.AddInt64(&s.Evals, 1)
	}
}

// Snapshot reads the counters atomically (zero on a nil receiver).
func (s *CircuitStats) Snapshot() (compiles, hits, evals int64) {
	if s == nil {
		return 0, 0, 0
	}
	return atomic.LoadInt64(&s.Compiles), atomic.LoadInt64(&s.Hits), atomic.LoadInt64(&s.Evals)
}

// CircuitProbCtx computes the exact probability of f through the compiled-
// circuit backend: it consults cache for a circuit matching f's canonical
// fingerprint, compiles (and caches) one on a miss, and runs the linear Eval
// pass. Results are bit-identical to ProbMemoCtx for every probability
// assignment — the compiler replays the solver's recursion exactly — so
// enabling the cache never perturbs query answers. Compilation charges the
// same per-expansion budget as the solver and returns ErrBudget past it; a
// cache hit charges nothing, mirroring the shared memo's convention that
// only the number of expansions charged can shrink on hits. st, when
// non-nil, accumulates per-evaluation compile/hit/eval counts.
func CircuitProbCtx(ec *core.ExecContext, f *DNF, p func(Var) float64, budget int, cache *CircuitCache, st *CircuitStats) (float64, error) {
	simplified := f.Simplify()
	// Constants never reach the cache: false has no structure to share and
	// a tautology evaluates to 1 under any assignment.
	if len(simplified.Clauses) == 0 {
		return 0, nil
	}
	if simplified.IsTrue() {
		return 1, nil
	}
	key := serializeClauses(sortClauses(simplified.Clauses))
	if circuit, ok := cache.Lookup(key); ok {
		st.hit()
		st.eval()
		cache.countEval()
		return circuit.Eval(p), nil
	}
	circuit, err := compileSimplified(ec, simplified, budget)
	if err != nil {
		return 0, err
	}
	cache.Store(key, circuit)
	st.compile()
	st.eval()
	cache.countEval()
	return circuit.Eval(p), nil
}
