package lineage

import (
	"encoding/binary"
	"fmt"
)

// Binary codec for compiled circuits: a versioned varint encoding used to
// snapshot compiled lineage (and as the fuzzing surface for the circuit
// invariants). DecodeCircuit validates everything Eval relies on — node
// kinds, bottom-up child order, in-range root — so a decoded circuit can be
// evaluated without bounds checks beyond the slice accesses themselves.

// circuitMagic versions the encoding.
const circuitMagic = "dnnf1"

// maxCodecNodes bounds decoded circuits so a short malicious header cannot
// demand a huge allocation.
const maxCodecNodes = 1 << 24

// EncodeCircuit renders the circuit in the binary codec format.
func EncodeCircuit(c *Circuit) []byte {
	buf := append([]byte(nil), circuitMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(c.Nodes)))
	buf = binary.AppendUvarint(buf, uint64(c.Root))
	buf = binary.AppendUvarint(buf, uint64(c.Decisions))
	for _, n := range c.Nodes {
		buf = append(buf, byte(n.Kind))
		switch n.Kind {
		case CLeaf:
			buf = binary.AppendUvarint(buf, uint64(n.Var))
		case CDecision:
			buf = binary.AppendUvarint(buf, uint64(n.Var))
			buf = binary.AppendUvarint(buf, uint64(n.Hi))
			buf = binary.AppendUvarint(buf, uint64(n.Lo))
		case CAnd, CIOr:
			buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
			for _, ch := range n.Children {
				buf = binary.AppendUvarint(buf, uint64(ch))
			}
		}
	}
	return buf
}

// circuitDecoder tracks the read position in the encoded byte stream.
type circuitDecoder struct {
	buf []byte
	off int
}

func (d *circuitDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("lineage: circuit codec: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *circuitDecoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("lineage: circuit codec: truncated at offset %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

// child decodes one child reference of the node being built at index i,
// enforcing the bottom-up invariant: every child precedes its parent.
func (d *circuitDecoder) child(i int) (int32, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v >= uint64(i) {
		return 0, fmt.Errorf("lineage: circuit codec: node %d references child %d out of bottom-up order", i, v)
	}
	return int32(v), nil
}

// DecodeCircuit parses and validates a circuit from the binary codec
// format. It rejects unknown node kinds, children that do not precede their
// parents (dangling or forward references), out-of-range roots and
// truncated input, so any circuit it returns satisfies Eval's invariants.
func DecodeCircuit(buf []byte) (*Circuit, error) {
	if len(buf) < len(circuitMagic) || string(buf[:len(circuitMagic)]) != circuitMagic {
		return nil, fmt.Errorf("lineage: circuit codec: bad magic")
	}
	d := &circuitDecoder{buf: buf, off: len(circuitMagic)}
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 || count > maxCodecNodes {
		return nil, fmt.Errorf("lineage: circuit codec: node count %d out of range", count)
	}
	root, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if root >= count {
		return nil, fmt.Errorf("lineage: circuit codec: root %d out of range (%d nodes)", root, count)
	}
	decisions, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if decisions > count {
		return nil, fmt.Errorf("lineage: circuit codec: decision count %d exceeds node count %d", decisions, count)
	}
	c := &Circuit{Nodes: make([]CircuitNode, 0, count), Root: int32(root), Decisions: int(decisions)}
	for i := 0; i < int(count); i++ {
		kindByte, err := d.byte()
		if err != nil {
			return nil, err
		}
		n := CircuitNode{Kind: CircuitNodeKind(kindByte)}
		switch n.Kind {
		case CFalse, CTrue:
		case CLeaf:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if v > uint64(^uint32(0)>>1) {
				return nil, fmt.Errorf("lineage: circuit codec: node %d variable %d overflows", i, v)
			}
			n.Var = Var(v)
		case CDecision:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if v > uint64(^uint32(0)>>1) {
				return nil, fmt.Errorf("lineage: circuit codec: node %d variable %d overflows", i, v)
			}
			n.Var = Var(v)
			if n.Hi, err = d.child(i); err != nil {
				return nil, err
			}
			if n.Lo, err = d.child(i); err != nil {
				return nil, err
			}
		case CAnd, CIOr:
			arity, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			// A node can have at most i predecessors as distinct children,
			// but repeated children are legal; bound the arity by the
			// remaining input instead so a bogus length cannot allocate
			// unboundedly.
			if arity > uint64(len(d.buf)-d.off) {
				return nil, fmt.Errorf("lineage: circuit codec: node %d arity %d exceeds remaining input", i, arity)
			}
			n.Children = make([]int32, arity)
			for j := range n.Children {
				if n.Children[j], err = d.child(i); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("lineage: circuit codec: node %d has unknown kind %d", i, kindByte)
		}
		c.Nodes = append(c.Nodes, n)
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("lineage: circuit codec: %d trailing bytes", len(buf)-d.off)
	}
	return c, nil
}
