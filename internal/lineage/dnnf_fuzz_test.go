package lineage

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzCircuitCodec exercises the circuit decoder on arbitrary bytes:
// malformed input (bad node order, dangling children, truncations, bogus
// arities) must be rejected with an error, never a panic, and anything that
// does decode must satisfy Eval's invariants — we prove it by evaluating the
// circuit and round-tripping it through the codec.
func FuzzCircuitCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		d := randomDNF(rng, 2+rng.Intn(8), 1+rng.Intn(8), 3)
		f.Add(EncodeCircuit(Compile(d)))
	}
	f.Add([]byte(circuitMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, buf []byte) {
		c, err := DecodeCircuit(buf)
		if err != nil {
			return
		}
		// Valid by the decoder's contract: Eval must not panic, and the
		// result must be a probability for any probability assignment.
		p := func(v Var) float64 { return float64(uint32(v)%97) / 96 }
		if got := c.Eval(p); got < 0 || got > 1 {
			t.Fatalf("Eval of decoded circuit = %v, want within [0,1]", got)
		}
		reencoded := EncodeCircuit(c)
		c2, err := DecodeCircuit(reencoded)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(reencoded, EncodeCircuit(c2)) {
			t.Fatal("encoding not stable across round trips")
		}
	})
}
