package lineage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestCircuitBitIdenticalToSolver: on random monotone DNFs, the compiled
// circuit's Eval must reproduce ProbMemoCtx's float exactly (not within a
// tolerance — the compiler replays the solver's arithmetic), including after
// the probability table changes under a fixed circuit.
func TestCircuitBitIdenticalToSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 200; trial++ {
		nVars := 2 + rng.Intn(10)
		f := randomDNF(rng, nVars, 1+rng.Intn(10), 3)
		c, err := CompileCtx(nil, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Re-evaluate the one compiled circuit under several probability
		// tables, as a prob-update refresh would.
		for round := 0; round < 3; round++ {
			probs := make([]float64, nVars)
			for i := range probs {
				switch rng.Intn(5) {
				case 0:
					probs[i] = 1
				case 1:
					probs[i] = 0
				default:
					probs[i] = rng.Float64()
				}
			}
			p := tableProbs(probs...)
			want, err := ProbMemoCtx(nil, f, p, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Eval(p); got != want {
				t.Fatalf("trial %d round %d: circuit Eval = %.17g, solver %.17g (%s)",
					trial, round, got, want, f.String())
			}
		}
	}
}

// TestCircuitReadOncePath: formulas on the read-once fast path compile to
// factorization-shaped circuits (no decision nodes) and still match the
// solver bit for bit.
func TestCircuitReadOncePath(t *testing.T) {
	// (x0 ∧ x1) ∨ (x2 ∧ x3): read-once by or-decomposition.
	f := &DNF{}
	f.Add(NewClause(0, 1))
	f.Add(NewClause(2, 3))
	c := Compile(f)
	if c.Decisions != 0 {
		t.Errorf("read-once circuit has %d decision nodes, want 0", c.Decisions)
	}
	p := tableProbs(0.3, 0.7, 0.2, 0.9)
	want, err := ProbMemoCtx(nil, f, p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval(p); got != want {
		t.Errorf("Eval = %.17g, solver %.17g", got, want)
	}
}

// TestCircuitConstants: the degenerate formulas evaluate to their constants
// through CircuitProbCtx without consulting the cache.
func TestCircuitConstants(t *testing.T) {
	cache := NewCircuitCache(CircuitCacheConfig{})
	p := func(Var) float64 { return 0.5 }
	if got, err := CircuitProbCtx(nil, &DNF{}, p, 0, cache, nil); err != nil || got != 0 {
		t.Errorf("false formula: (%v, %v), want (0, nil)", got, err)
	}
	taut := &DNF{}
	taut.Add(NewClause())
	taut.Add(NewClause(1, 2))
	if got, err := CircuitProbCtx(nil, taut, p, 0, cache, nil); err != nil || got != 1 {
		t.Errorf("tautology: (%v, %v), want (1, nil)", got, err)
	}
	if st := cache.Stats(); st.Compiles != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("constants touched the cache: %+v", st)
	}
}

// TestCircuitBudget: compilation charges the same per-expansion budget as
// the solver and surfaces ErrBudget; a cached circuit re-evaluates without
// charging.
func TestCircuitBudget(t *testing.T) {
	f := chainDNF(2000)
	p := func(Var) float64 { return 0.5 }
	if _, err := CompileCtx(nil, f, 10); !errors.Is(err, ErrBudget) {
		t.Fatalf("CompileCtx(budget=10) err = %v, want ErrBudget", err)
	}
	cache := NewCircuitCache(CircuitCacheConfig{})
	small := chainDNF(40)
	want, err := ProbMemoCtx(nil, small, p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := CircuitProbCtx(nil, small, p, 0, cache, nil); err != nil || got != want {
		t.Fatalf("cold CircuitProbCtx = (%v, %v), want (%v, nil)", got, err, want)
	}
	// Warm: a budget far too small to compile must still succeed via the
	// cache (hits charge nothing, like shared-memo hits).
	if got, err := CircuitProbCtx(nil, small, p, 1, cache, nil); err != nil || got != want {
		t.Fatalf("warm CircuitProbCtx(budget=1) = (%v, %v), want (%v, nil)", got, err, want)
	}
	st := cache.Stats()
	if st.Compiles != 1 || st.Hits != 1 || st.Evals != 2 {
		t.Errorf("cache stats = %+v, want 1 compile, 1 hit, 2 evals", st)
	}
}

// TestCircuitCancellation: a cancelled ExecContext unwinds compilation
// promptly with the context error.
func TestCircuitCancellation(t *testing.T) {
	f := chainDNF(1200)
	start := time.Now()
	_, err := CompileCtx(cancelledEC(), f, 1<<30)
	if err == nil {
		t.Fatal("CompileCtx on cancelled context returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestCircuitCacheLRUAndReset: the cache evicts least-recently-used circuits
// past its entry cap, and Reset drops entries while counters accumulate.
func TestCircuitCacheLRUAndReset(t *testing.T) {
	cache := NewCircuitCache(CircuitCacheConfig{MaxEntries: 2})
	p := func(Var) float64 { return 0.5 }
	formulas := make([]*DNF, 3)
	for i := range formulas {
		f := &DNF{}
		// Distinct non-read-once cores so each compiles its own circuit.
		base := Var(10 * i)
		f.Add(NewClause(base, base+1))
		f.Add(NewClause(base+1, base+2))
		f.Add(NewClause(base+2, base))
		formulas[i] = f
		if _, err := CircuitProbCtx(nil, f, p, 0, cache, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts with cap 2: %+v, want 2 entries, 1 eviction", st)
	}
	// formulas[0] was evicted: re-running it compiles again.
	if _, err := CircuitProbCtx(nil, formulas[0], p, 0, cache, nil); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Compiles != 4 {
		t.Errorf("compiles = %d, want 4 (eviction forced a recompile)", st.Compiles)
	}
	cache.Reset()
	if st := cache.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("after Reset: %+v, want empty", st)
	}
	if st := cache.Stats(); st.Compiles != 4 {
		t.Errorf("Reset cleared the compile counter: %+v", st)
	}
}

// TestCircuitStatsAccumulator: the per-evaluation accumulator distinguishes
// compiles from hits and is nil-safe.
func TestCircuitStatsAccumulator(t *testing.T) {
	cache := NewCircuitCache(CircuitCacheConfig{})
	p := func(Var) float64 { return 0.5 }
	f := chainDNF(20)
	var st CircuitStats
	if _, err := CircuitProbCtx(nil, f, p, 0, cache, &st); err != nil {
		t.Fatal(err)
	}
	if _, err := CircuitProbCtx(nil, f, p, 0, cache, &st); err != nil {
		t.Fatal(err)
	}
	compiles, hits, evals := st.Snapshot()
	if compiles != 1 || hits != 1 || evals != 2 {
		t.Errorf("accumulator = (%d, %d, %d), want (1, 1, 2)", compiles, hits, evals)
	}
	var nilStats *CircuitStats
	if c, h, e := nilStats.Snapshot(); c != 0 || h != 0 || e != 0 {
		t.Errorf("nil Snapshot = (%d, %d, %d), want zeros", c, h, e)
	}
	if _, err := CircuitProbCtx(nil, f, p, 0, nil, nil); err != nil {
		t.Fatalf("nil cache and stats: %v", err)
	}
}

// TestCircuitCodecRoundTrip: Encode/Decode preserves compiled circuits and
// their evaluations exactly.
func TestCircuitCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 50; trial++ {
		nVars := 2 + rng.Intn(9)
		f := randomDNF(rng, nVars, 1+rng.Intn(9), 3)
		c := Compile(f)
		buf := EncodeCircuit(c)
		got, err := DecodeCircuit(buf)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !bytes.Equal(buf, EncodeCircuit(got)) {
			t.Fatalf("trial %d: re-encode differs", trial)
		}
		probs := make([]float64, nVars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		p := tableProbs(probs...)
		if a, b := c.Eval(p), got.Eval(p); a != b {
			t.Fatalf("trial %d: decoded circuit Eval = %.17g, original %.17g", trial, b, a)
		}
	}
}

// TestCircuitCodecRejectsMalformed: the documented invariant violations are
// rejected with errors rather than producing circuits that could crash Eval.
func TestCircuitCodecRejectsMalformed(t *testing.T) {
	f := &DNF{}
	f.Add(NewClause(0, 1))
	f.Add(NewClause(1, 2))
	valid := EncodeCircuit(Compile(f))
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      []byte("nope!"),
		"truncated":      valid[:len(valid)-2],
		"trailing bytes": append(append([]byte(nil), valid...), 0),
	}
	for name, buf := range cases {
		if _, err := DecodeCircuit(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Forward reference: a decision node at index 0 has no possible children.
	forward := append([]byte(circuitMagic), 1, 0, 1, byte(CDecision), 5, 0, 0)
	if _, err := DecodeCircuit(forward); err == nil {
		t.Error("forward-referencing decision decoded without error")
	}
	// Unknown kind.
	unknown := append([]byte(circuitMagic), 1, 0, 0, 99)
	if _, err := DecodeCircuit(unknown); err == nil {
		t.Error("unknown node kind decoded without error")
	}
	// Root out of range.
	badRoot := append([]byte(circuitMagic), 1, 7, 0, byte(CTrue))
	if _, err := DecodeCircuit(badRoot); err == nil {
		t.Error("out-of-range root decoded without error")
	}
}
