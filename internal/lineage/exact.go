package lineage

import (
	"errors"
	"sort"
	"strconv"

	"repro/internal/core"
)

// ErrBudget is returned by ProbBudget when the exact solver exceeds its
// expansion budget — the formula sits past the tractability phase
// transition and the caller should switch to approximate inference
// (Section 6.4 of the paper).
var ErrBudget = errors.New("lineage: exact confidence computation exceeded its budget; use approximate inference")

// Prob computes the exact probability that the monotone DNF f is true when
// each variable v is independently true with probability p(v).
//
// The algorithm is the variable-elimination / Shannon-expansion scheme used
// by MayBMS for exact confidence computation [16]:
//
//  1. absorption-simplify the clause set;
//  2. split into independent components (clauses sharing no variables) and
//     combine them with the inclusion–exclusion-free rule
//     P(F1 ∨ F2) = 1 - (1-P(F1))(1-P(F2));
//  3. otherwise choose the most frequent variable x and expand
//     P(F) = p(x)·P(F|x=1) + (1-p(x))·P(F|x=0);
//  4. memoize on the canonical clause-set form.
//
// Its running time is exponential in the worst case (#P-hardness is
// unavoidable) but polynomial on read-once and low-treewidth lineages.
func Prob(f *DNF, p func(Var) float64) float64 {
	s := &solver{p: p, memo: make(map[string]float64), budget: -1}
	v, err := s.probChecked(f.Simplify().Clauses)
	if err != nil {
		panic("lineage: unbounded solver returned " + err.Error())
	}
	return v
}

// ProbBudget is Prob with a bound on the number of Shannon expansions. It
// returns ErrBudget when the bound is exhausted; budget <= 0 means
// unlimited. ProbBudgetCtx is the cancellable variant.
func ProbBudget(f *DNF, p func(Var) float64, budget int) (float64, error) {
	return ProbBudgetCtx(nil, f, p, budget)
}

// ProbBudgetCtx is ProbBudget under an ExecContext: the Shannon-expansion
// recursion polls cancellation every core.CheckInterval subproblems, so an
// intractable formula aborts promptly when the evaluation is cancelled or
// times out.
func ProbBudgetCtx(ec *core.ExecContext, f *DNF, p func(Var) float64, budget int) (float64, error) {
	return ProbMemoCtx(ec, f, p, budget, nil)
}

// ProbMemoCtx is ProbBudgetCtx with an optional shared memo table: Shannon
// subproblems are keyed on their canonical clause-set fingerprint in memo as
// well as the solver's per-call table, so cofactors recurring across the
// answers of one evaluation are solved once. A nil memo degrades to
// ProbBudgetCtx. Results are bit-identical with and without the shared
// table (see Memo's exactness contract); only the number of Shannon
// expansions charged against budget can shrink on hits.
func ProbMemoCtx(ec *core.ExecContext, f *DNF, p func(Var) float64, budget int, memo *Memo) (float64, error) {
	if budget <= 0 {
		budget = -1
	}
	simplified := f.Simplify()
	// Fast path (SPROUT-style [17]): read-once lineage evaluates in linear
	// time. Recognition allocates a |vars|² co-occurrence matrix, so it is
	// only attempted on moderately sized formulas.
	if vars := simplified.Vars(); len(vars) > 0 && len(vars) <= readOnceLimit && !simplified.IsTrue() {
		if fact, ok := readOnce(simplified.Clauses); ok {
			return fact.Prob(p), nil
		}
	}
	s := &solver{p: p, memo: make(map[string]float64), budget: budget, chk: core.Check{EC: ec}, ec: ec, shared: memo}
	return s.probChecked(simplified.Clauses)
}

// readOnceLimit caps the variable count for the read-once fast path.
const readOnceLimit = 512

// solver carries the probability oracle and the memo table of one Prob call.
type solver struct {
	p      func(Var) float64
	memo   map[string]float64
	budget int        // remaining Shannon expansions; -1 = unlimited
	chk    core.Check // strided cancellation poll over the recursion
	ec     *core.ExecContext
	shared *Memo // optional cross-call memo (nil = per-call memo only)
}

// probChecked wraps prob, converting the budget panic into ErrBudget and the
// cancellation panic into its context error.
func (s *solver) probChecked(clauses []Clause) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == errBudgetSentinel {
				err = ErrBudget
				return
			}
			if c, ok := r.(ctxSentinel); ok {
				err = c.err
				return
			}
			panic(r)
		}
	}()
	return s.prob(clauses), nil
}

// errBudgetSentinel unwinds the deep recursion when the budget runs out.
var errBudgetSentinel = new(int)

// ctxSentinel unwinds the deep recursion when the execution context is
// cancelled or over budget.
type ctxSentinel struct{ err error }

// memoLimit caps the memo table; beyond it, entries are no longer added
// (correctness is unaffected).
const memoLimit = 1 << 20

// sharedMemoMinClauses gates participation in the cross-answer shared memo:
// subproblems below the floor cost more to fingerprint-hash and round-trip
// through the table's mutex, interner and LRU than to re-solve from the
// per-call memo, so only sizable cofactors — the ones whose reuse saves a
// whole recursion subtree — are shared across answers.
const sharedMemoMinClauses = 16

func (s *solver) prob(clauses []Clause) float64 {
	switch len(clauses) {
	case 0:
		return 0
	case 1:
		// Single clause: product of its variable probabilities.
		w := 1.0
		for _, v := range clauses[0] {
			w *= validateProb(s.p(v), v)
		}
		return w
	}
	for _, c := range clauses {
		if len(c) == 0 {
			return 1
		}
	}
	// Canonicalize once at the memo boundary: the key is serialized from,
	// and the subproblem is solved on, the same sorted clause list, so a
	// memoized value is a pure function of its key. That purity is what
	// lets the shared cross-answer table return bit-identical floats to
	// recomputation.
	sorted := sortClauses(clauses)
	key := serializeClauses(sorted)
	if v, ok := s.memo[key]; ok {
		return v
	}
	// Small subproblems are cheaper to recompute than to round-trip through
	// the shared table's mutex, LRU and interner; only sizable cofactors are
	// worth sharing across answers. The gate changes which subproblems
	// consult the table, never a value.
	useShared := s.shared != nil && len(sorted) >= sharedMemoMinClauses
	if useShared {
		if v, ok := s.shared.Lookup(key); ok {
			if len(s.memo) < memoLimit {
				s.memo[key] = v
			}
			return v
		}
	}

	result := s.probComponents(sorted)

	if len(s.memo) < memoLimit {
		s.memo[key] = result
	}
	if useShared {
		s.shared.Store(s.ec, key, result)
	}
	return result
}

// probComponents splits the clause set into variable-disjoint components and
// combines their probabilities; a single component falls through to Shannon
// expansion.
func (s *solver) probComponents(clauses []Clause) float64 {
	comps := components(clauses)
	if len(comps) == 1 {
		return s.shannon(clauses)
	}
	notAny := 1.0
	for _, comp := range comps {
		notAny *= 1 - s.prob(comp)
		if notAny == 0 {
			break
		}
	}
	return 1 - notAny
}

// shannon expands on the most frequent variable.
func (s *solver) shannon(clauses []Clause) float64 {
	if s.budget == 0 {
		panic(errBudgetSentinel)
	}
	if s.budget > 0 {
		s.budget--
	}
	if err := s.chk.Tick(); err != nil {
		panic(ctxSentinel{err: err})
	}
	counts := make(map[Var]int)
	for _, c := range clauses {
		for _, v := range c {
			counts[v]++
		}
	}
	var x Var
	best := -1
	for v, n := range counts {
		if n > best || (n == best && v < x) {
			x, best = v, n
		}
	}
	pos, neg := cofactors(clauses, x)
	px := validateProb(s.p(x), x)
	var probPos float64
	if pos == nil {
		probPos = 1 // some clause reduced to empty: F|x=1 is true
	} else {
		probPos = s.prob(pos)
	}
	return px*probPos + (1-px)*s.prob(neg)
}

// cofactors returns (F|x=1, F|x=0) as clause sets. pos is nil when F|x=1 is
// a tautology (a clause shrank to empty). Both are absorption-simplified
// enough for recursion (the caller's clause set was already simplified, so
// only the shrunken clauses can newly absorb others).
func cofactors(clauses []Clause, x Var) (pos, neg []Clause) {
	for _, c := range clauses {
		i := sort.Search(len(c), func(i int) bool { return c[i] >= x })
		if i < len(c) && c[i] == x {
			if len(c) == 1 {
				pos = nil
				// F|x=1 contains the empty clause: tautology. Mark with a
				// sentinel by returning nil pos; collect neg normally.
				return nil, dropContaining(clauses, x)
			}
			reduced := make(Clause, 0, len(c)-1)
			reduced = append(reduced, c[:i]...)
			reduced = append(reduced, c[i+1:]...)
			pos = append(pos, reduced)
		} else {
			pos = append(pos, c)
			neg = append(neg, c)
		}
	}
	pos = absorb(pos)
	return pos, neg
}

// dropContaining returns the clauses not containing x.
func dropContaining(clauses []Clause, x Var) []Clause {
	var out []Clause
	for _, c := range clauses {
		i := sort.Search(len(c), func(i int) bool { return c[i] >= x })
		if i < len(c) && c[i] == x {
			continue
		}
		out = append(out, c)
	}
	return out
}

// absorb removes clauses that are supersets of other clauses.
func absorb(clauses []Clause) []Clause {
	if len(clauses) <= 1 {
		return clauses
	}
	sorted := append([]Clause(nil), clauses...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
	kept := sorted[:0]
	for _, c := range sorted {
		ok := true
		for _, k := range kept {
			if subset(k, c) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	return kept
}

// components partitions clauses into groups sharing no variables, via
// union-find over variables.
func components(clauses []Clause) [][]Clause {
	parent := make(map[Var]Var)
	var find func(Var) Var
	find = func(v Var) Var {
		r, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if r == v {
			return v
		}
		root := find(r)
		parent[v] = root
		return root
	}
	union := func(a, b Var) { parent[find(a)] = find(b) }
	for _, c := range clauses {
		for i := 1; i < len(c); i++ {
			union(c[0], c[i])
		}
	}
	groups := make(map[Var][]Clause)
	var roots []Var
	for _, c := range clauses {
		r := find(c[0])
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], c)
	}
	out := make([][]Clause, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// canonicalKey serializes a clause set into a canonical string for memoing.
func canonicalKey(clauses []Clause) string {
	return serializeClauses(sortClauses(clauses))
}

// sortClauses returns a copy of the clause set in canonical (clauseLess)
// order.
func sortClauses(clauses []Clause) []Clause {
	sorted := append([]Clause(nil), clauses...)
	sort.Slice(sorted, func(i, j int) bool { return clauseLess(sorted[i], sorted[j]) })
	return sorted
}

// serializeClauses renders an already-sorted clause set as the canonical
// fingerprint string.
func serializeClauses(sorted []Clause) string {
	b := make([]byte, 0, 8*len(sorted))
	for _, c := range sorted {
		for _, v := range c {
			b = strconv.AppendInt(b, int64(v), 10)
			b = append(b, ',')
		}
		b = append(b, ';')
	}
	return string(b)
}

func clauseLess(a, b Clause) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
