package lineage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// uniformProbs returns a probability oracle from a fixed slice.
func tableProbs(ps ...float64) func(Var) float64 {
	return func(v Var) float64 { return ps[v] }
}

func TestNewClauseCanonical(t *testing.T) {
	c := NewClause(3, 1, 3, 2, 1)
	want := Clause{1, 2, 3}
	if len(c) != 3 || c[0] != want[0] || c[1] != want[1] || c[2] != want[2] {
		t.Errorf("NewClause = %v", c)
	}
}

func TestEvalAndIsTrue(t *testing.T) {
	f := &DNF{}
	f.Add(NewClause(0, 1))
	f.Add(NewClause(2))
	on := map[Var]bool{0: true, 1: false, 2: false}
	if f.Eval(func(v Var) bool { return on[v] }) {
		t.Error("unsatisfied formula evaluated true")
	}
	on[2] = true
	if !f.Eval(func(v Var) bool { return on[v] }) {
		t.Error("satisfied formula evaluated false")
	}
	if f.IsTrue() {
		t.Error("IsTrue without empty clause")
	}
	f.Add(NewClause())
	if !f.IsTrue() {
		t.Error("IsTrue missed empty clause")
	}
}

func TestProbSingleClauseAndEmpty(t *testing.T) {
	p := tableProbs(0.5, 0.4)
	empty := &DNF{}
	if got := Prob(empty, p); got != 0 {
		t.Errorf("Prob(false) = %g", got)
	}
	one := &DNF{Clauses: []Clause{NewClause(0, 1)}}
	if got := Prob(one, p); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Prob(x0x1) = %g, want 0.2", got)
	}
	taut := &DNF{Clauses: []Clause{NewClause(0), NewClause()}}
	if got := Prob(taut, p); got != 1 {
		t.Errorf("Prob(true) = %g", got)
	}
}

func TestProbIndependentClauses(t *testing.T) {
	// x0 ∨ x1 with independent vars: 1-(1-p0)(1-p1).
	f := &DNF{Clauses: []Clause{NewClause(0), NewClause(1)}}
	p := tableProbs(0.3, 0.6)
	want := 1 - 0.7*0.4
	if got := Prob(f, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %g, want %g", got, want)
	}
}

func TestProbSharedVariable(t *testing.T) {
	// x0x1 ∨ x0x2 = x0(x1 ∨ x2).
	f := &DNF{Clauses: []Clause{NewClause(0, 1), NewClause(0, 2)}}
	p := tableProbs(0.5, 0.4, 0.8)
	want := 0.5 * (1 - 0.6*0.2)
	if got := Prob(f, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %g, want %g", got, want)
	}
}

// TestExample36Lineage reproduces Example 3.6: the lineage of
// q = R(x,y),S(y,z) over R = S = {1,2}² has 8 clauses r_iy·s_yz.
func TestExample36Lineage(t *testing.T) {
	// Vars 0..3 = r11,r12,r21,r22; 4..7 = s11,s12,s21,s22.
	r := func(i, j int) Var { return Var(2*(i-1) + (j - 1)) }
	s := func(i, j int) Var { return Var(4 + 2*(i-1) + (j - 1)) }
	f := &DNF{}
	for x := 1; x <= 2; x++ {
		for y := 1; y <= 2; y++ {
			for z := 1; z <= 2; z++ {
				f.Add(NewClause(r(x, y), s(y, z)))
			}
		}
	}
	if len(f.Clauses) != 8 {
		t.Fatalf("lineage has %d clauses, want 8", len(f.Clauses))
	}
	probs := make([]float64, 8)
	rng := rand.New(rand.NewSource(3))
	for i := range probs {
		probs[i] = rng.Float64()
	}
	p := tableProbs(probs...)
	want, err := ProbBruteForce(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := Prob(f, p); math.Abs(got-want) > 1e-10 {
		t.Errorf("Prob = %g, brute force %g", got, want)
	}
}

// randomDNF builds a random monotone DNF over nVars variables.
func randomDNF(rng *rand.Rand, nVars, nClauses, maxLen int) *DNF {
	f := &DNF{}
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(maxLen)
		vs := make([]Var, k)
		for j := range vs {
			vs[j] = Var(rng.Intn(nVars))
		}
		f.Add(NewClause(vs...))
	}
	return f
}

func TestProbMatchesBruteForceOnRandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		nVars := 2 + rng.Intn(8)
		f := randomDNF(rng, nVars, 1+rng.Intn(8), 3)
		probs := make([]float64, nVars)
		for i := range probs {
			switch rng.Intn(4) {
			case 0:
				probs[i] = 1
			case 1:
				probs[i] = 0
			default:
				probs[i] = rng.Float64()
			}
		}
		p := tableProbs(probs...)
		want, err := ProbBruteForce(f, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := Prob(f, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: Prob = %.12f, brute force %.12f (%s)", trial, got, want, f.String())
		}
	}
}

func TestProbMonotoneInProbabilities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDNF(rng, 5, 4, 3)
		probs := make([]float64, 5)
		for i := range probs {
			probs[i] = rng.Float64() * 0.9
		}
		p1 := Prob(d, tableProbs(probs...))
		bumped := append([]float64(nil), probs...)
		bumped[rng.Intn(5)] += 0.05
		p2 := Prob(d, tableProbs(bumped...))
		return p2 >= p1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyAbsorption(t *testing.T) {
	f := &DNF{Clauses: []Clause{NewClause(0), NewClause(0, 1), NewClause(2, 3), NewClause(2, 3)}}
	s := f.Simplify()
	if len(s.Clauses) != 2 {
		t.Errorf("Simplify left %d clauses: %s", len(s.Clauses), s.String())
	}
	// Absorption preserves probability.
	p := tableProbs(0.3, 0.5, 0.7, 0.2)
	if math.Abs(Prob(f, p)-Prob(s, p)) > 1e-12 {
		t.Error("Simplify changed the probability")
	}
}

func TestKarpLubyCloseToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		nVars := 4 + rng.Intn(6)
		f := randomDNF(rng, nVars, 2+rng.Intn(6), 3)
		probs := make([]float64, nVars)
		for i := range probs {
			probs[i] = rng.Float64() * 0.4
		}
		p := tableProbs(probs...)
		want := Prob(f, p)
		got := KarpLuby(f, p, 60000, rng)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("trial %d: KarpLuby = %g, exact %g", trial, got, want)
		}
	}
}

func TestKarpLubySmallProbabilityRelativeError(t *testing.T) {
	// A conjunction of rare events: naive MC would need ~10^6 samples for a
	// single hit; Karp–Luby stays accurate in relative terms.
	f := &DNF{Clauses: []Clause{NewClause(0, 1), NewClause(2, 3)}}
	p := tableProbs(0.01, 0.01, 0.01, 0.01)
	want := Prob(f, p) // ≈ 2e-4
	rng := rand.New(rand.NewSource(31))
	got := KarpLuby(f, p, 40000, rng)
	if want <= 0 || math.Abs(got-want)/want > 0.10 {
		t.Errorf("KarpLuby = %g, exact %g (relative error too large)", got, want)
	}
}

func TestKarpLubyEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := KarpLuby(&DNF{}, tableProbs(), 100, rng); got != 0 {
		t.Errorf("empty formula = %g", got)
	}
	taut := &DNF{Clauses: []Clause{NewClause()}}
	if got := KarpLuby(taut, tableProbs(), 100, rng); got != 1 {
		t.Errorf("tautology = %g", got)
	}
	zero := &DNF{Clauses: []Clause{NewClause(0)}}
	if got := KarpLuby(zero, tableProbs(0), 100, rng); got != 0 {
		t.Errorf("zero-weight formula = %g", got)
	}
}

func TestKarpLubyGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := randomDNF(rng, 8, 6, 3)
	probs := make([]float64, 8)
	for i := range probs {
		probs[i] = rng.Float64() * 0.5
	}
	p := tableProbs(probs...)
	want := Prob(f, p)
	if want == 0 {
		t.Skip("degenerate formula")
	}
	const eps, delta = 0.1, 0.05
	failures := 0
	const runs = 20
	for i := 0; i < runs; i++ {
		got, n := KarpLubyGuarantee(f, p, eps, delta, rng)
		if n <= 0 {
			t.Fatalf("sample count %d", n)
		}
		if math.Abs(got-want)/want > eps {
			failures++
		}
	}
	// With δ=0.05 per run, ≥5 failures in 20 runs is astronomically
	// unlikely.
	if failures >= 5 {
		t.Errorf("%d/%d runs outside the ε bound", failures, runs)
	}
	// Edge cases.
	if got, n := KarpLubyGuarantee(&DNF{}, p, eps, delta, rng); got != 0 || n != 0 {
		t.Errorf("empty formula: %g, %d", got, n)
	}
	taut := &DNF{Clauses: []Clause{NewClause()}}
	if got, _ := KarpLubyGuarantee(taut, p, eps, delta, rng); got != 1 {
		t.Errorf("tautology: %g", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for bad eps")
			}
		}()
		KarpLubyGuarantee(f, p, 0, delta, rng)
	}()
}

func TestMonteCarloConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := randomDNF(rng, 6, 5, 3)
	probs := []float64{0.2, 0.5, 0.8, 0.3, 0.6, 0.4}
	p := tableProbs(probs...)
	want := Prob(f, p)
	got := MonteCarlo(f, p, 120000, rng)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("MC = %g, exact %g", got, want)
	}
}

func TestPrimalGraphAndTreewidth(t *testing.T) {
	// x0x1 ∨ x1x2 ∨ x2x3: a path, treewidth 1.
	f := &DNF{Clauses: []Clause{NewClause(0, 1), NewClause(1, 2), NewClause(2, 3)}}
	g, vars := f.PrimalGraph()
	if g.N() != 4 || len(vars) != 4 {
		t.Fatalf("primal graph has %d vertices", g.N())
	}
	if g.EdgeCount() != 3 {
		t.Errorf("primal graph has %d edges, want 3", g.EdgeCount())
	}
	if tw := f.TreewidthUpperBound(); tw != 1 {
		t.Errorf("treewidth bound = %d, want 1", tw)
	}
}

// TestTheorem42 demonstrates Theorem 4.2 empirically: the lineage of the
// strictly hierarchical query R(x,y),S(x,y,z) keeps bounded treewidth as the
// instance grows, while the (safe but not strictly hierarchical) query
// R(x,y),S(x,z) and the unsafe query R(x),S(x,y),T(y) have lineage treewidth
// growing with the instance (a K_{n,n} minor).
func TestTheorem42(t *testing.T) {
	strictTW := func(n int) int {
		// R(x,y),S(x,y,z): clauses r_{xy}·s_{xyz} — primal graph is a star
		// forest, treewidth 1 regardless of n.
		f := &DNF{}
		nextVar := Var(0)
		rv := make(map[[2]int]Var)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				rv[[2]int{x, y}] = nextVar
				nextVar++
			}
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < 2; z++ {
					f.Add(NewClause(rv[[2]int{x, y}], nextVar))
					nextVar++
				}
			}
		}
		return f.TreewidthUpperBound()
	}
	nonStrictTW := func(n int) int {
		// R(x,y),S(x,z) with a single x value: clauses r_y·s_z for all y,z —
		// the primal graph contains K_{n,n}, treewidth ≥ n.
		f := &DNF{}
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				f.Add(NewClause(Var(y), Var(n+z)))
			}
		}
		return f.TreewidthUpperBound()
	}
	for _, n := range []int{2, 3, 4, 5} {
		if tw := strictTW(n); tw > 1 {
			t.Errorf("strictly hierarchical lineage at n=%d has treewidth bound %d, want ≤1", n, tw)
		}
	}
	if tw2, tw5 := nonStrictTW(2), nonStrictTW(5); tw5 <= tw2 {
		t.Errorf("non-strict lineage treewidth did not grow: n=2 → %d, n=5 → %d", tw2, tw5)
	}
	if tw := nonStrictTW(5); tw < 5 {
		t.Errorf("K_{5,5} lineage treewidth bound = %d, want ≥ 5", tw)
	}
}

func TestProbReadOnceChainIsFast(t *testing.T) {
	// A long read-once chain: x_{2i}·x_{2i+1} disjuncts over disjoint pairs.
	// Exact probability has a closed form; the solver must handle 2000
	// clauses instantly through component decomposition.
	n := 2000
	f := &DNF{}
	probs := make([]float64, 2*n)
	expectFalse := 1.0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		probs[2*i] = rng.Float64()
		probs[2*i+1] = rng.Float64()
		f.Add(NewClause(Var(2*i), Var(2*i+1)))
		expectFalse *= 1 - probs[2*i]*probs[2*i+1]
	}
	got := Prob(f, tableProbs(probs...))
	if math.Abs(got-(1-expectFalse)) > 1e-9 {
		t.Errorf("chain Prob = %g, want %g", got, 1-expectFalse)
	}
}

func TestValidateProbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for probability out of range")
		}
	}()
	f := &DNF{Clauses: []Clause{NewClause(0)}}
	Prob(f, tableProbs(1.5))
}
