package lineage

import (
	"sync"

	"repro/internal/core"
)

// Memo is a bounded, thread-safe memo table shared across the exact
// confidence computations of one evaluation: every answer's Shannon
// expansion keys its subproblems on the canonical clause-set fingerprint,
// so cofactors shared between answers (or between conditioning branches of
// one answer) are solved once and reused everywhere.
//
// Exactness contract: the solver derives the key from, and computes on, the
// same canonically sorted clause list, so a stored value is a pure function
// of its key (given the evaluation's fixed probability table). A hit
// therefore returns bit-identical floats to what recomputation would have
// produced — sharing the table across answers never perturbs results.
//
// Capacity is bounded three ways: an entry cap and a byte cap enforced by
// LRU eviction, and the evaluation's node budget — each insert charges one
// node via ExecContext.TryChargeNodes, and once the budget is exhausted the
// table stops growing (lookups keep working; the query never fails because
// of the memo).
//
// All methods are safe on a nil receiver, acting as an always-miss table,
// so callers thread an optional *Memo without nil checks.
type Memo struct {
	mu    sync.Mutex
	table map[string]*memoEntry
	// Doubly-linked LRU list: head is the most recently used entry.
	head, tail *memoEntry
	bytes      int64
	maxEntries int
	maxBytes   int64

	// intern is the per-evaluation node table of canonical fingerprints:
	// the first occurrence of a fingerprint stores its string once, and
	// every later occurrence — across answers, across eviction/re-insert
	// cycles — reuses that single backing instance, so identical
	// subformulas share one canonical representation. Disabled by
	// MemoConfig.NoIntern (keys then stay per-call strings; lookup results
	// are provably identical either way, only the representation shares).
	intern    map[string]string
	internCap int
	noIntern  bool

	hits, misses, evictions, internHits int64
}

type memoEntry struct {
	key        string
	val        float64
	prev, next *memoEntry
}

// memoEntryOverhead approximates the per-entry bookkeeping bytes (entry
// struct, map slot) added to the key length for the byte cap.
const memoEntryOverhead = 64

// MemoConfig bounds a Memo. Zero fields take defaults.
type MemoConfig struct {
	// MaxEntries caps the number of memoized subproblems (default 1<<16).
	MaxEntries int
	// MaxBytes caps the approximate memory footprint (default 16 MiB).
	MaxBytes int64
	// NoIntern disables fingerprint interning (the per-evaluation node
	// table); entries then key on per-call strings.
	NoIntern bool
}

// NewMemo builds an empty memo table with the given bounds.
func NewMemo(cfg MemoConfig) *Memo {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1 << 16
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 16 << 20
	}
	return &Memo{
		table:      make(map[string]*memoEntry),
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		intern:     make(map[string]string),
		internCap:  4 * cfg.MaxEntries,
		noIntern:   cfg.NoIntern,
	}
}

// Lookup returns the memoized value for key and whether it was present,
// promoting a hit to most-recently-used. On a nil receiver it reports a
// miss without counting.
func (m *Memo) Lookup(key string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.table[key]
	if !ok {
		m.misses++
		return 0, false
	}
	m.hits++
	m.moveToFront(e)
	return e.val, true
}

// Store memoizes key -> v, charging one node against ec's node budget. When
// the charge no longer fits, or the key is already present, the table is
// left unchanged; when the entry or byte cap is exceeded the least recently
// used entries are evicted.
func (m *Memo) Store(ec *core.ExecContext, key string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.table[key]; ok {
		return
	}
	if !ec.TryChargeNodes(1) {
		return
	}
	key = m.internKey(key)
	e := &memoEntry{key: key, val: v}
	m.table[key] = e
	m.pushFront(e)
	m.bytes += int64(len(key)) + memoEntryOverhead
	for len(m.table) > m.maxEntries || m.bytes > m.maxBytes {
		m.evictOldest()
	}
}

// internKey canonicalizes key through the per-evaluation fingerprint table.
func (m *Memo) internKey(key string) string {
	if m.noIntern {
		return key
	}
	if s, ok := m.intern[key]; ok {
		m.internHits++
		return s
	}
	if len(m.intern) < m.internCap {
		m.intern[key] = key
	}
	return key
}

// Reset drops every memoized value while keeping the interned fingerprint
// table. Memoized values are pure functions of (key, probability table); when
// the probability table changes — a prob-update patch replayed through an
// incremental refresh — the values are stale but the canonical keys are not,
// so the refresh re-solves through the same interned fingerprints instead of
// re-allocating them. Counters keep accumulating across resets.
func (m *Memo) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.table = make(map[string]*memoEntry)
	m.head, m.tail = nil, nil
	m.bytes = 0
}

// MemoStats is a point-in-time snapshot of a Memo's counters.
type MemoStats struct {
	Hits, Misses, Evictions, InternHits int64
	Entries                             int
	Bytes                               int64
}

// Stats snapshots the counters (zero on a nil receiver).
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Hits:       m.hits,
		Misses:     m.misses,
		Evictions:  m.evictions,
		InternHits: m.internHits,
		Entries:    len(m.table),
		Bytes:      m.bytes,
	}
}

// pushFront links e as the most recently used entry. Callers hold mu.
func (m *Memo) pushFront(e *memoEntry) {
	e.prev, e.next = nil, m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

// moveToFront promotes an existing entry. Callers hold mu.
func (m *Memo) moveToFront(e *memoEntry) {
	if m.head == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}

// unlink removes e from the list without touching the table. Callers hold mu.
func (m *Memo) unlink(e *memoEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictOldest drops the least recently used entry. Callers hold mu.
func (m *Memo) evictOldest() {
	e := m.tail
	if e == nil {
		return
	}
	m.unlink(e)
	delete(m.table, e.key)
	m.bytes -= int64(len(e.key)) + memoEntryOverhead
	m.evictions++
}
