package lineage

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/treewidth"
)

// OBDD compilation of monotone DNF lineage — the intensional technique of
// the paper's references [12] (DPLL-based OBDD construction) and [17]
// (OBDD-based query evaluation in SPROUT). Once the lineage is compiled
// into a reduced ordered binary decision diagram, the probability is a
// single linear pass; the catch, as Section 4.3.1 notes, is that "the most
// effective methods rely on finding a good variable order; however, finding
// the best order is itself an intractable problem". BuildOBDD therefore
// takes the order as an input, enforces a node budget, and the test suite
// demonstrates the exponential gap between good and bad orders.

// ErrOBDDBudget is returned when construction exceeds the node budget —
// usually a sign of a poor variable order or inherently hard lineage.
var ErrOBDDBudget = errors.New("lineage: OBDD node budget exceeded")

// obddNode is one decision node: branch on Var, follow Lo on false and Hi
// on true. Node ids 0 and 1 are the terminals.
type obddNode struct {
	v      Var
	lo, hi int32
}

// OBDD is a reduced ordered binary decision diagram over a variable order.
type OBDD struct {
	order []Var
	nodes []obddNode // nodes[0], nodes[1] are the 0/1 terminals
	root  int32
}

// Size returns the number of decision nodes (terminals excluded).
func (o *OBDD) Size() int { return len(o.nodes) - 2 }

// Order returns the variable order used.
func (o *OBDD) Order() []Var { return append([]Var(nil), o.order...) }

// Eval follows the diagram under an assignment.
func (o *OBDD) Eval(assign func(Var) bool) bool {
	at := o.root
	for at > 1 {
		n := o.nodes[at]
		if assign(n.v) {
			at = n.hi
		} else {
			at = n.lo
		}
	}
	return at == 1
}

// Prob computes the probability of reaching the 1-terminal in one pass.
func (o *OBDD) Prob(p func(Var) float64) float64 {
	memo := make([]float64, len(o.nodes))
	memo[1] = 1
	for i := 2; i < len(o.nodes); i++ {
		// Nodes are created bottom-up, so children precede parents.
		n := o.nodes[i]
		pv := validateProb(p(n.v), n.v)
		memo[i] = (1-pv)*memo[n.lo] + pv*memo[n.hi]
	}
	return memo[o.root]
}

// DefaultOrder returns a frequency-descending variable order (ties by
// variable id) — a reasonable default; callers with structural knowledge
// (e.g. hierarchical queries) should supply better orders.
func DefaultOrder(f *DNF) []Var {
	counts := make(map[Var]int)
	for _, c := range f.Clauses {
		for _, v := range c {
			counts[v]++
		}
	}
	order := f.Vars()
	// Stable selection sort by count descending (small formulas).
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if counts[order[j]] > counts[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	return order
}

// TreewidthOrder derives a variable order from a greedy elimination
// ordering of the formula's primal graph, reversed — the construction
// behind the bounded-treewidth guarantees of the paper's references [10]
// and [12]: for a formula of primal treewidth w, the resulting OBDD has
// width 2^O(w), so low-treewidth lineage compiles to small OBDDs no matter
// how many clauses it has.
func TreewidthOrder(f *DNF) []Var {
	g, vars := f.PrimalGraph()
	order, _ := treewidth.Order(g, treewidth.MinFill)
	out := make([]Var, len(order))
	for i, gi := range order {
		out[len(order)-1-i] = vars[gi]
	}
	return out
}

// BuildOBDD compiles the monotone DNF into a reduced OBDD under the given
// variable order (which must cover the formula's variables). maxNodes
// bounds construction (0 = 1<<20 nodes); past it ErrOBDDBudget is returned.
func BuildOBDD(f *DNF, order []Var, maxNodes int) (*OBDD, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	pos := make(map[Var]int, len(order))
	for i, v := range order {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("lineage: variable x%d repeated in order", v)
		}
		pos[v] = i
	}
	for _, v := range f.Vars() {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("lineage: order does not cover variable x%d", v)
		}
	}
	b := &obddBuilder{
		order:    order,
		maxNodes: maxNodes,
		unique:   make(map[[3]int32]int32),
		memo:     make(map[string]int32),
	}
	b.o = &OBDD{order: append([]Var(nil), order...), nodes: make([]obddNode, 2)}
	root, err := b.build(f.Simplify().Clauses, 0)
	if err != nil {
		return nil, err
	}
	b.o.root = root
	return b.o, nil
}

type obddBuilder struct {
	o        *OBDD
	order    []Var
	maxNodes int
	unique   map[[3]int32]int32
	memo     map[string]int32
}

// build compiles the residual clause set starting at order position depth.
func (b *obddBuilder) build(clauses []Clause, depth int) (int32, error) {
	if len(clauses) == 0 {
		return 0, nil
	}
	for _, c := range clauses {
		if len(c) == 0 {
			return 1, nil
		}
	}
	// Skip order positions whose variable does not occur.
	present := make(map[Var]bool)
	for _, c := range clauses {
		for _, v := range c {
			present[v] = true
		}
	}
	for depth < len(b.order) && !present[b.order[depth]] {
		depth++
	}
	if depth >= len(b.order) {
		return 0, fmt.Errorf("lineage: residual %v has variables beyond the order", clauses)
	}
	key := strconv.Itoa(depth) + "|" + canonicalKey(clauses)
	if id, ok := b.memo[key]; ok {
		return id, nil
	}
	v := b.order[depth]
	pos, neg := cofactors(clauses, v)
	var hi int32
	var err error
	if pos == nil {
		hi = 1 // F|v=1 is a tautology
	} else {
		hi, err = b.build(pos, depth+1)
		if err != nil {
			return 0, err
		}
	}
	lo, err := b.build(neg, depth+1)
	if err != nil {
		return 0, err
	}
	id, err := b.node(v, lo, hi)
	if err != nil {
		return 0, err
	}
	b.memo[key] = id
	return id, nil
}

// node interns a decision node, applying the OBDD reduction rules.
func (b *obddBuilder) node(v Var, lo, hi int32) (int32, error) {
	if lo == hi {
		return lo, nil
	}
	k := [3]int32{int32(v), lo, hi}
	if id, ok := b.unique[k]; ok {
		return id, nil
	}
	if b.o.Size() >= b.maxNodes {
		return 0, fmt.Errorf("%w (%d nodes)", ErrOBDDBudget, b.o.Size())
	}
	id := int32(len(b.o.nodes))
	b.o.nodes = append(b.o.nodes, obddNode{v: v, lo: lo, hi: hi})
	b.unique[k] = id
	return id, nil
}
