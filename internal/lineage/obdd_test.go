package lineage

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestOBDDMatchesProbOnRandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		nVars := 2 + rng.Intn(7)
		f := randomDNF(rng, nVars, 1+rng.Intn(7), 3)
		o, err := BuildOBDD(f, DefaultOrder(f), 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		probs := make([]float64, nVars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		p := tableProbs(probs...)
		want := Prob(f, p)
		if got := o.Prob(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: OBDD prob %.12f, want %.12f", trial, got, want)
		}
		// Eval agrees with the formula on random assignments.
		for s := 0; s < 20; s++ {
			assign := make(map[Var]bool)
			for v := Var(0); v < Var(nVars); v++ {
				assign[v] = rng.Intn(2) == 0
			}
			a := func(v Var) bool { return assign[v] }
			if o.Eval(a) != f.Eval(a) {
				t.Fatalf("trial %d: Eval diverges on %v", trial, assign)
			}
		}
	}
}

func TestOBDDTerminalCases(t *testing.T) {
	p := tableProbs(0.5)
	empty, err := BuildOBDD(&DNF{}, nil, 0)
	if err != nil || empty.Prob(p) != 0 || empty.Size() != 0 {
		t.Errorf("false OBDD: %v, %v", empty, err)
	}
	taut, err := BuildOBDD(&DNF{Clauses: []Clause{NewClause()}}, nil, 0)
	if err != nil || taut.Prob(p) != 1 || taut.Size() != 0 {
		t.Errorf("true OBDD: %v, %v", taut, err)
	}
	single, err := BuildOBDD(&DNF{Clauses: []Clause{NewClause(0)}}, []Var{0}, 0)
	if err != nil || single.Size() != 1 || math.Abs(single.Prob(p)-0.5) > 1e-12 {
		t.Errorf("single-var OBDD: %v, %v", single, err)
	}
}

// TestOBDDOrderSensitivity demonstrates the Section 4.3.1 point: for
// F = ∨_i (x_i ∧ y_i), the interleaved order x1,y1,x2,y2,... gives a
// linear-size OBDD while the separated order x1..xn,y1..yn is exponential.
func TestOBDDOrderSensitivity(t *testing.T) {
	const n = 12
	f := &DNF{}
	var interleaved, separated []Var
	for i := 0; i < n; i++ {
		x, y := Var(2*i), Var(2*i+1)
		f.Add(NewClause(x, y))
		interleaved = append(interleaved, x, y)
	}
	for i := 0; i < n; i++ {
		separated = append(separated, Var(2*i))
	}
	for i := 0; i < n; i++ {
		separated = append(separated, Var(2*i+1))
	}
	good, err := BuildOBDD(f, interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	if good.Size() > 3*n {
		t.Errorf("interleaved order gives %d nodes, want O(n)=%d", good.Size(), 3*n)
	}
	// The separated order must blow past a small budget.
	if _, err := BuildOBDD(f, separated, 8*n); !errors.Is(err, ErrOBDDBudget) {
		t.Errorf("separated order within budget: %v", err)
	}
	// With enough budget both orders agree on the probability.
	bad, err := BuildOBDD(f, separated, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, 2*n)
	rng := rand.New(rand.NewSource(3))
	for i := range probs {
		probs[i] = rng.Float64()
	}
	p := tableProbs(probs...)
	if math.Abs(good.Prob(p)-bad.Prob(p)) > 1e-9 {
		t.Errorf("orders disagree: %g vs %g", good.Prob(p), bad.Prob(p))
	}
	if bad.Size() <= good.Size() {
		t.Errorf("separated order (%d nodes) not larger than interleaved (%d)", bad.Size(), good.Size())
	}
}

func TestOBDDOrderValidation(t *testing.T) {
	f := &DNF{Clauses: []Clause{NewClause(0, 1)}}
	if _, err := BuildOBDD(f, []Var{0}, 0); err == nil {
		t.Error("incomplete order accepted")
	}
	if _, err := BuildOBDD(f, []Var{0, 0, 1}, 0); err == nil {
		t.Error("duplicate order accepted")
	}
}

func TestDefaultOrderFrequencyDescending(t *testing.T) {
	f := &DNF{Clauses: []Clause{NewClause(0, 2), NewClause(1, 2), NewClause(2, 3)}}
	order := DefaultOrder(f)
	if order[0] != 2 {
		t.Errorf("most frequent variable not first: %v", order)
	}
	if len(order) != 4 {
		t.Errorf("order = %v", order)
	}
}

func TestOBDDReductionSharesNodes(t *testing.T) {
	// (a∧c) ∨ (b∧c): after branching on a and b the residual {c} must be
	// shared — the reduced OBDD has 3 decision nodes, not 4.
	f := &DNF{Clauses: []Clause{NewClause(0, 2), NewClause(1, 2)}}
	o, err := BuildOBDD(f, []Var{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 3 {
		t.Errorf("reduced OBDD has %d nodes, want 3", o.Size())
	}
}

// TestTreewidthOrderKeepsLowTreewidthOBDDsSmall builds a long chain lineage
// (primal treewidth 1) with many clauses: the treewidth-derived order keeps
// the OBDD linear while a pessimal order blows a small budget.
func TestTreewidthOrderKeepsLowTreewidthOBDDsSmall(t *testing.T) {
	const n = 40
	f := &DNF{}
	for i := 0; i < n; i++ {
		f.Add(NewClause(Var(i), Var(i+1)))
	}
	order := TreewidthOrder(f)
	if len(order) != n+1 {
		t.Fatalf("order covers %d vars", len(order))
	}
	o, err := BuildOBDD(f, order, 16*n)
	if err != nil {
		t.Fatalf("treewidth order blew the budget: %v", err)
	}
	if o.Size() > 8*n {
		t.Errorf("chain OBDD has %d nodes under the treewidth order", o.Size())
	}
	rng := rand.New(rand.NewSource(9))
	probs := make([]float64, n+1)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	p := tableProbs(probs...)
	if want := Prob(f, p); math.Abs(o.Prob(p)-want) > 1e-9 {
		t.Errorf("OBDD prob %g, want %g", o.Prob(p), want)
	}
}
