package lineage

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements read-once (one-occurrence) factorization of monotone
// DNF formulas — the tractable form the paper discusses in Section 4.3.1:
// SPROUT [17] factorizes the lineage of safe queries into one-occurrence
// form, "for which probability computation can be performed in linear
// time". A formula is read-once when it is equivalent to a formula in which
// every variable appears exactly once; for monotone functions given by
// their prime implicants this holds exactly when the variable co-occurrence
// graph is a cograph and the clause set is normal (Gurvich; Golumbic,
// Mintz & Rotics). The recognizer below decomposes recursively:
//
//   - Or-decomposition when the co-occurrence graph is disconnected
//     (clauses split into variable-disjoint groups);
//   - And-decomposition when the complement graph is disconnected (the
//     variable set splits into co-components, and the clause set must be
//     exactly the cross product of its projections — the normality check);
//   - a single variable is a leaf; anything else is not read-once.
//
// The resulting factorization tree mentions each variable once, so the
// probability is a single bottom-up pass.

// FactorKind labels a factorization node.
type FactorKind uint8

// Factorization node kinds.
const (
	FVar FactorKind = iota
	FAnd
	FOr
)

// Factorization is a read-once form: a tree of ∧/∨ nodes whose leaves are
// distinct variables.
type Factorization struct {
	Kind     FactorKind
	Var      Var // for FVar
	Children []*Factorization
}

// Prob evaluates the factorization in one pass.
func (f *Factorization) Prob(p func(Var) float64) float64 {
	switch f.Kind {
	case FVar:
		return validateProb(p(f.Var), f.Var)
	case FAnd:
		out := 1.0
		for _, c := range f.Children {
			out *= c.Prob(p)
		}
		return out
	default:
		notAny := 1.0
		for _, c := range f.Children {
			notAny *= 1 - c.Prob(p)
		}
		return 1 - notAny
	}
}

// String renders the factorization, e.g. (x0 ∧ (x1 ∨ x2)).
func (f *Factorization) String() string {
	switch f.Kind {
	case FVar:
		return fmt.Sprintf("x%d", f.Var)
	case FAnd:
		parts := make([]string, len(f.Children))
		for i, c := range f.Children {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, " ∧ ") + ")"
	default:
		parts := make([]string, len(f.Children))
		for i, c := range f.Children {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, " ∨ ") + ")"
	}
}

// Vars returns the variables of the factorization (each exactly once).
func (f *Factorization) Vars() []Var {
	var out []Var
	var walk func(*Factorization)
	walk = func(n *Factorization) {
		if n.Kind == FVar {
			out = append(out, n.Var)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(f)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadOnce attempts to factorize f into read-once form. It returns the
// factorization and true on success. The formula is absorption-simplified
// first (monotone prime implicants); tautologies and the empty formula are
// not read-once (they have no variable occurrence to factor) and return
// false.
func ReadOnce(f *DNF) (*Factorization, bool) {
	s := f.Simplify()
	if len(s.Clauses) == 0 || s.IsTrue() {
		return nil, false
	}
	return readOnce(s.Clauses)
}

func readOnce(clauses []Clause) (*Factorization, bool) {
	for _, c := range clauses {
		if len(c) == 0 {
			return nil, false
		}
	}
	vars := (&DNF{Clauses: clauses}).Vars()
	if len(vars) == 1 {
		if len(clauses) != 1 || len(clauses[0]) != 1 {
			return nil, false
		}
		return &Factorization{Kind: FVar, Var: vars[0]}, true
	}
	// Or-decomposition: variable-disjoint clause groups.
	comps := components(clauses)
	if len(comps) > 1 {
		node := &Factorization{Kind: FOr}
		for _, comp := range comps {
			child, ok := readOnce(comp)
			if !ok {
				return nil, false
			}
			node.Children = append(node.Children, child)
		}
		return node, true
	}
	// And-decomposition: co-components of the co-occurrence graph's
	// complement. Two variables are in the same co-component when they are
	// NOT adjacent in the complement, i.e. when they DO co-occur... the
	// complement's connected components are computed below by BFS over
	// non-co-occurring pairs.
	groups := coComponents(clauses, vars)
	if len(groups) <= 1 {
		return nil, false
	}
	// Project clauses onto each group and verify normality: the clause set
	// must be exactly the cross product of the projections.
	node := &Factorization{Kind: FAnd}
	product := 1
	for _, group := range groups {
		proj := projectClauses(clauses, group)
		product *= len(proj)
		child, ok := readOnce(proj)
		if !ok {
			return nil, false
		}
		node.Children = append(node.Children, child)
	}
	if product != len(clauses) {
		return nil, false // not normal: some cross combination is missing
	}
	return node, true
}

// coComponents partitions vars into the connected components of the
// complement of the co-occurrence graph. For an And-decomposable formula
// F1 ∧ F2, every variable of F1 co-occurs with every variable of F2, so the
// complement has no edges across the split.
func coComponents(clauses []Clause, vars []Var) [][]Var {
	idx := make(map[Var]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	n := len(vars)
	co := make([][]bool, n)
	for i := range co {
		co[i] = make([]bool, n)
	}
	for _, c := range clauses {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				a, b := idx[c[i]], idx[c[j]]
				co[a][b], co[b][a] = true, true
			}
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		comp[start] = next
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for w := 0; w < n; w++ {
				if comp[w] < 0 && !co[u][w] { // complement edge
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	out := make([][]Var, next)
	for i, v := range vars {
		out[comp[i]] = append(out[comp[i]], v)
	}
	return out
}

// projectClauses restricts every clause to the given variable group and
// deduplicates.
func projectClauses(clauses []Clause, group []Var) []Clause {
	in := make(map[Var]bool, len(group))
	for _, v := range group {
		in[v] = true
	}
	seen := make(map[string]bool)
	var out []Clause
	for _, c := range clauses {
		proj := make(Clause, 0, len(c))
		for _, v := range c {
			if in[v] {
				proj = append(proj, v)
			}
		}
		k := clauseKey(proj)
		if !seen[k] {
			seen[k] = true
			out = append(out, proj)
		}
	}
	return out
}

func clauseKey(c Clause) string {
	var b strings.Builder
	for _, v := range c {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}
