package lineage

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestReadOnceBasicForms(t *testing.T) {
	cases := []struct {
		name     string
		f        *DNF
		readOnce bool
	}{
		{"single var", &DNF{Clauses: []Clause{NewClause(0)}}, true},
		{"and", &DNF{Clauses: []Clause{NewClause(0, 1, 2)}}, true},
		{"or", &DNF{Clauses: []Clause{NewClause(0), NewClause(1)}}, true},
		{"a(b or c)", &DNF{Clauses: []Clause{NewClause(0, 1), NewClause(0, 2)}}, true},
		// (a∨b)(c∨d): connected co-occurrence graph, And-decomposable.
		{"(a+b)(c+d)", &DNF{Clauses: []Clause{
			NewClause(0, 2), NewClause(0, 3), NewClause(1, 2), NewClause(1, 3),
		}}, true},
		// P4 path ab ∨ bc ∨ cd: the canonical non-read-once monotone DNF.
		{"P4", &DNF{Clauses: []Clause{NewClause(0, 1), NewClause(1, 2), NewClause(2, 3)}}, false},
		// Non-normal: (a∨b)(c∨d) with one combination missing.
		{"missing combo", &DNF{Clauses: []Clause{
			NewClause(0, 2), NewClause(0, 3), NewClause(1, 2),
		}}, false},
		{"empty", &DNF{}, false},
		{"tautology", &DNF{Clauses: []Clause{NewClause()}}, false},
	}
	for _, c := range cases {
		fact, ok := ReadOnce(c.f)
		if ok != c.readOnce {
			t.Errorf("%s: ReadOnce = %v, want %v", c.name, ok, c.readOnce)
			continue
		}
		if !ok {
			continue
		}
		// Each variable occurs exactly once in the factorization.
		vars := fact.Vars()
		want := c.f.Vars()
		if len(vars) != len(want) {
			t.Errorf("%s: factorization vars %v, formula vars %v (%s)", c.name, vars, want, fact)
			continue
		}
		for i := range vars {
			if vars[i] != want[i] {
				t.Errorf("%s: var mismatch %v vs %v", c.name, vars, want)
			}
		}
		// Probability agrees with brute force.
		probs := make([]float64, int(want[len(want)-1])+1)
		rng := rand.New(rand.NewSource(1))
		for i := range probs {
			probs[i] = rng.Float64()
		}
		p := func(v Var) float64 { return probs[v] }
		wantP, err := ProbBruteForce(c.f, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := fact.Prob(p); math.Abs(got-wantP) > 1e-12 {
			t.Errorf("%s: factorization prob %g, brute force %g", c.name, got, wantP)
		}
	}
}

// randomReadOnceTree generates a random read-once formula by building a
// random ∧/∨ tree over distinct variables and expanding it to DNF.
func randomReadOnceTree(rng *rand.Rand, nextVar *Var, depth int) (*Factorization, []Clause) {
	if depth == 0 || rng.Intn(3) == 0 {
		v := *nextVar
		*nextVar++
		return &Factorization{Kind: FVar, Var: v}, []Clause{NewClause(v)}
	}
	kind := FAnd
	if rng.Intn(2) == 0 {
		kind = FOr
	}
	k := 2 + rng.Intn(2)
	node := &Factorization{Kind: kind}
	var clauseSets [][]Clause
	for i := 0; i < k; i++ {
		child, cs := randomReadOnceTree(rng, nextVar, depth-1)
		node.Children = append(node.Children, child)
		clauseSets = append(clauseSets, cs)
	}
	if kind == FOr {
		var union []Clause
		for _, cs := range clauseSets {
			union = append(union, cs...)
		}
		return node, union
	}
	// And: cross product of the children's clause sets.
	acc := []Clause{NewClause()}
	for _, cs := range clauseSets {
		var next []Clause
		for _, a := range acc {
			for _, b := range cs {
				next = append(next, NewClause(append(append(Clause{}, a...), b...)...))
			}
		}
		acc = next
	}
	return node, acc
}

func TestReadOnceRecognizesRandomReadOnceFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		var next Var
		tree, clauses := randomReadOnceTree(rng, &next, 3)
		f := &DNF{Clauses: clauses}
		fact, ok := ReadOnce(f)
		if !ok {
			t.Fatalf("trial %d: read-once formula not recognized: %s (tree %s)", trial, f, tree)
		}
		probs := make([]float64, int(next))
		for i := range probs {
			probs[i] = rng.Float64()
		}
		p := func(v Var) float64 { return probs[v] }
		want := tree.Prob(p)
		if got := fact.Prob(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: prob %g, want %g", trial, got, want)
		}
		// The general solver agrees too (and now takes the fast path).
		if got := Prob(f, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: Prob %g, want %g", trial, got, want)
		}
	}
}

func TestReadOnceRejectsRandomDenseFormulas(t *testing.T) {
	// Random dense formulas are almost never read-once; whenever the
	// recognizer does accept, its probability must still be correct.
	rng := rand.New(rand.NewSource(11))
	accepted := 0
	for trial := 0; trial < 50; trial++ {
		f := randomDNF(rng, 6, 6, 3)
		fact, ok := ReadOnce(f)
		if !ok {
			continue
		}
		accepted++
		probs := make([]float64, 6)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		p := func(v Var) float64 { return probs[v] }
		want, err := ProbBruteForce(f, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := fact.Prob(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: accepted factorization is wrong: %g vs %g", trial, got, want)
		}
	}
	if accepted == 50 {
		t.Error("recognizer accepted every dense formula; it is not discriminating")
	}
}

func TestFactorizationString(t *testing.T) {
	f := &DNF{Clauses: []Clause{NewClause(0, 1), NewClause(0, 2)}}
	fact, ok := ReadOnce(f)
	if !ok {
		t.Fatal("not recognized")
	}
	s := fact.String()
	if !strings.Contains(s, "x0") || !strings.Contains(s, "∨") {
		t.Errorf("String = %q", s)
	}
}

// TestHierarchicalLineageIsReadOnce checks the Section 4.3.1 connection:
// the per-answer lineage of a hierarchical query is read-once. For
// q :- R(x), S(x,y): lineage ∨_x r_x ∧ (∨_y s_xy).
func TestHierarchicalLineageIsReadOnce(t *testing.T) {
	f := &DNF{}
	// r_x are vars 0..2; s_xy are 3 + 2x + y for y in {0,1}.
	for x := Var(0); x < 3; x++ {
		for y := Var(0); y < 2; y++ {
			f.Add(NewClause(x, 3+2*x+y))
		}
	}
	fact, ok := ReadOnce(f)
	if !ok {
		t.Fatalf("hierarchical lineage not read-once: %s", f)
	}
	probs := make([]float64, 9)
	rng := rand.New(rand.NewSource(3))
	for i := range probs {
		probs[i] = rng.Float64()
	}
	p := func(v Var) float64 { return probs[v] }
	want, err := ProbBruteForce(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := fact.Prob(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("prob %g, want %g", got, want)
	}
}
