package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// DurationBuckets are the upper bounds (seconds) of the per-strategy query
// latency histogram, chosen to resolve both the sub-millisecond safe-plan
// regime and the multi-second sampling-fallback regime.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram (cumulative bucket counts
// are computed at exposition time; counts here are per-bucket).
type histogram struct {
	counts []uint64 // one per bucket label; last slot = +Inf overflow
	sum    float64
	total  uint64
}

var durationBucketLabels = func() []string {
	labels := make([]string, 0, len(DurationBuckets)+1)
	for _, ub := range DurationBuckets {
		labels = append(labels, strconv.FormatFloat(ub, 'g', -1, 64))
	}
	return append(labels, "+Inf")
}()

func (h *histogram) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(durationBucketLabels))
	}
	i := sort.SearchFloat64s(DurationBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// Registry accumulates process-level metrics across query evaluations. The
// zero value is ready to use; all methods are safe for concurrent use. The
// package-level Default registry is the one the pdb facade feeds and the
// one /metrics serves; tests construct their own so observations do not
// leak across tests.
type Registry struct {
	mu sync.Mutex

	queries   map[string]uint64 // by strategy
	errors    map[string]uint64 // by strategy
	answers   map[string]uint64 // by strategy
	durations map[string]*histogram

	budgetExhausted map[string]uint64 // by budget dimension: rows, nodes, time
	cancellations   uint64

	offendingTuples    uint64
	inferenceFallbacks uint64
	rowsCharged        uint64
	nodesCharged       uint64

	// Spill counters, fed by evaluations running under a memory budget:
	// join/dedup partitions written to temp files and the bytes they wrote
	// (docs/SPILL.md).
	spillPartitions uint64
	spillBytes      uint64

	// Performance-layer counters (PR 5): the evaluations' shared inference
	// memo tables and the AND-OR network hash-consing table.
	memoHits      uint64
	memoMisses    uint64
	memoEvictions uint64
	consHits      uint64

	// Compiled-circuit counters (knowledge-compilation layer): lineage
	// formulas compiled to d-DNNF circuits, answers served from
	// already-compiled structure, and linear evaluation passes run.
	circuitCompiles uint64
	circuitHits     uint64
	circuitEvals    uint64

	// Adaptive-planner counters: plan choices by source ("safe", "greedy",
	// "body"), per-answer inference-backend choices and deterministic
	// fallthroughs by backend label, and answers whose first-ranked backend
	// was not the one that succeeded.
	plannerPlans            map[string]uint64 // by plan source
	plannerBackendChosen    map[string]uint64 // by backend label
	plannerBackendFallbacks map[string]uint64 // by backend label
	plannerPredictionMisses uint64

	// Dissociation counters: bounds-valued answers produced by the
	// dissociation strategy, how many of their intervals collapsed to the
	// exact probability (read-once lineage), and the shared variables split
	// into independent copies across all answers.
	dissociationAnswers uint64
	dissociationExact   uint64
	dissociationVars    uint64

	// Top-k counters, fed by pdb.TopKQuery: evaluations run, refinement
	// rounds, answers ranked for free by a collapsed dissociation interval,
	// answers that needed Karp–Luby samples, and evaluations that ended
	// without provable separation.
	topkQueries     uint64
	topkRounds      uint64
	topkSeededExact uint64
	topkSampled     uint64
	topkUnseparated uint64

	// Incremental-maintenance counters: logged mutation deltas by kind
	// (insert, delete, prob_update), and materialized-view refreshes split
	// into prob-update patches vs structural full recomputes.
	deltas          map[string]uint64 // by kind
	deltaPatches    uint64
	deltaRecomputes uint64

	// Server-side metrics, fed by internal/server. The gauges track the
	// admission controller's instantaneous state; the counters and per-route
	// histograms accumulate over the server's life.
	serverInFlight  int64             // gauge: requests holding a worker slot
	serverQueued    int64             // gauge: requests waiting for a slot
	serverRequests  map[string]uint64 // by route
	serverResponses map[string]uint64 // by HTTP status code
	serverRejected  map[string]uint64 // by reason: overload, shutdown
	serverDegraded  uint64
	serverDurations map[string]*histogram // by route

	// Result-cache metrics, fed by the server's snapshot-versioned cache:
	// cumulative hit/miss/eviction counters and instantaneous size gauges.
	serverCacheHits      uint64
	serverCacheMisses    uint64
	serverCacheEvictions uint64
	serverCacheEntries   int64 // gauge
	serverCacheBytes     int64 // gauge

	// Fine-grained invalidation counters: sweeps are write-observations that
	// scanned the cache for dependents of a mutated relation; entries are the
	// stale entries those sweeps dropped. A sweep dropping zero entries means
	// the write touched nothing any cached answer reads.
	cacheInvalidationSweeps  uint64
	cacheInvalidationEntries uint64
}

// Default is the process-wide registry: fed by pdb on every evaluation,
// published on expvar under "pdb", served by Serve's /metrics endpoint.
var Default = &Registry{}

func init() {
	expvar.Publish("pdb", expvar.Func(func() any { return Default.snapshot() }))
}

// QueryObservation is one evaluation's contribution to the registry.
type QueryObservation struct {
	// Strategy the evaluation ran under.
	Strategy core.Strategy
	// Duration is the evaluation's wall time.
	Duration time.Duration
	// Stats is the evaluation's statistics; nil when it failed.
	Stats *core.Stats
	// Err is the evaluation's error, nil on success. Budget and
	// cancellation errors are classified into their own counters.
	Err error
}

// ObserveQuery folds one evaluation into the registry: the query counter
// and latency histogram always; the answer/offending/fallback/charged
// counters from Stats when present; the error, budget-exhaustion and
// cancellation counters classified from Err.
func (r *Registry) ObserveQuery(o QueryObservation) {
	strategy := o.Strategy.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.queries == nil {
		r.queries = make(map[string]uint64)
		r.errors = make(map[string]uint64)
		r.answers = make(map[string]uint64)
		r.durations = make(map[string]*histogram)
		r.budgetExhausted = make(map[string]uint64)
	}
	r.queries[strategy]++
	h := r.durations[strategy]
	if h == nil {
		h = &histogram{}
		r.durations[strategy] = h
	}
	h.observe(o.Duration.Seconds())
	if o.Stats != nil {
		r.answers[strategy] += uint64(o.Stats.Answers)
		r.offendingTuples += uint64(o.Stats.OffendingTuples)
		if o.Stats.Approximate {
			r.inferenceFallbacks++
		}
		r.rowsCharged += uint64(o.Stats.RowsCharged)
		r.nodesCharged += uint64(o.Stats.NodesCharged)
		r.spillPartitions += uint64(o.Stats.SpilledPartitions)
		r.spillBytes += uint64(o.Stats.SpillBytes)
		r.memoHits += uint64(o.Stats.MemoHits)
		r.memoMisses += uint64(o.Stats.MemoMisses)
		r.memoEvictions += uint64(o.Stats.MemoEvictions)
		r.consHits += uint64(o.Stats.ConsHits)
		r.circuitCompiles += uint64(o.Stats.CircuitCompiles)
		r.circuitHits += uint64(o.Stats.CircuitHits)
		r.circuitEvals += uint64(o.Stats.CircuitEvals)
		if o.Stats.PlanSource != "" {
			if r.plannerPlans == nil {
				r.plannerPlans = make(map[string]uint64)
			}
			r.plannerPlans[o.Stats.PlanSource]++
		}
		for backend, n := range o.Stats.BackendChoices {
			if r.plannerBackendChosen == nil {
				r.plannerBackendChosen = make(map[string]uint64)
			}
			r.plannerBackendChosen[backend] += uint64(n)
		}
		for backend, n := range o.Stats.BackendFallbacks {
			if r.plannerBackendFallbacks == nil {
				r.plannerBackendFallbacks = make(map[string]uint64)
			}
			r.plannerBackendFallbacks[backend] += uint64(n)
		}
		r.plannerPredictionMisses += uint64(o.Stats.BackendPredictionMisses)
		if o.Stats.BoundsValued {
			r.dissociationAnswers += uint64(o.Stats.Answers)
			r.dissociationExact += uint64(o.Stats.BoundsExact)
			r.dissociationVars += uint64(o.Stats.DissociatedVars)
		}
	}
	if o.Err != nil {
		r.errors[strategy]++
		switch {
		case errors.Is(o.Err, core.ErrRowBudget):
			r.budgetExhausted["rows"]++
		case errors.Is(o.Err, core.ErrNodeBudget):
			r.budgetExhausted["nodes"]++
		case errors.Is(o.Err, context.DeadlineExceeded):
			r.budgetExhausted["time"]++
		case errors.Is(o.Err, context.Canceled):
			r.cancellations++
		}
	}
}

// TopKObservation is one top-k evaluation's contribution to the registry.
type TopKObservation struct {
	// Answers is the total answer count the ranking was computed over.
	Answers int
	// Rounds is the number of multisimulation refinement rounds run.
	Rounds int
	// SeededExact counts answers whose dissociation interval collapsed to a
	// point — ranked without sampling.
	SeededExact int
	// Sampled counts answers that drew Karp–Luby samples.
	Sampled int
	// Separated reports whether the top-k set provably separated.
	Separated bool
}

// ObserveTopK folds one top-k evaluation into the pdb_topk_* counters.
func (r *Registry) ObserveTopK(o TopKObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.topkQueries++
	r.topkRounds += uint64(o.Rounds)
	r.topkSeededExact += uint64(o.SeededExact)
	r.topkSampled += uint64(o.Sampled)
	if !o.Separated {
		r.topkUnseparated++
	}
}

// ObserveDelta counts one logged mutation delta of the given kind
// ("insert", "delete", "prob_update").
func (r *Registry) ObserveDelta(kind string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deltas == nil {
		r.deltas = make(map[string]uint64)
	}
	r.deltas[kind]++
}

// ObserveRefresh counts one materialized-view refresh: patched=true when it
// re-weighted the existing lineage in place (prob-update deltas only),
// false when a structural delta forced a full recompute.
func (r *Registry) ObserveRefresh(patched bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if patched {
		r.deltaPatches++
	} else {
		r.deltaRecomputes++
	}
}

// CacheInvalidation counts one fine-grained invalidation sweep that dropped
// the given number of dependent result-cache entries.
func (r *Registry) CacheInvalidation(entries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cacheInvalidationSweeps++
	r.cacheInvalidationEntries += uint64(entries)
}

// ServerRequest counts one request admitted to the named route.
func (r *Registry) ServerRequest(route string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.serverRequests == nil {
		r.serverRequests = make(map[string]uint64)
	}
	r.serverRequests[route]++
}

// ServerInFlightAdd moves the in-flight gauge by delta (+1 when a request
// acquires a worker slot, -1 when it releases it).
func (r *Registry) ServerInFlightAdd(delta int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serverInFlight += int64(delta)
}

// ServerQueuedAdd moves the queued gauge by delta (+1 when a request starts
// waiting for a worker slot, -1 when it stops waiting).
func (r *Registry) ServerQueuedAdd(delta int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serverQueued += int64(delta)
}

// ServerResponse counts one completed request: the status-code counter and
// the route's latency histogram.
func (r *Registry) ServerResponse(route string, code int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.serverResponses == nil {
		r.serverResponses = make(map[string]uint64)
	}
	r.serverResponses[strconv.Itoa(code)]++
	if r.serverDurations == nil {
		r.serverDurations = make(map[string]*histogram)
	}
	h := r.serverDurations[route]
	if h == nil {
		h = &histogram{}
		r.serverDurations[route] = h
	}
	h.observe(d.Seconds())
}

// ServerRejected counts one request shed by admission control, by reason
// ("overload" when the queue is full, "shutdown" while draining).
func (r *Registry) ServerRejected(reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.serverRejected == nil {
		r.serverRejected = make(map[string]uint64)
	}
	r.serverRejected[reason]++
}

// ServerDegraded counts one request whose exact evaluation exhausted its
// budget and was retried with the Karp–Luby sampler.
func (r *Registry) ServerDegraded() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serverDegraded++
}

// ServerCacheHit counts one request answered from the result cache (or
// reused from a concurrent identical evaluation).
func (r *Registry) ServerCacheHit() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serverCacheHits++
}

// ServerCacheMiss counts one cacheable request that had to evaluate.
func (r *Registry) ServerCacheMiss() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serverCacheMisses++
}

// ServerCacheEviction counts one entry evicted from the result cache by the
// LRU size cap (version-bump purges are not evictions).
func (r *Registry) ServerCacheEviction() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serverCacheEvictions++
}

// ServerCacheSize sets the result cache's size gauges: live entries and
// their estimated bytes.
func (r *Registry) ServerCacheSize(entries int, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serverCacheEntries = int64(entries)
	r.serverCacheBytes = bytes
}

// snapshot renders the registry as a plain map for expvar.
func (r *Registry) snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := map[string]any{
		"queries_total":                   copyMap(r.queries),
		"query_errors_total":              copyMap(r.errors),
		"answers_total":                   copyMap(r.answers),
		"budget_exhausted_total":          copyMap(r.budgetExhausted),
		"cancellations_total":             r.cancellations,
		"offending_tuples_total":          r.offendingTuples,
		"inference_fallbacks_total":       r.inferenceFallbacks,
		"rows_charged_total":              r.rowsCharged,
		"network_nodes_charged_total":     r.nodesCharged,
		"spill_partitions_total":          r.spillPartitions,
		"spill_bytes_total":               r.spillBytes,
		"memo_hits_total":                 r.memoHits,
		"memo_misses_total":               r.memoMisses,
		"memo_evictions_total":            r.memoEvictions,
		"cons_hits_total":                 r.consHits,
		"circuit_compiles_total":          r.circuitCompiles,
		"circuit_hits_total":              r.circuitHits,
		"circuit_evals_total":             r.circuitEvals,
		"planner_plans_total":             copyMap(r.plannerPlans),
		"planner_backend_chosen_total":    copyMap(r.plannerBackendChosen),
		"planner_backend_fallbacks_total": copyMap(r.plannerBackendFallbacks),
		"planner_prediction_misses_total": r.plannerPredictionMisses,
		"dissociation_answers_total":      r.dissociationAnswers,
		"dissociation_exact_total":        r.dissociationExact,
		"dissociation_vars_total":         r.dissociationVars,
		"topk_queries_total":              r.topkQueries,
		"topk_rounds_total":               r.topkRounds,
		"topk_seeded_exact_total":         r.topkSeededExact,
		"topk_sampled_answers_total":      r.topkSampled,
		"topk_unseparated_total":          r.topkUnseparated,
		"deltas_total":                    copyMap(r.deltas),
		"delta_patched_refreshes_total":   r.deltaPatches,
		"delta_recompute_refreshes_total": r.deltaRecomputes,
		"server_in_flight":                r.serverInFlight,
		"server_queued":                   r.serverQueued,
		"server_requests_total":           copyMap(r.serverRequests),
		"server_responses_total":          copyMap(r.serverResponses),
		"server_rejected_total":           copyMap(r.serverRejected),
		"server_degraded_total":           r.serverDegraded,
		"server_cache_hits_total":         r.serverCacheHits,
		"server_cache_misses_total":       r.serverCacheMisses,
		"server_cache_evictions_total":    r.serverCacheEvictions,
		"server_cache_entries":            r.serverCacheEntries,
		"server_cache_bytes":              r.serverCacheBytes,

		"cache_invalidation_sweeps_total":  r.cacheInvalidationSweeps,
		"cache_invalidation_entries_total": r.cacheInvalidationEntries,
	}
	return m
}

func copyMap(src map[string]uint64) map[string]uint64 {
	dst := make(map[string]uint64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// MetricNames lists every metric family WriteProm can emit, in exposition
// order. docs/OBSERVABILITY.md must document each one — enforced by the
// internal/docscheck test.
func MetricNames() []string {
	return []string{
		"pdb_queries_total",
		"pdb_query_errors_total",
		"pdb_answers_total",
		"pdb_query_duration_seconds",
		"pdb_budget_exhausted_total",
		"pdb_cancellations_total",
		"pdb_offending_tuples_total",
		"pdb_inference_fallbacks_total",
		"pdb_rows_charged_total",
		"pdb_network_nodes_charged_total",
		"pdb_spill_partitions_total",
		"pdb_spill_bytes_total",
		"pdb_memo_hits_total",
		"pdb_memo_misses_total",
		"pdb_memo_evictions_total",
		"pdb_cons_hits_total",
		"pdb_circuit_compiles_total",
		"pdb_circuit_hits_total",
		"pdb_circuit_evals_total",
		"pdb_planner_plans_total",
		"pdb_planner_backend_chosen_total",
		"pdb_planner_backend_fallbacks_total",
		"pdb_planner_prediction_misses_total",
		"pdb_dissociation_answers_total",
		"pdb_dissociation_exact_total",
		"pdb_dissociation_vars_total",
		"pdb_topk_queries_total",
		"pdb_topk_rounds_total",
		"pdb_topk_seeded_exact_total",
		"pdb_topk_sampled_answers_total",
		"pdb_topk_unseparated_total",
		"pdb_deltas_total",
		"pdb_delta_patched_refreshes_total",
		"pdb_delta_recompute_refreshes_total",
		"pdb_server_in_flight",
		"pdb_server_queued",
		"pdb_server_requests_total",
		"pdb_server_responses_total",
		"pdb_server_rejected_total",
		"pdb_server_degraded_total",
		"pdb_server_cache_hits_total",
		"pdb_server_cache_misses_total",
		"pdb_server_cache_evictions_total",
		"pdb_server_cache_entries",
		"pdb_server_cache_bytes",
		"pdb_cache_invalidation_sweeps_total",
		"pdb_cache_invalidation_entries_total",
		"pdb_server_request_duration_seconds",
	}
}

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4): counters and one histogram family, each with # HELP and
// # TYPE lines. Output is deterministic — label values are sorted, nothing
// carries a timestamp — so scrapes diff cleanly and golden tests are
// stable. Zero-valued families are emitted with their HELP/TYPE header and
// no samples, keeping the set of families constant over the process's life.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder

	promLabeled(&b, "pdb_queries_total", "counter",
		"Queries evaluated, by strategy.", "strategy", r.queries)
	promLabeled(&b, "pdb_query_errors_total", "counter",
		"Queries that returned an error (budget, cancellation or otherwise), by strategy.", "strategy", r.errors)
	promLabeled(&b, "pdb_answers_total", "counter",
		"Answer rows produced by successful queries, by strategy.", "strategy", r.answers)

	promHeader(&b, "pdb_query_duration_seconds", "histogram",
		"Query evaluation latency, by strategy.")
	for _, strategy := range sortedKeysH(r.durations) {
		h := r.durations[strategy]
		var cum uint64
		for i, le := range durationBucketLabels {
			cum += h.counts[i]
			fmt.Fprintf(&b, "pdb_query_duration_seconds_bucket{strategy=%q,le=%q} %d\n",
				strategy, le, cum)
		}
		fmt.Fprintf(&b, "pdb_query_duration_seconds_sum{strategy=%q} %s\n",
			strategy, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(&b, "pdb_query_duration_seconds_count{strategy=%q} %d\n",
			strategy, h.total)
	}

	promLabeled(&b, "pdb_budget_exhausted_total", "counter",
		"Evaluations aborted by a resource budget, by exhausted dimension (rows, nodes, time).", "budget", r.budgetExhausted)
	promScalar(&b, "pdb_cancellations_total", "counter",
		"Evaluations aborted by caller cancellation.", r.cancellations)
	promScalar(&b, "pdb_offending_tuples_total", "counter",
		"Offending tuples conditioned across all evaluations (the cumulative distance from data-safety).", r.offendingTuples)
	promScalar(&b, "pdb_inference_fallbacks_total", "counter",
		"Evaluations whose exact inference fell back to sampling.", r.inferenceFallbacks)
	promScalar(&b, "pdb_rows_charged_total", "counter",
		"Rows emitted by relational operators (or lineage clauses grounded) across all evaluations.", r.rowsCharged)
	promScalar(&b, "pdb_network_nodes_charged_total", "counter",
		"AND-OR network nodes grown across all evaluations.", r.nodesCharged)
	promScalar(&b, "pdb_spill_partitions_total", "counter",
		"Join/dedup partitions spilled to temp files under a memory budget across all evaluations.", r.spillPartitions)
	promScalar(&b, "pdb_spill_bytes_total", "counter",
		"Bytes written to spill temp files under a memory budget across all evaluations.", r.spillBytes)
	promScalar(&b, "pdb_memo_hits_total", "counter",
		"Shared inference-memo hits (lineage Shannon subproblems and VE component solves) across all evaluations.", r.memoHits)
	promScalar(&b, "pdb_memo_misses_total", "counter",
		"Shared inference-memo misses across all evaluations.", r.memoMisses)
	promScalar(&b, "pdb_memo_evictions_total", "counter",
		"Entries evicted from the shared inference memo tables by their size caps.", r.memoEvictions)
	promScalar(&b, "pdb_cons_hits_total", "counter",
		"AddGate calls answered by the AND-OR network's hash-consing table instead of allocating a node.", r.consHits)
	promScalar(&b, "pdb_circuit_compiles_total", "counter",
		"Lineage formulas compiled to cached d-DNNF circuits across all evaluations.", r.circuitCompiles)
	promScalar(&b, "pdb_circuit_hits_total", "counter",
		"Answers served from already-compiled circuit structure in the circuit cache.", r.circuitHits)
	promScalar(&b, "pdb_circuit_evals_total", "counter",
		"Linear bottom-up circuit evaluation passes run by the compiled-circuit backend.", r.circuitEvals)

	promLabeled(&b, "pdb_planner_plans_total", "counter",
		"Query-level plan choices by the adaptive planner, by source (safe, greedy, body).", "source", r.plannerPlans)
	promLabeled(&b, "pdb_planner_backend_chosen_total", "counter",
		"Answers produced per inference backend.", "backend", r.plannerBackendChosen)
	promLabeled(&b, "pdb_planner_backend_fallbacks_total", "counter",
		"Ranked inference attempts that failed deterministically and fell through, by backend.", "backend", r.plannerBackendFallbacks)
	promScalar(&b, "pdb_planner_prediction_misses_total", "counter",
		"Answers whose first-ranked inference backend was not the one that succeeded.", r.plannerPredictionMisses)

	promScalar(&b, "pdb_dissociation_answers_total", "counter",
		"Bounds-valued answers produced by the dissociation strategy.", r.dissociationAnswers)
	promScalar(&b, "pdb_dissociation_exact_total", "counter",
		"Dissociation answers whose interval collapsed to the exact probability (read-once lineage).", r.dissociationExact)
	promScalar(&b, "pdb_dissociation_vars_total", "counter",
		"Shared lineage variables dissociated into independent copies across all bounds-valued answers.", r.dissociationVars)

	promScalar(&b, "pdb_topk_queries_total", "counter",
		"Top-k evaluations run through the pdb facade.", r.topkQueries)
	promScalar(&b, "pdb_topk_rounds_total", "counter",
		"Multisimulation refinement rounds across all top-k evaluations.", r.topkRounds)
	promScalar(&b, "pdb_topk_seeded_exact_total", "counter",
		"Top-k answers ranked for free by a collapsed dissociation interval (no sampling).", r.topkSeededExact)
	promScalar(&b, "pdb_topk_sampled_answers_total", "counter",
		"Top-k answers that needed Karp–Luby samples to separate.", r.topkSampled)
	promScalar(&b, "pdb_topk_unseparated_total", "counter",
		"Top-k evaluations that ended without provable separation (ranking used interval midpoints).", r.topkUnseparated)

	promLabeled(&b, "pdb_deltas_total", "counter",
		"Mutation deltas logged by the database, by kind (insert, delete, prob_update).", "kind", r.deltas)
	promScalar(&b, "pdb_delta_patched_refreshes_total", "counter",
		"Materialized-view refreshes applied by re-weighting the existing lineage in place (prob-update deltas only).", r.deltaPatches)
	promScalar(&b, "pdb_delta_recompute_refreshes_total", "counter",
		"Materialized-view refreshes that fell back to a full recompute (structural deltas or a truncated delta log).", r.deltaRecomputes)

	promGauge(&b, "pdb_server_in_flight", "Query-server requests currently holding a worker slot.", r.serverInFlight)
	promGauge(&b, "pdb_server_queued", "Query-server requests currently waiting for a worker slot.", r.serverQueued)
	promLabeled(&b, "pdb_server_requests_total", "counter",
		"Query-server requests admitted, by route.", "route", r.serverRequests)
	promLabeled(&b, "pdb_server_responses_total", "counter",
		"Query-server responses sent, by HTTP status code.", "code", r.serverResponses)
	promLabeled(&b, "pdb_server_rejected_total", "counter",
		"Query-server requests shed by admission control, by reason (overload, shutdown).", "reason", r.serverRejected)
	promScalar(&b, "pdb_server_degraded_total", "counter",
		"Query-server requests degraded from exact evaluation to Karp–Luby sampling after budget exhaustion.", r.serverDegraded)
	promScalar(&b, "pdb_server_cache_hits_total", "counter",
		"Query-server requests answered from the snapshot-versioned result cache (including single-flight reuse).", r.serverCacheHits)
	promScalar(&b, "pdb_server_cache_misses_total", "counter",
		"Cacheable query-server requests that had to evaluate.", r.serverCacheMisses)
	promScalar(&b, "pdb_server_cache_evictions_total", "counter",
		"Result-cache entries evicted by the LRU size cap.", r.serverCacheEvictions)
	promGauge(&b, "pdb_server_cache_entries",
		"Result-cache entries currently live.", r.serverCacheEntries)
	promGauge(&b, "pdb_server_cache_bytes",
		"Estimated bytes held by live result-cache entries.", r.serverCacheBytes)
	promScalar(&b, "pdb_cache_invalidation_sweeps_total", "counter",
		"Fine-grained invalidation sweeps: write-observations that scanned the result cache for entries reading a mutated relation.", r.cacheInvalidationSweeps)
	promScalar(&b, "pdb_cache_invalidation_entries_total", "counter",
		"Result-cache entries dropped by fine-grained invalidation sweeps (stale against a mutated relation they read).", r.cacheInvalidationEntries)

	promHeader(&b, "pdb_server_request_duration_seconds", "histogram",
		"Query-server request latency, by route.")
	for _, route := range sortedKeysH(r.serverDurations) {
		h := r.serverDurations[route]
		var cum uint64
		for i, le := range durationBucketLabels {
			cum += h.counts[i]
			fmt.Fprintf(&b, "pdb_server_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				route, le, cum)
		}
		fmt.Fprintf(&b, "pdb_server_request_duration_seconds_sum{route=%q} %s\n",
			route, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(&b, "pdb_server_request_duration_seconds_count{route=%q} %d\n",
			route, h.total)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func promGauge(b *strings.Builder, name, help string, v int64) {
	promHeader(b, name, "gauge", help)
	fmt.Fprintf(b, "%s %d\n", name, v)
}

func promHeader(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func promScalar(b *strings.Builder, name, typ, help string, v uint64) {
	promHeader(b, name, typ, help)
	fmt.Fprintf(b, "%s %d\n", name, v)
}

func promLabeled(b *strings.Builder, name, typ, help, label string, m map[string]uint64) {
	promHeader(b, name, typ, help)
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(b, "%s{%s=%q} %d\n", name, label, k, m[k])
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysH(m map[string]*histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
