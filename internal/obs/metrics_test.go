package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// feed populates a fresh registry with a deterministic mix of outcomes:
// successes across three strategies, one of them approximate, plus one of
// each classified failure.
func feed(r *Registry) {
	r.ObserveQuery(QueryObservation{
		Strategy: core.PartialLineage,
		Duration: 800 * time.Microsecond,
		Stats: &core.Stats{Answers: 3, OffendingTuples: 2, RowsCharged: 23, NodesCharged: 5,
			MemoHits: 12, MemoMisses: 30, MemoEvictions: 1, ConsHits: 4,
			CircuitCompiles: 2, CircuitHits: 5, CircuitEvals: 7,
			SpilledPartitions: 3, SpillBytes: 4096},
	})
	r.ObserveQuery(QueryObservation{
		Strategy: core.PartialLineage,
		Duration: 40 * time.Millisecond,
		Stats:    &core.Stats{Answers: 1, Approximate: true, RowsCharged: 100, NodesCharged: 60},
	})
	r.ObserveQuery(QueryObservation{
		Strategy: core.DNFLineage,
		Duration: 3 * time.Millisecond,
		Stats:    &core.Stats{Answers: 2, RowsCharged: 7},
	})
	r.ObserveQuery(QueryObservation{
		Strategy: core.MonteCarlo,
		Duration: 12 * time.Second, // beyond the last bucket: +Inf only
		Stats:    &core.Stats{Answers: 1, Approximate: true},
	})
	r.ObserveQuery(QueryObservation{Strategy: core.PartialLineage, Duration: time.Millisecond,
		Err: fmt.Errorf("wrap: %w", core.ErrRowBudget)})
	r.ObserveQuery(QueryObservation{Strategy: core.FullNetwork, Duration: time.Millisecond,
		Err: fmt.Errorf("wrap: %w", core.ErrNodeBudget)})
	r.ObserveQuery(QueryObservation{Strategy: core.DNFLineage, Duration: time.Second,
		Err: context.DeadlineExceeded})
	r.ObserveQuery(QueryObservation{Strategy: core.SafePlanOnly, Duration: time.Millisecond,
		Err: context.Canceled})

	// Server-side observations: two admitted requests (one still in flight,
	// one completed), a queued request, a shed request and a degradation.
	r.ServerRequest("/query")
	r.ServerRequest("/query")
	r.ServerRequest("/healthz")
	r.ServerInFlightAdd(2)
	r.ServerInFlightAdd(-1)
	r.ServerQueuedAdd(1)
	r.ServerResponse("/query", 200, 7*time.Millisecond)
	r.ServerResponse("/healthz", 200, 100*time.Microsecond)
	r.ServerResponse("/query", 504, 2*time.Second)
	r.ServerRejected("overload")
	r.ServerRejected("shutdown")
	r.ServerDegraded()

	// Result-cache observations: a miss then two hits, one LRU eviction, and
	// the cache's current size gauges.
	r.ServerCacheMiss()
	r.ServerCacheHit()
	r.ServerCacheHit()
	r.ServerCacheEviction()
	r.ServerCacheSize(3, 2048)
}

func TestWritePromGolden(t *testing.T) {
	r := &Registry{}
	feed(r)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prom.golden", buf.Bytes())
}

func TestWritePromDeterministic(t *testing.T) {
	render := func() string {
		r := &Registry{}
		feed(r)
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("WriteProm is not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestWritePromEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Registry{}).WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range MetricNames() {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("empty scrape missing family %s", name)
		}
	}
}

func TestMetricNamesMatchExposition(t *testing.T) {
	r := &Registry{}
	feed(r)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	declared := make(map[string]bool)
	for _, name := range MetricNames() {
		declared[name] = true
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("MetricNames lists %s but WriteProm never emits it", name)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if !declared[name] {
			t.Errorf("WriteProm emits family %s missing from MetricNames", name)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	r := &Registry{}
	feed(r)
	if got := r.budgetExhausted["rows"]; got != 1 {
		t.Errorf("rows budget count = %d, want 1", got)
	}
	if got := r.budgetExhausted["nodes"]; got != 1 {
		t.Errorf("nodes budget count = %d, want 1", got)
	}
	if got := r.budgetExhausted["time"]; got != 1 {
		t.Errorf("time budget count = %d, want 1", got)
	}
	if r.cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", r.cancellations)
	}
	if got := r.errors["partial"] + r.errors["network"] + r.errors["dnf"] + r.errors["safe"]; got != 4 {
		t.Errorf("total errors = %d, want 4", got)
	}
	if r.inferenceFallbacks != 2 {
		t.Errorf("fallbacks = %d, want 2", r.inferenceFallbacks)
	}
}

func TestServerMetrics(t *testing.T) {
	r := &Registry{}
	feed(r)
	if r.serverInFlight != 1 {
		t.Errorf("in-flight gauge = %d, want 1", r.serverInFlight)
	}
	if r.serverQueued != 1 {
		t.Errorf("queued gauge = %d, want 1", r.serverQueued)
	}
	if got := r.serverRequests["/query"]; got != 2 {
		t.Errorf("/query requests = %d, want 2", got)
	}
	if got := r.serverResponses["200"]; got != 2 {
		t.Errorf("200 responses = %d, want 2", got)
	}
	if got := r.serverResponses["504"]; got != 1 {
		t.Errorf("504 responses = %d, want 1", got)
	}
	if got := r.serverRejected["overload"] + r.serverRejected["shutdown"]; got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
	if r.serverDegraded != 1 {
		t.Errorf("degraded = %d, want 1", r.serverDegraded)
	}
	if h := r.serverDurations["/query"]; h == nil || h.total != 2 {
		t.Errorf("/query histogram = %+v, want 2 observations", h)
	}
}

func TestCacheAndMemoMetrics(t *testing.T) {
	r := &Registry{}
	feed(r)
	if r.memoHits != 12 || r.memoMisses != 30 || r.memoEvictions != 1 {
		t.Errorf("memo counters = %d/%d/%d, want 12/30/1", r.memoHits, r.memoMisses, r.memoEvictions)
	}
	if r.consHits != 4 {
		t.Errorf("cons hits = %d, want 4", r.consHits)
	}
	if r.serverCacheHits != 2 || r.serverCacheMisses != 1 || r.serverCacheEvictions != 1 {
		t.Errorf("cache counters = %d/%d/%d, want 2/1/1",
			r.serverCacheHits, r.serverCacheMisses, r.serverCacheEvictions)
	}
	if r.serverCacheEntries != 3 || r.serverCacheBytes != 2048 {
		t.Errorf("cache gauges = %d entries / %d bytes, want 3 / 2048", r.serverCacheEntries, r.serverCacheBytes)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &histogram{}
	h.observe(0.0009) // below first bound
	h.observe(0.001)  // exactly a bound counts in that bucket
	h.observe(11)     // beyond the last bound: +Inf slot
	if h.counts[0] != 2 {
		t.Errorf("first bucket = %d, want 2", h.counts[0])
	}
	if h.counts[len(h.counts)-1] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", h.counts[len(h.counts)-1])
	}
	if h.total != 3 {
		t.Errorf("total = %d, want 3", h.total)
	}
}
