// Package obs is the engine's observability layer: structured query traces
// and process-level metrics, layered on the per-operator statistics that
// core.ExecContext collects during evaluation.
//
// It has three faces:
//
//   - Query tracing. BuildTrace reconstructs the operator tree of one
//     evaluation from the flat, post-order, depth-annotated core.OpStat
//     list in core.Stats.Operators, annotated with rows in/out, AND-OR
//     network growth, offending tuples conditioned, the inference backend
//     used per answer, and the sampling-fallback reason. Trace.WriteTree
//     renders it EXPLAIN ANALYZE-style; Trace.WriteJSON emits the same
//     structure for machine consumption. The public entry points are
//     pdb.Result.Trace and pdb.Result.Explain, the `-explain` flag of
//     cmd/pdbrun, and the shell's `explain analyze` command.
//
//   - Process metrics. Registry accumulates cumulative counters across
//     evaluations — queries, errors, answers and latency histograms by
//     strategy; budget exhaustions by dimension; cancellations; rows and
//     network nodes charged; offending tuples; sampling fallbacks. The
//     package-level Default registry is fed by the pdb facade on every
//     evaluation and published on expvar under "pdb"; WriteProm dumps any
//     registry in Prometheus text exposition format with stable ordering
//     and no timestamps, so scrapes (and golden tests) are deterministic.
//
//   - Serving. Serve starts an HTTP server exposing /metrics (Prometheus
//     text), /debug/vars (expvar JSON) and /debug/pprof (net/http/pprof)
//     — wired to the `-metrics-addr` flag of cmd/pdbrun, cmd/pdbbench,
//     cmd/pdbshell and cmd/pdbfuzz.
//
// Every metric name is documented in docs/OBSERVABILITY.md (enforced by
// the internal/docscheck test), and the trace format is documented there
// alongside a worked example.
package obs
