package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability HTTP mux:
//
//	/metrics      – the Default registry in Prometheus text format
//	/debug/vars   – expvar JSON (includes the "pdb" snapshot)
//	/debug/pprof  – the standard net/http/pprof profile endpoints
//
// Exposed separately from Serve so embedders can mount it on an existing
// server.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability server on addr (e.g. "localhost:6060", or
// "localhost:0" to pick a free port) in a background goroutine and returns
// the bound address. The server lives for the remainder of the process —
// the CLI tools start it from a `-metrics-addr` flag and never need to stop
// it. Errors binding the listener are returned; errors after that are
// ignored (the process's real work does not depend on the debug server).
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
