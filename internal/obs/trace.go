package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
)

// Span is one operator (or detail sub-span) in a query trace, with its
// children reattached. The measurement fields mirror core.OpStat: Rows is
// the output cardinality, RowsIn the input cardinality, NetworkGrowth the
// AND-OR nodes this span itself added (children excluded), Time the span's
// own wall time (children excluded).
type Span struct {
	Op            string        `json:"op"`
	Kind          string        `json:"kind,omitempty"`
	Rows          int           `json:"rows"`
	RowsIn        int           `json:"rows_in,omitempty"`
	Conditioned   int           `json:"conditioned,omitempty"`
	NetworkGrowth int           `json:"network_growth,omitempty"`
	Time          time.Duration `json:"time_ns"`
	Detail        string        `json:"detail,omitempty"`
	Children      []*Span       `json:"children,omitempty"`
}

// Trace is the hierarchical execution trace of one evaluation: the header
// fields summarize the whole query (mirroring core.Stats), Roots holds the
// reconstructed operator forest — typically the plan's root operator
// followed by the inference aggregate, or a grounding span for the lineage
// strategies.
type Trace struct {
	Query           string        `json:"query,omitempty"`
	Strategy        string        `json:"strategy"`
	Answers         int           `json:"answers"`
	OffendingTuples int           `json:"offending_tuples"`
	NetworkNodes    int           `json:"network_nodes,omitempty"`
	NetworkEdges    int           `json:"network_edges,omitempty"`
	LineageClauses  int           `json:"lineage_clauses,omitempty"`
	LineageVars     int           `json:"lineage_vars,omitempty"`
	Approximate     bool          `json:"approximate"`
	FallbackReason  string        `json:"fallback_reason,omitempty"`
	PlanSource      string        `json:"plan_source,omitempty"`
	PlanOrder       string        `json:"plan_order,omitempty"`
	PlanEstOffend   int           `json:"plan_est_offending,omitempty"`
	PlanCandidates  int           `json:"plan_candidates,omitempty"`
	PredictionMiss  int           `json:"backend_prediction_misses,omitempty"`
	RowsCharged     int64         `json:"rows_charged"`
	NodesCharged    int64         `json:"nodes_charged"`
	PlanTime        time.Duration `json:"plan_time_ns"`
	InferenceTime   time.Duration `json:"inference_time_ns"`
	Roots           []*Span       `json:"operators"`
}

// BuildTrace reconstructs the operator tree of one evaluation from its
// statistics. Stats.Operators is a flat post-order list (children recorded
// before their parent) whose Depth field gives each span's nesting level;
// the tree falls out of one pass with a pending stack: a span at depth d
// adopts the maximal run of already-built spans deeper than d as its
// children. Spans left at the end are the roots, in recorded order.
//
// query is the source text of the query (empty is fine); it only decorates
// the rendered header. BuildTrace never returns nil — an untraced
// evaluation yields a Trace with header fields filled and no Roots.
func BuildTrace(query string, s core.Stats) *Trace {
	t := &Trace{
		Query:           query,
		Strategy:        s.Strategy.String(),
		Answers:         s.Answers,
		OffendingTuples: s.OffendingTuples,
		NetworkNodes:    s.NetworkNodes,
		NetworkEdges:    s.NetworkEdges,
		LineageClauses:  s.LineageClauses,
		LineageVars:     s.LineageVars,
		Approximate:     s.Approximate,
		FallbackReason:  s.FallbackReason,
		PlanSource:      s.PlanSource,
		PlanOrder:       s.PlanOrder,
		PlanEstOffend:   s.PlanEstOffending,
		PlanCandidates:  s.PlanCandidates,
		PredictionMiss:  s.BackendPredictionMisses,
		RowsCharged:     s.RowsCharged,
		NodesCharged:    s.NodesCharged,
		PlanTime:        s.PlanTime,
		InferenceTime:   s.InferenceTime,
	}
	type entry struct {
		span  *Span
		depth int
	}
	var pending []entry
	for _, op := range s.Operators {
		sp := &Span{
			Op:            op.Op,
			Kind:          op.Kind,
			Rows:          op.Rows,
			RowsIn:        op.RowsIn,
			Conditioned:   op.Conditioned,
			NetworkGrowth: op.NetworkGrowth,
			Time:          op.Time,
			Detail:        op.Detail,
		}
		// Adopt the trailing run of deeper spans as children, preserving
		// their recorded order.
		first := len(pending)
		for first > 0 && pending[first-1].depth > op.Depth {
			first--
		}
		for _, e := range pending[first:] {
			sp.Children = append(sp.Children, e.span)
		}
		pending = append(pending[:first], entry{sp, op.Depth})
	}
	for _, e := range pending {
		t.Roots = append(t.Roots, e.span)
	}
	return t
}

// WriteTree renders the trace in EXPLAIN ANALYZE style: a header block
// summarizing the evaluation, then the operator forest drawn with box
// characters. Every line a golden test could compare is deterministic given
// deterministic Stats (wall times are printed as recorded, so mask or fix
// them when comparing).
func (t *Trace) WriteTree(w io.Writer) error {
	var b strings.Builder
	if t.Query != "" {
		fmt.Fprintf(&b, "query: %s\n", t.Query)
	}
	fmt.Fprintf(&b, "strategy: %s   answers: %d   offending tuples: %d\n",
		t.Strategy, t.Answers, t.OffendingTuples)
	if t.PlanSource != "" {
		fmt.Fprintf(&b, "plan: %s", t.PlanSource)
		if t.PlanOrder != "" {
			fmt.Fprintf(&b, " [%s]", t.PlanOrder)
		}
		if t.PlanCandidates > 0 {
			fmt.Fprintf(&b, " (est offending %d, %d candidates)", t.PlanEstOffend, t.PlanCandidates)
		}
		b.WriteByte('\n')
	}
	if t.NetworkNodes > 0 || t.NetworkEdges > 0 {
		fmt.Fprintf(&b, "network: %d nodes, %d edges\n", t.NetworkNodes, t.NetworkEdges)
	}
	if t.LineageClauses > 0 || t.LineageVars > 0 {
		fmt.Fprintf(&b, "lineage: %d clauses over %d variables\n", t.LineageClauses, t.LineageVars)
	}
	fmt.Fprintf(&b, "charged: %d rows, %d network nodes\n", t.RowsCharged, t.NodesCharged)
	fmt.Fprintf(&b, "plan time: %s   inference time: %s\n",
		fmtDur(t.PlanTime), fmtDur(t.InferenceTime))
	if t.Approximate {
		reason := t.FallbackReason
		if reason == "" {
			reason = "sampling fallback"
		}
		fmt.Fprintf(&b, "approximate: %s\n", reason)
	} else {
		b.WriteString("exact\n")
	}
	if len(t.Roots) == 0 {
		b.WriteString("(no operator trace recorded — evaluate with tracing enabled)\n")
	}
	for i, root := range t.Roots {
		writeSpan(&b, root, "", i == len(t.Roots)-1)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSpan(b *strings.Builder, s *Span, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	b.WriteString(prefix)
	b.WriteString(branch)
	b.WriteString(s.Op)
	var parts []string
	if s.RowsIn > 0 {
		parts = append(parts, fmt.Sprintf("rows=%d (in %d)", s.Rows, s.RowsIn))
	} else {
		parts = append(parts, fmt.Sprintf("rows=%d", s.Rows))
	}
	if s.Conditioned > 0 {
		parts = append(parts, fmt.Sprintf("conditioned=%d", s.Conditioned))
	}
	if s.NetworkGrowth != 0 {
		parts = append(parts, fmt.Sprintf("nodes=%+d", s.NetworkGrowth))
	}
	parts = append(parts, "time="+fmtDur(s.Time))
	fmt.Fprintf(b, "  [%s]", strings.Join(parts, " "))
	if s.Detail != "" {
		fmt.Fprintf(b, "  — %s", s.Detail)
	}
	b.WriteByte('\n')
	for i, c := range s.Children {
		writeSpan(b, c, childPrefix, i == len(s.Children)-1)
	}
}

// fmtDur renders a duration compactly and stably: microsecond precision up
// to a second, millisecond precision beyond, so re-rendering the same
// recorded trace always produces the same bytes.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0s"
	case d < time.Second:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// WriteJSON emits the trace as indented JSON (durations in nanoseconds, as
// the _ns field names advertise). The encoding is deterministic: field
// order is fixed by the struct definitions and empty sections are omitted.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(t)
}
