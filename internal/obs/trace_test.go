package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedStats is a hand-built evaluation record with deterministic wall
// times, shaped like a real partial-lineage run of the paper's running
// example: scans feeding a conditioning join, a dedup projection, and an
// inference pass whose answer span names its backend.
func fixedStats() core.Stats {
	return core.Stats{
		Strategy:        core.PartialLineage,
		Answers:         1,
		OffendingTuples: 2,
		NetworkNodes:    6,
		NetworkEdges:    6,
		RowsCharged:     23,
		NodesCharged:    5,
		PlanTime:        65 * time.Microsecond,
		InferenceTime:   44 * time.Microsecond,
		Operators: []core.OpStat{
			{Op: "R1(h, x)", Kind: "scan", Depth: 2, Rows: 2, RowsIn: 2, Time: 5 * time.Microsecond},
			{Op: "S1(h, x, y)", Kind: "scan", Depth: 2, Rows: 4, RowsIn: 4, Time: 2 * time.Microsecond},
			{Op: "(R1(h, x) ⋈ S1(h, x, y))", Kind: "join", Depth: 1, Rows: 4, RowsIn: 6,
				Conditioned: 2, NetworkGrowth: 2, Time: 35 * time.Microsecond},
			{Op: "π{h}((R1(h, x) ⋈ S1(h, x, y)))", Kind: "project", Depth: 0, Rows: 1, RowsIn: 4,
				NetworkGrowth: 3, Time: 23 * time.Microsecond},
			{Op: "lineage node 5", Kind: "infer.answer", Depth: 1, Rows: 1,
				Time: 44 * time.Microsecond, Detail: "expand+shannon"},
			{Op: "inference (1 jobs)", Kind: "infer", Depth: 0, Rows: 1,
				Time: 44 * time.Microsecond},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update ./internal/obs): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n-- got --\n%s\n-- want --\n%s", path, got, want)
	}
}

func TestBuildTraceTree(t *testing.T) {
	tr := BuildTrace("q(h) :- R1(h, x), S1(h, x, y), R2(h, y)", fixedStats())
	if len(tr.Roots) != 2 {
		t.Fatalf("want 2 roots (plan + inference), got %d", len(tr.Roots))
	}
	plan := tr.Roots[0]
	if plan.Kind != "project" || len(plan.Children) != 1 {
		t.Fatalf("unexpected plan root: %+v", plan)
	}
	join := plan.Children[0]
	if join.Kind != "join" || len(join.Children) != 2 || join.Conditioned != 2 {
		t.Fatalf("unexpected join span: %+v", join)
	}
	infer := tr.Roots[1]
	if infer.Kind != "infer" || len(infer.Children) != 1 || infer.Children[0].Detail != "expand+shannon" {
		t.Fatalf("unexpected inference root: %+v", infer)
	}
}

func TestWriteTreeGolden(t *testing.T) {
	tr := BuildTrace("q(h) :- R1(h, x), S1(h, x, y), R2(h, y)", fixedStats())
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_partial.golden", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	tr := BuildTrace("q(h) :- R1(h, x), S1(h, x, y), R2(h, y)", fixedStats())
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_partial.json.golden", buf.Bytes())
}

func TestWriteTreeUntraced(t *testing.T) {
	s := fixedStats()
	s.Operators = nil
	var buf bytes.Buffer
	if err := BuildTrace("", s).WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("no operator trace recorded")) {
		t.Errorf("untraced rendering should say so:\n%s", buf.String())
	}
}

func TestWriteTreeApproximate(t *testing.T) {
	s := fixedStats()
	s.Approximate = true
	s.FallbackReason = "exact inference exceeded the width cap; forward sampling"
	var buf bytes.Buffer
	if err := BuildTrace("", s).WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("approximate: exact inference exceeded the width cap")) {
		t.Errorf("fallback reason missing from header:\n%s", buf.String())
	}
}
