package pl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/aonet"
	"repro/internal/tuple"
)

// The spill partition-file codec: a deterministic, self-delimiting binary
// encoding of the records the bounded-memory operators (spill.go) move
// between heap and temp files. Determinism matters because the spill paths
// promise byte-identical results to in-memory execution — a record must
// decode to exactly the value that was encoded, bit patterns included
// (float64 payloads travel as raw IEEE-754 bits, never through text).
//
// Four record kinds, each a kind byte followed by its payload:
//
//	index  seq                              — one side of a join partition
//	                                          (base tuples stay resident;
//	                                          partitions store arrival
//	                                          indexes, late-materialization
//	                                          style)
//	pair   i, j                             — one matched join pair, probe
//	                                          index × build index
//	tuple  seq, P, Lin, vals                — a full pL-tuple with its
//	                                          arrival sequence (dedup input
//	                                          partitions)
//	group  first, vals, n, (P, Lin) × n     — one dedup group: first arrival
//	                                          index, the common values, and
//	                                          the members' (probability,
//	                                          lineage) edges in arrival order
//
// Integers are unsigned varints (negative tuple ints zigzag via AppendVarint),
// floats are 8 fixed bytes of math.Float64bits, strings are length-prefixed.
// Decoding rejects truncated input with io.ErrUnexpectedEOF and oversized
// length prefixes with errCodecCorrupt — a partial temp-file write can never
// silently produce a short-but-plausible record stream. FuzzSpillCodec
// round-trips arbitrary byte strings through decode→encode→decode.

const (
	recKindIndex = 0x01
	recKindPair  = 0x02
	recKindTuple = 0x03
	recKindGroup = 0x04
)

// codecMax bounds decoded length prefixes (string bytes, tuple arity, group
// members) so corrupt or adversarial input cannot demand absurd allocations.
const codecMax = 1 << 24

var errCodecCorrupt = errors.New("pl: corrupt spill record")

// pairRec is one matched join pair: probe-side arrival index i, build-side
// arrival index j. Streams of pairRecs are ordered ascending by (i, j).
type pairRec struct {
	i, j int32
}

// tupleRec is a full pL-tuple with its arrival sequence number.
type tupleRec struct {
	seq int32
	t   Tuple
}

// groupRec is one dedup group: the arrival index of its first member, the
// (shared) values, and every member's (P, Lin) in arrival order. Singleton
// groups pass the member through unchanged; larger groups become one Or
// gate over the member edges.
type groupRec struct {
	first   int32
	vals    tuple.Tuple
	members []aonet.Edge
}

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendValue(b []byte, v tuple.Value) []byte {
	switch v.Kind() {
	case tuple.KindInt:
		b = append(b, 'i')
		b = binary.AppendVarint(b, v.AsInt())
	case tuple.KindFloat:
		b = append(b, 'f')
		b = appendFloat(b, v.AsFloat())
	default:
		s := v.AsString()
		b = append(b, 's')
		b = appendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

func appendTupleVals(b []byte, t tuple.Tuple) []byte {
	b = appendUvarint(b, uint64(len(t)))
	for _, v := range t {
		b = appendValue(b, v)
	}
	return b
}

func appendIndexRec(b []byte, seq int32) []byte {
	b = append(b, recKindIndex)
	return appendUvarint(b, uint64(uint32(seq)))
}

func appendPairRec(b []byte, r pairRec) []byte {
	b = append(b, recKindPair)
	b = appendUvarint(b, uint64(uint32(r.i)))
	return appendUvarint(b, uint64(uint32(r.j)))
}

func appendTupleRec(b []byte, r tupleRec) []byte {
	b = append(b, recKindTuple)
	b = appendUvarint(b, uint64(uint32(r.seq)))
	b = appendFloat(b, r.t.P)
	b = appendUvarint(b, uint64(uint32(r.t.Lin)))
	return appendTupleVals(b, r.t.Vals)
}

func appendGroupRec(b []byte, r groupRec) []byte {
	b = append(b, recKindGroup)
	b = appendUvarint(b, uint64(uint32(r.first)))
	b = appendTupleVals(b, r.vals)
	b = appendUvarint(b, uint64(len(r.members)))
	for _, e := range r.members {
		b = appendFloat(b, e.P)
		b = appendUvarint(b, uint64(uint32(e.From)))
	}
	return b
}

// recDecoder reads spill records off a buffered reader. A clean EOF at a
// record boundary ends the stream; EOF inside a record is truncation and
// surfaces as io.ErrUnexpectedEOF.
type recDecoder struct {
	br *bufio.Reader
}

// readKind returns the next record's kind byte, or ok == false at a clean
// end of stream.
func (d *recDecoder) readKind() (kind byte, ok bool, err error) {
	b, err := d.br.ReadByte()
	if err == io.EOF {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	switch b {
	case recKindIndex, recKindPair, recKindTuple, recKindGroup:
		return b, true, nil
	default:
		return 0, false, fmt.Errorf("%w: unknown record kind 0x%02x", errCodecCorrupt, b)
	}
}

// inTruncated maps any EOF inside a record body to ErrUnexpectedEOF.
func inTruncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (d *recDecoder) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	return v, inTruncated(err)
}

func (d *recDecoder) readIndex32() (int32, error) {
	v, err := d.readUvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("%w: index %d out of range", errCodecCorrupt, v)
	}
	return int32(uint32(v)), nil
}

func (d *recDecoder) readFloat() (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(d.br, buf[:]); err != nil {
		return 0, inTruncated(err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func (d *recDecoder) readValue() (tuple.Value, error) {
	kind, err := d.br.ReadByte()
	if err != nil {
		return tuple.Value{}, inTruncated(err)
	}
	switch kind {
	case 'i':
		i, err := binary.ReadVarint(d.br)
		if err != nil {
			return tuple.Value{}, inTruncated(err)
		}
		return tuple.Int(i), nil
	case 'f':
		f, err := d.readFloat()
		if err != nil {
			return tuple.Value{}, err
		}
		return tuple.Float(f), nil
	case 's':
		n, err := d.readUvarint()
		if err != nil {
			return tuple.Value{}, err
		}
		if n > codecMax {
			return tuple.Value{}, fmt.Errorf("%w: string length %d", errCodecCorrupt, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(d.br, buf); err != nil {
			return tuple.Value{}, inTruncated(err)
		}
		return tuple.String(string(buf)), nil
	default:
		return tuple.Value{}, fmt.Errorf("%w: unknown value kind 0x%02x", errCodecCorrupt, kind)
	}
}

func (d *recDecoder) readTupleVals() (tuple.Tuple, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > codecMax {
		return nil, fmt.Errorf("%w: tuple arity %d", errCodecCorrupt, n)
	}
	if n == 0 {
		return nil, nil
	}
	t := make(tuple.Tuple, n)
	for i := range t {
		if t[i], err = d.readValue(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (d *recDecoder) readIndexRec() (int32, error) { return d.readIndex32() }

func (d *recDecoder) readPairRec() (pairRec, error) {
	i, err := d.readIndex32()
	if err != nil {
		return pairRec{}, err
	}
	j, err := d.readIndex32()
	if err != nil {
		return pairRec{}, err
	}
	return pairRec{i: i, j: j}, nil
}

func (d *recDecoder) readTupleRec() (tupleRec, error) {
	seq, err := d.readIndex32()
	if err != nil {
		return tupleRec{}, err
	}
	p, err := d.readFloat()
	if err != nil {
		return tupleRec{}, err
	}
	lin, err := d.readIndex32()
	if err != nil {
		return tupleRec{}, err
	}
	vals, err := d.readTupleVals()
	if err != nil {
		return tupleRec{}, err
	}
	return tupleRec{seq: seq, t: Tuple{Vals: vals, P: p, Lin: aonet.NodeID(lin)}}, nil
}

func (d *recDecoder) readGroupRec() (groupRec, error) {
	first, err := d.readIndex32()
	if err != nil {
		return groupRec{}, err
	}
	vals, err := d.readTupleVals()
	if err != nil {
		return groupRec{}, err
	}
	n, err := d.readUvarint()
	if err != nil {
		return groupRec{}, err
	}
	if n > codecMax {
		return groupRec{}, fmt.Errorf("%w: group size %d", errCodecCorrupt, n)
	}
	members := make([]aonet.Edge, n)
	for i := range members {
		p, err := d.readFloat()
		if err != nil {
			return groupRec{}, err
		}
		from, err := d.readIndex32()
		if err != nil {
			return groupRec{}, err
		}
		members[i] = aonet.Edge{From: aonet.NodeID(from), P: p}
	}
	return groupRec{first: first, vals: vals, members: members}, nil
}
