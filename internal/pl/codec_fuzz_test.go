package pl

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/aonet"
	"repro/internal/tuple"
)

// Fuzz and unit coverage for the spill partition-file codec. The properties:
// decoding is a partial inverse of encoding (decode→encode→decode is a fixed
// point, bit patterns included), truncated record bodies are rejected with
// io.ErrUnexpectedEOF, and corrupt kinds/lengths are rejected with
// errCodecCorrupt — never accepted, never a panic, never an over-allocation.

// decodeRecords reads records off data until a clean end of stream or an
// error; it returns the decoded records (as any of the four record types)
// and the terminating error, nil for a clean end.
func decodeRecords(data []byte) ([]any, error) {
	d := &recDecoder{br: bufio.NewReader(bytes.NewReader(data))}
	var recs []any
	for {
		kind, ok, err := d.readKind()
		if err != nil {
			return recs, err
		}
		if !ok {
			return recs, nil
		}
		switch kind {
		case recKindIndex:
			seq, err := d.readIndexRec()
			if err != nil {
				return recs, err
			}
			recs = append(recs, seq)
		case recKindPair:
			r, err := d.readPairRec()
			if err != nil {
				return recs, err
			}
			recs = append(recs, r)
		case recKindTuple:
			r, err := d.readTupleRec()
			if err != nil {
				return recs, err
			}
			recs = append(recs, r)
		case recKindGroup:
			r, err := d.readGroupRec()
			if err != nil {
				return recs, err
			}
			recs = append(recs, r)
		}
	}
}

// encodeRecords is the inverse: re-encodes decoded records.
func encodeRecords(recs []any) []byte {
	var b []byte
	for _, r := range recs {
		switch v := r.(type) {
		case int32:
			b = appendIndexRec(b, v)
		case pairRec:
			b = appendPairRec(b, v)
		case tupleRec:
			b = appendTupleRec(b, v)
		case groupRec:
			b = appendGroupRec(b, v)
		}
	}
	return b
}

// seedCorpus returns one valid encoding of every record kind, edge values
// included (negative ints, float bit patterns, empty and non-ASCII strings,
// empty tuples, multi-member groups).
func seedCorpus() [][]byte {
	var streams [][]byte
	var b []byte
	b = appendIndexRec(b, 0)
	b = appendIndexRec(b, 1<<31-1)
	streams = append(streams, b)
	streams = append(streams, appendPairRec(nil, pairRec{i: 7, j: 12}))
	streams = append(streams, appendTupleRec(nil, tupleRec{
		seq: 3,
		t: Tuple{
			Vals: tuple.Tuple{tuple.Int(-42), tuple.Float(math.Inf(-1)), tuple.String("héllo\x00")},
			P:    0.25,
			Lin:  aonet.NodeID(9),
		},
	}))
	streams = append(streams, appendTupleRec(nil, tupleRec{seq: 0, t: Tuple{P: math.NaN()}}))
	streams = append(streams, appendGroupRec(nil, groupRec{
		first: 5,
		vals:  tuple.Tuple{tuple.String("")},
		members: []aonet.Edge{
			{From: aonet.Epsilon, P: 1},
			{From: aonet.NodeID(3), P: 0.5},
		},
	}))
	return streams
}

// FuzzSpillCodec: for arbitrary input, decoding must never panic, and
// whatever decodes must re-encode to a stream that decodes to the same
// records (encode∘decode is a fixed point, compared byte-for-byte after one
// round so NaN payloads and non-canonical varints are handled). Cutting the
// final byte off a valid stream must be rejected as truncation, not read as
// a shorter valid stream.
func FuzzSpillCodec(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{recKindTuple})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := decodeRecords(data)
		enc := encodeRecords(recs)
		recs2, err := decodeRecords(enc)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-encoded stream decoded %d records, want %d", len(recs2), len(recs))
		}
		if enc2 := encodeRecords(recs2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encode∘decode is not a fixed point:\n %x\n %x", enc, enc2)
		}
		if len(enc) > 0 {
			// Every record is at least two bytes, so cutting one byte always
			// truncates the final record's body or its kind's payload.
			if _, err := decodeRecords(enc[:len(enc)-1]); err == nil {
				t.Fatalf("truncated stream (%d of %d bytes) decoded cleanly", len(enc)-1, len(enc))
			}
		}
	})
}

// TestCodecRoundTrip pins the fixed-point property on the seed corpus
// without the fuzzer, so plain `go test` covers it.
func TestCodecRoundTrip(t *testing.T) {
	for i, s := range seedCorpus() {
		recs, err := decodeRecords(s)
		if err != nil {
			t.Fatalf("corpus %d: decode: %v", i, err)
		}
		if got := encodeRecords(recs); !bytes.Equal(got, s) {
			t.Fatalf("corpus %d: round trip changed bytes:\n %x\n %x", i, s, got)
		}
	}
}

// TestCodecTruncation: every strict prefix of a single-record stream is
// rejected with io.ErrUnexpectedEOF (except the empty prefix, a clean end).
func TestCodecTruncation(t *testing.T) {
	for i, s := range seedCorpus() {
		for cut := 1; cut < len(s); cut++ {
			recs, err := decodeRecords(s[:cut])
			if err == nil && len(recs) > 0 && len(encodeRecords(recs)) == cut {
				continue // the cut landed on a record boundary of a multi-record stream
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, errCodecCorrupt) {
				t.Fatalf("corpus %d cut %d: err = %v, want truncation or corruption", i, cut, err)
			}
		}
	}
}

// TestCodecRejectsCorruption: unknown kinds and oversized length prefixes
// are typed errors, not allocations or panics.
func TestCodecRejectsCorruption(t *testing.T) {
	cases := [][]byte{
		{0x00},       // unknown record kind
		{0x7f},       // unknown record kind
		{recKindTuple, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0x00, 0xff}, // unknown value kind
		append([]byte{recKindGroup, 0x01, 0x00}, 0xff, 0xff, 0xff, 0xff, 0x7f), // absurd member count
	}
	for i, data := range cases {
		if _, err := decodeRecords(data); !errors.Is(err, errCodecCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("case %d: err = %v, want errCodecCorrupt or truncation", i, err)
		}
	}
}
