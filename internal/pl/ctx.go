package pl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/tuple"
)

// This file provides the context-aware variants of the pL operators: the
// same algebra as pl.go, threaded through a core.ExecContext for
// cancellation, row/node budgets, and — for Join and Dedup — intra-operator
// parallelism. The legacy entry points (Select, Join, Dedup, ...) delegate
// here with a nil context, which is unbounded and sequential.
//
// Parallel Join and Dedup partition their hash tables by a hash of the
// grouping key and process partitions on a bounded worker pool
// (ec.Parallelism() workers). Every output-order- or network-mutating step
// stays in a serial merge phase that walks the probe/input side in its
// original order, so the output relation and every allocated network node
// ID are byte-identical to the sequential operator — asserted by
// TestQuickJoinParallelIdentical/TestQuickDedupParallelIdentical against
// aonet's canonical encoding. Workers never touch the shared network
// (aonet.Network is not goroutine-safe); they only bucket, probe and
// materialize value tuples.

// parallelMinRows is the input size below which the parallel paths fall
// back to the serial loop: partitioning costs more than it saves on tiny
// relations.
const parallelMinRows = 128

// workersFor picks the worker count for an input of n rows.
func workersFor(ec *core.ExecContext, n int) int {
	w := ec.Parallelism()
	if n < parallelMinRows {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// hashPart assigns a grouping key to one of w partitions (FNV-1a).
func hashPart(s string, w int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return int(h % uint64(w))
}

// runWorkers runs f(0..w-1) concurrently and returns the first error.
func runWorkers(w int, f func(p int) error) error {
	if w == 1 {
		return f(0)
	}
	errs := make([]error, w)
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = f(p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rowCharger batches ChargeRows calls so tight loops pay one atomic per
// core.CheckInterval rows instead of one per row.
type rowCharger struct {
	ec      *core.ExecContext
	pending int
}

func (c *rowCharger) add(n int) error {
	c.pending += n
	if c.pending >= core.CheckInterval {
		return c.flush()
	}
	return nil
}

func (c *rowCharger) flush() error {
	if c.pending == 0 {
		return nil
	}
	err := c.ec.ChargeRows(c.pending)
	c.pending = 0
	return err
}

// SelectCtx is Select with cancellation and row-budget checks.
func SelectCtx(ec *core.ExecContext, r *Relation, pred func(tuple.Tuple) bool) (*Relation, error) {
	out := &Relation{Attrs: r.Attrs.Clone()}
	chk := core.Check{EC: ec}
	charge := rowCharger{ec: ec}
	for _, t := range r.Tuples {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		if pred(t.Vals) {
			if err := charge.add(1); err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, t)
		}
	}
	if err := charge.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// IndProjectCtx is IndProject with cancellation and row-budget checks. The
// independent-project stage allocates no network nodes and groups on
// (values, lineage), so it runs sequentially; its cost is one hash pass.
func IndProjectCtx(ec *core.ExecContext, r *Relation, cols []string) (*Relation, error) {
	return IndProjectStreamCtx(ec, r.Attrs, r.Iter(), cols)
}

// IndProjectStreamCtx is IndProjectCtx over a tuple stream: the hash pass
// consumes the iterator one tuple at a time, so a producer (the engine's
// grounding scan under a memory budget) can drive it without materializing
// its output first. The output is identical to IndProjectCtx on the
// materialized input — the grouping sees the same tuples in the same order.
func IndProjectStreamCtx(ec *core.ExecContext, attrs tuple.Schema, it Iterator, cols []string) (*Relation, error) {
	defer it.Close()
	idx, err := attrs.Indexes(cols)
	if err != nil {
		return nil, fmt.Errorf("pl: IndProject: %w", err)
	}
	out := &Relation{Attrs: tuple.Schema(cols).Clone()}
	type groupKey struct {
		vals string
		lin  aonet.NodeID
	}
	pos := make(map[groupKey]int)
	chk := core.Check{EC: ec}
	charge := rowCharger{ec: ec}
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		k := groupKey{vals: t.Vals.KeyAt(idx), lin: t.Lin}
		if i, ok := pos[k]; ok {
			out.Tuples[i].P = 1 - (1-out.Tuples[i].P)*(1-t.P)
			continue
		}
		if err := charge.add(1); err != nil {
			return nil, err
		}
		pos[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, Tuple{Vals: t.Vals.Project(idx), P: t.P, Lin: t.Lin})
	}
	if err := charge.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// CondCtx is Cond with node-budget accounting.
func CondCtx(ec *core.ExecContext, r *Relation, i int, net *aonet.Network) error {
	before := net.Len()
	Cond(r, i, net)
	return ec.ChargeNodes(net.Len() - before)
}

// CSetCtx is CSet with cancellation checks over both scans.
func CSetCtx(ec *core.ExecContext, r1, r2 *Relation, joinCols []string) ([]int, error) {
	idx1, err := r1.Attrs.Indexes(joinCols)
	if err != nil {
		return nil, fmt.Errorf("pl: CSet: %w", err)
	}
	idx2, err := r2.Attrs.Indexes(joinCols)
	if err != nil {
		return nil, fmt.Errorf("pl: CSet: %w", err)
	}
	chk := core.Check{EC: ec}
	fanout := make(map[string]int, len(r2.Tuples))
	for _, t := range r2.Tuples {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		fanout[t.Vals.KeyAt(idx2)]++
	}
	var out []int
	for i, t := range r1.Tuples {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		if t.P < 1 && fanout[t.Vals.KeyAt(idx1)] >= 2 {
			out = append(out, i)
		}
	}
	return out, nil
}

// joinShape is the compiled schema arithmetic shared by the serial and
// parallel join paths.
type joinShape struct {
	idx1, idx2 []int
	outAttrs   tuple.Schema
	rest2      []int
}

func compileJoin(r1, r2 *Relation) (joinShape, error) {
	shared := r1.Attrs.Shared(r2.Attrs)
	idx1, err := r1.Attrs.Indexes(shared)
	if err != nil {
		return joinShape{}, err
	}
	idx2, err := r2.Attrs.Indexes(shared)
	if err != nil {
		return joinShape{}, err
	}
	outAttrs := r1.Attrs.Clone()
	var rest2 []int
	for j, a := range r2.Attrs {
		if r1.Attrs.Index(a) < 0 {
			outAttrs = append(outAttrs, a)
			rest2 = append(rest2, j)
		}
	}
	return joinShape{idx1: idx1, idx2: idx2, outAttrs: outAttrs, rest2: rest2}, nil
}

// joinTuple combines one matching pair per Definition 5.13; needGate is true
// for symbolic×symbolic pairs, whose And node the (serial) caller must
// allocate.
func joinTuple(t1, t2 Tuple, rest2 []int) (nt Tuple, needGate bool) {
	vals := t1.Vals.Concat(t2.Vals.Project(rest2))
	switch {
	case t1.Lin == aonet.Epsilon && t2.Lin == aonet.Epsilon:
		return Tuple{Vals: vals, P: t1.P * t2.P, Lin: aonet.Epsilon}, false
	case t2.Lin == aonet.Epsilon:
		return Tuple{Vals: vals, P: t1.P * t2.P, Lin: t1.Lin}, false
	case t1.Lin == aonet.Epsilon:
		return Tuple{Vals: vals, P: t1.P * t2.P, Lin: t2.Lin}, false
	default:
		return Tuple{Vals: vals, P: 1}, true
	}
}

// andEdges returns the And-gate edges of a symbolic×symbolic join pair.
func andEdges(t1, t2 Tuple) []aonet.Edge {
	return []aonet.Edge{
		{From: t1.Lin, P: t1.P},
		{From: t2.Lin, P: t2.P},
	}
}

// JoinCtx is Join with cancellation and budget checks; with an ExecContext
// granting parallelism > 1 the hash table is partitioned by join-key hash
// and built/probed on a worker pool, with a deterministic serial merge that
// allocates And nodes in probe order. The result is identical to the serial
// join, node IDs included.
func JoinCtx(ec *core.ExecContext, r1, r2 *Relation, net *aonet.Network) (*Relation, error) {
	sh, err := compileJoin(r1, r2)
	if err != nil {
		return nil, err
	}
	nodes0 := net.Len()
	var out *Relation
	if ec.MemBudget() > 0 {
		// Bounded-memory execution (docs/SPILL.md): partitioned spill join,
		// byte-identical to the serial join at any positive budget.
		out, err = joinSpill(ec, r1, r2, net, sh)
	} else if w := workersFor(ec, len(r1.Tuples)+len(r2.Tuples)); w > 1 {
		out, err = joinParallel(ec, w, r1, r2, net, sh)
	} else {
		out, err = joinSerial(ec, r1, r2, net, sh)
	}
	if err != nil {
		return nil, err
	}
	if err := ec.ChargeNodes(net.Len() - nodes0); err != nil {
		return nil, err
	}
	return out, nil
}

func joinSerial(ec *core.ExecContext, r1, r2 *Relation, net *aonet.Network, sh joinShape) (*Relation, error) {
	chk := core.Check{EC: ec}
	charge := rowCharger{ec: ec}
	buckets := getJoinBuckets(ec)
	defer putJoinBuckets(ec, buckets)
	for j, t := range r2.Tuples {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		k := t.Vals.KeyAt(sh.idx2)
		buckets[k] = append(buckets[k], int32(j))
	}
	out := &Relation{Attrs: sh.outAttrs}
	for _, t1 := range r1.Tuples {
		for _, j := range buckets[t1.Vals.KeyAt(sh.idx1)] {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			t2 := r2.Tuples[j]
			nt, needGate := joinTuple(t1, t2, sh.rest2)
			if needGate {
				nt.Lin = net.AddGate(aonet.And, andEdges(t1, t2))
			}
			if err := charge.add(1); err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, nt)
		}
	}
	if err := charge.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// pendingJoin is one matched pair materialized by a worker, waiting for the
// serial merge to (possibly) allocate its And node.
type pendingJoin struct {
	t        Tuple
	j        int32 // r2 index, for gate edges
	needGate bool
}

// partStat is one partition's trace measurement, filled by the owning
// worker and recorded afterwards by the coordinating goroutine — workers
// never touch the trace sink, so span order is deterministic (ascending
// partition index) regardless of scheduling.
type partStat struct {
	rows int
	dur  time.Duration
}

// recordPartitions emits one sub-span per partition under the currently
// open operator span, in partition order. kind is "join.partition" or
// "project.partition"; the sub-spans are measurements nested inside the
// parent operator (their time is included in the parent's own time, unlike
// FinishOp children).
func recordPartitions(ec *core.ExecContext, kind string, parts []partStat) {
	if !ec.Tracing() {
		return
	}
	for p := range parts {
		ec.RecordSubOp(core.OpStat{
			Op:   fmt.Sprintf("partition %d/%d", p, len(parts)),
			Kind: kind,
			Rows: parts[p].rows,
			Time: parts[p].dur,
		})
	}
}

func joinParallel(ec *core.ExecContext, w int, r1, r2 *Relation, net *aonet.Network, sh joinShape) (*Relation, error) {
	keys1, err := parallelKeys(ec, w, r1.Tuples, sh.idx1)
	if err != nil {
		return nil, err
	}
	defer putKeySlice(ec, keys1)
	keys2, err := parallelKeys(ec, w, r2.Tuples, sh.idx2)
	if err != nil {
		return nil, err
	}
	defer putKeySlice(ec, keys2)
	// Each partition owns the keys hashing to it: it builds that slice of
	// the hash table from r2 and probes it with its share of r1. pending is
	// indexed by r1 position; each entry is written by exactly one worker.
	pending := make([][]pendingJoin, len(r1.Tuples))
	parts := make([]partStat, w)
	err = runWorkers(w, func(p int) error {
		start := time.Now()
		chk := core.Check{EC: ec}
		buckets := getJoinBuckets(ec)
		defer putJoinBuckets(ec, buckets)
		for j, k := range keys2 {
			if hashPart(k, w) != p {
				continue
			}
			if err := chk.Tick(); err != nil {
				return err
			}
			buckets[k] = append(buckets[k], int32(j))
		}
		for i, k := range keys1 {
			if hashPart(k, w) != p {
				continue
			}
			if err := chk.Tick(); err != nil {
				return err
			}
			matches := buckets[k]
			if len(matches) == 0 {
				continue
			}
			t1 := r1.Tuples[i]
			row := make([]pendingJoin, 0, len(matches))
			for _, j := range matches {
				nt, needGate := joinTuple(t1, r2.Tuples[j], sh.rest2)
				row = append(row, pendingJoin{t: nt, j: j, needGate: needGate})
			}
			pending[i] = row
			parts[p].rows += len(row)
		}
		parts[p].dur = time.Since(start)
		return nil
	})
	if err != nil {
		return nil, err
	}
	recordPartitions(ec, "join.partition", parts)
	// Serial merge in probe order: identical tuple order and And-node
	// allocation order to joinSerial.
	out := &Relation{Attrs: sh.outAttrs}
	charge := rowCharger{ec: ec}
	for i := range r1.Tuples {
		for _, pj := range pending[i] {
			nt := pj.t
			if pj.needGate {
				nt.Lin = net.AddGate(aonet.And, andEdges(r1.Tuples[i], r2.Tuples[pj.j]))
			}
			if err := charge.add(1); err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, nt)
		}
	}
	if err := charge.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// parallelKeys materializes the grouping key of every tuple (KeyAt(idx), or
// the full Key when idx is nil) on w workers over contiguous chunks.
func parallelKeys(ec *core.ExecContext, w int, tuples []Tuple, idx []int) ([]string, error) {
	keys := getKeySlice(ec, len(tuples))
	if len(tuples) == 0 {
		return keys, nil
	}
	chunk := (len(tuples) + w - 1) / w
	err := runWorkers(w, func(p int) error {
		lo := p * chunk
		hi := lo + chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		chk := core.Check{EC: ec}
		for i := lo; i < hi; i++ {
			if err := chk.Tick(); err != nil {
				return err
			}
			if idx == nil {
				keys[i] = tuples[i].Vals.Key()
			} else {
				keys[i] = tuples[i].Vals.KeyAt(idx)
			}
		}
		return nil
	})
	if err != nil {
		// Return the pooled slice before surfacing the error — losing it
		// here would leak a checkout (the caller only puts what it got).
		putKeySlice(ec, keys)
		return nil, err
	}
	return keys, nil
}

// DedupCtx is Dedup with cancellation and budget checks; with parallelism
// the value-grouping hash table is partitioned by key hash across a worker
// pool, and a serial merge walks the input in first-occurrence order,
// allocating Or nodes exactly as the sequential operator does.
func DedupCtx(ec *core.ExecContext, r *Relation, net *aonet.Network) (*Relation, error) {
	nodes0 := net.Len()
	var out *Relation
	var err error
	if ec.MemBudget() > 0 {
		// Bounded-memory execution (docs/SPILL.md): partitioned spill dedup,
		// byte-identical to the serial dedup at any positive budget.
		out, err = dedupSpill(ec, r.Attrs, r.Iter(), net)
	} else if w := workersFor(ec, len(r.Tuples)); w > 1 {
		out, err = dedupParallel(ec, w, r, net)
	} else {
		out, err = dedupSerial(ec, r, net)
	}
	if err != nil {
		return nil, err
	}
	if err := ec.ChargeNodes(net.Len() - nodes0); err != nil {
		return nil, err
	}
	if err := ec.ChargeRows(out.Len()); err != nil {
		return nil, err
	}
	return out, nil
}

func dedupSerial(ec *core.ExecContext, r *Relation, net *aonet.Network) (*Relation, error) {
	out := &Relation{Attrs: r.Attrs.Clone()}
	groups := getDedupGroups(ec)
	defer putDedupGroups(ec, groups)
	var order []string
	chk := core.Check{EC: ec}
	for i, t := range r.Tuples {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		k := t.Vals.Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		emitDedupGroup(out, r, groups[k], net)
	}
	return out, nil
}

// emitDedupGroup appends one deduplicated group per Section 5.3.2.
func emitDedupGroup(out *Relation, r *Relation, members []int, net *aonet.Network) {
	if len(members) == 1 {
		out.Tuples = append(out.Tuples, r.Tuples[members[0]])
		return
	}
	edges := make([]aonet.Edge, 0, len(members))
	for _, i := range members {
		edges = append(edges, aonet.Edge{From: r.Tuples[i].Lin, P: r.Tuples[i].P})
	}
	lin := net.AddGate(aonet.Or, edges)
	out.Tuples = append(out.Tuples, Tuple{Vals: r.Tuples[members[0]].Vals, P: 1, Lin: lin})
}

func dedupParallel(ec *core.ExecContext, w int, r *Relation, net *aonet.Network) (*Relation, error) {
	keys, err := parallelKeys(ec, w, r.Tuples, nil)
	if err != nil {
		return nil, err
	}
	defer putKeySlice(ec, keys)
	// Each partition groups the tuples whose key hashes to it. A group's
	// members are recorded (ascending) under the group's first input index,
	// so the merge can walk the input once in order: firstOf[i] is non-nil
	// iff tuple i opens a group. Groups are wholly owned by one partition,
	// so workers write disjoint entries.
	firstOf := make([][]int, len(r.Tuples))
	parts := make([]partStat, w)
	err = runWorkers(w, func(p int) error {
		start := time.Now()
		chk := core.Check{EC: ec}
		groups := getPartGroups(ec) // key -> first index
		defer putPartGroups(ec, groups)
		for i, k := range keys {
			if hashPart(k, w) != p {
				continue
			}
			if err := chk.Tick(); err != nil {
				return err
			}
			first, ok := groups[k]
			if !ok {
				groups[k] = i
				first = i
			}
			firstOf[first] = append(firstOf[first], i)
		}
		parts[p].rows = len(groups)
		parts[p].dur = time.Since(start)
		return nil
	})
	if err != nil {
		return nil, err
	}
	recordPartitions(ec, "project.partition", parts)
	out := &Relation{Attrs: r.Attrs.Clone()}
	chk := core.Check{EC: ec}
	for i := range r.Tuples {
		if firstOf[i] == nil {
			continue
		}
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		emitDedupGroup(out, r, firstOf[i], net)
	}
	return out, nil
}

// ProjectCtx is Project (IndProject then Dedup) over an ExecContext.
func ProjectCtx(ec *core.ExecContext, r *Relation, cols []string, net *aonet.Network) (*Relation, error) {
	ind, err := IndProjectCtx(ec, r, cols)
	if err != nil {
		return nil, err
	}
	return DedupCtx(ec, ind, net)
}

// ProjectStreamCtx is ProjectCtx over a tuple stream: independent project
// consumes the iterator directly, then the deduplication stage runs on the
// (already reduced) grouped output. Byte-identical to ProjectCtx on the
// materialized input.
func ProjectStreamCtx(ec *core.ExecContext, attrs tuple.Schema, it Iterator, cols []string, net *aonet.Network) (*Relation, error) {
	ind, err := IndProjectStreamCtx(ec, attrs, it, cols)
	if err != nil {
		return nil, err
	}
	return DedupCtx(ec, ind, net)
}

// SafeJoinCtx is SafeJoin over an ExecContext: cSets and conditioning are
// checked and charged, and the join runs through JoinCtx (parallel when the
// context grants workers).
func SafeJoinCtx(ec *core.ExecContext, r1, r2 *Relation, net *aonet.Network) (*Relation, int, error) {
	shared := r1.Attrs.Shared(r2.Attrs)
	c1, err := CSetCtx(ec, r1, r2, shared)
	if err != nil {
		return nil, 0, err
	}
	c2, err := CSetCtx(ec, r2, r1, shared)
	if err != nil {
		return nil, 0, err
	}
	if len(c1) > 0 {
		r1 = r1.Clone()
		for _, i := range c1 {
			if err := CondCtx(ec, r1, i, net); err != nil {
				return nil, 0, err
			}
		}
	}
	if len(c2) > 0 {
		r2 = r2.Clone()
		for _, i := range c2 {
			if err := CondCtx(ec, r2, i, net); err != nil {
				return nil, 0, err
			}
		}
	}
	joined, err := JoinCtx(ec, r1, r2, net)
	if err != nil {
		return nil, 0, err
	}
	return joined, len(c1) + len(c2), nil
}
