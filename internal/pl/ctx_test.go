package pl

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/tuple"
)

// Tests for the context-aware operator variants: parallel Join/Dedup must be
// byte-identical to the serial operators (networks compared through aonet's
// canonical encoding), and cancellation/budget errors must surface promptly.

// randomWideRelation builds a relation large enough to engage the parallel
// paths (>= parallelMinRows), with a small key domain in column 0 so joins
// fan out and dedup groups collide, and a mix of trivial and symbolic
// lineages so And/Or gates are actually allocated.
func randomWideRelation(rng *rand.Rand, net *aonet.Network, attrs tuple.Schema, n, keyDomain int) *Relation {
	leaves := make([]aonet.NodeID, 16)
	for i := range leaves {
		leaves[i] = net.AddLeaf(rng.Float64())
	}
	r := &Relation{Attrs: attrs}
	for i := 0; i < n; i++ {
		vals := make(tuple.Tuple, len(attrs))
		vals[0] = tuple.Int(int64(rng.Intn(keyDomain)))
		for j := 1; j < len(vals); j++ {
			vals[j] = tuple.Int(int64(rng.Intn(64)))
		}
		t := Tuple{Vals: vals, P: rng.Float64(), Lin: aonet.Epsilon}
		if rng.Intn(2) == 0 {
			t.Lin = leaves[rng.Intn(len(leaves))]
		}
		if rng.Intn(5) == 0 {
			t.P = 1
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

func encodeNet(t *testing.T, net *aonet.Network) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := net.Encode(&b); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b.Bytes()
}

func sameRelation(a, b *Relation) bool {
	if len(a.Attrs) != len(b.Attrs) || a.Len() != b.Len() {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Tuples {
		x, y := a.Tuples[i], b.Tuples[i]
		if !x.Vals.Equal(y.Vals) || x.P != y.P || x.Lin != y.Lin {
			return false
		}
	}
	return true
}

func parallelEC(workers int) *core.ExecContext {
	return core.NewExecContext(context.Background(), core.ExecConfig{Parallelism: workers})
}

// TestQuickJoinParallelIdentical: JoinCtx with a worker pool produces the
// same relation and the same network — node IDs, hash-consing behavior and
// all — as the serial join. The serial and parallel runs regenerate their
// inputs from the same seed, so the comparison covers every byte.
func TestQuickJoinParallelIdentical(t *testing.T) {
	run := func(seed int64, ec *core.ExecContext) (*Relation, []byte, error) {
		rng := rand.New(rand.NewSource(seed))
		net := aonet.New()
		r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 200, 40)
		r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 200, 40)
		out, err := JoinCtx(ec, r1, r2, net)
		if err != nil {
			return nil, nil, err
		}
		return out, encodeNet(t, net), nil
	}
	f := func(seed int64) bool {
		serial, serialNet, err := run(seed, nil)
		if err != nil {
			t.Logf("serial join: %v", err)
			return false
		}
		for _, w := range []int{2, 3, 8} {
			par, parNet, err := run(seed, parallelEC(w))
			if err != nil {
				t.Logf("parallel join (w=%d): %v", w, err)
				return false
			}
			if !sameRelation(serial, par) || !bytes.Equal(serialNet, parNet) {
				t.Logf("parallel join (w=%d) diverged from serial", w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestQuickDedupParallelIdentical: parallel DedupCtx allocates Or nodes in
// the exact first-occurrence order of the serial operator.
func TestQuickDedupParallelIdentical(t *testing.T) {
	run := func(seed int64, ec *core.ExecContext) (*Relation, []byte, error) {
		rng := rand.New(rand.NewSource(seed))
		net := aonet.New()
		r := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 400, 12)
		out, err := DedupCtx(ec, r, net)
		if err != nil {
			return nil, nil, err
		}
		return out, encodeNet(t, net), nil
	}
	f := func(seed int64) bool {
		serial, serialNet, err := run(seed, nil)
		if err != nil {
			t.Logf("serial dedup: %v", err)
			return false
		}
		for _, w := range []int{2, 5, 8} {
			par, parNet, err := run(seed, parallelEC(w))
			if err != nil {
				t.Logf("parallel dedup (w=%d): %v", w, err)
				return false
			}
			if !sameRelation(serial, par) || !bytes.Equal(serialNet, parNet) {
				t.Logf("parallel dedup (w=%d) diverged from serial", w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestQuickSafeJoinCtxIdentical: the full conditioned join is deterministic
// under parallelism too (cSets, conditioning order and the join itself).
func TestQuickSafeJoinCtxIdentical(t *testing.T) {
	run := func(seed int64, ec *core.ExecContext) (*Relation, int, []byte, error) {
		rng := rand.New(rand.NewSource(seed))
		net := aonet.New()
		r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 150, 30)
		r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 150, 30)
		out, cond, err := SafeJoinCtx(ec, r1, r2, net)
		if err != nil {
			return nil, 0, nil, err
		}
		return out, cond, encodeNet(t, net), nil
	}
	f := func(seed int64) bool {
		serial, condS, serialNet, err := run(seed, nil)
		if err != nil {
			t.Logf("serial SafeJoin: %v", err)
			return false
		}
		par, condP, parNet, err := run(seed, parallelEC(4))
		if err != nil {
			t.Logf("parallel SafeJoin: %v", err)
			return false
		}
		return condS == condP && sameRelation(serial, par) && bytes.Equal(serialNet, parNet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestJoinCtxCancellation: a cancelled context surfaces as context.Canceled
// from both the serial and the parallel join within one check interval (the
// inputs are a few check intervals long, so the poll must fire).
func TestJoinCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := aonet.New()
	r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 4*core.CheckInterval, 40)
	r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 4*core.CheckInterval, 40)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ec := core.NewExecContext(ctx, core.ExecConfig{Parallelism: workers})
		if _, err := JoinCtx(ec, r1, r2, net); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: JoinCtx err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestDedupCtxCancellation: same for Dedup.
func TestDedupCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := aonet.New()
	r := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 4*core.CheckInterval, 20)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ec := core.NewExecContext(ctx, core.ExecConfig{Parallelism: workers})
		if _, err := DedupCtx(ec, r, net); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: DedupCtx err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestJoinCtxRowBudget: a join that would emit more rows than the budget
// fails with ErrRowBudget instead of materializing the blow-up.
func TestJoinCtxRowBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := aonet.New()
	r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 2000, 4)
	r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 2000, 4)
	ec := core.NewExecContext(context.Background(), core.ExecConfig{Budget: core.Budget{Rows: 100}})
	if _, err := JoinCtx(ec, r1, r2, net); !errors.Is(err, core.ErrRowBudget) {
		t.Errorf("JoinCtx err = %v, want ErrRowBudget", err)
	}
}

// TestDedupCtxNodeBudget: Or-node growth during dedup is charged against the
// node budget.
func TestDedupCtxNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := aonet.New()
	r := randomWideRelation(rng, net, tuple.Schema{"a"}, 400, 8)
	ec := core.NewExecContext(context.Background(), core.ExecConfig{Budget: core.Budget{Nodes: 2}})
	if _, err := DedupCtx(ec, r, net); !errors.Is(err, core.ErrNodeBudget) {
		t.Errorf("DedupCtx err = %v, want ErrNodeBudget", err)
	}
}

// TestSelectCtxCancellation: even the cheapest operator polls the context.
func TestSelectCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := aonet.New()
	r := randomWideRelation(rng, net, tuple.Schema{"a"}, 2*core.CheckInterval, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := core.NewExecContext(ctx, core.ExecConfig{})
	_, err := SelectCtx(ec, r, func(tuple.Tuple) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("SelectCtx err = %v, want context.Canceled", err)
	}
}
