package pl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/aonet"
	"repro/internal/tuple"
)

// This file provides exhaustive evaluation of the distribution a
// pL-relation represents (Eq. 5 / Definition 5.2). It exists so the test
// suite can check the operator implementations directly against the
// possible-worlds semantics of Definition 2.1: an operator is correct when
// the distribution of its output equals the pushforward of its input
// distribution under the deterministic operator. Everything here is
// exponential and intended for small test instances only.

// maxEnumBits bounds 2^(network nodes + tuples) enumeration.
const maxEnumBits = 22

// WorldKey returns a canonical key for a set of tuples: sorted distinct
// value keys joined. Two tuple multisets with the same distinct values get
// the same key (worlds are sets).
func WorldKey(ts []tuple.Tuple) string {
	keys := make([]string, 0, len(ts))
	seen := make(map[string]bool, len(ts))
	for _, t := range ts {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "#")
}

// DistributionMapped enumerates the distribution represented by r
// (Definition 5.2) and pushes each world through f, returning the resulting
// distribution keyed by WorldKey. With the identity transform it yields the
// distribution of r itself.
func DistributionMapped(r *Relation, net *aonet.Network, f func([]tuple.Tuple) []tuple.Tuple) (map[string]float64, error) {
	return jointMapped([]*Relation{r}, net, func(worlds [][]tuple.Tuple) []tuple.Tuple {
		return f(worlds[0])
	})
}

// Distribution returns the distribution represented by r, keyed by WorldKey.
func Distribution(r *Relation, net *aonet.Network) (map[string]float64, error) {
	return DistributionMapped(r, net, func(ts []tuple.Tuple) []tuple.Tuple { return ts })
}

// JointDistributionMapped enumerates the joint distribution of r1 and r2
// (which share the network and may be correlated through it) and pushes each
// pair of worlds through f.
func JointDistributionMapped(r1, r2 *Relation, net *aonet.Network, f func(w1, w2 []tuple.Tuple) []tuple.Tuple) (map[string]float64, error) {
	return jointMapped([]*Relation{r1, r2}, net, func(worlds [][]tuple.Tuple) []tuple.Tuple {
		return f(worlds[0], worlds[1])
	})
}

func jointMapped(rels []*Relation, net *aonet.Network, f func([][]tuple.Tuple) []tuple.Tuple) (map[string]float64, error) {
	// Only the ancestors of the tuples' lineage nodes influence the
	// distribution; the rest of the network marginalizes to one. The
	// ancestor set is parent-closed, so the restricted product of CPDs is a
	// valid joint over it.
	relSet := make(map[aonet.NodeID]bool)
	var relevant []aonet.NodeID
	for _, r := range rels {
		for _, t := range r.Tuples {
			for _, v := range net.Ancestors(t.Lin) {
				if !relSet[v] {
					relSet[v] = true
					relevant = append(relevant, v)
				}
			}
		}
	}
	sort.Slice(relevant, func(i, j int) bool { return relevant[i] < relevant[j] })
	nNodes := len(relevant)
	total := 0
	for _, r := range rels {
		total += len(r.Tuples)
	}
	if nNodes+total > maxEnumBits {
		return nil, fmt.Errorf("pl: %d relevant nodes + %d tuples exceeds enumeration limit %d", nNodes, total, maxEnumBits)
	}
	out := make(map[string]float64)
	z := make([]bool, net.Len())
	worlds := make([][]tuple.Tuple, len(rels))
	for zMask := 0; zMask < 1<<uint(nNodes); zMask++ {
		for i, v := range relevant {
			z[v] = zMask&(1<<uint(i)) != 0
		}
		nz := 1.0
		for _, v := range relevant {
			pt := net.CondProbTrue(v, z)
			if z[v] {
				nz *= pt
			} else {
				nz *= 1 - pt
			}
			if nz == 0 {
				break
			}
		}
		if nz == 0 {
			continue
		}
		// Conditional presence probability of each tuple slot given z.
		var probs []float64
		for _, r := range rels {
			for _, t := range r.Tuples {
				p := t.P
				if !z[t.Lin] {
					p = 0
				}
				probs = append(probs, p)
			}
		}
		for wMask := 0; wMask < 1<<uint(total); wMask++ {
			w := nz
			for b := 0; b < total; b++ {
				if wMask&(1<<uint(b)) != 0 {
					w *= probs[b]
				} else {
					w *= 1 - probs[b]
				}
				if w == 0 {
					break
				}
			}
			if w == 0 {
				continue
			}
			// Materialize the per-relation worlds.
			b := 0
			for ri, r := range rels {
				worlds[ri] = worlds[ri][:0]
				for _, t := range r.Tuples {
					if wMask&(1<<uint(b)) != 0 {
						worlds[ri] = append(worlds[ri], t.Vals)
					}
					b++
				}
			}
			out[WorldKey(f(worlds))] += w
		}
	}
	return out, nil
}

// ProjectWorld is the deterministic projection of a world: the set of
// projected tuples (duplicates collapse via WorldKey downstream).
func ProjectWorld(ts []tuple.Tuple, idx []int) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Project(idx))
	}
	return out
}

// JoinWorlds is the deterministic natural join of two worlds given the join
// attribute positions on each side and the positions of the right-hand
// non-shared attributes.
func JoinWorlds(w1, w2 []tuple.Tuple, idx1, idx2, rest2 []int) []tuple.Tuple {
	buckets := make(map[string][]tuple.Tuple)
	for _, t := range w2 {
		k := t.KeyAt(idx2)
		buckets[k] = append(buckets[k], t)
	}
	var out []tuple.Tuple
	for _, t1 := range w1 {
		for _, t2 := range buckets[t1.KeyAt(idx1)] {
			out = append(out, t1.Concat(t2.Project(rest2)))
		}
	}
	return out
}

// MarginalProb returns, for each distinct tuple value of r, the marginal
// probability that some tuple with that value is present — computed by
// exhaustive enumeration. Used to validate the engine's final probabilities.
func MarginalProb(r *Relation, net *aonet.Network) (map[string]float64, error) {
	dist, err := Distribution(r, net)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, i := range r.sortTupleIndexes() {
		k := r.Tuples[i].Vals.Key()
		if _, ok := out[k]; ok {
			continue
		}
		total := 0.0
		for wk, p := range dist {
			if worldContains(wk, k) {
				total += p
			}
		}
		out[k] = total
	}
	return out, nil
}

func worldContains(worldKey, tupleKey string) bool {
	for _, part := range strings.Split(worldKey, "#") {
		if part == tupleKey {
			return true
		}
	}
	return false
}
