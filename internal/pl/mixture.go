package pl

import (
	"fmt"

	"repro/internal/aonet"
	"repro/internal/tuple"
)

// This file implements the mixture-of-independent-relations view of
// pL-relations (Section 5.2): a pL-relation is a convex combination of
// independent relations, one per assignment of the AND-OR network's
// variables. The standard mixture follows Definition 5.2 directly;
// Proposition 5.6 gives a smaller mixture when probability-1 tuples'
// lineage nodes can be folded into the tuples themselves. These are
// analysis/verification constructs (exponential in the network size), used
// to state and test the paper's soundness arguments; the engine never
// materializes them.

// Mixture is a convex combination of independent relations over the tuple
// slots of one pL-relation: component i has weight Weights[i] and gives slot
// t presence probability Probs[i][t] (Eq. 6).
type Mixture struct {
	Weights []float64
	Probs   [][]float64
}

// Validate checks convexity and probability ranges.
func (m *Mixture) Validate() error {
	total := 0.0
	for i, w := range m.Weights {
		if w < -1e-12 {
			return fmt.Errorf("pl: mixture weight %d is negative (%g)", i, w)
		}
		total += w
		for t, p := range m.Probs[i] {
			if p < -1e-12 || p > 1+1e-12 {
				return fmt.Errorf("pl: mixture component %d slot %d probability %g", i, t, p)
			}
		}
	}
	if total < 1-1e-9 || total > 1+1e-9 {
		return fmt.Errorf("pl: mixture weights sum to %g", total)
	}
	return nil
}

// Distribution returns the distribution the mixture represents over the
// relation's worlds (Eq. 6), keyed by WorldKey. Exponential; for tests.
func (m *Mixture) Distribution(r *Relation) (map[string]float64, error) {
	n := len(r.Tuples)
	if n > maxEnumBits {
		return nil, fmt.Errorf("pl: %d tuple slots exceeds enumeration limit", n)
	}
	out := make(map[string]float64)
	world := make([]tuple.Tuple, 0, n)
	for ci, w := range m.Weights {
		if w == 0 {
			continue
		}
		probs := m.Probs[ci]
		for mask := 0; mask < 1<<uint(n); mask++ {
			weight := w
			world = world[:0]
			for t := 0; t < n; t++ {
				if mask&(1<<uint(t)) != 0 {
					weight *= probs[t]
					world = append(world, r.Tuples[t].Vals)
				} else {
					weight *= 1 - probs[t]
				}
				if weight == 0 {
					break
				}
			}
			if weight == 0 {
				continue
			}
			out[WorldKey(world)] += weight
		}
	}
	return out, nil
}

// StandardMixture materializes the standard mixture of Definition 5.2 /
// Section 5.2: one component per assignment z of the network nodes relevant
// to the relation's lineage, with weight N(z) and slot probabilities
// z_{l(t)}·p(t). Components of weight zero are dropped.
func StandardMixture(r *Relation, net *aonet.Network) (*Mixture, error) {
	relSet := make(map[aonet.NodeID]bool)
	var relevant []aonet.NodeID
	for _, t := range r.Tuples {
		for _, v := range net.Ancestors(t.Lin) {
			if !relSet[v] {
				relSet[v] = true
				relevant = append(relevant, v)
			}
		}
	}
	if len(relevant) > maxEnumBits {
		return nil, fmt.Errorf("pl: %d relevant nodes exceeds enumeration limit", len(relevant))
	}
	m := &Mixture{}
	z := make([]bool, net.Len())
	for mask := 0; mask < 1<<uint(len(relevant)); mask++ {
		for i, v := range relevant {
			z[v] = mask&(1<<uint(i)) != 0
		}
		w := 1.0
		for _, v := range relevant {
			pt := net.CondProbTrue(v, z)
			if z[v] {
				w *= pt
			} else {
				w *= 1 - pt
			}
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		probs := make([]float64, len(r.Tuples))
		for t, tp := range r.Tuples {
			if z[tp.Lin] {
				probs[t] = tp.P
			}
		}
		m.Weights = append(m.Weights, w)
		m.Probs = append(m.Probs, probs)
	}
	return m, nil
}

// Prop56Mixture materializes mixture(R, S) of Proposition 5.6: S is a set of
// slot indexes whose tuples have probability 1; their lineage nodes V_S are
// removed from the network, the mixture enumerates only the remaining
// relevant nodes, and the folded tuples take probability
// φ(z_{l(t)}=1 | z_par(l(t))) inside each component. It requires the folding
// to be well-formed: every tuple in S has probability 1, the nodes V_S have
// no children among the remaining relevant nodes, their parents lie outside
// V_S, and no tuple outside S references a node of V_S.
func Prop56Mixture(r *Relation, net *aonet.Network, s []int) (*Mixture, error) {
	inS := make(map[int]bool, len(s))
	vS := make(map[aonet.NodeID]bool, len(s))
	for _, t := range s {
		if t < 0 || t >= len(r.Tuples) {
			return nil, fmt.Errorf("pl: slot %d out of range", t)
		}
		if r.Tuples[t].P != 1 {
			return nil, fmt.Errorf("pl: Proposition 5.6 requires p(t)=1 for folded tuples (slot %d has %g)", t, r.Tuples[t].P)
		}
		inS[t] = true
		vS[r.Tuples[t].Lin] = true
	}
	for t, tp := range r.Tuples {
		if !inS[t] && vS[tp.Lin] {
			return nil, fmt.Errorf("pl: slot %d outside S references a folded node", t)
		}
	}
	for v := range vS {
		for _, e := range net.Parents(v) {
			if vS[e.From] {
				return nil, fmt.Errorf("pl: folded node %d has a folded parent", v)
			}
		}
	}
	// Relevant nodes: ancestors of every lineage node, minus V_S.
	relSet := make(map[aonet.NodeID]bool)
	var relevant []aonet.NodeID
	add := func(v aonet.NodeID) {
		for _, u := range net.Ancestors(v) {
			if !relSet[u] && !vS[u] {
				relSet[u] = true
				relevant = append(relevant, u)
			}
		}
	}
	for t, tp := range r.Tuples {
		if inS[t] {
			for _, e := range net.Parents(tp.Lin) {
				add(e.From)
			}
			continue
		}
		add(tp.Lin)
	}
	// Folded nodes must have no children among the remaining nodes.
	for _, v := range relevant {
		for _, e := range net.Parents(v) {
			if vS[e.From] {
				return nil, fmt.Errorf("pl: remaining node %d depends on folded node %d", v, e.From)
			}
		}
	}
	if len(relevant) > maxEnumBits {
		return nil, fmt.Errorf("pl: %d relevant nodes exceeds enumeration limit", len(relevant))
	}
	m := &Mixture{}
	z := make([]bool, net.Len())
	for mask := 0; mask < 1<<uint(len(relevant)); mask++ {
		for i, v := range relevant {
			z[v] = mask&(1<<uint(i)) != 0
		}
		w := 1.0
		for _, v := range relevant {
			pt := net.CondProbTrue(v, z)
			if z[v] {
				w *= pt
			} else {
				w *= 1 - pt
			}
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		probs := make([]float64, len(r.Tuples))
		for t, tp := range r.Tuples {
			if inS[t] {
				probs[t] = net.CondProbTrue(tp.Lin, z)
			} else if z[tp.Lin] {
				probs[t] = tp.P
			}
		}
		m.Weights = append(m.Weights, w)
		m.Probs = append(m.Probs, probs)
	}
	return m, nil
}
