package pl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/tuple"
)

// TestExample53 reproduces Example 5.3: with the one-node ε network, the
// pL-relation is exactly the independent relation (R, p) and its standard
// mixture has a single unit-weight component.
func TestExample53(t *testing.T) {
	net := aonet.New()
	r := &Relation{Attrs: tuple.Schema{"A"}, Tuples: []Tuple{
		{Vals: tuple.Ints(1), P: 0.6, Lin: aonet.Epsilon},
		{Vals: tuple.Ints(2), P: 0.3, Lin: aonet.Epsilon},
		{Vals: tuple.Ints(3), P: 0.5, Lin: aonet.Epsilon},
	}}
	m, err := StandardMixture(r, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Weights) != 1 || math.Abs(m.Weights[0]-1) > 1e-12 {
		t.Fatalf("standard mixture of an independent relation: %+v", m.Weights)
	}
	for i, want := range []float64{0.6, 0.3, 0.5} {
		if m.Probs[0][i] != want {
			t.Errorf("slot %d: %g, want %g", i, m.Probs[0][i], want)
		}
	}
	dist, err := m.Distribution(r)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Distribution(r, net)
	if err != nil {
		t.Fatal(err)
	}
	distEqual(t, "example 5.3", dist, direct)
}

// TestExample54 reproduces Example 5.4: with all probabilities 1, the
// pL-relation "just represents the AND-OR network" — the worlds' weights
// are the network's joint probabilities.
func TestExample54(t *testing.T) {
	net := aonet.New()
	u := net.AddLeaf(0.3)
	v := net.AddLeaf(0.8)
	w := net.AddGate(aonet.Or, []aonet.Edge{{From: u, P: 0.5}, {From: v, P: 0.5}})
	r := &Relation{Attrs: tuple.Schema{"A"}, Tuples: []Tuple{
		{Vals: tuple.Ints(1), P: 1, Lin: u},
		{Vals: tuple.Ints(2), P: 1, Lin: v},
		{Vals: tuple.Ints(3), P: 1, Lin: w},
	}}
	dist, err := Distribution(r, net)
	if err != nil {
		t.Fatal(err)
	}
	// The world {1, 3} corresponds to z = (u=1, v=0, w=1):
	// N(z) = 0.3 · 0.2 · φ(w=1|u) = 0.3·0.2·0.5 = 0.03.
	key := WorldKey([]tuple.Tuple{tuple.Ints(1), tuple.Ints(3)})
	if math.Abs(dist[key]-0.03) > 1e-12 {
		t.Errorf("ρ({1,3}) = %g, want 0.03", dist[key])
	}
}

// TestStandardMixtureEqualsDefinition checks, on random pL-relations, that
// the standard mixture's distribution equals the relation's distribution —
// the identity underpinning Proposition 5.7.
func TestStandardMixtureEqualsDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		net, r := randomPLRelation(rng, 2)
		m, err := StandardMixture(r, net)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := m.Distribution(r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Distribution(r, net)
		if err != nil {
			t.Fatal(err)
		}
		distEqual(t, "standard mixture", got, want)
	}
}

// TestProposition56 verifies the folded mixture: after deduplication the
// new Or nodes can be folded into their probability-1 tuples, and the
// resulting smaller mixture represents the same distribution.
func TestProposition56(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		net := aonet.New()
		// A dedup-shaped relation: two ε tuples merged into an Or node with
		// sub-unit weights, plus an untouched ε tuple.
		l1 := net.AddLeaf(rng.Float64())
		l2 := net.AddLeaf(rng.Float64())
		or := net.AddGate(aonet.Or, []aonet.Edge{
			{From: l1, P: rng.Float64()},
			{From: l2, P: rng.Float64()},
		})
		r := &Relation{Attrs: tuple.Schema{"A"}, Tuples: []Tuple{
			{Vals: tuple.Ints(1), P: 1, Lin: or},
			{Vals: tuple.Ints(2), P: rng.Float64(), Lin: aonet.Epsilon},
			{Vals: tuple.Ints(3), P: rng.Float64(), Lin: l1},
		}}
		folded, err := Prop56Mixture(r, net, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		if err := folded.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		standard, err := StandardMixture(r, net)
		if err != nil {
			t.Fatal(err)
		}
		if len(folded.Weights) >= len(standard.Weights) {
			t.Errorf("trial %d: folding did not shrink the mixture: %d vs %d components",
				trial, len(folded.Weights), len(standard.Weights))
		}
		got, err := folded.Distribution(r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Distribution(r, net)
		if err != nil {
			t.Fatal(err)
		}
		distEqual(t, "proposition 5.6", got, want)
	}
}

func TestProp56Preconditions(t *testing.T) {
	net := aonet.New()
	l := net.AddLeaf(0.5)
	or := net.AddGate(aonet.Or, []aonet.Edge{{From: l, P: 0.5}})
	r := &Relation{Attrs: tuple.Schema{"A"}, Tuples: []Tuple{
		{Vals: tuple.Ints(1), P: 0.7, Lin: or}, // p < 1: cannot fold
		{Vals: tuple.Ints(2), P: 1, Lin: or},
	}}
	if _, err := Prop56Mixture(r, net, []int{0}); err == nil {
		t.Error("folded a tuple with p < 1")
	}
	// Folding slot 1 while slot 0 still references the node: invalid.
	if _, err := Prop56Mixture(r, net, []int{1}); err == nil {
		t.Error("folded a node still referenced outside S")
	}
	if _, err := Prop56Mixture(r, net, []int{9}); err == nil {
		t.Error("accepted out-of-range slot")
	}
	// Folding a node whose child remains relevant: invalid.
	net2 := aonet.New()
	l2 := net2.AddLeaf(0.5)
	mid := net2.AddGate(aonet.Or, []aonet.Edge{{From: l2, P: 0.5}})
	top := net2.AddGate(aonet.Or, []aonet.Edge{{From: mid, P: 0.5}})
	r2 := &Relation{Attrs: tuple.Schema{"A"}, Tuples: []Tuple{
		{Vals: tuple.Ints(1), P: 1, Lin: mid},
		{Vals: tuple.Ints(2), P: 1, Lin: top},
	}}
	if _, err := Prop56Mixture(r2, net2, []int{0}); err == nil {
		t.Error("folded a node with a remaining child")
	}
}
