// Package pl implements relations with partial lineage (pL-relations,
// Section 5 of the paper) and the relational operators over them.
//
// A pL-relation (R, p, l, N) pairs each tuple with a probability p(t) and a
// lineage node l(t) of a shared AND-OR network N (Definition 5.2). The
// represented distribution over subsets ω ⊆ R is
//
//	ρ(ω) = Σ_z N(z) · ∏_{t∈ω} z_{l(t)}·p(t) · ∏_{t∉ω} (1 - z_{l(t)}·p(t))
//
// Tuples with the trivial lineage ε are handled purely extensionally
// (numbers); tuples pointing at real network nodes carry symbolic state. The
// operators below grow the shared network exactly as Sections 5.3.1–5.3.3
// prescribe: selection is relational selection; projection is an independent
// project followed by deduplication (Or augmentation, Theorem 5.10); joins
// require conditioning on the cSets (Definition 5.14, Theorem 5.16) and
// introduce And nodes for symbolic×symbolic matches.
package pl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aonet"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Tuple is one row of a pL-relation: values, probability, and the lineage
// node (aonet.Epsilon for trivial lineage).
type Tuple struct {
	Vals tuple.Tuple
	P    float64
	Lin  aonet.NodeID
}

// Relation is a pL-relation sharing an AND-OR network with the rest of the
// query's intermediate state. Operators treat relations as immutable and
// return new ones.
type Relation struct {
	Attrs  tuple.Schema
	Tuples []Tuple
}

// FromBase converts a tuple-independent base relation into a pL-relation
// with the given attribute names (renaming positions to query variables).
// Tuples with probability zero are dropped (they are present in no world).
func FromBase(r *relation.Relation, attrs tuple.Schema) (*Relation, error) {
	if len(attrs) != len(r.Attrs) {
		return nil, fmt.Errorf("pl: renaming %d attributes of %s to %d names", len(r.Attrs), r.Name, len(attrs))
	}
	out := &Relation{Attrs: attrs.Clone(), Tuples: make([]Tuple, 0, len(r.Rows))}
	for _, row := range r.Rows {
		if row.P == 0 {
			continue
		}
		out.Tuples = append(out.Tuples, Tuple{Vals: row.Tuple, P: row.P, Lin: aonet.Epsilon})
	}
	return out, nil
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone returns a copy sharing tuple values (immutable by convention) but
// with independent row storage.
func (r *Relation) Clone() *Relation {
	out := &Relation{Attrs: r.Attrs.Clone(), Tuples: make([]Tuple, len(r.Tuples))}
	copy(out.Tuples, r.Tuples)
	return out
}

// Select returns the tuples satisfying pred. Selection over pL-relations is
// always safe (Section 5.3.1).
func Select(r *Relation, pred func(tuple.Tuple) bool) *Relation {
	out := &Relation{Attrs: r.Attrs.Clone()}
	for _, t := range r.Tuples {
		if pred(t.Vals) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// IndProject performs the independent-project stage of Section 5.3.2:
// project onto cols but merge only tuples that share the same lineage node
// (projecting on A ∪ {l}), combining probabilities as
// p = 1 - ∏(1 - p_i). The network is not modified.
func IndProject(r *Relation, cols []string) (*Relation, error) {
	idx, err := r.Attrs.Indexes(cols)
	if err != nil {
		return nil, fmt.Errorf("pl: IndProject: %w", err)
	}
	out := &Relation{Attrs: tuple.Schema(cols).Clone()}
	type groupKey struct {
		vals string
		lin  aonet.NodeID
	}
	pos := make(map[groupKey]int)
	for _, t := range r.Tuples {
		k := groupKey{vals: t.Vals.KeyAt(idx), lin: t.Lin}
		if i, ok := pos[k]; ok {
			out.Tuples[i].P = 1 - (1-out.Tuples[i].P)*(1-t.P)
			continue
		}
		pos[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, Tuple{Vals: t.Vals.Project(idx), P: t.P, Lin: t.Lin})
	}
	return out, nil
}

// Dedup performs the deduplication stage of Section 5.3.2: tuples with equal
// values are replaced by a single tuple with probability 1 whose lineage is
// a new Or node over the group members' (lineage, probability) pairs. Groups
// of size one pass through unchanged. Theorem 5.10 shows IndProject followed
// by Dedup equals the possible-worlds projection.
func Dedup(r *Relation, net *aonet.Network) *Relation {
	out := &Relation{Attrs: r.Attrs.Clone()}
	groups := make(map[string][]int)
	var order []string
	for i, t := range r.Tuples {
		k := t.Vals.Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		members := groups[k]
		if len(members) == 1 {
			out.Tuples = append(out.Tuples, r.Tuples[members[0]])
			continue
		}
		edges := make([]aonet.Edge, 0, len(members))
		for _, i := range members {
			edges = append(edges, aonet.Edge{From: r.Tuples[i].Lin, P: r.Tuples[i].P})
		}
		lin := net.AddGate(aonet.Or, edges)
		out.Tuples = append(out.Tuples, Tuple{Vals: r.Tuples[members[0]].Vals, P: 1, Lin: lin})
	}
	return out
}

// Project is the full projection of Section 5.3.2: IndProject then Dedup.
func Project(r *Relation, cols []string, net *aonet.Network) (*Relation, error) {
	ind, err := IndProject(r, cols)
	if err != nil {
		return nil, err
	}
	return Dedup(ind, net), nil
}

// Cond conditions the relation on the tuple at index i (Section 5.3.3): its
// probability becomes 1 and its lineage a fresh leaf carrying the old
// probability. Lemma 5.12 shows the distribution is unchanged. When the
// tuple already carries non-trivial lineage, the fresh leaf is combined with
// it through a deterministic And node, which preserves the represented
// factor z_l(t)·p(t) exactly. Conditioning a tuple whose probability is
// already 1 is a no-op. The relation is modified in place.
func Cond(r *Relation, i int, net *aonet.Network) {
	t := &r.Tuples[i]
	if t.P == 1 {
		return
	}
	leaf := net.AddLeaf(t.P)
	if t.Lin == aonet.Epsilon {
		t.Lin = leaf
	} else {
		t.Lin = net.AddGate(aonet.And, []aonet.Edge{{From: t.Lin, P: 1}, {From: leaf, P: 1}})
	}
	t.P = 1
}

// CSet returns the indexes in r1 of the offending tuples with respect to a
// join with r2 (Definition 5.14): uncertain tuples (p < 1) that join two or
// more tuples of r2. joinCols names the join attributes (shared attribute
// names).
func CSet(r1, r2 *Relation, joinCols []string) ([]int, error) {
	idx1, err := r1.Attrs.Indexes(joinCols)
	if err != nil {
		return nil, fmt.Errorf("pl: CSet: %w", err)
	}
	idx2, err := r2.Attrs.Indexes(joinCols)
	if err != nil {
		return nil, fmt.Errorf("pl: CSet: %w", err)
	}
	fanout := make(map[string]int, len(r2.Tuples))
	for _, t := range r2.Tuples {
		fanout[t.Vals.KeyAt(idx2)]++
	}
	var out []int
	for i, t := range r1.Tuples {
		if t.P < 1 && fanout[t.Vals.KeyAt(idx1)] >= 2 {
			out = append(out, i)
		}
	}
	return out, nil
}

// Join computes r1 ⋈_pL r2 (Definition 5.13), the natural join on the shared
// attribute names. For tuple pairs where both lineages are non-trivial, a
// new And node over the two (lineage, probability) pairs is created and the
// output probability is 1; otherwise the probabilities multiply and the
// non-trivial lineage (if any) is inherited.
//
// Join does NOT condition its inputs; per Theorem 5.16 the caller must first
// condition both sides on their cSets for the result to obey the
// possible-worlds semantics. Use SafeJoin for the conditioned combination.
func Join(r1, r2 *Relation, net *aonet.Network) (*Relation, error) {
	shared := r1.Attrs.Shared(r2.Attrs)
	idx1, err := r1.Attrs.Indexes(shared)
	if err != nil {
		return nil, err
	}
	idx2, err := r2.Attrs.Indexes(shared)
	if err != nil {
		return nil, err
	}
	// Output schema: r1's attributes, then r2's non-shared attributes.
	outAttrs := r1.Attrs.Clone()
	var rest2 []int
	for j, a := range r2.Attrs {
		if r1.Attrs.Index(a) < 0 {
			outAttrs = append(outAttrs, a)
			rest2 = append(rest2, j)
		}
	}
	// Hash join: bucket r2 by join key.
	buckets := make(map[string][]int, len(r2.Tuples))
	for j, t := range r2.Tuples {
		k := t.Vals.KeyAt(idx2)
		buckets[k] = append(buckets[k], j)
	}
	out := &Relation{Attrs: outAttrs}
	for _, t1 := range r1.Tuples {
		for _, j := range buckets[t1.Vals.KeyAt(idx1)] {
			t2 := r2.Tuples[j]
			vals := t1.Vals.Concat(t2.Vals.Project(rest2))
			var nt Tuple
			switch {
			case t1.Lin == aonet.Epsilon && t2.Lin == aonet.Epsilon:
				nt = Tuple{Vals: vals, P: t1.P * t2.P, Lin: aonet.Epsilon}
			case t2.Lin == aonet.Epsilon:
				nt = Tuple{Vals: vals, P: t1.P * t2.P, Lin: t1.Lin}
			case t1.Lin == aonet.Epsilon:
				nt = Tuple{Vals: vals, P: t1.P * t2.P, Lin: t2.Lin}
			default:
				lin := net.AddGate(aonet.And, []aonet.Edge{
					{From: t1.Lin, P: t1.P},
					{From: t2.Lin, P: t2.P},
				})
				nt = Tuple{Vals: vals, P: 1, Lin: lin}
			}
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out, nil
}

// SafeJoin conditions both inputs on their cSets (Theorem 5.16) and then
// joins them. It returns the join result and the number of offending tuples
// conditioned, the per-operator distance from data-safety (Definition 3.4).
// The inputs are cloned, not modified.
func SafeJoin(r1, r2 *Relation, net *aonet.Network) (*Relation, int, error) {
	shared := r1.Attrs.Shared(r2.Attrs)
	c1, err := CSet(r1, r2, shared)
	if err != nil {
		return nil, 0, err
	}
	c2, err := CSet(r2, r1, shared)
	if err != nil {
		return nil, 0, err
	}
	if len(c1) > 0 {
		r1 = r1.Clone()
		for _, i := range c1 {
			Cond(r1, i, net)
		}
	}
	if len(c2) > 0 {
		r2 = r2.Clone()
		for _, i := range c2 {
			Cond(r2, i, net)
		}
	}
	joined, err := Join(r1, r2, net)
	if err != nil {
		return nil, 0, err
	}
	return joined, len(c1) + len(c2), nil
}

// Validate checks structural invariants: probabilities in [0,1], lineage
// nodes inside the network, schema well-formed.
func (r *Relation) Validate(net *aonet.Network) error {
	if err := r.Attrs.Validate(); err != nil {
		return err
	}
	for i, t := range r.Tuples {
		if math.IsNaN(t.P) || t.P < 0 || t.P > 1 {
			return fmt.Errorf("pl: tuple %d probability %v outside [0,1]", i, t.P)
		}
		if t.Lin < 0 || int(t.Lin) >= net.Len() {
			return fmt.Errorf("pl: tuple %d lineage node %d outside network", i, t.Lin)
		}
		if len(t.Vals) != len(r.Attrs) {
			return fmt.Errorf("pl: tuple %d width %d, schema width %d", i, len(t.Vals), len(r.Attrs))
		}
	}
	return nil
}

// String renders the relation for debugging.
func (r *Relation) String() string {
	s := fmt.Sprintf("%v\n", []string(r.Attrs))
	for _, t := range r.Tuples {
		lin := "ε"
		if t.Lin != aonet.Epsilon {
			lin = fmt.Sprintf("n%d", t.Lin)
		}
		s += fmt.Sprintf("  %v p=%.6g l=%s\n", t.Vals, t.P, lin)
	}
	return s
}

// sortTupleIndexes returns 0..n-1 sorted by tuple value, for canonical
// iteration in Distribution.
func (r *Relation) sortTupleIndexes() []int {
	idx := make([]int, len(r.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return r.Tuples[idx[a]].Vals.Compare(r.Tuples[idx[b]].Vals) < 0
	})
	return idx
}
