// Package pl implements relations with partial lineage (pL-relations,
// Section 5 of the paper) and the relational operators over them.
//
// A pL-relation (R, p, l, N) pairs each tuple with a probability p(t) and a
// lineage node l(t) of a shared AND-OR network N (Definition 5.2). The
// represented distribution over subsets ω ⊆ R is
//
//	ρ(ω) = Σ_z N(z) · ∏_{t∈ω} z_{l(t)}·p(t) · ∏_{t∉ω} (1 - z_{l(t)}·p(t))
//
// Tuples with the trivial lineage ε are handled purely extensionally
// (numbers); tuples pointing at real network nodes carry symbolic state. The
// operators below grow the shared network exactly as Sections 5.3.1–5.3.3
// prescribe: selection is relational selection; projection is an independent
// project followed by deduplication (Or augmentation, Theorem 5.10); joins
// require conditioning on the cSets (Definition 5.14, Theorem 5.16) and
// introduce And nodes for symbolic×symbolic matches.
package pl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aonet"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Tuple is one row of a pL-relation: values, probability, and the lineage
// node (aonet.Epsilon for trivial lineage).
type Tuple struct {
	Vals tuple.Tuple
	P    float64
	Lin  aonet.NodeID
}

// Relation is a pL-relation sharing an AND-OR network with the rest of the
// query's intermediate state. Operators treat relations as immutable and
// return new ones.
type Relation struct {
	Attrs  tuple.Schema
	Tuples []Tuple
}

// FromBase converts a tuple-independent base relation into a pL-relation
// with the given attribute names (renaming positions to query variables).
// Tuples with probability zero are dropped (they are present in no world).
func FromBase(r *relation.Relation, attrs tuple.Schema) (*Relation, error) {
	if len(attrs) != len(r.Attrs) {
		return nil, fmt.Errorf("pl: renaming %d attributes of %s to %d names", len(r.Attrs), r.Name, len(attrs))
	}
	out := &Relation{Attrs: attrs.Clone(), Tuples: make([]Tuple, 0, len(r.Rows))}
	for _, row := range r.Rows {
		if row.P == 0 {
			continue
		}
		out.Tuples = append(out.Tuples, Tuple{Vals: row.Tuple, P: row.P, Lin: aonet.Epsilon})
	}
	return out, nil
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone returns a copy sharing tuple values (immutable by convention) but
// with independent row storage.
func (r *Relation) Clone() *Relation {
	out := &Relation{Attrs: r.Attrs.Clone(), Tuples: make([]Tuple, len(r.Tuples))}
	copy(out.Tuples, r.Tuples)
	return out
}

// Select returns the tuples satisfying pred. Selection over pL-relations is
// always safe (Section 5.3.1). SelectCtx is the cancellable variant.
func Select(r *Relation, pred func(tuple.Tuple) bool) *Relation {
	out, err := SelectCtx(nil, r, pred)
	if err != nil {
		panic("pl: SelectCtx failed without a context: " + err.Error())
	}
	return out
}

// IndProject performs the independent-project stage of Section 5.3.2:
// project onto cols but merge only tuples that share the same lineage node
// (projecting on A ∪ {l}), combining probabilities as
// p = 1 - ∏(1 - p_i). The network is not modified. IndProjectCtx is the
// cancellable variant.
func IndProject(r *Relation, cols []string) (*Relation, error) {
	return IndProjectCtx(nil, r, cols)
}

// Dedup performs the deduplication stage of Section 5.3.2: tuples with equal
// values are replaced by a single tuple with probability 1 whose lineage is
// a new Or node over the group members' (lineage, probability) pairs. Groups
// of size one pass through unchanged. Theorem 5.10 shows IndProject followed
// by Dedup equals the possible-worlds projection. DedupCtx is the
// cancellable, optionally parallel variant.
func Dedup(r *Relation, net *aonet.Network) *Relation {
	out, err := DedupCtx(nil, r, net)
	if err != nil {
		panic("pl: DedupCtx failed without a context: " + err.Error())
	}
	return out
}

// Project is the full projection of Section 5.3.2: IndProject then Dedup.
// ProjectCtx is the cancellable variant.
func Project(r *Relation, cols []string, net *aonet.Network) (*Relation, error) {
	return ProjectCtx(nil, r, cols, net)
}

// Cond conditions the relation on the tuple at index i (Section 5.3.3): its
// probability becomes 1 and its lineage a node carrying the old probability.
// Lemma 5.12 shows the distribution is unchanged. For trivial lineage the
// node is a fresh leaf with P = p(t); for non-trivial lineage it is a single
// And gate with the one edge (l(t), p(t)), whose CPD φ(v=1 | x_l) = x_l·p(t)
// is exactly the represented factor z_l(t)·p(t). The one-edge encoding
// matters: a leaf-plus-And encoding costs two nodes per conditioned tuple,
// which doubles the network growth of conditioning-heavy joins (and pushed
// the possible-worlds cross-checks past their enumeration limit).
// Sub-unit edge probabilities keep the gate out of the hash-consing table,
// so repeated conditionings stay independent coins. Conditioning a tuple
// whose probability is already 1 is a no-op. The relation is modified in
// place.
func Cond(r *Relation, i int, net *aonet.Network) {
	t := &r.Tuples[i]
	if t.P == 1 {
		return
	}
	if t.Lin == aonet.Epsilon {
		t.Lin = net.AddLeaf(t.P)
	} else {
		t.Lin = net.AddGate(aonet.And, []aonet.Edge{{From: t.Lin, P: t.P}})
	}
	t.P = 1
}

// CSet returns the indexes in r1 of the offending tuples with respect to a
// join with r2 (Definition 5.14): uncertain tuples (p < 1) that join two or
// more tuples of r2. joinCols names the join attributes (shared attribute
// names). CSetCtx is the cancellable variant.
func CSet(r1, r2 *Relation, joinCols []string) ([]int, error) {
	return CSetCtx(nil, r1, r2, joinCols)
}

// Join computes r1 ⋈_pL r2 (Definition 5.13), the natural join on the shared
// attribute names. For tuple pairs where both lineages are non-trivial, a
// new And node over the two (lineage, probability) pairs is created and the
// output probability is 1; otherwise the probabilities multiply and the
// non-trivial lineage (if any) is inherited.
//
// Join does NOT condition its inputs; per Theorem 5.16 the caller must first
// condition both sides on their cSets for the result to obey the
// possible-worlds semantics. Use SafeJoin for the conditioned combination.
// JoinCtx is the cancellable, optionally parallel variant.
func Join(r1, r2 *Relation, net *aonet.Network) (*Relation, error) {
	return JoinCtx(nil, r1, r2, net)
}

// SafeJoin conditions both inputs on their cSets (Theorem 5.16) and then
// joins them. It returns the join result and the number of offending tuples
// conditioned, the per-operator distance from data-safety (Definition 3.4).
// The inputs are cloned, not modified. SafeJoinCtx is the cancellable
// variant.
func SafeJoin(r1, r2 *Relation, net *aonet.Network) (*Relation, int, error) {
	return SafeJoinCtx(nil, r1, r2, net)
}

// Validate checks structural invariants: probabilities in [0,1], lineage
// nodes inside the network, schema well-formed.
func (r *Relation) Validate(net *aonet.Network) error {
	if err := r.Attrs.Validate(); err != nil {
		return err
	}
	for i, t := range r.Tuples {
		if math.IsNaN(t.P) || t.P < 0 || t.P > 1 {
			return fmt.Errorf("pl: tuple %d probability %v outside [0,1]", i, t.P)
		}
		if t.Lin < 0 || int(t.Lin) >= net.Len() {
			return fmt.Errorf("pl: tuple %d lineage node %d outside network", i, t.Lin)
		}
		if len(t.Vals) != len(r.Attrs) {
			return fmt.Errorf("pl: tuple %d width %d, schema width %d", i, len(t.Vals), len(r.Attrs))
		}
	}
	return nil
}

// String renders the relation for debugging.
func (r *Relation) String() string {
	s := fmt.Sprintf("%v\n", []string(r.Attrs))
	for _, t := range r.Tuples {
		lin := "ε"
		if t.Lin != aonet.Epsilon {
			lin = fmt.Sprintf("n%d", t.Lin)
		}
		s += fmt.Sprintf("  %v p=%.6g l=%s\n", t.Vals, t.P, lin)
	}
	return s
}

// sortTupleIndexes returns 0..n-1 sorted by tuple value, for canonical
// iteration in Distribution.
func (r *Relation) sortTupleIndexes() []int {
	idx := make([]int, len(r.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return r.Tuples[idx[a]].Vals.Compare(r.Tuples[idx[b]].Vals) < 0
	})
	return idx
}
