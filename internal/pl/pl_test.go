package pl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// mustFromBase builds a pL-relation from rows of (values..., p).
func mustFromBase(t *testing.T, name string, attrs []string, rows []Tuple) *Relation {
	t.Helper()
	r := relation.New(name, attrs...)
	for _, row := range rows {
		if err := r.Add(row.Vals, row.P); err != nil {
			t.Fatal(err)
		}
	}
	out, err := FromBase(r, tuple.Schema(attrs))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// distEqual compares two distributions keyed by WorldKey.
func distEqual(t *testing.T, ctx string, got, want map[string]float64) {
	t.Helper()
	keys := make(map[string]bool)
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	for k := range keys {
		if math.Abs(got[k]-want[k]) > 1e-9 {
			t.Errorf("%s: world %q: got %.12f, want %.12f", ctx, k, got[k], want[k])
		}
	}
}

func TestFromBaseDropsZeroProbability(t *testing.T) {
	r := relation.New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(2), 0)
	p, err := FromBase(r, tuple.Schema{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Tuples[0].Lin != aonet.Epsilon {
		t.Errorf("FromBase = %v", p)
	}
	if _, err := FromBase(r, tuple.Schema{"x", "y"}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestSelect(t *testing.T) {
	net := aonet.New()
	r := mustFromBase(t, "R", []string{"x", "y"}, []Tuple{
		{Vals: tuple.Ints(1, 1), P: 0.5},
		{Vals: tuple.Ints(2, 1), P: 0.5},
	})
	s := Select(r, func(v tuple.Tuple) bool { return v[0] == tuple.Int(1) })
	if s.Len() != 1 || !s.Tuples[0].Vals.Equal(tuple.Ints(1, 1)) {
		t.Errorf("Select = %v", s)
	}
	if err := s.Validate(net); err != nil {
		t.Error(err)
	}
}

func TestIndProjectMergesSameLineageOnly(t *testing.T) {
	net := aonet.New()
	leaf := net.AddLeaf(0.5)
	r := &Relation{Attrs: tuple.Schema{"x", "y"}, Tuples: []Tuple{
		{Vals: tuple.Ints(1, 1), P: 0.3, Lin: aonet.Epsilon},
		{Vals: tuple.Ints(1, 2), P: 0.4, Lin: aonet.Epsilon},
		{Vals: tuple.Ints(1, 3), P: 0.5, Lin: leaf},
		{Vals: tuple.Ints(2, 1), P: 0.2, Lin: aonet.Epsilon},
	}}
	got, err := IndProject(r, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// x=1 splits into an ε-group (0.3, 0.4 merged) and a leaf group.
	if got.Len() != 3 {
		t.Fatalf("IndProject kept %d tuples: %v", got.Len(), got)
	}
	if math.Abs(got.Tuples[0].P-(1-0.7*0.6)) > 1e-12 {
		t.Errorf("merged ε probability = %g, want %g", got.Tuples[0].P, 1-0.7*0.6)
	}
	if got.Tuples[1].Lin != leaf || got.Tuples[1].P != 0.5 {
		t.Errorf("leaf-lineage tuple altered: %+v", got.Tuples[1])
	}
	if _, err := IndProject(r, []string{"nope"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestDedupCreatesOrNode(t *testing.T) {
	net := aonet.New()
	l1 := net.AddLeaf(0.5)
	r := &Relation{Attrs: tuple.Schema{"x"}, Tuples: []Tuple{
		{Vals: tuple.Ints(1), P: 0.3, Lin: aonet.Epsilon},
		{Vals: tuple.Ints(1), P: 0.7, Lin: l1},
		{Vals: tuple.Ints(2), P: 0.4, Lin: aonet.Epsilon},
	}}
	before := net.Len()
	got := Dedup(r, net)
	if got.Len() != 2 {
		t.Fatalf("Dedup kept %d tuples", got.Len())
	}
	merged := got.Tuples[0]
	if merged.P != 1 || merged.Lin == aonet.Epsilon || net.Label(merged.Lin) != aonet.Or {
		t.Errorf("merged tuple = %+v", merged)
	}
	if net.Len() != before+1 {
		t.Errorf("network grew by %d nodes, want 1", net.Len()-before)
	}
	if got.Tuples[1].P != 0.4 || got.Tuples[1].Lin != aonet.Epsilon {
		t.Errorf("singleton group altered: %+v", got.Tuples[1])
	}
	edges := net.Parents(merged.Lin)
	if len(edges) != 2 {
		t.Fatalf("Or node has %d parents", len(edges))
	}
}

// TestProjectMatchesPossibleWorlds is the direct statement of Theorem 5.10:
// the distribution of Project(R) equals the pushforward of R's distribution
// under deterministic projection, on randomized instances.
func TestProjectMatchesPossibleWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		net, r := randomPLRelation(rng, 2)
		idx := []int{0}
		want, err := DistributionMapped(r, net, func(ts []tuple.Tuple) []tuple.Tuple {
			return ProjectWorld(ts, idx)
		})
		if err != nil {
			t.Fatal(err)
		}
		proj, err := Project(r, []string{r.Attrs[0]}, net)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Distribution(proj, net)
		if err != nil {
			t.Fatal(err)
		}
		distEqual(t, "projection", got, want)
	}
}

// TestCondPreservesDistribution is Lemma 5.12 on randomized instances,
// including conditioning tuples that already carry non-trivial lineage.
func TestCondPreservesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		net, r := randomPLRelation(rng, 2)
		want, err := Distribution(r, net)
		if err != nil {
			t.Fatal(err)
		}
		c := r.Clone()
		Cond(c, rng.Intn(c.Len()), net)
		got, err := Distribution(c, net)
		if err != nil {
			t.Fatal(err)
		}
		distEqual(t, "conditioning", got, want)
	}
}

func TestCondIsNoOpOnCertainTuples(t *testing.T) {
	net := aonet.New()
	r := &Relation{Attrs: tuple.Schema{"x"}, Tuples: []Tuple{{Vals: tuple.Ints(1), P: 1, Lin: aonet.Epsilon}}}
	before := net.Len()
	Cond(r, 0, net)
	if net.Len() != before || r.Tuples[0].Lin != aonet.Epsilon {
		t.Error("Cond modified a certain tuple")
	}
}

func TestCSetDefinition(t *testing.T) {
	// Section 4.1's setting: R(x) joins S(x,y); a values with S-fanout ≥ 2
	// and p < 1 are offending.
	r := mustFromBase(t, "R", []string{"x"}, []Tuple{
		{Vals: tuple.Ints(1), P: 0.5},
		{Vals: tuple.Ints(2), P: 1}, // certain: never offending
		{Vals: tuple.Ints(3), P: 0.5},
	})
	s := mustFromBase(t, "S", []string{"x", "y"}, []Tuple{
		{Vals: tuple.Ints(1, 1), P: 0.5},
		{Vals: tuple.Ints(1, 2), P: 0.5},
		{Vals: tuple.Ints(2, 1), P: 0.5},
		{Vals: tuple.Ints(2, 2), P: 0.5},
		{Vals: tuple.Ints(3, 1), P: 0.5},
	})
	c, err := CSet(r, s, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0] != 0 {
		t.Errorf("cSet(R,S) = %v, want [0]", c)
	}
	c2, err := CSet(s, r, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2) != 0 {
		t.Errorf("cSet(S,R) = %v, want empty", c2)
	}
}

// TestSafeJoinMatchesPossibleWorlds is Theorem 5.16 on randomized pairs of
// relations sharing a network.
func TestSafeJoinMatchesPossibleWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		net, r1, r2 := randomPLPair(rng)
		shared := r1.Attrs.Shared(r2.Attrs)
		idx1, _ := r1.Attrs.Indexes(shared)
		idx2, _ := r2.Attrs.Indexes(shared)
		var rest2 []int
		for j, a := range r2.Attrs {
			if r1.Attrs.Index(a) < 0 {
				rest2 = append(rest2, j)
			}
		}
		want, err := JointDistributionMapped(r1, r2, net, func(w1, w2 []tuple.Tuple) []tuple.Tuple {
			return JoinWorlds(w1, w2, idx1, idx2, rest2)
		})
		if err != nil {
			t.Fatal(err)
		}
		joined, _, err := SafeJoin(r1, r2, net)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Distribution(joined, net)
		if err != nil {
			t.Fatal(err)
		}
		distEqual(t, "safe join", got, want)
	}
}

// TestUnconditionedJoinViolatesSemantics reproduces the only-if direction of
// Proposition 3.2: without cSet conditioning, the plain ⋈_pL of an uncertain
// fanout-2 tuple does not obey the possible-worlds semantics, while SafeJoin
// does.
func TestUnconditionedJoinViolatesSemantics(t *testing.T) {
	build := func() (*aonet.Network, *Relation, *Relation) {
		net := aonet.New()
		r := mustFromBase(t, "R", []string{"x"}, []Tuple{{Vals: tuple.Ints(1), P: 0.5}})
		s := mustFromBase(t, "S", []string{"x", "y"}, []Tuple{
			{Vals: tuple.Ints(1, 1), P: 0.6},
			{Vals: tuple.Ints(1, 2), P: 0.7},
		})
		return net, r, s
	}
	net, r, s := build()
	idx1 := []int{0}
	idx2 := []int{0}
	rest2 := []int{1}
	want, err := JointDistributionMapped(r, s, net, func(w1, w2 []tuple.Tuple) []tuple.Tuple {
		return JoinWorlds(w1, w2, idx1, idx2, rest2)
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Join(r, s, net)
	if err != nil {
		t.Fatal(err)
	}
	plainDist, err := Distribution(plain, net)
	if err != nil {
		t.Fatal(err)
	}
	diverges := false
	for k, p := range want {
		if math.Abs(plainDist[k]-p) > 1e-9 {
			diverges = true
		}
	}
	if !diverges {
		t.Error("unconditioned join unexpectedly matched possible-worlds semantics")
	}
	net2, r2, s2 := build()
	safe, conditioned, err := SafeJoin(r2, s2, net2)
	if err != nil {
		t.Fatal(err)
	}
	if conditioned != 1 {
		t.Errorf("conditioned %d tuples, want 1", conditioned)
	}
	got, err := Distribution(safe, net2)
	if err != nil {
		t.Fatal(err)
	}
	distEqual(t, "conditioned join", got, want)
}

// TestSection42Walkthrough follows the running example of Section 4.2 /
// Figure 4 numerically: conditioning R on a1, a2, joining with S, and
// projecting on y must yield partial lineage
// (b1, 0.11·r1 ∨ 0.13·r2 ∨ 0.10612) and (b2, 0.12·r1 ∨ 0.14·r2).
func TestSection42Walkthrough(t *testing.T) {
	net := aonet.New()
	r := mustFromBase(t, "R", []string{"x"}, []Tuple{
		{Vals: tuple.Ints(1), P: 0.5}, // a1: violates the FD
		{Vals: tuple.Ints(2), P: 0.6}, // a2: violates the FD
		{Vals: tuple.Ints(3), P: 0.3}, // a3
		{Vals: tuple.Ints(4), P: 0.4}, // a4
	})
	s := mustFromBase(t, "S", []string{"x", "y"}, []Tuple{
		{Vals: tuple.Ints(1, 1), P: 0.11},
		{Vals: tuple.Ints(1, 2), P: 0.12},
		{Vals: tuple.Ints(2, 1), P: 0.13},
		{Vals: tuple.Ints(2, 2), P: 0.14},
		{Vals: tuple.Ints(3, 1), P: 0.15},
		{Vals: tuple.Ints(4, 1), P: 0.16},
	})
	c, err := CSet(r, s, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 {
		t.Fatalf("cSet = %v, want the two FD violators", c)
	}
	joined, conditioned, err := SafeJoin(r, s, net)
	if err != nil {
		t.Fatal(err)
	}
	if conditioned != 2 {
		t.Errorf("conditioned = %d, want 2", conditioned)
	}
	// R ⋈ S as in the paper: symbolic tuples keep S's probability; the a3,
	// a4 rows are extensional products.
	wantJoin := map[string]struct {
		p   float64
		sym bool
	}{
		tuple.Ints(1, 1).Key(): {0.11 * 1, true},
		tuple.Ints(1, 2).Key(): {0.12 * 1, true},
		tuple.Ints(2, 1).Key(): {0.13 * 1, true},
		tuple.Ints(2, 2).Key(): {0.14 * 1, true},
		tuple.Ints(3, 1).Key(): {0.3 * 0.15, false},
		tuple.Ints(4, 1).Key(): {0.4 * 0.16, false},
	}
	if joined.Len() != len(wantJoin) {
		t.Fatalf("join has %d tuples", joined.Len())
	}
	for _, tp := range joined.Tuples {
		w := wantJoin[tp.Vals.Key()]
		if math.Abs(tp.P-w.p) > 1e-12 {
			t.Errorf("join tuple %v: p = %g, want %g", tp.Vals, tp.P, w.p)
		}
		if (tp.Lin != aonet.Epsilon) != w.sym {
			t.Errorf("join tuple %v: symbolic = %v", tp.Vals, tp.Lin != aonet.Epsilon)
		}
	}
	// π_y(R ⋈ S): IndProject merges the two ε tuples into 0.10612; Dedup
	// builds Or nodes for b1 (three parents) and b2 (two parents).
	proj, err := Project(joined, []string{"y"}, net)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 2 {
		t.Fatalf("projection has %d tuples", proj.Len())
	}
	for _, tp := range proj.Tuples {
		if tp.P != 1 || net.Label(tp.Lin) != aonet.Or {
			t.Fatalf("projected tuple %v: %+v", tp.Vals, tp)
		}
		edges := net.Parents(tp.Lin)
		var weights []float64
		for _, e := range edges {
			weights = append(weights, e.P)
		}
		switch tp.Vals.Key() {
		case tuple.Ints(1).Key(): // b1
			if len(edges) != 3 {
				t.Fatalf("b1 Or has %d parents", len(edges))
			}
			assertWeights(t, "b1", weights, []float64{0.11, 0.13, 0.10612})
		case tuple.Ints(2).Key(): // b2
			if len(edges) != 2 {
				t.Fatalf("b2 Or has %d parents", len(edges))
			}
			assertWeights(t, "b2", weights, []float64{0.12, 0.14})
		}
	}
	// The marginal probability of each projected tuple must match
	// exhaustive possible-worlds enumeration.
	marg, err := MarginalProb(proj, net)
	if err != nil {
		t.Fatal(err)
	}
	wantB1 := 1 - (1-0.5*0.11)*(1-0.6*0.13)*(1-0.10612)
	wantB2 := 1 - (1-0.5*0.12)*(1-0.6*0.14)
	if math.Abs(marg[tuple.Ints(1).Key()]-wantB1) > 1e-9 {
		t.Errorf("P(b1) = %g, want %g", marg[tuple.Ints(1).Key()], wantB1)
	}
	if math.Abs(marg[tuple.Ints(2).Key()]-wantB2) > 1e-9 {
		t.Errorf("P(b2) = %g, want %g", marg[tuple.Ints(2).Key()], wantB2)
	}
}

func assertWeights(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d weights, want %d", ctx, len(got), len(want))
	}
	used := make([]bool, len(want))
	for _, g := range got {
		found := false
		for i, w := range want {
			if !used[i] && math.Abs(g-w) < 1e-9 {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected edge weight %g (want %v)", ctx, g, want)
		}
	}
}

// randomPLRelation builds a small random pL-relation over a small random
// network.
func randomPLRelation(rng *rand.Rand, arity int) (*aonet.Network, *Relation) {
	net := aonet.New()
	for i := 0; i < 2; i++ {
		net.AddLeaf(rng.Float64())
	}
	if rng.Intn(2) == 0 {
		net.AddGate(aonet.Or, []aonet.Edge{
			{From: 1, P: rng.Float64()},
			{From: 2, P: 1},
		})
	}
	attrs := make(tuple.Schema, arity)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	// Sizes stay tiny: the possible-worlds cross-checks enumerate
	// 2^(relevant network nodes + tuple slots) worlds, and joins grow the
	// network by one node per conditioned tuple pair.
	n := 2 + rng.Intn(2)
	r := &Relation{Attrs: attrs}
	for i := 0; i < n; i++ {
		vals := make(tuple.Tuple, arity)
		for j := range vals {
			vals[j] = tuple.Int(int64(rng.Intn(2) + 1))
		}
		p := rng.Float64()
		if rng.Intn(4) == 0 {
			p = 1
		}
		r.Tuples = append(r.Tuples, Tuple{
			Vals: vals,
			P:    p,
			Lin:  aonet.NodeID(rng.Intn(net.Len())),
		})
	}
	return net, r
}

// randomPLPair builds two relations sharing a network, joinable on "a".
func randomPLPair(rng *rand.Rand) (*aonet.Network, *Relation, *Relation) {
	net, r1 := randomPLRelation(rng, 1)
	n := 2
	r2 := &Relation{Attrs: tuple.Schema{"a", "b"}}
	for i := 0; i < n; i++ {
		p := rng.Float64()
		if rng.Intn(4) == 0 {
			p = 1
		}
		r2.Tuples = append(r2.Tuples, Tuple{
			Vals: tuple.Ints(int64(rng.Intn(2)+1), int64(rng.Intn(2)+1)),
			P:    p,
			Lin:  aonet.NodeID(rng.Intn(net.Len())),
		})
	}
	return net, r1, r2
}

func TestValidate(t *testing.T) {
	net := aonet.New()
	r := &Relation{Attrs: tuple.Schema{"x"}, Tuples: []Tuple{{Vals: tuple.Ints(1), P: 0.5, Lin: aonet.Epsilon}}}
	if err := r.Validate(net); err != nil {
		t.Error(err)
	}
	bad := &Relation{Attrs: tuple.Schema{"x"}, Tuples: []Tuple{{Vals: tuple.Ints(1), P: 2, Lin: aonet.Epsilon}}}
	if err := bad.Validate(net); err == nil {
		t.Error("bad probability accepted")
	}
	bad2 := &Relation{Attrs: tuple.Schema{"x"}, Tuples: []Tuple{{Vals: tuple.Ints(1), P: 0.5, Lin: 99}}}
	if err := bad2.Validate(net); err == nil {
		t.Error("dangling lineage accepted")
	}
	bad3 := &Relation{Attrs: tuple.Schema{"x"}, Tuples: []Tuple{{Vals: tuple.Ints(1, 2), P: 0.5}}}
	if err := bad3.Validate(net); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestStringRendering(t *testing.T) {
	net := aonet.New()
	l := net.AddLeaf(0.5)
	r := &Relation{Attrs: tuple.Schema{"x"}, Tuples: []Tuple{
		{Vals: tuple.Ints(1), P: 0.5, Lin: aonet.Epsilon},
		{Vals: tuple.Ints(2), P: 1, Lin: l},
	}}
	s := r.String()
	if s == "" {
		t.Error("empty String()")
	}
}
