package pl

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Scratch pools for the hot hash-join/dedup paths. Every operator run
// allocates a grouping-key slice plus one hash table per partition; under a
// serving workload those allocations dominate the operator's cost for small
// and medium inputs. When the ExecContext grants pooling (engine Options
// NoPool unset), the maps and slices are drawn from package-level sync.Pools
// and returned cleared, so repeated evaluations reuse the grown bucket
// arrays. Outputs are byte-identical with pooling on or off — the pools only
// change where the scratch memory comes from.
//
// The pools hold the maps' internal bucket arrays, not their contents:
// every put clears the map/slice first, so no tuple data outlives its
// evaluation.

var (
	joinBucketPool = sync.Pool{New: func() any { return make(map[string][]int32) }}
	dedupGroupPool = sync.Pool{New: func() any { return make(map[string][]int) }}
	partGroupPool  = sync.Pool{New: func() any { return make(map[string]int) }}
	keySlicePool   = sync.Pool{New: func() any { return new([]string) }}
)

// poolCheckouts balances pooled scratch checkouts: every pooling get
// increments it, the matching put decrements it. It exists so leak
// regression tests can assert that every code path — including error and
// cancellation exits — returns what it borrowed; it must read zero whenever
// no operator is running.
var poolCheckouts atomic.Int64

// PoolCheckouts reports the number of pooled scratch objects currently
// checked out. Test accounting only: zero between operator runs, or the
// operators are leaking pool entries.
func PoolCheckouts() int64 { return poolCheckouts.Load() }

func getJoinBuckets(ec *core.ExecContext) map[string][]int32 {
	if ec.Pooling() {
		poolCheckouts.Add(1)
		return joinBucketPool.Get().(map[string][]int32)
	}
	return make(map[string][]int32)
}

func putJoinBuckets(ec *core.ExecContext, m map[string][]int32) {
	if ec.Pooling() {
		poolCheckouts.Add(-1)
		clear(m)
		joinBucketPool.Put(m)
	}
}

func getDedupGroups(ec *core.ExecContext) map[string][]int {
	if ec.Pooling() {
		poolCheckouts.Add(1)
		return dedupGroupPool.Get().(map[string][]int)
	}
	return make(map[string][]int)
}

func putDedupGroups(ec *core.ExecContext, m map[string][]int) {
	if ec.Pooling() {
		poolCheckouts.Add(-1)
		clear(m)
		dedupGroupPool.Put(m)
	}
}

func getPartGroups(ec *core.ExecContext) map[string]int {
	if ec.Pooling() {
		poolCheckouts.Add(1)
		return partGroupPool.Get().(map[string]int)
	}
	return make(map[string]int)
}

func putPartGroups(ec *core.ExecContext, m map[string]int) {
	if ec.Pooling() {
		poolCheckouts.Add(-1)
		clear(m)
		partGroupPool.Put(m)
	}
}

// getKeySlice returns a string slice of length n. Pooled slices are reused
// when their capacity suffices; callers overwrite every index before reading,
// so stale entries past the previous length are never observed.
//
// The checkout counter tracks non-nil slices only: putKeySlice ignores nil,
// and the n == 0 pooled path can hand back a nil slice (re-slicing a nil
// backing array), which would otherwise never be balanced by a put.
func getKeySlice(ec *core.ExecContext, n int) []string {
	if !ec.Pooling() {
		return make([]string, n)
	}
	sp := keySlicePool.Get().(*[]string)
	var s []string
	if cap(*sp) >= n {
		s = (*sp)[:n]
	} else {
		s = make([]string, n)
	}
	*sp = nil
	keySlicePool.Put(sp)
	if s != nil {
		poolCheckouts.Add(1)
	}
	return s
}

func putKeySlice(ec *core.ExecContext, s []string) {
	if !ec.Pooling() || s == nil {
		return
	}
	poolCheckouts.Add(-1)
	clear(s)
	sp := keySlicePool.Get().(*[]string)
	*sp = s
	keySlicePool.Put(sp)
}
