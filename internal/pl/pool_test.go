package pl

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/tuple"
)

func pooledEC(workers int) *core.ExecContext {
	return core.NewExecContext(context.Background(), core.ExecConfig{Parallelism: workers, Pooling: true})
}

// TestPoolingByteIdentical: Join and Dedup through pooled scratch tables
// produce the same relation and the same network as plain allocation, serial
// and parallel, across repeated runs (so later runs actually draw reused maps
// from the pools).
func TestPoolingByteIdentical(t *testing.T) {
	run := func(seed int64, ec *core.ExecContext) (*Relation, *Relation, []byte, error) {
		rng := rand.New(rand.NewSource(seed))
		net := aonet.New()
		r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 300, 30)
		r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 300, 30)
		joined, err := JoinCtx(ec, r1, r2, net)
		if err != nil {
			return nil, nil, nil, err
		}
		dedup, err := DedupCtx(ec, joined, net)
		if err != nil {
			return nil, nil, nil, err
		}
		return joined, dedup, encodeNet(t, net), nil
	}
	for seed := int64(0); seed < 6; seed++ {
		refJoin, refDedup, refNet, err := run(seed, nil)
		if err != nil {
			t.Fatalf("seed %d: unpooled run: %v", seed, err)
		}
		for _, w := range []int{1, 4} {
			// Two passes per worker count: the second one reuses maps the
			// first one returned to the pools.
			for pass := 0; pass < 2; pass++ {
				j, d, n, err := run(seed, pooledEC(w))
				if err != nil {
					t.Fatalf("seed %d w=%d pass %d: pooled run: %v", seed, w, pass, err)
				}
				if !sameRelation(refJoin, j) || !sameRelation(refDedup, d) || !bytes.Equal(refNet, n) {
					t.Errorf("seed %d w=%d pass %d: pooled run diverged from unpooled", seed, w, pass)
				}
			}
		}
	}
}
