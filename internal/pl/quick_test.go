package pl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

// Property-based checks (testing/quick) over the pL operator algebra.

// TestQuickProjectIdempotent: projecting twice onto the same columns equals
// projecting once (Dedup output has distinct values and certain groups).
func TestQuickProjectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, r := randomPLRelation(rng, 2)
		once, err := Project(r, []string{r.Attrs[0]}, net)
		if err != nil {
			return false
		}
		twice, err := Project(once, []string{r.Attrs[0]}, net)
		if err != nil {
			return false
		}
		if once.Len() != twice.Len() {
			return false
		}
		for i := range once.Tuples {
			a, b := once.Tuples[i], twice.Tuples[i]
			if !a.Vals.Equal(b.Vals) || a.P != b.P || a.Lin != b.Lin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSelectPartition: a selection and its complement partition the
// relation.
func TestQuickSelectPartition(t *testing.T) {
	f := func(seed int64, pivot int8) bool {
		rng := rand.New(rand.NewSource(seed))
		_, r := randomPLRelation(rng, 1)
		pred := func(v tuple.Tuple) bool { return v[0].AsInt() <= int64(pivot%3) }
		yes := Select(r, pred)
		no := Select(r, func(v tuple.Tuple) bool { return !pred(v) })
		return yes.Len()+no.Len() == r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCondIdempotent: conditioning the same tuple twice changes
// nothing after the first time (p becomes 1, so Cond is a no-op).
func TestQuickCondIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, r := randomPLRelation(rng, 1)
		i := rng.Intn(r.Len())
		Cond(r, i, net)
		nodes := net.Len()
		lin := r.Tuples[i].Lin
		Cond(r, i, net)
		return net.Len() == nodes && r.Tuples[i].Lin == lin && r.Tuples[i].P == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDistributionMass: every pL-relation's represented distribution
// sums to one.
func TestQuickDistributionMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, r := randomPLRelation(rng, 2)
		dist, err := Distribution(r, net)
		if err != nil {
			return false
		}
		total := 0.0
		for _, p := range dist {
			total += p
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSafeJoinMass: the distribution represented by a conditioned join
// also sums to one (closure of the representation, Prop. 5.7).
func TestQuickSafeJoinMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, r1, r2 := randomPLPair(rng)
		joined, _, err := SafeJoin(r1, r2, net)
		if err != nil {
			return false
		}
		if err := joined.Validate(net); err != nil {
			return false
		}
		dist, err := Distribution(joined, net)
		if err != nil {
			return false
		}
		total := 0.0
		for _, p := range dist {
			total += p
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickDedupPreservesMarginals: each distinct value's marginal presence
// probability is unchanged by deduplication.
func TestQuickDedupPreservesMarginals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, r := randomPLRelation(rng, 1)
		before, err := MarginalProb(r, net)
		if err != nil {
			return false
		}
		d := Dedup(r, net)
		after, err := MarginalProb(d, net)
		if err != nil {
			return false
		}
		for k, want := range before {
			if math.Abs(after[k]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
