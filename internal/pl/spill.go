package pl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/tuple"
)

// Bounded-memory execution: Grace-style spill-to-disk variants of Join and
// Dedup, engaged whenever the ExecContext carries a memory budget
// (core.Budget.Mem > 0). Inputs are drained through iterators into a fixed
// fan-out of hash partitions; every partition charges its buffered state
// against the budget through ExecContext.ChargeMem and, on overflow, flushes
// to an anonymous temp file via the codec in codec.go. The output is
// byte-identical to the serial in-memory operators at ANY positive budget —
// the budget floor documented in docs/SPILL.md bounds the peak charge, never
// correctness:
//
//   - Join: the serial join emits matched pairs in ascending (probe index i,
//     build index j). Each join key — hence each probe index that finds any
//     match — is owned by exactly one partition (hashPart over spillFanout,
//     independent of the budget), and a partition produces its matches in
//     ascending (i, j): the build side is loaded in blocks that each fit the
//     budget (arrival order, so later blocks hold strictly larger j), the
//     probe side replays in arrival order per block, and the per-block match
//     streams merge by (i, j). A final (i, j) merge across partitions
//     reconstructs the exact serial order, and the single-threaded output
//     loop allocates And gates in that order — node IDs included. Oversized
//     build groups need no recursion: block nested-loop handles a build
//     partition of any size at any budget.
//
//   - Dedup: the serial dedup emits groups in first-occurrence order with
//     members ascending. A group's key is owned by one partition; each
//     partition groups its records in memory when they fit, recurses into
//     sub-partitions (fresh hash seed per level) when they don't, and at the
//     recursion cap proceeds in memory regardless (the floor term). Group
//     streams are ordered by first-arrival index, so merging by that index
//     reconstructs first-occurrence order, and Or gates allocate in the
//     merge loop exactly as dedupSerial would.
//
// Temp files are unlinked immediately after creation, so the OS reclaims
// them even on a crash. All spill I/O errors (and the FailSpillAfter
// injection hook) surface wrapped in ErrSpill; the engine returns them with
// the partial trace like any other operator failure — a failed spill can
// abort a query but never corrupt its result.

// spillFanout is the fixed hash fan-out of a spill operator's top-level
// partitioning. It is a constant — never derived from the budget or the
// parallelism grant — so partition assignment, and therefore every
// intermediate stream, is identical at every budget.
const spillFanout = 8

// dedupSubFanout and dedupMaxDepth bound the dedup recursion: an overflowing
// partition re-partitions with a fresh hash seed up to dedupMaxDepth extra
// levels; past that it groups in memory regardless, which is where the
// documented budget floor (the largest single group) comes from.
const (
	dedupSubFanout = 4
	dedupMaxDepth  = 2
)

// spillBufSize sizes the bufio layers over spill temp files. I/O buffers are
// not charged against the memory budget (the budget governs the accounted
// operator state; see docs/SPILL.md for the floor formula).
const spillBufSize = 1 << 15

// ErrSpill wraps every spill temp-file failure (create, write, flush, seek,
// read), including injected ones. Matchable with errors.Is; the evaluation
// aborts with a partial trace, it never silently degrades.
var ErrSpill = errors.New("pl: spill I/O failure")

// spillFailAt is the fault-injection countdown: 0 disabled, n > 0 makes the
// n-th subsequent spill write fail.
var spillFailAt atomic.Int64

// FailSpillAfter arms the spill fault-injection hook: the n-th spill write
// from now on returns an injected error wrapped in ErrSpill (n = 1 fails the
// next write). n <= 0 disarms. Tests use it to prove a failed temp-file
// write surfaces a typed error with a partial trace instead of corrupting
// results; never enable it in production code.
func FailSpillAfter(n int) {
	if n <= 0 {
		spillFailAt.Store(0)
		return
	}
	spillFailAt.Store(int64(n))
}

// spillWriteGate consumes one tick of the injection countdown.
func spillWriteGate() error {
	for {
		cur := spillFailAt.Load()
		if cur == 0 {
			return nil
		}
		if spillFailAt.CompareAndSwap(cur, cur-1) {
			if cur == 1 {
				return fmt.Errorf("%w: injected temp-file write fault", ErrSpill)
			}
			return nil
		}
	}
}

// spillFile is one anonymous temp file of encoded records.
type spillFile struct {
	f     *os.File
	w     *bufio.Writer
	bytes int64
}

// The spill free list recycles anonymous temp files across spill buffers: a
// released file is truncated and reused instead of re-created, because the
// openat syscall dominates spill cost when tight budgets produce many small
// partition files. A bounded explicit list (not a sync.Pool) so reuse
// survives garbage collections; overflow beyond the cap closes the fd.
var (
	spillFreeMu sync.Mutex
	spillFree   []*spillFile
)

const spillFreeCap = 256

func newSpillFile() (*spillFile, error) {
	spillFreeMu.Lock()
	var s *spillFile
	if n := len(spillFree); n > 0 {
		s = spillFree[n-1]
		spillFree = spillFree[:n-1]
	}
	spillFreeMu.Unlock()
	if s != nil {
		if _, err := s.f.Seek(0, io.SeekStart); err == nil {
			if err := s.f.Truncate(0); err == nil {
				s.w.Reset(s.f)
				s.bytes = 0
				return s, nil
			}
		}
		// A recycled file that cannot be reset is abandoned and replaced
		// with a fresh one.
		s.f.Close()
	}
	f, err := os.CreateTemp("", "pdb-spill-*")
	if err != nil {
		return nil, fmt.Errorf("%w: create: %v", ErrSpill, err)
	}
	// Unlink immediately: the fd keeps the data alive, the name never
	// outlives the process.
	os.Remove(f.Name())
	return &spillFile{f: f, w: bufio.NewWriterSize(f, spillBufSize)}, nil
}

func (s *spillFile) write(ec *core.ExecContext, rec []byte) error {
	if err := spillWriteGate(); err != nil {
		return err
	}
	n, err := s.w.Write(rec)
	if err != nil {
		return fmt.Errorf("%w: write: %v", ErrSpill, err)
	}
	s.bytes += int64(n)
	ec.AddSpillBytes(int64(n))
	return nil
}

// reader flushes pending writes and returns a decoder positioned at the
// start of the file. Only one reader may be active per file at a time.
func (s *spillFile) reader() (*recDecoder, error) {
	if err := s.w.Flush(); err != nil {
		return nil, fmt.Errorf("%w: flush: %v", ErrSpill, err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("%w: seek: %v", ErrSpill, err)
	}
	return &recDecoder{br: bufio.NewReaderSize(s.f, spillBufSize)}, nil
}

// close releases the file back to the free list (or closes it when the list
// is full). Idempotent: the fd moves into a fresh wrapper so a double close
// can never release the same file twice.
func (s *spillFile) close() {
	if s == nil || s.f == nil {
		return
	}
	f, w := s.f, s.w
	s.f, s.w = nil, nil
	spillFreeMu.Lock()
	if len(spillFree) < spillFreeCap {
		spillFree = append(spillFree, &spillFile{f: f, w: w})
		f = nil
	}
	spillFreeMu.Unlock()
	if f != nil {
		f.Close()
	}
}

// approxValueBytes estimates a value's resident footprint for charge
// accounting. The estimates only need to be consistent — the budget bounds
// the accounted total, and the property tests assert against the same
// accounting.
func approxValueBytes(v tuple.Value) int64 {
	if v.Kind() == tuple.KindString {
		return 16 + int64(len(v.AsString()))
	}
	return 16
}

func approxTupleBytes(t Tuple) int64 {
	n := int64(40) // slice header + P + Lin + seq bookkeeping
	for _, v := range t.Vals {
		n += approxValueBytes(v)
	}
	return n
}

// ---------------------------------------------------------------------------
// Spill buffers: append-only record streams that live in memory until the
// charge hook reports the budget exceeded, then move to a temp file. Arrival
// order is preserved across the flush boundary (file contents first, then
// the still-buffered tail), which every ordering argument above relies on.

// idxBuf buffers arrival indexes (one side of a join partition).
type idxBuf struct {
	ec      *core.ExecContext
	mem     []int32
	file    *spillFile
	charged int64
	scratch []byte
	count   int
}

func (b *idxBuf) add(seq int32) error {
	b.count++
	if b.file != nil {
		// Sticky spill: once the buffer has overflowed, later records
		// stream straight to the file instead of re-accumulating heap.
		b.scratch = appendIndexRec(b.scratch[:0], seq)
		return b.file.write(b.ec, b.scratch)
	}
	b.mem = append(b.mem, seq)
	b.charged += 8
	if b.ec.ChargeMem(8) {
		return b.flush()
	}
	return nil
}

func (b *idxBuf) flush() error {
	if len(b.mem) == 0 {
		return nil
	}
	if b.file == nil {
		f, err := newSpillFile()
		if err != nil {
			return err
		}
		b.file = f
		b.ec.AddSpillPartitions(1)
	}
	for _, seq := range b.mem {
		b.scratch = appendIndexRec(b.scratch[:0], seq)
		if err := b.file.write(b.ec, b.scratch); err != nil {
			return err
		}
	}
	b.mem = b.mem[:0]
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	return nil
}

// replay streams the buffered indexes in arrival order; it may be called
// repeatedly (block nested-loop re-probes).
func (b *idxBuf) replay(f func(seq int32) error) error {
	if b.file != nil {
		d, err := b.file.reader()
		if err != nil {
			return err
		}
		for {
			kind, ok, err := d.readKind()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSpill, err)
			}
			if !ok {
				break
			}
			if kind != recKindIndex {
				return fmt.Errorf("%w: unexpected record kind in index stream", ErrSpill)
			}
			seq, err := d.readIndexRec()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSpill, err)
			}
			if err := f(seq); err != nil {
				return err
			}
		}
	}
	for _, seq := range b.mem {
		if err := f(seq); err != nil {
			return err
		}
	}
	return nil
}

func (b *idxBuf) close() {
	b.file.close()
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	b.mem = nil
}

// pairBuf buffers matched join pairs, already ordered ascending (i, j) by
// construction (probe order per build block).
type pairBuf struct {
	ec      *core.ExecContext
	mem     []pairRec
	file    *spillFile
	charged int64
	scratch []byte
	count   int
}

func (b *pairBuf) add(r pairRec) error {
	b.count++
	if b.file != nil {
		b.scratch = appendPairRec(b.scratch[:0], r)
		return b.file.write(b.ec, b.scratch)
	}
	b.mem = append(b.mem, r)
	b.charged += 8
	if b.ec.ChargeMem(8) {
		return b.flush()
	}
	return nil
}

func (b *pairBuf) flush() error {
	if len(b.mem) == 0 {
		return nil
	}
	if b.file == nil {
		f, err := newSpillFile()
		if err != nil {
			return err
		}
		b.file = f
		b.ec.AddSpillPartitions(1)
	}
	for _, r := range b.mem {
		b.scratch = appendPairRec(b.scratch[:0], r)
		if err := b.file.write(b.ec, b.scratch); err != nil {
			return err
		}
	}
	b.mem = b.mem[:0]
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	return nil
}

func (b *pairBuf) close() {
	b.file.close()
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	b.mem = nil
}

// pairIter streams pairRecs ascending (i, j).
type pairIter interface {
	next() (pairRec, bool, error)
	close()
}

// pairBufIter streams a pairBuf once: file records first, then the resident
// tail — arrival order, which for a pairBuf is ascending (i, j).
type pairBufIter struct {
	b   *pairBuf
	d   *recDecoder
	pos int
}

func (b *pairBuf) iter() (pairIter, error) {
	it := &pairBufIter{b: b}
	if b.file != nil {
		d, err := b.file.reader()
		if err != nil {
			return nil, err
		}
		it.d = d
	}
	return it, nil
}

func (it *pairBufIter) next() (pairRec, bool, error) {
	if it.d != nil {
		kind, ok, err := it.d.readKind()
		if err != nil {
			return pairRec{}, false, fmt.Errorf("%w: %v", ErrSpill, err)
		}
		if ok {
			if kind != recKindPair {
				return pairRec{}, false, fmt.Errorf("%w: unexpected record kind in pair stream", ErrSpill)
			}
			r, err := it.d.readPairRec()
			if err != nil {
				return pairRec{}, false, fmt.Errorf("%w: %v", ErrSpill, err)
			}
			return r, true, nil
		}
		it.d = nil
	}
	if it.pos < len(it.b.mem) {
		r := it.b.mem[it.pos]
		it.pos++
		return r, true, nil
	}
	return pairRec{}, false, nil
}

func (it *pairBufIter) close() { it.b.close() }

// pairMerge merges pair streams by ascending (i, j). Fan-in is small
// (spillFanout or a partition's block count), so a linear argmin scan beats
// a heap.
type pairMerge struct {
	its   []pairIter
	heads []pairRec
	live  []bool
}

func newPairMerge(its []pairIter) (*pairMerge, error) {
	m := &pairMerge{its: its, heads: make([]pairRec, len(its)), live: make([]bool, len(its))}
	for k, it := range its {
		r, ok, err := it.next()
		if err != nil {
			return nil, err
		}
		m.heads[k], m.live[k] = r, ok
	}
	return m, nil
}

func (m *pairMerge) next() (pairRec, bool, error) {
	best := -1
	for k := range m.its {
		if !m.live[k] {
			continue
		}
		if best < 0 || m.heads[k].i < m.heads[best].i ||
			(m.heads[k].i == m.heads[best].i && m.heads[k].j < m.heads[best].j) {
			best = k
		}
	}
	if best < 0 {
		return pairRec{}, false, nil
	}
	out := m.heads[best]
	r, ok, err := m.its[best].next()
	if err != nil {
		return pairRec{}, false, err
	}
	m.heads[best], m.live[best] = r, ok
	return out, true, nil
}

func (m *pairMerge) close() {
	for _, it := range m.its {
		it.close()
	}
}

// ---------------------------------------------------------------------------
// Join

// joinSpill is the bounded-memory join. See the file comment for the
// ordering argument; the result is byte-identical to joinSerial.
func joinSpill(ec *core.ExecContext, r1, r2 *Relation, net *aonet.Network, sh joinShape) (*Relation, error) {
	chk := core.Check{EC: ec}
	probe := make([]*idxBuf, spillFanout)
	build := make([]*idxBuf, spillFanout)
	for p := 0; p < spillFanout; p++ {
		probe[p] = &idxBuf{ec: ec}
		build[p] = &idxBuf{ec: ec}
	}
	defer func() {
		for p := 0; p < spillFanout; p++ {
			probe[p].close()
			build[p].close()
		}
	}()
	for j, t := range r2.Tuples {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		if err := build[hashPart(t.Vals.KeyAt(sh.idx2), spillFanout)].add(int32(j)); err != nil {
			return nil, err
		}
	}
	for i, t := range r1.Tuples {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		if err := probe[hashPart(t.Vals.KeyAt(sh.idx1), spillFanout)].add(int32(i)); err != nil {
			return nil, err
		}
	}

	parts := make([]partStat, spillFanout)
	streams := make([]pairIter, 0, spillFanout)
	closeStreams := func() {
		for _, it := range streams {
			it.close()
		}
	}
	for p := 0; p < spillFanout; p++ {
		start := time.Now()
		it, matches, err := joinSpillPartition(ec, probe[p], build[p], r1, r2, sh)
		if err != nil {
			closeStreams()
			return nil, err
		}
		streams = append(streams, it)
		parts[p] = partStat{rows: matches, dur: time.Since(start)}
	}
	recordPartitions(ec, "join.spill", parts)

	merged, err := newPairMerge(streams)
	if err != nil {
		closeStreams()
		return nil, err
	}
	defer merged.close()
	out := &Relation{Attrs: sh.outAttrs}
	charge := rowCharger{ec: ec}
	for {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		pr, ok, err := merged.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		t1, t2 := r1.Tuples[pr.i], r2.Tuples[pr.j]
		nt, needGate := joinTuple(t1, t2, sh.rest2)
		if needGate {
			nt.Lin = net.AddGate(aonet.And, andEdges(t1, t2))
		}
		if err := charge.add(1); err != nil {
			return nil, err
		}
		out.Tuples = append(out.Tuples, nt)
	}
	if err := charge.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// joinSpillPartition produces one partition's match stream, ascending (i, j),
// by block nested-loop: load build indexes into an in-memory hash table until
// the charge hook trips (always at least one), probe the partition's probe
// indexes against the block, emit (i, j) pairs into a spill-backed buffer,
// repeat for the next block, then merge the block streams. Also returns the
// partition's match count for the trace sub-span.
func joinSpillPartition(ec *core.ExecContext, probe, build *idxBuf, r1, r2 *Relation, sh joinShape) (pairIter, int, error) {
	chk := core.Check{EC: ec}
	var blocks []*pairBuf
	closeBlocks := func() {
		for _, b := range blocks {
			b.close()
		}
	}

	// Block nested-loop over the build side: each round replays the build
	// partition, skips the lo entries already consumed, and loads entries
	// into the bucket table until the charge hook trips (with at least one
	// per round, so rounds always progress). Blocks are contiguous windows
	// of the build arrival order — later blocks hold strictly larger j —
	// and nothing of the build side is resident between rounds, so the
	// bucket table is the only budget-bounded structure.
	matches := 0
	for lo := 0; ; {
		buckets := getJoinBuckets(ec)
		var blockCharge int64
		pos, loaded := 0, 0
		err := build.replay(func(j int32) error {
			if pos < lo {
				pos++
				return nil
			}
			pos++
			if err := chk.Tick(); err != nil {
				return err
			}
			k := r2.Tuples[j].Vals.KeyAt(sh.idx2)
			buckets[k] = append(buckets[k], j)
			c := int64(24 + len(k))
			blockCharge += c
			loaded++
			if ec.ChargeMem(c) {
				return errBlockSealed
			}
			return nil
		})
		sealed := errors.Is(err, errBlockSealed)
		if err != nil && !sealed {
			putJoinBuckets(ec, buckets)
			ec.ReleaseMem(blockCharge)
			closeBlocks()
			return nil, 0, err
		}
		if loaded == 0 {
			putJoinBuckets(ec, buckets)
			ec.ReleaseMem(blockCharge)
			break
		}
		bb := &pairBuf{ec: ec}
		err = probe.replay(func(i int32) error {
			if err := chk.Tick(); err != nil {
				return err
			}
			for _, j := range buckets[r1.Tuples[i].Vals.KeyAt(sh.idx1)] {
				if err := bb.add(pairRec{i: i, j: j}); err != nil {
					return err
				}
			}
			return nil
		})
		putJoinBuckets(ec, buckets)
		ec.ReleaseMem(blockCharge)
		if err != nil {
			bb.close()
			closeBlocks()
			return nil, 0, err
		}
		matches += bb.count
		blocks = append(blocks, bb)
		lo += loaded
		if !sealed {
			break
		}
	}

	if len(blocks) == 1 {
		it, err := blocks[0].iter()
		if err != nil {
			closeBlocks()
			return nil, 0, err
		}
		return it, matches, nil
	}
	its := make([]pairIter, 0, len(blocks))
	for _, b := range blocks {
		it, err := b.iter()
		if err != nil {
			for _, open := range its {
				open.close()
			}
			closeBlocks()
			return nil, 0, err
		}
		its = append(its, it)
	}
	m, err := newPairMerge(its)
	if err != nil {
		for _, open := range its {
			open.close()
		}
		return nil, 0, err
	}
	return &mergeAsIter{m: m}, matches, nil
}

// mergeAsIter adapts a pairMerge to the pairIter interface so partition
// streams compose into the top-level merge.
type mergeAsIter struct{ m *pairMerge }

func (a *mergeAsIter) next() (pairRec, bool, error) { return a.m.next() }
func (a *mergeAsIter) close()                       { a.m.close() }

// ---------------------------------------------------------------------------
// Dedup

// tupleBuf buffers full pL-tuples with their arrival sequence (dedup
// partitions; the input may be a stream, so records must carry their data).
type tupleBuf struct {
	ec      *core.ExecContext
	mem     []tupleRec
	file    *spillFile
	charged int64
	scratch []byte
	count   int
}

func (b *tupleBuf) add(r tupleRec) error {
	b.count++
	if b.file != nil {
		b.scratch = appendTupleRec(b.scratch[:0], r)
		return b.file.write(b.ec, b.scratch)
	}
	b.mem = append(b.mem, r)
	c := approxTupleBytes(r.t)
	b.charged += c
	if b.ec.ChargeMem(c) {
		return b.flush()
	}
	return nil
}

func (b *tupleBuf) flush() error {
	if len(b.mem) == 0 {
		return nil
	}
	if b.file == nil {
		f, err := newSpillFile()
		if err != nil {
			return err
		}
		b.file = f
		b.ec.AddSpillPartitions(1)
	}
	for _, r := range b.mem {
		b.scratch = appendTupleRec(b.scratch[:0], r)
		if err := b.file.write(b.ec, b.scratch); err != nil {
			return err
		}
	}
	b.mem = b.mem[:0]
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	return nil
}

// replay streams the buffered records in arrival order.
func (b *tupleBuf) replay(f func(r tupleRec) error) error {
	if b.file != nil {
		d, err := b.file.reader()
		if err != nil {
			return err
		}
		for {
			kind, ok, err := d.readKind()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSpill, err)
			}
			if !ok {
				break
			}
			if kind != recKindTuple {
				return fmt.Errorf("%w: unexpected record kind in tuple stream", ErrSpill)
			}
			r, err := d.readTupleRec()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrSpill, err)
			}
			if err := f(r); err != nil {
				return err
			}
		}
	}
	for _, r := range b.mem {
		if err := f(r); err != nil {
			return err
		}
	}
	return nil
}

func (b *tupleBuf) close() {
	b.file.close()
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	b.mem = nil
}

// groupBuf buffers finished dedup groups in ascending first-arrival order.
type groupBuf struct {
	ec      *core.ExecContext
	mem     []groupRec
	file    *spillFile
	charged int64
	scratch []byte
}

func approxGroupBytes(g groupRec) int64 {
	n := int64(48) + int64(16*len(g.members))
	for _, v := range g.vals {
		n += approxValueBytes(v)
	}
	return n
}

func (b *groupBuf) add(g groupRec) error {
	if b.file != nil {
		b.scratch = appendGroupRec(b.scratch[:0], g)
		return b.file.write(b.ec, b.scratch)
	}
	b.mem = append(b.mem, g)
	c := approxGroupBytes(g)
	b.charged += c
	if b.ec.ChargeMem(c) {
		return b.flush()
	}
	return nil
}

func (b *groupBuf) flush() error {
	if len(b.mem) == 0 {
		return nil
	}
	if b.file == nil {
		f, err := newSpillFile()
		if err != nil {
			return err
		}
		b.file = f
		b.ec.AddSpillPartitions(1)
	}
	for _, g := range b.mem {
		b.scratch = appendGroupRec(b.scratch[:0], g)
		if err := b.file.write(b.ec, b.scratch); err != nil {
			return err
		}
	}
	b.mem = b.mem[:0]
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	return nil
}

func (b *groupBuf) close() {
	b.file.close()
	b.ec.ReleaseMem(b.charged)
	b.charged = 0
	b.mem = nil
}

// groupIter streams groupRecs ascending by first-arrival index.
type groupIter interface {
	next() (groupRec, bool, error)
	close()
}

type groupBufIter struct {
	b   *groupBuf
	d   *recDecoder
	pos int
}

func (b *groupBuf) iter() (groupIter, error) {
	it := &groupBufIter{b: b}
	if b.file != nil {
		d, err := b.file.reader()
		if err != nil {
			return nil, err
		}
		it.d = d
	}
	return it, nil
}

func (it *groupBufIter) next() (groupRec, bool, error) {
	if it.d != nil {
		kind, ok, err := it.d.readKind()
		if err != nil {
			return groupRec{}, false, fmt.Errorf("%w: %v", ErrSpill, err)
		}
		if ok {
			if kind != recKindGroup {
				return groupRec{}, false, fmt.Errorf("%w: unexpected record kind in group stream", ErrSpill)
			}
			g, err := it.d.readGroupRec()
			if err != nil {
				return groupRec{}, false, fmt.Errorf("%w: %v", ErrSpill, err)
			}
			return g, true, nil
		}
		it.d = nil
	}
	if it.pos < len(it.b.mem) {
		g := it.b.mem[it.pos]
		it.pos++
		return g, true, nil
	}
	return groupRec{}, false, nil
}

func (it *groupBufIter) close() { it.b.close() }

// groupMerge merges group streams ascending by first-arrival index. First
// indexes are unique across streams (each input record opens at most one
// group, and a key lives in exactly one partition), so ties cannot occur.
type groupMerge struct {
	its   []groupIter
	heads []groupRec
	live  []bool
}

func newGroupMerge(its []groupIter) (*groupMerge, error) {
	m := &groupMerge{its: its, heads: make([]groupRec, len(its)), live: make([]bool, len(its))}
	for k, it := range its {
		g, ok, err := it.next()
		if err != nil {
			return nil, err
		}
		m.heads[k], m.live[k] = g, ok
	}
	return m, nil
}

func (m *groupMerge) next() (groupRec, bool, error) {
	best := -1
	for k := range m.its {
		if !m.live[k] {
			continue
		}
		if best < 0 || m.heads[k].first < m.heads[best].first {
			best = k
		}
	}
	if best < 0 {
		return groupRec{}, false, nil
	}
	out := m.heads[best]
	g, ok, err := m.its[best].next()
	if err != nil {
		return groupRec{}, false, err
	}
	m.heads[best], m.live[best] = g, ok
	return out, true, nil
}

func (m *groupMerge) close() {
	for _, it := range m.its {
		it.close()
	}
}

type mergeAsGroupIter struct{ m *groupMerge }

func (a *mergeAsGroupIter) next() (groupRec, bool, error) { return a.m.next() }
func (a *mergeAsGroupIter) close()                        { a.m.close() }

// hashPartSeed is hashPart with a level-dependent seed, so a partition that
// recurses redistributes its keys instead of sending them all to one
// sub-partition again.
func hashPartSeed(s string, w int, seed uint64) int {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037) ^ (seed+1)*prime64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return int(h % uint64(w))
}

// dedupSpill is the bounded-memory dedup over an input stream: partition by
// full-tuple key, group each partition (recursing while over budget), merge
// group streams by first arrival, allocate Or gates in merge order. The
// groups counter (when non-nil) accumulates per-top-partition group counts
// for trace sub-spans.
func dedupSpill(ec *core.ExecContext, attrs tuple.Schema, src Iterator, net *aonet.Network) (*Relation, error) {
	chk := core.Check{EC: ec}
	stream, parts, err := dedupPartitionStream(ec, src, 0, 0)
	if err != nil {
		return nil, err
	}
	defer stream.close()
	recordPartitions(ec, "project.spill", parts)
	out := &Relation{Attrs: attrs.Clone()}
	for {
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		g, ok, err := stream.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(g.members) == 1 {
			out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, P: g.members[0].P, Lin: g.members[0].From})
			continue
		}
		lin := net.AddGate(aonet.Or, g.members)
		out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, P: 1, Lin: lin})
	}
	return out, nil
}

// dedupPartitionStream partitions src (a stream of tuples whose sequence
// numbers start at seqBase for the top level, or carry through recursion)
// and returns the merged group stream. At level 0 it also returns per-
// partition trace measurements.
func dedupPartitionStream(ec *core.ExecContext, src Iterator, level int, _ int32) (groupIter, []partStat, error) {
	fan := spillFanout
	if level > 0 {
		fan = dedupSubFanout
	}
	parts := make([]*tupleBuf, fan)
	for p := range parts {
		parts[p] = &tupleBuf{ec: ec}
	}
	closeParts := func() {
		for _, b := range parts {
			b.close()
		}
	}
	chk := core.Check{EC: ec}
	seq := int32(0)
	for {
		if err := chk.Tick(); err != nil {
			closeParts()
			return nil, nil, err
		}
		t, ok, err := src.Next()
		if err != nil {
			closeParts()
			return nil, nil, err
		}
		if !ok {
			break
		}
		p := hashPartSeed(t.Vals.Key(), fan, uint64(level))
		if err := parts[p].add(tupleRec{seq: seq, t: t}); err != nil {
			closeParts()
			return nil, nil, err
		}
		seq++
	}
	return dedupMergePartitions(ec, parts, level)
}

// dedupRecordStream re-partitions an overflowing partition's records
// (sequence numbers preserved) one level deeper.
func dedupRecordStream(ec *core.ExecContext, buf *tupleBuf, level int) (groupIter, error) {
	// Move the overflowing partition fully to disk before re-partitioning:
	// its records are about to be charged again inside the sub-partitions,
	// and keeping the parent resident would double-charge them.
	if err := buf.flush(); err != nil {
		return nil, err
	}
	fan := dedupSubFanout
	parts := make([]*tupleBuf, fan)
	for p := range parts {
		parts[p] = &tupleBuf{ec: ec}
	}
	closeParts := func() {
		for _, b := range parts {
			b.close()
		}
	}
	if err := buf.replay(func(r tupleRec) error {
		return parts[hashPartSeed(r.t.Vals.Key(), fan, uint64(level))].add(r)
	}); err != nil {
		closeParts()
		return nil, err
	}
	it, _, err := dedupMergePartitions(ec, parts, level)
	return it, err
}

// dedupMergePartitions groups every partition (recursing past the budget
// while depth remains) and merges the resulting group streams.
func dedupMergePartitions(ec *core.ExecContext, parts []*tupleBuf, level int) (groupIter, []partStat, error) {
	stats := make([]partStat, len(parts))
	its := make([]groupIter, 0, len(parts))
	closeIts := func() {
		for _, it := range its {
			it.close()
		}
	}
	// Phase boundary: if the budget forced any partition onto disk, the
	// operator is memory-tight — flush every partition so each one's group
	// table gets the budget to itself instead of competing with its
	// siblings' resident buffers. When nothing overflowed, everything stays
	// resident and no temp files are created at all.
	for _, b := range parts {
		if b.file == nil {
			continue
		}
		for _, rest := range parts {
			if err := rest.flush(); err != nil {
				for _, rb := range parts {
					rb.close()
				}
				return nil, nil, err
			}
		}
		break
	}
	for p, buf := range parts {
		start := time.Now()
		it, groups, err := dedupGroupPartition(ec, buf, level)
		buf.close()
		if err != nil {
			closeIts()
			for _, rest := range parts[p+1:] {
				rest.close()
			}
			return nil, nil, err
		}
		its = append(its, it)
		stats[p] = partStat{rows: groups, dur: time.Since(start)}
	}
	m, err := newGroupMerge(its)
	if err != nil {
		closeIts()
		return nil, nil, err
	}
	return &mergeAsGroupIter{m: m}, stats, nil
}

// dedupGroupPartition turns one partition's records into an ordered group
// stream. It first tries to group in memory; if the charge hook trips and
// recursion depth remains, it abandons the table and re-partitions with a
// fresh hash seed. At the recursion cap it groups in memory regardless —
// the budget floor term (see docs/SPILL.md).
func dedupGroupPartition(ec *core.ExecContext, buf *tupleBuf, level int) (groupIter, int, error) {
	type group struct {
		rec groupRec
	}
	table := make(map[string]*group)
	var order []string
	var charged int64
	release := func() {
		ec.ReleaseMem(charged)
		charged = 0
	}
	overflow := false
	err := buf.replay(func(r tupleRec) error {
		k := r.t.Vals.Key()
		g, ok := table[k]
		if !ok {
			g = &group{rec: groupRec{first: r.seq, vals: r.t.Vals}}
			table[k] = g
			order = append(order, k)
			c := int64(48 + len(k)) + approxTupleBytes(r.t)
			charged += c
			if ec.ChargeMem(c) && level < dedupMaxDepth {
				overflow = true
				return errDedupOverflow
			}
		}
		g.rec.members = append(g.rec.members, aonet.Edge{From: r.t.Lin, P: r.t.P})
		c := int64(16)
		charged += c
		if ec.ChargeMem(c) && level < dedupMaxDepth {
			overflow = true
			return errDedupOverflow
		}
		return nil
	})
	if err != nil && !overflow {
		release()
		return nil, 0, err
	}
	if overflow {
		release()
		// The group count is unknown without draining the recursive stream;
		// the trace sub-span reports 0 rows for a recursed partition.
		it, err := dedupRecordStream(ec, buf, level+1)
		if err != nil {
			return nil, 0, err
		}
		return it, 0, nil
	}
	// Emit in first-occurrence order into a (possibly spilling) group
	// buffer, releasing the table charge as we go.
	gb := &groupBuf{ec: ec}
	for _, k := range order {
		if err := gb.add(table[k].rec); err != nil {
			release()
			gb.close()
			return nil, 0, err
		}
	}
	release()
	it, err := gb.iter()
	if err != nil {
		gb.close()
		return nil, 0, err
	}
	return it, len(order), nil
}

// errDedupOverflow is the internal signal that a partition's group table hit
// the budget and should recurse; never escapes the dedup path.
var errDedupOverflow = errors.New("pl: dedup partition overflow")

// errBlockSealed is the internal signal that a join build block reached the
// budget and should stop loading; never escapes the join path.
var errBlockSealed = errors.New("pl: join build block sealed")
