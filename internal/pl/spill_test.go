package pl

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/aonet"
	"repro/internal/core"
	"repro/internal/tuple"
)

// The memory-adversarial tier: the spill paths must be byte-identical to the
// in-memory operators at every budget — unlimited, 75%, 25% of the measured
// working set, and the one-byte floor — and the charged-bytes peak must track
// the budget (peak <= budget + slack, where slack is the largest single
// charge the pipeline can make: one dedup group record).

func memEC(mem int64) *core.ExecContext {
	return core.NewExecContext(context.Background(), core.ExecConfig{Budget: core.Budget{Mem: mem}})
}

// spillPipeline runs the canonical grounding pipeline — conditioned join then
// projection — under the given memory budget (0 = legacy in-memory paths)
// with inputs regenerated from the seed, and returns the result, the
// network's canonical encoding, and the ExecContext for its accounting.
func spillPipeline(t *testing.T, seed int64, mem int64) (*Relation, *Relation, []byte, *core.ExecContext, error) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := aonet.New()
	r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 90+rng.Intn(80), 8+rng.Intn(20))
	r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 90+rng.Intn(80), 8+rng.Intn(20))
	ec := memEC(mem)
	joined, _, err := SafeJoinCtx(ec, r1, r2, net)
	if err != nil {
		return nil, nil, nil, ec, err
	}
	proj, err := ProjectCtx(ec, joined, []string{"b"}, net)
	if err != nil {
		return nil, nil, nil, ec, err
	}
	return joined, proj, encodeNet(t, net), ec, nil
}

// spillSlack returns the pipeline's irreducible budget overshoot on this
// data — the floor formula of docs/SPILL.md: the largest single group record
// (one whole group entering the group buffer in one charge) plus the largest
// recursion-capped sub-partition group table (a sub-partition at the dedup
// recursion cap is grouped in memory regardless of the budget). Every other
// charge is per-entry and small.
func spillSlack(joined *Relation) int64 {
	ind, err := IndProject(joined, []string{"b"})
	if err != nil {
		return 0
	}
	counts := make(map[string]int)
	bytesOf := make(map[string]int64)
	for _, tp := range ind.Tuples {
		k := tp.Vals.Key()
		counts[k]++
		if _, ok := bytesOf[k]; !ok {
			var vb int64
			for _, v := range tp.Vals {
				vb += approxValueBytes(v)
			}
			bytesOf[k] = vb
		}
	}
	var maxGroup int64
	bins := make(map[[3]int]int64)
	for k, n := range counts {
		group := 48 + 16*int64(n) + bytesOf[k]
		if group > maxGroup {
			maxGroup = group
		}
		// A key's recursion-capped bin: level-0 partition, then the two
		// salted sub-splits. Its at-cap table entry mirrors the charges of
		// dedupGroupPartition: the group header plus one edge per member.
		bin := [3]int{
			hashPartSeed(k, spillFanout, 0),
			hashPartSeed(k, dedupSubFanout, 1),
			hashPartSeed(k, dedupSubFanout, 2),
		}
		bins[bin] += 48 + int64(len(k)) + (40 + bytesOf[k]) + 16*int64(n)
	}
	var maxBin int64
	for _, b := range bins {
		if b > maxBin {
			maxBin = b
		}
	}
	return maxGroup + maxBin
}

// TestSpillPropertyIdentical is the memory-adversarial property suite: 200
// seeded random pipelines, each run at MemBudget ∈ {in-memory, effectively
// unlimited, 75% of peak, 25% of peak, floor}, asserting bit-identical
// results (relations and network encodings, node IDs included), that
// constrained budgets actually spill, and that the charged-bytes peak stays
// within budget + slack at the fractional budgets.
func TestSpillPropertyIdentical(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	spilledSomewhere := false
	for seed := int64(0); seed < int64(seeds); seed++ {
		refJoin, refProj, refNet, _, err := spillPipeline(t, seed, 0)
		if err != nil {
			t.Fatalf("seed %d: in-memory pipeline: %v", seed, err)
		}
		// An effectively unlimited budget exercises the spill operators with
		// everything resident; its peak is the pipeline's working set.
		_, _, _, big, err := spillPipeline(t, seed, 1<<40)
		if err != nil {
			t.Fatalf("seed %d: unbounded spill pipeline: %v", seed, err)
		}
		peak := big.MemPeakBytes()
		if peak <= 0 {
			t.Fatalf("seed %d: no memory charged by spill pipeline", seed)
		}
		slack := 512 + spillSlack(refJoin)
		budgets := []struct {
			mem       int64
			checkPeak bool
		}{
			{1 << 40, false},
			{maxInt64(1, peak*3/4), true},
			{maxInt64(1, peak/4), true},
			{1, false}, // floor: identical output; peak bounded by data, not budget
		}
		for _, b := range budgets {
			j, p, n, ec, err := spillPipeline(t, seed, b.mem)
			if err != nil {
				t.Fatalf("seed %d mem=%d: %v", seed, b.mem, err)
			}
			if !sameRelation(refJoin, j) || !sameRelation(refProj, p) || !bytes.Equal(refNet, n) {
				t.Fatalf("seed %d mem=%d: spill pipeline diverged from in-memory", seed, b.mem)
			}
			if b.checkPeak && ec.MemPeakBytes() > b.mem+slack {
				t.Fatalf("seed %d mem=%d: peak %d exceeds budget+slack %d",
					seed, b.mem, ec.MemPeakBytes(), b.mem+slack)
			}
			if b.mem == 1 && ec.SpilledPartitions() == 0 {
				t.Fatalf("seed %d: floor budget run spilled no partitions", seed)
			}
			if ec.SpilledPartitions() > 0 {
				spilledSomewhere = true
				if ec.SpillBytes() <= 0 {
					t.Fatalf("seed %d mem=%d: spilled %d partitions but recorded no spill bytes",
						seed, b.mem, ec.SpilledPartitions())
				}
			}
			if ec.MemCharged() != 0 {
				t.Fatalf("seed %d mem=%d: %d bytes still charged after pipeline completed",
					seed, b.mem, ec.MemCharged())
			}
		}
	}
	if !spilledSomewhere {
		t.Fatal("no run spilled — the adversarial tier exercised nothing")
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestSpillPooledIdentical: the spill paths draw bucket tables from the
// scratch pools like the in-memory paths; pooling must not perturb results.
func TestSpillPooledIdentical(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		refJoin, refProj, refNet, _, err := spillPipeline(t, seed, 0)
		if err != nil {
			t.Fatalf("seed %d: in-memory pipeline: %v", seed, err)
		}
		for pass := 0; pass < 2; pass++ {
			rng := rand.New(rand.NewSource(seed))
			net := aonet.New()
			r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 90+rng.Intn(80), 8+rng.Intn(20))
			r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 90+rng.Intn(80), 8+rng.Intn(20))
			ec := core.NewExecContext(context.Background(), core.ExecConfig{
				Budget:  core.Budget{Mem: 4096},
				Pooling: true,
			})
			joined, _, err := SafeJoinCtx(ec, r1, r2, net)
			if err != nil {
				t.Fatalf("seed %d pass %d: %v", seed, pass, err)
			}
			proj, err := ProjectCtx(ec, joined, []string{"b"}, net)
			if err != nil {
				t.Fatalf("seed %d pass %d: %v", seed, pass, err)
			}
			if !sameRelation(refJoin, joined) || !sameRelation(refProj, proj) || !bytes.Equal(refNet, encodeNet(t, net)) {
				t.Fatalf("seed %d pass %d: pooled spill run diverged", seed, pass)
			}
			if got := PoolCheckouts(); got != 0 {
				t.Fatalf("seed %d pass %d: %d pooled objects still checked out", seed, pass, got)
			}
		}
	}
}

// TestSpillFaultInjection: an injected temp-file write failure surfaces as a
// typed ErrSpill — never a corrupt result — from both the join and the dedup
// spill paths.
func TestSpillFaultInjection(t *testing.T) {
	defer FailSpillAfter(0)
	rng := rand.New(rand.NewSource(42))
	net := aonet.New()
	r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 300, 12)
	r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 300, 12)

	FailSpillAfter(1)
	_, err := JoinCtx(memEC(1), r1, r2, net)
	if !errors.Is(err, ErrSpill) {
		t.Fatalf("join with injected fault: err = %v, want ErrSpill", err)
	}

	FailSpillAfter(1)
	_, err = DedupCtx(memEC(1), r1, net)
	if !errors.Is(err, ErrSpill) {
		t.Fatalf("dedup with injected fault: err = %v, want ErrSpill", err)
	}

	// Disarmed, the same pipelines succeed and match the in-memory result.
	FailSpillAfter(0)
	rng = rand.New(rand.NewSource(42))
	netRef := aonet.New()
	p1 := randomWideRelation(rng, netRef, tuple.Schema{"a", "b"}, 300, 12)
	p2 := randomWideRelation(rng, netRef, tuple.Schema{"a", "c"}, 300, 12)
	ref, err := JoinCtx(nil, p1, p2, netRef)
	if err != nil {
		t.Fatalf("reference join: %v", err)
	}
	rng = rand.New(rand.NewSource(42))
	net2 := aonet.New()
	q1 := randomWideRelation(rng, net2, tuple.Schema{"a", "b"}, 300, 12)
	q2 := randomWideRelation(rng, net2, tuple.Schema{"a", "c"}, 300, 12)
	got, err := JoinCtx(memEC(1), q1, q2, net2)
	if err != nil {
		t.Fatalf("spill join after disarm: %v", err)
	}
	if !sameRelation(ref, got) {
		t.Fatal("spill join after disarm diverged from in-memory join")
	}
}

// TestSpillFaultInjectionCountdown: FailSpillAfter(n) fails exactly the n-th
// write, so a fault can be planted deep inside a long spill run.
func TestSpillFaultInjectionCountdown(t *testing.T) {
	defer FailSpillAfter(0)
	FailSpillAfter(3)
	if err := spillWriteGate(); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := spillWriteGate(); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := spillWriteGate(); !errors.Is(err, ErrSpill) {
		t.Fatalf("write 3: err = %v, want ErrSpill", err)
	}
	if err := spillWriteGate(); err != nil {
		t.Fatalf("write 4 (after injection): %v", err)
	}
}

// TestSpillCancellation: cancellation surfaces promptly from the spill paths
// too, with all charged memory released on the way out.
func TestSpillCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := aonet.New()
	r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 4*core.CheckInterval, 40)
	r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 4*core.CheckInterval, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := core.NewExecContext(ctx, core.ExecConfig{Budget: core.Budget{Mem: 1}})
	if _, err := JoinCtx(ec, r1, r2, net); !errors.Is(err, context.Canceled) {
		t.Errorf("spill join: err = %v, want context.Canceled", err)
	}
	if got := ec.MemCharged(); got != 0 {
		t.Errorf("spill join: %d bytes still charged after cancellation", got)
	}
	ec = core.NewExecContext(ctx, core.ExecConfig{Budget: core.Budget{Mem: 1}})
	if _, err := DedupCtx(ec, r1, net); !errors.Is(err, context.Canceled) {
		t.Errorf("spill dedup: err = %v, want context.Canceled", err)
	}
	if got := ec.MemCharged(); got != 0 {
		t.Errorf("spill dedup: %d bytes still charged after cancellation", got)
	}
}

// TestSpillRowBudget: the row budget still binds under spill execution.
func TestSpillRowBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := aonet.New()
	r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 2000, 4)
	r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 2000, 4)
	ec := core.NewExecContext(context.Background(), core.ExecConfig{
		Budget: core.Budget{Rows: 100, Mem: 4096},
	})
	if _, err := JoinCtx(ec, r1, r2, net); !errors.Is(err, core.ErrRowBudget) {
		t.Errorf("spill join: err = %v, want ErrRowBudget", err)
	}
}

// TestSpillTracePartitions: with tracing enabled, the spill operators emit
// one sub-span per partition with the spill kinds.
func TestSpillTracePartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := aonet.New()
	r1 := randomWideRelation(rng, net, tuple.Schema{"a", "b"}, 200, 16)
	r2 := randomWideRelation(rng, net, tuple.Schema{"a", "c"}, 200, 16)
	ec := core.NewExecContext(context.Background(), core.ExecConfig{
		Budget: core.Budget{Mem: 2048},
		Trace:  true,
	})
	joined, err := JoinCtx(ec, r1, r2, net)
	if err != nil {
		t.Fatalf("spill join: %v", err)
	}
	if _, err := DedupCtx(ec, joined, net); err != nil {
		t.Fatalf("spill dedup: %v", err)
	}
	kinds := make(map[string]int)
	for _, op := range ec.Ops() {
		kinds[op.Kind]++
	}
	if kinds["join.spill"] != spillFanout {
		t.Errorf("join.spill sub-spans = %d, want %d", kinds["join.spill"], spillFanout)
	}
	if kinds["project.spill"] != spillFanout {
		t.Errorf("project.spill sub-spans = %d, want %d", kinds["project.spill"], spillFanout)
	}
}
