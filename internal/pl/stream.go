package pl

// The streaming side of the pL operator layer: a pull-based iterator
// protocol over pL-tuples. The bounded-memory execution paths (spill.go)
// drain their inputs through iterators one tuple at a time instead of
// indexing materialized slices, and the engine's grounding pipeline drives
// its scans through the same protocol, so an operator's scratch state — not
// its input representation — is the only thing the memory budget has to
// bound.
//
// Iterators are single-consumer and not safe for concurrent use. Close is
// idempotent and must be called even after an error from Next.

// Iterator is a pull-based stream of pL-tuples.
type Iterator interface {
	// Next returns the next tuple; ok is false when the stream is
	// exhausted (in which case the tuple is meaningless).
	Next() (t Tuple, ok bool, err error)
	// Close releases any resources backing the stream.
	Close() error
}

// sliceIter streams a materialized tuple slice.
type sliceIter struct {
	tuples []Tuple
	pos    int
}

func (s *sliceIter) Next() (Tuple, bool, error) {
	if s.pos >= len(s.tuples) {
		return Tuple{}, false, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true, nil
}

func (s *sliceIter) Close() error { return nil }

// Iter streams the relation's tuples in order.
func (r *Relation) Iter() Iterator { return &sliceIter{tuples: r.Tuples} }

// funcIter adapts a closure to the Iterator protocol.
type funcIter struct {
	next func() (Tuple, bool, error)
}

func (f *funcIter) Next() (Tuple, bool, error) { return f.next() }
func (f *funcIter) Close() error               { return nil }

// IterFunc wraps next as an Iterator with a no-op Close. The engine's scan
// uses it to stream filtered base rows into the operator pipeline without
// an intermediate slice.
func IterFunc(next func() (Tuple, bool, error)) Iterator { return &funcIter{next: next} }
