package planner

import (
	"sync"
	"time"

	"repro/internal/inference"
)

// The inference-backend cost model. For every answer the engine builds a
// Profile (lineage size if expansion succeeded, a lazy treewidth estimate
// when it matters) and asks Rank for the attempt order over the exact
// backends; deterministic failures (expansion budget, elimination width)
// fall through to the next attempt, and sampling ends every ranking. The
// ranking is a pure function of the profile and the model's constants — see
// the Sink comment for why observed history deliberately stays out of it.

// Backend identifies an inference backend the engine can route an answer to.
type Backend int

// The rankable backends.
const (
	// BackendShannon is Shannon expansion over the expanded DNF lineage
	// (engine label "expand+shannon").
	BackendShannon Backend = iota
	// BackendVE is variable elimination with recursive cutset conditioning
	// (engine label "ve").
	BackendVE
	// BackendJTree is junction-tree message passing over the decomposed
	// network (engine label "jtree").
	BackendJTree
	// BackendSample is the sampling fallback: Karp–Luby when the lineage
	// expanded, forward sampling otherwise.
	BackendSample
	// BackendDissociation is the dissociation bounds evaluator (engine
	// label "dissociation"): one extensional pass producing a guaranteed
	// [lo, hi] interval, exact on read-once lineage. It is ranked only for
	// bounds-valued evaluations (Profile.WantBounds) — interval results
	// cannot substitute for the point estimates the other backends produce.
	BackendDissociation
	// BackendCircuit is the compiled-circuit evaluator (engine label
	// "circuit"): the expanded DNF lineage is compiled to a d-DNNF circuit
	// cached on its canonical fingerprint, and confidence is one linear
	// bottom-up pass. It is ranked only when Profile.Circuits is set —
	// substituting positionally for BackendShannon, whose floats it
	// reproduces bit for bit — so enabling the circuit cache changes speed,
	// never answer bytes.
	BackendCircuit
)

// String names the backend with the engine's trace label.
func (b Backend) String() string {
	switch b {
	case BackendShannon:
		return "expand+shannon"
	case BackendVE:
		return "ve"
	case BackendJTree:
		return "jtree"
	case BackendDissociation:
		return "dissociation"
	case BackendCircuit:
		return "circuit"
	default:
		return "sample"
	}
}

// Profile is what the engine knows about one answer before inference.
type Profile struct {
	// Expanded reports whether DNF expansion of the partial lineage
	// succeeded within the expansion budget.
	Expanded bool
	// Clauses and Vars size the expanded DNF (valid when Expanded).
	Clauses, Vars int
	// HasWidth reports whether Width carries a treewidth estimate.
	HasWidth bool
	// Width is the greedy elimination width estimate for the answer's
	// ancestor network (inference.WidthEstimate).
	Width int
	// NetVars is the variable count of the elimination (valid with
	// HasWidth).
	NetVars int
	// SharedMemo reports that the evaluation carries a cross-answer VE
	// memo table. The conditioned-VE backend reuses component solves
	// across answers through it; the junction tree has no memoization, so
	// a narrow width estimate alone does not justify ranking it first.
	SharedMemo bool
	// WantBounds reports that the caller accepts bounds-valued answers
	// (the dissociation strategy, and top-k interval seeding). Only then
	// does Rank consider BackendDissociation; point-estimate evaluations
	// never see it, so existing rankings are unchanged by construction.
	WantBounds bool
	// Circuits reports that the evaluation carries a compiled-circuit
	// cache — the engine sets it for multi-answer evaluations and
	// materialized views, exactly the workloads where compiling once
	// amortizes over shared cores and prob-update refreshes. Rank then
	// routes expanded-DNF answers to BackendCircuit in the position
	// BackendShannon would otherwise occupy.
	Circuits bool
}

// CostModel holds the thresholds that drive backend ranking. The zero value
// is NOT usable; use DefaultCostModel.
type CostModel struct {
	// ShannonMaxClauses and ShannonMaxVars bound the expanded-DNF size for
	// which Shannon expansion is ranked first: below them the DNF is small
	// enough that the memoized Shannon recursion beats building network
	// factors, and no width estimate is needed at all.
	ShannonMaxClauses int
	ShannonMaxVars    int
	// JTreeMaxWidth is the width estimate at or below which the one-sweep
	// junction tree is ranked ahead of conditioned variable elimination:
	// with a narrow decomposition a single upward pass wins, while wider
	// networks need the conditioning that only the VE backend performs.
	JTreeMaxWidth int
	// MaxFactorVars mirrors the solvers' elimination cap
	// (inference.DefaultMaxFactorVars): a width estimate past it predicts
	// ErrTooWide, so exact attempts rank after cheaper options.
	MaxFactorVars int
}

// DefaultCostModel returns the thresholds the engine uses.
func DefaultCostModel() CostModel {
	return CostModel{
		ShannonMaxClauses: 256,
		ShannonMaxVars:    24,
		JTreeMaxWidth:     8,
		MaxFactorVars:     inference.DefaultMaxFactorVars,
	}
}

// shannonFirst reports whether the Shannon solver on the expanded lineage
// leads the ranking: when the DNF stayed small, or whenever a cross-answer
// memo is active — the memoized Shannon recursion shares subproblems across
// answers (the shared-core effect), which the elimination backends cannot.
func (m CostModel) shannonFirst(p Profile) bool {
	return p.Expanded && (p.SharedMemo || (p.Clauses <= m.ShannonMaxClauses && p.Vars <= m.ShannonMaxVars))
}

// NeedsWidth reports whether Rank would consult a treewidth estimate for
// this profile: only when Shannon expansion is not ranked first. The engine
// uses this to compute the estimate lazily — answers with small expanded
// lineage (the common case) never pay for a greedy ordering.
func (m CostModel) NeedsWidth(p Profile) bool {
	return !m.shannonFirst(p)
}

// BoundsFirst reports whether a bounds-accepting evaluation should run the
// dissociation evaluator before any exact backend: the answer's lineage
// expanded but is too large for the cheap Shannon pass — the unsafe shape
// where exact inference pays Shannon/VE cost while dissociation brackets
// the answer in one extensional pass. Small expanded lineage stays exact:
// the Shannon solver is cheaper than the gap is worth.
func (m CostModel) BoundsFirst(p Profile) bool {
	return p.WantBounds && p.Expanded && !m.shannonFirst(p)
}

// exactDNF returns the backend that solves the expanded DNF exactly: the
// compiled-circuit evaluator when the evaluation carries a circuit cache,
// else the plain Shannon solver. The circuit compiler replays the Shannon
// recursion, so the two produce bit-identical floats and the substitution
// never changes which answers fall through the ranking.
func (m CostModel) exactDNF(p Profile) Backend {
	if p.Circuits {
		return BackendCircuit
	}
	return BackendShannon
}

// Rank returns the backend attempt order for the profile, most promising
// first. The last element is always BackendSample. The ranking is a pure
// function of (p, m).
//
// With Profile.WantBounds set (bounds-valued evaluations only), the
// dissociation evaluator leads the ranking for unsafe answers (BoundsFirst);
// without it the ranking is identical to the point-estimate ranking. With
// Profile.Circuits set, BackendCircuit takes BackendShannon's position (see
// exactDNF); the ranking shape is otherwise unchanged.
func (m CostModel) Rank(p Profile) []Backend {
	if m.BoundsFirst(p) {
		q := p
		q.WantBounds = false
		return append([]Backend{BackendDissociation}, m.Rank(q)...)
	}
	shannonFirst := m.shannonFirst(p)
	var exact []Backend
	if !p.SharedMemo && p.HasWidth && p.Width+1 <= m.JTreeMaxWidth && p.Width+1 <= m.MaxFactorVars {
		// Narrow network: one junction-tree sweep, VE as the safety net for
		// transient width overshoot during message products. With a shared
		// memo in play, memoized VE wins instead (see Profile.SharedMemo).
		exact = []Backend{BackendJTree, BackendVE}
	} else {
		// Wide or unknown width: recursive conditioning is the only exact
		// backend that can finish past the raw decomposition width; a
		// junction-tree attempt after a VE ErrTooWide cannot succeed.
		exact = []Backend{BackendVE}
	}
	var rank []Backend
	if shannonFirst {
		rank = append([]Backend{m.exactDNF(p)}, exact...)
	} else {
		rank = exact
		if p.Expanded {
			rank = append(rank, m.exactDNF(p))
		}
	}
	return append(rank, BackendSample)
}

// BackendStats is one backend's accumulated attempt history.
type BackendStats struct {
	// Attempts counts ranked attempts routed to the backend.
	Attempts int64
	// Wins counts attempts that produced the answer.
	Wins int64
	// Fallbacks counts deterministic failures that fell through to the next
	// ranked backend.
	Fallbacks int64
	// Nanos is the total wall time spent in the backend's attempts.
	Nanos int64
}

// Sink accumulates backend attempt outcomes across queries. It feeds
// observability only: the pdb_planner_* metrics, EXPLAIN output, and the
// calibration report in pdbbench.
//
// The sink is deliberately NOT an input to Rank. Exact backends agree on
// every answer's probability but may differ in final-ulp rounding on
// non-dyadic inputs, so any history-driven re-ranking would make answer
// bytes depend on what the process evaluated earlier — violating the
// engine's reproducibility contract (and the result cache's assumption that
// identical requests produce identical bytes). Keeping the ranking pure
// makes "the sink never changes results, only speed" true by construction;
// the regression test in internal/crosscheck pins it.
type Sink struct {
	mu sync.Mutex
	m  map[string]*BackendStats
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{m: make(map[string]*BackendStats)} }

// DefaultSink is the process-wide sink the pdb layer records into.
var DefaultSink = NewSink()

// Record logs one attempt outcome. A nil sink ignores the call.
func (s *Sink) Record(backend string, won bool, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*BackendStats)
	}
	st := s.m[backend]
	if st == nil {
		st = &BackendStats{}
		s.m[backend] = st
	}
	st.Attempts++
	if won {
		st.Wins++
	} else {
		st.Fallbacks++
	}
	st.Nanos += d.Nanoseconds()
}

// Snapshot copies the accumulated per-backend history. A nil sink returns
// nil.
func (s *Sink) Snapshot() map[string]BackendStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BackendStats, len(s.m))
	for k, v := range s.m {
		out[k] = *v
	}
	return out
}

// Reset clears the history (for tests and benchmarks).
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]*BackendStats)
}
