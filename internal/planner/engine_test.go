// Black-box tests that validate the estimator against ground truth from the
// engine. They live in an external test package because engine imports
// planner: a white-box test file could not import engine back.
package planner_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func asymmetricDB(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	a := relation.New("A", "x")
	b := relation.New("B", "x", "y")
	c := relation.New("C", "y")
	for x := 1; x <= 12; x++ {
		a.MustAdd(tuple.Ints(int64(x)), 0.5)
		b.MustAdd(tuple.Ints(int64(x), int64(x%3)), 0.5)
	}
	for y := 0; y < 3; y++ {
		c.MustAdd(tuple.Ints(int64(y)), 0.5)
	}
	db.AddRelation(a)
	db.AddRelation(b)
	db.AddRelation(c)
	return db
}

// dryRunOffending measures the true offending-tuple count of a plan.
func dryRunOffending(t *testing.T, db *relation.Database, q *query.Query, plan *query.Plan) int {
	t.Helper()
	res, err := engine.Evaluate(db, q, plan, engine.Options{
		Strategy:      core.PartialLineage,
		SkipInference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats.OffendingTuples
}

// TestEstimateAgreesWithDryRun checks the estimator against measured
// offending counts: a candidate estimated safe must be safe, and the chosen
// plan must be no worse than any other candidate.
func TestEstimateAgreesWithDryRun(t *testing.T) {
	db := asymmetricDB(t)
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	best, all, err := planner.Choose(db, q, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bestTrue := dryRunOffending(t, db, q, best.Plan)
	if bestTrue != 0 {
		t.Errorf("chosen plan %v has %d true offending tuples, want 0", best.Order, bestTrue)
	}
	for _, c := range all {
		measured := dryRunOffending(t, db, q, c.Plan)
		if c.EstOffending == 0 && measured != 0 {
			t.Errorf("order %v estimated safe but measured %d offending", c.Order, measured)
		}
		if measured < bestTrue {
			t.Errorf("order %v measures %d offending, beats chosen plan's %d", c.Order, measured, bestTrue)
		}
	}
	// All candidates compute the same probability.
	var probs []float64
	for _, c := range all {
		res, err := engine.Evaluate(db, q, c.Plan, engine.Options{Strategy: core.PartialLineage})
		if err != nil {
			t.Fatal(err)
		}
		probs = append(probs, res.BoolProb())
	}
	for _, p := range probs[1:] {
		if math.Abs(p-probs[0]) > 1e-9 {
			t.Errorf("candidate plans disagree: %v", probs)
		}
	}
}

func TestChooseOnWorkloadQuery(t *testing.T) {
	spec, err := workload.SpecByName("P1")
	if err != nil {
		t.Fatal(err)
	}
	p := workload.Params{N: 6, M: 40, Fanout: 3, RF: 0.2, RD: 1, Seed: 31}
	db, err := workload.GenerateFor(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	q := spec.Query()
	best, all, err := planner.Choose(db, q, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("expected multiple candidates, got %d", len(all))
	}
	// The estimator's pick must be no worse than the paper's default order
	// when both are measured on the full instance.
	def, err := query.LeftDeepPlan(q, spec.JoinOrder)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dryRunOffending(t, db, q, best.Plan), dryRunOffending(t, db, q, def); got > want {
		t.Errorf("optimizer pick %v measures %d offending, default order measures %d", best.Order, got, want)
	}
}
