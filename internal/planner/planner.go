// Package planner implements data-aware plan selection — the paper's open
// question (i) in Section 8: "how to choose a query plan that minimizes the
// size ... of the output network".
//
// For a fixed query the number of offending tuples, and hence the size and
// width of the partial-lineage network, depends heavily on the join order:
// a join direction along a functional dependency that the instance satisfies
// is data-safe, while the reverse direction of the same join may condition
// thousands of tuples. The planner enumerates left-deep join orders whose
// prefixes stay connected (no cross products), dry-runs the partial-lineage
// pipeline on each (relational work only, no inference), and ranks the
// candidates by the exact statistics of the run: offending tuples first,
// then network size.
//
// Dry-running every order is exact but costs one relational execution per
// candidate; Options.MaxOrders bounds the search and Options.SampleGroups
// restricts the costing runs to a sample of answer groups when the query has
// head variables.
package planner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Options bounds the search.
type Options struct {
	// MaxOrders caps the number of candidate join orders costed
	// (0 = default 64). Orders are enumerated deterministically.
	MaxOrders int
	// SampleGroups, when positive and the query has head variables,
	// restricts costing to the answer groups whose first head attribute
	// falls in the SampleGroups smallest values present — a cheap stand-in
	// for sampling since group structure is homogeneous in the paper's
	// workloads. Zero costs the full instance.
	SampleGroups int
}

func (o Options) maxOrders() int {
	if o.MaxOrders <= 0 {
		return 64
	}
	return o.MaxOrders
}

// Candidate is one costed join order.
type Candidate struct {
	Order     []string
	Plan      *query.Plan
	Offending int
	Nodes     int
	Edges     int
}

// String renders the candidate for reports.
func (c Candidate) String() string {
	return fmt.Sprintf("%s: offending=%d network=%d nodes/%d edges",
		strings.Join(c.Order, ","), c.Offending, c.Nodes, c.Edges)
}

// Choose costs the candidate left-deep orders of q against db and returns
// the best candidate plus the full ranking (best first). The best candidate
// minimizes offending tuples, breaking ties by network node count, then
// edge count, then lexicographic order (for determinism).
func Choose(db *relation.Database, q *query.Query, opts Options) (*Candidate, []Candidate, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	orders := connectedOrders(q, opts.maxOrders())
	if len(orders) == 0 {
		return nil, nil, fmt.Errorf("planner: no connected join order for %s", q.Name)
	}
	costDB, err := sampleDatabase(db, q, opts.SampleGroups)
	if err != nil {
		return nil, nil, err
	}
	cands := make([]Candidate, 0, len(orders))
	for _, order := range orders {
		plan, err := query.LeftDeepPlan(q, order)
		if err != nil {
			return nil, nil, err
		}
		res, err := engine.Evaluate(costDB, q, plan, engine.Options{
			Strategy:      core.PartialLineage,
			SkipInference: true,
		})
		if err != nil {
			return nil, nil, err
		}
		cands = append(cands, Candidate{
			Order:     order,
			Plan:      plan,
			Offending: res.Stats.OffendingTuples,
			Nodes:     res.Stats.NetworkNodes,
			Edges:     res.Stats.NetworkEdges,
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Offending != b.Offending {
			return a.Offending < b.Offending
		}
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		if a.Edges != b.Edges {
			return a.Edges < b.Edges
		}
		return strings.Join(a.Order, ",") < strings.Join(b.Order, ",")
	})
	best := cands[0]
	return &best, cands, nil
}

// connectedOrders enumerates left-deep atom orders whose every prefix shares
// a variable with the next atom (no cross products), up to limit orders.
// When the query is variable-disconnected, orders fall back to unrestricted
// permutations.
func connectedOrders(q *query.Query, limit int) [][]string {
	n := len(q.Atoms)
	varsOf := make([]map[string]bool, n)
	for i := range q.Atoms {
		varsOf[i] = make(map[string]bool)
		for _, v := range q.Atoms[i].Vars() {
			varsOf[i][v] = true
		}
	}
	connects := func(prefix map[string]bool, next int) bool {
		for v := range varsOf[next] {
			if prefix[v] {
				return true
			}
		}
		return false
	}
	var out [][]string
	used := make([]bool, n)
	prefixVars := make(map[string]bool)
	var current []string
	var rec func(requireConnected bool)
	rec = func(requireConnected bool) {
		if len(out) >= limit {
			return
		}
		if len(current) == n {
			out = append(out, append([]string(nil), current...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if requireConnected && len(current) > 0 && !connects(prefixVars, i) {
				continue
			}
			used[i] = true
			current = append(current, q.Atoms[i].Pred)
			var added []string
			for v := range varsOf[i] {
				if !prefixVars[v] {
					prefixVars[v] = true
					added = append(added, v)
				}
			}
			rec(requireConnected)
			for _, v := range added {
				delete(prefixVars, v)
			}
			current = current[:len(current)-1]
			used[i] = false
		}
	}
	rec(true)
	if len(out) == 0 {
		rec(false)
	}
	return out
}

// sampleDatabase restricts every relation to the rows whose first-head-
// attribute value is among the k smallest head values, to cost plans on a
// sample of answer groups. It returns db unchanged when k <= 0 or the query
// is Boolean or the head attribute cannot be located positionally.
func sampleDatabase(db *relation.Database, q *query.Query, k int) (*relation.Database, error) {
	if k <= 0 || len(q.Head) == 0 {
		return db, nil
	}
	head := q.Head[0]
	// Find, per predicate, the position of the head variable.
	headPos := make(map[string]int)
	for i := range q.Atoms {
		a := &q.Atoms[i]
		for j, t := range a.Args {
			if t.IsVar() && t.Var == head {
				headPos[a.Pred] = j
				break
			}
		}
	}
	if len(headPos) != len(q.Atoms) {
		return db, nil // head variable not in every atom: sample unsound
	}
	// Collect the k smallest distinct head values from the first atom.
	first, err := db.Relation(q.Atoms[0].Pred)
	if err != nil {
		return nil, err
	}
	pos := headPos[q.Atoms[0].Pred]
	distinct := make(map[string]tuple.Value)
	for _, row := range first.Rows {
		distinct[row.Tuple[pos].String()] = row.Tuple[pos]
	}
	values := make([]tuple.Value, 0, len(distinct))
	for _, v := range distinct {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i].Compare(values[j]) < 0 })
	if k < len(values) {
		values = values[:k]
	}
	keep := make(map[tuple.Value]bool, len(values))
	for _, v := range values {
		keep[v] = true
	}
	out := relation.NewDatabase()
	for i := range q.Atoms {
		pred := q.Atoms[i].Pred
		rel, err := db.Relation(pred)
		if err != nil {
			return nil, err
		}
		sampled := relation.New(rel.Name, rel.Attrs...)
		p := headPos[pred]
		for _, row := range rel.Rows {
			if keep[row.Tuple[p]] {
				sampled.Rows = append(sampled.Rows, row)
			}
		}
		out.AddRelation(sampled)
	}
	return out, nil
}
