// Package planner implements cost-aware plan selection — the paper's open
// question (i) in Section 8: "how to choose a query plan that minimizes the
// size ... of the output network".
//
// For a fixed query the number of offending tuples, and hence the size and
// width of the partial-lineage network, depends heavily on the join order:
// a join direction along a functional dependency that the instance satisfies
// is data-safe, while the reverse direction of the same join may condition
// thousands of tuples. The planner estimates each candidate order's offending
// count from pattern-visible selectivity alone — concrete constants in the
// query pattern, shared-variable connectivity, and per-variable distinct
// counts computed in one pass over the relations — with no statistics tables
// and no dry-run executions. Candidates are the connected left-deep orders
// (plus greedy completions when enumeration truncates), ranked by estimated
// offending tuples first, then estimated intermediate rows.
//
// The same package hosts the inference-backend cost model (see backend.go):
// the engine asks Rank for a per-answer attempt order over the exact and
// sampling backends, driven by the answer's lineage profile and treewidth
// estimate. Plan selection and backend ranking together form the Plan IR
// (type IR) that a single evaluation commits to up front.
package planner

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
)

// Source labels how an IR's physical plan was chosen.
const (
	// SourceSafe marks a safe plan from the hierarchy dichotomy: structurally
	// zero offending tuples, no ordering search needed.
	SourceSafe = "safe"
	// SourceGreedy marks a plan picked by the selectivity estimator among the
	// connected left-deep orders.
	SourceGreedy = "greedy"
	// SourceBody marks the static fallback: atoms joined in body order
	// (the legacy behavior, kept for the -no-adaptive-plan ablation).
	SourceBody = "body"
)

// IR is the plan intermediate representation an evaluation commits to once,
// up front: the physical plan, how it was chosen, and the estimator's cost
// figures for the chosen order. The engine threads the IR through execution
// so traces, EXPLAIN and metrics can report the planning decision.
type IR struct {
	// Source is SourceSafe, SourceGreedy or SourceBody.
	Source string
	// Order is the join order behind Physical (nil for safe plans, whose
	// shape is dictated by the hierarchy rather than an order).
	Order []string
	// Physical is the plan the engine executes.
	Physical *query.Plan
	// EstOffending is the estimator's offending-tuple count for Order
	// (0 for safe plans, which are structurally offending-free).
	EstOffending int
	// EstRows is the estimated total intermediate row count, the tie-break
	// cost proxy.
	EstRows float64
	// Candidates is the number of orders the estimator scored (0 when no
	// search ran).
	Candidates int
	// SelectTime is the wall time spent choosing the plan.
	SelectTime time.Duration
}

// Describe renders the IR for traces and EXPLAIN.
func (ir *IR) Describe() string {
	if ir == nil {
		return ""
	}
	s := ir.Source
	if len(ir.Order) > 0 {
		s += " " + strings.Join(ir.Order, ",")
	}
	if ir.Source == SourceGreedy {
		s += fmt.Sprintf(" (est offending=%d, candidates=%d)", ir.EstOffending, ir.Candidates)
	}
	return s
}

// Options bounds the search.
type Options struct {
	// MaxOrders caps the number of candidate join orders scored
	// (0 = default 64). Orders are enumerated deterministically.
	MaxOrders int
}

func (o Options) maxOrders() int {
	if o.MaxOrders <= 0 {
		return 64
	}
	return o.MaxOrders
}

// Candidate is one scored join order.
type Candidate struct {
	Order []string
	Plan  *query.Plan
	// EstOffending is the estimated number of offending tuples the order
	// produces (rounded); the primary ranking key.
	EstOffending int
	// EstRows is the estimated total intermediate row count; the tie-break.
	EstRows float64
}

// String renders the candidate for reports.
func (c Candidate) String() string {
	return fmt.Sprintf("%s: est offending=%d, est rows=%.0f",
		strings.Join(c.Order, ","), c.EstOffending, c.EstRows)
}

// Plan chooses the IR for q on db: the safe plan when the query is
// hierarchical (structurally zero offending tuples — no order can beat it),
// otherwise the connected left-deep order with the smallest estimated
// offending-tuple count.
func Plan(db *relation.Database, q *query.Query, opts Options) (*IR, error) {
	start := time.Now()
	if sp, err := query.SafePlan(q); err == nil {
		return &IR{Source: SourceSafe, Physical: sp, SelectTime: time.Since(start)}, nil
	}
	best, all, err := Choose(db, q, opts)
	if err != nil {
		return nil, err
	}
	return &IR{
		Source:       SourceGreedy,
		Order:        best.Order,
		Physical:     best.Plan,
		EstOffending: best.EstOffending,
		EstRows:      best.EstRows,
		Candidates:   len(all),
		SelectTime:   time.Since(start),
	}, nil
}

// BodyIR is the static fallback IR: atoms joined in body order, no search.
// It exists so the ablation path reports through the same IR plumbing.
func BodyIR(q *query.Query) (*IR, error) {
	start := time.Now()
	order := make([]string, len(q.Atoms))
	for i := range q.Atoms {
		order[i] = q.Atoms[i].Pred
	}
	plan, err := query.LeftDeepPlan(q, order)
	if err != nil {
		return nil, err
	}
	return &IR{Source: SourceBody, Order: order, Physical: plan, SelectTime: time.Since(start)}, nil
}

// Choose scores the candidate left-deep orders of q against db and returns
// the best candidate plus the full ranking (best first). The best candidate
// minimizes estimated offending tuples, breaking ties by estimated
// intermediate rows, then lexicographic order (for determinism). Candidates
// are the connected orders up to Options.MaxOrders plus, when enumeration
// truncates, the greedy completion from every start atom — so very wide
// queries still consider an order built step-by-step by the estimator.
func Choose(db *relation.Database, q *query.Query, opts Options) (*Candidate, []Candidate, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	est, err := newEstimator(db, q)
	if err != nil {
		return nil, nil, err
	}
	limit := opts.maxOrders()
	orders := connectedOrders(q, limit)
	if len(orders) == 0 {
		return nil, nil, fmt.Errorf("planner: no join order for %s", q.Name)
	}
	if len(orders) >= limit {
		// Enumeration truncated: add the greedy completions so at least one
		// estimator-guided order is always in the pool.
		seen := make(map[string]bool, len(orders))
		for _, o := range orders {
			seen[strings.Join(o, ",")] = true
		}
		for start := range q.Atoms {
			g := est.greedyOrder(start)
			if g != nil && !seen[strings.Join(g, ",")] {
				seen[strings.Join(g, ",")] = true
				orders = append(orders, g)
			}
		}
	}
	cands := make([]Candidate, 0, len(orders))
	for _, order := range orders {
		plan, err := query.LeftDeepPlan(q, order)
		if err != nil {
			return nil, nil, err
		}
		off, rows := est.estimateOrder(order)
		cands = append(cands, Candidate{
			Order:        order,
			Plan:         plan,
			EstOffending: off,
			EstRows:      rows,
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.EstOffending != b.EstOffending {
			return a.EstOffending < b.EstOffending
		}
		if a.EstRows != b.EstRows {
			return a.EstRows < b.EstRows
		}
		return strings.Join(a.Order, ",") < strings.Join(b.Order, ",")
	})
	best := cands[0]
	return &best, cands, nil
}

// connectedOrders enumerates left-deep atom orders whose every prefix shares
// a variable with the next atom (no cross products), up to limit orders.
// When the query is variable-disconnected, orders fall back to unrestricted
// permutations.
//
// The enumeration order is deterministic and part of the package contract
// (covered by a golden test): depth-first over atom indexes in ascending body
// position, so for q :- A(..), B(..), C(..) the first emitted order starts
// with A whenever A can start a connected order. Plan choice is therefore
// reproducible run-to-run at any parallelism — ties in the ranking resolve
// identically because the candidate list itself never reorders.
func connectedOrders(q *query.Query, limit int) [][]string {
	n := len(q.Atoms)
	varsOf := make([]map[string]bool, n)
	for i := range q.Atoms {
		varsOf[i] = make(map[string]bool)
		for _, v := range q.Atoms[i].Vars() {
			varsOf[i][v] = true
		}
	}
	connects := func(prefix map[string]bool, next int) bool {
		for v := range varsOf[next] {
			if prefix[v] {
				return true
			}
		}
		return false
	}
	var out [][]string
	used := make([]bool, n)
	prefixVars := make(map[string]bool)
	var current []string
	var rec func(requireConnected bool)
	rec = func(requireConnected bool) {
		if len(out) >= limit {
			return
		}
		if len(current) == n {
			out = append(out, append([]string(nil), current...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if requireConnected && len(current) > 0 && !connects(prefixVars, i) {
				continue
			}
			used[i] = true
			current = append(current, q.Atoms[i].Pred)
			var added []string
			for v := range varsOf[i] {
				if !prefixVars[v] {
					prefixVars[v] = true
					added = append(added, v)
				}
			}
			rec(requireConnected)
			for _, v := range added {
				delete(prefixVars, v)
			}
			current = current[:len(current)-1]
			used[i] = false
		}
	}
	rec(true)
	if len(out) == 0 {
		rec(false)
	}
	return out
}
