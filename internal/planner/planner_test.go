package planner

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// asymmetricDB builds an instance of q :- A(x), B(x, y), C(y) where the
// functional dependency x→y holds in B but y→x does not: joining A⋈B first
// is data-safe, joining C⋈B first conditions many tuples.
func asymmetricDB(t *testing.T) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	a := relation.New("A", "x")
	b := relation.New("B", "x", "y")
	c := relation.New("C", "y")
	for x := 1; x <= 12; x++ {
		a.MustAdd(tuple.Ints(int64(x)), 0.5)
		// Many x values share y = x mod 3: y→x is violated.
		b.MustAdd(tuple.Ints(int64(x), int64(x%3)), 0.5)
	}
	for y := 0; y < 3; y++ {
		c.MustAdd(tuple.Ints(int64(y)), 0.5)
	}
	db.AddRelation(a)
	db.AddRelation(b)
	db.AddRelation(c)
	return db
}

func TestChoosePrefersSafeDirection(t *testing.T) {
	db := asymmetricDB(t)
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	best, all, err := Choose(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Offending != 0 {
		t.Errorf("best plan %v has %d offending tuples, want 0", best.Order, best.Offending)
	}
	// The A-first direction is the safe one.
	if best.Order[0] != "A" && best.Order[0] != "B" {
		t.Errorf("best order = %v", best.Order)
	}
	// The C-first order must rank strictly worse.
	var cFirst *Candidate
	for i := range all {
		if all[i].Order[0] == "C" {
			cFirst = &all[i]
			break
		}
	}
	if cFirst == nil {
		t.Fatal("C-first order not enumerated")
	}
	if cFirst.Offending == 0 {
		t.Errorf("C-first order unexpectedly safe: %v", cFirst)
	}
	// All candidates compute the same probability.
	var probs []float64
	for _, c := range all {
		res, err := engine.Evaluate(db, q, c.Plan, engine.Options{Strategy: core.PartialLineage})
		if err != nil {
			t.Fatal(err)
		}
		probs = append(probs, res.BoolProb())
	}
	for _, p := range probs[1:] {
		if math.Abs(p-probs[0]) > 1e-9 {
			t.Errorf("candidate plans disagree: %v", probs)
		}
	}
}

func TestConnectedOrdersAvoidCrossProducts(t *testing.T) {
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	orders := connectedOrders(q, 100)
	for _, o := range orders {
		// A and C share no variable: neither may directly follow the other
		// at the start.
		if (o[0] == "A" && o[1] == "C") || (o[0] == "C" && o[1] == "A") {
			t.Errorf("cross-product prefix in %v", o)
		}
	}
	// 4 connected orders: A,B,*; B,*,*(2); C,B,A.
	if len(orders) != 4 {
		t.Errorf("got %d orders: %v", len(orders), orders)
	}
	// Disconnected query: falls back to all permutations.
	q2 := query.MustParse("q :- A(x), D(z)")
	if got := connectedOrders(q2, 100); len(got) != 2 {
		t.Errorf("disconnected query orders = %v", got)
	}
}

func TestChooseRespectsMaxOrders(t *testing.T) {
	db := asymmetricDB(t)
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	_, all, err := Choose(db, q, Options{MaxOrders: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("MaxOrders ignored: %d candidates", len(all))
	}
}

func TestChooseOnWorkloadQueryWithSampling(t *testing.T) {
	spec, err := workload.SpecByName("P1")
	if err != nil {
		t.Fatal(err)
	}
	p := workload.Params{N: 6, M: 40, Fanout: 3, RF: 0.2, RD: 1, Seed: 31}
	db, err := workload.GenerateFor(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	q := spec.Query()
	best, all, err := Choose(db, q, Options{SampleGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("expected multiple candidates, got %d", len(all))
	}
	// Sampling must not change the winner's relative standing drastically:
	// re-cost the best candidate on the full instance and check it is no
	// worse than the paper's default order.
	def, err := query.LeftDeepPlan(q, spec.JoinOrder)
	if err != nil {
		t.Fatal(err)
	}
	costFull := func(plan *query.Plan) int {
		res, err := engine.Evaluate(db, q, plan, engine.Options{Strategy: core.PartialLineage, SkipInference: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.OffendingTuples
	}
	if costFull(best.Plan) > costFull(def) {
		t.Errorf("optimizer pick (%v) worse than default order on the full instance", best.Order)
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Order: []string{"A", "B"}, Offending: 3, Nodes: 7, Edges: 9}
	s := c.String()
	if !strings.Contains(s, "A,B") || !strings.Contains(s, "offending=3") {
		t.Errorf("String = %q", s)
	}
}

func TestChooseErrors(t *testing.T) {
	db := relation.NewDatabase()
	q := query.MustParse("q :- A(x)")
	if _, _, err := Choose(db, q, Options{}); err == nil {
		t.Error("missing relation accepted")
	}
}
