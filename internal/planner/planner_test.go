package planner

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// asymmetricDB builds an instance of q :- A(x), B(x, y), C(y) where the
// functional dependency x→y holds in B but y→x does not: joining A⋈B first
// is data-safe, joining C⋈B first conditions many tuples.
func asymmetricDB(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	a := relation.New("A", "x")
	b := relation.New("B", "x", "y")
	c := relation.New("C", "y")
	for x := 1; x <= 12; x++ {
		a.MustAdd(tuple.Ints(int64(x)), 0.5)
		// Many x values share y = x mod 3: y→x is violated.
		b.MustAdd(tuple.Ints(int64(x), int64(x%3)), 0.5)
	}
	for y := 0; y < 3; y++ {
		c.MustAdd(tuple.Ints(int64(y)), 0.5)
	}
	db.AddRelation(a)
	db.AddRelation(b)
	db.AddRelation(c)
	return db
}

func TestChoosePrefersSafeDirection(t *testing.T) {
	db := asymmetricDB(t)
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	best, all, err := Choose(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best.EstOffending != 0 {
		t.Errorf("best plan %v has estimated %d offending tuples, want 0", best.Order, best.EstOffending)
	}
	// The A-first direction is the safe one.
	if best.Order[0] != "A" && best.Order[0] != "B" {
		t.Errorf("best order = %v", best.Order)
	}
	// The C-first order must rank strictly worse.
	var cFirst *Candidate
	for i := range all {
		if all[i].Order[0] == "C" {
			cFirst = &all[i]
			break
		}
	}
	if cFirst == nil {
		t.Fatal("C-first order not enumerated")
	}
	if cFirst.EstOffending == 0 {
		t.Errorf("C-first order unexpectedly estimated safe: %v", cFirst)
	}
}

func TestEstimatorSeesConstants(t *testing.T) {
	// With the constant selection B(x, 7) only one B row survives, so the
	// join key IS distinct and the direction that was offending without the
	// constant becomes safe.
	db := relation.NewDatabase()
	b := relation.New("B", "x", "y")
	c := relation.New("C", "y")
	for x := 1; x <= 10; x++ {
		b.MustAdd(tuple.Ints(int64(x), 7), 0.5)
	}
	c.MustAdd(tuple.Ints(7), 0.5)
	db.AddRelation(b)
	db.AddRelation(c)

	free := query.MustParse("q :- C(y), B(x, y)")
	est, err := newEstimator(db, free)
	if err != nil {
		t.Fatal(err)
	}
	if off, _ := est.estimateOrder([]string{"C", "B"}); off == 0 {
		t.Error("C,B without constants estimated safe; want offending > 0")
	}

	bound := query.MustParse("q :- C(y), B(3, y)")
	est2, err := newEstimator(db, bound)
	if err != nil {
		t.Fatal(err)
	}
	if off, _ := est2.estimateOrder([]string{"C", "B"}); off != 0 {
		t.Errorf("constant-bound B join estimated %d offending, want 0", off)
	}
	// The constant also cuts the filtered cardinality to one row.
	if rows := est2.atoms[est2.byPred["B"]].rows; rows != 1 {
		t.Errorf("B(3, y) filtered rows = %v, want 1", rows)
	}
}

func TestEstimatorRepeatedVariable(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "x", "y")
	r.MustAdd(tuple.Ints(1, 1), 0.5)
	r.MustAdd(tuple.Ints(1, 2), 0.5)
	r.MustAdd(tuple.Ints(2, 2), 0.5)
	db.AddRelation(r)
	q := query.MustParse("q :- R(x, x)")
	est, err := newEstimator(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if rows := est.atoms[0].rows; rows != 2 {
		t.Errorf("R(x, x) filtered rows = %v, want 2 (diagonal only)", rows)
	}
}

func TestConnectedOrdersAvoidCrossProducts(t *testing.T) {
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	orders := connectedOrders(q, 100)
	for _, o := range orders {
		// A and C share no variable: neither may directly follow the other
		// at the start.
		if (o[0] == "A" && o[1] == "C") || (o[0] == "C" && o[1] == "A") {
			t.Errorf("cross-product prefix in %v", o)
		}
	}
	// 4 connected orders: A,B,*; B,*,*(2); C,B,A.
	if len(orders) != 4 {
		t.Errorf("got %d orders: %v", len(orders), orders)
	}
	// Disconnected query: falls back to all permutations.
	q2 := query.MustParse("q :- A(x), D(z)")
	if got := connectedOrders(q2, 100); len(got) != 2 {
		t.Errorf("disconnected query orders = %v", got)
	}
}

// TestConnectedOrdersGolden pins the exact enumeration sequence: depth-first
// over ascending body positions. Plan choice downstream resolves ranking
// ties by this order, so it is part of the package contract.
func TestConnectedOrdersGolden(t *testing.T) {
	q := query.MustParse("q :- A(x), B(x, y), C(y), D(y, z)")
	want := [][]string{
		{"A", "B", "C", "D"},
		{"A", "B", "D", "C"},
		{"B", "A", "C", "D"},
		{"B", "A", "D", "C"},
		{"B", "C", "A", "D"},
		{"B", "C", "D", "A"},
		{"B", "D", "A", "C"},
		{"B", "D", "C", "A"},
		{"C", "B", "A", "D"},
		{"C", "B", "D", "A"},
		{"C", "D", "B", "A"},
		{"D", "B", "A", "C"},
		{"D", "B", "C", "A"},
		{"D", "C", "B", "A"},
	}
	got := connectedOrders(q, 1000)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("enumeration sequence changed:\ngot  %v\nwant %v", got, want)
	}
	// Truncation keeps the same prefix.
	if half := connectedOrders(q, 7); !reflect.DeepEqual(half, want[:7]) {
		t.Errorf("truncated enumeration = %v, want prefix of golden", half)
	}
}

func TestChooseRespectsMaxOrders(t *testing.T) {
	db := asymmetricDB(t)
	q := query.MustParse("q :- A(x), B(x, y), C(y)")
	_, all, err := Choose(db, q, Options{MaxOrders: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 2 enumerated orders plus at most one greedy completion per start atom.
	if len(all) < 2 || len(all) > 5 {
		t.Errorf("MaxOrders=2 gave %d candidates", len(all))
	}
	// Even truncated to a single enumerated order, the greedy completion
	// from the A start must keep a zero-offending candidate in the pool.
	best, _, err := Choose(db, q, Options{MaxOrders: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best.EstOffending != 0 {
		t.Errorf("MaxOrders=1 best = %v (est offending %d), want a safe order via greedy", best.Order, best.EstOffending)
	}
}

func TestPlanSafeQuery(t *testing.T) {
	db := asymmetricDB(t)
	// Hierarchical: safe plan exists, no search.
	q := query.MustParse("q :- A(x), B(x, y)")
	ir, err := Plan(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Source != SourceSafe || ir.Physical == nil || ir.EstOffending != 0 {
		t.Errorf("safe query IR = %+v", ir)
	}
	// Non-hierarchical: greedy search runs.
	q2 := query.MustParse("q :- A(x), B(x, y), C(y)")
	ir2, err := Plan(db, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ir2.Source != SourceGreedy || len(ir2.Order) != 3 || ir2.Candidates < 2 {
		t.Errorf("unsafe query IR = %+v", ir2)
	}
	if ir2.EstOffending != 0 {
		t.Errorf("greedy pick estimates %d offending, want 0", ir2.EstOffending)
	}
	if d := ir2.Describe(); !strings.Contains(d, "greedy") || !strings.Contains(d, ir2.Order[0]) {
		t.Errorf("Describe = %q", d)
	}
}

func TestBodyIR(t *testing.T) {
	q := query.MustParse("q :- C(y), B(x, y), A(x)")
	ir, err := BodyIR(q)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Source != SourceBody || !reflect.DeepEqual(ir.Order, []string{"C", "B", "A"}) {
		t.Errorf("BodyIR = %+v", ir)
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Order: []string{"A", "B"}, EstOffending: 3, EstRows: 7}
	s := c.String()
	if !strings.Contains(s, "A,B") || !strings.Contains(s, "offending=3") {
		t.Errorf("String = %q", s)
	}
}

func TestChooseErrors(t *testing.T) {
	db := relation.NewDatabase()
	q := query.MustParse("q :- A(x)")
	if _, _, err := Choose(db, q, Options{}); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestCostModelRank(t *testing.T) {
	m := DefaultCostModel()
	small := Profile{Expanded: true, Clauses: 4, Vars: 6}
	if m.NeedsWidth(small) {
		t.Error("small expanded lineage should not need a width estimate")
	}
	if got := m.Rank(small); got[0] != BackendShannon || got[len(got)-1] != BackendSample {
		t.Errorf("small profile rank = %v", got)
	}
	big := Profile{Expanded: true, Clauses: 100000, Vars: 500, HasWidth: true, Width: 30}
	if !m.NeedsWidth(Profile{Expanded: true, Clauses: 100000, Vars: 500}) {
		t.Error("large lineage should need a width estimate")
	}
	if got := m.Rank(big); got[0] != BackendVE {
		t.Errorf("wide profile rank = %v, want VE first", got)
	}
	narrow := Profile{HasWidth: true, Width: 3, NetVars: 50}
	if got := m.Rank(narrow); got[0] != BackendJTree || got[1] != BackendVE {
		t.Errorf("narrow unexpanded rank = %v, want jtree then ve", got)
	}
	for _, p := range []Profile{small, big, narrow, {}} {
		rank := m.Rank(p)
		if rank[len(rank)-1] != BackendSample {
			t.Errorf("rank for %+v does not end in sampling: %v", p, rank)
		}
		for _, b := range rank[:len(rank)-1] {
			if b == BackendShannon && !p.Expanded {
				t.Errorf("rank for unexpanded %+v includes Shannon: %v", p, rank)
			}
		}
	}
}

func TestBackendString(t *testing.T) {
	for b, want := range map[Backend]string{
		BackendShannon: "expand+shannon",
		BackendVE:      "ve",
		BackendJTree:   "jtree",
		BackendSample:  "sample",
	} {
		if b.String() != want {
			t.Errorf("Backend(%d).String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestSink(t *testing.T) {
	s := NewSink()
	s.Record("ve", true, 2*time.Millisecond)
	s.Record("ve", false, time.Millisecond)
	s.Record("expand+shannon", true, 0)
	snap := s.Snapshot()
	if st := snap["ve"]; st.Attempts != 2 || st.Wins != 1 || st.Fallbacks != 1 || st.Nanos != 3e6 {
		t.Errorf("ve stats = %+v", st)
	}
	if st := snap["expand+shannon"]; st.Wins != 1 {
		t.Errorf("shannon stats = %+v", st)
	}
	s.Reset()
	if len(s.Snapshot()) != 0 {
		t.Error("Reset did not clear")
	}
	// nil sink is inert.
	var nilSink *Sink
	nilSink.Record("ve", true, 0)
	if nilSink.Snapshot() != nil {
		t.Error("nil sink snapshot non-nil")
	}
}
