package planner

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
)

// The selectivity estimator. Everything it uses is visible in the query
// pattern plus one exact pass over each referenced relation: constants and
// repeated variables filter an atom's rows up front, and distinct counts per
// variable set are counted lazily from the filtered rows. No statistics
// tables, no sampling, no dry-run executions — the janus-datalog observation
// that pattern-visible selectivity is enough to order joins well carries
// over to offending-tuple estimation, because an offending tuple
// (Definition 5.14: uncertain, joining two or more tuples of the other side)
// is detectable from the other side's key-multiplicity profile, and that
// profile is a pair of counts the pattern exposes.

// keyStats profiles one side of a join: how many distinct key values it has
// and how many of them occur in two or more rows (the "multi" keys whose
// join partners become offending).
type keyStats struct {
	distinct float64
	multi    float64
}

// atomStats holds the filtered statistics of one atom.
type atomStats struct {
	pred   string
	vars   []string       // distinct variables, atom order
	varPos map[string]int // variable -> first argument position
	rows   float64        // rows surviving the atom's selections
	unc    float64        // of those, rows with p < 1
	tuples []relation.Row // the surviving rows, for distinct counting
	kMemo  map[string]keyStats
}

// keys returns the exact key profile of the filtered rows projected onto the
// given variables, memoized per variable set. The empty set behaves like a
// single key covering every row.
func (s *atomStats) keys(vars []string) keyStats {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	key := strings.Join(sorted, ",")
	if k, ok := s.kMemo[key]; ok {
		return k
	}
	var k keyStats
	if len(vars) == 0 {
		k.distinct = 1
		if s.rows >= 2 {
			k.multi = 1
		}
	} else {
		idx := make([]int, len(sorted))
		for i, v := range sorted {
			idx[i] = s.varPos[v]
		}
		counts := make(map[string]int, len(s.tuples))
		for _, row := range s.tuples {
			counts[row.Tuple.KeyAt(idx)]++
		}
		k.distinct = float64(len(counts))
		for _, c := range counts {
			if c >= 2 {
				k.multi++
			}
		}
	}
	s.kMemo[key] = k
	return k
}

// newAtomStats filters the relation's rows through the atom's constant and
// repeated-variable selections and counts what survives.
func newAtomStats(rel *relation.Relation, a *query.Atom) (*atomStats, error) {
	if len(a.Args) != len(rel.Attrs) {
		return nil, fmt.Errorf("planner: atom %s has %d args, relation has %d attributes",
			a.Pred, len(a.Args), len(rel.Attrs))
	}
	s := &atomStats{
		pred:   a.Pred,
		vars:   a.Vars(),
		varPos: make(map[string]int, len(a.Args)),
		kMemo:  make(map[string]keyStats),
	}
	for i, t := range a.Args {
		if t.IsVar() {
			if _, ok := s.varPos[t.Var]; !ok {
				s.varPos[t.Var] = i
			}
		}
	}
rows:
	for _, row := range rel.Rows {
		for i, t := range a.Args {
			if t.IsVar() {
				// Repeated variable: must match its first occurrence.
				if p := s.varPos[t.Var]; p != i && row.Tuple[i].Compare(row.Tuple[p]) != 0 {
					continue rows
				}
			} else if row.Tuple[i].Compare(t.Const) != 0 {
				continue rows
			}
		}
		s.tuples = append(s.tuples, row)
		s.rows++
		if row.P < 1 {
			s.unc++
		}
	}
	return s, nil
}

// estimator scores join orders for one (query, database) pair.
type estimator struct {
	q      *query.Query
	atoms  []*atomStats
	byPred map[string]int
}

func newEstimator(db *relation.Database, q *query.Query) (*estimator, error) {
	e := &estimator{q: q, byPred: make(map[string]int, len(q.Atoms))}
	for i := range q.Atoms {
		a := &q.Atoms[i]
		rel, err := db.Relation(a.Pred)
		if err != nil {
			return nil, err
		}
		s, err := newAtomStats(rel, a)
		if err != nil {
			return nil, err
		}
		e.atoms = append(e.atoms, s)
		e.byPred[a.Pred] = i
	}
	return e, nil
}

// prefixState is the estimator's model of a join prefix: estimated rows,
// estimated uncertain rows (conditioning and dedup make rows certain, so
// this shrinks as the prefix grows), per-variable distinct estimates, and
// the offending and cost accumulators. While the prefix is still a single
// atom its key profiles are computed exactly (atom != nil); afterwards they
// fall back to independence-style products.
type prefixState struct {
	atom      *atomStats // non-nil while the prefix is one unprojected scan
	vars      []string   // attributes of the prefix, first-appearance order
	isVar     map[string]bool
	rows      float64
	unc       float64
	d         map[string]float64 // per-variable distinct estimate
	offending float64
	cost      float64 // total intermediate rows across joins
}

func (e *estimator) start(atom int) *prefixState {
	s := e.atoms[atom]
	st := &prefixState{
		atom:  s,
		vars:  append([]string(nil), s.vars...),
		isVar: make(map[string]bool, len(s.vars)),
		rows:  s.rows,
		unc:   s.unc,
		d:     make(map[string]float64, len(s.vars)),
		cost:  s.rows,
	}
	for _, v := range s.vars {
		st.isVar[v] = true
		st.d[v] = s.keys([]string{v}).distinct
	}
	return st
}

func (st *prefixState) clone() *prefixState {
	out := &prefixState{
		atom:      st.atom,
		vars:      append([]string(nil), st.vars...),
		isVar:     make(map[string]bool, len(st.isVar)),
		rows:      st.rows,
		unc:       st.unc,
		d:         make(map[string]float64, len(st.d)),
		offending: st.offending,
		cost:      st.cost,
	}
	for v := range st.isVar {
		out.isVar[v] = true
	}
	for v, c := range st.d {
		out.d[v] = c
	}
	return out
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// extend joins the prefix with the given atom, updating the estimates in
// place. keep lists the variables still needed afterwards (the projection
// the physical plan inserts); nil keeps everything.
//
// The join model follows SafeJoin (Theorem 5.16): each side's uncertain
// tuples that match two or more rows of the other side are offending and
// get conditioned (becoming certain); surviving pairs multiply out into the
// result. The estimate of "matches ≥ 2 rows" is the other side's exact
// multi-key fraction when that side is a base atom, and a fanout-derived
// fraction for a joined prefix.
func (e *estimator) extend(st *prefixState, atom int, keep []string) {
	s := e.atoms[atom]
	var shared []string
	for _, v := range s.vars {
		if st.isVar[v] {
			shared = append(shared, v)
		}
	}
	// Key profile of the prefix side: exact while it is a single scan,
	// estimated (independence product, fanout-derived multi fraction) after.
	var dP, multiFracP float64
	if st.atom != nil {
		ks := st.atom.keys(shared)
		dP = math.Max(ks.distinct, 1)
		multiFracP = ks.multi / dP
	} else {
		dP = 1
		for _, v := range shared {
			dP *= st.d[v]
		}
		dP = math.Min(math.Max(dP, 1), math.Max(st.rows, 1))
		multiFracP = clamp01(math.Max(st.rows, 1)/dP - 1)
	}
	ksA := s.keys(shared)
	dA := math.Max(ksA.distinct, 1)
	multiFracA := ksA.multi / dA
	match := math.Min(dP, dA)
	fanP := math.Max(st.rows, 1) / dP
	fanA := math.Max(s.rows, 1) / dA
	svP := match / dP // fraction of each side's keys (≈ rows) that join
	svA := match / dA
	// Definition 5.14: an uncertain tuple joining ≥ 2 rows of the other side
	// is offending. Surviving uncertain tuples land on a multi key of the
	// other side with that side's multi-key frequency.
	offP := st.unc * svP * multiFracA
	offA := s.unc * svA * multiFracP
	st.offending += offP + offA
	// Conditioning makes the offending tuples certain before the join.
	uncP := math.Max(st.unc*svP-offP, 0)
	uncA := math.Max(s.unc*svA-offA, 0)
	rowsP := math.Max(st.rows*svP, 1)
	rowsA := math.Max(s.rows*svA, 1)
	rows := math.Max(match*fanP*fanA, 1)
	// An output pair is certain only when both inputs are.
	uncFrac := 1 - (1-clamp01(uncP/rowsP))*(1-clamp01(uncA/rowsA))
	st.atom = nil
	st.rows = rows
	st.unc = uncFrac * rows
	st.cost += rows
	for _, v := range s.vars {
		dv := s.keys([]string{v}).distinct
		if st.isVar[v] {
			st.d[v] = math.Min(st.d[v], dv)
		} else {
			st.isVar[v] = true
			st.vars = append(st.vars, v)
			st.d[v] = math.Min(dv, st.rows)
		}
	}
	if keep != nil {
		e.project(st, keep)
	}
}

// project narrows the prefix to the kept variables, re-estimating the row
// count as the (capped) product of the survivors' distinct counts. Dedup
// replaces every multi-row group with one certain tuple (Section 5.3.2), so
// only the estimated singleton groups keep their uncertainty.
func (e *estimator) project(st *prefixState, keep []string) {
	kept := make(map[string]bool, len(keep))
	for _, v := range keep {
		kept[v] = true
	}
	var vars []string
	groups := 1.0
	for _, v := range st.vars {
		if !kept[v] {
			delete(st.isVar, v)
			delete(st.d, v)
			continue
		}
		vars = append(vars, v)
		groups *= st.d[v]
	}
	st.vars = vars
	groups = math.Max(math.Min(groups, st.rows), 1)
	avgGroup := st.rows / groups
	singleton := clamp01(2 - avgGroup)
	st.unc = math.Min(st.unc, groups) * singleton
	st.rows = groups
}

// keepAfter returns the variables still needed after joining the atoms in
// order[:i+1]: head variables plus variables of the remaining atoms —
// mirroring the projections LeftDeepPlan inserts.
func (e *estimator) keepAfter(order []string, i int) []string {
	needed := make(map[string]bool, len(e.q.Head))
	for _, h := range e.q.Head {
		needed[h] = true
	}
	for j := i + 1; j < len(order); j++ {
		for _, v := range e.atoms[e.byPred[order[j]]].vars {
			needed[v] = true
		}
	}
	var keep []string
	for _, v := range e.q.Vars() {
		if needed[v] {
			keep = append(keep, v)
		}
	}
	return keep
}

// estimateOrder scores one full join order, returning the estimated
// offending-tuple count (rounded) and the total intermediate rows.
func (e *estimator) estimateOrder(order []string) (offending int, rows float64) {
	st := e.start(e.byPred[order[0]])
	for i := 1; i < len(order); i++ {
		var keep []string
		if i < len(order)-1 {
			keep = e.keepAfter(order, i)
		}
		e.extend(st, e.byPred[order[i]], keep)
	}
	return int(math.Round(st.offending)), st.cost
}

// greedyOrder builds one order from the given start atom, at each step
// joining the connected atom that minimizes (offending delta, resulting
// rows, predicate name). It returns nil when the query is disconnected from
// the start (some atom never becomes joinable).
func (e *estimator) greedyOrder(start int) []string {
	n := len(e.atoms)
	used := make([]bool, n)
	used[start] = true
	order := []string{e.atoms[start].pred}
	st := e.start(start)
	for len(order) < n {
		best := -1
		var bestSt *prefixState
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := false
			for _, v := range e.atoms[i].vars {
				if st.isVar[v] {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			cand := st.clone()
			e.extend(cand, i, nil)
			if best < 0 ||
				cand.offending < bestSt.offending ||
				(cand.offending == bestSt.offending && cand.rows < bestSt.rows) ||
				(cand.offending == bestSt.offending && cand.rows == bestSt.rows &&
					e.atoms[i].pred < e.atoms[best].pred) {
				best, bestSt = i, cand
			}
		}
		if best < 0 {
			return nil
		}
		used[best] = true
		order = append(order, e.atoms[best].pred)
		st = bestSt
	}
	return order
}
