package query

import "testing"

// FuzzParse exercises the parser on arbitrary input: it must never panic,
// and anything it accepts must validate and re-parse from its own rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"q(h) :- R1(h, x), S1(h, x, y), R2(h, y)",
		"q :- R(x, 7), S(x, 'paris')",
		"q() :- R(x)",
		"q :- R(x, x, y)",
		"q(h :- R(h)",
		"q :- r(h)",
		"q :- R('unterminated",
		"q :- R(,)",
		"",
		":-",
		"q :- R(2.5e3)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v (%q)", err, input)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering does not re-parse: %v (%q -> %q)", err, input, rendered)
		}
		if q2.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, q2.String())
		}
	})
}
