package query

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/tuple"
)

// Parse reads a conjunctive query in datalog syntax:
//
//	q(h) :- R1(h, x), S1(h, x, y), R2(h, y)
//
// Boolean queries omit the head arguments: `q() :- R(x), S(x, y)` or
// `q :- R(x), S(x, y)`. Arguments are variables (identifiers starting with a
// lowercase letter or underscore), integer/float constants, or single-quoted
// string constants. Predicate names are identifiers starting with an
// uppercase letter.
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("parsing query: %w (at offset %d of %q)", err, p.pos, input)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and fixed catalogs.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(p.src[p.pos]) {
		return "", fmt.Errorf("expected identifier")
	}
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseQuery() (*Query, error) {
	name, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("query name: %w", err)
	}
	q := &Query{Name: name}
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		p.skipSpace()
		for p.peek() != ')' {
			h, err := p.ident()
			if err != nil {
				return nil, fmt.Errorf("head variable: %w", err)
			}
			q.Head = append(q.Head, h)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
		}
		p.pos++ // ')'
	}
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], ":-") {
		return nil, fmt.Errorf("expected \":-\"")
	}
	p.pos += 2
	for {
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, *atom)
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("unexpected trailing input %q", p.src[p.pos:])
	}
	return q, nil
}

func (p *parser) parseAtom() (*Atom, error) {
	pred, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("predicate: %w", err)
	}
	if c := pred[0]; c < 'A' || c > 'Z' {
		return nil, fmt.Errorf("predicate %q must start with an uppercase letter", pred)
	}
	if err := p.expect('('); err != nil {
		return nil, fmt.Errorf("after predicate %s: %w", pred, err)
	}
	a := &Atom{Pred: pred}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, fmt.Errorf("in atom %s: %w", pred, err)
		}
		a.Args = append(a.Args, *t)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return a, nil
		default:
			return nil, fmt.Errorf("in atom %s: expected \",\" or \")\"", pred)
		}
	}
}

func (p *parser) parseTerm() (*Term, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '\'':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("unterminated string constant")
		}
		s := p.src[start:p.pos]
		p.pos++
		return &Term{Const: tuple.String(s)}, nil
	case c == '-' || c == '+' || ('0' <= c && c <= '9'):
		start := p.pos
		p.pos++
		for p.pos < len(p.src) {
			d := p.src[p.pos]
			isDigitish := d == '.' || ('0' <= d && d <= '9') || d == 'e' || d == 'E'
			// A sign is part of the number only directly after an exponent.
			isExpSign := (d == '-' || d == '+') && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E')
			if !isDigitish && !isExpSign {
				break
			}
			p.pos++
		}
		lit := p.src[start:p.pos]
		v := tuple.ParseValue(lit)
		if v.Kind() == tuple.KindString {
			return nil, fmt.Errorf("malformed numeric constant %q", lit)
		}
		return &Term{Const: v}, nil
	case c == '_' || ('a' <= c && c <= 'z'):
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Term{Var: v}, nil
	case 'A' <= c && c <= 'Z':
		return nil, fmt.Errorf("variables must start with a lowercase letter (got %q)", string(c))
	default:
		return nil, fmt.Errorf("expected a term")
	}
}
