package query

import (
	"fmt"
	"strings"
)

// Op identifies a plan operator.
type Op uint8

// Plan operators. Selections (constant bindings and repeated variables
// within one atom) are folded into OpScan.
const (
	OpScan Op = iota
	OpJoin
	OpProject
)

// Plan is a query-plan node. Scans bind a relation to query variables via
// their Atom; joins are natural joins on shared variable names; projections
// are duplicate-eliminating projections onto Cols.
type Plan struct {
	Op Op

	// OpScan
	Atom *Atom

	// OpProject
	Cols []string

	// OpJoin (Left also used as the input of OpProject)
	Left, Right *Plan
}

// Attrs returns the output attribute (variable) names of the plan node.
func (p *Plan) Attrs() []string {
	switch p.Op {
	case OpScan:
		return p.Atom.Vars()
	case OpProject:
		return append([]string(nil), p.Cols...)
	default:
		left := p.Left.Attrs()
		out := append([]string(nil), left...)
		seen := make(map[string]bool, len(left))
		for _, a := range left {
			seen[a] = true
		}
		for _, a := range p.Right.Attrs() {
			if !seen[a] {
				out = append(out, a)
			}
		}
		return out
	}
}

// String renders the plan as a one-line algebra expression.
func (p *Plan) String() string {
	switch p.Op {
	case OpScan:
		return p.Atom.String()
	case OpProject:
		return fmt.Sprintf("π{%s}(%s)", strings.Join(p.Cols, ","), p.Left.String())
	default:
		return fmt.Sprintf("(%s ⋈ %s)", p.Left.String(), p.Right.String())
	}
}

// Scan builds a scan node for the atom.
func Scan(a *Atom) *Plan { return &Plan{Op: OpScan, Atom: a} }

// Join builds a natural-join node.
func Join(l, r *Plan) *Plan { return &Plan{Op: OpJoin, Left: l, Right: r} }

// Project builds a duplicate-eliminating projection onto cols. If cols
// equals the input attributes as a set, the input is returned unchanged.
func Project(in *Plan, cols []string) *Plan {
	attrs := in.Attrs()
	if sameSet(attrs, cols) {
		return in
	}
	return &Plan{Op: OpProject, Left: in, Cols: append([]string(nil), cols...)}
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// LeftDeepPlan builds the left-deep plan for q that joins atoms in the given
// predicate order, inserting a duplicate-eliminating projection after each
// join onto the variables still needed (head variables plus variables of
// remaining atoms) — the plan shape of Table 1, e.g. π_y(R ⋈ S) ⋈ T.
func LeftDeepPlan(q *Query, order []string) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(order) != len(q.Atoms) {
		return nil, fmt.Errorf("join order lists %d predicates, query has %d atoms", len(order), len(q.Atoms))
	}
	byPred := make(map[string]*Atom, len(q.Atoms))
	for i := range q.Atoms {
		byPred[q.Atoms[i].Pred] = &q.Atoms[i]
	}
	atoms := make([]*Atom, len(order))
	for i, pred := range order {
		a, ok := byPred[pred]
		if !ok {
			return nil, fmt.Errorf("join order mentions %s, which is not an atom of %s", pred, q.Name)
		}
		atoms[i] = a
		delete(byPred, pred)
	}
	cur := Scan(atoms[0])
	for i := 1; i < len(atoms); i++ {
		cur = Join(cur, Scan(atoms[i]))
		if i == len(atoms)-1 {
			break // the final projection onto the head follows
		}
		// Project away variables no atom after position i needs.
		needed := make(map[string]bool, len(q.Head))
		for _, h := range q.Head {
			needed[h] = true
		}
		for j := i + 1; j < len(atoms); j++ {
			for _, v := range atoms[j].Vars() {
				needed[v] = true
			}
		}
		var cols []string
		for _, a := range cur.Attrs() {
			if needed[a] {
				cols = append(cols, a)
			}
		}
		cur = Project(cur, cols)
	}
	return forceProject(cur, q.Head), nil
}

// forceProject ends the plan with a projection onto cols even when the
// attribute set already matches (the final duplicate elimination is what
// aggregates each answer's probability) — unless the plan already ends in a
// projection onto the same columns, which would make the second one a no-op.
func forceProject(in *Plan, cols []string) *Plan {
	if in.Op == OpProject && sameSet(in.Cols, cols) {
		return in
	}
	return &Plan{Op: OpProject, Left: in, Cols: append([]string(nil), cols...)}
}

// Walk visits the plan tree in post-order.
func (p *Plan) Walk(visit func(*Plan)) {
	if p.Left != nil {
		p.Left.Walk(visit)
	}
	if p.Right != nil {
		p.Right.Walk(visit)
	}
	visit(p)
}
