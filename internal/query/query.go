// Package query represents conjunctive queries and their plans.
//
// Queries are written datalog-style:
//
//	q(h) :- R1(h, x), S1(h, x, y), R2(h, y)
//
// Head variables are answer ("group-by") variables; all other variables are
// existentially quantified. Constants (numbers or quoted strings) may appear
// as arguments and compile to selections. Following the paper, self-joins
// (a predicate used twice) are rejected.
//
// The package classifies queries as hierarchical (= safe, by the dichotomy
// of Dalvi–Suciu [8] for conjunctive queries without self-joins) and as
// strictly hierarchical (Definition 4.1, the class with bounded-treewidth
// lineage per Theorem 4.2), synthesizes safe plans for hierarchical queries,
// and builds left-deep plans for a given join order (Table 1).
package query

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// Term is one argument of an atom: either a variable or a constant.
type Term struct {
	Var   string      // non-empty for variables
	Const tuple.Value // used when Var == ""
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term; string constants are quoted so the rendering
// re-parses faithfully.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.Kind() == tuple.KindString {
		return "'" + t.Const.AsString() + "'"
	}
	return t.Const.String()
}

// Atom is one subgoal: a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// Vars returns the distinct variables of the atom, in first-occurrence order.
func (a *Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// String renders the atom.
func (a *Atom) String() string {
	s := a.Pred + "("
	for i, t := range a.Args {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + ")"
}

// Query is a conjunctive query: head variables plus a conjunction of atoms.
type Query struct {
	Name  string
	Head  []string
	Atoms []Atom
}

// String renders the query in the input syntax.
func (q *Query) String() string {
	s := q.Name + "("
	for i, h := range q.Head {
		if i > 0 {
			s += ", "
		}
		s += h
	}
	s += ") :- "
	for i := range q.Atoms {
		if i > 0 {
			s += ", "
		}
		s += q.Atoms[i].String()
	}
	return s
}

// Vars returns all distinct variables in first-occurrence order.
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for i := range q.Atoms {
		for _, v := range q.Atoms[i].Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// ExistentialVars returns the variables not in the head, sorted.
func (q *Query) ExistentialVars() []string {
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	var out []string
	for _, v := range q.Vars() {
		if !head[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks structural well-formedness: no self-joins, every head
// variable occurs in the body, and the query is non-empty.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("query %s has no atoms", q.Name)
	}
	seen := make(map[string]bool)
	for i := range q.Atoms {
		p := q.Atoms[i].Pred
		if seen[p] {
			return fmt.Errorf("query %s uses predicate %s twice: self-joins are not supported", q.Name, p)
		}
		seen[p] = true
		if len(q.Atoms[i].Args) == 0 {
			return fmt.Errorf("query %s: atom %s has no arguments", q.Name, p)
		}
	}
	vars := make(map[string]bool)
	for _, v := range q.Vars() {
		vars[v] = true
	}
	for _, h := range q.Head {
		if !vars[h] {
			return fmt.Errorf("query %s: head variable %s does not occur in the body", q.Name, h)
		}
	}
	return nil
}

// sg returns, for each existential variable, the set of atom indexes
// containing it (the subgoal function Sg of the paper). Head variables are
// treated as constants and excluded.
func (q *Query) sg() map[string]map[int]bool {
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	out := make(map[string]map[int]bool)
	for i := range q.Atoms {
		for _, v := range q.Atoms[i].Vars() {
			if head[v] {
				continue
			}
			if out[v] == nil {
				out[v] = make(map[int]bool)
			}
			out[v][i] = true
		}
	}
	return out
}

// IsHierarchical reports whether the query is hierarchical: for every pair
// of existential variables x, y, the subgoal sets Sg(x) and Sg(y) are either
// disjoint or one contains the other. By the dichotomy theorem [8], a
// conjunctive query without self-joins is safe iff it is hierarchical.
func (q *Query) IsHierarchical() bool {
	sg := q.sg()
	vars := make([]string, 0, len(sg))
	for v := range sg {
		vars = append(vars, v)
	}
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			a, b := sg[vars[i]], sg[vars[j]]
			if !subsetOrDisjoint(a, b) {
				return false
			}
		}
	}
	return true
}

// IsSafe is a synonym for IsHierarchical (queries here are conjunctive
// without self-joins, where the two notions coincide).
func (q *Query) IsSafe() bool { return q.IsHierarchical() }

// IsStrictlyHierarchical reports whether the atoms can be ordered so their
// existential-variable sets form a chain under inclusion (Definition 4.1).
// Strictly hierarchical queries are exactly those with bounded-treewidth
// lineage (Theorem 4.2).
func (q *Query) IsStrictlyHierarchical() bool {
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	sets := make([]map[string]bool, len(q.Atoms))
	for i := range q.Atoms {
		sets[i] = make(map[string]bool)
		for _, v := range q.Atoms[i].Vars() {
			if !head[v] {
				sets[i][v] = true
			}
		}
	}
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	for i := 0; i+1 < len(sets); i++ {
		if !containsAll(sets[i+1], sets[i]) {
			return false
		}
	}
	return true
}

func subsetOrDisjoint(a, b map[int]bool) bool {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	return inter == 0 || inter == len(a) || inter == len(b)
}

func containsAll(big, small map[string]bool) bool {
	for k := range small {
		if !big[k] {
			return false
		}
	}
	return true
}

// connectedComponents partitions atom indexes into components linked by
// shared existential variables.
func (q *Query) connectedComponents(atomIdx []int) [][]int {
	sg := q.sg()
	parent := make(map[int]int, len(atomIdx))
	for _, i := range atomIdx {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	inSet := make(map[int]bool, len(atomIdx))
	for _, i := range atomIdx {
		inSet[i] = true
	}
	for _, atoms := range sg {
		var prev = -1
		for _, i := range atomIdx {
			if atoms[i] {
				if prev >= 0 {
					parent[find(i)] = find(prev)
				}
				prev = i
			}
		}
	}
	groups := make(map[int][]int)
	var roots []int
	for _, i := range atomIdx {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	sort.Ints(roots)
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}
