package query

import (
	"strings"
	"testing"

	"repro/internal/tuple"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("q(h) :- R1(h, x), S1(h, x, y), R2(h, y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || len(q.Head) != 1 || q.Head[0] != "h" {
		t.Errorf("head = %v", q.Head)
	}
	if len(q.Atoms) != 3 || q.Atoms[1].Pred != "S1" || len(q.Atoms[1].Args) != 3 {
		t.Errorf("atoms = %v", q.Atoms)
	}
	round, err := Parse(q.String())
	if err != nil {
		t.Fatalf("String() does not re-parse: %v (%q)", err, q.String())
	}
	if round.String() != q.String() {
		t.Errorf("round trip: %q vs %q", round.String(), q.String())
	}
}

func TestParseBooleanAndConstants(t *testing.T) {
	q, err := Parse("q :- R(x, 7), S(x, 'paris'), T(x, 2.5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 0 {
		t.Errorf("expected Boolean query, head = %v", q.Head)
	}
	if got := q.Atoms[0].Args[1].Const; got != tuple.Int(7) {
		t.Errorf("int constant = %v", got)
	}
	if got := q.Atoms[1].Args[1].Const; got != tuple.String("paris") {
		t.Errorf("string constant = %v", got)
	}
	if got := q.Atoms[2].Args[1].Const; got != tuple.Float(2.5) {
		t.Errorf("float constant = %v", got)
	}
	q2, err := Parse("q() :- R(x)")
	if err != nil || len(q2.Head) != 0 {
		t.Errorf("empty head parens: %v %v", q2, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q(h)",
		"q(h) :- ",
		"q(h) :- r(h)",          // lowercase predicate
		"q(h) :- R(h,)",         // missing term
		"q(h) :- R(h) extra",    // trailing input
		"q(h) :- R(X)",          // uppercase variable
		"q(h) :- R('unclosed)",  // unterminated string
		"q(z) :- R(h)",          // head var not in body
		"q(h) :- R(h), R(h)",    // self-join
		"q(h) :- R(h), S(h,,x)", // empty term
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

// TestParseRenderingFixedPoint covers the numeric round-trip cases the
// fuzzer found: negative-zero floats, integral floats and exponent
// notation must all render to text that re-parses to the same query.
func TestParseRenderingFixedPoint(t *testing.T) {
	for _, input := range []string{
		"q :- A(-.0)",      // Float(-0) canonicalizes to Float(0), renders "0.0"
		"q :- A(1000000.)", // renders as 1e+06; the parser must read exponents
		"q :- A(5.0)",      // must stay a float, not collapse to the int 5
		"q :- A(5)",        // and ints stay ints
		"q :- A(2.5e-3)",
	} {
		q, err := Parse(input)
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("%q: rendering %q does not re-parse: %v", input, rendered, err)
		}
		if q2.String() != rendered {
			t.Errorf("%q: rendering not a fixed point: %q -> %q", input, rendered, q2.String())
		}
		if k1, k2 := q.Atoms[0].Args[0].Const.Kind(), q2.Atoms[0].Args[0].Const.Kind(); k1 != k2 {
			t.Errorf("%q: constant kind changed across round trip: %v -> %v", input, k1, k2)
		}
	}
	// Malformed numerics are rejected rather than silently becoming strings.
	if _, err := Parse("q :- A(1e)"); err == nil {
		t.Error("malformed numeric accepted")
	}
}

func TestVarsAndExistentialVars(t *testing.T) {
	q := MustParse("q(h) :- R(h, x), S(h, x, y)")
	vars := q.Vars()
	if len(vars) != 3 || vars[0] != "h" || vars[1] != "x" || vars[2] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	ex := q.ExistentialVars()
	if len(ex) != 2 || ex[0] != "x" || ex[1] != "y" {
		t.Errorf("ExistentialVars = %v", ex)
	}
}

func TestHierarchyClassification(t *testing.T) {
	cases := []struct {
		q            string
		hierarchical bool
		strict       bool
	}{
		// The canonical unsafe query q_u of Section 4.1.
		{"q :- R(x), S(x, y), T(y)", false, false},
		// Safe but not strictly hierarchical (Sec. 4.3.1's example).
		{"q :- R(x, y), S(x, z)", true, false},
		// Strictly hierarchical chain.
		{"q :- R(x), S(x, y)", true, true},
		{"q :- R(x, y), S(x, y, z)", true, true},
		// Single atom.
		{"q :- R(x, y)", true, true},
		// Head variables act as constants: P1 restricted per h is still the
		// unsafe pattern.
		{"q(h) :- R1(h, x), S1(h, x, y), R2(h, y)", false, false},
		// With y also in the head the query becomes hierarchical.
		{"q(h, y) :- R1(h, x), S1(h, x, y), R2(h, y)", true, true},
		// Example 3.6's query: R(x,y),S(y,z) is hierarchical? Sg(x)={R},
		// Sg(y)={R,S}, Sg(z)={S}: x,z disjoint, x⊂y, z⊂y — yes; and strictly
		// hierarchical: {x,y} vs {y,z} is not a chain — no.
		{"q :- R(x, y), S(y, z)", true, false},
	}
	for _, c := range cases {
		q := MustParse(c.q)
		if got := q.IsHierarchical(); got != c.hierarchical {
			t.Errorf("%s: IsHierarchical = %v, want %v", c.q, got, c.hierarchical)
		}
		if got := q.IsStrictlyHierarchical(); got != c.strict {
			t.Errorf("%s: IsStrictlyHierarchical = %v, want %v", c.q, got, c.strict)
		}
		if q.IsSafe() != q.IsHierarchical() {
			t.Errorf("%s: IsSafe diverges from IsHierarchical", c.q)
		}
	}
}

func TestLeftDeepPlanShape(t *testing.T) {
	q := MustParse("q(h) :- R1(h, x), S1(h, x, y), R2(h, y)")
	p, err := LeftDeepPlan(q, []string{"R1", "S1", "R2"})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: π{h}( π{h,y}(R1 ⋈ S1) ⋈ R2 )
	s := p.String()
	for _, want := range []string{"π{h}", "π{h,y}", "R1(h, x) ⋈ S1(h, x, y)", "⋈ R2(h, y)"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan %q missing %q", s, want)
		}
	}
	attrs := p.Attrs()
	if len(attrs) != 1 || attrs[0] != "h" {
		t.Errorf("plan attrs = %v", attrs)
	}
}

func TestLeftDeepPlanErrors(t *testing.T) {
	q := MustParse("q(h) :- R(h, x), S(h, x)")
	if _, err := LeftDeepPlan(q, []string{"R"}); err == nil {
		t.Error("short join order accepted")
	}
	if _, err := LeftDeepPlan(q, []string{"R", "T"}); err == nil {
		t.Error("unknown predicate accepted")
	}
}

func TestPlanAttrsAndWalk(t *testing.T) {
	q := MustParse("q :- R(x, y), S(y, z)")
	p, err := LeftDeepPlan(q, []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Attrs()) != 0 {
		t.Errorf("Boolean plan attrs = %v", p.Attrs())
	}
	count := 0
	p.Walk(func(*Plan) { count++ })
	if count != 4 { // scan, scan, join, project
		t.Errorf("Walk visited %d nodes", count)
	}
}

func TestProjectElidesNoOp(t *testing.T) {
	q := MustParse("q :- R(x, y)")
	scan := Scan(&q.Atoms[0])
	if got := Project(scan, []string{"y", "x"}); got != scan {
		t.Error("Project onto the same attribute set should elide")
	}
	if got := Project(scan, []string{"x"}); got == scan || got.Op != OpProject {
		t.Error("real projection elided")
	}
}

func TestSafePlanForSafeQueries(t *testing.T) {
	cases := []string{
		"q :- R(x, y), S(x, z)",
		"q :- R(x), S(x, y)",
		"q(h) :- R(h, x), S(h, x, y)",
		"q :- R(x, y)",
	}
	for _, s := range cases {
		q := MustParse(s)
		p, err := SafePlan(q)
		if err != nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		attrs := p.Attrs()
		if !sameSet(attrs, q.Head) {
			t.Errorf("%s: plan attrs %v, head %v", s, attrs, q.Head)
		}
	}
}

func TestSafePlanPaperExample(t *testing.T) {
	// Section 3: the safe plan for R(x,y),S(x,z) is π_∅(π_x(R) ⋈ π_x(S)).
	q := MustParse("q :- R(x, y), S(x, z)")
	p, err := SafePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "π{x}(R(x, y))") || !strings.Contains(s, "π{x}(S(x, z))") {
		t.Errorf("safe plan %q does not project both sides to x", s)
	}
}

func TestSafePlanRejectsUnsafe(t *testing.T) {
	for _, s := range []string{
		"q :- R(x), S(x, y), T(y)",
		"q(h) :- R1(h, x), S1(h, x, y), R2(h, y)",
	} {
		if _, err := SafePlan(MustParse(s)); err == nil {
			t.Errorf("%s: unsafe query got a safe plan", s)
		}
	}
}

func TestSafePlanDisconnectedHeadMismatch(t *testing.T) {
	// Hierarchical but disconnected with different head variables per
	// component: outside the supported class, must error (not silently
	// build an unsafe cross product).
	q := MustParse("q(h, k) :- R(h), T(k)")
	if _, err := SafePlan(q); err == nil {
		t.Error("expected schema-mismatch error")
	}
	// Boolean disconnected components share the empty schema: supported.
	q2 := MustParse("q :- R(x), T(y)")
	if _, err := SafePlan(q2); err != nil {
		t.Errorf("Boolean disconnected query rejected: %v", err)
	}
	// Hierarchical under the Boolean dichotomy, but its only plans need
	// per-answer grouping, which strict per-join data-safety (Prop. 3.2)
	// rules out: SafePlan must refuse rather than emit a non-1-1 join.
	q3 := MustParse("q(h, y) :- R1(h, x), S1(h, x, y), R2(h, y)")
	if _, err := SafePlan(q3); err == nil {
		t.Error("expected refusal for group-dependent safe query")
	}
}

func TestAtomVarsDeduplicates(t *testing.T) {
	q := MustParse("q :- R(x, x, y)")
	vars := q.Atoms[0].Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
}
