package query

import (
	"fmt"
	"sort"
)

// SafePlan synthesizes a plan for a hierarchical query in which every join
// is structurally 1-1 and therefore data-safe on every instance
// (Definition 3.3) — the construction of Dalvi–Suciu [8], adapted to this
// paper's per-operator discipline where only joins carry safety conditions
// (Proposition 3.2).
//
// The recursion keeps the invariant that every sub-plan's output schema is
// exactly its "kept" variable set and its tuples are distinct over that
// schema, so joins between sub-plans with equal schemas are 1-1. Head
// variables are treated as constants (the plan evaluates the query for every
// head binding at once).
//
// SafePlan returns an error for non-hierarchical (unsafe) queries, and for
// hierarchical queries whose recursion produces sibling sub-plans with
// different schemas. The latter happens in two cases outside the paper's
// scope: disconnected queries with distinct head variables per component
// (the paper restricts attention to connected queries), and queries whose
// safety relies on per-answer grouping — a head variable missing from some
// atom, as in q(h,y) :- R1(h,x), S1(h,x,y), R2(h,y). Such queries are
// hierarchical under the Boolean dichotomy, but no plan for them satisfies
// the paper's strict per-join data-safety (Proposition 3.2 demands the whole
// intermediate relation be independent, and tuples of different answers
// share uncertain inputs). The PartialLineage engine still evaluates them
// exactly, treating the cross-answer sharing as offending tuples.
func SafePlan(q *Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.IsHierarchical() {
		return nil, fmt.Errorf("query %s is not hierarchical, hence unsafe: no safe plan exists", q.Name)
	}
	idx := make([]int, len(q.Atoms))
	for i := range idx {
		idx[i] = i
	}
	keep := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		keep[h] = true
	}
	p, err := buildSafe(q, idx, keep)
	if err != nil {
		return nil, err
	}
	return forceProject(p, q.Head), nil
}

// buildSafe builds a plan over the given atoms whose output schema is
// keep ∩ vars(atoms) with distinct tuples.
func buildSafe(q *Query, atoms []int, keep map[string]bool) (*Plan, error) {
	if len(atoms) == 1 {
		a := &q.Atoms[atoms[0]]
		var cols []string
		for _, v := range a.Vars() {
			if keep[v] {
				cols = append(cols, v)
			}
		}
		// Projection of a base (independent) relation is always data-safe.
		return forceProject(Scan(a), cols), nil
	}
	comps := componentsBy(q, atoms, keep)
	if len(comps) > 1 {
		plans := make([]*Plan, len(comps))
		var schema []string
		for i, comp := range comps {
			p, err := buildSafe(q, comp, keep)
			if err != nil {
				return nil, err
			}
			attrs := p.Attrs()
			sort.Strings(attrs)
			if i == 0 {
				schema = attrs
			} else if !sameSet(schema, attrs) {
				return nil, fmt.Errorf("query %s: safe-plan components have mismatched schemas %v vs %v (disconnected query; evaluate the components separately)", q.Name, schema, attrs)
			}
			plans[i] = p
		}
		cur := plans[0]
		for _, p := range plans[1:] {
			cur = Join(cur, p) // equal schemas: a key-key join, structurally 1-1
		}
		return cur, nil
	}
	// Single connected component: find root variables present in every atom.
	roots := rootVars(q, atoms, keep)
	if len(roots) == 0 {
		return nil, fmt.Errorf("query %s: connected sub-query over %v has no root variable (not hierarchical)", q.Name, atoms)
	}
	grown := make(map[string]bool, len(keep)+len(roots))
	for v := range keep {
		grown[v] = true
	}
	for _, v := range roots {
		grown[v] = true
	}
	sub, err := buildSafe(q, atoms, grown)
	if err != nil {
		return nil, err
	}
	// Independent-project the roots back out.
	var cols []string
	for _, v := range sub.Attrs() {
		if keep[v] {
			cols = append(cols, v)
		}
	}
	return forceProject(sub, cols), nil
}

// componentsBy partitions the atoms into groups connected through
// existential variables outside keep.
func componentsBy(q *Query, atoms []int, keep map[string]bool) [][]int {
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	parent := make(map[int]int, len(atoms))
	for _, i := range atoms {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	varAtoms := make(map[string][]int)
	for _, i := range atoms {
		for _, v := range q.Atoms[i].Vars() {
			if head[v] || keep[v] {
				continue
			}
			varAtoms[v] = append(varAtoms[v], i)
		}
	}
	for _, as := range varAtoms {
		for i := 1; i < len(as); i++ {
			parent[find(as[i])] = find(as[0])
		}
	}
	groups := make(map[int][]int)
	var roots []int
	for _, i := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// rootVars returns the existential variables (outside keep) occurring in
// every one of the given atoms, sorted.
func rootVars(q *Query, atoms []int, keep map[string]bool) []string {
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	counts := make(map[string]int)
	for _, i := range atoms {
		for _, v := range q.Atoms[i].Vars() {
			if head[v] || keep[v] {
				continue
			}
			counts[v]++
		}
	}
	var out []string
	for v, c := range counts {
		if c == len(atoms) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
