package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/tuple"
)

// WriteCSV writes the relation as CSV: a header row with the attribute names
// followed by a trailing "p" column, then one row per tuple with the
// probability last.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, r.Attrs...), "p")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(r.Attrs)+1)
	for _, row := range r.Rows {
		for i, v := range row.Tuple {
			rec[i] = v.String()
		}
		rec[len(r.Attrs)] = strconv.FormatFloat(row.P, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation written by WriteCSV. The relation name is
// supplied by the caller (conventionally the file base name).
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation %s: reading header: %w", name, err)
	}
	if len(header) < 2 || header[len(header)-1] != "p" {
		return nil, fmt.Errorf("relation %s: header %v must end with probability column \"p\"", name, header)
	}
	r := New(name, header[:len(header)-1]...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation %s: line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation %s: line %d: %d fields, want %d", name, line, len(rec), len(header))
		}
		p, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("relation %s: line %d: bad probability %q: %w", name, line, rec[len(rec)-1], err)
		}
		t := make(tuple.Tuple, len(rec)-1)
		for i, f := range rec[:len(rec)-1] {
			t[i] = tuple.ParseValue(f)
		}
		if err := r.Add(t, p); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	return r, nil
}

// SaveDir writes every relation of the database to dir as <name>.csv,
// creating dir if necessary.
func (d *Database) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range d.order {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		err = d.rels[name].WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing relation %s: %w", name, err)
		}
	}
	return nil
}

// LoadDir reads every *.csv file in dir as a relation named after the file
// base name and returns the resulting database.
func LoadDir(dir string) (*Database, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no *.csv relations found in %s", dir)
	}
	db := NewDatabase()
	for _, path := range matches {
		name := filepath.Base(path)
		name = name[:len(name)-len(".csv")]
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		r, err := ReadCSV(name, f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		db.AddRelation(r)
	}
	return db, nil
}
