package relation

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// Functional-dependency analysis. Data-safety in the paper is driven by
// functional dependencies: the plan π_y(R ⋈ S) ⋈ T is data-safe exactly
// when S satisfies x→y (Section 4.1), and the workload generator's r_f
// parameter is the fraction of FD-violating prefixes (Section 6.1). These
// helpers let applications measure how far a relation is from satisfying a
// dependency — the same "distance from the ideal setting" the offending
// tuples quantify.

// FDViolation is one determinant group violating a functional dependency:
// a left-hand-side value with two or more distinct right-hand sides.
type FDViolation struct {
	// LHS is the determinant value (projection onto the dependency's
	// left-hand side).
	LHS tuple.Tuple
	// Rows are the indexes of the group's rows in the relation.
	Rows []int
	// RHSCount is the number of distinct right-hand-side values.
	RHSCount int
}

// CheckFD verifies the functional dependency lhs → rhs on the relation and
// returns the violating groups, sorted by determinant value. An empty
// result means the dependency holds. Attribute names must exist in the
// schema and rhs must not be empty.
func (r *Relation) CheckFD(lhs, rhs []string) ([]FDViolation, error) {
	if len(rhs) == 0 {
		return nil, fmt.Errorf("relation %s: empty right-hand side", r.Name)
	}
	lidx, err := r.Attrs.Indexes(lhs)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", r.Name, err)
	}
	ridx, err := r.Attrs.Indexes(rhs)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", r.Name, err)
	}
	type group struct {
		lhs  tuple.Tuple
		rows []int
		rhs  map[string]bool
	}
	groups := make(map[string]*group)
	for i, row := range r.Rows {
		k := row.Tuple.KeyAt(lidx)
		g, ok := groups[k]
		if !ok {
			g = &group{lhs: row.Tuple.Project(lidx), rhs: make(map[string]bool)}
			groups[k] = g
		}
		g.rows = append(g.rows, i)
		g.rhs[row.Tuple.KeyAt(ridx)] = true
	}
	var out []FDViolation
	for _, g := range groups {
		if len(g.rhs) > 1 {
			out = append(out, FDViolation{LHS: g.lhs, Rows: g.rows, RHSCount: len(g.rhs)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LHS.Compare(out[j].LHS) < 0 })
	return out, nil
}

// FDViolationFraction returns the fraction of determinant groups violating
// lhs → rhs — the empirical r_f of Section 6.1.
func (r *Relation) FDViolationFraction(lhs, rhs []string) (float64, error) {
	violations, err := r.CheckFD(lhs, rhs)
	if err != nil {
		return 0, err
	}
	lidx, err := r.Attrs.Indexes(lhs)
	if err != nil {
		return 0, err
	}
	groups := make(map[string]bool)
	for _, row := range r.Rows {
		groups[row.Tuple.KeyAt(lidx)] = true
	}
	if len(groups) == 0 {
		return 0, nil
	}
	return float64(len(violations)) / float64(len(groups)), nil
}

// Keys reports whether the given attributes form a key of the relation:
// no two rows agree on all of them. A relation keyed on the join attributes
// makes the corresponding join side 1-1 (Proposition 3.2).
func (r *Relation) Keys(attrs []string) (bool, error) {
	idx, err := r.Attrs.Indexes(attrs)
	if err != nil {
		return false, fmt.Errorf("relation %s: %w", r.Name, err)
	}
	seen := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		k := row.Tuple.KeyAt(idx)
		if seen[k] {
			return false, nil
		}
		seen[k] = true
	}
	return true, nil
}
