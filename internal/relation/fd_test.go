package relation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tuple"
)

func fdFixture() *Relation {
	r := New("S", "x", "y", "z")
	r.MustAdd(tuple.Ints(1, 1, 1), 0.5)
	r.MustAdd(tuple.Ints(1, 2, 1), 0.5) // x=1 violates x→y
	r.MustAdd(tuple.Ints(2, 3, 2), 0.5)
	r.MustAdd(tuple.Ints(3, 4, 3), 0.5)
	r.MustAdd(tuple.Ints(3, 4, 4), 0.5) // x=3 violates x→z but not x→y
	return r
}

func TestCheckFD(t *testing.T) {
	r := fdFixture()
	vio, err := r.CheckFD([]string{"x"}, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) != 1 || !vio[0].LHS.Equal(tuple.Ints(1)) || vio[0].RHSCount != 2 || len(vio[0].Rows) != 2 {
		t.Errorf("x→y violations = %+v", vio)
	}
	vio2, err := r.CheckFD([]string{"x"}, []string{"y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio2) != 2 {
		t.Errorf("x→yz violations = %+v", vio2)
	}
	// Violations are sorted by determinant.
	if vio2[0].LHS.Compare(vio2[1].LHS) >= 0 {
		t.Error("violations not sorted")
	}
	// x,y → z: only the (3,4) group violates.
	vio3, err := r.CheckFD([]string{"x", "y"}, []string{"z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vio3) != 1 || !vio3[0].LHS.Equal(tuple.Ints(3, 4)) {
		t.Errorf("xy→z violations = %+v", vio3)
	}
	if _, err := r.CheckFD([]string{"nope"}, []string{"y"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := r.CheckFD([]string{"x"}, nil); err == nil {
		t.Error("empty RHS accepted")
	}
}

func TestFDViolationFraction(t *testing.T) {
	r := fdFixture()
	frac, err := r.FDViolationFraction([]string{"x"}, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-1.0/3) > 1e-12 { // one of three x-groups violates
		t.Errorf("fraction = %g, want 1/3", frac)
	}
	empty := New("E", "a", "b")
	if f, err := empty.FDViolationFraction([]string{"a"}, []string{"b"}); err != nil || f != 0 {
		t.Errorf("empty relation: %g, %v", f, err)
	}
}

func TestKeys(t *testing.T) {
	r := fdFixture()
	if ok, _ := r.Keys([]string{"x"}); ok {
		t.Error("x accepted as key despite duplicates")
	}
	if ok, _ := r.Keys([]string{"x", "y", "z"}); !ok {
		t.Error("full schema rejected as key")
	}
	if ok, _ := r.Keys([]string{"x", "y"}); ok {
		t.Error("(x,y) accepted as key despite the (3,4) duplicate")
	}
	if _, err := r.Keys([]string{"missing"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

// TestFDFractionTracksGeneratorRF ties the FD utilities back to the
// workload story: on synthetic data built with a given violation rate, the
// measured fraction matches.
func TestFDFractionTracksGeneratorRF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := New("S", "x", "y")
	const groups = 400
	const rf = 0.25
	row := 0
	for x := 1; x <= groups; x++ {
		r.MustAdd(tuple.Ints(int64(x), int64(rng.Intn(50))), 0.5)
		row++
		if rng.Float64() < rf {
			r.MustAdd(tuple.Ints(int64(x), int64(50+rng.Intn(50))), 0.5)
			row++
		}
	}
	frac, err := r.FDViolationFraction([]string{"x"}, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-rf) > 0.07 {
		t.Errorf("measured fraction %g, want ≈ %g", frac, rf)
	}
}
