// Package relation implements tuple-independent probabilistic relations and
// databases (Section 2 of the paper).
//
// A tuple-independent relation (R, p) assigns each tuple an independent
// presence probability p(t) ∈ [0,1]. A probabilistic database is a named
// collection of such relations; the joint distribution is the product space
// over the relations (Eq. 1 of the paper).
//
// The package also provides exhaustive possible-world enumeration for small
// instances, used throughout the test suite to validate the operator
// semantics of the pL engine against Definition 2.1.
package relation

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/tuple"
)

// ErrInvalidProb reports a presence probability outside [0,1] (including
// NaN). It is the typed cause of every probability rejection in this
// package — Add and SetProb return it at insert time, ValidateProbs returns
// it from the engine-boundary backstop — so callers can match it with
// errors.Is regardless of which layer caught the bad value.
var ErrInvalidProb = errors.New("probability outside [0,1]")

// ErrNoSuchTuple reports that SetProb or Delete named a tuple the relation
// does not contain. Matchable with errors.Is.
var ErrNoSuchTuple = errors.New("no such tuple")

// validProb reports whether p is a usable presence probability.
func validProb(p float64) bool {
	return !math.IsNaN(p) && p >= 0 && p <= 1
}

// Row is one tuple of a probabilistic relation together with its independent
// presence probability.
type Row struct {
	Tuple tuple.Tuple
	P     float64
}

// Relation is a tuple-independent probabilistic relation: a schema plus rows
// with independent presence probabilities.
type Relation struct {
	Name  string
	Attrs tuple.Schema
	Rows  []Row
}

// New creates an empty relation with the given name and attribute names.
func New(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: tuple.Schema(attrs)}
}

// Add appends a tuple with probability p. It returns an error if the tuple
// width does not match the schema or p is outside [0,1].
func (r *Relation) Add(t tuple.Tuple, p float64) error {
	if len(t) != len(r.Attrs) {
		return fmt.Errorf("relation %s: tuple %v has width %d, schema has %d", r.Name, t, len(t), len(r.Attrs))
	}
	if !validProb(p) {
		return fmt.Errorf("relation %s: tuple %v: probability %v: %w", r.Name, t, p, ErrInvalidProb)
	}
	r.Rows = append(r.Rows, Row{Tuple: t, P: p})
	return nil
}

// Find returns the index of the first row holding exactly t, or -1. With
// duplicate tuples (distinct independent events sharing the same values)
// the first occurrence wins; mutate Rows directly to address a specific
// duplicate.
func (r *Relation) Find(t tuple.Tuple) int {
	for i, row := range r.Rows {
		if row.Tuple.Equal(t) {
			return i
		}
	}
	return -1
}

// SetProb updates the presence probability of the first row holding exactly
// t, returning the row index and the previous probability. It rejects
// probabilities outside [0,1] with ErrInvalidProb and missing tuples with
// ErrNoSuchTuple. Row order is untouched, so row indexes observed before the
// call stay valid — the property delta-based incremental maintenance relies
// on.
func (r *Relation) SetProb(t tuple.Tuple, p float64) (row int, old float64, err error) {
	if !validProb(p) {
		return -1, 0, fmt.Errorf("relation %s: tuple %v: probability %v: %w", r.Name, t, p, ErrInvalidProb)
	}
	i := r.Find(t)
	if i < 0 {
		return -1, 0, fmt.Errorf("relation %s: tuple %v: %w", r.Name, t, ErrNoSuchTuple)
	}
	old = r.Rows[i].P
	r.Rows[i].P = p
	return i, old, nil
}

// Delete removes the first row holding exactly t, returning its former index
// and probability, or ErrNoSuchTuple. Later rows shift down one index — a
// structural change that invalidates any row-index bookkeeping derived from
// the previous state.
func (r *Relation) Delete(t tuple.Tuple) (row int, old float64, err error) {
	i := r.Find(t)
	if i < 0 {
		return -1, 0, fmt.Errorf("relation %s: tuple %v: %w", r.Name, t, ErrNoSuchTuple)
	}
	old = r.Rows[i].P
	r.Rows = append(r.Rows[:i], r.Rows[i+1:]...)
	return i, old, nil
}

// ValidateProbs checks every row's probability is a number in [0,1],
// reporting the relation, tuple and offending value. Add enforces this on
// entry, but Rows is an exported field: callers that build relations
// directly (or mutate probabilities in place) bypass Add, and the engine
// validates at its evaluation boundary so bad data surfaces as a
// descriptive error there instead of a panic deep inside a solver.
func (r *Relation) ValidateProbs() error {
	for _, row := range r.Rows {
		if !validProb(row.P) {
			return fmt.Errorf("relation %s: tuple %v: probability %v: %w", r.Name, row.Tuple, row.P, ErrInvalidProb)
		}
	}
	return nil
}

// MustAdd is Add that panics on error, for tests and examples.
func (r *Relation) MustAdd(t tuple.Tuple, p float64) {
	if err := r.Add(t, p); err != nil {
		panic(err)
	}
}

// AddInts appends a tuple of integer values with probability p.
func (r *Relation) AddInts(p float64, vs ...int64) error {
	return r.Add(tuple.Ints(vs...), p)
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone returns a deep-enough copy: rows are copied, tuples are shared
// (tuples are immutable by convention).
func (r *Relation) Clone() *Relation {
	out := &Relation{Name: r.Name, Attrs: r.Attrs.Clone(), Rows: make([]Row, len(r.Rows))}
	copy(out.Rows, r.Rows)
	return out
}

// Deterministic reports whether every row has probability exactly 1.
func (r *Relation) Deterministic() bool {
	for _, row := range r.Rows {
		if row.P != 1 {
			return false
		}
	}
	return true
}

// UncertainCount returns the number of rows with probability strictly below 1.
func (r *Relation) UncertainCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.P < 1 {
			n++
		}
	}
	return n
}

// Validate checks the schema and that no two rows repeat the same tuple
// (a tuple-independent relation is a set of tuples).
func (r *Relation) Validate() error {
	if err := r.Attrs.Validate(); err != nil {
		return fmt.Errorf("relation %s: %w", r.Name, err)
	}
	seen := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		if len(row.Tuple) != len(r.Attrs) {
			return fmt.Errorf("relation %s: row %v width mismatch", r.Name, row.Tuple)
		}
		k := row.Tuple.Key()
		if seen[k] {
			return fmt.Errorf("relation %s: duplicate tuple %v", r.Name, row.Tuple)
		}
		seen[k] = true
	}
	return nil
}

// Sort orders the rows lexicographically by tuple value, giving the relation
// a canonical row order. It is used to make generator output and test
// fixtures deterministic.
func (r *Relation) Sort() {
	sort.Slice(r.Rows, func(i, j int) bool {
		return r.Rows[i].Tuple.Compare(r.Rows[j].Tuple) < 0
	})
}

// Database is a named collection of tuple-independent relations. Relations
// are assumed mutually independent (product space, Section 2).
type Database struct {
	rels  map[string]*Relation
	order []string
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// AddRelation registers r under its name, replacing any previous relation
// with the same name.
func (d *Database) AddRelation(r *Relation) {
	if _, exists := d.rels[r.Name]; !exists {
		d.order = append(d.order, r.Name)
	}
	d.rels[r.Name] = r
}

// Relation returns the named relation, or an error if absent.
func (d *Database) Relation(name string) (*Relation, error) {
	r, ok := d.rels[name]
	if !ok {
		return nil, fmt.Errorf("database has no relation %q", name)
	}
	return r, nil
}

// Names returns the relation names in insertion order.
func (d *Database) Names() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Validate validates every relation.
func (d *Database) Validate() error {
	for _, name := range d.order {
		if err := d.rels[name].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalRows returns the total number of rows across all relations.
func (d *Database) TotalRows() int {
	n := 0
	for _, name := range d.order {
		n += d.rels[name].Len()
	}
	return n
}
