package relation

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
)

func TestAddValidation(t *testing.T) {
	r := New("R", "a", "b")
	if err := r.Add(tuple.Ints(1, 2), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(tuple.Ints(1), 0.5); err == nil {
		t.Error("width mismatch accepted")
	}
	if err := r.Add(tuple.Ints(1, 2), -0.1); err == nil {
		t.Error("negative probability accepted")
	}
	if err := r.Add(tuple.Ints(1, 2), 1.1); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := r.Add(tuple.Ints(1, 2), math.NaN()); err == nil {
		t.Error("NaN probability accepted")
	}
}

func TestValidateDuplicates(t *testing.T) {
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(1), 0.7)
	if err := r.Validate(); err == nil {
		t.Error("duplicate tuple accepted by Validate")
	}
}

func TestDeterministicAndUncertainCount(t *testing.T) {
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 1)
	r.MustAdd(tuple.Ints(2), 0.5)
	if r.Deterministic() {
		t.Error("relation with p<1 reported deterministic")
	}
	if got := r.UncertainCount(); got != 1 {
		t.Errorf("UncertainCount = %d", got)
	}
	r2 := New("S", "a")
	r2.MustAdd(tuple.Ints(1), 1)
	if !r2.Deterministic() {
		t.Error("all-certain relation not reported deterministic")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.5)
	c := r.Clone()
	c.Rows[0].P = 0.9
	c.MustAdd(tuple.Ints(2), 0.1)
	if r.Rows[0].P != 0.5 || r.Len() != 1 {
		t.Error("Clone shares row storage with original")
	}
}

func TestSortCanonical(t *testing.T) {
	r := New("R", "a", "b")
	r.MustAdd(tuple.Ints(2, 1), 0.5)
	r.MustAdd(tuple.Ints(1, 9), 0.5)
	r.MustAdd(tuple.Ints(1, 2), 0.5)
	r.Sort()
	want := []tuple.Tuple{tuple.Ints(1, 2), tuple.Ints(1, 9), tuple.Ints(2, 1)}
	for i, w := range want {
		if !r.Rows[i].Tuple.Equal(w) {
			t.Errorf("row %d = %v, want %v", i, r.Rows[i].Tuple, w)
		}
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db := NewDatabase()
	r := New("R", "a")
	s := New("S", "a")
	db.AddRelation(r)
	db.AddRelation(s)
	if got, _ := db.Relation("R"); got != r {
		t.Error("Relation(R) wrong")
	}
	if _, err := db.Relation("T"); err == nil {
		t.Error("missing relation accepted")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("Names = %v", names)
	}
	// Replacing keeps one entry.
	db.AddRelation(New("R", "b"))
	if len(db.Names()) != 2 {
		t.Errorf("replacement duplicated name: %v", db.Names())
	}
	r.MustAdd(tuple.Ints(1), 1)
	s.MustAdd(tuple.Ints(1), 1)
	s.MustAdd(tuple.Ints(2), 1)
	// Note: db now holds the replaced empty "R".
	if db.TotalRows() != 2 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
}

func TestWorldsEnumerationProbabilitiesSumToOne(t *testing.T) {
	db := NewDatabase()
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.3)
	r.MustAdd(tuple.Ints(2), 1)   // always present
	r.MustAdd(tuple.Ints(3), 0)   // never present
	r.MustAdd(tuple.Ints(4), 0.6) // uncertain
	db.AddRelation(r)
	worlds, err := db.Worlds()
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 4 { // two uncertain rows
		t.Fatalf("got %d worlds, want 4", len(worlds))
	}
	sum := 0.0
	for _, w := range worlds {
		sum += w.P
		if !w.Has("R", 1) {
			t.Error("certain row missing from a world")
		}
		if w.Has("R", 2) {
			t.Error("impossible row present in a world")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("world probabilities sum to %g", sum)
	}
}

func TestWorldsMarginalMatchesRowProbability(t *testing.T) {
	db := NewDatabase()
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.25)
	r.MustAdd(tuple.Ints(2), 0.5)
	db.AddRelation(r)
	worlds, err := db.Worlds()
	if err != nil {
		t.Fatal(err)
	}
	marg := 0.0
	for _, w := range worlds {
		if w.Has("R", 0) {
			marg += w.P
		}
	}
	if math.Abs(marg-0.25) > 1e-12 {
		t.Errorf("marginal of row 0 = %g, want 0.25", marg)
	}
}

func TestWorldsLimit(t *testing.T) {
	db := NewDatabase()
	r := New("R", "a")
	for i := 0; i <= MaxWorldRows; i++ {
		r.MustAdd(tuple.Ints(int64(i)), 0.5)
	}
	db.AddRelation(r)
	if _, err := db.Worlds(); err == nil {
		t.Error("expected error above MaxWorldRows")
	}
	if n, err := db.WorldCount(); err != nil || n != 1<<(MaxWorldRows+1) {
		t.Errorf("WorldCount = %d, %v", n, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New("R", "h", "name")
	r.MustAdd(tuple.Of(tuple.Int(1), tuple.String("alice")), 0.5)
	r.MustAdd(tuple.Of(tuple.Int(2), tuple.String("bob,jr")), 1)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.Rows[0].Tuple.Equal(r.Rows[0].Tuple) || got.Rows[1].P != 1 {
		t.Errorf("round trip mismatch: %+v", got.Rows)
	}
	if got.Attrs.Index("name") != 1 {
		t.Errorf("schema lost: %v", got.Attrs)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("R", bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Error("header without p column accepted")
	}
	if _, err := ReadCSV("R", bytes.NewBufferString("a,p\n1,notanumber\n")); err == nil {
		t.Error("bad probability accepted")
	}
	if _, err := ReadCSV("R", bytes.NewBufferString("a,p\n1,2\n")); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase()
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.5)
	s := New("S", "a", "b")
	s.MustAdd(tuple.Ints(1, 2), 1)
	db.AddRelation(r)
	db.AddRelation(s)
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := got.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	if gr.Len() != 1 || gr.Rows[0].P != 0.5 {
		t.Errorf("loaded R = %+v", gr.Rows)
	}
	if _, err := LoadDir(filepath.Join(dir, "empty")); err == nil {
		t.Error("empty dir accepted")
	}
}

// TestAddRejectsInvalidProbTyped is the insert-time regression for the
// typed probability error: NaN, -0.1 and 1.5 are all rejected by Add with
// ErrInvalidProb, not deferred to the engine-boundary ValidateProbs backstop.
func TestAddRejectsInvalidProbTyped(t *testing.T) {
	for _, p := range []float64{math.NaN(), -0.1, 1.5} {
		r := New("R", "a")
		err := r.Add(tuple.Ints(1), p)
		if err == nil {
			t.Fatalf("Add accepted probability %v", p)
		}
		if !errors.Is(err, ErrInvalidProb) {
			t.Errorf("Add(%v) error %v is not ErrInvalidProb", p, err)
		}
		if r.Len() != 0 {
			t.Errorf("Add(%v) rejected the value but stored the row", p)
		}
		// The engine-boundary backstop reports the same typed cause for rows
		// written directly into Rows.
		r.Rows = append(r.Rows, Row{Tuple: tuple.Ints(1), P: p})
		if err := r.ValidateProbs(); !errors.Is(err, ErrInvalidProb) {
			t.Errorf("ValidateProbs(%v) error %v is not ErrInvalidProb", p, err)
		}
	}
}

func TestSetProb(t *testing.T) {
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(2), 0.7)
	row, old, err := r.SetProb(tuple.Ints(2), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if row != 1 || old != 0.7 || r.Rows[1].P != 0.9 {
		t.Errorf("SetProb: row=%d old=%v new=%v", row, old, r.Rows[1].P)
	}
	if _, _, err := r.SetProb(tuple.Ints(3), 0.5); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("SetProb on missing tuple: %v", err)
	}
	for _, p := range []float64{math.NaN(), -0.1, 1.5} {
		if _, _, err := r.SetProb(tuple.Ints(1), p); !errors.Is(err, ErrInvalidProb) {
			t.Errorf("SetProb(%v): %v, want ErrInvalidProb", p, err)
		}
	}
	if r.Rows[0].P != 0.5 {
		t.Error("rejected SetProb mutated the row")
	}
}

func TestDelete(t *testing.T) {
	r := New("R", "a")
	r.MustAdd(tuple.Ints(1), 0.5)
	r.MustAdd(tuple.Ints(2), 0.7)
	r.MustAdd(tuple.Ints(3), 0.9)
	row, old, err := r.Delete(tuple.Ints(2))
	if err != nil {
		t.Fatal(err)
	}
	if row != 1 || old != 0.7 || r.Len() != 2 {
		t.Errorf("Delete: row=%d old=%v len=%d", row, old, r.Len())
	}
	if r.Rows[1].Tuple[0].AsInt() != 3 {
		t.Error("Delete did not shift later rows down")
	}
	if _, _, err := r.Delete(tuple.Ints(2)); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("Delete on missing tuple: %v", err)
	}
}
