package relation

import (
	"fmt"
	"math/bits"
)

// World is one possible world of a database: for each relation (by name) the
// set of present row indexes, plus the probability of this world under the
// tuple-independent semantics.
type World struct {
	Present map[string][]int
	P       float64
}

// Has reports whether row i of relation name is present in the world.
func (w *World) Has(name string, i int) bool {
	for _, j := range w.Present[name] {
		if j == i {
			return true
		}
	}
	return false
}

// MaxWorldRows bounds exhaustive world enumeration: databases with more than
// this many uncertain rows are rejected by Worlds. 2^22 ≈ 4M worlds keeps a
// full enumeration within a few hundred milliseconds and the world slice
// within memory; beyond that the oracle costs more than the evaluation paths
// it exists to validate.
const MaxWorldRows = 22

// Worlds enumerates every possible world of the database together with its
// probability (Eq. 1 extended to the product space). Rows with probability 1
// are present in every world and rows with probability 0 in none; only
// uncertain rows are enumerated. It is intended for tests on small instances
// and returns an error when the number of uncertain rows exceeds
// MaxWorldRows.
func (d *Database) Worlds() ([]World, error) {
	type slot struct {
		rel string
		idx int
		p   float64
	}
	var uncertain []slot
	certain := make(map[string][]int)
	for _, name := range d.order {
		r := d.rels[name]
		for i, row := range r.Rows {
			switch {
			case row.P >= 1:
				certain[name] = append(certain[name], i)
			case row.P <= 0:
				// never present
			default:
				uncertain = append(uncertain, slot{rel: name, idx: i, p: row.P})
			}
		}
	}
	n := len(uncertain)
	if n > MaxWorldRows {
		return nil, fmt.Errorf("worlds: %d uncertain rows exceeds limit %d", n, MaxWorldRows)
	}
	worlds := make([]World, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		w := World{Present: make(map[string][]int, len(d.order)), P: 1}
		for name, idxs := range certain {
			w.Present[name] = append(w.Present[name], idxs...)
		}
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				w.P *= uncertain[b].p
				w.Present[uncertain[b].rel] = append(w.Present[uncertain[b].rel], uncertain[b].idx)
			} else {
				w.P *= 1 - uncertain[b].p
			}
		}
		worlds = append(worlds, w)
	}
	return worlds, nil
}

// UncertainRows returns the number of rows with probability strictly
// between 0 and 1, i.e. the log2 of the number of possible worlds.
func (d *Database) UncertainRows() int {
	n := 0
	for _, name := range d.order {
		for _, row := range d.rels[name].Rows {
			if row.P > 0 && row.P < 1 {
				n++
			}
		}
	}
	return n
}

// WorldCount returns the number of possible worlds, or an error if it would
// overflow an int.
func (d *Database) WorldCount() (int, error) {
	n := d.UncertainRows()
	if n >= bits.UintSize-2 {
		return 0, fmt.Errorf("worlds: 2^%d overflows", n)
	}
	return 1 << uint(n), nil
}
