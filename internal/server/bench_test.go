package server

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// benchServer stands up the served triangle instance used by both the
// benchmark and the BENCH_serve.json recorder: the paper's running query
// over the fixed seven-tuple database, exact partial-lineage evaluation.
func benchBody(t testing.TB) []byte {
	t.Helper()
	body, err := json.Marshal(QueryRequest{Query: triangleQuery, Strategy: "partial"})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// BenchmarkServeConcurrency measures served throughput and tail latency of
// the running query at 1, 4 and 16 closed-loop clients.
func BenchmarkServeConcurrency(b *testing.B) {
	db := triangleDB(b)
	_, ts := newTestServer(b, Config{DB: db, MaxInFlight: 8, MaxQueue: 64})
	body := benchBody(b)

	for _, clients := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "clients=1", 4: "clients=4", 16: "clients=16"}[clients], func(b *testing.B) {
			perClient := b.N/clients + 1
			b.ResetTimer()
			rep, err := RunLoad(ts.URL+"/query", body, clients, perClient)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if rep.Errors > 0 {
				b.Fatalf("%d/%d requests failed", rep.Errors, rep.Requests)
			}
			b.ReportMetric(rep.Throughput, "req/s")
			b.ReportMetric(float64(rep.P50NS), "p50-ns")
			b.ReportMetric(float64(rep.P99NS), "p99-ns")
		})
	}
}

// TestRecordServeBench regenerates BENCH_serve.json at the repo root. Gated
// behind RECORD_SERVE_BENCH so routine test runs don't churn the artifact:
//
//	RECORD_SERVE_BENCH=1 go test -run TestRecordServeBench ./internal/server/
func TestRecordServeBench(t *testing.T) {
	if os.Getenv("RECORD_SERVE_BENCH") == "" {
		t.Skip("set RECORD_SERVE_BENCH=1 to regenerate BENCH_serve.json")
	}
	db := triangleDB(t)
	_, ts := newTestServer(t, Config{DB: db, MaxInFlight: 8, MaxQueue: 64, RetryAfter: time.Second})
	body := benchBody(t)

	var reports []*LoadReport
	for _, clients := range []int{1, 4, 16} {
		rep, err := RunLoad(ts.URL+"/query", body, clients, 2000/clients)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors > 0 {
			t.Fatalf("clients=%d: %d/%d requests failed", clients, rep.Errors, rep.Requests)
		}
		reports = append(reports, rep)
	}
	f, err := os.Create("../../BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := WriteLoadJSON(f, triangleQuery, reports); err != nil {
		t.Fatal(err)
	}
}
