package server

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/pdb"
)

// The serving-layer result cache: answers to repeated identical queries are
// returned from memory instead of re-evaluated, as long as the database has
// not changed underneath them.
//
// Correctness rests on the snapshot version of pdb.Database: every mutation
// bumps it, and cache keys embed the version observed before the evaluation
// started. A lookup therefore can only hit an entry computed against the
// exact same database state, and an insert is performed only when the version
// is unchanged after the evaluation finished (the double check below) — a
// result computed while a writer raced the reader is discarded, never served.
// A version change observed at lookup time purges the whole cache: stale
// entries could never hit again (their keys embed the old version) but would
// otherwise linger until evicted.
//
// Concurrent identical requests collapse through a single-flight table: the
// first request (the leader) evaluates and publishes its response; waiters
// block on the flight (or their deadline) and reuse it. When the leader fails
// or declines to publish, waiters evaluate independently — an error is never
// broadcast, so one poisoned request cannot fail its whole cohort.

// cacheEntry is one cached response on the LRU list (head = most recent).
type cacheEntry struct {
	key        string
	resp       *QueryResponse
	bytes      int64
	prev, next *cacheEntry
}

// flight is one in-progress evaluation that identical requests wait on.
// done is closed by the leader; resp is non-nil only when the leader
// published a cacheable response.
type flight struct {
	done chan struct{}
	resp *QueryResponse
}

type resultCache struct {
	metrics *obs.Registry

	mu      sync.Mutex
	entries map[string]*cacheEntry
	head    *cacheEntry
	tail    *cacheEntry
	max     int
	bytes   int64
	version int64
	flights map[string]*flight
}

func newResultCache(maxEntries int, metrics *obs.Registry) *resultCache {
	return &resultCache{
		metrics: metrics,
		entries: make(map[string]*cacheEntry),
		max:     maxEntries,
		flights: make(map[string]*flight),
	}
}

// cacheKey is the version-free identity of a request: the canonical (parsed
// and re-rendered) query plus every option that changes the answer bytes.
// Parallelism is deliberately excluded — results are byte-identical at any
// worker count — so differently-parallel clients share entries.
// NoAdaptivePlan is included: exact answers agree between the two planning
// modes only up to final-ulp rounding, and the response also carries
// mode-dependent statistics (offending tuples, plan/inference split).
func cacheKey(q *pdb.Query, strategy pdb.Strategy, req *QueryRequest) string {
	return fmt.Sprintf("%s|%s|%d|%g|%g|%d|%d|%t",
		q.String(), strategy, req.Samples, req.Epsilon, req.Delta, req.Seed, req.MaxWidth, req.NoAdaptivePlan)
}

// versioned prefixes a key with the snapshot version it was computed at.
func versioned(version int64, key string) string {
	return fmt.Sprintf("%d|%s", version, key)
}

// get returns the cached response for key at the given snapshot version. A
// version change since the last call purges every entry first.
func (c *resultCache) get(version int64, key string) (*QueryResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version != c.version {
		c.purgeLocked()
		c.version = version
	}
	e, ok := c.entries[key]
	if !ok {
		c.metrics.ServerCacheMiss()
		return nil, false
	}
	c.moveToFront(e)
	c.metrics.ServerCacheHit()
	return e.resp, true
}

// put inserts a response computed at the given version, evicting from the
// LRU tail past the entry cap. A response for a superseded version is
// dropped.
func (c *resultCache) put(version int64, key string, resp *QueryResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version != c.version {
		// The cache has already moved on to a newer snapshot.
		return
	}
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &cacheEntry{key: key, resp: resp, bytes: responseBytes(key, resp)}
	c.entries[key] = e
	c.pushFront(e)
	c.bytes += e.bytes
	for len(c.entries) > c.max && c.tail != nil {
		c.evictLocked(c.tail)
		c.metrics.ServerCacheEviction()
	}
	c.metrics.ServerCacheSize(len(c.entries), c.bytes)
}

// join returns the in-progress flight for key, or registers the caller as
// its leader. The bool reports leadership.
func (c *resultCache) join(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// finish closes a flight, publishing resp (nil when the evaluation failed or
// its result was not cacheable) to any waiters.
func (c *resultCache) finish(key string, f *flight, resp *QueryResponse) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	f.resp = resp
	close(f.done)
}

// Entries returns the current entry count (for tests).
func (c *resultCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *resultCache) purgeLocked() {
	clear(c.entries)
	c.head, c.tail, c.bytes = nil, nil, 0
	c.metrics.ServerCacheSize(0, 0)
}

func (c *resultCache) evictLocked(e *cacheEntry) {
	delete(c.entries, e.key)
	c.unlink(e)
	c.bytes -= e.bytes
}

func (c *resultCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *resultCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *resultCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// responseBytes estimates one entry's memory footprint for the cache-bytes
// gauge: key and payload strings plus fixed per-row and per-entry overheads.
func responseBytes(key string, resp *QueryResponse) int64 {
	n := int64(len(key)) + int64(len(resp.Query)) + int64(len(resp.FallbackReason)) + 160
	for i := range resp.Attrs {
		n += int64(len(resp.Attrs[i])) + 16
	}
	for i := range resp.Rows {
		n += 32
		for _, v := range resp.Rows[i].Vals {
			n += int64(len(v)) + 16
		}
	}
	return n
}
